#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

MatI random_mat(Rng& rng, int n, i64 lo, i64 hi) {
  MatI m(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) m(r, c) = rng.uniform(lo, hi);
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  MatI m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  m(1, 0) = 7;
  EXPECT_EQ(m(1, 0), 7);
  EXPECT_FALSE(m.is_square());
  EXPECT_TRUE(MatI::identity(3).is_square());
}

TEST(Matrix, RowColExtraction) {
  MatI m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.row(1), (VecI{3, 4}));
  EXPECT_EQ(m.col(0), (VecI{1, 3, 5}));
}

TEST(Matrix, Transpose) {
  MatI m{{1, 2, 3}, {4, 5, 6}};
  MatI t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 1), 6);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, IntMultiplication) {
  MatI a{{1, 2}, {3, 4}};
  MatI b{{5, 6}, {7, 8}};
  EXPECT_EQ(mul(a, b), (MatI{{19, 22}, {43, 50}}));
  EXPECT_EQ(mul(a, MatI::identity(2)), a);
  EXPECT_EQ(mul(a, VecI{1, 1}), (VecI{3, 7}));
}

TEST(Matrix, IntAddSub) {
  MatI a{{1, 2}, {3, 4}};
  MatI b{{5, 6}, {7, 8}};
  EXPECT_EQ(add(a, b), (MatI{{6, 8}, {10, 12}}));
  EXPECT_EQ(sub(b, a), (MatI{{4, 4}, {4, 4}}));
}

TEST(Matrix, VectorHelpers) {
  VecI a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(vec_add(a, b), (VecI{5, 7, 9}));
  EXPECT_EQ(vec_sub(b, a), (VecI{3, 3, 3}));
  EXPECT_EQ(vec_neg(a), (VecI{-1, -2, -3}));
  EXPECT_EQ(dot(a, b), 32);
}

TEST(Matrix, LexOrder) {
  EXPECT_EQ(lex_compare({1, 2}, {1, 3}), -1);
  EXPECT_EQ(lex_compare({2, 0}, {1, 9}), 1);
  EXPECT_EQ(lex_compare({1, 2}, {1, 2}), 0);
  EXPECT_TRUE(lex_positive({0, 0, 1}));
  EXPECT_TRUE(lex_positive({1, -5, 0}));
  EXPECT_FALSE(lex_positive({0, -1, 5}));
  EXPECT_FALSE(lex_positive({0, 0, 0}));
}

TEST(Matrix, IntDeterminant) {
  EXPECT_EQ(det(MatI::identity(4)), 1);
  EXPECT_EQ(det(MatI{{2, 0}, {0, 3}}), 6);
  EXPECT_EQ(det(MatI{{1, 2}, {2, 4}}), 0);
  EXPECT_EQ(det(MatI{{0, 1}, {1, 0}}), -1);
  // Skew matrices from the paper are unimodular.
  MatI sor_skew{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}};
  EXPECT_EQ(det(sor_skew), 1);
  EXPECT_TRUE(is_unimodular(sor_skew));
  // Needs pivoting (zero in the top-left after first step).
  MatI p{{0, 2, 1}, {1, 0, 0}, {0, 1, 1}};
  EXPECT_EQ(det(p), -1);
}

TEST(Matrix, DetMatchesRationalDet) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    int n = static_cast<int>(rng.uniform(1, 5));
    MatI m = random_mat(rng, n, -6, 6);
    Rat dq = det(to_rat(m));
    EXPECT_TRUE(dq.is_integer());
    EXPECT_EQ(det(m), dq.as_int());
  }
}

TEST(Matrix, RationalInverse) {
  MatQ h{{Rat(1, 2), Rat(0)}, {Rat(0), Rat(1, 3)}};
  MatQ p = inverse(h);
  EXPECT_EQ(p(0, 0), Rat(2));
  EXPECT_EQ(p(1, 1), Rat(3));
  EXPECT_EQ(mul(h, p), MatQ::identity(2));
  EXPECT_THROW(inverse(MatQ{{Rat(1), Rat(2)}, {Rat(2), Rat(4)}}), Error);
}

TEST(Matrix, RationalInverseRandomized) {
  Rng rng(17);
  int found = 0;
  for (int trial = 0; trial < 200; ++trial) {
    int n = static_cast<int>(rng.uniform(1, 4));
    MatI m = random_mat(rng, n, -5, 5);
    if (det(m) == 0) continue;
    ++found;
    MatQ inv = inverse(to_rat(m));
    EXPECT_EQ(mul(to_rat(m), inv), MatQ::identity(n));
    EXPECT_EQ(mul(inv, to_rat(m)), MatQ::identity(n));
  }
  EXPECT_GT(found, 100);  // sanity: most random matrices are nonsingular
}

TEST(Matrix, Solve) {
  MatQ a{{Rat(2), Rat(1)}, {Rat(1), Rat(3)}};
  VecQ x = solve(a, {Rat(5), Rat(10)});
  EXPECT_EQ(x[0], Rat(1));
  EXPECT_EQ(x[1], Rat(3));
}

TEST(Matrix, Rank) {
  EXPECT_EQ(rank(MatQ::identity(3)), 3);
  EXPECT_EQ(rank(MatQ{{Rat(1), Rat(2)}, {Rat(2), Rat(4)}}), 1);
  EXPECT_EQ(rank(MatQ{{Rat(0), Rat(0)}, {Rat(0), Rat(0)}}), 0);
  EXPECT_EQ(rank(MatQ{{Rat(1), Rat(0), Rat(1)}, {Rat(0), Rat(1), Rat(1)}}),
            2);
}

TEST(Matrix, NullSpace) {
  // x + y + z = 0 has a 2-dimensional null space.
  MatQ m{{Rat(1), Rat(1), Rat(1)}};
  MatQ ns = null_space(m);
  EXPECT_EQ(ns.cols(), 2);
  for (int c = 0; c < ns.cols(); ++c) {
    Rat s = ns(0, c) + ns(1, c) + ns(2, c);
    EXPECT_TRUE(s.is_zero());
  }
  // Nonsingular matrix has trivial null space.
  EXPECT_EQ(null_space(MatQ::identity(3)).cols(), 0);
}

TEST(Matrix, IntRatConversions) {
  MatI m{{1, -2}, {3, 4}};
  EXPECT_EQ(to_int(to_rat(m)), m);
  MatQ q{{Rat(1, 2)}};
  EXPECT_THROW(to_int(q), Error);
  EXPECT_EQ(to_int_vec({Rat(3), Rat(-4)}), (VecI{3, -4}));
  EXPECT_THROW(to_int_vec({Rat(1, 3)}), Error);
  EXPECT_TRUE(all_integer_vec({Rat(1), Rat(2)}));
  EXPECT_FALSE(all_integer_vec({Rat(1, 2)}));
}

TEST(Matrix, ToStringRendering) {
  MatI m{{1, 0}, {-2, 3}};
  EXPECT_EQ(m.to_string(), "[ 1 0 ]\n[ -2 3 ]");
}

TEST(Matrix, ElementaryOps) {
  MatI m{{1, 2}, {3, 4}};
  m.swap_cols(0, 1);
  EXPECT_EQ(m, (MatI{{2, 1}, {4, 3}}));
  m.swap_rows(0, 1);
  EXPECT_EQ(m, (MatI{{4, 3}, {2, 1}}));
  m.negate_col(0);
  EXPECT_EQ(m, (MatI{{-4, 3}, {-2, 1}}));
  m.negate_row(1);
  EXPECT_EQ(m, (MatI{{-4, 3}, {2, -1}}));
}

}  // namespace
}  // namespace ctile
