// Codegen fuzzing: random nests, random legal integral-P tilings, random
// affine kernels — the *generated parallel program* must compile, run and
// reproduce the reference checksum exactly, just like the hand-picked
// cases.  The kernel and its textual spec are built from the same
// coefficients, so any disagreement is a code-generation bug.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "codegen/parallel_gen.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/data_space.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace ctile::codegen {
namespace {

// Affine kernel defined by integer coefficient tables (exact in double):
// out = (sum_l w_l * dep_l) / 16 + sum_k p_k * j_k / 64;
// ic  = 1 + sum_k c_k * j_k / 32.
struct CoeffKernel final : Kernel {
  VecI w, p, c;

  int arity() const override { return 1; }

  void compute(const VecI& j, const double* dv, double* out) const override {
    double acc = 0.0;
    for (std::size_t l = 0; l < w.size(); ++l) {
      acc += static_cast<double>(w[l]) * dv[l];
    }
    acc /= 16.0;
    for (std::size_t k = 0; k < p.size(); ++k) {
      acc += static_cast<double>(p[k]) * static_cast<double>(j[k]) / 64.0;
    }
    out[0] = acc;
  }

  void initial(const VecI& j, double* out) const override {
    double acc = 1.0;
    for (std::size_t k = 0; k < c.size(); ++k) {
      acc += static_cast<double>(c[k]) * static_cast<double>(j[k]) / 32.0;
    }
    out[0] = acc;
  }
};

StencilSpec spec_of(const CoeffKernel& kernel, int n) {
  StencilSpec spec;
  spec.name = "fuzz";
  spec.arity = 1;
  std::vector<std::string> terms;
  for (std::size_t l = 0; l < kernel.w.size(); ++l) {
    terms.push_back(std::to_string(kernel.w[l]) + ".0 * DEP(" +
                    std::to_string(l) + ",0)");
  }
  std::string body = "double acc = (" + join(terms, " + ") + ") / 16.0;\n";
  for (int k = 0; k < n; ++k) {
    body += "acc += " + std::to_string(kernel.p[static_cast<std::size_t>(k)]) +
            ".0 * (double)j" + std::to_string(k) + " / 64.0;\n";
  }
  body += "OUT(0) = acc;";
  spec.body = body;
  std::string init = "double acc = 1.0;\n";
  for (int k = 0; k < n; ++k) {
    init += "acc += " + std::to_string(kernel.c[static_cast<std::size_t>(k)]) +
            ".0 * (double)j" + std::to_string(k) + " / 32.0;\n";
  }
  init += "OUT(0) = acc;";
  spec.initial = init;
  spec.unskew = MatI::identity(n);
  return spec;
}

VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    }
    if (lex_positive(d)) return d;
  }
}

std::optional<TilingTransform> random_tiling(Rng& rng, int n,
                                             const MatI& deps) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 5);
        } else if (rng.chance(0.25)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    TilingTransform t(h);
    if (!t.strides_compatible()) continue;
    MatI dprime = mul(t.Hp(), deps);
    bool fits = true;
    for (int k = 0; k < n && fits; ++k) {
      for (int l = 0; l < dprime.cols(); ++l) {
        if (dprime(k, l) > t.v(k)) fits = false;
      }
    }
    if (fits) return t;
  }
  return std::nullopt;
}

double run_generated(const std::string& code, int instance) {
  const std::string dir = ::testing::TempDir();
  const std::string tag = "fuzz" + std::to_string(instance);
  const std::string cpp = dir + "/gen_" + tag + ".cpp";
  const std::string bin = dir + "/gen_" + tag;
  {
    std::ofstream out(cpp);
    out << code;
  }
  std::string cmd = "c++ -std=c++20 -O1 -o " + bin + " " + cpp +
                    " -I" CTILE_SOURCE_DIR "/src " CTILE_SOURCE_DIR
                    "/src/mpisim/mpisim.cpp " CTILE_SOURCE_DIR
                    "/src/mpisim/event_scheduler.cpp " CTILE_SOURCE_DIR
                    "/src/support/error.cpp -lpthread 2> " + bin + ".err";
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream err(bin + ".err");
    std::stringstream ss;
    ss << err.rdbuf();
    ADD_FAILURE() << "instance " << instance
                  << ": generated code failed to compile:\n"
                  << ss.str();
    return 0.0;
  }
  std::string run = bin + " > " + bin + ".out";
  EXPECT_EQ(std::system(run.c_str()), 0);
  std::ifstream out_file(bin + ".out");
  std::string line;
  std::getline(out_file, line);
  double v = 0.0;
  EXPECT_EQ(std::sscanf(line.c_str(), "checksum %lf", &v), 1)
      << "instance " << instance << " output: " << line;
  return v;
}

TEST(CodegenFuzz, RandomInstancesMatchReference) {
  Rng rng(777777);
  int executed = 0, attempts = 0;
  while (executed < 4 && attempts < 100) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 3));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) {
        deps(r, c) = d[static_cast<std::size_t>(r)];
      }
    }
    LoopNest nest;
    try {
      VecI lo(static_cast<std::size_t>(n), 0);
      VecI hi(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        hi[static_cast<std::size_t>(k)] = rng.uniform(6, 12);
      }
      nest = make_rectangular_nest("fz", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;
    }
    std::optional<TilingTransform> tiling = random_tiling(rng, n, nest.deps);
    if (!tiling) continue;

    CoeffKernel kernel;
    for (int l = 0; l < q; ++l) kernel.w.push_back(rng.uniform(1, 9));
    for (int k = 0; k < n; ++k) {
      kernel.p.push_back(rng.uniform(-5, 5));
      kernel.c.push_back(rng.uniform(-5, 5));
    }
    StencilSpec spec = spec_of(kernel, n);

    TiledNest tiled(nest, std::move(*tiling));
    std::string code = generate_parallel_mpi(tiled, spec);
    double generated = run_generated(code, executed);

    DataSpace ref = run_sequential(nest.space, nest.deps, kernel);
    double expected = reference_checksum(
        nest, [&](const VecI& j) { return ref.at(j); }, 1);
    EXPECT_EQ(generated, expected) << "instance " << executed;
    ++executed;
  }
  EXPECT_GE(executed, 4) << "generator starved after " << attempts;
}

}  // namespace
}  // namespace ctile::codegen
