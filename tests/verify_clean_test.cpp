// Completeness tests of the static plan verifier: every plan the
// lowering pipeline produces for the paper's example configurations
// (SOR/Fig. 6, Jacobi/Fig. 8, ADI/Fig. 10, heat) and for randomly drawn
// legal tilings must be proven safe with ZERO findings.  A verifier
// that cries wolf on correct plans would be disabled, not fixed.
#include <gtest/gtest.h>

#include <optional>

#include "apps/kernels.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "support/rng.hpp"
#include "verify/gate.hpp"
#include "verify/verifier.hpp"

namespace ctile {
namespace {

using verify::VerifyReport;

void expect_clean(const AppInstance& app, const MatQ& h, int force_m,
                  const char* what) {
  const TiledNest tiled(app.nest, TilingTransform(h));
  const VerifyReport report = verify::verify_tiling(tiled, force_m);
  EXPECT_TRUE(report.empty()) << what << ":\n" << report.to_string();
}

TEST(VerifyClean, SorPaperConfigs) {
  const AppInstance app = make_sor(6, 9);
  expect_clean(app, sor_rect_h(2, 3, 4), 2, "SOR rect (Fig. 6)");
  expect_clean(app, sor_nonrect_h(2, 3, 4), 2, "SOR nonrect (Fig. 6)");
}

TEST(VerifyClean, JacobiPaperConfigs) {
  const AppInstance app = make_jacobi(4, 8, 8);
  expect_clean(app, jacobi_rect_h(2, 4, 3), 0, "Jacobi rect (Fig. 8)");
  expect_clean(app, jacobi_nonrect_h(2, 4, 3), 0, "Jacobi nonrect (Fig. 8)");
}

TEST(VerifyClean, AdiPaperConfigs) {
  const AppInstance app = make_adi(4, 6);
  expect_clean(app, adi_rect_h(2, 3, 3), 0, "ADI rect (Fig. 10)");
  expect_clean(app, adi_nr1_h(2, 3, 3), 0, "ADI nr1 (Fig. 10)");
  expect_clean(app, adi_nr2_h(2, 3, 3), 0, "ADI nr2 (Fig. 10)");
  expect_clean(app, adi_nr3_h(2, 3, 3), 0, "ADI nr3 (Fig. 10)");
}

TEST(VerifyClean, HeatConfigs) {
  const AppInstance app = make_heat(8, 12);
  expect_clean(app, heat_rect_h(2, 3), 0, "heat rect");
  expect_clean(app, heat_nonrect_h(2, 3), 0, "heat nonrect");
}

TEST(VerifyClean, LargerSorInstance) {
  const AppInstance app = make_sor(10, 15);
  expect_clean(app, sor_rect_h(3, 4, 5), 2, "SOR rect 10x15");
}

// The blocking reference schedule must also be proven race-free: same
// HB obligations, different edge set (no pre-posted receives).
TEST(VerifyClean, BlockingScheduleIsClean) {
  const AppInstance app = make_sor(6, 9);
  const TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 3, 4)));
  verify::PlanModel model = verify::lower_and_snapshot(tiled, 2);
  model.pipelined = false;
  const VerifyReport report = verify::verify_plan(model);
  EXPECT_TRUE(report.empty()) << report.to_string();
}

// The pre-run gate's snapshot of a live executor — concurrency facts
// included — must be clean for every paper config under every execution
// policy, with the overlapped and the blocking schedule.  This is the
// V6-V8 acceptance sweep: the proofs hold for the schedule the executor
// will actually run, not just for a fresh lowering.
TEST(VerifyClean, ExecutorSnapshotsCleanAcrossPoliciesAndOverlap) {
  struct Config {
    const char* name;
    AppInstance app;
    MatQ h;
    int force_m;
  };
  std::vector<Config> configs;
  configs.push_back({"sor rect", make_sor(6, 9), sor_rect_h(2, 3, 4), 2});
  configs.push_back(
      {"sor nonrect", make_sor(6, 9), sor_nonrect_h(2, 3, 4), 2});
  configs.push_back(
      {"jacobi rect", make_jacobi(4, 8, 8), jacobi_rect_h(2, 4, 3), 0});
  configs.push_back({"adi nr2", make_adi(4, 6), adi_nr2_h(2, 3, 3), 0});
  configs.push_back({"heat rect", make_heat(8, 12), heat_rect_h(2, 3), 0});

  for (const Config& cfg : configs) {
    const TiledNest tiled(cfg.app.nest, TilingTransform(cfg.h));
    for (exec::Policy policy :
         {exec::Policy::kSequential, exec::Policy::kSimd,
          exec::Policy::kThreadPool}) {
      for (bool overlap : {true, false}) {
        ParallelExecutor exec(tiled, *cfg.app.kernel, cfg.force_m);
        exec.set_exec_policy(policy);
        exec.set_use_overlap(overlap);
        const VerifyReport report = verify::verify_executor(exec);
        EXPECT_TRUE(report.empty())
            << cfg.name << " policy=" << exec::policy_name(policy)
            << " overlap=" << overlap << ":\n"
            << report.to_string();
      }
    }
  }
}

// Random lex-positive dependence with small components.
VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    }
    if (lex_positive(d)) return d;
  }
}

// Random integral-P tiling legal for deps and LDS-compatible (the same
// constraints the runtime itself requires).
std::optional<TilingTransform> random_tiling(Rng& rng, int n,
                                             const MatI& deps) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 6);
        } else if (rng.chance(0.3)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    TilingTransform t(h);
    if (!t.strides_compatible()) continue;
    MatI dprime = mul(t.Hp(), deps);
    bool fits = true;
    for (int k = 0; k < n && fits; ++k) {
      for (int l = 0; l < dprime.cols(); ++l) {
        if (dprime(k, l) > t.v(k)) fits = false;
      }
    }
    if (!fits) continue;
    return t;
  }
  return std::nullopt;
}

TEST(VerifyClean, RandomLegalTilingsAreClean) {
  Rng rng(20260806);
  int verified = 0;
  int attempts = 0;
  while (verified < 20 && attempts < 400) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 4));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      const VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) {
        deps(r, c) = d[static_cast<std::size_t>(r)];
      }
    }
    LoopNest nest;
    try {
      VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 3);
        hi[static_cast<std::size_t>(k)] =
            lo[static_cast<std::size_t>(k)] + rng.uniform(4, 14);
      }
      nest = make_rectangular_nest("rand", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;
    }
    std::optional<TilingTransform> tiling = random_tiling(rng, n, nest.deps);
    if (!tiling) continue;
    const TiledNest tiled(nest, std::move(*tiling));
    const VerifyReport report = verify::verify_tiling(tiled);
    EXPECT_TRUE(report.empty())
        << "instance " << verified << "\nH =\n"
        << tiled.transform().H().to_string() << "\nD =\n"
        << nest.deps.to_string() << report.to_string();
    ++verified;
  }
  EXPECT_GE(verified, 20) << "random generator starved (" << attempts
                          << " attempts)";
}

}  // namespace
}  // namespace ctile
