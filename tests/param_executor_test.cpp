// Parameterized end-to-end matrix: every (application x tiling x mapping)
// configuration in one sweep, each asserting the full set of invariants:
//   - parallel result == sequential result, bit-exact
//   - every iteration executed exactly once
//   - DES message/byte counts == executor message/byte counts
//   - LDS slots with a loc^{-1} preimage == |J^n| (computer-owns storage
//     is a bijection)
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"
#include "runtime/locate.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

struct Config {
  std::string name;
  AppInstance (*make)();
  MatQ (*tiling)();
  int force_m;
};

AppInstance make_sor_small() { return make_sor(5, 7); }
AppInstance make_sor_ragged() { return make_sor(6, 9); }
AppInstance make_jacobi_small() { return make_jacobi(4, 8, 6); }
AppInstance make_jacobi_square() { return make_jacobi(6, 8, 8); }
AppInstance make_adi_small() { return make_adi(4, 6); }
AppInstance make_adi_tall() { return make_adi(7, 5); }
AppInstance make_heat_small() { return make_heat(6, 20); }
AppInstance make_syn4d_small() { return make_syn4d(4, 4, 4, 4); }

MatQ t_sor_rect() { return sor_rect_h(2, 3, 4); }
MatQ t_sor_nr() { return sor_nonrect_h(2, 3, 4); }
MatQ t_sor_nr_ragged() { return sor_nonrect_h(3, 4, 5); }
MatQ t_jacobi_rect() { return jacobi_rect_h(2, 4, 3); }
MatQ t_jacobi_nr() { return jacobi_nonrect_h(2, 4, 3); }
MatQ t_jacobi_nr_wide() { return jacobi_nonrect_h(3, 4, 4); }
MatQ t_adi_rect() { return adi_rect_h(2, 2, 2); }
MatQ t_adi_nr1() { return adi_nr1_h(2, 2, 2); }
MatQ t_adi_nr2() { return adi_nr2_h(2, 3, 2); }
MatQ t_adi_nr3() { return adi_nr3_h(2, 3, 3); }
MatQ t_heat_rect() { return heat_rect_h(2, 4); }
MatQ t_heat_nr() { return heat_nonrect_h(2, 4); }
MatQ t_syn4d_rect() { return syn4d_rect_h(2, 2, 2, 2); }
MatQ t_syn4d_nr() { return syn4d_nonrect_h(2, 2, 2, 2); }

class ExecutorMatrix : public ::testing::TestWithParam<Config> {};

TEST_P(ExecutorMatrix, FullInvariantSet) {
  const Config& cfg = GetParam();
  AppInstance app = cfg.make();
  TiledNest tiled(app.nest, TilingTransform(cfg.tiling()));
  const i64 points = app.nest.space.count_points();

  // 1 + 2: numerics + coverage.
  DataSpace seq = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  ParallelExecutor exec(tiled, *app.kernel, cfg.force_m);
  ParallelRunStats stats;
  DataSpace par = exec.run(&stats);
  EXPECT_EQ(stats.points_computed, points);
  EXPECT_EQ(DataSpace::max_abs_diff(seq, par, app.nest.space), 0.0);

  // 3: the DES replays the same communication.
  SimResult sim = simulate_tiled_program(
      tiled, MachineModel::fast_ethernet_cluster(), app.kernel->arity(),
      cfg.force_m);
  EXPECT_EQ(sim.messages, stats.messages);
  EXPECT_EQ(sim.bytes, stats.doubles * 8);
  EXPECT_EQ(sim.total_points, points);

  // 4: storage bijectivity.
  Locator locator(tiled, exec.mapping(), exec.lds());
  i64 with_preimage = 0;
  for (int rank = 0; rank < exec.mapping().num_procs(); ++rank) {
    for (i64 slot = 0; slot < exec.lds().size(); ++slot) {
      if (locator.loc_inv(rank, slot).has_value()) ++with_preimage;
    }
  }
  EXPECT_EQ(with_preimage, points);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllTilings, ExecutorMatrix,
    ::testing::Values(
        Config{"sor_rect", make_sor_small, t_sor_rect, -1},
        Config{"sor_nr", make_sor_small, t_sor_nr, -1},
        Config{"sor_nr_m3", make_sor_small, t_sor_nr, 2},
        Config{"sor_nr_ragged", make_sor_ragged, t_sor_nr_ragged, 2},
        Config{"jacobi_rect", make_jacobi_small, t_jacobi_rect, 0},
        Config{"jacobi_nr", make_jacobi_small, t_jacobi_nr, 0},
        Config{"jacobi_nr_auto", make_jacobi_square, t_jacobi_nr_wide, -1},
        Config{"adi_rect", make_adi_small, t_adi_rect, 0},
        Config{"adi_nr1", make_adi_small, t_adi_nr1, 0},
        Config{"adi_nr2", make_adi_small, t_adi_nr2, 0},
        Config{"adi_nr3", make_adi_tall, t_adi_nr3, 0},
        Config{"heat_rect", make_heat_small, t_heat_rect, 1},
        Config{"heat_nr", make_heat_small, t_heat_nr, 1},
        Config{"syn4d_rect", make_syn4d_small, t_syn4d_rect, 0},
        Config{"syn4d_nr", make_syn4d_small, t_syn4d_nr, 0}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ctile
