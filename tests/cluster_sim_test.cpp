#include "cluster/simulator.hpp"

#include <gtest/gtest.h>

#include "apps/kernels.hpp"

namespace ctile {
namespace {

TiledNest tile_app(const AppInstance& app, MatQ h) {
  return TiledNest(app.nest, TilingTransform(std::move(h)));
}

TEST(Census, CountsMatchTiledScan) {
  AppInstance app = make_sor(5, 7);
  TiledNest tiled = tile_app(app, sor_nonrect_h(2, 3, 4));
  TileCensus census(tiled);
  EXPECT_EQ(census.total(), app.nest.space.count_points());
  tiled.tile_space().scan([&](const VecI& js) {
    EXPECT_EQ(census.count(js), tiled.tile_point_count(js));
  });
  EXPECT_EQ(census.count({99, 99, 99}), 0);
}

TEST(Sim, SingleProcessorMatchesSequential) {
  // One processor, zero-communication machine: makespan == sequential.
  AppInstance app = make_adi(4, 4);
  TiledNest tiled = tile_app(app, adi_rect_h(2, 5, 5));
  SimResult r = simulate_tiled_program(tiled, MachineModel::zero_comm(), 2, 0);
  EXPECT_DOUBLE_EQ(r.makespan, r.sequential);
  EXPECT_DOUBLE_EQ(r.speedup, 1.0);
  EXPECT_EQ(r.messages, 0);
}

TEST(Sim, SpeedupBoundedByProcessorCount) {
  AppInstance app = make_adi(8, 8);
  TiledNest tiled = tile_app(app, adi_rect_h(2, 2, 2));
  Mapping mapping(tiled, 0);
  SimResult r = simulate_tiled_program(tiled, MachineModel::zero_comm(), 2, 0);
  EXPECT_LE(r.speedup, static_cast<double>(mapping.num_procs()) + 1e-9);
  EXPECT_GT(r.speedup, 1.0);
}

TEST(Sim, CommunicationCostsReduceSpeedup) {
  AppInstance app = make_adi(8, 8);
  TiledNest tiled = tile_app(app, adi_rect_h(2, 2, 2));
  SimResult ideal = simulate_tiled_program(tiled, MachineModel::zero_comm(), 2, 0);
  MachineModel slow = MachineModel::fast_ethernet_cluster();
  SimResult real = simulate_tiled_program(tiled, slow, 2, 0);
  EXPECT_LT(real.speedup, ideal.speedup);
  EXPECT_GT(real.messages, 0);
  EXPECT_GT(real.bytes, 0);
}

TEST(Sim, ComputeBusyEqualsSequentialWork) {
  AppInstance app = make_sor(5, 7);
  TiledNest tiled = tile_app(app, sor_nonrect_h(2, 3, 4));
  SimResult r =
      simulate_tiled_program(tiled, MachineModel::fast_ethernet_cluster());
  EXPECT_NEAR(r.compute_busy, r.sequential, 1e-12);
}

TEST(Sim, NonRectBeatsRectOnSor) {
  // The paper's core claim (\S4.1): with identical tile sizes and
  // communication volumes, the non-rectangular (cone-derived) tiling
  // finishes earlier because the last tile executes at an earlier step
  // (t_nr = t_r - M/z).
  AppInstance app = make_sor(24, 48);
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  // Scale compute so tiles are meaningful relative to comm.
  machine.sec_per_iter = 5e-6;
  SimResult rect = simulate_tiled_program(
      tile_app(app, sor_rect_h(6, 18, 8)), machine, 1, 2);
  SimResult nonrect = simulate_tiled_program(
      tile_app(app, sor_nonrect_h(6, 18, 8)), machine, 1, 2);
  EXPECT_GT(nonrect.speedup, rect.speedup);
}

TEST(Sim, AdiConeTilingOrdering) {
  // Paper \S4.3: t_nr3 < t_nr1 (= t_nr2 by symmetry y == z) < t_r.
  AppInstance app = make_adi(32, 24);
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  machine.sec_per_iter = 5e-6;
  SimResult r = simulate_tiled_program(
      tile_app(app, adi_rect_h(4, 6, 6)), machine, 2, 0);
  SimResult nr1 = simulate_tiled_program(
      tile_app(app, adi_nr1_h(4, 6, 6)), machine, 2, 0);
  SimResult nr2 = simulate_tiled_program(
      tile_app(app, adi_nr2_h(4, 6, 6)), machine, 2, 0);
  SimResult nr3 = simulate_tiled_program(
      tile_app(app, adi_nr3_h(4, 6, 6)), machine, 2, 0);
  EXPECT_GT(nr1.speedup, r.speedup);
  EXPECT_GT(nr2.speedup, r.speedup);
  EXPECT_GT(nr3.speedup, nr1.speedup);
  EXPECT_GT(nr3.speedup, nr2.speedup);
}

TEST(Sim, MessagesMatchExecutorStats) {
  // The DES models exactly the messages the real executor sends.
  AppInstance app = make_sor(5, 7);
  TiledNest tiled = tile_app(app, sor_nonrect_h(2, 3, 4));
  ParallelExecutor exec(tiled, *app.kernel);
  ParallelRunStats stats;
  exec.run(&stats);
  SimResult sim =
      simulate_tiled_program(tiled, MachineModel::fast_ethernet_cluster());
  EXPECT_EQ(sim.messages, stats.messages);
  EXPECT_EQ(sim.bytes, stats.doubles * 8);
  EXPECT_EQ(sim.total_points, stats.points_computed);
}

TEST(Sim, LatencyDominatesTinyTiles) {
  // With very small tiles, makespan is latency-bound: raising latency
  // must raise makespan roughly proportionally.
  AppInstance app = make_adi(12, 8);
  TiledNest tiled = tile_app(app, adi_rect_h(1, 2, 2));
  MachineModel m1 = MachineModel::fast_ethernet_cluster();
  MachineModel m2 = m1;
  m2.latency *= 10;
  SimResult r1 = simulate_tiled_program(tiled, m1, 2, 0);
  SimResult r2 = simulate_tiled_program(tiled, m2, 2, 0);
  EXPECT_GT(r2.makespan, 3.0 * r1.makespan);
}

}  // namespace
}  // namespace ctile
