#include "linalg/rational.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace ctile {
namespace {

TEST(Rational, NormalizationOnConstruction) {
  Rat r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rat s(-6, 4);
  EXPECT_EQ(s.num(), -3);
  EXPECT_EQ(s.den(), 2);
  Rat t(6, -4);  // sign moves to numerator
  EXPECT_EQ(t.num(), -3);
  EXPECT_EQ(t.den(), 2);
  Rat z(0, 17);
  EXPECT_EQ(z.num(), 0);
  EXPECT_EQ(z.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) { EXPECT_THROW(Rat(1, 0), Error); }

TEST(Rational, Arithmetic) {
  Rat half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rat(5, 6));
  EXPECT_EQ(half - third, Rat(1, 6));
  EXPECT_EQ(half * third, Rat(1, 6));
  EXPECT_EQ(half / third, Rat(3, 2));
  EXPECT_EQ(-half, Rat(-1, 2));
  EXPECT_EQ(half.inv(), Rat(2));
  EXPECT_THROW(half / Rat(0), Error);
  EXPECT_THROW(Rat(0).inv(), Error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_LT(Rat(-1, 2), Rat(-1, 3));
  EXPECT_GE(Rat(2, 4), Rat(1, 2));
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_NE(Rat(1, 2), Rat(1, 3));
  // Comparison that would overflow naive 64-bit cross multiplication
  // must still be exact thanks to __int128.
  Rat big1(3037000499LL, 3037000500LL);
  Rat big2(3037000498LL, 3037000499LL);
  EXPECT_GT(big1, big2);
}

TEST(Rational, FloorCeilTrunc) {
  EXPECT_EQ(Rat(7, 2).floor(), 3);
  EXPECT_EQ(Rat(7, 2).ceil(), 4);
  EXPECT_EQ(Rat(7, 2).trunc(), 3);
  EXPECT_EQ(Rat(-7, 2).floor(), -4);
  EXPECT_EQ(Rat(-7, 2).ceil(), -3);
  EXPECT_EQ(Rat(-7, 2).trunc(), -3);
  EXPECT_EQ(Rat(6, 2).floor(), 3);
  EXPECT_EQ(Rat(6, 2).ceil(), 3);
}

TEST(Rational, IntegerPredicates) {
  EXPECT_TRUE(Rat(4, 2).is_integer());
  EXPECT_EQ(Rat(4, 2).as_int(), 2);
  EXPECT_FALSE(Rat(1, 2).is_integer());
  EXPECT_THROW(Rat(1, 2).as_int(), Error);
  EXPECT_TRUE(Rat(0).is_zero());
  EXPECT_TRUE(Rat(3).is_positive());
  EXPECT_TRUE(Rat(-3).is_negative());
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rat(5).to_string(), "5");
  EXPECT_EQ(Rat(-5, 3).to_string(), "-5/3");
  EXPECT_EQ(Rat(0).to_string(), "0");
}

TEST(Rational, AbsAndDouble) {
  EXPECT_EQ(Rat(-3, 4).abs(), Rat(3, 4));
  EXPECT_DOUBLE_EQ(Rat(1, 4).to_double(), 0.25);
}

TEST(Rational, FieldAxiomsRandomized) {
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    Rat a(rng.uniform(-50, 50), rng.uniform(1, 20));
    Rat b(rng.uniform(-50, 50), rng.uniform(1, 20));
    Rat c(rng.uniform(-50, 50), rng.uniform(1, 20));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rat(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.inv(), Rat(1));
      EXPECT_EQ((b / a) * a, b);
    }
  }
}

TEST(Rational, CompoundAssignment) {
  Rat r(1, 2);
  r += Rat(1, 3);
  EXPECT_EQ(r, Rat(5, 6));
  r -= Rat(1, 6);
  EXPECT_EQ(r, Rat(2, 3));
  r *= Rat(3);
  EXPECT_EQ(r, Rat(2));
  r /= Rat(4);
  EXPECT_EQ(r, Rat(1, 2));
}

TEST(Rational, FloorIdentityRandomized) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    i64 n = rng.uniform(-10000, 10000);
    i64 d = rng.uniform(1, 100);
    Rat r(n, d);
    i64 f = r.floor(), c = r.ceil();
    EXPECT_LE(Rat(f), r);
    EXPECT_LT(r, Rat(f + 1));
    EXPECT_GE(Rat(c), r);
    EXPECT_GT(r, Rat(c - 1));
  }
}

}  // namespace
}  // namespace ctile
