#include "runtime/locate.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/kernels.hpp"

namespace ctile {
namespace {

struct Fixture {
  TiledNest tiled;
  Mapping mapping;
  LdsLayout lds;
  Locator locator;

  Fixture(AppInstance app, MatQ h, int force_m = -1)
      : tiled(app.nest, TilingTransform(std::move(h))),
        mapping(tiled, force_m),
        lds(tiled, mapping),
        locator(tiled, mapping, lds) {}
};

TEST(Locate, RoundTripEveryPointSor) {
  Fixture f(make_sor(5, 7), sor_nonrect_h(2, 3, 4));
  f.tiled.nest().space.scan([&](const VecI& j) {
    Location loc = f.locator.loc(j);
    EXPECT_GE(loc.rank, 0);
    EXPECT_LT(loc.rank, f.mapping.num_procs());
    std::optional<VecI> back = f.locator.loc_inv(loc.rank, loc.slot);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, j);
  });
}

TEST(Locate, RoundTripStridedJacobi) {
  Fixture f(make_jacobi(4, 8, 6), jacobi_nonrect_h(2, 4, 3), 0);
  f.tiled.nest().space.scan([&](const VecI& j) {
    Location loc = f.locator.loc(j);
    std::optional<VecI> back = f.locator.loc_inv(loc.rank, loc.slot);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, j);
  });
}

TEST(Locate, DistinctPointsDistinctSlots) {
  // The computer-owns storage is injective: no two iteration points may
  // share a (rank, slot) pair.
  Fixture f(make_adi(4, 6), adi_nr3_h(2, 3, 3), 0);
  std::map<std::pair<int, i64>, VecI> seen;
  f.tiled.nest().space.scan([&](const VecI& j) {
    Location loc = f.locator.loc(j);
    auto key = std::make_pair(loc.rank, loc.slot);
    auto [it, inserted] = seen.insert({key, j});
    EXPECT_TRUE(inserted) << "slot collision between two points";
  });
  EXPECT_EQ(static_cast<i64>(seen.size()),
            f.tiled.nest().space.count_points());
}

TEST(Locate, HaloSlotsHaveNoPreimage) {
  Fixture f(make_sor(5, 7), sor_nonrect_h(2, 3, 4));
  // Count slots with a preimage; must equal the space size exactly.
  i64 with_preimage = 0;
  for (int rank = 0; rank < f.mapping.num_procs(); ++rank) {
    for (i64 slot = 0; slot < f.lds.size(); ++slot) {
      if (f.locator.loc_inv(rank, slot).has_value()) ++with_preimage;
    }
  }
  EXPECT_EQ(with_preimage, f.tiled.nest().space.count_points());
}

TEST(Locate, OwnershipMatchesMapping) {
  Fixture f(make_sor(5, 7), sor_nonrect_h(2, 3, 4));
  f.tiled.nest().space.scan([&](const VecI& j) {
    Location loc = f.locator.loc(j);
    VecI js = f.tiled.transform().tile_of(j);
    auto [pid, t] = f.mapping.owner_of(js);
    EXPECT_EQ(loc.pid, pid);
    EXPECT_EQ(loc.rank, f.mapping.rank_of(pid));
    (void)t;
  });
}

}  // namespace
}  // namespace ctile
