#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "codegen/parallel_gen.hpp"
#include "runtime/data_space.hpp"
#include "codegen/sequential_gen.hpp"

namespace ctile::codegen {
namespace {

TiledNest sor_tiled() {
  AppInstance app = make_sor(5, 7);
  return TiledNest(app.nest, TilingTransform(sor_nonrect_h(2, 3, 4)));
}

TEST(Writer, IndentationAndBlocks) {
  CodeWriter w;
  w.open("if (x)");
  w.line("y();");
  w.close();
  EXPECT_EQ(w.str(), "if (x) {\n  y();\n}\n");
}

TEST(Writer, AffineStr) {
  EXPECT_EQ(affine_str({1, -1, 2}, {"a", "b", "c"}, -3),
            "a + -b + 2*c + -3");
  EXPECT_EQ(affine_str({0, 0}, {"a", "b"}, 0), "0");
  EXPECT_EQ(affine_str({}, {}, 5), "5");
}

TEST(Writer, BoundExprsSimpleBox) {
  Polyhedron p = Polyhedron::box({2}, {9});
  BoundExprs b = bound_exprs(p, 0, {"x"});
  EXPECT_EQ(b.lower, "-(-2)");
  EXPECT_EQ(b.upper, "(9)");
}

TEST(Writer, BoundExprsDivisions) {
  // Bounds of x1 that depend on x0 keep their divisions:
  // 3*x1 >= 2*x0 + 1 -> ceil-div, 2*x1 <= 5*x0 -> floor-div.
  // (Single-variable constraints get constant-folded by normalization.)
  Polyhedron p(2);
  p.add(Constraint({-2, 3}, -1));  // 3y - 2x - 1 >= 0
  p.add(Constraint({5, -2}, 0));   // 5x - 2y >= 0
  BoundExprs b = bound_exprs(p, 1, {"x0", "x1"});
  EXPECT_NE(b.lower.find("ct_ceildiv"), std::string::npos);
  EXPECT_NE(b.upper.find("ct_floordiv"), std::string::npos);
  EXPECT_NE(b.lower.find("x0"), std::string::npos);
}

TEST(Writer, MembershipExpr) {
  Polyhedron p = Polyhedron::box({0, 0}, {3, 4});
  std::string e = membership_expr(p, {"a", "b"});
  EXPECT_NE(e.find("a"), std::string::npos);
  EXPECT_NE(e.find(">= 0"), std::string::npos);
  EXPECT_EQ(membership_expr(Polyhedron(2), {"a", "b"}), "true");
}

TEST(SequentialGen, SkeletonShowsTwoNLoops) {
  std::string code = generate_loop_skeleton(sor_tiled());
  // n = 3 outer tile loops + 3 inner TTIS loops.
  std::size_t count = 0, pos = 0;
  while ((pos = code.find("for (", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 6u);
  EXPECT_NE(code.find("js0"), std::string::npos);
  EXPECT_NE(code.find("jp2"), std::string::npos);
}

TEST(SequentialGen, ProgramContainsKeyPieces) {
  std::string code = generate_sequential_tiled(sor_tiled(), sor_spec());
  EXPECT_NE(code.find("int main()"), std::string::npos);
  EXPECT_NE(code.find("in_space"), std::string::npos);
  EXPECT_NE(code.find("point_of"), std::string::npos);
  EXPECT_NE(code.find("checksum"), std::string::npos);
  // Placeholders resolved to the emitted macros.
  EXPECT_NE(code.find("CT_DEP(0,0)"), std::string::npos);
  EXPECT_NE(code.find("#define CT_DEP"), std::string::npos);
}

TEST(ParallelGen, ProgramContainsCommStructure) {
  std::string code = generate_parallel_mpi(sor_tiled(), sor_spec());
  EXPECT_NE(code.find("RECEIVE"), std::string::npos);
  EXPECT_NE(code.find("SEND"), std::string::npos);
  EXPECT_NE(code.find("comm.recv"), std::string::npos);
  EXPECT_NE(code.find("comm.send"), std::string::npos);
  EXPECT_NE(code.find("MPI_Recv"), std::string::npos);  // documented mapping
  EXPECT_NE(code.find("DS_TAB"), std::string::npos);
  EXPECT_NE(code.find("minsucc"), std::string::npos);
  EXPECT_NE(code.find("run_ranks"), std::string::npos);
}

TEST(ParallelGen, ConstantsMatchPlan) {
  TiledNest tiled = sor_tiled();
  Mapping mapping(tiled);
  std::string code = generate_parallel_mpi(tiled, sor_spec());
  EXPECT_NE(code.find("constexpr int NPROCS = " +
                      std::to_string(mapping.num_procs())),
            std::string::npos);
  EXPECT_NE(code.find("constexpr long long CHAIN = " +
                      std::to_string(mapping.chain_length())),
            std::string::npos);
}

TEST(ParallelGen, MpiFlavorEmitsRealMpiCalls) {
  ParallelGenOptions opt;
  opt.flavor = CommFlavor::kMpi;
  std::string code = generate_parallel_mpi(sor_tiled(), sor_spec(), opt);
  EXPECT_NE(code.find("#include <mpi.h>"), std::string::npos);
  EXPECT_NE(code.find("MPI_Init"), std::string::npos);
  EXPECT_NE(code.find("MPI_Comm_rank"), std::string::npos);
  EXPECT_NE(code.find("MPI_Send(buf.data()"), std::string::npos);
  EXPECT_NE(code.find("MPI_Recv(buf.data()"), std::string::npos);
  EXPECT_NE(code.find("MPI_Finalize"), std::string::npos);
  // No in-process substrate remnants.
  EXPECT_EQ(code.find("mpisim"), std::string::npos);
  EXPECT_EQ(code.find("comm.recv"), std::string::npos);
  // Ranks validated against the compiled-in mesh size.
  EXPECT_NE(code.find("world != NPROCS"), std::string::npos);
}

TEST(ParallelGen, FlavorsShareTheComputeStructure) {
  ParallelGenOptions mpi_opt;
  mpi_opt.flavor = CommFlavor::kMpi;
  std::string a = generate_parallel_mpi(sor_tiled(), sor_spec());
  std::string b = generate_parallel_mpi(sor_tiled(), sor_spec(), mpi_opt);
  // The analysis tables must be identical between flavors.
  for (const char* token :
       {"DS_TAB", "DM_TAB", "PACK_LO", "MSG_POINTS", "walk_box",
        "lds_slot", "minsucc"}) {
    std::size_t pa = a.find(token);
    std::size_t pb = b.find(token);
    EXPECT_NE(pa, std::string::npos) << token;
    EXPECT_NE(pb, std::string::npos) << token;
  }
}

TEST(Specs, MatchAppKernels) {
  // Spec dependence order comments match the app kernels'; spot-check
  // the arity and body references.
  EXPECT_EQ(sor_spec().arity, 1);
  EXPECT_EQ(jacobi_spec().arity, 1);
  EXPECT_EQ(adi_spec().arity, 2);
  EXPECT_NE(adi_spec().body.find("DEP(2,1)"), std::string::npos);
}

TEST(Checksum, ReferenceMatchesManualLoop) {
  AppInstance app = make_adi(3, 4);
  DataSpace ds = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  double c1 = reference_checksum(
      app.nest, [&](const VecI& j) { return ds.at(j); }, 2);
  double c2 = reference_checksum(
      app.nest, [&](const VecI& j) { return ds.at(j); }, 2);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, 0.0);
}

}  // namespace
}  // namespace ctile::codegen
