#include <gtest/gtest.h>

#include <set>

#include "poly/polyhedron.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

std::set<VecI> points_of(const Polyhedron& p) {
  std::set<VecI> out;
  p.scan([&](const VecI& x) { out.insert(x); });
  return out;
}

TEST(Simplify, DropsDominatedBound) {
  Polyhedron p(1);
  p.add(lower_bound(1, 0, 0));
  p.add(lower_bound(1, 0, 3));   // dominates x >= 0
  p.add(upper_bound(1, 0, 10));
  Polyhedron s = p.simplified();
  EXPECT_EQ(s.num_constraints(), 2);
  EXPECT_EQ(points_of(s), points_of(p));
}

TEST(Simplify, DropsImpliedDiagonal) {
  // x >= 0, y >= 0 imply x + y >= 0.
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(lower_bound(2, 1, 0));
  p.add(upper_bound(2, 0, 4));
  p.add(upper_bound(2, 1, 4));
  p.add(Constraint({1, 1}, 0));  // redundant
  Polyhedron s = p.simplified();
  EXPECT_EQ(s.num_constraints(), 4);
  EXPECT_EQ(points_of(s), points_of(p));
}

TEST(Simplify, KeepsBindingConstraints) {
  // A triangle: all three constraints are facets, none can go.
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(lower_bound(2, 1, 0));
  p.add(Constraint({-1, -1}, 5));
  Polyhedron s = p.simplified();
  EXPECT_EQ(s.num_constraints(), 3);
}

TEST(Simplify, PreservesIntegerSetRandomized) {
  Rng rng(2718);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.uniform(1, 3));
    Polyhedron p(n);
    VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 0);
      hi[static_cast<std::size_t>(k)] = rng.uniform(1, 4);
      p.add(lower_bound(n, k, lo[static_cast<std::size_t>(k)]));
      p.add(upper_bound(n, k, hi[static_cast<std::size_t>(k)]));
    }
    for (int c = 0; c < 4; ++c) {
      VecI coeffs(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        coeffs[static_cast<std::size_t>(k)] = rng.uniform(-2, 2);
      }
      p.add(Constraint(coeffs, rng.uniform(0, 9)));
    }
    Polyhedron s = p.simplified();
    EXPECT_LE(s.num_constraints(), p.num_constraints());
    EXPECT_EQ(points_of(s), points_of(p)) << p.to_string();
  }
}

TEST(Simplify, EqualIntegerSets) {
  Polyhedron a = Polyhedron::box({0, 0}, {3, 3});
  Polyhedron b = Polyhedron::box({0, 0}, {3, 3});
  b.add(Constraint({1, 1}, 0));  // redundant extra
  EXPECT_TRUE(Polyhedron::equal_integer_sets(a, b));
  Polyhedron c = Polyhedron::box({0, 0}, {3, 2});
  EXPECT_FALSE(Polyhedron::equal_integer_sets(a, c));
}

TEST(Simplify, EmptyStaysEmpty) {
  Polyhedron p(1);
  p.add(lower_bound(1, 0, 5));
  p.add(upper_bound(1, 0, 3));
  Polyhedron s = p.simplified();
  EXPECT_TRUE(s.empty_rational() || s.count_points() == 0);
}

}  // namespace
}  // namespace ctile
