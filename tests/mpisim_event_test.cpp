// The event-driven mpisim backend (DESIGN.md §11): stackful fibers on
// ONE OS thread, a virtual clock, and a seed-controlled deterministic
// interleaving.  These tests pin down the contract the tentpole claims:
// same semantics as the thread backend, scale far past thread-per-rank,
// virtual (not real) latency, reproducible schedules, and deadlock
// turned into a loud Error instead of a hang.
#include "mpisim/mpisim.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "support/rng.hpp"

namespace ctile::mpisim {
namespace {

CommConfig event_config(u64 seed = 1) {
  CommConfig config;
  config.backend = Backend::kEvent;
  config.seed = seed;
  return config;
}

TEST(MpisimEvent, PingPongSemanticsMatchThreadBackend) {
  run_ranks(
      2,
      [](int rank, Comm& comm) {
        EXPECT_TRUE(comm.event_backend());
        if (rank == 0) {
          comm.send(0, 1, 7, {1.0, 2.0, 3.0});
          EXPECT_EQ(comm.recv(0, 1, 8), (std::vector<double>{6.0}));
        } else {
          std::vector<double> msg = comm.recv(1, 0, 7);
          comm.send(1, 0, 8,
                    {std::accumulate(msg.begin(), msg.end(), 0.0)});
        }
      },
      event_config());
}

TEST(MpisimEvent, ScrambledAllToAllOnOneOsThread) {
  // The mpisim_stress all-to-all shape, plus the tentpole's headline
  // claim: every rank body runs on the CALLING OS thread.
  const int n = 16;
  const std::thread::id host = std::this_thread::get_id();
  run_ranks(
      n,
      [&](int rank, Comm& comm) {
        EXPECT_EQ(std::this_thread::get_id(), host);
        for (int dst = 0; dst < n; ++dst) {
          if (dst == rank) continue;
          comm.send(rank, dst, 0, {static_cast<double>(rank)});
        }
        Rng rng(static_cast<u64>(rank) + 1);
        std::vector<int> order;
        for (int src = 0; src < n; ++src) {
          if (src != rank) order.push_back(src);
        }
        for (std::size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1],
                    order[static_cast<std::size_t>(
                        rng.uniform(0, static_cast<i64>(i) - 1))]);
        }
        for (int src : order) {
          EXPECT_EQ(comm.recv(rank, src, 0)[0], static_cast<double>(src));
        }
        comm.barrier(rank);
      },
      event_config(/*seed=*/17));
}

TEST(MpisimEvent, LatencyIsVirtualNotReal) {
  // 30 modelled seconds of wire time must cost (approximately) zero wall
  // clock, and the ranks must still OBSERVE the modelled time through
  // comm.now().
  CommConfig config = event_config();
  config.latency.per_message_s = 10.0;
  const auto wall_start = std::chrono::steady_clock::now();
  run_ranks(
      2,
      [](int rank, Comm& comm) {
        const auto virtual_start = comm.now();
        if (rank == 0) {
          // Three blocking sends: each occupies the sender 10 virtual s.
          for (i64 tag = 0; tag < 3; ++tag) {
            comm.send(0, 1, tag, {static_cast<double>(tag)});
          }
          const double virtual_s =
              std::chrono::duration<double>(comm.now() - virtual_start)
                  .count();
          EXPECT_GE(virtual_s, 30.0);
        } else {
          for (i64 tag = 0; tag < 3; ++tag) {
            EXPECT_EQ(comm.recv(1, 0, tag)[0], static_cast<double>(tag));
          }
          const double virtual_s =
              std::chrono::duration<double>(comm.now() - virtual_start)
                  .count();
          // The receiver saw at least the first delivery deadline pass.
          EXPECT_GE(virtual_s, 10.0);
        }
      },
      config);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  EXPECT_LT(wall_s, 5.0) << "virtual latency leaked into wall clock";
}

TEST(MpisimEvent, AdvanceModelsComputeInVirtualTime) {
  CommConfig config = event_config();
  run_ranks(
      1,
      [](int rank, Comm& comm) {
        const auto t0 = comm.now();
        comm.advance(rank, 3600.0);  // one virtual hour
        EXPECT_GE(std::chrono::duration<double>(comm.now() - t0).count(),
                  3600.0);
      },
      config);
}

TEST(MpisimEvent, SameSeedReplaysIdenticalScheduleAndTrace) {
  // Same program + same seed => identical per-channel traces (the
  // digests include every payload bit).  The program makes the trace
  // schedule-SENSITIVE by having both peers race nondeterministically
  // ordered sends to a third rank on the same channel... except that per
  // (src,dst,tag) channels are FIFO, so traces are schedule-stable; the
  // determinism witness here is that the run is replayable at all, plus
  // equal message totals and equal traces.
  auto run_once = [](u64 seed) {
    CommConfig config = event_config(seed);
    config.trace = true;
    Comm::ChannelTraces traces;
    i64 messages = 0;
    run_ranks(
        8,
        [&](int rank, Comm& comm) {
          const int n = comm.size();
          for (int round = 0; round < 5; ++round) {
            comm.send(rank, (rank + 1) % n, round,
                      {static_cast<double>(rank * 100 + round)});
            EXPECT_EQ(
                comm.recv(rank, (rank + n - 1) % n, round)[0],
                static_cast<double>(((rank + n - 1) % n) * 100 + round));
          }
          comm.barrier(rank);
          if (rank == 0) {
            traces = comm.channel_traces();
            messages = comm.messages_sent();
          }
        },
        config);
    return std::make_pair(traces, messages);
  };
  const auto [trace_a, messages_a] = run_once(42);
  const auto [trace_b, messages_b] = run_once(42);
  EXPECT_EQ(messages_a, messages_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(trace_a.empty());
  // A different seed permutes the interleaving but must not change what
  // flowed over any channel (correct programs are schedule-oblivious).
  const auto [trace_c, messages_c] = run_once(1337);
  EXPECT_EQ(messages_a, messages_c);
  EXPECT_EQ(trace_a, trace_c);
}

TEST(MpisimEvent, DeadlockIsDetectedAndAborted) {
  // Everyone receives, nobody sends: the thread backend would hang
  // forever; the event scheduler must prove the stall (no runnable
  // fiber, no pending virtual deadline) and abort with an Error.
  EXPECT_THROW(run_ranks(
                   4,
                   [](int rank, Comm& comm) {
                     comm.recv(rank, (rank + 1) % comm.size(), 99);
                   },
                   event_config()),
               Error);
}

TEST(MpisimEvent, AbortWakesBlockedFibersIntoError) {
  // One rank dies while the others are parked in recv/barrier; the
  // original error must surface (not the deadlock fallback) and the run
  // must terminate.
  EXPECT_THROW(
      {
        try {
          run_ranks(
              6,
              [](int rank, Comm& comm) {
                if (rank == 3) throw Error("rank 3 died");
                if (rank % 2 == 0) {
                  comm.recv(rank, 3, 0);
                } else {
                  comm.barrier(rank);
                }
              },
              event_config());
        } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("rank 3 died"),
                    std::string::npos);
          throw;
        }
      },
      Error);
}

TEST(MpisimEvent, PollingLoopsMakeProgressAndObserveAbort) {
  // test()/probe() spin-loops are the classic cooperative-scheduling
  // trap: each failed poll must charge virtual time and yield, so the
  // clock reaches deadlines (first loop) and abort propagates into a
  // polling rank (second loop, regression pairing with satellite 1).
  CommConfig config = event_config();
  config.latency.per_message_s = 0.5;
  run_ranks(
      2,
      [](int rank, Comm& comm) {
        if (rank == 0) {
          comm.isend(0, 1, 0, {7.5});
        } else {
          Request req = comm.irecv(1, 0, 0);
          while (!comm.test(req)) {
          }
          EXPECT_EQ(req.payload, (std::vector<double>{7.5}));
        }
      },
      config);
  EXPECT_THROW(run_ranks(
                   2,
                   [](int rank, Comm& comm) {
                     if (rank == 0) throw Error("rank 0 died");
                     Request req = comm.irecv(1, 0, 0);
                     while (!comm.test(req)) {
                     }
                   },
                   event_config()),
               Error);
}

TEST(MpisimEvent, ThousandRankRingScales) {
  // Far past where thread-per-rank is viable on this host; trivial on
  // the event backend.
  const int n = 1024;
  run_ranks(
      n,
      [&](int rank, Comm& comm) {
        comm.send(rank, (rank + 1) % n, 0, {static_cast<double>(rank)});
        EXPECT_EQ(comm.recv(rank, (rank + n - 1) % n, 0)[0],
                  static_cast<double>((rank + n - 1) % n));
        comm.barrier(rank);
      },
      event_config(/*seed=*/3));
}

TEST(MpisimEvent, WavefrontSmoke4096Ranks) {
  // ISSUE 6 acceptance: a 4096-rank wavefront completes in the event
  // backend on one OS thread.  64x64 mesh, classic skewed dependence
  // (each cell waits on its north and west neighbours, accumulates, and
  // forwards south and east) — the communication skeleton of the
  // paper's tiled SOR mapped onto a 2D processor mesh.
  const int side = 64;
  const int n = side * side;
  const std::thread::id host = std::this_thread::get_id();
  std::vector<double> sums(static_cast<std::size_t>(n), 0.0);
  run_ranks(
      n,
      [&](int rank, Comm& comm) {
        EXPECT_EQ(std::this_thread::get_id(), host);
        const int row = rank / side;
        const int col = rank % side;
        double acc = 1.0;
        if (row > 0) acc += comm.recv(rank, rank - side, /*tag=*/0)[0];
        if (col > 0) acc += comm.recv(rank, rank - 1, /*tag=*/1)[0];
        if (row + 1 < side) comm.send(rank, rank + side, 0, {acc});
        if (col + 1 < side) comm.send(rank, rank + 1, 1, {acc});
        sums[static_cast<std::size_t>(rank)] = acc;
      },
      event_config(/*seed=*/99));
  // The wavefront recurrence acc(r,c) = 1 + acc(r-1,c) + acc(r,c-1)
  // counts lattice paths: acc(r,c) = C(r+c+2, r+1) - 1.  Spot-check the
  // corners instead of recomputing the binomials: symmetry + growth.
  EXPECT_EQ(sums[0], 1.0);
  EXPECT_EQ(sums[1], 2.0);
  EXPECT_EQ(sums[static_cast<std::size_t>(side)], 2.0);
  EXPECT_EQ(sums[static_cast<std::size_t>(side + 1)], 5.0);
  // Symmetric corners see symmetric sums.
  EXPECT_EQ(sums[static_cast<std::size_t>(side - 1)],
            sums[static_cast<std::size_t>((side - 1) * side)]);
  EXPECT_GT(sums[static_cast<std::size_t>(n - 1)], sums[0]);
}

TEST(MpisimEvent, EnvVariableSelectsBackendUnderAuto) {
  // kAuto + CTILE_MPISIM_BACKEND=event must route through the event
  // scheduler — this is how CI runs the whole runtime suite on the
  // event backend without touching any test.
  ASSERT_EQ(setenv("CTILE_MPISIM_BACKEND", "event", 1), 0);
  EXPECT_EQ(resolve_backend(Backend::kAuto), Backend::kEvent);
  run_ranks(2, [](int rank, Comm& comm) {
    EXPECT_TRUE(comm.event_backend());
    if (rank == 0) {
      comm.send(0, 1, 0, {4.0});
    } else {
      EXPECT_EQ(comm.recv(1, 0, 0)[0], 4.0);
    }
  });
  ASSERT_EQ(setenv("CTILE_MPISIM_BACKEND", "thread", 1), 0);
  EXPECT_EQ(resolve_backend(Backend::kAuto), Backend::kThread);
  ASSERT_EQ(unsetenv("CTILE_MPISIM_BACKEND"), 0);
  EXPECT_EQ(resolve_backend(Backend::kAuto), Backend::kThread);
  // Garbage values fail loudly instead of silently picking a backend.
  ASSERT_EQ(setenv("CTILE_MPISIM_BACKEND", "fibers", 1), 0);
  EXPECT_THROW(resolve_backend(Backend::kAuto), Error);
  ASSERT_EQ(unsetenv("CTILE_MPISIM_BACKEND"), 0);
}

}  // namespace
}  // namespace ctile::mpisim
