// Execution-policy equivalence and unit coverage (exec_policy.hpp):
//
//   (a) every Policy (kSequential / kSimd / kThreadPool) produces a
//       bitwise-identical DataSpace on the paper's SOR / Jacobi / ADI
//       configurations, across slot-tables on/off, overlap on/off and
//       both mpisim backends, and equals the untiled sequential
//       reference,
//   (b) likewise on random legal tilings with a random kernel that has
//       no compute_row override — exercising the batched path's default
//       per-point fallback,
//   (c) SequentialTiledExecutor under every policy, including
//       non-integral P,
//   (d) the Kernel::compute_row contract on synthetic rows: every alias
//       shape (none, backward recurrence, forward) must match the
//       per-point reference bitwise, and row_alias_distance's fast
//       paths are exact,
//   (e) ThreadPool semantics (named ExecPolicy.ThreadPool* so the TSan
//       CI job can run exactly these under -fsanitize=thread),
//   (f) memory backends: alignment, pooled reuse, the registry, the
//       DoubleBuffer, and an executor run through the pooled backend,
//   (g) the policy name / env-var plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/kernels.hpp"
#include "deps/skew.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/exec_policy.hpp"
#include "runtime/parallel_executor.hpp"
#include "runtime/sequential_tiled.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

constexpr exec::Policy kAllPolicies[] = {
    exec::Policy::kSequential, exec::Policy::kSimd,
    exec::Policy::kThreadPool};

// ---------------------------------------------------------------------
// (a) paper-configuration policy matrix

// Run `tiled` under every (policy, slot-tables, overlap, backend)
// combination and require each result to be bitwise-identical to the
// untiled sequential reference (which kSequential with defaults also
// must match, so all combinations agree transitively).
void expect_policy_matrix(const TiledNest& tiled, const Kernel& kernel,
                          int force_m = -1) {
  const LoopNest& nest = tiled.nest();
  const DataSpace ref = run_sequential(nest.space, nest.deps, kernel);
  ParallelExecutor exec(tiled, kernel, force_m);
  for (exec::Policy p : kAllPolicies) {
    for (bool slots : {true, false}) {
      for (bool overlap : {true, false}) {
        for (mpisim::Backend b :
             {mpisim::Backend::kThread, mpisim::Backend::kEvent}) {
          exec.set_exec_policy(p);
          exec.set_use_slot_tables(slots);
          exec.set_use_overlap(overlap);
          exec.set_comm_backend(b);
          const DataSpace got = exec.run();
          EXPECT_EQ(DataSpace::max_abs_diff(got, ref, nest.space), 0.0)
              << "policy=" << exec::policy_name(p) << " slots=" << slots
              << " overlap=" << overlap
              << " backend=" << (b == mpisim::Backend::kThread ? "thread"
                                                               : "event");
        }
      }
    }
  }
}

TEST(ExecPolicy, MatrixSorRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  expect_policy_matrix(tiled, *app.kernel, 2);
}

TEST(ExecPolicy, MatrixSorNonRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 9, 6)));
  expect_policy_matrix(tiled, *app.kernel, 2);
}

TEST(ExecPolicy, MatrixJacobiNonRect) {
  AppInstance app = make_jacobi(8, 16, 12);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
  expect_policy_matrix(tiled, *app.kernel);
}

TEST(ExecPolicy, MatrixAdiAllTilings) {
  for (const MatQ& h :
       {adi_nr1_h(2, 4, 4), adi_nr2_h(2, 4, 4), adi_nr3_h(2, 4, 4)}) {
    AppInstance app = make_adi(8, 8);
    TiledNest tiled(app.nest, TilingTransform(h));
    expect_policy_matrix(tiled, *app.kernel);
  }
}

// ---------------------------------------------------------------------
// (c) sequential tiled executor

void expect_sequential_policies(const TiledNest& tiled,
                                const Kernel& kernel) {
  const LoopNest& nest = tiled.nest();
  const DataSpace ref = run_sequential(nest.space, nest.deps, kernel);
  SequentialTiledExecutor exec(tiled, kernel);
  for (exec::Policy p : kAllPolicies) {
    exec.set_exec_policy(p);
    const DataSpace got = exec.run();
    EXPECT_EQ(DataSpace::max_abs_diff(got, ref, nest.space), 0.0)
        << "sequential-tiled policy " << exec::policy_name(p);
  }
}

TEST(ExecPolicy, SequentialTiledPaperConfigs) {
  {
    AppInstance app = make_sor(12, 24);
    TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 9, 6)));
    expect_sequential_policies(tiled, *app.kernel);
  }
  {
    AppInstance app = make_jacobi(8, 16, 12);
    TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
    expect_sequential_policies(tiled, *app.kernel);
  }
  {
    AppInstance app = make_adi(8, 8);
    TiledNest tiled(app.nest, TilingTransform(adi_nr3_h(2, 4, 4)));
    expect_sequential_policies(tiled, *app.kernel);
  }
}

TEST(ExecPolicy, SequentialTiledNonIntegralP) {
  // Non-integral P is outside the parallel runtime's domain but the
  // sequential executor's policies must still agree bitwise.
  AppInstance app = make_heat(10, 14);
  TiledNest tiled(app.nest, TilingTransform(heat_nonrect_h(4, 3)));
  expect_sequential_policies(tiled, *app.kernel);
}

// ---------------------------------------------------------------------
// (b) random tilings — default compute_row fallback

// Same construction as runtime_fast_sweep_test: a random affine kernel
// whose every iteration result is unique.  Crucially it does NOT
// override compute_row, so the kSimd/kThreadPool row path runs the base
// class's per-point fallback — which must still be bitwise-identical.
class RandomKernel final : public Kernel {
 public:
  RandomKernel(Rng& rng, int n, int q) {
    for (int l = 0; l < q; ++l) {
      weights_.push_back(0.1 + 0.8 / (1.0 + static_cast<double>(l)) *
                                   rng.uniform01());
    }
    for (int k = 0; k < n; ++k) {
      point_coeffs_.push_back(0.001 * static_cast<double>(rng.uniform(-5, 5)));
      ic_coeffs_.push_back(0.01 * static_cast<double>(rng.uniform(-9, 9)));
    }
  }

  int arity() const override { return 1; }

  void compute(const VecI& j, const double* dv, double* out) const override {
    double acc = 0.0;
    for (std::size_t l = 0; l < weights_.size(); ++l) acc += weights_[l] * dv[l];
    acc /= static_cast<double>(weights_.size());
    for (std::size_t k = 0; k < point_coeffs_.size(); ++k) {
      acc += point_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

  void initial(const VecI& j, double* out) const override {
    double acc = 1.0;
    for (std::size_t k = 0; k < ic_coeffs_.size(); ++k) {
      acc += ic_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

 private:
  std::vector<double> weights_;
  std::vector<double> point_coeffs_;
  std::vector<double> ic_coeffs_;
};

VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    }
    if (lex_positive(d)) return d;
  }
}

std::optional<TilingTransform> random_tiling(Rng& rng, int n,
                                             const MatI& deps) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 6);
        } else if (rng.chance(0.3)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    TilingTransform t(h);
    if (!t.strides_compatible()) continue;
    MatI dprime = mul(t.Hp(), deps);
    bool fits = true;
    for (int k = 0; k < n && fits; ++k) {
      for (int l = 0; l < dprime.cols(); ++l) {
        if (dprime(k, l) > t.v(k)) fits = false;
      }
    }
    if (!fits) continue;
    return t;
  }
  return std::nullopt;
}

TEST(ExecPolicy, RandomTilingsAllPoliciesBitwiseEquivalent) {
  Rng rng(20260808);
  int executed = 0;
  int attempts = 0;
  i64 interior_total = 0;
  while (executed < 20 && attempts < 500) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 3));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) deps(r, c) = d[static_cast<std::size_t>(r)];
    }
    LoopNest nest;
    try {
      VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 3);
        hi[static_cast<std::size_t>(k)] =
            lo[static_cast<std::size_t>(k)] + rng.uniform(8, 16);
      }
      nest = make_rectangular_nest("rand", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;
    }
    if (n == 2 && rng.chance(0.5)) {
      MatI t = MatI::identity(n);
      t(1, 0) = rng.uniform(0, 2);
      try {
        nest = skew(nest, t);
      } catch (const LegalityError&) {
        continue;
      }
    }
    std::optional<TilingTransform> tiling = random_tiling(rng, n, nest.deps);
    if (!tiling) continue;
    RandomKernel kernel(rng, n, q);
    TiledNest tiled(nest, std::move(*tiling));
    const DataSpace ref = run_sequential(nest.space, nest.deps, kernel);
    ParallelExecutor exec(tiled, kernel);
    for (exec::Policy p : kAllPolicies) {
      exec.set_exec_policy(p);
      const DataSpace got = exec.run();
      EXPECT_EQ(DataSpace::max_abs_diff(got, ref, nest.space), 0.0)
          << "random instance " << executed << " policy "
          << exec::policy_name(p) << "\nH =\n"
          << tiled.transform().H().to_string();
    }
    SequentialTiledExecutor seq_exec(tiled, kernel);
    for (exec::Policy p : kAllPolicies) {
      seq_exec.set_exec_policy(p);
      const DataSpace got = seq_exec.run();
      EXPECT_EQ(DataSpace::max_abs_diff(got, ref, nest.space), 0.0)
          << "random instance " << executed << " sequential-tiled policy "
          << exec::policy_name(p);
    }
    interior_total += exec.classifier().num_interior();
    ++executed;
  }
  EXPECT_GE(executed, 20) << "random generator starved (" << attempts
                          << " attempts)";
  EXPECT_GT(interior_total, 0) << "no interior tiles across any instance: "
                                  "the batched row path was never exercised";
}

// ---------------------------------------------------------------------
// (d) compute_row contract on synthetic rows

// Run `k.compute_row` and the base-class per-point fallback (the
// contract's reference semantics: re-read dependences each point, so an
// aliased dependence observes just-written values) on copies of the same
// row, and require bitwise-identical output.  `dep_off[l]` positions
// dependence l's base pointer relative to the output base, in doubles.
void expect_row_matches_reference(const Kernel& k, i64 count, i64 stride,
                                  const std::vector<i64>& dep_off) {
  const int q = static_cast<int>(dep_off.size());
  // One backing array holds everything: slot 0.. for out and any alias,
  // plus a disjoint region beyond the row for non-aliased dependences.
  const std::size_t total = static_cast<std::size_t>((count + 8) * stride) +
                            256;
  std::vector<double> batched(total), reference(total);
  for (std::size_t i = 0; i < total; ++i) {
    batched[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
    reference[i] = batched[i];
  }
  const i64 out_base = 128;  // leaves room for backward aliases
  const VecI j0(3, 0);
  const VecI jstep = {0, 0, 1};
  auto run = [&](std::vector<double>& a, bool base_class) {
    std::vector<const double*> depp(static_cast<std::size_t>(q));
    for (int l = 0; l < q; ++l) {
      depp[static_cast<std::size_t>(l)] =
          a.data() + out_base + dep_off[static_cast<std::size_t>(l)];
    }
    double* out = a.data() + out_base;
    if (base_class) {
      k.Kernel::compute_row(j0, jstep, count, depp.data(), q, stride, out,
                            stride);
    } else {
      k.compute_row(j0, jstep, count, depp.data(), q, stride, out, stride);
    }
  };
  run(batched, false);
  run(reference, true);
  EXPECT_EQ(batched, reference)
      << "compute_row diverged from the per-point reference (count="
      << count << " stride=" << stride << ")";
}

TEST(ExecPolicy, ComputeRowSorAliasShapes) {
  AppInstance app = make_sor(8, 8);
  const Kernel& k = *app.kernel;  // q = 5, dep 1 is the in-row slot
  // No alias: all five dependences in the disjoint region past the row.
  expect_row_matches_reference(k, 16, 3, {60, 64, 68, 72, 76});
  // Backward alias m=1 on dep 1: the hand-written register-carried
  // recurrence chain must equal re-reading out[-stride] every point.
  expect_row_matches_reference(k, 16, 3, {60, -3, 68, 72, 76});
  // Backward alias m=2 (pointer-read chain, not the register carry).
  expect_row_matches_reference(k, 16, 3, {60, -6, 68, 72, 76});
  // Forward alias on dep 1 forces the per-point fallback; still bitwise.
  expect_row_matches_reference(k, 16, 3, {60, 3, 68, 72, 76});
  // Alias on a non-recurrence slot (dep 0) also forces the fallback.
  expect_row_matches_reference(k, 16, 3, {-3, 60, 68, 72, 76});
  // Unit stride, longer row.
  expect_row_matches_reference(k, 40, 1, {80, -1, 96, 104, 112});
}

TEST(ExecPolicy, ComputeRowJacobiNoAlias) {
  AppInstance app = make_jacobi(6, 8, 8);
  expect_row_matches_reference(*app.kernel, 24, 2, {64, 70, 76, 82, 88});
}

TEST(ExecPolicy, RowAliasDistance) {
  std::vector<double> a(256, 0.0);
  const double* base = a.data() + 128;
  auto dist = [&](i64 dep_off, i64 stride, i64 count) {
    return Kernel::row_alias_distance(base + dep_off, base, stride, count);
  };
  // Zero stride or identical pointers never alias.
  EXPECT_EQ(dist(0, 3, 10), 0);
  EXPECT_EQ(dist(5, 0, 10), 0);
  // Backward alias: dep = out - m*stride.
  EXPECT_EQ(dist(-3, 3, 10), 1);   // the |m|==1 divisionless fast path
  EXPECT_EQ(dist(-6, 3, 10), 2);
  EXPECT_EQ(dist(-27, 3, 10), 9);
  // Forward alias is negative m.
  EXPECT_EQ(dist(3, 3, 10), -1);
  EXPECT_EQ(dist(12, 3, 10), -4);
  // Negative stride mirrors the signs.
  EXPECT_EQ(dist(3, -3, 10), 1);
  EXPECT_EQ(dist(-3, -3, 10), -1);
  EXPECT_EQ(dist(6, -3, 10), 2);
  // Magnitude early-out: at or beyond the row span there is no alias,
  // even when the offset divides evenly.
  EXPECT_EQ(dist(-30, 3, 10), 0);
  EXPECT_EQ(dist(-33, 3, 10), 0);
  EXPECT_EQ(dist(30, 3, 10), 0);
  // Non-multiples inside the span do not alias any row point.
  EXPECT_EQ(dist(-4, 3, 10), 0);
  EXPECT_EQ(dist(7, 3, 10), 0);
}

// ---------------------------------------------------------------------
// (e) thread pool — ExecPolicy.ThreadPool* is the TSan CI filter

TEST(ExecPolicy, ThreadPoolRunsEveryIndexOnce) {
  exec::ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  const i64 n = 10000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](i64 i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                std::memory_order_relaxed);
  });
  for (i64 i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ExecPolicy, ThreadPoolZeroWorkersAndTrivialSizes) {
  // A zero-worker pool still makes progress: the caller participates.
  exec::ThreadPool pool(0);
  std::atomic<i64> sum{0};
  pool.parallel_for(5, [&](i64 i) { sum += i; });
  EXPECT_EQ(sum.load(), 10);
  pool.parallel_for(0, [&](i64) { ADD_FAILURE() << "n=0 must not call fn"; });
  std::atomic<int> ones{0};
  pool.parallel_for(1, [&](i64 i) {
    EXPECT_EQ(i, 0);
    ++ones;
  });
  EXPECT_EQ(ones.load(), 1);
}

TEST(ExecPolicy, ThreadPoolExceptionPropagatesAndPoolSurvives) {
  exec::ThreadPool pool(2);
  std::atomic<i64> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](i64 i) {
                          ++ran;
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Remaining indices still execute (the contract), and the pool is
  // reusable afterwards.
  EXPECT_EQ(ran.load(), 100);
  std::atomic<i64> sum{0};
  pool.parallel_for(10, [&](i64 i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ExecPolicy, ThreadPoolConcurrentSubmitters) {
  // Multiple rank threads drive the shared pool concurrently in the
  // executor; model that directly.
  exec::ThreadPool pool(2);
  constexpr int kSubmitters = 4;
  const i64 n = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(static_cast<std::size_t>(n));
  }
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      pool.parallel_for(n, [&, s](i64 i) {
        hits[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]
            .fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    for (i64 i = 0; i < n; ++i) {
      EXPECT_EQ(
          hits[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]
              .load(),
          1)
          << "submitter " << s << " index " << i;
    }
  }
}

TEST(ExecPolicy, ThreadPoolPlaneParallelExecutorGenuinelyFansOut) {
  // The paper's SOR/Jacobi/ADI tilings are NOT plane-parallel (their
  // TTIS dependences have zero first components), so kThreadPool
  // degrades to the kSimd path there.  Build a nest that IS: every
  // dependence advances dimension 0 and the tile extent there is 1, so
  // every TTIS dependence has d'_0 >= 1 and the rows of a j'_0-plane are
  // independent.  This is the test that actually exercises the pooled
  // sweep under TSan.
  const int n = 2;
  MatI deps(n, 2);
  deps(0, 0) = 1;
  deps(1, 0) = 0;  // (1, 0)
  deps(0, 1) = 1;
  deps(1, 1) = 1;  // (1, 1)
  LoopNest nest = make_rectangular_nest("pp", VecI{0, 0}, VecI{14, 20}, deps);
  MatI p(n, n);
  p(0, 0) = 1;
  p(1, 1) = 6;
  TiledNest tiled(nest, TilingTransform(inverse(to_rat(p))));
  Rng rng(7);
  RandomKernel kernel(rng, n, 2);
  ParallelExecutor exec(tiled, kernel);
  ASSERT_TRUE(exec.plane_parallel())
      << "test construction no longer yields a plane-parallel tiling";
  exec.set_exec_policy(exec::Policy::kSequential);
  const DataSpace ref = exec.run();
  exec.set_exec_policy(exec::Policy::kThreadPool);
  const DataSpace got = exec.run();
  EXPECT_EQ(DataSpace::max_abs_diff(got, ref, nest.space), 0.0);
  EXPECT_EQ(DataSpace::max_abs_diff(
                ref, run_sequential(nest.space, nest.deps, kernel),
                nest.space),
            0.0);
}

TEST(ExecPolicy, ThreadPoolPolicyOnPaperConfig) {
  // Degradation case under TSan: plane_parallel() false, kThreadPool
  // must take the kSimd path and still match.
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  ParallelExecutor exec(tiled, *app.kernel, 2);
  EXPECT_FALSE(exec.plane_parallel());
  exec.set_exec_policy(exec::Policy::kSequential);
  const DataSpace ref = exec.run();
  exec.set_exec_policy(exec::Policy::kThreadPool);
  const DataSpace got = exec.run();
  EXPECT_EQ(DataSpace::max_abs_diff(got, ref, app.nest.space), 0.0);
}

// ---------------------------------------------------------------------
// (f) memory backends

TEST(ExecPolicy, BackendsReturnAlignedWritableBlocks) {
  for (exec::MemoryBackend* b :
       {&exec::aligned_backend(), &exec::pooled_backend()}) {
    for (std::size_t bytes : {8u, 64u, 100u, 4096u, 1u << 16}) {
      void* p = b->allocate(bytes);
      ASSERT_NE(p, nullptr) << b->name();
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % exec::kLdsAlignment, 0u)
          << b->name() << " " << bytes;
      std::memset(p, 0xAB, bytes);
      b->deallocate(p, bytes);
    }
  }
}

TEST(ExecPolicy, PooledBackendRecyclesBlocks) {
  exec::MemoryBackend& pool = exec::pooled_backend();
  void* a = pool.allocate(1024);
  std::memset(a, 0, 1024);
  pool.deallocate(a, 1024);
  // Steady state: an equal-sized reallocation is a free-list pop of the
  // exact block just returned.
  void* b = pool.allocate(1024);
  EXPECT_EQ(a, b);
  pool.deallocate(b, 1024);
}

class CountingBackend final : public exec::MemoryBackend {
 public:
  void* allocate(std::size_t bytes) override {
    ++allocs;
    return exec::aligned_backend().allocate(bytes);
  }
  void deallocate(void* p, std::size_t bytes) override {
    ++frees;
    exec::aligned_backend().deallocate(p, bytes);
  }
  const char* name() const override { return "counting-test"; }
  int allocs = 0;
  int frees = 0;
};

TEST(ExecPolicy, BackendRegistryFindsBuiltinsAndRegistered) {
  EXPECT_EQ(exec::find_memory_backend("aligned"), &exec::aligned_backend());
  EXPECT_EQ(exec::find_memory_backend("pooled"), &exec::pooled_backend());
  EXPECT_EQ(exec::find_memory_backend("no-such-backend"), nullptr);
  static CountingBackend counting;  // registry requires static lifetime
  exec::register_memory_backend(&counting);
  EXPECT_EQ(exec::find_memory_backend("counting-test"), &counting);
}

TEST(ExecPolicy, DoubleBufferAssignGrowAndMove) {
  CountingBackend counting;
  {
    exec::DoubleBuffer buf(&counting);
    EXPECT_TRUE(buf.empty());
    buf.assign(100, 1.5);
    ASSERT_EQ(buf.size(), 100u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  exec::kLdsAlignment,
              0u);
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(buf[i], 1.5);
    // Shrinking reuses capacity: no new allocation.
    const int allocs_before = counting.allocs;
    double* data_before = buf.data();
    buf.assign(50, 2.0);
    EXPECT_EQ(counting.allocs, allocs_before);
    EXPECT_EQ(buf.data(), data_before);
    ASSERT_EQ(buf.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(buf[i], 2.0);
    // Growing reallocates and refills.
    buf.assign(200, 3.0);
    ASSERT_EQ(buf.size(), 200u);
    for (std::size_t i = 0; i < 200; ++i) EXPECT_EQ(buf[i], 3.0);
    // Move steals storage without a fresh allocation.
    const int allocs_after_grow = counting.allocs;
    exec::DoubleBuffer moved(std::move(buf));
    EXPECT_EQ(counting.allocs, allocs_after_grow);
    ASSERT_EQ(moved.size(), 200u);
    EXPECT_EQ(moved[199], 3.0);
  }
  EXPECT_EQ(counting.allocs, counting.frees)
      << "DoubleBuffer leaked through its backend";
}

TEST(ExecPolicy, ExecutorThroughPooledBackendMatches) {
  AppInstance app = make_jacobi(8, 16, 12);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
  ParallelExecutor exec(tiled, *app.kernel);
  const DataSpace ref = exec.run();
  exec.set_memory_backend(&exec::pooled_backend());
  const DataSpace pooled1 = exec.run();
  const DataSpace pooled2 = exec.run();  // second run hits the free lists
  EXPECT_EQ(DataSpace::max_abs_diff(pooled1, ref, app.nest.space), 0.0);
  EXPECT_EQ(DataSpace::max_abs_diff(pooled2, ref, app.nest.space), 0.0);
}

// ---------------------------------------------------------------------
// policy-lifted copy loops

TEST(ExecPolicy, CopyLoopsMatchScalarReference) {
  const int arity = 2;
  const i64 la_slots = 64;
  std::vector<double> la(static_cast<std::size_t>(la_slots * arity));
  for (std::size_t i = 0; i < la.size(); ++i) {
    la[i] = 0.25 * static_cast<double>(i) - 3.0;
  }
  const std::vector<i64> slots = {3, 7, 8, 21, 40, 59};
  const i64 off = 2;
  for (exec::Policy p : kAllPolicies) {
    std::vector<double> packed(slots.size() * arity, 0.0);
    exec::gather_slots(p, la.data(), la_slots, slots, off, arity,
                       packed.data());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      for (int v = 0; v < arity; ++v) {
        EXPECT_EQ(packed[i * arity + static_cast<std::size_t>(v)],
                  la[static_cast<std::size_t>((slots[i] + off) * arity + v)])
            << exec::policy_name(p);
      }
    }
    std::vector<double> la2(la.size(), 0.0);
    exec::scatter_slots(p, la2.data(), la_slots, slots, off, arity,
                        packed.data());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      for (int v = 0; v < arity; ++v) {
        EXPECT_EQ(la2[static_cast<std::size_t>((slots[i] + off) * arity + v)],
                  la[static_cast<std::size_t>((slots[i] + off) * arity + v)]);
      }
    }
    std::vector<double> dst(3 * 10 * arity, 0.0);
    exec::copy_row(p, la.data(), 4, dst.data(), 6, 10, arity);
    for (i64 i = 0; i < 10; ++i) {
      for (int v = 0; v < arity; ++v) {
        EXPECT_EQ(dst[static_cast<std::size_t>(i * 6 + v)],
                  la[static_cast<std::size_t>(i * 4 + v)]);
      }
    }
  }
}

// ---------------------------------------------------------------------
// (g) names and environment plumbing

TEST(ExecPolicy, PolicyNamesRoundTrip) {
  for (exec::Policy p : kAllPolicies) {
    exec::Policy parsed;
    ASSERT_TRUE(exec::policy_from_name(exec::policy_name(p), &parsed))
        << exec::policy_name(p);
    EXPECT_EQ(parsed, p);
  }
  exec::Policy ignored;
  EXPECT_FALSE(exec::policy_from_name("vector-of-doom", &ignored));
  EXPECT_FALSE(exec::policy_from_name("", &ignored));
}

TEST(ExecPolicy, PolicyFromEnvSelectsAndValidates) {
  ASSERT_EQ(unsetenv("CTILE_EXEC_POLICY"), 0);
  EXPECT_EQ(exec::policy_from_env(exec::Policy::kSimd),
            exec::Policy::kSimd);
  ASSERT_EQ(setenv("CTILE_EXEC_POLICY", "sequential", 1), 0);
  EXPECT_EQ(exec::policy_from_env(exec::Policy::kSimd),
            exec::Policy::kSequential);
  ASSERT_EQ(setenv("CTILE_EXEC_POLICY", "threadpool", 1), 0);
  EXPECT_EQ(exec::policy_from_env(exec::Policy::kSimd),
            exec::Policy::kThreadPool);
  // Executors pick the env policy up at construction.
  {
    AppInstance app = make_sor(12, 24);
    TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
    ParallelExecutor exec(tiled, *app.kernel, 2);
    EXPECT_EQ(exec.exec_policy(), exec::Policy::kThreadPool);
    SequentialTiledExecutor seq(tiled, *app.kernel);
    EXPECT_EQ(seq.exec_policy(), exec::Policy::kThreadPool);
  }
  ASSERT_EQ(setenv("CTILE_EXEC_POLICY", "warp-drive", 1), 0);
  EXPECT_THROW(exec::policy_from_env(exec::Policy::kSimd), Error);
  ASSERT_EQ(unsetenv("CTILE_EXEC_POLICY"), 0);
}

}  // namespace
}  // namespace ctile
