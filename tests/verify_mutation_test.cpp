// Mutation tests of the static plan verifier: seed one illegal
// perturbation into an otherwise-proven-safe lowered plan and assert
// that exactly the rule owning that layer fires, with a witness naming
// the seeded defect.  These are the soundness tests of ctile-verify —
// a verifier that accepts a broken plan is worse than none.
#include <gtest/gtest.h>

#include <memory>

#include "apps/kernels.hpp"
#include "support/error.hpp"
#include "verify/gate.hpp"
#include "verify/hb_graph.hpp"
#include "verify/verifier.hpp"

namespace ctile {
namespace {

using verify::PlanModel;
using verify::Rule;
using verify::Severity;
using verify::VerifyReport;

/// A lowered SOR plan (the paper's Fig. 6 configuration) plus the
/// TiledNest it snapshots (which must outlive the model).
struct Lowered {
  std::unique_ptr<TiledNest> tiled;
  PlanModel model;
};

Lowered lower_sor() {
  AppInstance app = make_sor(6, 9);
  Lowered out;
  out.tiled = std::make_unique<TiledNest>(app.nest,
                                          TilingTransform(sor_rect_h(2, 3, 4)));
  out.model = verify::lower_and_snapshot(*out.tiled, /*force_m=*/2);
  return out;
}

TEST(VerifyMutation, UnmutatedPlanIsClean) {
  Lowered lw = lower_sor();
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(VerifyMutation, NegatedDependenceColumnFiresV1) {
  Lowered lw = lower_sor();
  lw.model.D.negate_col(0);
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV1TilingLegality), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV1TilingLegality);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The witness names the (now negated) dependence column.
  ASSERT_TRUE(d->witness.dep.has_value());
  EXPECT_EQ(*d->witness.dep, lw.model.D.col(0));
  EXPECT_FALSE(d->fix_hint.empty());
}

TEST(VerifyMutation, HaloShrunkByOneFiresV2WithConcreteSlot) {
  Lowered lw = lower_sor();
  int shrunk_dim = -1;
  for (int k = 0; k < lw.model.n && shrunk_dim < 0; ++k) {
    if (lw.model.dep_max[static_cast<std::size_t>(k)] > 0) shrunk_dim = k;
  }
  ASSERT_GE(shrunk_dim, 0) << "SOR must have a dependence-carrying dim";
  ASSERT_FALSE(lw.model.lds.empty());
  for (auto& [len, lds] : lw.model.lds) {
    (void)len;
    lds.off[static_cast<std::size_t>(shrunk_dim)] -= 1;
  }
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV2HaloSufficiency), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV2HaloSufficiency);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The witness pins the shrunken dimension and a concrete out-of-range
  // linear LDS slot (negative: before the start of the window array).
  ASSERT_TRUE(d->witness.dim.has_value());
  EXPECT_EQ(*d->witness.dim, shrunk_dim);
  ASSERT_TRUE(d->witness.lds_slot.has_value());
  EXPECT_LT(*d->witness.lds_slot, 0);
  // No other rule's layer was touched.
  EXPECT_EQ(report.count(Rule::kV1TilingLegality), 0);
  EXPECT_EQ(report.count(Rule::kV5InteriorSoundness), 0);
}

TEST(VerifyMutation, DroppedMessageFiresV3) {
  Lowered lw = lower_sor();
  VecI dropped;
  for (std::size_t i = 0; i < lw.model.tile_deps.size(); ++i) {
    if (lw.model.tile_deps[i].dir >= 0) {
      dropped = lw.model.tile_deps[i].ds;
      lw.model.tile_deps.erase(lw.model.tile_deps.begin() +
                               static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  ASSERT_FALSE(dropped.empty()) << "SOR must communicate";
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV3CommCompleteness), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV3CommCompleteness);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The witness names exactly the dropped tile dependence.
  ASSERT_TRUE(d->witness.dep.has_value());
  EXPECT_EQ(*d->witness.dep, dropped);
}

TEST(VerifyMutation, DuplicatedTileDepFiresPipelinedTagUniqueness) {
  // The pipelined (overlapped) schedule matches pre-posted receives by
  // (source rank, tag) alone, so a duplicated schedule entry — two
  // receive events with the same (source, direction, sender chain
  // position) at one receiver — would cross the messages.  V3's
  // tag-uniqueness proof must catch it.
  Lowered lw = lower_sor();
  ASSERT_TRUE(lw.model.pipelined);
  const verify::TileDepModel* cross = nullptr;
  for (const verify::TileDepModel& dep : lw.model.tile_deps) {
    if (dep.dir >= 0) {
      cross = &dep;
      break;
    }
  }
  ASSERT_NE(cross, nullptr) << "SOR must communicate";
  lw.model.tile_deps.push_back(*cross);
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV3CommCompleteness), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV3CommCompleteness);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("pipelined"), std::string::npos)
      << d->message;
  // The blocking-only discipline tolerates the duplicate (channel FIFO
  // still delivers both copies in order): the rule is pipelined-gated.
  lw.model.pipelined = false;
  const VerifyReport blocking_report = verify::verify_plan(lw.model);
  EXPECT_EQ(blocking_report.count(Rule::kV3CommCompleteness), 0)
      << blocking_report.to_string();
}

TEST(VerifyMutation, UnorderedScheduleEntryFiresV4) {
  Lowered lw = lower_sor();
  ASSERT_GE(lw.model.n, 2);
  ASSERT_FALSE(lw.model.directions.empty());
  verify::TileDepModel bad;
  bad.ds.assign(static_cast<std::size_t>(lw.model.n), 0);
  bad.ds[0] = 1;
  bad.ds[1] = -1;  // Pi . ds = 0: not strictly ordered
  bad.dm = bad.ds;
  bad.dm.erase(bad.dm.begin() + lw.model.m);
  bad.dir = 0;
  const VecI seeded = bad.ds;
  lw.model.tile_deps.push_back(std::move(bad));
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV4ScheduleSoundness), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV4ScheduleSoundness);
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->witness.dep.has_value());
  EXPECT_EQ(*d->witness.dep, seeded);
}

TEST(VerifyMutation, BoundaryTileForcedInteriorFiresV5) {
  Lowered lw = lower_sor();
  VecI forced;
  for (const VecI& js : lw.model.valid_tiles) {
    bool interior = false;
    for (const VecI& t : lw.model.interior_tiles) {
      if (t == js) {
        interior = true;
        break;
      }
    }
    if (!interior) {
      forced = js;
      break;
    }
  }
  ASSERT_FALSE(forced.empty()) << "SOR tiling must have boundary tiles";
  lw.model.interior_tiles.push_back(forced);
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV5InteriorSoundness), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV5InteriorSoundness);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The witness is the forced tile (plus the violating point or dep).
  ASSERT_TRUE(d->witness.tile.has_value());
  EXPECT_EQ(*d->witness.tile, forced);
  EXPECT_TRUE(d->witness.point.has_value() || d->witness.dep.has_value());
  // Genuine interior tiles stay accepted: only the seeded one fires.
  for (const verify::Diagnostic& diag : report.diagnostics()) {
    if (diag.rule == Rule::kV5InteriorSoundness &&
        diag.witness.tile.has_value()) {
      EXPECT_EQ(*diag.witness.tile, forced);
    }
  }
}

// ---------------------------------------------------------------------
// Concurrency mutants (V6-V8): perturb one fact of the pipelined
// schedule, the pool discipline or the parallel-policy claims and
// assert the owning rule fires with a witness naming the seeded defect.
// ---------------------------------------------------------------------

TEST(VerifyMutation, UnpackAtPostTimeFiresV6) {
  // Unpacking a pre-posted irecv's payload at post time drops every
  // message happens-before edge: each halo unpack races the pack+isend
  // that produces its payload.
  Lowered lw = lower_sor();
  ASSERT_TRUE(lw.model.has_concurrency_facts);
  lw.model.schedule.unpack_at_wait = false;
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV6RaceFreedom), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV6RaceFreedom);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The witness names both events of the unordered pair and a slot.
  EXPECT_NE(d->message.find("pack+isend"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("unpack"), std::string::npos) << d->message;
  ASSERT_TRUE(d->witness.tile.has_value());
  EXPECT_TRUE(d->witness.lds_slot.has_value());
  // No other layer was touched.
  EXPECT_EQ(report.count(Rule::kV3CommCompleteness), 0);
  EXPECT_EQ(report.count(Rule::kV7BufferLifetime), 0);
  EXPECT_EQ(report.count(Rule::kV8PolicySoundness), 0);
}

TEST(VerifyMutation, BandBeforeRemainderFiresV6) {
  // Dropping the remainder -> band program-order edge leaves the band
  // sweep racing the remainder sweep it reads from.
  Lowered lw = lower_sor();
  lw.model.schedule.remainder_before_band = false;
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV6RaceFreedom), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV6RaceFreedom);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("remainder"), std::string::npos) << d->message;
  ASSERT_TRUE(d->witness.lds_slot.has_value());
  EXPECT_EQ(report.count(Rule::kV7BufferLifetime), 0);
  EXPECT_EQ(report.count(Rule::kV8PolicySoundness), 0);
}

TEST(VerifyMutation, SendBeforeBandFiresV6) {
  // Dropping the band -> pack+isend edge lets the pack gather band
  // slots the band sweep has not written yet.
  Lowered lw = lower_sor();
  lw.model.schedule.band_before_send = false;
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV6RaceFreedom), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV6RaceFreedom);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("pack+isend"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("band"), std::string::npos) << d->message;
  EXPECT_EQ(report.count(Rule::kV7BufferLifetime), 0);
  EXPECT_EQ(report.count(Rule::kV8PolicySoundness), 0);
}

TEST(VerifyMutation, ShrunkPackRegionFiresV6) {
  // A pack region that no longer covers the halo leaves cross-rank
  // reads with no happens-before-ordered writer (V6); the data-coverage
  // rule V3 legitimately co-fires on the same defect.
  Lowered lw = lower_sor();
  bool shrunk = false;
  for (verify::DirectionModel& dir : lw.model.directions) {
    for (std::size_t k = 0; k < dir.pack.lo.size(); ++k) {
      if (dir.pack.lo[k] < dir.pack.hi[k]) {
        dir.pack.lo[k] += 1;
        shrunk = true;
        break;
      }
    }
    if (shrunk) break;
  }
  ASSERT_TRUE(shrunk) << "SOR pack regions must be non-degenerate";
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV6RaceFreedom), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV6RaceFreedom);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(VerifyMutation, DroppedHbEdgeIsCaughtWithBothEvents) {
  // Knock one message edge out of an otherwise-proven HB graph: the
  // race check must report exactly that unordered pair.
  Lowered lw = lower_sor();
  const verify::HbGraph graph = verify::build_hb_graph(lw.model);
  ASSERT_TRUE(verify::hb_race_check(graph, lw.model, 16).empty());

  int send = -1, unpack = -1;
  verify::for_each_receive_event(
      lw.model, [&](const VecI& pred, std::size_t di, const VecI& recv) {
        if (send >= 0) return;
        send = graph.find(pred, verify::HbPhase::kPackSend,
                          lw.model.tile_deps[di].dir);
        unpack = graph.find(recv, verify::HbPhase::kUnpack,
                            static_cast<int>(di));
      });
  ASSERT_GE(send, 0);
  ASSERT_GE(unpack, 0);
  verify::HbGraph mutated = graph;
  ASSERT_TRUE(mutated.drop_edge(send, unpack));
  const std::vector<verify::HbRace> races =
      verify::hb_race_check(mutated, lw.model, 16);
  ASSERT_FALSE(races.empty());
  bool found = false;
  for (const verify::HbRace& race : races) {
    if (race.writer == send && race.reader == unpack) found = true;
  }
  EXPECT_TRUE(found) << "dropped edge " << graph.event(send).to_string()
                     << " -> " << graph.event(unpack).to_string()
                     << " not witnessed";
}

TEST(VerifyMutation, NonEagerTransitCopyFiresV7) {
  // If the transit copy is lazy but the sender recycles its buffer at
  // isend initiation, the next tile's pack rewrites an in-flight
  // payload.
  Lowered lw = lower_sor();
  lw.model.pool.eager_transit_copy = false;
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV7BufferLifetime), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV7BufferLifetime);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("rewritten"), std::string::npos) << d->message;
  ASSERT_TRUE(d->witness.tile.has_value());
  EXPECT_EQ(report.count(Rule::kV6RaceFreedom), 0);
  EXPECT_EQ(report.count(Rule::kV8PolicySoundness), 0);
}

TEST(VerifyMutation, TransitReleasedBeforeUnpackFiresV7) {
  // Releasing the transit buffer before the unpack completes lets the
  // pool recycle storage an in-flight message still owns.
  Lowered lw = lower_sor();
  lw.model.pool.transit_released_after_unpack = false;
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV7BufferLifetime), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV7BufferLifetime);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("recycl"), std::string::npos) << d->message;
  ASSERT_TRUE(d->witness.tile.has_value());
  ASSERT_TRUE(d->witness.dep.has_value());
  EXPECT_EQ(report.count(Rule::kV6RaceFreedom), 0);
}

TEST(VerifyMutation, FalsePlaneParallelClaimFiresV8) {
  // SOR's D' has a column with d'_0 = 0 and a nonzero middle component,
  // so the plan correctly does NOT claim plane parallelism; forcing the
  // claim would fan dependent rows of one j'_0-plane across the pool.
  Lowered lw = lower_sor();
  ASSERT_FALSE(lw.model.plane_parallel_claim)
      << "SOR rect must be plane-sequential";
  int bad_l = -1;
  for (int l = 0; l < lw.model.Dp.cols(); ++l) {
    if (lw.model.Dp(0, l) == 0 && lw.model.Dp(1, l) != 0) bad_l = l;
  }
  ASSERT_GE(bad_l, 0);
  lw.model.plane_parallel_claim = true;
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV8PolicySoundness), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV8PolicySoundness);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("plane-parallel claim unsound"),
            std::string::npos)
      << d->message;
  // The witness is the dependence column that connects distinct rows.
  ASSERT_TRUE(d->witness.dep.has_value());
  EXPECT_EQ((*d->witness.dep)[0], 0);
  ASSERT_TRUE(d->witness.dim.has_value());
  EXPECT_NE((*d->witness.dep)[static_cast<std::size_t>(*d->witness.dim)], 0);
  // Only the policy layer was touched.
  EXPECT_EQ(report.count(Rule::kV6RaceFreedom), 0);
  EXPECT_EQ(report.count(Rule::kV7BufferLifetime), 0);
}

TEST(VerifyMutation, CorruptedAliasClaimFiresV8) {
  // A wrong SIMD alias distance mis-splits the vectorized recurrence:
  // a lane would be read before it is written.
  Lowered lw = lower_sor();
  ASSERT_FALSE(lw.model.lds.empty());
  for (auto& [len, lds] : lw.model.lds) {
    (void)len;
    ASSERT_FALSE(lds.alias.empty());
    lds.alias[0] += 1;
  }
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV8PolicySoundness), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV8PolicySoundness);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("alias-distance claim unsound"),
            std::string::npos)
      << d->message;
  ASSERT_TRUE(d->witness.point.has_value());
  ASSERT_TRUE(d->witness.dep.has_value());
  ASSERT_TRUE(d->witness.lds_slot.has_value());
  EXPECT_EQ(report.count(Rule::kV6RaceFreedom), 0);
}

TEST(VerifyMutation, CorruptedSlotDeltaClaimFiresV8) {
  // A wrong per-(row, dep) slot delta makes the strength-reduced sweep
  // read the wrong slot outright; V8 re-derives the delta from the
  // layout and rejects the claim.
  Lowered lw = lower_sor();
  for (auto& [len, lds] : lw.model.lds) {
    (void)len;
    ASSERT_FALSE(lds.deltas.empty());
    lds.deltas[0] += 1;
  }
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_FALSE(report.ok());
  ASSERT_GE(report.count(Rule::kV8PolicySoundness), 1) << report.to_string();
  const verify::Diagnostic* d = report.first(Rule::kV8PolicySoundness);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("slot delta unsound"), std::string::npos)
      << d->message;
}

TEST(VerifyMutation, BlockingScheduleToleratesPoolMutants) {
  // The blocking reference schedule keeps no message in flight past the
  // pack, so the eager-copy discipline is not load-bearing there: V7's
  // rewrite rule is pipelined-gated.
  Lowered lw = lower_sor();
  lw.model.pipelined = false;
  lw.model.pool.eager_transit_copy = false;
  const VerifyReport report = verify::verify_plan(lw.model);
  EXPECT_EQ(report.count(Rule::kV7BufferLifetime), 0) << report.to_string();
}

TEST(VerifyMutation, FindingsPerRuleAreCapped) {
  Lowered lw = lower_sor();
  lw.model.D.negate_col(0);
  verify::VerifyOptions opts;
  opts.max_findings_per_rule = 1;
  const VerifyReport report = verify::verify_plan(lw.model, opts);
  EXPECT_EQ(report.count(Rule::kV1TilingLegality), 1) << report.to_string();
}

TEST(VerifyMutation, ReportRendersWitnessAndJson) {
  Lowered lw = lower_sor();
  lw.model.D.negate_col(0);
  const VerifyReport report = verify::verify_plan(lw.model);
  ASSERT_FALSE(report.ok());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("error[V1]"), std::string::npos) << text;
  EXPECT_NE(text.find("witness:"), std::string::npos) << text;
  EXPECT_NE(text.find("fix:"), std::string::npos) << text;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\":\"V1\""), std::string::npos) << json;
}

// The executor gate: a clean plan runs; an installed gate that rejects
// aborts the run by throwing before any rank starts.
TEST(VerifyGate, CleanPlanRunsUnderGate) {
  AppInstance app = make_sor(6, 9);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 3, 4)));
  ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
  const VerifyReport report = verify::verify_executor(exec);
  EXPECT_TRUE(report.empty()) << report.to_string();
  verify::enable_verify_before_run(exec);
  EXPECT_NO_THROW({ exec.run(); });
}

TEST(VerifyGate, ThrowingGateAbortsRun) {
  AppInstance app = make_sor(6, 9);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 3, 4)));
  ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
  exec.set_pre_run_gate(
      []() { throw LegalityError("rejected by test gate"); });
  EXPECT_THROW({ exec.run(); }, LegalityError);
  // Clearing the gate restores normal execution.
  exec.set_pre_run_gate(nullptr);
  EXPECT_NO_THROW({ exec.run(); });
}

TEST(VerifyGate, SequentialExecutorGate) {
  AppInstance app = make_sor(6, 9);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 3, 4)));
  SequentialTiledExecutor exec(tiled, *app.kernel);
  verify::enable_verify_before_run(exec);
  EXPECT_NO_THROW({ exec.run(); });
}

}  // namespace
}  // namespace ctile
