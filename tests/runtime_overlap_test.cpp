// Equivalence of the overlapped (pipelined) schedule with the blocking
// RECEIVE/COMPUTE/SEND reference:
//
//   (a) ParallelExecutor in its default overlapped mode produces a
//       bitwise-identical DataSpace (and identical message counts) to
//       set_use_overlap(false) on the paper's SOR / Jacobi / ADI
//       configurations and on random skewed legal tilings,
//   (b) the remainder/band split composes with both pack paths (slot
//       tables on and off),
//   (c) under an injected transfer-latency model the results stay
//       bitwise identical while the overlapped schedule measurably hides
//       the wire time the blocking schedule eats in send_wait_s.
#include <gtest/gtest.h>

#include <optional>

#include "apps/kernels.hpp"
#include "deps/skew.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/parallel_executor.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

// Same construction as runtime_fast_sweep_test: a random affine kernel
// whose every iteration result is unique, so any reordering, crossed
// message or misread halo value changes the output detectably.
class RandomKernel final : public Kernel {
 public:
  RandomKernel(Rng& rng, int n, int q) {
    for (int l = 0; l < q; ++l) {
      weights_.push_back(0.1 + 0.8 / (1.0 + static_cast<double>(l)) *
                                   rng.uniform01());
    }
    for (int k = 0; k < n; ++k) {
      point_coeffs_.push_back(0.001 * static_cast<double>(rng.uniform(-5, 5)));
      ic_coeffs_.push_back(0.01 * static_cast<double>(rng.uniform(-9, 9)));
    }
  }

  int arity() const override { return 1; }

  void compute(const VecI& j, const double* dv, double* out) const override {
    double acc = 0.0;
    for (std::size_t l = 0; l < weights_.size(); ++l) acc += weights_[l] * dv[l];
    acc /= static_cast<double>(weights_.size());
    for (std::size_t k = 0; k < point_coeffs_.size(); ++k) {
      acc += point_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

  void initial(const VecI& j, double* out) const override {
    double acc = 1.0;
    for (std::size_t k = 0; k < ic_coeffs_.size(); ++k) {
      acc += ic_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

 private:
  std::vector<double> weights_;
  std::vector<double> point_coeffs_;
  std::vector<double> ic_coeffs_;
};

VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    }
    if (lex_positive(d)) return d;
  }
}

std::optional<TilingTransform> random_tiling(Rng& rng, int n,
                                             const MatI& deps) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 6);
        } else if (rng.chance(0.3)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    TilingTransform t(h);
    if (!t.strides_compatible()) continue;
    // Heavily skewed candidates can have lattice extents v_k far beyond
    // the diagonal tile sizes (lcm blow-up); the Fourier-Motzkin tile
    // space projection is super-polynomial in such coefficients, so cap
    // them to keep the property test fast (this prunes pathological
    // *generator* candidates, not behavior under test).
    bool small = true;
    for (int k = 0; k < n; ++k) {
      if (t.v(k) > 32) small = false;
    }
    if (!small) continue;
    MatI dprime = mul(t.Hp(), deps);
    bool fits = true;
    for (int k = 0; k < n && fits; ++k) {
      for (int l = 0; l < dprime.cols(); ++l) {
        if (dprime(k, l) > t.v(k)) fits = false;
      }
    }
    if (!fits) continue;
    return t;
  }
  return std::nullopt;
}

// Overlapped (default) vs blocking reference vs plain sequential: all
// three must agree bitwise, and the two schedules must move exactly the
// same messages.  Returns the message count so callers can assert the
// pipelined machinery was actually exercised.
i64 check_config(const TiledNest& tiled, const Kernel& kernel,
                 int force_m = -1) {
  const LoopNest& nest = tiled.nest();
  ParallelExecutor exec(tiled, kernel, force_m);
  EXPECT_TRUE(exec.use_overlap()) << "overlapped schedule must be the default";
  ParallelRunStats overlapped_stats;
  DataSpace overlapped = exec.run(&overlapped_stats);
  exec.set_use_overlap(false);
  ParallelRunStats blocking_stats;
  DataSpace blocking = exec.run(&blocking_stats);
  EXPECT_EQ(overlapped_stats.points_computed, blocking_stats.points_computed);
  EXPECT_EQ(overlapped_stats.messages, blocking_stats.messages);
  EXPECT_EQ(overlapped_stats.doubles, blocking_stats.doubles);
  EXPECT_EQ(DataSpace::max_abs_diff(overlapped, blocking, nest.space), 0.0)
      << "overlapped schedule diverged from blocking reference\nH =\n"
      << tiled.transform().H().to_string();
  DataSpace seq = run_sequential(nest.space, nest.deps, kernel);
  EXPECT_EQ(DataSpace::max_abs_diff(overlapped, seq, nest.space), 0.0);
  return overlapped_stats.messages;
}

TEST(Overlap, SorRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  EXPECT_GT(check_config(tiled, *app.kernel, 2), 0);
}

TEST(Overlap, SorNonRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 9, 6)));
  check_config(tiled, *app.kernel, 2);
}

TEST(Overlap, JacobiRectAndNonRect) {
  for (const MatQ& h : {jacobi_rect_h(2, 4, 3), jacobi_nonrect_h(2, 4, 3)}) {
    AppInstance app = make_jacobi(8, 16, 12);
    TiledNest tiled(app.nest, TilingTransform(h));
    EXPECT_GT(check_config(tiled, *app.kernel), 0);
  }
}

TEST(Overlap, AdiAllFlavours) {
  for (const MatQ& h :
       {adi_rect_h(2, 4, 4), adi_nr1_h(2, 4, 4), adi_nr3_h(2, 4, 4)}) {
    AppInstance app = make_adi(8, 8);
    TiledNest tiled(app.nest, TilingTransform(h));
    check_config(tiled, *app.kernel);
  }
}

TEST(Overlap, ComposesWithSlotTablesOff) {
  // The overlapped schedule must be independent of which pack/unpack
  // path fills the message buffers.
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
  DataSpace fast = exec.run();
  exec.set_use_slot_tables(false);
  DataSpace lattice = exec.run();
  exec.set_use_overlap(false);
  DataSpace blocking_lattice = exec.run();
  EXPECT_EQ(DataSpace::max_abs_diff(fast, lattice, app.nest.space), 0.0);
  EXPECT_EQ(DataSpace::max_abs_diff(fast, blocking_lattice, app.nest.space),
            0.0);
}

TEST(Overlap, ComposesWithLegacySweep) {
  // With the fast sweep off there is no remainder/band split — boundary
  // and interior tiles alike take the general clipped path — but the
  // pipelined receive/isend discipline still applies and must agree.
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
  DataSpace fast = exec.run();
  exec.set_use_fast_sweep(false);
  DataSpace legacy = exec.run();
  EXPECT_EQ(DataSpace::max_abs_diff(fast, legacy, app.nest.space), 0.0);
}

TEST(Overlap, LatencyInjectedRunsStayEquivalentAndHideWireTime) {
  // A per-message latency makes the wire cost visible: the blocking
  // schedule sleeps it out inside send (send_wait_s), the overlapped
  // schedule hands the transfer to isend and keeps computing.  Both must
  // still produce identical numbers; the overlapped rank time spent
  // waiting on sends must be measurably below blocking's.
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
  mpisim::LatencyModel model;
  model.per_message_s = 200e-6;
  model.per_double_s = 1e-8;
  exec.set_latency_model(model);
  // Pinned to the thread backend: the send_wait_s assertions below
  // measure REAL wall time the blocking sends burn, which the event
  // backend deliberately virtualizes away.
  exec.set_comm_backend(mpisim::Backend::kThread);

  ParallelRunStats overlapped_stats;
  DataSpace overlapped = exec.run(&overlapped_stats);
  exec.set_use_overlap(false);
  ParallelRunStats blocking_stats;
  DataSpace blocking = exec.run(&blocking_stats);

  EXPECT_EQ(DataSpace::max_abs_diff(overlapped, blocking, app.nest.space), 0.0)
      << "latency model changed the numerics";
  ASSERT_GT(blocking_stats.messages, 0);
  // Blocking eats >= per_message_s of wire time per message on the
  // sender's critical path; the overlapped schedule only waits at the
  // final wait_all drain, which the last tile's latency bounds.
  const double floor_s = 0.5 * model.per_message_s *
                         static_cast<double>(blocking_stats.messages);
  EXPECT_GE(blocking_stats.phase_total.send_wait_s, floor_s);
  EXPECT_LT(overlapped_stats.phase_total.send_wait_s,
            blocking_stats.phase_total.send_wait_s)
      << "no measured overlap: isends did not hide the wire time";
  EXPECT_GT(overlapped_stats.overlap_efficiency(),
            blocking_stats.overlap_efficiency());
}

TEST(Overlap, RandomLegalTilingsBitwiseEquivalent) {
  // Property test: >= 20 random nests with random skews and random legal
  // integral-P tilings; the overlapped schedule must match the blocking
  // reference and the sequential ground truth bitwise on every one.
  Rng rng(20260807);
  int executed = 0;
  int attempts = 0;
  i64 messages_total = 0;
  while (executed < 20 && attempts < 600) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 3));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) deps(r, c) = d[static_cast<std::size_t>(r)];
    }
    LoopNest nest;
    try {
      VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 3);
        hi[static_cast<std::size_t>(k)] =
            lo[static_cast<std::size_t>(k)] + rng.uniform(8, 16);
      }
      nest = make_rectangular_nest("rand", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;
    }
    if (n == 2 && rng.chance(0.5)) {
      MatI t = MatI::identity(n);
      t(1, 0) = rng.uniform(0, 2);
      try {
        nest = skew(nest, t);
      } catch (const LegalityError&) {
        continue;
      }
    }
    std::optional<TilingTransform> tiling = random_tiling(rng, n, nest.deps);
    if (!tiling) continue;
    RandomKernel kernel(rng, n, q);
    TiledNest tiled(nest, std::move(*tiling));
    messages_total += check_config(tiled, kernel);
    ++executed;
  }
  EXPECT_GE(executed, 20) << "random generator starved (" << attempts
                          << " attempts)";
  EXPECT_GT(messages_total, 0) << "no instance communicated: the pipelined "
                                  "path was never exercised";
}

}  // namespace
}  // namespace ctile
