#include <gtest/gtest.h>

#include "linalg/hnf.hpp"
#include "linalg/int_matops.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

void check_snf(const MatI& a) {
  SnfResult r = smith_normal_form(a);
  EXPECT_EQ(mul(mul(r.u, a), r.v), r.s);
  EXPECT_TRUE(is_unimodular(r.u));
  EXPECT_TRUE(is_unimodular(r.v));
  // Diagonal with divisibility chain.
  int k = std::min(r.s.rows(), r.s.cols());
  for (int i = 0; i < r.s.rows(); ++i) {
    for (int j = 0; j < r.s.cols(); ++j) {
      if (i != j) {
        EXPECT_EQ(r.s(i, j), 0);
      }
    }
  }
  for (int i = 0; i + 1 < k; ++i) {
    EXPECT_GE(r.s(i, i), 0);
    if (r.s(i, i) != 0) {
      EXPECT_EQ(r.s(i + 1, i + 1) % r.s(i, i), 0)
          << r.s << "\n(divisibility at " << i << ")";
    } else {
      EXPECT_EQ(r.s(i + 1, i + 1), 0);
    }
  }
  if (a.is_square()) {
    // Product of invariant factors equals |det|.
    i128 prod = 1;
    for (int i = 0; i < k; ++i) prod *= r.s(i, i);
    EXPECT_EQ(narrow_i64(prod), abs_ck(det(a)));
  }
}

TEST(Smith, Identity) {
  SnfResult r = smith_normal_form(MatI::identity(3));
  EXPECT_EQ(r.s, MatI::identity(3));
}

TEST(Smith, DiagonalNeedingDivisibilityFix) {
  // diag(4, 6) has invariant factors (2, 12).
  MatI a{{4, 0}, {0, 6}};
  SnfResult r = smith_normal_form(a);
  EXPECT_EQ(r.s(0, 0), 2);
  EXPECT_EQ(r.s(1, 1), 12);
  check_snf(a);
}

TEST(Smith, ClassicExample) {
  MatI a{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}};
  SnfResult r = smith_normal_form(a);
  EXPECT_EQ(r.s(0, 0), 2);
  EXPECT_EQ(r.s(1, 1), 2);
  EXPECT_EQ(r.s(2, 2), 156);
  check_snf(a);
}

TEST(Smith, SingularAndRectangular) {
  check_snf(MatI{{1, 2}, {2, 4}});       // rank 1
  check_snf(MatI{{0, 0}, {0, 0}});       // zero
  check_snf(MatI{{1, 2, 3}, {4, 5, 6}}); // rectangular
  check_snf(MatI{{1}, {2}, {3}});        // tall
}

TEST(Smith, RandomizedProperties) {
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    int rows = static_cast<int>(rng.uniform(1, 4));
    int cols = static_cast<int>(rng.uniform(1, 4));
    MatI m(rows, cols);
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c) m(r, c) = rng.uniform(-7, 7);
    check_snf(m);
  }
}

TEST(Smith, AgreesWithHnfDeterminant) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    int n = static_cast<int>(rng.uniform(1, 4));
    MatI m(n, n);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c) m(r, c) = rng.uniform(-6, 6);
    if (det(m) == 0) continue;
    SnfResult s = smith_normal_form(m);
    HnfResult h = hermite_normal_form(m);
    i128 sp = 1, hp = 1;
    for (int i = 0; i < n; ++i) {
      sp *= s.s(i, i);
      hp *= h.h(i, i);
    }
    EXPECT_EQ(narrow_i64(sp), narrow_i64(hp));
  }
}

}  // namespace
}  // namespace ctile
