#include "support/checked_int.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/rng.hpp"

namespace ctile {
namespace {

constexpr i64 kMax = std::numeric_limits<i64>::max();
constexpr i64 kMin = std::numeric_limits<i64>::min();

TEST(CheckedInt, AddDetectsOverflow) {
  EXPECT_EQ(add_ck(2, 3), 5);
  EXPECT_EQ(add_ck(kMax - 1, 1), kMax);
  EXPECT_THROW(add_ck(kMax, 1), OverflowError);
  EXPECT_THROW(add_ck(kMin, -1), OverflowError);
}

TEST(CheckedInt, SubDetectsOverflow) {
  EXPECT_EQ(sub_ck(5, 7), -2);
  EXPECT_THROW(sub_ck(kMin, 1), OverflowError);
  EXPECT_THROW(sub_ck(0, kMin), OverflowError);
}

TEST(CheckedInt, MulDetectsOverflow) {
  EXPECT_EQ(mul_ck(-4, 6), -24);
  EXPECT_EQ(mul_ck(1LL << 31, 1LL << 31), 1LL << 62);
  EXPECT_THROW(mul_ck(1LL << 32, 1LL << 32), OverflowError);
  EXPECT_THROW(mul_ck(kMin, -1), OverflowError);
}

TEST(CheckedInt, NegAndAbsHandleMinValue) {
  EXPECT_EQ(neg_ck(5), -5);
  EXPECT_EQ(abs_ck(-7), 7);
  EXPECT_THROW(neg_ck(kMin), OverflowError);
  EXPECT_THROW(abs_ck(kMin), OverflowError);
}

TEST(CheckedInt, GcdBasics) {
  EXPECT_EQ(gcd_i64(12, 18), 6);
  EXPECT_EQ(gcd_i64(-12, 18), 6);
  EXPECT_EQ(gcd_i64(12, -18), 6);
  EXPECT_EQ(gcd_i64(0, 5), 5);
  EXPECT_EQ(gcd_i64(5, 0), 5);
  EXPECT_EQ(gcd_i64(0, 0), 0);
  EXPECT_EQ(gcd_i64(1, kMax), 1);
}

TEST(CheckedInt, GcdHandlesMinValue) {
  // |INT64_MIN| = 2^63, gcd with 2 must be 2 without overflow.
  EXPECT_EQ(gcd_i64(kMin, 2), 2);
  EXPECT_EQ(gcd_i64(kMin, kMax), 1);
}

TEST(CheckedInt, Lcm) {
  EXPECT_EQ(lcm_i64(4, 6), 12);
  EXPECT_EQ(lcm_i64(-4, 6), 12);
  EXPECT_EQ(lcm_i64(0, 6), 0);
  EXPECT_EQ(lcm_i64(7, 13), 91);
}

TEST(CheckedInt, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
}

TEST(CheckedInt, CeilDiv) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(CheckedInt, ModFloorIsAlwaysNonNegative) {
  EXPECT_EQ(mod_floor(7, 3), 1);
  EXPECT_EQ(mod_floor(-7, 3), 2);
  EXPECT_EQ(mod_floor(-6, 3), 0);
  EXPECT_EQ(mod_floor(0, 5), 0);
}

TEST(CheckedInt, FloorCeilDivConsistency) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    i64 a = rng.uniform(-1000000, 1000000);
    i64 b = rng.uniform(1, 1000);
    if (rng.chance(0.5)) b = -b;
    i64 f = floor_div(a, b);
    i64 c = ceil_div(a, b);
    // Defining inequalities of floor/ceil division.
    if (b > 0) {
      EXPECT_LE(f * b, a);
      EXPECT_GT((f + 1) * b, a);
      EXPECT_GE(c * b, a);
      EXPECT_LT((c - 1) * b, a);
    } else {
      EXPECT_LE(a, f * (-b) * -1);
    }
    EXPECT_TRUE(c == f || c == f + 1);
    EXPECT_EQ(c == f, a % b == 0);
  }
}

TEST(CheckedInt, ExtGcdBezoutIdentity) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    i64 a = rng.uniform(-100000, 100000);
    i64 b = rng.uniform(-100000, 100000);
    ExtGcd e = ext_gcd(a, b);
    EXPECT_EQ(e.g, gcd_i64(a, b));
    EXPECT_EQ(a * e.x + b * e.y, e.g);
  }
}

TEST(CheckedInt, ExtGcdEdgeCases) {
  ExtGcd e = ext_gcd(0, 0);
  EXPECT_EQ(e.g, 0);
  e = ext_gcd(0, 5);
  EXPECT_EQ(e.g, 5);
  EXPECT_EQ(0 * e.x + 5 * e.y, 5);
  e = ext_gcd(-4, 0);
  EXPECT_EQ(e.g, 4);
  EXPECT_EQ(-4 * e.x, 4);
}

TEST(CheckedInt, NarrowI64) {
  EXPECT_EQ(narrow_i64(static_cast<i128>(kMax)), kMax);
  EXPECT_EQ(narrow_i64(static_cast<i128>(kMin)), kMin);
  EXPECT_THROW(narrow_i64(static_cast<i128>(kMax) + 1), OverflowError);
  EXPECT_THROW(narrow_i64(static_cast<i128>(kMin) - 1), OverflowError);
}

}  // namespace
}  // namespace ctile
