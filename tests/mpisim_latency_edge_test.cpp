// Latency-model edge cases (ISSUE 6 satellite 4), run under BOTH
// backends: the thread backend experiences the model as real sleeps,
// the event backend as virtual time — the observable semantics (FIFO
// order, request completion, abort behaviour) must be identical.
#include "mpisim/mpisim.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace ctile::mpisim {
namespace {

class LatencyEdge : public ::testing::TestWithParam<Backend> {
 protected:
  CommConfig config(double per_message_s, double per_double_s = 0.0) const {
    CommConfig c;
    c.backend = GetParam();
    c.latency.per_message_s = per_message_s;
    c.latency.per_double_s = per_double_s;
    // Keep the thread backend's real sleeps short; the event backend
    // would be happy with hours.
    return c;
  }
};

TEST_P(LatencyEdge, FifoHoldsWithMixedDeliverableAndInFlightMessages) {
  // One channel, three messages: a big slow one, then two tiny fast
  // ones.  By the time the receiver looks, the tiny ones are
  // deliverable but the FIFO head is still in flight — recv must wait
  // for and return the HEAD first, never reorder.
  run_ranks(
      2,
      [](int rank, Comm& comm) {
        if (rank == 0) {
          comm.isend(0, 1, /*tag=*/5, std::vector<double>(2000, 1.0));
          comm.isend(0, 1, /*tag=*/5, {2.0});
          comm.isend(0, 1, /*tag=*/5, {3.0});
          comm.send(0, 1, /*tag=*/6, {0.0});  // "all posted" signal
        } else {
          comm.recv(1, 0, 6);  // all three tag-5 messages are enqueued
          // The channel head (the big message) is still in flight; the
          // later tiny ones are deliverable — probe must say "nothing
          // ready" because recv would block (satellite-2 semantics).
          EXPECT_FALSE(comm.probe(1, 0, 5));
          EXPECT_EQ(comm.recv(1, 0, 5).size(), 2000u);
          EXPECT_EQ(comm.recv(1, 0, 5), (std::vector<double>{2.0}));
          EXPECT_EQ(comm.recv(1, 0, 5), (std::vector<double>{3.0}));
        }
      },
      config(/*per_message_s=*/0.0, /*per_double_s=*/100e-6));
}

TEST_P(LatencyEdge, WaitAllRetiresMixedSendRecvBatches) {
  // A batch mixing outstanding isends (time-completing) and irecvs
  // (message-completing) in arbitrary order: wait_all must retire every
  // request, stash every receive payload, and cope with requests that
  // completed before the call.
  run_ranks(
      2,
      [](int rank, Comm& comm) {
        const int peer = 1 - rank;
        std::vector<Request> batch;
        for (i64 tag = 0; tag < 3; ++tag) {
          batch.push_back(comm.isend(rank, peer, tag,
                                     {static_cast<double>(rank * 10 + tag)}));
          batch.push_back(comm.irecv(rank, peer, tag));
        }
        // Pre-complete one receive via test() polling so wait_all sees a
        // done request mid-batch.
        while (!comm.test(batch[1])) {
        }
        comm.wait_all(batch);
        for (i64 tag = 0; tag < 3; ++tag) {
          const Request& recv_req = batch[static_cast<std::size_t>(tag * 2 + 1)];
          EXPECT_TRUE(recv_req.done);
          ASSERT_EQ(recv_req.payload.size(), 1u);
          EXPECT_EQ(recv_req.payload[0],
                    static_cast<double>(peer * 10 + tag));
        }
        comm.barrier(rank);
      },
      config(/*per_message_s=*/2e-3));
}

TEST_P(LatencyEdge, AbortDuringWaitOnSendRequestCompletesLocally) {
  // A send request's completion is a LOCAL time event (the NIC draining
  // the modelled wire): abort must not turn wait()-on-send into an
  // error — but the rank must then observe the dead communicator on its
  // next send.  The dying peer waits for the "posted" signal so the
  // isend is in flight when the abort lands.
  EXPECT_THROW(
      run_ranks(
          2,
          [](int rank, Comm& comm) {
            if (rank == 0) {
              comm.recv(0, 1, /*tag=*/0);  // rank 1 posted its isend
              throw Error("rank 0 died");
            }
            Request big =
                comm.isend(1, 0, /*tag=*/1, std::vector<double>(4000, 1.0));
            comm.send(1, 0, /*tag=*/0, {0.0});
            comm.wait(big);  // drains the wire; must NOT throw
            EXPECT_TRUE(big.done);
            // The communicator is (or is about to be) dead; keep trying
            // to talk until the abort is visible.
            for (;;) {
              comm.send(1, 0, /*tag=*/2, {1.0});
              std::this_thread::yield();
            }
          },
          config(/*per_message_s=*/0.0, /*per_double_s=*/5e-6)),
      Error);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, LatencyEdge,
                         ::testing::Values(Backend::kThread, Backend::kEvent),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kThread ? "Thread"
                                                                 : "Event";
                         });

}  // namespace
}  // namespace ctile::mpisim
