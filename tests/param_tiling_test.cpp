// Parameterized algebraic-invariant sweep over every tiling matrix the
// paper evaluates (plus the extension apps'), asserting the \S2.2-\S2.3
// identities hold for each:
//   H P = I,  H' P' = I,  H' U = HNF(H'),  |det U| = 1,
//   |TIS| = |TTIS| = tile_size = |det P|,
//   strides divide extents (LDS-compatible), P integral.
#include <gtest/gtest.h>

#include <set>

#include "apps/kernels.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "tiling/ttis.hpp"

namespace ctile {
namespace {

struct TilingCase {
  std::string name;
  MatQ h;
};

class TilingMatrix : public ::testing::TestWithParam<TilingCase> {};

TEST_P(TilingMatrix, AlgebraicIdentities) {
  TilingTransform t(GetParam().h);
  const int n = t.n();
  EXPECT_EQ(mul(t.H(), t.P()), MatQ::identity(n));
  EXPECT_EQ(mul(to_rat(t.Hp()), t.Pp()), MatQ::identity(n));
  EXPECT_EQ(mul(t.Hp(), t.U()), t.Hnf());
  EXPECT_TRUE(is_unimodular(t.U()));
  EXPECT_TRUE(is_hnf(t.Hnf()));
  EXPECT_TRUE(t.p_integral());
  EXPECT_TRUE(t.strides_compatible());
  // Tile size: |det P| and the lattice count agree.
  EXPECT_EQ(Rat(t.tile_size()), t.det_p());
}

TEST_P(TilingMatrix, TisTtisBijection) {
  TilingTransform t(GetParam().h);
  std::vector<VecI> tis = tis_points(t);
  std::vector<VecI> jps = ttis_points(t);
  ASSERT_EQ(static_cast<i64>(tis.size()), t.tile_size());
  ASSERT_EQ(tis.size(), jps.size());
  std::set<VecI> tis_set(tis.begin(), tis.end());
  EXPECT_EQ(tis_set.size(), tis.size());
  // Every TIS point round-trips through its TTIS coordinates.
  const VecI origin(static_cast<std::size_t>(t.n()), 0);
  for (std::size_t i = 0; i < jps.size(); ++i) {
    EXPECT_TRUE(t.in_ttis(jps[i]));
    EXPECT_EQ(t.point_of(origin, jps[i]), tis[i]);
    EXPECT_EQ(t.tile_of(tis[i]), origin);
  }
}

TEST_P(TilingMatrix, StridesMatchHnfDiagonal) {
  TilingTransform t(GetParam().h);
  for (int k = 0; k < t.n(); ++k) {
    EXPECT_EQ(t.stride(k), t.Hnf()(k, k));
    for (int l = 0; l < k; ++l) {
      EXPECT_EQ(t.offset(k, l), t.Hnf()(k, l));
      EXPECT_GE(t.offset(k, l), 0);
      EXPECT_LT(t.offset(k, l), t.stride(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTilings, TilingMatrix,
    ::testing::Values(
        TilingCase{"sor_rect", sor_rect_h(3, 4, 5)},
        TilingCase{"sor_nonrect", sor_nonrect_h(3, 4, 5)},
        TilingCase{"jacobi_rect", jacobi_rect_h(3, 4, 5)},
        TilingCase{"jacobi_nonrect", jacobi_nonrect_h(3, 4, 5)},
        TilingCase{"jacobi_nonrect_min", jacobi_nonrect_h(1, 2, 1)},
        TilingCase{"adi_rect", adi_rect_h(2, 3, 4)},
        TilingCase{"adi_nr1", adi_nr1_h(2, 3, 4)},
        TilingCase{"adi_nr2", adi_nr2_h(2, 3, 4)},
        TilingCase{"adi_nr3", adi_nr3_h(2, 3, 4)},
        TilingCase{"heat_rect", heat_rect_h(3, 5)},
        TilingCase{"heat_nonrect", heat_nonrect_h(3, 5)},
        TilingCase{"syn4d_rect", syn4d_rect_h(2, 3, 2, 3)},
        TilingCase{"syn4d_nonrect", syn4d_nonrect_h(2, 3, 2, 3)}),
    [](const ::testing::TestParamInfo<TilingCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ctile
