// Cross-checks between the discrete-event cluster simulator and the
// executor running on the event-driven mpisim backend, at a scale the
// thread-per-rank backend could not reasonably reach (hundreds of
// ranks), plus the DrainProfile wavefront-phase invariants the
// 4096-rank bench builds on.
#include "cluster/simulator.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "apps/kernels.hpp"

namespace ctile {
namespace {

TEST(ClusterEventCrosscheck, LargeMeshExecutorMatchesSimulator) {
  // 261 processors: the DES and the actually-executed event-backend run
  // must agree on every communication-volume number (the DES models
  // exactly the messages the executor sends), and the run must stay on
  // ONE OS thread.
  AppInstance app = make_sor(16, 96);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 4, 4)));
  Mapping mapping(tiled, /*force_m=*/2);
  ASSERT_GE(mapping.num_procs(), 200)
      << "config no longer exercises the at-scale path";

  ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
  exec.set_comm_backend(mpisim::Backend::kEvent, /*seed=*/11);
  const std::thread::id host = std::this_thread::get_id();
  exec.set_pre_run_gate([&] { EXPECT_EQ(std::this_thread::get_id(), host); });
  ParallelRunStats stats;
  exec.run(&stats);
  EXPECT_GT(stats.messages, 0);

  SimResult sim = simulate_tiled_program(
      tiled, MachineModel::fast_ethernet_cluster(), /*arity=*/1,
      /*force_m=*/2);
  EXPECT_EQ(sim.messages, stats.messages);
  EXPECT_EQ(sim.bytes, stats.doubles * 8);
  EXPECT_EQ(sim.total_points, stats.points_computed);
}

TEST(ClusterEventCrosscheck, DrainProfilePartitionsTheMakespan) {
  AppInstance app = make_sor(24, 48);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 9, 6)));
  for (CommSchedule schedule :
       {CommSchedule::kBlocking, CommSchedule::kOverlapped}) {
    SimResult sim = simulate_tiled_program(
        tiled, MachineModel::fast_ethernet_cluster(), /*arity=*/1,
        /*force_m=*/2, schedule);
    DrainProfile profile = drain_profile(sim);
    EXPECT_GE(profile.fill, 0.0);
    EXPECT_GE(profile.steady, 0.0);
    EXPECT_GE(profile.drain, 0.0);
    EXPECT_NEAR(profile.fill + profile.steady + profile.drain, sim.makespan,
                1e-9 * sim.makespan);
    // A skewed wavefront over >1 processors has a nonempty fill (the
    // last processor starts late) and a nonempty drain (the first one
    // finishes early).
    EXPECT_GT(profile.fill, 0.0);
    EXPECT_GT(profile.drain, 0.0);
  }
}

TEST(ClusterEventCrosscheck, DrainProfileOnSingleProcessorIsAllSteady) {
  // One processor: the "wavefront" fills instantly and never drains —
  // fill is the (zero) time to the first tile start, drain the time
  // after its last tile, so everything is steady compute.
  AppInstance app = make_adi(4, 4);
  TiledNest tiled(app.nest, TilingTransform(adi_rect_h(2, 5, 5)));
  SimResult sim = simulate_tiled_program(tiled, MachineModel::zero_comm(),
                                         /*arity=*/2, /*force_m=*/0);
  ASSERT_FALSE(sim.trace.empty());
  DrainProfile profile = drain_profile(sim);
  EXPECT_DOUBLE_EQ(profile.fill, 0.0);
  EXPECT_DOUBLE_EQ(profile.drain, 0.0);
  EXPECT_DOUBLE_EQ(profile.steady, sim.makespan);
}

}  // namespace
}  // namespace ctile
