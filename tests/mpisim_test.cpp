#include "mpisim/mpisim.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

namespace ctile::mpisim {
namespace {

TEST(Mpisim, PingPong) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 7, {1.0, 2.0, 3.0});
      std::vector<double> back = comm.recv(0, 1, 8);
      EXPECT_EQ(back, (std::vector<double>{6.0}));
    } else {
      std::vector<double> msg = comm.recv(1, 0, 7);
      double sum = std::accumulate(msg.begin(), msg.end(), 0.0);
      comm.send(1, 0, 8, {sum});
    }
  });
}

TEST(Mpisim, TagMatchingOutOfOrder) {
  // Receiver asks for tag 2 before tag 1; sender sent 1 then 2.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 1, {1.0});
      comm.send(0, 1, 2, {2.0});
    } else {
      EXPECT_EQ(comm.recv(1, 0, 2)[0], 2.0);
      EXPECT_EQ(comm.recv(1, 0, 1)[0], 1.0);
    }
  });
}

TEST(Mpisim, FifoPerSameTag) {
  // Messages with the same (src, tag) arrive in send order.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(0, 1, 5, {static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(1, 0, 5)[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Mpisim, SourceMatching) {
  run_ranks(3, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 2, 0, {10.0});
    } else if (rank == 1) {
      comm.send(1, 2, 0, {20.0});
    } else {
      // Ask for rank 1's message first even if rank 0's arrived first.
      EXPECT_EQ(comm.recv(2, 1, 0)[0], 20.0);
      EXPECT_EQ(comm.recv(2, 0, 0)[0], 10.0);
    }
  });
}

TEST(Mpisim, Barrier) {
  std::atomic<int> phase{0};
  run_ranks(4, [&](int rank, Comm& comm) {
    phase.fetch_add(1);
    comm.barrier(rank);
    EXPECT_EQ(phase.load(), 4);
    comm.barrier(rank);
    phase.fetch_add(1);
    comm.barrier(rank);
    EXPECT_EQ(phase.load(), 8);
  });
}

TEST(Mpisim, Stats) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 0, {1.0, 2.0});
      comm.send(0, 1, 1, {3.0});
    } else {
      comm.recv(1, 0, 0);
      comm.recv(1, 0, 1);
    }
    comm.barrier(rank);
    EXPECT_EQ(comm.messages_sent(), 2);
    EXPECT_EQ(comm.doubles_sent(), 3);
  });
}

TEST(Mpisim, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      run_ranks(2,
                [](int rank, Comm& comm) {
                  if (rank == 0) {
                    throw Error("rank 0 died");
                  } else {
                    // Would deadlock without the abort mechanism.
                    comm.recv(1, 0, 99);
                  }
                }),
      Error);
}

TEST(Mpisim, AbortUnblocksBarrier) {
  EXPECT_THROW(
      run_ranks(3,
                [](int rank, Comm& comm) {
                  if (rank == 2) throw Error("late rank dies");
                  comm.barrier(rank);
                }),
      Error);
}

TEST(Mpisim, Probe) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 3, {1.0});
      comm.barrier(rank);
    } else {
      comm.barrier(rank);
      EXPECT_TRUE(comm.probe(1, 0, 3));
      EXPECT_FALSE(comm.probe(1, 0, 4));
      comm.recv(1, 0, 3);
      EXPECT_FALSE(comm.probe(1, 0, 3));
    }
  });
}

TEST(Mpisim, SendOnAbortedCommunicatorThrows) {
  // A surviving rank must not keep enqueueing into a dead communicator:
  // after abort, send fails loudly like recv and barrier do.
  Comm comm(2);
  comm.send(0, 1, 0, {1.0});  // pre-abort send is fine
  comm.abort();
  EXPECT_THROW(comm.send(0, 1, 1, {2.0}), Error);
}

TEST(Mpisim, ProbeRejectsOutOfRangeRanks) {
  // probe carries the same rank-range assertions as send/recv: an
  // out-of-range rank must fail loudly, not index boxes_ out of bounds.
  Comm comm(2);
  EXPECT_DEATH(comm.probe(2, 0, 0), "dst");
  EXPECT_DEATH(comm.probe(-1, 0, 0), "dst");
  EXPECT_DEATH(comm.probe(0, 2, 0), "src");
  EXPECT_DEATH(comm.probe(0, -1, 0), "src");
}

TEST(Mpisim, BufferPoolReusesReleasedBuffers) {
  Comm comm(1);
  EXPECT_EQ(comm.pool_reuses(), 0);
  std::vector<double> a = comm.acquire_buffer(0, 16);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(comm.pool_reuses(), 0);  // pool was empty: fresh allocation
  const double* ptr = a.data();
  comm.release_buffer(0, std::move(a));
  std::vector<double> b = comm.acquire_buffer(0, 16);
  EXPECT_EQ(comm.pool_reuses(), 1);
  EXPECT_EQ(b.data(), ptr);  // same storage came back, no reallocation
  // Resizing within capacity also keeps the storage.
  comm.release_buffer(0, std::move(b));
  std::vector<double> c = comm.acquire_buffer(0, 8);
  EXPECT_EQ(comm.pool_reuses(), 2);
  EXPECT_EQ(c.data(), ptr);
}

TEST(Mpisim, BufferPoolsAreRankLocal) {
  Comm comm(2);
  std::vector<double> a = comm.acquire_buffer(0, 4);
  comm.release_buffer(1, std::move(a));  // buffer migrates to rank 1's pool
  comm.acquire_buffer(0, 4);
  EXPECT_EQ(comm.pool_reuses(), 0);  // rank 0's pool is still empty
  comm.acquire_buffer(1, 4);
  EXPECT_EQ(comm.pool_reuses(), 1);
}

TEST(Mpisim, IsendIrecvRoundTrip) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      Request s = comm.isend(0, 1, 7, {1.0, 2.0, 3.0});
      EXPECT_TRUE(comm.test(s));  // no latency model: completes at once
      Request r = comm.irecv(0, 1, 8);
      std::vector<double> back = comm.wait(r);
      EXPECT_EQ(back, (std::vector<double>{6.0}));
    } else {
      Request r = comm.irecv(1, 0, 7);
      std::vector<double> msg = comm.wait(r);
      EXPECT_TRUE(r.done);
      double sum = std::accumulate(msg.begin(), msg.end(), 0.0);
      std::vector<Request> sends;
      sends.push_back(comm.isend(1, 0, 8, {sum}));
      comm.wait_all(sends);
      EXPECT_TRUE(sends[0].done);
    }
  });
}

TEST(Mpisim, TestCompletesRecvWithoutBlocking) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      Request r = comm.irecv(0, 1, 3);
      EXPECT_FALSE(comm.test(r));  // nothing sent yet
      comm.barrier(rank);          // rank 1 sends before this barrier
      comm.barrier(rank);
      EXPECT_TRUE(comm.test(r));
      EXPECT_EQ(r.payload, (std::vector<double>{4.0}));
      EXPECT_TRUE(comm.wait(r) == (std::vector<double>{4.0}));
    } else {
      comm.barrier(rank);
      comm.send(1, 0, 3, {4.0});
      comm.barrier(rank);
    }
  });
}

TEST(Mpisim, PrePostedIrecvsMatchByTagNotPostOrder) {
  // The overlapped executor pre-posts receives; matching is by
  // (src, tag), so the post order must not matter.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 1, {1.0});
      comm.send(0, 1, 2, {2.0});
    } else {
      Request r2 = comm.irecv(1, 0, 2);
      Request r1 = comm.irecv(1, 0, 1);
      EXPECT_EQ(comm.wait(r2)[0], 2.0);
      EXPECT_EQ(comm.wait(r1)[0], 1.0);
    }
  });
}

TEST(Mpisim, IsendRecyclesSenderBuffer) {
  // The eager protocol returns the caller's buffer to the *sender's*
  // pool at initiation: a rank that only sends reuses its buffer on the
  // very next acquire, even though nobody released anything back to it.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      std::vector<double> buf = comm.acquire_buffer(0, 4);
      const double* ptr = buf.data();
      buf.assign(4, 1.0);
      comm.isend(0, 1, 0, std::move(buf));
      std::vector<double> again = comm.acquire_buffer(0, 4);
      EXPECT_EQ(again.data(), ptr);  // same storage, zero-allocation send
      again.assign(4, 2.0);
      comm.isend(0, 1, 1, std::move(again));
    } else {
      EXPECT_EQ(comm.recv(1, 0, 0), std::vector<double>(4, 1.0));
      EXPECT_EQ(comm.recv(1, 0, 1), std::vector<double>(4, 2.0));
    }
    comm.barrier(rank);
    EXPECT_GE(comm.pool_reuses(), 1);
    EXPECT_GE(comm.pool_high_water(), 1);
  });
}

TEST(Mpisim, LatencyModelDelaysDeliveryAndBlocksSend) {
  // per_message_s = 20ms: a blocking send occupies the sender for the
  // transfer, an isend returns immediately, and the receiver cannot see
  // the message before its delivery deadline.
  CommConfig config;
  config.latency.per_message_s = 0.02;
  // Pinned to the thread backend: this test asserts REAL elapsed time,
  // which the event backend deliberately virtualizes away (the
  // CTILE_MPISIM_BACKEND=event CI sweep must not break it).
  config.backend = Backend::kThread;
  run_ranks(
      2,
      [](int rank, Comm& comm) {
        using Clock = std::chrono::steady_clock;
        if (rank == 0) {
          const auto t0 = Clock::now();
          Request s = comm.isend(0, 1, 0, {1.0});
          const double isend_s =
              std::chrono::duration<double>(Clock::now() - t0).count();
          EXPECT_LT(isend_s, 0.02);  // isend does not wait for the wire
          const auto t1 = Clock::now();
          comm.send(0, 1, 1, {2.0});
          const double send_s =
              std::chrono::duration<double>(Clock::now() - t1).count();
          EXPECT_GE(send_s, 0.019);  // blocking send occupies the sender
          comm.wait(s);
          EXPECT_TRUE(s.done);
        } else {
          const auto t0 = Clock::now();
          EXPECT_EQ(comm.recv(1, 0, 0)[0], 1.0);
          const double recv_s =
              std::chrono::duration<double>(Clock::now() - t0).count();
          EXPECT_GE(recv_s, 0.015);  // delivery honoured the deadline
          EXPECT_EQ(comm.recv(1, 0, 1)[0], 2.0);
        }
      },
      config);
}

TEST(Mpisim, TestObservesAbortInsteadOfLivelocking) {
  // Regression (ISSUE 6 satellite 1): a rank polling test() on a receive
  // request must observe a dead communicator like a blocking recv()
  // does.  Before the fix test() never consulted aborted_, so this loop
  // spun forever once rank 0 died.
  EXPECT_THROW(run_ranks(2,
                         [](int rank, Comm& comm) {
                           if (rank == 0) {
                             throw Error("rank 0 died");
                           }
                           Request req = comm.irecv(1, 0, 7);
                           while (!comm.test(req)) {
                             std::this_thread::yield();
                           }
                         }),
               Error);
}

TEST(Mpisim, ProbeHonorsFifoFirstMatch) {
  // Regression (ISSUE 6 satellite 2): probe() must mirror recv()'s
  // strict-FIFO matching.  Channel state below: the FIRST match is a
  // big, still-in-flight message; a later tiny message on the SAME
  // channel is already deliverable.  recv() would block on the first
  // match, so probe() must say false — the old std::any_of said true.
  CommConfig config;
  config.latency.per_double_s = 1e-3;  // 1000 doubles -> 1s in flight
  Comm comm(2, config);
  comm.isend(0, 1, /*tag=*/3, std::vector<double>(1000, 1.0));
  comm.isend(0, 1, /*tag=*/3, {2.0});
  // Let the tiny message's deadline (1ms) pass; the big one needs ~1s.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Request later = comm.irecv(1, 0, 3);
  EXPECT_FALSE(comm.probe(1, 0, 3))
      << "probe matched a deliverable message behind the in-flight "
         "FIFO head";
  // test() agrees: the head of the channel is not deliverable yet.
  EXPECT_FALSE(comm.test(later));
  // Once the head's deadline passes both complete, in FIFO order.
  EXPECT_EQ(comm.recv(1, 0, 3).size(), 1000u);
  EXPECT_TRUE(comm.probe(1, 0, 3));
  EXPECT_EQ(comm.recv(1, 0, 3), (std::vector<double>{2.0}));
}

TEST(Mpisim, AcquireBufferCountsOnlyTrueReuses) {
  // Regression (ISSUE 6 satellite 3): a pooled buffer whose capacity is
  // below the request is NOT a reuse — resize reallocates anyway.
  Comm comm(1);
  std::vector<double> small;
  small.reserve(4);
  small.resize(1);
  comm.release_buffer(0, std::move(small));
  std::vector<double> got = comm.acquire_buffer(0, 100);
  EXPECT_EQ(got.size(), 100u);
  EXPECT_EQ(comm.pool_reuses(), 0)
      << "counted a pool 'reuse' that reallocated";
}

TEST(Mpisim, AcquireBufferPrefersCapacitySufficientPooledBuffer) {
  // With a too-small AND a big-enough buffer pooled, acquire must pick
  // the sufficient one (a true reuse) instead of whatever is on top.
  Comm comm(1);
  std::vector<double> big;
  big.reserve(128);
  big.resize(1);
  comm.release_buffer(0, std::move(big));
  std::vector<double> small;
  small.reserve(4);
  small.resize(1);
  comm.release_buffer(0, std::move(small));  // now on top of the stack
  std::vector<double> got = comm.acquire_buffer(0, 100);
  EXPECT_EQ(got.size(), 100u);
  EXPECT_GE(got.capacity(), 128u);
  EXPECT_EQ(comm.pool_reuses(), 1);
  // The too-small buffer is still pooled for a later small request.
  std::vector<double> tiny = comm.acquire_buffer(0, 2);
  EXPECT_EQ(tiny.size(), 2u);
  EXPECT_EQ(comm.pool_reuses(), 2);
}

TEST(Mpisim, BarrierAfterAbortThrowsForEveryRank) {
  // Regression (ISSUE 6 satellite 3): after abort() NO rank may observe
  // barrier success.  Before the fix the LAST-arriving rank completed
  // the barrier and returned normally while its peers threw.  size=1
  // makes the sole rank the last arriver by construction.
  Comm comm(1);
  comm.barrier(0);  // sane before the abort
  comm.abort();
  EXPECT_THROW(comm.barrier(0), Error);
}

TEST(Mpisim, BarrierAfterAbortThrowsForLastArriverWithPeers) {
  // Two-rank variant: rank 1 parks in the barrier first, then the
  // communicator dies, then rank 0 arrives "last" — both must throw.
  Comm comm(2);
  std::atomic<int> threw{0};
  std::thread waiter([&] {
    try {
      comm.barrier(1);
    } catch (const Error&) {
      ++threw;
    }
  });
  // Let rank 1 reach the barrier wait, then kill the communicator.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  comm.abort();
  try {
    comm.barrier(0);
  } catch (const Error&) {
    ++threw;
  }
  waiter.join();
  EXPECT_EQ(threw.load(), 2);
}

TEST(Mpisim, ManyRanksRing) {
  const int n = 8;
  run_ranks(n, [n](int rank, Comm& comm) {
    // Pass a token around the ring, accumulating.
    if (rank == 0) {
      comm.send(0, 1, 0, {1.0});
      std::vector<double> token = comm.recv(0, n - 1, 0);
      EXPECT_EQ(token[0], static_cast<double>(n));
    } else {
      std::vector<double> token = comm.recv(rank, rank - 1, 0);
      token[0] += 1.0;
      comm.send(rank, (rank + 1) % n, 0, std::move(token));
    }
  });
}

}  // namespace
}  // namespace ctile::mpisim
