#include "mpisim/mpisim.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

namespace ctile::mpisim {
namespace {

TEST(Mpisim, PingPong) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 7, {1.0, 2.0, 3.0});
      std::vector<double> back = comm.recv(0, 1, 8);
      EXPECT_EQ(back, (std::vector<double>{6.0}));
    } else {
      std::vector<double> msg = comm.recv(1, 0, 7);
      double sum = std::accumulate(msg.begin(), msg.end(), 0.0);
      comm.send(1, 0, 8, {sum});
    }
  });
}

TEST(Mpisim, TagMatchingOutOfOrder) {
  // Receiver asks for tag 2 before tag 1; sender sent 1 then 2.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 1, {1.0});
      comm.send(0, 1, 2, {2.0});
    } else {
      EXPECT_EQ(comm.recv(1, 0, 2)[0], 2.0);
      EXPECT_EQ(comm.recv(1, 0, 1)[0], 1.0);
    }
  });
}

TEST(Mpisim, FifoPerSameTag) {
  // Messages with the same (src, tag) arrive in send order.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(0, 1, 5, {static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(1, 0, 5)[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Mpisim, SourceMatching) {
  run_ranks(3, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 2, 0, {10.0});
    } else if (rank == 1) {
      comm.send(1, 2, 0, {20.0});
    } else {
      // Ask for rank 1's message first even if rank 0's arrived first.
      EXPECT_EQ(comm.recv(2, 1, 0)[0], 20.0);
      EXPECT_EQ(comm.recv(2, 0, 0)[0], 10.0);
    }
  });
}

TEST(Mpisim, Barrier) {
  std::atomic<int> phase{0};
  run_ranks(4, [&](int rank, Comm& comm) {
    phase.fetch_add(1);
    comm.barrier(rank);
    EXPECT_EQ(phase.load(), 4);
    comm.barrier(rank);
    phase.fetch_add(1);
    comm.barrier(rank);
    EXPECT_EQ(phase.load(), 8);
  });
}

TEST(Mpisim, Stats) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 0, {1.0, 2.0});
      comm.send(0, 1, 1, {3.0});
    } else {
      comm.recv(1, 0, 0);
      comm.recv(1, 0, 1);
    }
    comm.barrier(rank);
    EXPECT_EQ(comm.messages_sent(), 2);
    EXPECT_EQ(comm.doubles_sent(), 3);
  });
}

TEST(Mpisim, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      run_ranks(2,
                [](int rank, Comm& comm) {
                  if (rank == 0) {
                    throw Error("rank 0 died");
                  } else {
                    // Would deadlock without the abort mechanism.
                    comm.recv(1, 0, 99);
                  }
                }),
      Error);
}

TEST(Mpisim, AbortUnblocksBarrier) {
  EXPECT_THROW(
      run_ranks(3,
                [](int rank, Comm& comm) {
                  if (rank == 2) throw Error("late rank dies");
                  comm.barrier(rank);
                }),
      Error);
}

TEST(Mpisim, Probe) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 3, {1.0});
      comm.barrier(rank);
    } else {
      comm.barrier(rank);
      EXPECT_TRUE(comm.probe(1, 0, 3));
      EXPECT_FALSE(comm.probe(1, 0, 4));
      comm.recv(1, 0, 3);
      EXPECT_FALSE(comm.probe(1, 0, 3));
    }
  });
}

TEST(Mpisim, SendOnAbortedCommunicatorThrows) {
  // A surviving rank must not keep enqueueing into a dead communicator:
  // after abort, send fails loudly like recv and barrier do.
  Comm comm(2);
  comm.send(0, 1, 0, {1.0});  // pre-abort send is fine
  comm.abort();
  EXPECT_THROW(comm.send(0, 1, 1, {2.0}), Error);
}

TEST(Mpisim, ProbeRejectsOutOfRangeRanks) {
  // probe carries the same rank-range assertions as send/recv: an
  // out-of-range rank must fail loudly, not index boxes_ out of bounds.
  Comm comm(2);
  EXPECT_DEATH(comm.probe(2, 0, 0), "dst");
  EXPECT_DEATH(comm.probe(-1, 0, 0), "dst");
  EXPECT_DEATH(comm.probe(0, 2, 0), "src");
  EXPECT_DEATH(comm.probe(0, -1, 0), "src");
}

TEST(Mpisim, BufferPoolReusesReleasedBuffers) {
  Comm comm(1);
  EXPECT_EQ(comm.pool_reuses(), 0);
  std::vector<double> a = comm.acquire_buffer(0, 16);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(comm.pool_reuses(), 0);  // pool was empty: fresh allocation
  const double* ptr = a.data();
  comm.release_buffer(0, std::move(a));
  std::vector<double> b = comm.acquire_buffer(0, 16);
  EXPECT_EQ(comm.pool_reuses(), 1);
  EXPECT_EQ(b.data(), ptr);  // same storage came back, no reallocation
  // Resizing within capacity also keeps the storage.
  comm.release_buffer(0, std::move(b));
  std::vector<double> c = comm.acquire_buffer(0, 8);
  EXPECT_EQ(comm.pool_reuses(), 2);
  EXPECT_EQ(c.data(), ptr);
}

TEST(Mpisim, BufferPoolsAreRankLocal) {
  Comm comm(2);
  std::vector<double> a = comm.acquire_buffer(0, 4);
  comm.release_buffer(1, std::move(a));  // buffer migrates to rank 1's pool
  comm.acquire_buffer(0, 4);
  EXPECT_EQ(comm.pool_reuses(), 0);  // rank 0's pool is still empty
  comm.acquire_buffer(1, 4);
  EXPECT_EQ(comm.pool_reuses(), 1);
}

TEST(Mpisim, IsendIrecvRoundTrip) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      Request s = comm.isend(0, 1, 7, {1.0, 2.0, 3.0});
      EXPECT_TRUE(comm.test(s));  // no latency model: completes at once
      Request r = comm.irecv(0, 1, 8);
      std::vector<double> back = comm.wait(r);
      EXPECT_EQ(back, (std::vector<double>{6.0}));
    } else {
      Request r = comm.irecv(1, 0, 7);
      std::vector<double> msg = comm.wait(r);
      EXPECT_TRUE(r.done);
      double sum = std::accumulate(msg.begin(), msg.end(), 0.0);
      std::vector<Request> sends;
      sends.push_back(comm.isend(1, 0, 8, {sum}));
      comm.wait_all(sends);
      EXPECT_TRUE(sends[0].done);
    }
  });
}

TEST(Mpisim, TestCompletesRecvWithoutBlocking) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      Request r = comm.irecv(0, 1, 3);
      EXPECT_FALSE(comm.test(r));  // nothing sent yet
      comm.barrier(rank);          // rank 1 sends before this barrier
      comm.barrier(rank);
      EXPECT_TRUE(comm.test(r));
      EXPECT_EQ(r.payload, (std::vector<double>{4.0}));
      EXPECT_TRUE(comm.wait(r) == (std::vector<double>{4.0}));
    } else {
      comm.barrier(rank);
      comm.send(1, 0, 3, {4.0});
      comm.barrier(rank);
    }
  });
}

TEST(Mpisim, PrePostedIrecvsMatchByTagNotPostOrder) {
  // The overlapped executor pre-posts receives; matching is by
  // (src, tag), so the post order must not matter.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 1, {1.0});
      comm.send(0, 1, 2, {2.0});
    } else {
      Request r2 = comm.irecv(1, 0, 2);
      Request r1 = comm.irecv(1, 0, 1);
      EXPECT_EQ(comm.wait(r2)[0], 2.0);
      EXPECT_EQ(comm.wait(r1)[0], 1.0);
    }
  });
}

TEST(Mpisim, IsendRecyclesSenderBuffer) {
  // The eager protocol returns the caller's buffer to the *sender's*
  // pool at initiation: a rank that only sends reuses its buffer on the
  // very next acquire, even though nobody released anything back to it.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      std::vector<double> buf = comm.acquire_buffer(0, 4);
      const double* ptr = buf.data();
      buf.assign(4, 1.0);
      comm.isend(0, 1, 0, std::move(buf));
      std::vector<double> again = comm.acquire_buffer(0, 4);
      EXPECT_EQ(again.data(), ptr);  // same storage, zero-allocation send
      again.assign(4, 2.0);
      comm.isend(0, 1, 1, std::move(again));
    } else {
      EXPECT_EQ(comm.recv(1, 0, 0), std::vector<double>(4, 1.0));
      EXPECT_EQ(comm.recv(1, 0, 1), std::vector<double>(4, 2.0));
    }
    comm.barrier(rank);
    EXPECT_GE(comm.pool_reuses(), 1);
    EXPECT_GE(comm.pool_high_water(), 1);
  });
}

TEST(Mpisim, LatencyModelDelaysDeliveryAndBlocksSend) {
  // per_message_s = 20ms: a blocking send occupies the sender for the
  // transfer, an isend returns immediately, and the receiver cannot see
  // the message before its delivery deadline.
  CommConfig config;
  config.latency.per_message_s = 0.02;
  run_ranks(
      2,
      [](int rank, Comm& comm) {
        using Clock = std::chrono::steady_clock;
        if (rank == 0) {
          const auto t0 = Clock::now();
          Request s = comm.isend(0, 1, 0, {1.0});
          const double isend_s =
              std::chrono::duration<double>(Clock::now() - t0).count();
          EXPECT_LT(isend_s, 0.02);  // isend does not wait for the wire
          const auto t1 = Clock::now();
          comm.send(0, 1, 1, {2.0});
          const double send_s =
              std::chrono::duration<double>(Clock::now() - t1).count();
          EXPECT_GE(send_s, 0.019);  // blocking send occupies the sender
          comm.wait(s);
          EXPECT_TRUE(s.done);
        } else {
          const auto t0 = Clock::now();
          EXPECT_EQ(comm.recv(1, 0, 0)[0], 1.0);
          const double recv_s =
              std::chrono::duration<double>(Clock::now() - t0).count();
          EXPECT_GE(recv_s, 0.015);  // delivery honoured the deadline
          EXPECT_EQ(comm.recv(1, 0, 1)[0], 2.0);
        }
      },
      config);
}

TEST(Mpisim, ManyRanksRing) {
  const int n = 8;
  run_ranks(n, [n](int rank, Comm& comm) {
    // Pass a token around the ring, accumulating.
    if (rank == 0) {
      comm.send(0, 1, 0, {1.0});
      std::vector<double> token = comm.recv(0, n - 1, 0);
      EXPECT_EQ(token[0], static_cast<double>(n));
    } else {
      std::vector<double> token = comm.recv(rank, rank - 1, 0);
      token[0] += 1.0;
      comm.send(rank, (rank + 1) % n, 0, std::move(token));
    }
  });
}

}  // namespace
}  // namespace ctile::mpisim
