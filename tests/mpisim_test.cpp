#include "mpisim/mpisim.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace ctile::mpisim {
namespace {

TEST(Mpisim, PingPong) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 7, {1.0, 2.0, 3.0});
      std::vector<double> back = comm.recv(0, 1, 8);
      EXPECT_EQ(back, (std::vector<double>{6.0}));
    } else {
      std::vector<double> msg = comm.recv(1, 0, 7);
      double sum = std::accumulate(msg.begin(), msg.end(), 0.0);
      comm.send(1, 0, 8, {sum});
    }
  });
}

TEST(Mpisim, TagMatchingOutOfOrder) {
  // Receiver asks for tag 2 before tag 1; sender sent 1 then 2.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 1, {1.0});
      comm.send(0, 1, 2, {2.0});
    } else {
      EXPECT_EQ(comm.recv(1, 0, 2)[0], 2.0);
      EXPECT_EQ(comm.recv(1, 0, 1)[0], 1.0);
    }
  });
}

TEST(Mpisim, FifoPerSameTag) {
  // Messages with the same (src, tag) arrive in send order.
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(0, 1, 5, {static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(1, 0, 5)[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Mpisim, SourceMatching) {
  run_ranks(3, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 2, 0, {10.0});
    } else if (rank == 1) {
      comm.send(1, 2, 0, {20.0});
    } else {
      // Ask for rank 1's message first even if rank 0's arrived first.
      EXPECT_EQ(comm.recv(2, 1, 0)[0], 20.0);
      EXPECT_EQ(comm.recv(2, 0, 0)[0], 10.0);
    }
  });
}

TEST(Mpisim, Barrier) {
  std::atomic<int> phase{0};
  run_ranks(4, [&](int rank, Comm& comm) {
    phase.fetch_add(1);
    comm.barrier(rank);
    EXPECT_EQ(phase.load(), 4);
    comm.barrier(rank);
    phase.fetch_add(1);
    comm.barrier(rank);
    EXPECT_EQ(phase.load(), 8);
  });
}

TEST(Mpisim, Stats) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 0, {1.0, 2.0});
      comm.send(0, 1, 1, {3.0});
    } else {
      comm.recv(1, 0, 0);
      comm.recv(1, 0, 1);
    }
    comm.barrier(rank);
    EXPECT_EQ(comm.messages_sent(), 2);
    EXPECT_EQ(comm.doubles_sent(), 3);
  });
}

TEST(Mpisim, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      run_ranks(2,
                [](int rank, Comm& comm) {
                  if (rank == 0) {
                    throw Error("rank 0 died");
                  } else {
                    // Would deadlock without the abort mechanism.
                    comm.recv(1, 0, 99);
                  }
                }),
      Error);
}

TEST(Mpisim, AbortUnblocksBarrier) {
  EXPECT_THROW(
      run_ranks(3,
                [](int rank, Comm& comm) {
                  if (rank == 2) throw Error("late rank dies");
                  comm.barrier(rank);
                }),
      Error);
}

TEST(Mpisim, Probe) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 3, {1.0});
      comm.barrier(rank);
    } else {
      comm.barrier(rank);
      EXPECT_TRUE(comm.probe(1, 0, 3));
      EXPECT_FALSE(comm.probe(1, 0, 4));
      comm.recv(1, 0, 3);
      EXPECT_FALSE(comm.probe(1, 0, 3));
    }
  });
}

TEST(Mpisim, SendOnAbortedCommunicatorThrows) {
  // A surviving rank must not keep enqueueing into a dead communicator:
  // after abort, send fails loudly like recv and barrier do.
  Comm comm(2);
  comm.send(0, 1, 0, {1.0});  // pre-abort send is fine
  comm.abort();
  EXPECT_THROW(comm.send(0, 1, 1, {2.0}), Error);
}

TEST(Mpisim, ProbeRejectsOutOfRangeRanks) {
  // probe carries the same rank-range assertions as send/recv: an
  // out-of-range rank must fail loudly, not index boxes_ out of bounds.
  Comm comm(2);
  EXPECT_DEATH(comm.probe(2, 0, 0), "dst");
  EXPECT_DEATH(comm.probe(-1, 0, 0), "dst");
  EXPECT_DEATH(comm.probe(0, 2, 0), "src");
  EXPECT_DEATH(comm.probe(0, -1, 0), "src");
}

TEST(Mpisim, BufferPoolReusesReleasedBuffers) {
  Comm comm(1);
  EXPECT_EQ(comm.pool_reuses(), 0);
  std::vector<double> a = comm.acquire_buffer(0, 16);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(comm.pool_reuses(), 0);  // pool was empty: fresh allocation
  const double* ptr = a.data();
  comm.release_buffer(0, std::move(a));
  std::vector<double> b = comm.acquire_buffer(0, 16);
  EXPECT_EQ(comm.pool_reuses(), 1);
  EXPECT_EQ(b.data(), ptr);  // same storage came back, no reallocation
  // Resizing within capacity also keeps the storage.
  comm.release_buffer(0, std::move(b));
  std::vector<double> c = comm.acquire_buffer(0, 8);
  EXPECT_EQ(comm.pool_reuses(), 2);
  EXPECT_EQ(c.data(), ptr);
}

TEST(Mpisim, BufferPoolsAreRankLocal) {
  Comm comm(2);
  std::vector<double> a = comm.acquire_buffer(0, 4);
  comm.release_buffer(1, std::move(a));  // buffer migrates to rank 1's pool
  comm.acquire_buffer(0, 4);
  EXPECT_EQ(comm.pool_reuses(), 0);  // rank 0's pool is still empty
  comm.acquire_buffer(1, 4);
  EXPECT_EQ(comm.pool_reuses(), 1);
}

TEST(Mpisim, ManyRanksRing) {
  const int n = 8;
  run_ranks(n, [n](int rank, Comm& comm) {
    // Pass a token around the ring, accumulating.
    if (rank == 0) {
      comm.send(0, 1, 0, {1.0});
      std::vector<double> token = comm.recv(0, n - 1, 0);
      EXPECT_EQ(token[0], static_cast<double>(n));
    } else {
      std::vector<double> token = comm.recv(rank, rank - 1, 0);
      token[0] += 1.0;
      comm.send(rank, (rank + 1) % n, 0, std::move(token));
    }
  });
}

}  // namespace
}  // namespace ctile::mpisim
