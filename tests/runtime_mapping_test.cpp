#include "runtime/mapping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "deps/skew.hpp"

namespace ctile {
namespace {

TiledNest rect_nest(i64 nx, i64 ny, i64 x, i64 y) {
  LoopNest nest = make_rectangular_nest("r", {0, 0}, {nx - 1, ny - 1},
                                        MatI{{1, 0}, {0, 1}});
  return TiledNest(nest,
                   TilingTransform(MatQ{{Rat(1, x), Rat(0)},
                                        {Rat(0), Rat(1, y)}}));
}

TEST(Mapping, AutoChoosesLongestDimension) {
  // 12x4 space with 2x2 tiles: 6 tiles along dim 0, 2 along dim 1.
  TiledNest tiled = rect_nest(12, 4, 2, 2);
  Mapping mapping(tiled);
  EXPECT_EQ(mapping.m(), 0);
  EXPECT_EQ(mapping.chain_length(), 6);
  EXPECT_EQ(mapping.num_procs(), 2);
  EXPECT_EQ(mapping.grid(), (VecI{2}));
}

TEST(Mapping, TieBreaksInnermost) {
  TiledNest tiled = rect_nest(8, 8, 2, 2);
  Mapping mapping(tiled);
  EXPECT_EQ(mapping.m(), 1);
}

TEST(Mapping, ForcedDimension) {
  TiledNest tiled = rect_nest(12, 4, 2, 2);
  Mapping mapping(tiled, 1);
  EXPECT_EQ(mapping.m(), 1);
  EXPECT_EQ(mapping.chain_length(), 2);
  EXPECT_EQ(mapping.num_procs(), 6);
}

TEST(Mapping, TileAtOwnerRoundTrip) {
  TiledNest tiled = rect_nest(12, 4, 2, 2);
  Mapping mapping(tiled, 0);
  for (i64 p = 0; p < mapping.num_procs(); ++p) {
    VecI pid = mapping.pid_of(static_cast<int>(p));
    for (i64 t = 0; t < mapping.chain_length(); ++t) {
      VecI js = mapping.tile_at(pid, t);
      auto [pid2, t2] = mapping.owner_of(js);
      EXPECT_EQ(pid2, pid);
      EXPECT_EQ(t2, t);
    }
  }
}

TEST(Mapping, RankPidRoundTrip) {
  // 3-D nest so the mesh is 2-D.
  LoopNest nest = make_rectangular_nest(
      "r3", {0, 0, 0}, {5, 7, 11},
      MatI{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  TiledNest tiled(nest, TilingTransform(MatQ{{Rat(1, 2), Rat(0), Rat(0)},
                                             {Rat(0), Rat(1, 2), Rat(0)},
                                             {Rat(0), Rat(0), Rat(1, 2)}}));
  Mapping mapping(tiled);  // m = 2 (6 tiles)
  EXPECT_EQ(mapping.m(), 2);
  EXPECT_EQ(mapping.num_procs(), 3 * 4);
  std::set<int> ranks;
  for (int r = 0; r < mapping.num_procs(); ++r) {
    VecI pid = mapping.pid_of(r);
    EXPECT_EQ(mapping.rank_of(pid), r);
    ranks.insert(r);
  }
  EXPECT_EQ(static_cast<int>(ranks.size()), mapping.num_procs());
}

TEST(Mapping, NeighborEdges) {
  TiledNest tiled = rect_nest(12, 4, 2, 2);
  Mapping mapping(tiled, 0);  // mesh of 2 procs in dim 1
  VecI out;
  EXPECT_TRUE(mapping.neighbor({0}, {1}, &out));
  EXPECT_EQ(out, (VecI{1}));
  EXPECT_FALSE(mapping.neighbor({1}, {1}, &out));
  EXPECT_FALSE(mapping.neighbor({0}, {-1}, &out));
}

TEST(Mapping, ValidityMatchesTileSpace) {
  // Skewed space: triangle-ish tile space with invalid corners.
  MatI deps{{1, 1}, {0, 1}};
  LoopNest base = make_rectangular_nest("sk", {0, 0}, {7, 7}, deps);
  LoopNest skewed = skew(base, MatI{{1, 0}, {1, 1}});
  TiledNest tiled(skewed, TilingTransform(MatQ{{Rat(1, 2), Rat(0)},
                                               {Rat(0), Rat(1, 2)}}));
  Mapping mapping(tiled);
  i64 valid_count = 0, total = 0;
  for (i64 a = mapping.tile_lo()[0]; a <= mapping.tile_hi()[0]; ++a) {
    for (i64 b = mapping.tile_lo()[1]; b <= mapping.tile_hi()[1]; ++b) {
      ++total;
      if (mapping.valid({a, b})) ++valid_count;
    }
  }
  EXPECT_GT(valid_count, 0);
  EXPECT_LT(valid_count, total);  // the skew leaves invalid bbox corners
  // Every nonempty tile must be valid.
  for (const VecI& js : tiled.nonempty_tiles()) {
    EXPECT_TRUE(mapping.valid(js));
  }
  // Out-of-box is never valid.
  EXPECT_FALSE(mapping.valid({mapping.tile_lo()[0] - 1, 0}));
}

TEST(Mapping, ProjectDep) {
  EXPECT_EQ(project_dep({1, 2, 3}, 0), (VecI{2, 3}));
  EXPECT_EQ(project_dep({1, 2, 3}, 1), (VecI{1, 3}));
  EXPECT_EQ(project_dep({1, 2, 3}, 2), (VecI{1, 2}));
}

}  // namespace
}  // namespace ctile
