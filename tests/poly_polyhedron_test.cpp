#include "poly/polyhedron.hpp"

#include <gtest/gtest.h>

#include <set>

#include "linalg/rat_matops.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

TEST(Polyhedron, BoxContainment) {
  Polyhedron p = Polyhedron::box({0, 0}, {3, 2});
  EXPECT_TRUE(p.contains({0, 0}));
  EXPECT_TRUE(p.contains({3, 2}));
  EXPECT_FALSE(p.contains({4, 0}));
  EXPECT_FALSE(p.contains({0, -1}));
  EXPECT_EQ(p.count_points(), 12);
}

TEST(Polyhedron, TriangleScan) {
  // x >= 0, y >= 0, x + y <= 3  =>  10 integer points.
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(lower_bound(2, 1, 0));
  p.add(Constraint({-1, -1}, 3));
  EXPECT_EQ(p.count_points(), 10);
  std::set<VecI> pts;
  p.scan([&](const VecI& x) { pts.insert(x); });
  EXPECT_TRUE(pts.count({0, 3}));
  EXPECT_TRUE(pts.count({3, 0}));
  EXPECT_FALSE(pts.count({2, 2}));
}

TEST(Polyhedron, EliminateProducesShadow) {
  // Triangle above projected on x: 0 <= x <= 3.
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(lower_bound(2, 1, 0));
  p.add(Constraint({-1, -1}, 3));
  Polyhedron shadow = p.eliminate(1);
  EXPECT_EQ(shadow.dim(), 1);
  IntRange r = shadow.var_range(0, {});
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 3);
}

TEST(Polyhedron, VarRangeWithOuterValues) {
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(lower_bound(2, 1, 0));
  p.add(Constraint({-1, -1}, 3));
  IntRange r = p.var_range(1, {2});
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 1);
  r = p.var_range(1, {3});
  EXPECT_EQ(r.hi, 0);
}

TEST(Polyhedron, VarRangeInfeasibleOuter) {
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(upper_bound(2, 0, 1));
  p.add(lower_bound(2, 1, 0));
  p.add(upper_bound(2, 1, 1));
  // x0=5 violates a constraint not involving x1: range must be empty.
  EXPECT_TRUE(p.var_range(1, {5}).empty());
}

TEST(Polyhedron, UnboundedThrows) {
  Polyhedron p(1);
  p.add(lower_bound(1, 0, 0));
  EXPECT_THROW(p.var_range(0, {}), Error);
}

TEST(Polyhedron, EmptyRational) {
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 5));
  p.add(upper_bound(2, 0, 3));
  EXPECT_TRUE(p.empty_rational());
  Polyhedron q = Polyhedron::box({0, 0}, {1, 1});
  EXPECT_FALSE(q.empty_rational());
}

TEST(Polyhedron, IntegerTighteningDetectsEmptyLine) {
  // 2x = y (encoded as two inequalities) with y = 1 has the single
  // rational solution (1/2, 1) and no integer point.  The constraint
  // normalization tightens constants for integer solutions, so FM's
  // emptiness check sees the contradiction, and the scan agrees.
  Polyhedron p(2);
  p.add(Constraint({2, -1}, 0));   // 2x - y >= 0
  p.add(Constraint({-2, 1}, 0));   // y - 2x >= 0
  p.add(lower_bound(2, 1, 1));
  p.add(upper_bound(2, 1, 1));
  EXPECT_EQ(p.count_points(), 0);
  EXPECT_TRUE(p.empty_rational());
  // The same line through y = 2 does contain the integer point (1, 2).
  Polyhedron q(2);
  q.add(Constraint({2, -1}, 0));
  q.add(Constraint({-2, 1}, 0));
  q.add(lower_bound(2, 1, 2));
  q.add(upper_bound(2, 1, 2));
  EXPECT_EQ(q.count_points(), 1);
  EXPECT_FALSE(q.empty_rational());
}

TEST(Polyhedron, SkewedParallelogramScan) {
  // {(i,j) : 0<=i<=3, i<=j<=i+2} — the shape of a skewed loop nest.
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(upper_bound(2, 0, 3));
  p.add(Constraint({-1, 1}, 0));   // j >= i
  p.add(Constraint({1, -1}, 2));   // j <= i + 2
  EXPECT_EQ(p.count_points(), 12);
  p.scan([&](const VecI& x) {
    EXPECT_GE(x[1], x[0]);
    EXPECT_LE(x[1], x[0] + 2);
  });
}

TEST(Polyhedron, BoundingBox) {
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(lower_bound(2, 1, 0));
  p.add(Constraint({-1, -1}, 3));
  auto bb = p.bounding_box();
  EXPECT_EQ(bb[0].lo, 0);
  EXPECT_EQ(bb[0].hi, 3);
  EXPECT_EQ(bb[1].lo, 0);
  EXPECT_EQ(bb[1].hi, 3);
}

TEST(Polyhedron, ScanMatchesBruteForceRandomized) {
  Rng rng(555);
  for (int trial = 0; trial < 60; ++trial) {
    int n = static_cast<int>(rng.uniform(1, 3));
    Polyhedron p(n);
    // Bounding cube plus random cutting planes.
    VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      lo[static_cast<std::size_t>(i)] = rng.uniform(-4, 0);
      hi[static_cast<std::size_t>(i)] = rng.uniform(1, 5);
      p.add(lower_bound(n, i, lo[static_cast<std::size_t>(i)]));
      p.add(upper_bound(n, i, hi[static_cast<std::size_t>(i)]));
    }
    int cuts = static_cast<int>(rng.uniform(0, 3));
    for (int c = 0; c < cuts; ++c) {
      VecI coeffs(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        coeffs[static_cast<std::size_t>(i)] = rng.uniform(-3, 3);
      p.add(Constraint(coeffs, rng.uniform(-2, 8)));
    }
    // Brute force over the cube.
    std::set<VecI> expected;
    VecI x(static_cast<std::size_t>(n));
    std::function<void(int)> brute = [&](int d) {
      if (d == n) {
        if (p.contains(x)) expected.insert(x);
        return;
      }
      for (i64 v = lo[static_cast<std::size_t>(d)];
           v <= hi[static_cast<std::size_t>(d)]; ++v) {
        x[static_cast<std::size_t>(d)] = v;
        brute(d + 1);
      }
    };
    brute(0);
    std::set<VecI> scanned;
    p.scan([&](const VecI& pt) { scanned.insert(pt); });
    EXPECT_EQ(scanned, expected) << p.to_string();
  }
}

TEST(Polyhedron, SubstituteAffine) {
  // p = {0 <= x <= 4} and x = 2y + 1 gives {0 <= 2y+1 <= 4}, whose
  // integer solutions are y in {0, 1}.
  Polyhedron p(1);
  p.add(lower_bound(1, 0, 0));
  p.add(upper_bound(1, 0, 4));
  MatQ m{{Rat(2)}};
  Polyhedron q = substitute(p, m, {Rat(1)});
  EXPECT_EQ(q.count_points(), 2);
  EXPECT_TRUE(q.contains({0}));
  EXPECT_TRUE(q.contains({1}));
  EXPECT_FALSE(q.contains({2}));
}

TEST(Polyhedron, SubstituteRationalCoefficients) {
  // x = y/2 with 1 <= x <= 2 gives 2 <= y <= 4.
  Polyhedron p(1);
  p.add(lower_bound(1, 0, 1));
  p.add(upper_bound(1, 0, 2));
  Polyhedron q = substitute(p, MatQ{{Rat(1, 2)}}, {Rat(0)});
  IntRange r = q.var_range(0, {});
  EXPECT_EQ(r.lo, 2);
  EXPECT_EQ(r.hi, 4);
}

TEST(Polyhedron, AddDeduplicatesAndDropsTautologies) {
  Polyhedron p(1);
  p.add(Constraint({0}, 7));  // tautology: dropped
  EXPECT_EQ(p.num_constraints(), 0);
  p.add(lower_bound(1, 0, 2));
  p.add(Constraint({2}, -4));  // same as x >= 2 after normalize
  EXPECT_EQ(p.num_constraints(), 1);
}

TEST(Polyhedron, LevelProjectionsConsistent) {
  Polyhedron p(3);
  p.add(lower_bound(3, 0, 0));
  p.add(upper_bound(3, 0, 2));
  p.add(Constraint({-1, 1, 0}, 0));   // x1 >= x0
  p.add(Constraint({1, -1, 0}, 1));   // x1 <= x0 + 1
  p.add(Constraint({0, -1, 1}, 0));   // x2 >= x1
  p.add(Constraint({0, 1, -1}, 2));   // x2 <= x1 + 2
  auto levels = p.level_projections();
  ASSERT_EQ(levels.size(), 3u);
  // Every scanned point must satisfy every level's range.
  p.scan([&](const VecI& x) {
    for (int k = 0; k < 3; ++k) {
      IntRange r = levels[static_cast<std::size_t>(k)].var_range(k, x);
      EXPECT_LE(r.lo, x[static_cast<std::size_t>(k)]);
      EXPECT_GE(r.hi, x[static_cast<std::size_t>(k)]);
    }
  });
  EXPECT_EQ(p.count_points(), 3 * 2 * 3);
}

}  // namespace
}  // namespace ctile
