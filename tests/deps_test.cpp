#include <gtest/gtest.h>

#include <set>

#include "deps/loop_nest.hpp"
#include "deps/skew.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"

namespace ctile {
namespace {

MatI sor_deps_original() {
  // SOR A[t,i,j] reads (t,i-1,j), (t,i,j-1), (t-1,i+1,j), (t-1,i,j+1),
  // (t-1,i,j): dependence columns.
  return MatI{{0, 0, 1, 1, 1}, {1, 0, -1, 0, 0}, {0, 1, 0, -1, 0}};
}

MatI sor_skew() { return MatI{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}}; }

TEST(LoopNest, RectangularBuilderValidates) {
  LoopNest nest = make_rectangular_nest("adi", {1, 1, 1}, {4, 8, 8},
                                        MatI{{1, 1, 1}, {0, 1, 0}, {0, 0, 1}});
  EXPECT_EQ(nest.depth, 3);
  EXPECT_EQ(nest.num_deps(), 3);
  EXPECT_EQ(nest.space.count_points(), 4 * 8 * 8);
  EXPECT_EQ(nest.dep(1), (VecI{1, 1, 0}));
}

TEST(LoopNest, RejectsNonLexPositiveDeps) {
  EXPECT_THROW(
      make_rectangular_nest("bad", {0, 0}, {3, 3}, MatI{{0, 1}, {-1, 0}}),
      LegalityError);
  EXPECT_THROW(
      make_rectangular_nest("zero", {0, 0}, {3, 3}, MatI{{0}, {0}}),
      LegalityError);
}

TEST(LoopNest, ValidateChecksShapes) {
  LoopNest nest;
  nest.name = "shape";
  nest.depth = 2;
  nest.space = Polyhedron::box({0}, {1});  // wrong dim
  nest.deps = MatI{{1}, {0}};
  EXPECT_THROW(nest.validate(), LegalityError);
}

TEST(Skew, SorSkewMakesDepsNonNegative) {
  LoopNest sor = make_rectangular_nest("sor", {1, 1, 1}, {3, 4, 4},
                                       sor_deps_original());
  EXPECT_FALSE(all_deps_nonnegative(sor.deps));
  LoopNest skewed = skew(sor, sor_skew());
  EXPECT_TRUE(all_deps_nonnegative(skewed.deps));
  EXPECT_EQ(skewed.deps, mul(sor_skew(), sor_deps_original()));
  // Paper (\S4.1): skewed D contains the columns of
  // [[1,0,1,1,0],[1,1,0,1,0],[2,0,2,1,1]] as a set.
  std::set<VecI> got;
  for (int c = 0; c < skewed.deps.cols(); ++c) got.insert(skewed.deps.col(c));
  std::set<VecI> paper = {{1, 1, 2}, {0, 1, 0}, {1, 0, 2}, {1, 1, 1},
                          {0, 0, 1}};
  EXPECT_EQ(got, paper);
}

TEST(Skew, PreservesPointCountAndBijectivity) {
  LoopNest sor = make_rectangular_nest("sor", {1, 1, 1}, {3, 4, 4},
                                       sor_deps_original());
  LoopNest skewed = skew(sor, sor_skew());
  EXPECT_EQ(skewed.space.count_points(), sor.space.count_points());
  // Every original point maps into the skewed space and back.
  MatI t = sor_skew();
  sor.space.scan([&](const VecI& j) {
    VecI jprime = mul(t, j);
    EXPECT_TRUE(skewed.space.contains(jprime));
  });
  skewed.space.scan([&](const VecI& jp) {
    VecQ j = mul(inverse(to_rat(t)), to_rat_vec(jp));
    EXPECT_TRUE(all_integer_vec(j));
    EXPECT_TRUE(sor.space.contains(to_int_vec(j)));
  });
}

TEST(Skew, RejectsNonUnimodular) {
  LoopNest nest = make_rectangular_nest("x", {0, 0}, {3, 3},
                                        MatI{{1, 0}, {0, 1}});
  EXPECT_THROW(skew(nest, MatI{{2, 0}, {0, 1}}), LegalityError);
}

TEST(TilingCone, SorConeMatchesPaper) {
  MatI skewed_deps = mul(sor_skew(), sor_deps_original());
  ConeRays cone = tiling_cone(skewed_deps);
  std::set<VecI> rays(cone.rays.begin(), cone.rays.end());
  EXPECT_TRUE(rays.count({1, 0, 0}));
  EXPECT_TRUE(rays.count({0, 1, 0}));
  EXPECT_TRUE(rays.count({-1, 0, 1}));
  EXPECT_TRUE(rays.count({-2, 1, 1}));
  EXPECT_EQ(rays.size(), 4u);
}

TEST(TilingCone, LegalityRectangularOnSkewedSor) {
  MatI skewed_deps = mul(sor_skew(), sor_deps_original());
  // Rectangular H_r = diag(1/x, 1/y, 1/z) is legal on the skewed nest.
  MatQ hr{{Rat(1, 4), Rat(0), Rat(0)},
          {Rat(0), Rat(1, 5), Rat(0)},
          {Rat(0), Rat(0), Rat(1, 6)}};
  EXPECT_TRUE(tiling_legal(hr, skewed_deps));
  // ...but illegal on the original (negative dependence components).
  EXPECT_FALSE(tiling_legal(hr, sor_deps_original()));
  EXPECT_THROW(require_tiling_legal(hr, sor_deps_original(), "sor"),
               LegalityError);
}

TEST(TilingCone, NonRectSorLegal) {
  MatI skewed_deps = mul(sor_skew(), sor_deps_original());
  // H_nr rows: (1/x,0,0), (0,1/y,0), (-1/z,0,1/z) — from the tiling cone.
  MatQ hnr{{Rat(1, 4), Rat(0), Rat(0)},
           {Rat(0), Rat(1, 5), Rat(0)},
           {Rat(-1, 6), Rat(0), Rat(1, 6)}};
  EXPECT_TRUE(tiling_legal(hnr, skewed_deps));
}

TEST(TilingCone, EveryRayIsLegalRowDirection) {
  MatI skewed_deps = mul(sor_skew(), sor_deps_original());
  ConeRays cone = tiling_cone(skewed_deps);
  for (const VecI& ray : cone.rays) {
    MatQ h(1, 3);
    for (int c = 0; c < 3; ++c) h(0, c) = Rat(ray[static_cast<std::size_t>(c)], 4);
    EXPECT_TRUE(tiling_legal(h, skewed_deps));
  }
}

}  // namespace
}  // namespace ctile
