// Canonical plan-key tests: the content-addressed PlanCache is only as
// good as its key, so the key's identity semantics are pinned here.
//
// - Golden digests for the five paper configurations: the serialization
//   is platform-stable by construction (fixed-width little-endian
//   integers, sorted gcd-normalized constraints, reduced rationals), so
//   these values must never change silently — a digest change means the
//   key format changed and every persisted/sharded cache key is invalid.
// - The nest *name* is excluded from the key (two identically-shaped
//   nests share a plan), while every semantic input — space, deps, H,
//   kind, knobs — must flip the key.
// - Collision sanity: distinct random legal tilings of random nests all
//   get distinct bytes AND distinct digests.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "apps/kernels.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/plan_cache.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

PlanKey parallel_key(const LoopNest& nest, const MatQ& h, int force_m = -1) {
  LoweringKnobs knobs;
  knobs.force_m = force_m;
  return make_plan_key(nest, h, CompiledPlan::Kind::kParallel, knobs);
}

TEST(PlanKey, GoldenDigestsForPaperConfigs) {
  struct Golden {
    const char* name;
    const char* digest;
  };
  // Fixed vectors: regenerate ONLY on a deliberate key-format revision
  // (bump the "CTPK" magic when you do).  Current format: CTPK2
  // (machine-model fields joined the key).
  const Golden golden[] = {
      {"fig06-sor-rect", "419ae90149faf3be"},
      {"fig06-sor-nonrect", "c3dce1a022fa4d57"},
      {"fig08-jacobi-nonrect", "e96e312a7733fd5f"},
      {"fig10-adi-nr1", "e791cf5765e0e558"},
      {"fig10-adi-nr3", "1fbce19b9d9087cd"},
  };
  const PlanKey keys[] = {
      parallel_key(make_sor(24, 48).nest, sor_rect_h(6, 18, 8), 2),
      parallel_key(make_sor(24, 48).nest, sor_nonrect_h(6, 18, 8), 2),
      parallel_key(make_jacobi(12, 16, 48).nest, jacobi_nonrect_h(3, 4, 16)),
      parallel_key(make_adi(16, 48).nest, adi_nr1_h(4, 4, 16)),
      parallel_key(make_adi(32, 48).nest, adi_nr3_h(4, 4, 16)),
  };
  for (std::size_t i = 0; i < std::size(golden); ++i) {
    EXPECT_EQ(keys[i].hex(), golden[i].digest) << golden[i].name;
    EXPECT_EQ(keys[i].digest, fnv1a64(keys[i].bytes)) << golden[i].name;
  }
}

TEST(PlanKey, DeterministicAcrossCalls) {
  const AppInstance app = make_sor(24, 48);
  const PlanKey a = parallel_key(app.nest, sor_rect_h(6, 18, 8), 2);
  const PlanKey b = parallel_key(app.nest, sor_rect_h(6, 18, 8), 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(PlanKey, NestNameDoesNotAffectKey) {
  LoopNest a = make_sor(24, 48).nest;
  LoopNest b = a;
  b.name = "a-completely-different-name";
  EXPECT_EQ(parallel_key(a, sor_rect_h(6, 18, 8), 2),
            parallel_key(b, sor_rect_h(6, 18, 8), 2));
}

TEST(PlanKey, EverySemanticInputFlipsTheKey) {
  const AppInstance app = make_sor(24, 48);
  const MatQ h = sor_rect_h(6, 18, 8);
  const PlanKey base = parallel_key(app.nest, h, 2);

  // Tiling matrix.
  EXPECT_NE(base, parallel_key(app.nest, sor_rect_h(6, 18, 4), 2));
  EXPECT_NE(base, parallel_key(app.nest, sor_nonrect_h(6, 18, 8), 2));
  // Iteration space.
  EXPECT_NE(base, parallel_key(make_sor(24, 47).nest, h, 2));
  // Dependence matrix (column order matters: kernels consume dependence
  // values by column index).
  LoopNest swapped = app.nest;
  const int q = swapped.deps.cols();
  ASSERT_GE(q, 2);
  for (int r = 0; r < swapped.deps.rows(); ++r) {
    std::swap(swapped.deps(r, 0), swapped.deps(r, 1));
  }
  EXPECT_NE(base, parallel_key(swapped, h, 2));
  // force_m knob.
  EXPECT_NE(base, parallel_key(app.nest, h, -1));
  // Census mode + box knobs.
  LoweringKnobs box;
  box.force_m = 2;
  box.census_from_box = true;
  box.orig_lo = {1, 1, 1};
  box.orig_hi = {24, 48, 48};
  box.skew = sor_skew_matrix();
  const PlanKey boxed =
      make_plan_key(app.nest, h, CompiledPlan::Kind::kParallel, box);
  EXPECT_NE(base, boxed);
  LoweringKnobs box2 = box;
  box2.orig_hi = {24, 48, 47};
  EXPECT_NE(boxed,
            make_plan_key(app.nest, h, CompiledPlan::Kind::kParallel, box2));
  // Lowering kind.
  LoweringKnobs fm2;
  fm2.force_m = 2;
  EXPECT_NE(base, make_plan_key(app.nest, h, CompiledPlan::Kind::kSequential,
                                fm2));
  // Machine-model fields (plans cached for one machine must never be
  // served for another: the scores hung off a plan id depend on them).
  LoweringKnobs mach;
  mach.force_m = 2;
  {
    MachineKeyFields mf;
    mf.sec_per_iter = 300e-9;
    mf.latency = 120e-6;
    mf.bandwidth = 11.5e6;
    mf.per_byte_overhead = 4e-9;
    mf.per_message_overhead = 60e-6;
    mf.bytes_per_value = 8;
    mach.machine = mf;
  }
  const PlanKey machined =
      make_plan_key(app.nest, h, CompiledPlan::Kind::kParallel, mach);
  EXPECT_NE(base, machined);  // presence alone flips the key
  const auto flip = [&](auto&& mutate) {
    LoweringKnobs k = mach;
    mutate(*k.machine);
    EXPECT_NE(machined,
              make_plan_key(app.nest, h, CompiledPlan::Kind::kParallel, k));
  };
  flip([](MachineKeyFields& m) { m.sec_per_iter = 301e-9; });
  flip([](MachineKeyFields& m) { m.latency = 121e-6; });
  flip([](MachineKeyFields& m) { m.bandwidth = 11.6e6; });
  flip([](MachineKeyFields& m) { m.per_byte_overhead = 5e-9; });
  flip([](MachineKeyFields& m) { m.per_message_overhead = 61e-6; });
  flip([](MachineKeyFields& m) { m.bytes_per_value = 4; });
}

TEST(PlanKey, TiledNestOverloadMatchesRawOverload) {
  const AppInstance app = make_sor(24, 48);
  const MatQ h = sor_rect_h(6, 18, 8);
  LoweringKnobs knobs;
  knobs.force_m = 2;
  const TiledNest tiled(app.nest, TilingTransform(h));
  EXPECT_EQ(make_plan_key(app.nest, h, CompiledPlan::Kind::kParallel, knobs),
            make_plan_key(tiled, CompiledPlan::Kind::kParallel, knobs));
}

// Random lex-positive dependence with small components.
VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    }
    if (lex_positive(d)) return d;
  }
}

// Random integral-P tiling legal for deps (same generator shape as
// runtime_random_e2e_test, minus the LDS stride constraints — keys are
// defined for any legal tiling).
std::optional<MatQ> random_tiling(Rng& rng, int n, const MatI& deps) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 6);
        } else if (rng.chance(0.3)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    return h;
  }
  return std::nullopt;
}

TEST(PlanKey, NoCollisionsAcrossRandomLegalTilings) {
  Rng rng(20260808);
  std::set<std::string> bytes_seen;
  std::set<u64> digests_seen;
  // Dedup on an independent rendering of (space, deps, H), so the
  // bytes_seen assertion genuinely tests key injectivity rather than
  // restating the dedup.
  std::set<std::string> instances_seen;
  int produced = 0;
  int attempts = 0;
  while (produced < 24 && attempts < 600) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 4));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) {
        deps(r, c) = d[static_cast<std::size_t>(r)];
      }
    }
    LoopNest nest;
    try {
      VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 3);
        hi[static_cast<std::size_t>(k)] =
            lo[static_cast<std::size_t>(k)] + rng.uniform(4, 14);
      }
      nest = make_rectangular_nest("rand", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;
    }
    std::optional<MatQ> h = random_tiling(rng, n, nest.deps);
    if (!h) continue;
    std::string fingerprint = h->to_string() + "|" + nest.deps.to_string();
    for (const Constraint& c : nest.space.constraints()) {
      fingerprint += "|" + c.to_string();
    }
    // Identical (nest, H) pairs legitimately share a key; only count
    // distinct instances.
    if (!instances_seen.insert(fingerprint).second) continue;
    const PlanKey key = parallel_key(nest, *h);
    ++produced;
    EXPECT_TRUE(bytes_seen.insert(key.bytes).second)
        << "byte-level collision\nH =\n"
        << h->to_string() << "\nD =\n"
        << nest.deps.to_string();
    EXPECT_TRUE(digests_seen.insert(key.digest).second)
        << "digest collision\nH =\n"
        << h->to_string() << "\nD =\n"
        << nest.deps.to_string();
  }
  EXPECT_GE(produced, 20) << "random generator starved (" << attempts
                          << " attempts)";
}

}  // namespace
}  // namespace ctile
