#include "poly/constraint.hpp"

#include <gtest/gtest.h>

namespace ctile {
namespace {

TEST(Constraint, EvalAndSatisfied) {
  Constraint c({2, -1}, 3);  // 2x - y + 3 >= 0
  EXPECT_EQ(c.eval(VecI{1, 1}), 4);
  EXPECT_TRUE(c.satisfied({1, 1}));
  EXPECT_FALSE(c.satisfied({0, 4}));
  EXPECT_TRUE(c.satisfied({0, 3}));  // boundary
}

TEST(Constraint, RationalEval) {
  Constraint c({2, -1}, 3);
  EXPECT_EQ(c.eval(VecQ{Rat(1, 2), Rat(1)}), Rat(3));
}

TEST(Constraint, IsConstant) {
  EXPECT_TRUE(Constraint({0, 0}, 5).is_constant());
  EXPECT_TRUE(Constraint({0, 0}, -5).is_constant());
  EXPECT_FALSE(Constraint({1, 0}, 0).is_constant());
}

TEST(Constraint, NormalizeDividesByGcd) {
  Constraint c({4, -6}, 10);
  c.normalize();
  EXPECT_EQ(c.coeffs, (VecI{2, -3}));
  EXPECT_EQ(c.constant, 5);
}

TEST(Constraint, NormalizeTightensConstant) {
  // 3x - 7 >= 0 over integers means x >= 3, i.e. x - 3 >= 0.
  Constraint c({3}, -7);
  c.normalize();
  EXPECT_EQ(c.coeffs, (VecI{1}));
  EXPECT_EQ(c.constant, -3);
  // The tightening must preserve the integer solution set.
  for (i64 x = -10; x <= 10; ++x) {
    EXPECT_EQ(3 * x - 7 >= 0, c.satisfied({x})) << "x=" << x;
  }
}

TEST(Constraint, NormalizeKeepsUnitGcd) {
  Constraint c({2, 3}, -1);
  Constraint copy = c;
  copy.normalize();
  EXPECT_EQ(copy, c);
}

TEST(Constraint, BoundBuilders) {
  Constraint lo = lower_bound(3, 1, 5);  // x1 >= 5
  EXPECT_TRUE(lo.satisfied({0, 5, 0}));
  EXPECT_FALSE(lo.satisfied({0, 4, 0}));
  Constraint up = upper_bound(3, 2, -2);  // x2 <= -2
  EXPECT_TRUE(up.satisfied({0, 0, -2}));
  EXPECT_FALSE(up.satisfied({0, 0, -1}));
}

TEST(Constraint, ToString) {
  EXPECT_EQ(Constraint({2, -1}, 3).to_string(), "2*x0 + -x1 + 3 >= 0");
  EXPECT_EQ(Constraint({1, 0}, -4).to_string(), "x0 - 4 >= 0");
  EXPECT_EQ(Constraint({0, 0}, 0).to_string(), "0 >= 0");
}

}  // namespace
}  // namespace ctile
