#include "runtime/data_space.hpp"

#include <gtest/gtest.h>

namespace ctile {
namespace {

// Trivial kernel: value = 10*j0 + j1 (+ 100 per extra component).
class Probe final : public Kernel {
 public:
  explicit Probe(int arity) : arity_(arity) {}
  int arity() const override { return arity_; }
  void compute(const VecI& j, const double*, double* out) const override {
    for (int v = 0; v < arity_; ++v) {
      out[v] = 10.0 * static_cast<double>(j[0]) +
               static_cast<double>(j[1]) + 100.0 * v;
    }
  }
  void initial(const VecI&, double* out) const override {
    for (int v = 0; v < arity_; ++v) out[v] = -1.0;
  }

 private:
  int arity_;
};

TEST(DataSpace, BoxGeometry) {
  Polyhedron space = Polyhedron::box({-2, 3}, {4, 7});
  DataSpace ds(space, 1);
  EXPECT_EQ(ds.points(), 7 * 5);
  EXPECT_TRUE(ds.in_box({-2, 3}));
  EXPECT_TRUE(ds.in_box({4, 7}));
  EXPECT_FALSE(ds.in_box({5, 3}));
  EXPECT_FALSE(ds.in_box({-3, 3}));
}

TEST(DataSpace, ZeroInitializedAndWritable) {
  Polyhedron space = Polyhedron::box({0, 0}, {2, 2});
  DataSpace ds(space, 2);
  EXPECT_EQ(ds.at({1, 1})[0], 0.0);
  EXPECT_EQ(ds.at({1, 1})[1], 0.0);
  ds.at({1, 1})[1] = 42.0;
  EXPECT_EQ(ds.at({1, 1})[1], 42.0);
  EXPECT_EQ(ds.at({1, 1})[0], 0.0);  // neighbour component untouched
  EXPECT_EQ(ds.at({1, 2})[0], 0.0);  // neighbour point untouched
}

TEST(DataSpace, NonRectangularSpaceUsesBoundingBox) {
  // Triangle: allocation covers the box, scan touches only the triangle.
  Polyhedron space(2);
  space.add(lower_bound(2, 0, 0));
  space.add(lower_bound(2, 1, 0));
  space.add(Constraint({-1, -1}, 4));
  DataSpace ds(space, 1);
  EXPECT_EQ(ds.points(), 25);  // 5x5 box
  EXPECT_EQ(space.count_points(), 15);
}

TEST(DataSpace, MaxAbsDiff) {
  Polyhedron space = Polyhedron::box({0, 0}, {2, 2});
  DataSpace a(space, 1), b(space, 1);
  EXPECT_EQ(DataSpace::max_abs_diff(a, b, space), 0.0);
  b.at({2, 1})[0] = 0.5;
  EXPECT_EQ(DataSpace::max_abs_diff(a, b, space), 0.5);
  a.at({0, 0})[0] = -2.0;
  EXPECT_EQ(DataSpace::max_abs_diff(a, b, space), 2.0);
}

TEST(DataSpace, RunSequentialLexOrderAndICs) {
  // Deps reach outside the space on the first row/column: those reads
  // must take initial() (= -1), everything else the computed values.
  Polyhedron space = Polyhedron::box({0, 0}, {3, 3});
  MatI deps{{1, 0}, {0, 1}};
  Probe kernel(1);
  DataSpace ds = run_sequential(space, deps, kernel);
  space.scan([&](const VecI& j) {
    EXPECT_EQ(ds.at(j)[0],
              10.0 * static_cast<double>(j[0]) + static_cast<double>(j[1]));
  });
}

TEST(DataSpace, Arity2Components) {
  Polyhedron space = Polyhedron::box({0, 0}, {2, 2});
  MatI deps{{1}, {0}};
  Probe kernel(2);
  DataSpace ds = run_sequential(space, deps, kernel);
  EXPECT_EQ(ds.at({2, 1})[0], 21.0);
  EXPECT_EQ(ds.at({2, 1})[1], 121.0);
}

}  // namespace
}  // namespace ctile
