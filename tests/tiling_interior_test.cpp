// Soundness of the interior/boundary tile classifier: a tile marked
// interior must (brute-force checked) contain only real iteration points
// and only in-space predecessors — the two facts the executors' fast
// sweep relies on to drop contains() tests and initial-value branches.
#include "tiling/interior.hpp"

#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "linalg/int_matops.hpp"
#include "runtime/comm_plan.hpp"
#include "runtime/lds.hpp"
#include "runtime/mapping.hpp"
#include "support/checked_int.hpp"
#include "tiling/ttis.hpp"

namespace ctile {
namespace {

// Brute-force ground truth: every TTIS lattice point of the tile lies in
// J^n, and so does every dependence predecessor of every tile point.
bool brute_interior(const TiledNest& tiled, const VecI& js) {
  const Polyhedron& space = tiled.nest().space;
  const MatI& deps = tiled.nest().deps;
  const i64 lattice_points =
      count_lattice_points(tiled.transform(), tiled.tile_region(js));
  i64 in_space = 0;
  bool preds_ok = true;
  tiled.for_each_tile_point(js, [&](const VecI&, const VecI& j) {
    ++in_space;
    for (int l = 0; l < deps.cols(); ++l) {
      if (!space.contains(vec_sub(j, deps.col(l)))) preds_ok = false;
    }
  });
  return preds_ok && in_space == lattice_points;
}

// Classifier soundness over every tile of the bounding box; returns the
// number of interior tiles so callers can also assert usefulness.
i64 check_sound(const TiledNest& tiled, const TileClassifier& classifier) {
  const std::vector<IntRange> box = tiled.tile_space_box();
  i64 interior = 0;
  VecI js(box.size());
  std::function<void(std::size_t)> rec = [&](std::size_t d) {
    if (d == box.size()) {
      if (classifier.interior(js)) {
        ++interior;
        EXPECT_TRUE(brute_interior(tiled, js))
            << "tile (" << js[0] << ",...) wrongly classified interior";
      }
      return;
    }
    for (i64 v = box[d].lo; v <= box[d].hi; ++v) {
      js[d] = v;
      rec(d + 1);
    }
  };
  rec(0);
  EXPECT_EQ(interior, classifier.num_interior());
  return interior;
}

TEST(TileClassifier, SoundOnSorRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  TileCensus census(tiled);
  EXPECT_GT(check_sound(tiled, TileClassifier(tiled, &census)), 0);
}

TEST(TileClassifier, SoundOnSorNonRect) {
  AppInstance app = make_sor(8, 12);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 6, 4)));
  TileCensus census(tiled);
  check_sound(tiled, TileClassifier(tiled, &census));
}

TEST(TileClassifier, SoundOnJacobiNonRect) {
  AppInstance app = make_jacobi(8, 16, 12);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
  TileCensus census(tiled);
  EXPECT_GT(check_sound(tiled, TileClassifier(tiled, &census)), 0);
}

TEST(TileClassifier, SoundOnAdi) {
  AppInstance app = make_adi(8, 8);
  TiledNest tiled(app.nest, TilingTransform(adi_nr1_h(2, 4, 4)));
  TileCensus census(tiled);
  EXPECT_GT(check_sound(tiled, TileClassifier(tiled, &census)), 0);
}

TEST(TileClassifier, SoundWithoutCensus) {
  // No census: fullness must come from the corner probes alone.
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  EXPECT_GT(check_sound(tiled, TileClassifier(tiled)), 0);
}

TEST(TileClassifier, SoundOnNonIntegralP) {
  // Heat's non-rectangular tiling has non-integral P = H^-1: tiles are
  // not translates of each other, so the classifier leans entirely on
  // the rational corner probes (sequential executor's configuration).
  AppInstance app = make_heat(10, 14);
  TiledNest tiled(app.nest, TilingTransform(heat_nonrect_h(4, 3)));
  check_sound(tiled, TileClassifier(tiled));
}

// BandSplit partitions every full tile into a per-row prefix (the
// remainder, computed first under the overlapped schedule) and a suffix
// band covering every pack region (sent eagerly as soon as it is done).
TEST(BandSplit, PartitionsTileAndMatchesClassifier) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  TileCensus census(tiled);
  Mapping mapping(tiled, /*force_m=*/2, &census);
  LdsLayout canonical(tiled, mapping);
  CommPlan plan(tiled, mapping, canonical);
  std::vector<TtisRegion> regions;
  for (const ProcDir& dir : plan.directions()) regions.push_back(dir.pack);
  ASSERT_FALSE(regions.empty()) << "SOR must communicate";

  const TilingTransform& tf = tiled.transform();
  BandSplit band(tf, regions);
  // The split is a partition of the full tile lattice.
  EXPECT_EQ(add_ck(band.band_points(), band.remainder_points()),
            count_lattice_points(tf, full_ttis_region(tf)));
  // Cross-processor dependences exist, so the band is non-empty; the
  // remainder is too (interior work exists to overlap against).
  EXPECT_GT(band.band_points(), 0);
  EXPECT_GT(band.remainder_points(), 0);
  // Every band point lies inside some pack region's inner-dim reach:
  // per row, points at index >= split are covered, points below none.
  // (Spot-check: split indices never exceed the row point count.)
  // And the classifier exposes the same count to benches.
  TileClassifier classifier(tiled, &census, &regions);
  EXPECT_EQ(classifier.boundary_band_points(), band.band_points());
}

TEST(BandSplit, EmptyRegionsMeansEmptyBand) {
  AppInstance app = make_sor(8, 12);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 6, 4)));
  const TilingTransform& tf = tiled.transform();
  BandSplit band(tf, {});
  EXPECT_EQ(band.band_points(), 0);
  EXPECT_EQ(band.remainder_points(),
            count_lattice_points(tf, full_ttis_region(tf)));
}

TEST(TileClassifier, OutsideBoxIsBoundary) {
  AppInstance app = make_sor(8, 12);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 6, 4)));
  TileClassifier classifier(tiled);
  const std::vector<IntRange> box = tiled.tile_space_box();
  VecI far(box.size());
  for (std::size_t k = 0; k < box.size(); ++k) far[k] = box[k].hi + 5;
  EXPECT_FALSE(classifier.interior(far));
}

}  // namespace
}  // namespace ctile
