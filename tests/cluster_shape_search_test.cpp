// Shape-search subsystem tests (DESIGN.md §15):
//
// - cone_surface_directions: the paper's H-family rows really are
//   surface directions (SOR nonrect rows, ADI nr1/nr2/nr3 chain rows),
//   and interior rows (ADI's rectangular chain row) are excluded.
// - Every emitted surface candidate passes the V1 legality core
//   (tiling_legal == ctile-verify V1's HD >= 0) — the property the
//   generator is FOR.
// - comm_lower_bound is a true lower bound: bytes_lb <= measured comm
//   volume and time_lb <= measured makespan, on the paper configs AND
//   on 20 random legal nests (the ISSUE's property test).
// - autotune_tile_shape: the ADI search rediscovers nr3's cone-parallel
//   chain row (ROADMAP item 5's required regression), surface beats
//   rectangular on SOR, parallel == serial winner bitwise (the TSan
//   target: ThreadPool + shared PlanCache), pruning never changes the
//   winner, and the cross-search score memo serves repeat queries.
#include "cluster/shape_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "apps/kernels.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

bool contains_dir(const std::vector<VecI>& dirs, const VecI& d) {
  return std::find(dirs.begin(), dirs.end(), d) != dirs.end();
}

TEST(ConeSurface, SorSurfaceContainsPaperRows) {
  const AppInstance app = make_sor(24, 48);
  const std::vector<VecI> dirs = cone_surface_directions(app.nest.deps);
  ASSERT_GE(dirs.size(), 3u);
  // The fig06 non-rectangular family's rows...
  EXPECT_TRUE(contains_dir(dirs, {1, 0, 0}));
  EXPECT_TRUE(contains_dir(dirs, {0, 1, 0}));
  EXPECT_TRUE(contains_dir(dirs, {-1, 0, 1}));
  // ...and the rectangular z-row, which for the skewed SOR cone is a
  // facet sum of two extreme rays.
  EXPECT_TRUE(contains_dir(dirs, {0, 0, 1}));
  // Sorted + unique (deterministic enumeration order).
  for (std::size_t i = 1; i < dirs.size(); ++i) {
    EXPECT_LT(lex_compare(dirs[i - 1], dirs[i]), 0);
  }
}

TEST(ConeSurface, AdiSurfaceIsTheNrFamilyFan) {
  const AppInstance app = make_adi(16, 24);
  const std::vector<VecI> dirs = cone_surface_directions(app.nest.deps);
  // Chain rows of the paper's three non-rectangular ADI orderings: the
  // cone's unique oblique extreme ray and its two facet sums.
  EXPECT_TRUE(contains_dir(dirs, {1, -1, -1}));  // nr3 (cone-parallel)
  EXPECT_TRUE(contains_dir(dirs, {1, -1, 0}));   // nr1
  EXPECT_TRUE(contains_dir(dirs, {1, 0, -1}));   // nr2
  EXPECT_TRUE(contains_dir(dirs, {0, 1, 0}));
  EXPECT_TRUE(contains_dir(dirs, {0, 0, 1}));
  // The rectangular chain row (1,0,0) is strictly INSIDE the cone
  // (every dependence pays h.d > 0): not a surface direction.
  EXPECT_FALSE(contains_dir(dirs, {1, 0, 0}));
}

ShapeSearchRequest adi_request() {
  ShapeSearchRequest req;
  req.force_m = 0;
  req.arity = 2;
  req.mesh_extent = 4;  // the paper's 4x4 mesh, fitted per candidate
  req.chain_factors = {2, 4, 8};
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {16, 24, 24};
  req.skew = MatI::identity(3);
  req.scorer = ShapeScorer::kAnalytic;
  req.threads = 1;
  return req;
}

TEST(ConeSurface, EveryEmittedCandidatePassesV1) {
  // The property the generator exists for: every candidate's rows are
  // in the tiling cone, i.e. H D >= 0 — exactly ctile-verify V1's
  // legality core (verifier.cpp check_v1 delegates to this predicate).
  const struct {
    AppInstance app;
    ShapeSearchRequest req;
  } cases[] = {
      {make_sor(24, 48),
       [] {
         ShapeSearchRequest r;
         r.force_m = 2;
         r.mesh_scales = {6, 18};
         r.chain_factors = {4, 8};
         return r;
       }()},
      {make_adi(16, 24), adi_request()},
      {make_jacobi(8, 16, 16),
       [] {
         ShapeSearchRequest r;
         r.force_m = 0;
         r.mesh_scales = {4, 4};
         r.chain_factors = {2, 4};
         return r;
       }()},
  };
  for (const auto& c : cases) {
    const std::vector<SurfaceCandidate> cands =
        surface_candidates(c.app.nest.deps, c.req);
    ASSERT_FALSE(cands.empty()) << c.app.nest.name;
    for (const SurfaceCandidate& cand : cands) {
      EXPECT_TRUE(tiling_legal(cand.h, c.app.nest.deps))
          << c.app.nest.name << "\nH =\n"
          << cand.h.to_string();
    }
  }
}

// Measured volume/makespan for one lowered configuration.
SimResult measure(const LoopNest& nest, const MatQ& h, int force_m,
                  int arity, const MachineModel& machine) {
  LoweringKnobs knobs;
  knobs.force_m = force_m;
  std::shared_ptr<const CompiledPlan> plan =
      CompiledPlan::compile_parallel(nest, h, knobs);
  return simulate_cluster(plan->tiled(), plan->mapping(), plan->lds(),
                          plan->comm_plan(), plan->census(), machine, arity,
                          CommSchedule::kBlocking);
}

TEST(CommBound, BoundLeqMeasuredOnPaperConfigs) {
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  struct Case {
    const char* name;
    AppInstance app;
    MatQ h;
    int force_m;
    int arity;
    VecI lo, hi;
  };
  const Case cases[] = {
      {"sor-nonrect", make_sor(24, 48), sor_nonrect_h(6, 18, 8), 2, 1,
       {1, 1, 1}, {24, 48, 48}},
      {"sor-rect", make_sor(24, 48), sor_rect_h(6, 18, 8), 2, 1,
       {1, 1, 1}, {24, 48, 48}},
      {"adi-nr3", make_adi(32, 48), adi_nr3_h(4, 6, 6), 0, 2, {1, 1, 1},
       {32, 48, 48}},
      {"adi-nr1", make_adi(32, 48), adi_nr1_h(4, 6, 6), 0, 2, {1, 1, 1},
       {32, 48, 48}},
      {"jacobi-nonrect", make_jacobi(16, 32, 32), jacobi_nonrect_h(2, 4, 6),
       0, 1, {1, 1, 1}, {16, 32, 32}},
  };
  for (const Case& c : cases) {
    const CommBoundResult bound = comm_lower_bound(
        c.app.nest, c.h, c.force_m, c.arity, machine, c.lo, c.hi);
    const SimResult sim =
        measure(c.app.nest, c.h, c.force_m, c.arity, machine);
    EXPECT_LE(bound.bytes_lb, sim.bytes) << c.name;
    EXPECT_LE(bound.time_lb_s, sim.makespan * (1.0 + 1e-6)) << c.name;
    EXPECT_EQ(bound.total_points, sim.total_points) << c.name;
    EXPECT_GT(bound.full_tiles, 0) << c.name;
    EXPECT_GT(bound.bytes_lb, 0) << c.name;
  }
}

TEST(CommBound, RejectsStructurallyInvalidTilings) {
  const AppInstance app = make_sor(24, 48);
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  // Singular H.
  MatQ singular(3, 3);
  EXPECT_THROW(comm_lower_bound(app.nest, singular, 2, 1, machine,
                                {1, 1, 1}, {24, 48, 48}),
               Error);
  // Cone-illegal H: a row anti-parallel to a dependence.
  MatQ illegal = sor_rect_h(6, 18, 8);
  for (int c = 0; c < 3; ++c) illegal(0, c) = -illegal(0, c);
  EXPECT_THROW(comm_lower_bound(app.nest, illegal, 2, 1, machine,
                                {1, 1, 1}, {24, 48, 48}),
               LegalityError);
}

// Random generators shared in spirit with plan_cache_key_test: small
// lex-positive deps, random integer-P tilings legal for them.
VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    }
    if (lex_positive(d)) return d;
  }
}

std::optional<MatQ> random_tiling(Rng& rng, int n, const MatI& deps) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 6);
        } else if (rng.chance(0.3)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    return h;
  }
  return std::nullopt;
}

TEST(CommBound, LowerBoundLeqMeasuredOn20RandomLegalNests) {
  Rng rng(20260808);
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  int produced = 0;
  int attempts = 0;
  while (produced < 20 && attempts < 800) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 3));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) deps(r, c) = d[static_cast<std::size_t>(r)];
    }
    VecI lo(static_cast<std::size_t>(n));
    VecI hi(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 3);
      hi[static_cast<std::size_t>(k)] =
          lo[static_cast<std::size_t>(k)] + rng.uniform(6, 16);
    }
    LoopNest nest;
    try {
      nest = make_rectangular_nest("rand", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;
    }
    std::optional<MatQ> h = random_tiling(rng, n, nest.deps);
    if (!h) continue;
    CommBoundResult bound;
    SimResult sim;
    try {
      bound = comm_lower_bound(nest, *h, -1, 1, machine, lo, hi);
      sim = measure(nest, *h, -1, 1, machine);
    } catch (const Error&) {
      continue;  // tiling not liftable by the full lowering: skip
    }
    ++produced;
    EXPECT_LE(bound.bytes_lb, sim.bytes)
        << "H =\n"
        << h->to_string() << "\nD =\n"
        << nest.deps.to_string();
    EXPECT_LE(bound.time_lb_s, sim.makespan * (1.0 + 1e-6))
        << "H =\n"
        << h->to_string() << "\nD =\n"
        << nest.deps.to_string();
  }
  EXPECT_GE(produced, 20) << "random generator starved (" << attempts
                          << " attempts)";
}

TEST(ShapeSearch, AdiRediscoversNr3) {
  // ROADMAP item 5's required regression: the nr1/nr2/nr3 ordering.
  // All three chain rows are in the candidate set (they are surface
  // directions); the search must pick the cone-parallel nr3 row.
  const AppInstance app = make_adi(16, 24);
  ShapeSearchRequest req = adi_request();
  req.prune = false;  // score every family, including the rect baselines
  PlanCache cache;
  req.cache = &cache;
  // Rectangular baseline rides along.
  for (i64 z : req.chain_factors) req.extra.push_back(adi_rect_h(z, 6, 6));
  const ShapeSearchResult r =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());
  ASSERT_GT(r.evaluated, 0);
  EXPECT_EQ(r.best().chain_dir, (VecI{1, -1, -1}))
      << "winner H =\n"
      << r.best().h.to_string();
  // The paper's fig10 ordering among the evaluated candidates: best
  // nr3-row shape beats best nr1-row, nr2-row and rectangular shapes.
  const auto best_for = [&](const VecI& chain_dir) {
    double best = std::numeric_limits<double>::infinity();
    for (const ShapeScore& sc : r.scores) {
      if (sc.status == ShapeStatus::kEvaluated && sc.chain_dir == chain_dir) {
        best = std::min(best, sc.score_s);
      }
    }
    return best;
  };
  const double nr3 = best_for({1, -1, -1});
  const double nr1 = best_for({1, -1, 0});
  const double nr2 = best_for({1, 0, -1});
  const double rect = best_for({1, 0, 0});  // the extras' chain row
  ASSERT_TRUE(std::isfinite(nr3));
  if (std::isfinite(nr1)) {
    EXPECT_LT(nr3, nr1);
  }
  if (std::isfinite(nr2)) {
    EXPECT_LT(nr3, nr2);
  }
  ASSERT_TRUE(std::isfinite(rect));
  EXPECT_LT(nr3, rect);
}

TEST(ShapeSearch, SurfaceBeatsRectangularOnSor) {
  const AppInstance app = make_sor(24, 48);
  ShapeSearchRequest req;
  req.force_m = 2;
  req.arity = 1;
  req.mesh_extent = 4;
  req.chain_factors = {4, 8, 16};
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {24, 48, 48};
  req.skew = sor_skew_matrix();
  req.scorer = ShapeScorer::kAnalytic;
  req.threads = 1;
  PlanCache cache;
  req.cache = &cache;
  for (i64 z : req.chain_factors) req.extra.push_back(sor_rect_h(6, 18, z));
  const ShapeSearchResult r =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());
  ASSERT_GT(r.evaluated, 0);
  // Winner is non-rectangular...
  EXPECT_NE(r.best().chain_dir, (VecI{0, 0, 1}))
      << "winner H =\n"
      << r.best().h.to_string();
  // ...and strictly beats every evaluated rectangular baseline.
  double best_rect = std::numeric_limits<double>::infinity();
  for (const ShapeScore& sc : r.scores) {
    if (sc.status == ShapeStatus::kEvaluated && sc.origin == "extra") {
      best_rect = std::min(best_rect, sc.score_s);
    }
  }
  ASSERT_TRUE(std::isfinite(best_rect));
  EXPECT_LT(r.best().score_s, best_rect);
}

TEST(ShapeSearch, EveryEvaluatedSurvivorRespectsItsBound) {
  const AppInstance app = make_adi(16, 24);
  ShapeSearchRequest req = adi_request();
  PlanCache cache;
  req.cache = &cache;
  const ShapeSearchResult r =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());
  ASSERT_GT(r.evaluated, 0);
  for (const ShapeScore& sc : r.scores) {
    if (sc.status != ShapeStatus::kEvaluated) continue;
    EXPECT_LE(sc.bound.bytes_lb, sc.analytic.bytes)
        << "H =\n"
        << sc.h.to_string();
    EXPECT_LE(sc.bound.time_lb_s, sc.score_s * (1.0 + 1e-6))
        << "H =\n"
        << sc.h.to_string();
  }
}

// The TSan job's target: many workers, one shared single-flight
// PlanCache, a shared score memo and the shared incumbent — the winner
// must be bitwise-identical to the serial search.
TEST(ShapeSearch, ParallelMatchesSerialBitwise) {
  const AppInstance app = make_adi(12, 18);
  ShapeSearchRequest req;
  req.force_m = 0;
  req.arity = 2;
  req.mesh_scales = {5, 5};
  req.chain_factors = {2, 4};
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {12, 18, 18};
  req.skew = MatI::identity(3);
  req.scorer = ShapeScorer::kAnalytic;
  req.prune = false;  // every candidate scored in both runs

  PlanCache serial_cache;
  req.cache = &serial_cache;
  req.threads = 1;
  const ShapeSearchResult serial =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());

  PlanCache parallel_cache;
  req.cache = &parallel_cache;
  req.threads = 4;
  const ShapeSearchResult parallel =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());

  EXPECT_EQ(serial.best_index, parallel.best_index);
  ASSERT_EQ(serial.scores.size(), parallel.scores.size());
  for (std::size_t i = 0; i < serial.scores.size(); ++i) {
    EXPECT_EQ(serial.scores[i].status, parallel.scores[i].status) << i;
    EXPECT_EQ(serial.scores[i].score_s, parallel.scores[i].score_s) << i;
    EXPECT_EQ(serial.scores[i].plan_id, parallel.scores[i].plan_id) << i;
  }
  // Candidates were key-deduplicated up front, so the shared cache never
  // serves a hit within one search, and every evaluated candidate was
  // lowered exactly once.
  EXPECT_EQ(parallel_cache.stats().hits, 0);
  EXPECT_GE(parallel_cache.stats().misses, parallel.evaluated);
}

TEST(ShapeSearch, PruningNeverChangesTheWinner) {
  const AppInstance app = make_adi(16, 24);
  ShapeSearchRequest req = adi_request();
  PlanCache cache_on;
  req.cache = &cache_on;
  req.prune = true;
  const ShapeSearchResult pruned =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());
  PlanCache cache_off;
  req.cache = &cache_off;
  req.prune = false;
  const ShapeSearchResult full =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());
  EXPECT_EQ(pruned.best_index, full.best_index);
  EXPECT_EQ(pruned.best().score_s, full.best().score_s);
  EXPECT_EQ(pruned.best().plan_id, full.best().plan_id);
  EXPECT_EQ(full.pruned, 0);
  EXPECT_GE(pruned.pruned, 0);
  // Pruned candidates were never lowered: the cache saw fewer plans.
  EXPECT_LE(cache_on.stats().misses, cache_off.stats().misses);
}

TEST(ShapeSearch, EventDesScorerIsSeedInvariant) {
  const AppInstance app = make_adi(12, 18);
  LoweringKnobs knobs;
  knobs.force_m = 0;
  std::shared_ptr<const CompiledPlan> plan =
      CompiledPlan::compile_parallel(app.nest, adi_nr3_h(4, 5, 5), knobs);
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  const double a =
      event_des_makespan(*plan, machine, 2, CommSchedule::kBlocking, 1);
  const double b =
      event_des_makespan(*plan, machine, 2, CommSchedule::kBlocking, 77);
  EXPECT_EQ(a, b);  // bitwise: virtual time, not wall time
  EXPECT_GT(a, 0.0);
  const double overlapped =
      event_des_makespan(*plan, machine, 2, CommSchedule::kOverlapped, 1);
  EXPECT_LE(overlapped, a * (1.0 + 1e-9));
}

TEST(ShapeSearch, ScoreMemoServesRepeatSearches) {
  const AppInstance app = make_adi(12, 18);
  ShapeSearchRequest req;
  req.force_m = 0;
  req.arity = 2;
  req.mesh_scales = {5, 5};
  req.chain_factors = {2, 4};
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {12, 18, 18};
  req.skew = MatI::identity(3);
  req.scorer = ShapeScorer::kAnalytic;
  req.threads = 1;
  PlanCache cache;
  ScoreMemo memo;
  req.cache = &cache;
  req.memo = &memo;
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  const ShapeSearchResult first = autotune_tile_shape(app.nest, req, machine);
  EXPECT_EQ(first.memo_hits, 0);
  const ShapeSearchResult second = autotune_tile_shape(app.nest, req, machine);
  // Every candidate evaluated in run 1 is served from the memo in run 2
  // (serial order: the memo is consulted before bound/prune/lowering).
  EXPECT_EQ(second.memo_hits, first.evaluated);
  EXPECT_EQ(second.best_index, first.best_index);
  EXPECT_EQ(second.best().score_s, first.best().score_s);
  // A different machine must not reuse the memo: machine fields are in
  // the key (the satellite this guards).
  MachineModel other = machine;
  other.bandwidth *= 2.0;
  const ShapeSearchResult third = autotune_tile_shape(app.nest, req, other);
  EXPECT_EQ(third.memo_hits, 0);
}

TEST(ShapeSearch, BudgetTruncatesDeterministically) {
  const AppInstance app = make_adi(12, 18);
  ShapeSearchRequest req;
  req.force_m = 0;
  req.arity = 2;
  req.mesh_scales = {5, 5};
  req.chain_factors = {2, 4};
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {12, 18, 18};
  req.skew = MatI::identity(3);
  req.scorer = ShapeScorer::kAnalytic;
  req.threads = 1;
  PlanCache cache;
  req.cache = &cache;
  req.budget = 4;
  const ShapeSearchResult r =
      autotune_tile_shape(app.nest, req, MachineModel::fast_ethernet_cluster());
  EXPECT_EQ(static_cast<i64>(r.scores.size()), 4);
  EXPECT_GT(r.truncated, 0);
  EXPECT_EQ(r.candidates,
            static_cast<i64>(r.scores.size()) + r.duplicates + r.truncated);
}

}  // namespace
}  // namespace ctile
