// Equivalence of the strength-reduced interior sweep with the legacy
// per-point path, on both executors:
//
//   (a) the fast sweep visits exactly the same (j', j) sequence as
//       for_each_tile_point on every interior tile,
//   (b) ParallelExecutor with the fast sweep produces a bitwise-identical
//       DataSpace (and identical stats) to the legacy path on the paper's
//       SOR / Jacobi / ADI configurations and on random skewed tilings,
//   (c) SequentialTiledExecutor likewise, including non-integral P where
//       the classifier works without a census.
#include <gtest/gtest.h>

#include <optional>

#include "apps/kernels.hpp"
#include "deps/skew.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/parallel_executor.hpp"
#include "runtime/sequential_tiled.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

// Same construction as runtime_random_e2e_test: a random affine kernel
// whose every iteration result is unique, so any reordering or misread
// halo value changes the output detectably.
class RandomKernel final : public Kernel {
 public:
  RandomKernel(Rng& rng, int n, int q) {
    for (int l = 0; l < q; ++l) {
      weights_.push_back(0.1 + 0.8 / (1.0 + static_cast<double>(l)) *
                                   rng.uniform01());
    }
    for (int k = 0; k < n; ++k) {
      point_coeffs_.push_back(0.001 * static_cast<double>(rng.uniform(-5, 5)));
      ic_coeffs_.push_back(0.01 * static_cast<double>(rng.uniform(-9, 9)));
    }
  }

  int arity() const override { return 1; }

  void compute(const VecI& j, const double* dv, double* out) const override {
    double acc = 0.0;
    for (std::size_t l = 0; l < weights_.size(); ++l) acc += weights_[l] * dv[l];
    acc /= static_cast<double>(weights_.size());
    for (std::size_t k = 0; k < point_coeffs_.size(); ++k) {
      acc += point_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

  void initial(const VecI& j, double* out) const override {
    double acc = 1.0;
    for (std::size_t k = 0; k < ic_coeffs_.size(); ++k) {
      acc += ic_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

 private:
  std::vector<double> weights_;
  std::vector<double> point_coeffs_;
  std::vector<double> ic_coeffs_;
};

VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    }
    if (lex_positive(d)) return d;
  }
}

std::optional<TilingTransform> random_tiling(Rng& rng, int n,
                                             const MatI& deps) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 6);
        } else if (rng.chance(0.3)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    TilingTransform t(h);
    if (!t.strides_compatible()) continue;
    MatI dprime = mul(t.Hp(), deps);
    bool fits = true;
    for (int k = 0; k < n && fits; ++k) {
      for (int l = 0; l < dprime.cols(); ++l) {
        if (dprime(k, l) > t.v(k)) fits = false;
      }
    }
    if (!fits) continue;
    return t;
  }
  return std::nullopt;
}

// Parallel executor: fast sweep vs legacy must agree bitwise and in
// stats; both must equal the plain sequential reference.  Returns the
// number of interior tiles so callers can assert the fast path actually
// ran somewhere.
i64 expect_parallel_equivalence(const TiledNest& tiled, const Kernel& kernel,
                                int force_m = -1) {
  const LoopNest& nest = tiled.nest();
  ParallelExecutor exec(tiled, kernel, force_m);
  ParallelRunStats fast_stats;
  DataSpace fast = exec.run(&fast_stats);
  exec.set_use_fast_sweep(false);
  ParallelRunStats legacy_stats;
  DataSpace legacy = exec.run(&legacy_stats);
  EXPECT_EQ(fast_stats.points_computed, legacy_stats.points_computed);
  EXPECT_EQ(fast_stats.messages, legacy_stats.messages);
  EXPECT_EQ(fast_stats.doubles, legacy_stats.doubles);
  EXPECT_EQ(DataSpace::max_abs_diff(fast, legacy, nest.space), 0.0)
      << "fast sweep diverged from legacy\nH =\n"
      << tiled.transform().H().to_string();
  DataSpace seq = run_sequential(nest.space, nest.deps, kernel);
  EXPECT_EQ(DataSpace::max_abs_diff(fast, seq, nest.space), 0.0);
  return exec.classifier().num_interior();
}

i64 expect_sequential_equivalence(const TiledNest& tiled,
                                  const Kernel& kernel) {
  const LoopNest& nest = tiled.nest();
  SequentialTiledExecutor exec(tiled, kernel);
  DataSpace fast = exec.run();
  exec.set_use_fast_sweep(false);
  DataSpace legacy = exec.run();
  EXPECT_EQ(DataSpace::max_abs_diff(fast, legacy, nest.space), 0.0)
      << "sequential fast sweep diverged from legacy\nH =\n"
      << tiled.transform().H().to_string();
  DataSpace seq = run_sequential(nest.space, nest.deps, kernel);
  EXPECT_EQ(DataSpace::max_abs_diff(fast, seq, nest.space), 0.0);
  return exec.classifier().num_interior();
}

TEST(FastSweep, ParallelSorRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  EXPECT_GT(expect_parallel_equivalence(tiled, *app.kernel, 2), 0);
}

TEST(FastSweep, ParallelSorNonRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 9, 6)));
  expect_parallel_equivalence(tiled, *app.kernel, 2);
}

TEST(FastSweep, ParallelJacobiNonRect) {
  AppInstance app = make_jacobi(8, 16, 12);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
  EXPECT_GT(expect_parallel_equivalence(tiled, *app.kernel), 0);
}

TEST(FastSweep, ParallelAdi) {
  AppInstance app = make_adi(8, 8);
  for (const MatQ& h : {adi_nr1_h(2, 4, 4), adi_nr3_h(2, 4, 4)}) {
    AppInstance fresh = make_adi(8, 8);
    TiledNest tiled(fresh.nest, TilingTransform(h));
    expect_parallel_equivalence(tiled, *app.kernel);
  }
}

TEST(FastSweep, SequentialPaperConfigs) {
  {
    AppInstance app = make_sor(12, 24);
    TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
    EXPECT_GT(expect_sequential_equivalence(tiled, *app.kernel), 0);
  }
  {
    AppInstance app = make_jacobi(8, 16, 12);
    TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
    EXPECT_GT(expect_sequential_equivalence(tiled, *app.kernel), 0);
  }
  {
    AppInstance app = make_adi(8, 8);
    TiledNest tiled(app.nest, TilingTransform(adi_nr1_h(2, 4, 4)));
    EXPECT_GT(expect_sequential_equivalence(tiled, *app.kernel), 0);
  }
}

TEST(FastSweep, SequentialNonIntegralP) {
  // Non-integral P is outside the parallel runtime's domain but the
  // sequential executor must still match bitwise, fast vs legacy.
  AppInstance app = make_heat(10, 14);
  TiledNest tiled(app.nest, TilingTransform(heat_nonrect_h(4, 3)));
  expect_sequential_equivalence(tiled, *app.kernel);
}

TEST(FastSweep, InteriorRowSweepVisitsIdenticalSequence) {
  // On every interior tile the fast sweep's (j', j) sequence — rows from
  // the walker, points advanced by inner_stride / row_point_step — must
  // equal for_each_tile_point's exactly, element for element.
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  const TilingTransform& tf = tiled.transform();
  TileClassifier classifier(tiled);
  const int n = tf.n();
  const VecI jstep = row_point_step(tf);
  const TtisRegion full = full_ttis_region(tf);
  i64 interior_seen = 0;
  tiled.tile_space().scan([&](const VecI& js) {
    if (!classifier.interior(js)) return;
    ++interior_seen;
    std::vector<std::pair<VecI, VecI>> general;
    tiled.for_each_tile_point(js, [&](const VecI& jp, const VecI& j) {
      general.emplace_back(jp, j);
    });
    std::vector<std::pair<VecI, VecI>> fast;
    for (TtisRowWalker row(tf, full); row.valid(); row.next()) {
      VecI jp = row.row_start();
      VecI j = tf.point_of(js, jp);
      for (i64 i = 0; i < row.row_points(); ++i) {
        fast.emplace_back(jp, j);
        jp[static_cast<std::size_t>(n - 1)] += row.inner_stride();
        for (int k = 0; k < n; ++k) {
          j[static_cast<std::size_t>(k)] += jstep[static_cast<std::size_t>(k)];
        }
      }
    }
    EXPECT_EQ(fast, general) << "tile (" << js[0] << "," << js[1] << ","
                             << js[2] << ")";
  });
  EXPECT_GT(interior_seen, 0);
}

TEST(FastSweep, RandomSkewedTilingsBitwiseEquivalent) {
  // Property test: on random nests, random skews and random legal
  // integral-P tilings, fast and legacy sweeps agree bitwise in both
  // executors.  Requires the generator to produce at least a few
  // instances whose tile space has interior tiles, so the fast path is
  // genuinely exercised.
  Rng rng(20260806);
  int executed = 0;
  int attempts = 0;
  i64 interior_total = 0;
  while (executed < 15 && attempts < 400) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 3));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) deps(r, c) = d[static_cast<std::size_t>(r)];
    }
    LoopNest nest;
    try {
      VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 3);
        hi[static_cast<std::size_t>(k)] =
            lo[static_cast<std::size_t>(k)] + rng.uniform(8, 16);
      }
      nest = make_rectangular_nest("rand", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;
    }
    // Half the instances get an extra unimodular shear.
    if (n == 2 && rng.chance(0.5)) {
      MatI t = MatI::identity(n);
      t(1, 0) = rng.uniform(0, 2);
      try {
        nest = skew(nest, t);
      } catch (const LegalityError&) {
        continue;
      }
    }
    std::optional<TilingTransform> tiling = random_tiling(rng, n, nest.deps);
    if (!tiling) continue;
    RandomKernel kernel(rng, n, q);
    TiledNest tiled(nest, std::move(*tiling));
    interior_total += expect_parallel_equivalence(tiled, kernel);
    expect_sequential_equivalence(tiled, kernel);
    ++executed;
  }
  EXPECT_GE(executed, 15) << "random generator starved (" << attempts
                          << " attempts)";
  EXPECT_GT(interior_total, 0) << "no interior tiles across any instance: "
                                  "the fast path was never exercised";
}

}  // namespace
}  // namespace ctile
