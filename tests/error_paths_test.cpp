// The validator surface: every structural requirement must fail loudly
// with a LegalityError naming the problem, never silently miscompute.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "runtime/locate.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

TEST(Errors, SingularTilingMatrix) {
  MatQ h{{Rat(1, 2), Rat(1, 2)}, {Rat(1, 2), Rat(1, 2)}};
  EXPECT_THROW(TilingTransform{h}, LegalityError);
}

TEST(Errors, EmptyTilingMatrix) {
  EXPECT_THROW(TilingTransform{MatQ()}, LegalityError);
}

TEST(Errors, IllegalTilingAgainstDeps) {
  // Unskewed SOR has negative dependence components: rectangular tiling
  // must be rejected with a message naming the offending pair.
  AppInstance app = make_sor_original(4, 6);
  try {
    TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 2, 2)));
    FAIL() << "illegal tiling accepted";
  } catch (const LegalityError& e) {
    EXPECT_NE(std::string(e.what()).find("illegal tiling"),
              std::string::npos);
  }
}

TEST(Errors, DimensionMismatch) {
  AppInstance app = make_heat(4, 8);  // depth 2
  EXPECT_THROW(TiledNest(app.nest, TilingTransform(sor_rect_h(2, 2, 2))),
               LegalityError);
}

TEST(Errors, StrideIncompatibleTileSize) {
  // Jacobi non-rect with odd y: c_2 = 2 does not divide v_2 = 5.  An
  // integral P in fact implies stride compatibility (P's k-th column is
  // v_k/c_k times a primitive vector), so the violation surfaces as the
  // non-integral-P rejection; the stride check remains as defense in
  // depth.
  AppInstance app = make_jacobi(4, 10, 10);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 5, 3)));
  EXPECT_FALSE(tiled.transform().strides_compatible());
  EXPECT_FALSE(tiled.transform().p_integral());
  Mapping mapping(tiled, 0);
  try {
    LdsLayout lds(tiled, mapping);
    FAIL() << "incompatible tiling accepted";
  } catch (const LegalityError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("does not divide") != std::string::npos ||
                what.find("must be integral") != std::string::npos)
        << what;
  }
}

TEST(Errors, TileSmallerThanDependence) {
  LoopNest nest = make_rectangular_nest("long", {0, 0}, {15, 15},
                                        MatI{{4, 0}, {0, 1}});
  TiledNest tiled(nest, TilingTransform(MatQ{{Rat(1, 2), Rat(0)},
                                             {Rat(0), Rat(1, 8)}}));
  Mapping mapping(tiled, 1);
  try {
    LdsLayout lds(tiled, mapping);
    FAIL() << "undersized tile accepted";
  } catch (const LegalityError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds tile extent"),
              std::string::npos);
  }
}

TEST(Errors, NonIntegralPRejectedByRuntime) {
  // H = [[1/2, 0], [1/3, 2/3]] has P = [[2, 0], [-1, 3/2]].
  LoopNest nest = make_rectangular_nest("p", {0, 0}, {7, 7},
                                        MatI{{1, 0}, {0, 1}});
  TilingTransform t(MatQ{{Rat(1, 2), Rat(0)}, {Rat(1, 3), Rat(2, 3)}});
  ASSERT_FALSE(t.p_integral());
  // Legality holds (H d >= 0), so the TiledNest is fine...
  TiledNest tiled(nest, std::move(t));
  Mapping mapping(tiled, 0);
  // ...but the runtime's LDS refuses it.
  EXPECT_THROW(LdsLayout(tiled, mapping), LegalityError);
}

TEST(Errors, NegativeDepthNest) {
  LoopNest nest;
  nest.name = "bad";
  nest.depth = 0;
  EXPECT_THROW(nest.validate(), LegalityError);
}

TEST(Errors, RationalEdgeCases) {
  EXPECT_THROW(Rat(1, 0), Error);
  EXPECT_THROW(Rat(3, 7).as_int(), Error);
  EXPECT_THROW(Rat(0).inv(), Error);
}

TEST(Errors, LocOutsideSpaceAsserts) {
  AppInstance app = make_adi(3, 4);
  TiledNest tiled(app.nest, TilingTransform(adi_rect_h(2, 2, 2)));
  Mapping mapping(tiled, 0);
  LdsLayout lds(tiled, mapping);
  Locator locator(tiled, mapping, lds);
  // loc() on an out-of-space point is a programming error -> death in
  // all build types (CTILE_ASSERT is always on).
  EXPECT_DEATH(locator.loc({99, 99, 99}), "outside the iteration space");
}

}  // namespace
}  // namespace ctile
