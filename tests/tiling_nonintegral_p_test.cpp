// Non-integral P: tiles are not all translates of one lattice tile, yet
// the shifted-lattice tile walk must still partition the space exactly.
#include <gtest/gtest.h>

#include <set>

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "support/rng.hpp"
#include "tiling/census.hpp"
#include "tiling/tile_space.hpp"

namespace ctile {
namespace {

LoopNest unit_nest(i64 a, i64 b) {
  return make_rectangular_nest("u", {0, 0}, {a, b}, MatI{{1, 0}, {0, 1}});
}

TEST(NonIntegralP, TileWalkPartitionsSpace) {
  // H = [[1/2, 0], [1/3, 2/3]]: P = [[2, 0], [-1, 3/2]] non-integral.
  LoopNest nest = unit_nest(9, 9);
  TilingTransform t(MatQ{{Rat(1, 2), Rat(0)}, {Rat(1, 3), Rat(2, 3)}});
  ASSERT_FALSE(t.p_integral());
  TiledNest tiled(nest, std::move(t));
  std::set<VecI> covered;
  tiled.tile_space().scan([&](const VecI& js) {
    tiled.for_each_tile_point(js, [&](const VecI& jp, const VecI& j) {
      EXPECT_TRUE(covered.insert(j).second) << "duplicate point";
      EXPECT_EQ(tiled.transform().tile_of(j), js);
      // jp really is this point's TTIS coordinate.
      EXPECT_EQ(tiled.transform().ttis_of(j, js), jp);
    });
  });
  EXPECT_EQ(static_cast<i64>(covered.size()), nest.space.count_points());
}

TEST(NonIntegralP, TileSizesVaryAcrossTiles) {
  // The hallmark of non-integral P: different tiles own different
  // numbers of points (integral P forces them all equal).
  LoopNest nest = unit_nest(11, 11);
  TiledNest tiled(nest,
                  TilingTransform(MatQ{{Rat(1, 2), Rat(0)},
                                       {Rat(1, 3), Rat(2, 3)}}));
  std::set<i64> sizes;
  tiled.tile_space().scan([&](const VecI& js) {
    i64 c = tiled.tile_point_count(js);
    if (c > 0) sizes.insert(c);
  });
  EXPECT_GT(sizes.size(), 1u);
}

TEST(NonIntegralP, CensusAgreesWithTileWalk) {
  LoopNest nest = unit_nest(8, 10);
  TiledNest tiled(nest,
                  TilingTransform(MatQ{{Rat(1, 2), Rat(0)},
                                       {Rat(1, 3), Rat(2, 3)}}));
  TileCensus census(tiled);
  EXPECT_EQ(census.total(), nest.space.count_points());
  tiled.tile_space().scan([&](const VecI& js) {
    EXPECT_EQ(census.count(js), tiled.tile_point_count(js));
  });
}

TEST(NonIntegralP, RandomizedPartition) {
  Rng rng(999);
  int tested = 0;
  while (tested < 10) {
    MatQ h(2, 2);
    for (int r = 0; r < 2; ++r) {
      i64 s = rng.uniform(2, 4);
      for (int c = 0; c < 2; ++c) h(r, c) = Rat(rng.uniform(-2, 2), s);
    }
    if (det(h).is_zero()) continue;
    TilingTransform t(h);
    bool legal = true;
    // Unit deps: need H >= 0 entries columnwise? H d >= 0 for d in
    // {e1, e2} means every column of H is componentwise non-negative.
    for (int r = 0; r < 2 && legal; ++r) {
      for (int c = 0; c < 2; ++c) {
        if (h(r, c).is_negative()) legal = false;
      }
    }
    if (!legal) continue;
    ++tested;
    LoopNest nest = unit_nest(7, 7);
    TiledNest tiled(nest, TilingTransform(h));
    std::set<VecI> covered;
    tiled.tile_space().scan([&](const VecI& js) {
      tiled.for_each_tile_point(js, [&](const VecI&, const VecI& j) {
        EXPECT_TRUE(covered.insert(j).second);
      });
    });
    EXPECT_EQ(static_cast<i64>(covered.size()), nest.space.count_points())
        << "H =\n"
        << h.to_string();
  }
}

}  // namespace
}  // namespace ctile
