// Overflow regression for the checked LDS row addressing (satellite of
// the V6-V8 verifier work): this translation unit is compiled with
// CTILE_CHECKED_LDS, so LdsLayout::row_slot / slot_at form their affine
// slot arithmetic through support/checked_int.hpp.  A coefficient large
// enough to wrap 64-bit arithmetic must surface as a loud OverflowError
// — not as a silently wrapped slot that an unchecked build would cast
// to a huge std::size_t at the caller's multiply by arity.
#ifndef CTILE_CHECKED_LDS
#error "this test must be compiled with CTILE_CHECKED_LDS"
#endif

#include <gtest/gtest.h>

#include <limits>

#include "apps/kernels.hpp"
#include "runtime/compiled_plan.hpp"
#include "runtime/lds.hpp"
#include "support/error.hpp"

namespace ctile {
namespace {

/// A real SOR lowering's canonical LDS layout (the paper's Fig. 6
/// configuration): the same layout the executors address through.
std::shared_ptr<const CompiledPlan> lower_sor() {
  AppInstance app = make_sor(6, 9);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 3, 4)));
  LoweringKnobs knobs;
  knobs.force_m = 2;
  return CompiledPlan::compile_parallel(std::move(tiled), knobs);
}

TEST(CheckedLdsOverflow, InRangeRowSlotMatchesPlainArithmetic) {
  const std::shared_ptr<const CompiledPlan> plan = lower_sor();
  // A genuine row of a lowered chain window: checked addressing must
  // agree with the unchecked affine form everywhere the sweep actually
  // goes.  sstep comes from the SAME per-window layout the row bases
  // were computed against (exactly as the executor's sweeps do).
  const i64 window_len = plan->window_layouts().front().first;
  const CompiledPlan::RankLocal& rl = plan->local_for(window_len);
  const i64 sstep = rl.layout.stride(rl.layout.n() - 1);
  ASSERT_FALSE(rl.rows.empty());
  const CompiledPlan::SweepRow& row = rl.rows.front();
  for (i64 i = 0; i < row.count; ++i) {
    EXPECT_EQ(rl.layout.row_slot(row.base0, 0, i, sstep),
              row.base0 + i * sstep);
  }
}

TEST(CheckedLdsOverflow, HugeRowIndexThrowsInsteadOfWrapping) {
  const std::shared_ptr<const CompiledPlan> plan = lower_sor();
  const LdsLayout& lds = plan->lds();
  // i * sstep wraps 64-bit arithmetic: the checked build must throw
  // OverflowError from the multiply itself, never hand back a wrapped
  // (possibly in-range!) slot or fall through to the bounds assert.
  const i64 sstep = std::numeric_limits<i64>::max() / 2 + 2;
  EXPECT_THROW(lds.row_slot(0, 0, 2, sstep), OverflowError);
}

TEST(CheckedLdsOverflow, HugeChainPositionThrowsInsteadOfWrapping) {
  const std::shared_ptr<const CompiledPlan> plan = lower_sor();
  const LdsLayout& lds = plan->lds();
  ASSERT_GT(lds.chain_step(), 0);
  const i64 huge = std::numeric_limits<i64>::max() / lds.chain_step() + 1;
  EXPECT_THROW(lds.row_slot(0, huge, 0, lds.stride(lds.n() - 1)),
               OverflowError);
}

TEST(CheckedLdsOverflow, SlotAtOverflowThrows) {
  const std::shared_ptr<const CompiledPlan> plan = lower_sor();
  const LdsLayout& lds = plan->lds();
  EXPECT_THROW(lds.slot_at(std::numeric_limits<i64>::max(), 1),
               OverflowError);
}

}  // namespace
}  // namespace ctile
