// End-to-end correctness of the data-parallel execution: for every
// app/tiling combination, the multi-rank mpisim run (with real
// pack/send/recv/unpack) must produce numerically identical results to
// the plain sequential loop nest.  This is the strongest statement that
// the computation distribution, LDS addressing and communication sets of
// \S3 are implemented correctly.
#include "runtime/parallel_executor.hpp"

#include <gtest/gtest.h>

#include "apps/kernels.hpp"

namespace ctile {
namespace {

void expect_parallel_equals_sequential(const AppInstance& app, MatQ h,
                                       int force_m = -1,
                                       ParallelRunStats* stats = nullptr) {
  TiledNest tiled(app.nest, TilingTransform(std::move(h)));
  DataSpace seq = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  ParallelExecutor exec(tiled, *app.kernel, force_m);
  ParallelRunStats local_stats;
  DataSpace par = exec.run(&local_stats);
  EXPECT_EQ(local_stats.points_computed, app.nest.space.count_points());
  double diff = DataSpace::max_abs_diff(seq, par, app.nest.space);
  EXPECT_EQ(diff, 0.0) << "parallel result deviates from sequential ("
                       << app.nest.name << ")";
  if (stats != nullptr) *stats = local_stats;
}

TEST(Executor, Rect2DUnitDeps) {
  // Minimal smoke: 2-D unit-stencil nest, 3x3 tiles.
  MatI deps{{1, 0}, {0, 1}};
  AppInstance app;
  app.nest = make_rectangular_nest("mini", {0, 0}, {8, 8}, deps);
  struct Sum2D final : Kernel {
    int arity() const override { return 1; }
    void compute(const VecI& j, const double* dv,
                 double* out) const override {
      out[0] = 0.5 * dv[0] + 0.25 * dv[1] +
               0.01 * static_cast<double>(j[0] + 2 * j[1]);
    }
    void initial(const VecI& j, double* out) const override {
      out[0] = static_cast<double>(j[0]) - 0.5 * static_cast<double>(j[1]);
    }
  };
  app.kernel = std::make_shared<Sum2D>();
  ParallelRunStats stats;
  expect_parallel_equals_sequential(
      app, MatQ{{Rat(1, 3), Rat(0)}, {Rat(0), Rat(1, 3)}}, -1, &stats);
  EXPECT_GT(stats.messages, 0);
}

TEST(Executor, SorRectangular) {
  expect_parallel_equals_sequential(make_sor(5, 7), sor_rect_h(2, 3, 4));
}

TEST(Executor, SorNonRectangular) {
  ParallelRunStats stats;
  expect_parallel_equals_sequential(make_sor(5, 7), sor_nonrect_h(2, 3, 4),
                                    -1, &stats);
  EXPECT_GT(stats.messages, 0);
}

TEST(Executor, SorNonRectangularForcedChainDim) {
  // The paper maps SOR along dimension 3 (index 2).
  expect_parallel_equals_sequential(make_sor(5, 7), sor_nonrect_h(2, 3, 4),
                                    2);
}

TEST(Executor, SorRelaxationFactor) {
  expect_parallel_equals_sequential(make_sor(4, 6, 1.5),
                                    sor_nonrect_h(2, 3, 3));
}

TEST(Executor, JacobiRectangular) {
  expect_parallel_equals_sequential(make_jacobi(4, 6, 6),
                                    jacobi_rect_h(2, 3, 3));
}

TEST(Executor, JacobiNonRectangularStrided) {
  // The strided LDS case (c_2 = 2, a_21 = 1): the acid test for the
  // condensation arithmetic and pack/unpack on a non-dense lattice.
  ParallelRunStats stats;
  expect_parallel_equals_sequential(make_jacobi(4, 8, 6),
                                    jacobi_nonrect_h(2, 4, 3), 0, &stats);
  EXPECT_GT(stats.messages, 0);
}

TEST(Executor, JacobiNonRectangularAutoMapping) {
  expect_parallel_equals_sequential(make_jacobi(6, 8, 8),
                                    jacobi_nonrect_h(2, 4, 4));
}

TEST(Executor, AdiRectangularArity2) {
  expect_parallel_equals_sequential(make_adi(4, 6), adi_rect_h(2, 2, 2));
}

TEST(Executor, AdiNr1) {
  expect_parallel_equals_sequential(make_adi(4, 6), adi_nr1_h(2, 2, 2), 0);
}

TEST(Executor, AdiNr2) {
  expect_parallel_equals_sequential(make_adi(4, 6), adi_nr2_h(2, 2, 2), 0);
}

TEST(Executor, AdiNr3ConeParallel) {
  ParallelRunStats stats;
  expect_parallel_equals_sequential(make_adi(5, 6), adi_nr3_h(2, 3, 3), 0,
                                    &stats);
  EXPECT_GT(stats.messages, 0);
}

TEST(Executor, SingleProcessorDegenerate) {
  // Tile as large as the space in the mesh dims: one processor, chain
  // along m, zero messages.
  AppInstance app = make_adi(4, 4);
  TiledNest tiled(app.nest, TilingTransform(adi_rect_h(2, 5, 5)));
  ParallelExecutor exec(tiled, *app.kernel, 0);
  EXPECT_EQ(exec.mapping().num_procs(), 1);
  ParallelRunStats stats;
  DataSpace par = exec.run(&stats);
  EXPECT_EQ(stats.messages, 0);
  DataSpace seq = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  EXPECT_EQ(DataSpace::max_abs_diff(seq, par, app.nest.space), 0.0);
}

TEST(Executor, NonDividingTileSizes) {
  // Tile sizes that do not divide the space extents: boundary tiles are
  // clipped, shadow tiles at the border may be empty.
  expect_parallel_equals_sequential(make_sor(5, 8), sor_nonrect_h(3, 5, 4));
  expect_parallel_equals_sequential(make_adi(5, 7), adi_nr3_h(3, 3, 4), 0);
}

TEST(Executor, TinyTiles) {
  // 1x1x1 tiles: maximal communication, every dependence crosses tiles.
  expect_parallel_equals_sequential(make_adi(3, 4), adi_rect_h(1, 2, 2), 0);
}

TEST(Executor, CommunicationVolumeMatchesPlan) {
  AppInstance app = make_sor(5, 7);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(2, 3, 4)));
  ParallelExecutor exec(tiled, *app.kernel);
  ParallelRunStats stats;
  exec.run(&stats);
  // Every message's payload is its direction's pack-region lattice count
  // (arity 1); total doubles must be divisible accordingly.
  i64 min_points = std::numeric_limits<i64>::max();
  for (std::size_t d = 0; d < exec.plan().directions().size(); ++d) {
    min_points =
        std::min(min_points, exec.plan().message_points(static_cast<int>(d)));
  }
  EXPECT_GE(stats.doubles, stats.messages * min_points);
}

}  // namespace
}  // namespace ctile
