// Integration test: the generated programs must *compile and run*, and
// their checksums must match the library's reference executor exactly.
// This is the end-to-end statement that the emitted loop bounds, strides,
// LDS maps and communication tables are correct C++ — the paper's tool
// demonstrated on its own output.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "apps/kernels.hpp"
#include "codegen/parallel_gen.hpp"
#include "runtime/data_space.hpp"
#include "codegen/sequential_gen.hpp"

namespace ctile::codegen {
namespace {

// Compile `source` with the system compiler and run it, returning stdout.
// `link_mpisim` adds the repo's include path and mpisim objects.
std::string compile_and_run(const std::string& source, const std::string& tag,
                            bool link_mpisim) {
  const std::string dir = ::testing::TempDir();
  const std::string cpp = dir + "/gen_" + tag + ".cpp";
  const std::string bin = dir + "/gen_" + tag;
  {
    std::ofstream out(cpp);
    out << source;
  }
  std::string cmd = "c++ -std=c++20 -O1 -o " + bin + " " + cpp;
  if (link_mpisim) {
    cmd += " -I" CTILE_SOURCE_DIR "/src " CTILE_SOURCE_DIR
           "/src/mpisim/mpisim.cpp " CTILE_SOURCE_DIR
           "/src/mpisim/event_scheduler.cpp " CTILE_SOURCE_DIR
           "/src/support/error.cpp -lpthread";
  }
  cmd += " 2> " + dir + "/gen_" + tag + ".err";
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::ifstream err(dir + "/gen_" + tag + ".err");
    std::stringstream ss;
    ss << err.rdbuf();
    ADD_FAILURE() << "generated code failed to compile:\n" << ss.str();
    return "";
  }
  std::string run = bin + " > " + dir + "/gen_" + tag + ".out";
  rc = std::system(run.c_str());
  EXPECT_EQ(rc, 0) << "generated program crashed";
  std::ifstream out_file(dir + "/gen_" + tag + ".out");
  std::stringstream ss;
  ss << out_file.rdbuf();
  return ss.str();
}

double parse_checksum(const std::string& output) {
  double v = 0.0;
  EXPECT_EQ(std::sscanf(output.c_str(), "checksum %lf", &v), 1)
      << "output was: " << output;
  return v;
}

double expected_checksum(const AppInstance& app) {
  DataSpace ds = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  return reference_checksum(
      app.nest, [&](const VecI& j) { return ds.at(j); },
      app.kernel->arity());
}

TEST(CodegenCompile, SequentialSorNonRect) {
  AppInstance app = make_sor(5, 7);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(2, 3, 4)));
  std::string code = generate_sequential_tiled(tiled, sor_spec());
  std::string out = compile_and_run(code, "seq_sor", false);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, SequentialJacobiStrided) {
  AppInstance app = make_jacobi(4, 8, 6);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
  std::string code = generate_sequential_tiled(tiled, jacobi_spec());
  std::string out = compile_and_run(code, "seq_jacobi", false);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, SequentialAdi) {
  AppInstance app = make_adi(4, 6);
  TiledNest tiled(app.nest, TilingTransform(adi_nr3_h(2, 3, 3)));
  std::string code = generate_sequential_tiled(tiled, adi_spec());
  std::string out = compile_and_run(code, "seq_adi", false);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, ParallelSorNonRect) {
  AppInstance app = make_sor(5, 7);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(2, 3, 4)));
  std::string code = generate_parallel_mpi(tiled, sor_spec());
  std::string out = compile_and_run(code, "par_sor", true);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, ParallelJacobiStrided) {
  AppInstance app = make_jacobi(4, 8, 6);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 4, 3)));
  ParallelGenOptions opt;
  opt.force_m = 0;
  std::string code = generate_parallel_mpi(tiled, jacobi_spec(), opt);
  std::string out = compile_and_run(code, "par_jacobi", true);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, ParallelAdiArity2) {
  AppInstance app = make_adi(4, 6);
  TiledNest tiled(app.nest, TilingTransform(adi_nr3_h(2, 3, 3)));
  ParallelGenOptions opt;
  opt.force_m = 0;
  std::string code = generate_parallel_mpi(tiled, adi_spec(), opt);
  std::string out = compile_and_run(code, "par_adi", true);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, Parallel2DHeat) {
  AppInstance app = make_heat(6, 20);
  TiledNest tiled(app.nest, TilingTransform(heat_nonrect_h(2, 4)));
  ParallelGenOptions opt;
  opt.force_m = 1;
  std::string code = generate_parallel_mpi(tiled, heat_spec(), opt);
  std::string out = compile_and_run(code, "par_heat", true);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, Parallel4DSynthetic) {
  AppInstance app = make_syn4d(4, 4, 4, 4);
  TiledNest tiled(app.nest, TilingTransform(syn4d_nonrect_h(2, 2, 2, 2)));
  ParallelGenOptions opt;
  opt.force_m = 0;
  std::string code = generate_parallel_mpi(tiled, syn4d_spec(), opt);
  std::string out = compile_and_run(code, "par_syn4d", true);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, Sequential2DHeat) {
  AppInstance app = make_heat(7, 23);
  TiledNest tiled(app.nest, TilingTransform(heat_nonrect_h(3, 5)));
  std::string code = generate_sequential_tiled(tiled, heat_spec());
  std::string out = compile_and_run(code, "seq_heat", false);
  if (out.empty()) return;
  EXPECT_EQ(parse_checksum(out), expected_checksum(app));
}

TEST(CodegenCompile, MpiFlavorCompilesWithStubMpi) {
  // No MPI toolchain is installed, so verify the real-MPI flavor is
  // syntactically valid C++ by compiling it against a minimal mpi.h stub
  // (single-rank semantics are NOT exercised; this is a compile check).
  AppInstance app = make_sor(5, 7);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(2, 3, 4)));
  ParallelGenOptions opt;
  opt.flavor = CommFlavor::kMpi;
  std::string code = generate_parallel_mpi(tiled, sor_spec(), opt);

  const std::string dir = ::testing::TempDir();
  {
    std::ofstream stub(dir + "/mpi.h");
    stub << R"(#pragma once
// Minimal MPI stub: signatures only, for compile-checking generated code.
using MPI_Comm = int;
using MPI_Datatype = int;
using MPI_Status = int;
inline MPI_Comm MPI_COMM_WORLD = 0;
inline MPI_Datatype MPI_DOUBLE = 0;
inline MPI_Status* MPI_STATUS_IGNORE = nullptr;
inline int MPI_Init(int*, char***) { return 0; }
inline int MPI_Finalize() { return 0; }
inline int MPI_Comm_rank(MPI_Comm, int* r) { *r = 0; return 0; }
inline int MPI_Comm_size(MPI_Comm, int* s) { *s = 1; return 0; }
inline int MPI_Abort(MPI_Comm, int code) { __builtin_exit(code); }
inline int MPI_Send(const void*, int, MPI_Datatype, int, int, MPI_Comm) {
  return 0;
}
inline int MPI_Recv(void*, int, MPI_Datatype, int, int, MPI_Comm,
                    MPI_Status*) {
  return 0;
}
)";
  }
  const std::string cpp = dir + "/gen_mpi_flavor.cpp";
  {
    std::ofstream out_file(cpp);
    out_file << code;
  }
  std::string cmd = "c++ -std=c++20 -fsyntax-only -I" + dir + " " + cpp +
                    " 2> " + dir + "/gen_mpi_flavor.err";
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::ifstream err(dir + "/gen_mpi_flavor.err");
    std::stringstream ss;
    ss << err.rdbuf();
    ADD_FAILURE() << "MPI-flavor code failed to compile:\n" << ss.str();
  }
}

}  // namespace
}  // namespace ctile::codegen
