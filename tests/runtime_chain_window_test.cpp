// Per-processor chain windows (\S3.1: "|t| denotes the number of tiles
// assigned to the particular processor") and exact census-based validity.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "runtime/lds.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

struct Fixture {
  TiledNest tiled;
  TileCensus census;
  Mapping mapping;

  Fixture(AppInstance app, MatQ h, int force_m)
      : tiled(app.nest, TilingTransform(std::move(h))),
        census(tiled),
        mapping(tiled, force_m, &census) {}
};

TEST(ChainWindow, CoversExactlyTheValidTiles) {
  Fixture f(make_sor(6, 9), sor_nonrect_h(3, 4, 5), 2);
  for (int rank = 0; rank < f.mapping.num_procs(); ++rank) {
    const VecI pid = f.mapping.pid_of(rank);
    IntRange w = f.mapping.chain_window(pid);
    for (i64 t = 0; t < f.mapping.chain_length(); ++t) {
      bool v = f.mapping.valid(f.mapping.tile_at(pid, t));
      bool in_window = !w.empty() && t >= w.lo && t <= w.hi;
      if (v) {
        EXPECT_TRUE(in_window) << "rank " << rank << " t " << t;
      }
      if (!in_window) {
        EXPECT_FALSE(v);
      }
    }
  }
}

TEST(ChainWindow, ContiguousForConvexSpaces) {
  // Along one chain column of a convex space the nonempty tiles form one
  // contiguous run (convexity of the column's preimage).
  for (auto cfg : {std::make_pair(make_sor(8, 12), sor_nonrect_h(4, 5, 6)),
                   std::make_pair(make_adi(8, 8), adi_nr3_h(2, 2, 2))}) {
    Fixture f(cfg.first, cfg.second, cfg.first.nest.name == "adi" ? 0 : 2);
    for (int rank = 0; rank < f.mapping.num_procs(); ++rank) {
      const VecI pid = f.mapping.pid_of(rank);
      IntRange w = f.mapping.chain_window(pid);
      if (w.empty()) continue;
      for (i64 t = w.lo; t <= w.hi; ++t) {
        EXPECT_TRUE(f.mapping.valid(f.mapping.tile_at(pid, t)))
            << "gap in chain window at t=" << t;
      }
    }
  }
}

TEST(ChainWindow, ExactValidityRejectsShadowGhosts) {
  // The ADI cone tiling's shadow is wider in the chain dimension than
  // the set of nonempty tiles: census validity must be strictly tighter
  // somewhere (or equal when the shadow happens to be exact).
  AppInstance app = make_adi(8, 8);
  TiledNest tiled(app.nest, TilingTransform(adi_nr3_h(2, 2, 2)));
  TileCensus census(tiled);
  Mapping with_census(tiled, 0, &census);
  Mapping shadow_only(tiled, 0);
  i64 shadow_valid = 0, exact_valid = 0;
  shadow_only.valid({0, 0, 0});  // touch
  for (i64 a = shadow_only.tile_lo()[0]; a <= shadow_only.tile_hi()[0]; ++a) {
    for (i64 b = shadow_only.tile_lo()[1]; b <= shadow_only.tile_hi()[1];
         ++b) {
      for (i64 c = shadow_only.tile_lo()[2]; c <= shadow_only.tile_hi()[2];
           ++c) {
        if (shadow_only.valid({a, b, c})) ++shadow_valid;
        if (with_census.valid({a, b, c})) ++exact_valid;
        // Exact validity implies shadow validity.
        if (with_census.valid({a, b, c})) {
          EXPECT_TRUE(shadow_only.valid({a, b, c}));
        }
      }
    }
  }
  EXPECT_LE(exact_valid, shadow_valid);
  EXPECT_GT(exact_valid, 0);
}

TEST(ChainWindow, LdsSizeScalesWithWindow) {
  Fixture f(make_sor(6, 9), sor_nonrect_h(3, 4, 5), 2);
  const LdsLayout canonical(f.tiled, f.mapping);
  for (int rank = 0; rank < f.mapping.num_procs(); ++rank) {
    IntRange w = f.mapping.chain_window(f.mapping.pid_of(rank));
    if (w.empty()) continue;
    const LdsLayout local(f.tiled, f.mapping, w.count());
    EXPECT_LE(local.size(), canonical.size());
    EXPECT_EQ(local.chain_length(), w.count());
    // Geometry other than the chain extent is unchanged.
    for (int k = 0; k < 3; ++k) {
      if (k == f.mapping.m()) continue;
      EXPECT_EQ(local.extent(k), canonical.extent(k));
      EXPECT_EQ(local.off(k), canonical.off(k));
    }
  }
}

TEST(ChainWindow, MemorySavingsOnSkewedTilings) {
  // For the cone-parallel ADI tiling, per-processor windows are much
  // shorter than the global chain: total allocated memory must be far
  // below nprocs * canonical size.
  AppInstance app = make_adi(10, 12);
  TiledNest tiled(app.nest, TilingTransform(adi_nr3_h(2, 3, 3)));
  TileCensus census(tiled);
  Mapping mapping(tiled, 0, &census);
  const LdsLayout canonical(tiled, mapping);
  i64 total_local = 0;
  for (int rank = 0; rank < mapping.num_procs(); ++rank) {
    IntRange w = mapping.chain_window(mapping.pid_of(rank));
    if (w.empty()) continue;
    total_local += LdsLayout(tiled, mapping, w.count()).size();
  }
  EXPECT_LT(total_local,
            static_cast<i64>(mapping.num_procs()) * canonical.size());
}

}  // namespace
}  // namespace ctile
