// The communication slot tables (CommSlotTable) must reproduce, slot for
// slot, exactly what the \S3.2 lattice-enumeration path computes: for
// every direction's pack region and every tile dependence's shifted
// unpack region, the precomputed base + t_loc * chain_step sequence must
// equal the per-point LdsLayout::map/linear walk at every chain position.
//
// Configurations cover the paper's Figure 5-10 evaluation set (SOR,
// Jacobi, ADI; rectangular and all non-rectangular tilings) at reduced
// problem sizes, plus the executor-level equivalence: slot-table and
// lattice-enumeration runs must produce identical data spaces and
// identical message counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "apps/kernels.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

struct Fixture {
  TiledNest tiled;
  Mapping mapping;
  LdsLayout lds;
  CommPlan plan;

  Fixture(AppInstance app, MatQ h, int force_m = -1)
      : tiled(app.nest, TilingTransform(std::move(h))),
        mapping(tiled, force_m),
        lds(tiled, mapping),
        plan(tiled, mapping, lds) {}
};

// Every (pack, unpack) table entry equals the enumeration path, for
// every distinct chain-window length of the mapping and several chain
// positions.
void expect_tables_match_enumeration(const Fixture& f) {
  const TilingTransform& tf = f.tiled.transform();
  const int n = f.lds.n();
  std::vector<i64> window_lengths;
  for (int rank = 0; rank < f.mapping.num_procs(); ++rank) {
    const IntRange w = f.mapping.chain_window(f.mapping.pid_of(rank));
    if (w.empty()) continue;
    if (std::find(window_lengths.begin(), window_lengths.end(), w.count()) ==
        window_lengths.end()) {
      window_lengths.push_back(w.count());
    }
  }
  ASSERT_FALSE(window_lengths.empty());

  for (i64 len : window_lengths) {
    const LdsLayout local(f.tiled, f.mapping, len);
    const CommSlotTable table(f.plan, tf, local);
    EXPECT_EQ(table.chain_step(), local.chain_step());

    // Pack tables: one per direction, in lattice order, at each t_loc.
    const auto& dirs = f.plan.directions();
    for (std::size_t d = 0; d < dirs.size(); ++d) {
      const std::vector<i64>& slots = table.pack_slots(static_cast<int>(d));
      ASSERT_EQ(static_cast<i64>(slots.size()),
                f.plan.message_points(static_cast<int>(d)));
      for (i64 t_loc = 0; t_loc < len; ++t_loc) {
        std::size_t i = 0;
        for_each_lattice_point(tf, dirs[d].pack, [&](const VecI& jp) {
          ASSERT_EQ(slots[i] + t_loc * table.chain_step(),
                    local.slot(jp, t_loc))
              << "pack dir " << d << " point " << i << " t_loc " << t_loc
              << " window " << len;
          ++i;
        });
        ASSERT_EQ(i, slots.size());
      }
    }

    // Unpack tables: one per messaging tile dependence, shift applied.
    const auto& deps = f.plan.tile_deps();
    for (std::size_t di = 0; di < deps.size(); ++di) {
      const TileDep& dep = deps[di];
      if (dep.dir < 0) {
        EXPECT_TRUE(table.unpack_slots(di).empty());
        continue;
      }
      const std::vector<i64>& slots = table.unpack_slots(di);
      ASSERT_EQ(static_cast<i64>(slots.size()),
                f.plan.message_points(dep.dir));
      const TtisRegion region = f.plan.unpack_region(dep);
      const VecI shift = f.plan.unpack_shift(dep);
      // Unpacks happen at receiver chain positions where the sender's
      // message lands; sweep every t_loc where the shifted coordinates
      // stay in range (the same positions the legacy path visits).
      for (i64 t_loc = 0; t_loc < len; ++t_loc) {
        std::size_t i = 0;
        for_each_lattice_point(tf, region, [&](const VecI& jp) {
          VecI jpp = local.map(jp, t_loc);
          bool in_range = true;
          for (int k = 0; k < n; ++k) {
            jpp[static_cast<std::size_t>(k)] -=
                shift[static_cast<std::size_t>(k)];
            if (jpp[static_cast<std::size_t>(k)] < 0 ||
                jpp[static_cast<std::size_t>(k)] >= local.extent(k)) {
              in_range = false;
            }
          }
          if (in_range) {
            ASSERT_EQ(slots[i] + t_loc * table.chain_step(),
                      local.linear(jpp))
                << "unpack dep " << di << " point " << i << " t_loc "
                << t_loc << " window " << len;
          }
          ++i;
        });
        ASSERT_EQ(i, slots.size());
      }
    }
  }
}

// Slot-table and lattice-enumeration executors must agree exactly.
void expect_paths_identical(AppInstance app, MatQ h, int force_m = -1) {
  TiledNest tiled(app.nest, TilingTransform(std::move(h)));
  ParallelExecutor exec(tiled, *app.kernel, force_m);

  ParallelRunStats fast_stats;
  exec.set_use_slot_tables(true);
  DataSpace fast = exec.run(&fast_stats);

  ParallelRunStats ref_stats;
  exec.set_use_slot_tables(false);
  DataSpace ref = exec.run(&ref_stats);

  EXPECT_EQ(fast_stats.messages, ref_stats.messages);
  EXPECT_EQ(fast_stats.doubles, ref_stats.doubles);
  EXPECT_EQ(fast_stats.points_computed, ref_stats.points_computed);
  EXPECT_EQ(DataSpace::max_abs_diff(fast, ref, app.nest.space), 0.0);
}

TEST(CommSlots, SorRectTablesMatch) {
  expect_tables_match_enumeration({make_sor(8, 12), sor_rect_h(4, 5, 6)});
}

TEST(CommSlots, SorNonRectTablesMatch) {
  expect_tables_match_enumeration({make_sor(8, 12), sor_nonrect_h(4, 5, 6)});
}

TEST(CommSlots, SorNonRectForcedMTablesMatch) {
  expect_tables_match_enumeration(
      {make_sor(8, 12), sor_nonrect_h(4, 5, 6), 2});
}

TEST(CommSlots, JacobiRectTablesMatch) {
  expect_tables_match_enumeration(
      {make_jacobi(4, 6, 6), jacobi_rect_h(2, 3, 3)});
}

TEST(CommSlots, JacobiNonRectTablesMatch) {
  // Non-unit stride c_2 = 2 exercises the congruence-lattice condensation
  // inside the table builder.
  expect_tables_match_enumeration(
      {make_jacobi(4, 8, 6), jacobi_nonrect_h(2, 4, 3)});
}

TEST(CommSlots, AdiRectTablesMatch) {
  expect_tables_match_enumeration({make_adi(4, 6), adi_rect_h(2, 2, 2)});
}

TEST(CommSlots, AdiNonRectTablesMatch) {
  expect_tables_match_enumeration({make_adi(8, 8), adi_nr1_h(2, 2, 2)});
  expect_tables_match_enumeration({make_adi(8, 8), adi_nr2_h(2, 2, 2)});
  expect_tables_match_enumeration({make_adi(8, 8), adi_nr3_h(2, 2, 2)});
}

TEST(CommSlots, HeatTablesMatch) {
  expect_tables_match_enumeration({make_heat(6, 12), heat_nonrect_h(2, 3)});
}

TEST(CommSlots, ExecutorPathsIdenticalSor) {
  expect_paths_identical(make_sor(5, 7), sor_rect_h(2, 3, 4));
  expect_paths_identical(make_sor(5, 7), sor_nonrect_h(2, 3, 4));
  expect_paths_identical(make_sor(5, 7), sor_nonrect_h(2, 3, 4), 2);
}

TEST(CommSlots, ExecutorPathsIdenticalJacobi) {
  expect_paths_identical(make_jacobi(4, 6, 6), jacobi_rect_h(2, 3, 3));
  expect_paths_identical(make_jacobi(4, 8, 6), jacobi_nonrect_h(2, 4, 3));
}

TEST(CommSlots, ExecutorPathsIdenticalAdi) {
  expect_paths_identical(make_adi(4, 6), adi_rect_h(2, 2, 2));
  expect_paths_identical(make_adi(4, 6), adi_nr1_h(2, 2, 2), 0);
  expect_paths_identical(make_adi(4, 6), adi_nr2_h(2, 2, 2), 0);
  expect_paths_identical(make_adi(8, 8), adi_nr3_h(2, 2, 2));
}

TEST(CommSlots, PhaseTimersArePopulated) {
  AppInstance app = make_sor(8, 12);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 5, 6)));
  ParallelExecutor exec(tiled, *app.kernel);
  ParallelRunStats stats;
  exec.run(&stats);
  ASSERT_EQ(static_cast<int>(stats.phase_by_rank.size()),
            exec.mapping().num_procs());
  // Compute always runs; timers are non-negative and the totals are the
  // per-rank sums.
  EXPECT_GT(stats.phase_total.compute_s, 0.0);
  double sum = 0.0;
  for (const PhaseTimes& p : stats.phase_by_rank) {
    EXPECT_GE(p.compute_s, 0.0);
    EXPECT_GE(p.pack_s, 0.0);
    EXPECT_GE(p.unpack_s, 0.0);
    EXPECT_GE(p.recv_wait_s, 0.0);
    sum += p.compute_s;
  }
  EXPECT_DOUBLE_EQ(stats.phase_total.compute_s, sum);
}

}  // namespace
}  // namespace ctile
