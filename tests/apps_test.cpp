#include "apps/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "deps/skew.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "runtime/data_space.hpp"
#include "tiling/transform.hpp"

namespace ctile {
namespace {

TEST(Apps, SorSkewedDepsNonNegative) {
  AppInstance app = make_sor(5, 7);
  EXPECT_TRUE(all_deps_nonnegative(app.nest.deps));
  EXPECT_EQ(app.nest.deps.cols(), 5);
  EXPECT_EQ(app.nest.space.count_points(), 5 * 7 * 7);
}

TEST(Apps, JacobiSkewedDepsNonNegative) {
  AppInstance app = make_jacobi(4, 6, 8);
  EXPECT_TRUE(all_deps_nonnegative(app.nest.deps));
  EXPECT_EQ(app.nest.deps.cols(), 5);
  EXPECT_EQ(app.nest.space.count_points(), 4 * 6 * 8);
}

TEST(Apps, AdiNeedsNoSkewing) {
  AppInstance app = make_adi(3, 5);
  EXPECT_TRUE(all_deps_nonnegative(app.nest.deps));
  EXPECT_EQ(app.nest.deps, (MatI{{1, 1, 1}, {0, 1, 0}, {0, 0, 1}}));
}

TEST(Apps, SkewedSorEqualsOriginalSor) {
  // The skewed instance must compute exactly the same values at the
  // corresponding (skewed) points as the original nest at the original
  // points: skewing only reorders execution.
  AppInstance orig = make_sor_original(4, 6);
  AppInstance skewed = make_sor(4, 6);
  DataSpace ds_orig =
      run_sequential(orig.nest.space, orig.nest.deps, *orig.kernel);
  DataSpace ds_skew =
      run_sequential(skewed.nest.space, skewed.nest.deps, *skewed.kernel);
  MatI t = sor_skew_matrix();
  orig.nest.space.scan([&](const VecI& j) {
    VecI js = mul(t, j);
    EXPECT_EQ(ds_orig.at(j)[0], ds_skew.at(js)[0])
        << "at original (" << j[0] << "," << j[1] << "," << j[2] << ")";
  });
}

TEST(Apps, SkewedJacobiEqualsOriginalJacobi) {
  AppInstance orig = make_jacobi_original(3, 5, 5);
  AppInstance skewed = make_jacobi(3, 5, 5);
  DataSpace ds_orig =
      run_sequential(orig.nest.space, orig.nest.deps, *orig.kernel);
  DataSpace ds_skew =
      run_sequential(skewed.nest.space, skewed.nest.deps, *skewed.kernel);
  MatI t = jacobi_skew_matrix();
  orig.nest.space.scan([&](const VecI& j) {
    EXPECT_EQ(ds_orig.at(j)[0], ds_skew.at(mul(t, j))[0]);
  });
}

TEST(Apps, JacobiValuesBounded) {
  // Jacobi averages: all values stay within the IC's range.
  AppInstance app = make_jacobi_original(4, 6, 6);
  DataSpace ds = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  app.nest.space.scan([&](const VecI& j) {
    EXPECT_LE(std::fabs(ds.at(j)[0]), 2.0);
  });
}

TEST(Apps, AdiBStaysPositive) {
  // The ADI kernel divides by B values; the coefficient scaling keeps B
  // near 2 so the recurrence is well conditioned.
  AppInstance app = make_adi(5, 8);
  DataSpace ds = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  app.nest.space.scan([&](const VecI& j) {
    EXPECT_GT(ds.at(j)[1], 1.0) << "B drifted low";
    EXPECT_LT(ds.at(j)[1], 3.0) << "B drifted high";
    EXPECT_TRUE(std::isfinite(ds.at(j)[0]));
  });
}

TEST(Apps, TilingMatricesLegal) {
  AppInstance sor = make_sor(5, 7);
  EXPECT_TRUE(tiling_legal(sor_rect_h(2, 3, 4), sor.nest.deps));
  EXPECT_TRUE(tiling_legal(sor_nonrect_h(2, 3, 4), sor.nest.deps));
  AppInstance jac = make_jacobi(4, 6, 6);
  EXPECT_TRUE(tiling_legal(jacobi_rect_h(2, 3, 3), jac.nest.deps));
  EXPECT_TRUE(tiling_legal(jacobi_nonrect_h(2, 4, 3), jac.nest.deps));
  AppInstance adi = make_adi(4, 6);
  for (const MatQ& h : {adi_rect_h(2, 2, 2), adi_nr1_h(2, 2, 2),
                        adi_nr2_h(2, 2, 2), adi_nr3_h(2, 2, 2)}) {
    EXPECT_TRUE(tiling_legal(h, adi.nest.deps));
  }
}

TEST(Apps, NonRectTilingsComeFromTilingCone) {
  // Each non-rectangular H row is parallel to a tiling-cone ray or at
  // least inside the cone (the paper picks rows parallel to cone sides).
  AppInstance sor = make_sor(5, 7);
  ConeRays cone = tiling_cone(sor.nest.deps);
  MatQ h = sor_nonrect_h(2, 3, 4);
  // Row 3 of H_nr is (-1/z, 0, 1/z) ~ (-1, 0, 1), a cone ray.
  bool found = false;
  for (const VecI& ray : cone.rays) {
    if (ray == VecI{-1, 0, 1}) found = true;
  }
  EXPECT_TRUE(found);
  (void)h;
}

TEST(Apps, AdiNr3RowsAllOnCone) {
  AppInstance adi = make_adi(4, 6);
  ConeRays cone = tiling_cone(adi.nest.deps);
  std::set<VecI> rays(cone.rays.begin(), cone.rays.end());
  EXPECT_TRUE(rays.count({1, -1, -1}));
  EXPECT_TRUE(rays.count({0, 1, 0}));
  EXPECT_TRUE(rays.count({0, 0, 1}));
  // H_nr3 rows are exactly these three directions.
}

TEST(Apps, EqualTileSizes) {
  // With common x,y,z factors the rectangular and non-rectangular tiles
  // have the same size (paper \S4.1: same |det|).
  for (i64 x : {2, 3}) {
    EXPECT_EQ(TilingTransform(sor_rect_h(x, 3, 4)).tile_size(),
              TilingTransform(sor_nonrect_h(x, 3, 4)).tile_size());
    EXPECT_EQ(TilingTransform(jacobi_rect_h(x, 4, 3)).tile_size(),
              TilingTransform(jacobi_nonrect_h(x, 4, 3)).tile_size());
    EXPECT_EQ(TilingTransform(adi_rect_h(x, 2, 2)).tile_size(),
              TilingTransform(adi_nr3_h(x, 2, 2)).tile_size());
  }
}

}  // namespace
}  // namespace ctile
