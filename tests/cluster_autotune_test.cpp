#include "cluster/autotune.hpp"

#include <gtest/gtest.h>

#include "apps/kernels.hpp"

namespace ctile {
namespace {

AutotuneRequest sor_request(i64 m, i64 n) {
  AutotuneRequest req;
  const i64 x = 1 + (m - 1) / 4 + ((1 + (m - 1) / 4) * 4 <= m ? 1 : 0);
  // Use the bench's exact fitting logic inline: smallest s spanning 4.
  i64 xf = 0, yf = 0;
  for (i64 s = 1; s <= m; ++s) {
    if (m / s - 1 / s + 1 == 4) {
      xf = s;
      break;
    }
  }
  for (i64 s = 1; s <= m + n; ++s) {
    if ((m + n) / s - 2 / s + 1 == 4) {
      yf = s;
      break;
    }
  }
  CTILE_ASSERT(xf > 0 && yf > 0);
  req.tiling_for = [xf, yf](i64 z) { return sor_nonrect_h(xf, yf, z); };
  req.chain_extent = 2 * m + n;
  req.force_m = 2;
  req.arity = 1;
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {m, n, n};
  req.skew = sor_skew_matrix();
  (void)x;
  return req;
}

TEST(Autotune, FindsInteriorOptimum) {
  AppInstance app = make_sor(50, 100);
  AutotuneRequest req = sor_request(50, 100);
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  AutotuneResult r = autotune_tile_size(app.nest, req, machine);
  EXPECT_GT(r.evaluated.size(), 5u);
  EXPECT_GT(r.best.speedup, 1.0);
  // Best really is the max over the evaluated set.
  for (const auto& [factor, sim] : r.evaluated) {
    EXPECT_LE(r.best.makespan, sim.makespan + 1e-15) << "factor " << factor;
  }
}

TEST(Autotune, ExplicitCandidateList) {
  AppInstance app = make_sor(24, 48);
  AutotuneRequest req = sor_request(24, 48);
  req.candidates = {4, 8};
  AutotuneResult r = autotune_tile_size(
      app.nest, req, MachineModel::fast_ethernet_cluster());
  EXPECT_EQ(r.evaluated.size(), 2u);
  EXPECT_TRUE(r.best_factor == 4 || r.best_factor == 8);
}

TEST(Autotune, SkipsInvalidCandidates) {
  // Jacobi non-rect requires even y; feed some odd candidates through a
  // family parameterized on y and verify they are skipped, not fatal.
  AppInstance app = make_jacobi(8, 16, 16);
  AutotuneRequest req;
  req.tiling_for = [](i64 y) { return jacobi_nonrect_h(2, y, 6); };
  req.candidates = {3, 4, 5, 6, 7, 8};  // odd ones are invalid
  req.force_m = 0;
  req.arity = 1;
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {8, 16, 16};
  req.skew = jacobi_skew_matrix();
  AutotuneResult r = autotune_tile_size(
      app.nest, req, MachineModel::fast_ethernet_cluster());
  EXPECT_EQ(r.evaluated.size(), 3u);  // 4, 6, 8 only
  EXPECT_EQ(r.best_factor % 2, 0);
  // The rejected candidates are reported, in order, with the lowering
  // diagnostic that rejected each — not silently dropped.
  ASSERT_EQ(r.skipped.size(), 3u);
  EXPECT_EQ(r.skipped[0].first, 3);
  EXPECT_EQ(r.skipped[1].first, 5);
  EXPECT_EQ(r.skipped[2].first, 7);
  for (const auto& [factor, reason] : r.skipped) {
    EXPECT_FALSE(reason.empty()) << "factor " << factor;
  }
  EXPECT_EQ(r.duplicates_removed, 0);
}

TEST(Autotune, DedupsRepeatedCandidates) {
  AppInstance app = make_sor(24, 48);
  AutotuneRequest req = sor_request(24, 48);
  req.candidates = {8, 8, 4, 8, 4};
  PlanCache cache;
  req.cache = &cache;
  AutotuneResult r = autotune_tile_size(
      app.nest, req, MachineModel::fast_ethernet_cluster());
  // First-occurrence order, duplicates evaluated (and lowered) once.
  ASSERT_EQ(r.evaluated.size(), 2u);
  EXPECT_EQ(r.evaluated[0].first, 8);
  EXPECT_EQ(r.evaluated[1].first, 4);
  EXPECT_EQ(r.duplicates_removed, 3);
  EXPECT_EQ(r.cache_hits, 0);
  EXPECT_EQ(r.cache_misses, 2);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(Autotune, ThrowsWhenNothingValid) {
  AppInstance app = make_jacobi(8, 16, 16);
  AutotuneRequest req;
  req.tiling_for = [](i64 y) { return jacobi_nonrect_h(2, y, 6); };
  req.candidates = {3, 5, 7};
  req.force_m = 0;
  req.arity = 1;
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {8, 16, 16};
  req.skew = jacobi_skew_matrix();
  EXPECT_THROW(autotune_tile_size(app.nest, req,
                                  MachineModel::fast_ethernet_cluster()),
               Error);
}

TEST(Autotune, OverlapScheduleSupported) {
  AppInstance app = make_sor(24, 48);
  AutotuneRequest req = sor_request(24, 48);
  req.candidates = {8};
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  AutotuneResult blocking = autotune_tile_size(app.nest, req, machine);
  req.schedule = CommSchedule::kOverlapped;
  AutotuneResult overlapped = autotune_tile_size(app.nest, req, machine);
  EXPECT_LE(overlapped.best.makespan, blocking.best.makespan + 1e-12);
}

TEST(SimTrace, WavefrontProperties) {
  AppInstance app = make_sor(16, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 10, 8)));
  SimResult r = simulate_tiled_program(
      tiled, MachineModel::fast_ethernet_cluster(), 1, 2);
  ASSERT_EQ(static_cast<i64>(r.trace.size()), r.tiles_executed);
  double max_end = 0.0;
  std::map<int, double> last_end_per_rank;
  for (const TileTrace& ev : r.trace) {
    EXPECT_LE(ev.start, ev.end);
    // Per-rank events are serial and ordered by chain position.
    auto it = last_end_per_rank.find(ev.rank);
    if (it != last_end_per_rank.end()) {
      EXPECT_GE(ev.start, it->second - 1e-15);
    }
    last_end_per_rank[ev.rank] = ev.end;
    max_end = std::max(max_end, ev.end);
  }
  EXPECT_DOUBLE_EQ(max_end, r.makespan);
}

}  // namespace
}  // namespace ctile
