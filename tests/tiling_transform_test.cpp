#include "tiling/transform.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

// The paper's SOR non-rectangular tiling with x=2, y=3, z=4.
MatQ sor_hnr(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(-1, z), Rat(0), Rat(1, z)}};
}

// The paper's Jacobi non-rectangular tiling.
MatQ jacobi_hnr(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, 2 * x), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

TEST(Transform, RectangularBasics) {
  TilingTransform t(MatQ{{Rat(1, 3), Rat(0)}, {Rat(0), Rat(1, 5)}});
  EXPECT_EQ(t.n(), 2);
  EXPECT_EQ(t.v(0), 3);
  EXPECT_EQ(t.v(1), 5);
  EXPECT_EQ(t.Hp(), MatI::identity(2));
  EXPECT_EQ(t.Hnf(), MatI::identity(2));
  EXPECT_EQ(t.stride(0), 1);
  EXPECT_EQ(t.stride(1), 1);
  EXPECT_EQ(t.tile_size(), 15);
  EXPECT_TRUE(t.p_integral());
  EXPECT_TRUE(t.strides_compatible());
  EXPECT_EQ(t.det_p(), Rat(15));
}

TEST(Transform, SingularThrows) {
  EXPECT_THROW(TilingTransform(MatQ{{Rat(1), Rat(1)}, {Rat(1), Rat(1)}}),
               LegalityError);
}

TEST(Transform, SorNonRectDerivedMatrices) {
  TilingTransform t(sor_hnr(2, 3, 4));
  EXPECT_EQ(t.V(), (MatI{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}));
  EXPECT_EQ(t.Hp(), (MatI{{1, 0, 0}, {0, 1, 0}, {-1, 0, 1}}));
  // H' is unimodular here, so the HNF is the identity: dense TTIS.
  EXPECT_EQ(t.Hnf(), MatI::identity(3));
  EXPECT_EQ(t.tile_size(), 2 * 3 * 4);
  EXPECT_TRUE(t.p_integral());
  // P = H^{-1} = [[x,0,0],[0,y,0],[x,0,z]].
  EXPECT_EQ(to_int(t.P()), (MatI{{2, 0, 0}, {0, 3, 0}, {2, 0, 4}}));
}

TEST(Transform, JacobiNonRectStridesAndOffsets) {
  TilingTransform t(jacobi_hnr(3, 4, 5));
  // v_1 = 2x = 6 (row 1 has denominator 2x), v_2 = y, v_3 = z.
  EXPECT_EQ(t.v(0), 6);
  EXPECT_EQ(t.v(1), 4);
  EXPECT_EQ(t.v(2), 5);
  EXPECT_EQ(t.Hp(), (MatI{{2, -1, 0}, {0, 1, 0}, {0, 0, 1}}));
  // HNF: diag(1,2,1) with the a_21 = 1 incremental offset (Fig. 2).
  EXPECT_EQ(t.stride(0), 1);
  EXPECT_EQ(t.stride(1), 2);
  EXPECT_EQ(t.stride(2), 1);
  EXPECT_EQ(t.offset(1, 0), 1);
  EXPECT_EQ(t.tile_size(), 3 * 4 * 5);
  EXPECT_TRUE(t.strides_compatible());  // c_2=2 divides v_2=4
}

TEST(Transform, StrideIncompatibilityDetected) {
  // Odd y makes c_2 = 2 incompatible with v_2 = y.
  TilingTransform t(jacobi_hnr(3, 5, 5));
  EXPECT_FALSE(t.strides_compatible());
}

TEST(Transform, HPInverseIdentities) {
  for (const MatQ& h : {sor_hnr(2, 3, 4), jacobi_hnr(3, 4, 5)}) {
    TilingTransform t(h);
    EXPECT_EQ(mul(t.H(), t.P()), MatQ::identity(t.n()));
    EXPECT_EQ(mul(to_rat(t.Hp()), t.Pp()), MatQ::identity(t.n()));
    EXPECT_EQ(mul(t.Hp(), t.U()), t.Hnf());
    EXPECT_TRUE(is_unimodular(t.U()));
  }
}

TEST(Transform, TileOfFloorSemantics) {
  TilingTransform t(sor_hnr(2, 3, 4));
  // floor(H j) computed directly with rationals must agree.
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    VecI j{rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)};
    VecI js = t.tile_of(j);
    VecQ hj = mul(t.H(), j);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(js[static_cast<std::size_t>(k)],
                hj[static_cast<std::size_t>(k)].floor());
    }
  }
}

TEST(Transform, TtisCoordinatesInRange) {
  for (const MatQ& h : {sor_hnr(2, 3, 4), jacobi_hnr(2, 4, 3)}) {
    TilingTransform t(h);
    Rng rng(10);
    for (int i = 0; i < 500; ++i) {
      VecI j{rng.uniform(-15, 15), rng.uniform(-15, 15),
             rng.uniform(-15, 15)};
      VecI js = t.tile_of(j);
      VecI jp = t.ttis_of(j, js);
      for (int k = 0; k < 3; ++k) {
        EXPECT_GE(jp[static_cast<std::size_t>(k)], 0);
        EXPECT_LT(jp[static_cast<std::size_t>(k)], t.v(k));
      }
      EXPECT_TRUE(t.in_ttis(jp));
      // Round trip through point_of.
      EXPECT_EQ(t.point_of(js, jp), j);
    }
  }
}

TEST(Transform, PointOfTileOriginMatchesP) {
  TilingTransform t(sor_hnr(2, 3, 4));
  VecI js{3, -1, 2};
  VecI origin = t.point_of(js, {0, 0, 0});
  VecQ expected = mul(t.P(), js);
  EXPECT_EQ(origin, to_int_vec(expected));
}

TEST(Transform, TransformDepMatchesHp) {
  TilingTransform t(sor_hnr(2, 3, 4));
  EXPECT_EQ(t.transform_dep({1, 1, 2}), mul(t.Hp(), VecI{1, 1, 2}));
}

TEST(Transform, TilesPartitionSpace) {
  // Every point has exactly one (tile, ttis) decomposition; two distinct
  // points never collide.
  TilingTransform t(jacobi_hnr(2, 2, 2));
  std::set<std::pair<VecI, VecI>> seen;
  for (i64 a = -4; a <= 4; ++a) {
    for (i64 b = -4; b <= 4; ++b) {
      for (i64 c = -4; c <= 4; ++c) {
        VecI j{a, b, c};
        VecI js = t.tile_of(j);
        VecI jp = t.ttis_of(j, js);
        auto inserted = seen.insert({js, jp});
        EXPECT_TRUE(inserted.second);
        EXPECT_EQ(t.point_of(js, jp), j);
      }
    }
  }
}

TEST(Transform, DescribeMentionsKeyObjects) {
  TilingTransform t(sor_hnr(2, 3, 4));
  std::string d = t.describe();
  EXPECT_NE(d.find("H' = V H"), std::string::npos);
  EXPECT_NE(d.find("strides"), std::string::npos);
}

TEST(Transform, RandomizedRoundTripsIntegralP) {
  // Random *integral* P (the class the parallel runtime accepts, and the
  // paper's implicit assumption: uniform full tiles); H = P^{-1} is then
  // a general rational tiling with nontrivial strides.  Every point must
  // decompose uniquely into (tile, TTIS-lattice point) and back.
  Rng rng(77);
  int tested = 0;
  while (tested < 40) {
    int n = static_cast<int>(rng.uniform(2, 3));
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) p(r, c) = rng.uniform(-3, 3);
    }
    i64 d = det(p);
    if (d == 0 || abs_ck(d) > 40) continue;
    ++tested;
    TilingTransform t(inverse(to_rat(p)));
    EXPECT_TRUE(t.p_integral());
    EXPECT_EQ(t.tile_size(), abs_ck(d));
    for (int i = 0; i < 50; ++i) {
      VecI j(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        j[static_cast<std::size_t>(k)] = rng.uniform(-10, 10);
      }
      VecI js = t.tile_of(j);
      VecI jp = t.ttis_of(j, js);
      EXPECT_TRUE(t.in_ttis(jp));
      EXPECT_EQ(t.point_of(js, jp), j);
    }
  }
}

TEST(Transform, NonIntegralPStillRoundTrips) {
  // When P is not integral, tiles are non-uniform and TTIS coordinates
  // of non-origin tiles live on a *shifted* lattice (in_ttis does not
  // apply), but the tile_of / ttis_of / point_of decomposition is still
  // exact.
  Rng rng(78);
  int tested = 0;
  while (tested < 20) {
    int n = 2;
    MatQ h(n, n);
    for (int r = 0; r < n; ++r) {
      i64 s = rng.uniform(2, 5);
      for (int c = 0; c < n; ++c) h(r, c) = Rat(rng.uniform(-2, 2), s);
    }
    if (det(h).is_zero()) continue;
    ++tested;
    TilingTransform t(h);
    for (int i = 0; i < 50; ++i) {
      VecI j{rng.uniform(-10, 10), rng.uniform(-10, 10)};
      VecI js = t.tile_of(j);
      VecI jp = t.ttis_of(j, js);
      for (int k = 0; k < n; ++k) {
        EXPECT_GE(jp[static_cast<std::size_t>(k)], 0);
        EXPECT_LT(jp[static_cast<std::size_t>(k)], t.v(k));
      }
      EXPECT_EQ(t.point_of(js, jp), j);
    }
  }
}

}  // namespace
}  // namespace ctile
