#include "runtime/comm_plan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apps/kernels.hpp"
#include "linalg/int_matops.hpp"

namespace ctile {
namespace {

struct Fixture {
  TiledNest tiled;
  Mapping mapping;
  LdsLayout lds;
  CommPlan plan;

  Fixture(AppInstance app, MatQ h, int force_m = -1)
      : tiled(app.nest, TilingTransform(std::move(h))),
        mapping(tiled, force_m),
        lds(tiled, mapping),
        plan(tiled, mapping, lds) {}
};

TEST(CommPlan, SorDirectionsAndRegions) {
  Fixture s(make_sor(8, 12), sor_nonrect_h(4, 5, 6));
  // Tile deps of SOR-nonrect include (1,0,0),(0,1,0),(0,0,1),...; the
  // chain dimension is m: directions are the distinct nonzero projections.
  std::set<VecI> dms;
  for (const TileDep& d : s.plan.tile_deps()) {
    if (d.dir >= 0) dms.insert(d.dm);
  }
  EXPECT_EQ(dms.size(), s.plan.directions().size());
  // Every direction's pack region lower bound is d^m_k * cc_k on mesh
  // dims and 0 on the chain dim.
  for (const ProcDir& dir : s.plan.directions()) {
    int g = 0;
    for (int k = 0; k < 3; ++k) {
      if (k == s.mapping.m()) {
        EXPECT_EQ(dir.pack.lo[static_cast<std::size_t>(k)], 0);
        continue;
      }
      i64 dmk = dir.dm[static_cast<std::size_t>(g++)];
      i64 expected = dmk > 0 ? dmk * s.lds.cc(k) : 0;
      EXPECT_EQ(dir.pack.lo[static_cast<std::size_t>(k)], expected);
      EXPECT_EQ(dir.pack.hi[static_cast<std::size_t>(k)],
                s.tiled.transform().v(k) - 1);
    }
  }
}

TEST(CommPlan, ChainInternalDepsHaveNoDirection) {
  Fixture s(make_sor(8, 12), sor_nonrect_h(4, 5, 6));
  const int m = s.mapping.m();
  for (const TileDep& d : s.plan.tile_deps()) {
    bool mesh_zero = true;
    int g = 0;
    for (int k = 0; k < 3; ++k) {
      if (k == m) continue;
      if (d.ds[static_cast<std::size_t>(k)] != 0) mesh_zero = false;
      ++g;
    }
    EXPECT_EQ(d.dir < 0, mesh_zero);
  }
}

TEST(CommPlan, PackRegionPointCounts) {
  // Rectangular 2-D case with unit deps: pack region for (1) is one row
  // of the tile.
  LoopNest nest = make_rectangular_nest("r", {0, 0}, {7, 7},
                                        MatI{{1, 0}, {0, 1}});
  TiledNest tiled(nest, TilingTransform(MatQ{{Rat(1, 4), Rat(0)},
                                             {Rat(0), Rat(1, 4)}}));
  Mapping mapping(tiled, 1);  // chain along dim 1, mesh along dim 0
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  ASSERT_EQ(plan.directions().size(), 1u);
  // cc_0 = 4 - 1 = 3: pack rows with j'_0 >= 3 -> 1 row x 4 cols.
  EXPECT_EQ(plan.message_points(0), 4);
}

TEST(CommPlan, UnpackShiftMatchesTileExtents) {
  Fixture s(make_sor(8, 12), sor_nonrect_h(4, 5, 6));
  for (const TileDep& d : s.plan.tile_deps()) {
    if (d.dir < 0) continue;
    VecI shift = s.plan.unpack_shift(d);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(shift[static_cast<std::size_t>(k)],
                d.ds[static_cast<std::size_t>(k)] * s.lds.tile_slots(k));
    }
  }
}

TEST(CommPlan, MinsuccPicksLexMin) {
  Fixture s(make_sor(8, 12), sor_nonrect_h(4, 5, 6));
  // For an interior tile, minsucc in a direction with tile deps
  // {(dm, 0), (dm, 1)} must be the (dm, 0) successor when valid.
  const int m = s.mapping.m();
  std::vector<VecI> tiles = s.tiled.nonempty_tiles();
  ASSERT_FALSE(tiles.empty());
  for (const VecI& js : tiles) {
    for (std::size_t dir = 0; dir < s.plan.directions().size(); ++dir) {
      VecI ms;
      if (!s.plan.minsucc(js, static_cast<int>(dir), &ms)) continue;
      EXPECT_TRUE(s.mapping.valid(ms));
      // No other valid successor for this direction is lex-smaller.
      for (const TileDep& d : s.plan.tile_deps()) {
        if (d.dir != static_cast<int>(dir)) continue;
        VecI succ = vec_add(js, d.ds);
        if (s.mapping.valid(succ)) {
          EXPECT_GE(lex_compare(succ, ms), 0);
        }
      }
      (void)m;
    }
  }
}

TEST(CommPlan, JacobiStridedMessagesCountLatticePoints) {
  Fixture s(make_jacobi(6, 10, 10), jacobi_nonrect_h(2, 4, 3), 0);
  // Pack regions count lattice points, not raw box cells: with c_2 = 2
  // the region must contain half the cells of its bounding box in dim 1.
  for (std::size_t d = 0; d < s.plan.directions().size(); ++d) {
    const ProcDir& dir = s.plan.directions()[d];
    i64 cells = 1;
    for (int k = 0; k < 3; ++k) {
      cells *= dir.pack.hi[static_cast<std::size_t>(k)] -
               dir.pack.lo[static_cast<std::size_t>(k)] + 1;
    }
    EXPECT_LT(s.plan.message_points(static_cast<int>(d)), cells);
    EXPECT_GT(s.plan.message_points(static_cast<int>(d)), 0);
  }
}

TEST(CommPlan, DeterministicOrder) {
  Fixture a(make_sor(8, 12), sor_nonrect_h(4, 5, 6));
  Fixture b(make_sor(8, 12), sor_nonrect_h(4, 5, 6));
  ASSERT_EQ(a.plan.tile_deps().size(), b.plan.tile_deps().size());
  for (std::size_t i = 0; i < a.plan.tile_deps().size(); ++i) {
    EXPECT_EQ(a.plan.tile_deps()[i].ds, b.plan.tile_deps()[i].ds);
    EXPECT_EQ(a.plan.tile_deps()[i].dir, b.plan.tile_deps()[i].dir);
  }
}

}  // namespace
}  // namespace ctile
