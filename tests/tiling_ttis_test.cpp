#include "tiling/ttis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

MatQ jacobi_hnr(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(-1, 2 * x), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(0), Rat(0), Rat(1, z)}};
}

// Brute-force TTIS: scan a box in original coordinates, keep points of the
// origin tile, map through H'.
std::set<VecI> brute_ttis(const TilingTransform& t, i64 radius) {
  std::set<VecI> out;
  const int n = t.n();
  VecI j(static_cast<std::size_t>(n));
  std::function<void(int)> rec = [&](int d) {
    if (d == n) {
      VecI js = t.tile_of(j);
      if (std::all_of(js.begin(), js.end(), [](i64 v) { return v == 0; })) {
        out.insert(t.ttis_of(j, js));
      }
      return;
    }
    for (i64 v = -radius; v <= radius; ++v) {
      j[static_cast<std::size_t>(d)] = v;
      rec(d + 1);
    }
  };
  rec(0);
  return out;
}

TEST(Ttis, FullRegionBounds) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  TtisRegion r = full_ttis_region(t);
  EXPECT_EQ(r.lo, (VecI{0, 0, 0}));
  EXPECT_EQ(r.hi, (VecI{3, 3, 2}));  // v = (4, 4, 3)
}

TEST(Ttis, WalkerMatchesBruteForceJacobi) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  std::set<VecI> brute = brute_ttis(t, 12);
  std::set<VecI> walked;
  for_each_lattice_point(t, full_ttis_region(t),
                         [&](const VecI& jp) { walked.insert(jp); });
  EXPECT_EQ(walked, brute);
  EXPECT_EQ(static_cast<i64>(walked.size()), t.tile_size());
}

TEST(Ttis, WalkerMatchesBruteForceRandom) {
  // Random integral P; H = P^{-1} gives general lattices with nonunit
  // strides (the class the runtime accepts).
  Rng rng(4242);
  int tested = 0;
  while (tested < 12) {
    int n = 2;
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) p(r, c) = rng.uniform(-4, 4);
    }
    i64 d = det(p);
    if (d == 0 || abs_ck(d) > 60) continue;
    MatQ h = inverse(to_rat(p));
    TilingTransform t(h);
    if (t.tile_size() > 400) continue;
    ++tested;
    // Radius must cover the tile's extent in original coordinates: use
    // the max |P'| column sum times max v.
    i64 radius = 0;
    for (int r = 0; r < n; ++r) {
      Rat acc;
      for (int c = 0; c < n; ++c) acc += t.Pp()(r, c).abs() * Rat(t.v(c));
      radius = std::max(radius, acc.ceil() + 1);
    }
    std::set<VecI> brute = brute_ttis(t, radius);
    std::set<VecI> walked;
    for_each_lattice_point(t, full_ttis_region(t),
                           [&](const VecI& jp) { walked.insert(jp); });
    EXPECT_EQ(walked, brute) << "H =\n" << h.to_string();
  }
}

TEST(Ttis, LexicographicOrder) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  VecI prev;
  bool first = true;
  for_each_lattice_point(t, full_ttis_region(t), [&](const VecI& jp) {
    if (!first) {
      EXPECT_LT(lex_compare(prev, jp), 0);
    }
    prev = jp;
    first = false;
  });
}

TEST(Ttis, SubRegionIsSubsetOfFull) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  std::set<VecI> full;
  for_each_lattice_point(t, full_ttis_region(t),
                         [&](const VecI& jp) { full.insert(jp); });
  TtisRegion sub = full_ttis_region(t);
  sub.lo = {2, 1, 1};
  sub.hi = {3, 3, 2};
  i64 expected = 0;
  for (const VecI& p : full) {
    if (p[0] >= 2 && p[1] >= 1 && p[2] >= 1) ++expected;
  }
  EXPECT_EQ(count_lattice_points(t, sub), expected);
  for_each_lattice_point(t, sub, [&](const VecI& jp) {
    EXPECT_TRUE(full.count(jp));
  });
}

TEST(Ttis, EmptyRegion) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  TtisRegion r = full_ttis_region(t);
  r.lo[0] = r.hi[0] + 1;
  EXPECT_EQ(count_lattice_points(t, r), 0);
}

TEST(Ttis, UntilStopsEarly) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  int visits = 0;
  bool completed = for_each_lattice_point_until(
      t, full_ttis_region(t), [&](const VecI&) { return ++visits < 3; });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 3);
}

TEST(Ttis, TisPointsAreTheOriginTile) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  std::vector<VecI> tis = tis_points(t);
  EXPECT_EQ(static_cast<i64>(tis.size()), t.tile_size());
  for (const VecI& j : tis) {
    VecI js = t.tile_of(j);
    EXPECT_TRUE(std::all_of(js.begin(), js.end(),
                            [](i64 v) { return v == 0; }))
        << "point (" << j[0] << "," << j[1] << "," << j[2]
        << ") not in origin tile";
  }
  // Distinctness.
  std::set<VecI> uniq(tis.begin(), tis.end());
  EXPECT_EQ(uniq.size(), tis.size());
}

TEST(Ttis, TtisPointsBijectiveWithTis) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  std::vector<VecI> jps = ttis_points(t);
  std::set<VecI> mapped;
  VecI origin{0, 0, 0};
  for (const VecI& jp : jps) {
    mapped.insert(t.point_of(origin, jp));
  }
  std::vector<VecI> tis = tis_points(t);
  EXPECT_EQ(mapped, std::set<VecI>(tis.begin(), tis.end()));
}

// The full point sequence a TtisRowWalker describes: each row expanded
// as row_start + i * inner_stride * e_{n-1}.
std::vector<VecI> walker_sequence(const TilingTransform& t,
                                  const TtisRegion& region) {
  std::vector<VecI> out;
  for (TtisRowWalker row(t, region); row.valid(); row.next()) {
    VecI jp = row.row_start();
    for (i64 i = 0; i < row.row_points(); ++i) {
      out.push_back(jp);
      jp[jp.size() - 1] += row.inner_stride();
    }
  }
  return out;
}

std::vector<VecI> point_sequence(const TilingTransform& t,
                                 const TtisRegion& region) {
  std::vector<VecI> out;
  for_each_lattice_point(t, region,
                         [&](const VecI& jp) { out.push_back(jp); });
  return out;
}

TEST(TtisRowWalker, MatchesPointWalkJacobi) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  const TtisRegion full = full_ttis_region(t);
  EXPECT_EQ(walker_sequence(t, full), point_sequence(t, full));
  TtisRowWalker row(t, full);
  EXPECT_EQ(row.inner_stride(), t.stride(t.n() - 1));
}

TEST(TtisRowWalker, MatchesPointWalkSubAndEmptyRegions) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  TtisRegion sub = full_ttis_region(t);
  sub.lo = {2, 1, 1};
  sub.hi = {3, 3, 2};
  EXPECT_EQ(walker_sequence(t, sub), point_sequence(t, sub));

  TtisRegion empty = full_ttis_region(t);
  empty.lo[0] = empty.hi[0] + 1;
  TtisRowWalker row(t, empty);
  EXPECT_FALSE(row.valid());
  EXPECT_TRUE(walker_sequence(t, empty).empty());
}

TEST(TtisRowWalker, MatchesPointWalkRandom) {
  Rng rng(1717);
  int tested = 0;
  while (tested < 16) {
    int n = rng.uniform(2, 3);
    MatI p(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) p(r, c) = rng.uniform(-3, 3);
    }
    i64 d = det(p);
    if (d == 0 || abs_ck(d) > 48) continue;
    TilingTransform t(inverse(to_rat(p)));
    if (t.tile_size() > 300) continue;
    ++tested;
    const TtisRegion full = full_ttis_region(t);
    EXPECT_EQ(walker_sequence(t, full), point_sequence(t, full))
        << "P =\n" << p.to_string();
    // A random sub-box too (possibly empty).
    TtisRegion sub = full;
    for (int k = 0; k < n; ++k) {
      const i64 a = rng.uniform(sub.lo[static_cast<std::size_t>(k)],
                                sub.hi[static_cast<std::size_t>(k)]);
      const i64 b = rng.uniform(sub.lo[static_cast<std::size_t>(k)],
                                sub.hi[static_cast<std::size_t>(k)]);
      sub.lo[static_cast<std::size_t>(k)] = std::min(a, b);
      sub.hi[static_cast<std::size_t>(k)] = std::max(a, b);
    }
    EXPECT_EQ(walker_sequence(t, sub), point_sequence(t, sub))
        << "P =\n" << p.to_string();
  }
}

TEST(TtisRowWalker, CountMatchesRowSum) {
  TilingTransform t(jacobi_hnr(2, 4, 3));
  const TtisRegion full = full_ttis_region(t);
  i64 sum = 0;
  for (TtisRowWalker row(t, full); row.valid(); row.next()) {
    sum += row.row_points();
  }
  EXPECT_EQ(sum, count_lattice_points(t, full));
  EXPECT_EQ(sum, t.tile_size());
}

TEST(TtisRowWalker, RowPointStepIsConstantJStep) {
  // Along a row, the J^n point advances by the constant lattice vector
  // P'(c_{n-1} e_{n-1}).
  TilingTransform t(jacobi_hnr(2, 4, 3));
  const VecI origin{0, 0, 0};
  const VecI jstep = row_point_step(t);
  for (TtisRowWalker row(t, full_ttis_region(t)); row.valid(); row.next()) {
    VecI jp = row.row_start();
    VecI j = t.point_of(origin, jp);
    for (i64 i = 1; i < row.row_points(); ++i) {
      jp[2] += row.inner_stride();
      const VecI jn = t.point_of(origin, jp);
      for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(jn[static_cast<std::size_t>(k)],
                  j[static_cast<std::size_t>(k)] +
                      jstep[static_cast<std::size_t>(k)]);
      }
      j = jn;
    }
  }
}

TEST(Ttis, JacobiCongruencePattern) {
  // For the Jacobi tiling, dimension 1 admits even values when y_0 is
  // even and odd values when y_0 is odd (a_21 = 1, c_2 = 2): the
  // "staircase" of Figure 2.
  TilingTransform t(jacobi_hnr(2, 4, 3));
  for_each_lattice_point(t, full_ttis_region(t), [&](const VecI& jp) {
    // j'_1 runs with stride 1 (c_1 = 1); lattice coordinate y_0 = j'_0.
    EXPECT_EQ(mod_floor(jp[1], 2), mod_floor(jp[0], 2))
        << "point (" << jp[0] << "," << jp[1] << "," << jp[2] << ")";
  });
}

}  // namespace
}  // namespace ctile
