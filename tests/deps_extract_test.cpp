#include "deps/extract.hpp"

#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "tiling/tile_space.hpp"
#include "linalg/int_matops.hpp"

namespace ctile {
namespace {

TEST(Extract, SorDependenciesFromReferences) {
  // SOR writes A[t, i, j]; reads A[t,i-1,j], A[t,i,j-1], A[t-1,i+1,j],
  // A[t-1,i,j+1], A[t-1,i,j].  The derived matrix must equal the one the
  // bundled app declares.
  ArrayRef w = ArrayRef::identity_with_offset({0, 0, 0});
  std::vector<ArrayRef> reads = {
      ArrayRef::identity_with_offset({0, -1, 0}),
      ArrayRef::identity_with_offset({0, 0, -1}),
      ArrayRef::identity_with_offset({-1, 1, 0}),
      ArrayRef::identity_with_offset({-1, 0, 1}),
      ArrayRef::identity_with_offset({-1, 0, 0}),
  };
  MatI deps = extract_dependencies(w, reads);
  EXPECT_EQ(deps, make_sor_original(4, 4).nest.deps);
}

TEST(Extract, AdiDependenciesFromReferences) {
  ArrayRef w = ArrayRef::identity_with_offset({0, 0, 0});
  std::vector<ArrayRef> reads = {
      ArrayRef::identity_with_offset({-1, 0, 0}),
      ArrayRef::identity_with_offset({-1, -1, 0}),
      ArrayRef::identity_with_offset({-1, 0, -1}),
  };
  EXPECT_EQ(extract_dependencies(w, reads), make_adi(3, 3).nest.deps);
}

TEST(Extract, UniformDistanceFromOffsets) {
  // write A[j1+2, j2]; read A[j1, j2-1]: d solves W d = w0 - r0 = (2, 1).
  ArrayRef w = ArrayRef::identity_with_offset({2, 0});
  ArrayRef r = ArrayRef::identity_with_offset({0, 1});
  DepResult res = uniform_dependence(w, r);
  ASSERT_TRUE(res.uniform) << res.reason;
  EXPECT_EQ(res.distance, (VecI{2, -1}));
}

TEST(Extract, NonIdentityCoefficients) {
  // write A[2*j1, j2]; read A[2*j1 - 4, j2 - 1]: d = (2, 1).
  ArrayRef w{MatI{{2, 0}, {0, 1}}, {0, 0}};
  ArrayRef r{MatI{{2, 0}, {0, 1}}, {-4, -1}};
  DepResult res = uniform_dependence(w, r);
  ASSERT_TRUE(res.uniform) << res.reason;
  EXPECT_EQ(res.distance, (VecI{2, 1}));
}

TEST(Extract, FractionalAliasingRejected) {
  // write A[2*j]; read A[2*j - 1]: elements never coincide (odd offset on
  // an even lattice).
  ArrayRef w{MatI{{2}}, {0}};
  ArrayRef r{MatI{{2}}, {-1}};
  DepResult res = uniform_dependence(w, r);
  EXPECT_FALSE(res.uniform);
  EXPECT_NE(res.reason.find("fractional"), std::string::npos);
}

TEST(Extract, NonUniformPairRejected) {
  // write A[j1, j2]; read A[j2, j1] (transposed access): distance varies.
  ArrayRef w = ArrayRef::identity_with_offset({0, 0});
  ArrayRef r{MatI{{0, 1}, {1, 0}}, {0, 0}};
  DepResult res = uniform_dependence(w, r);
  EXPECT_FALSE(res.uniform);
  EXPECT_NE(res.reason.find("non-uniform"), std::string::npos);
}

TEST(Extract, NonInjectiveWriteRejected) {
  // write A[j1 + j2] in a 2-deep nest: many iterations write each cell.
  ArrayRef w{MatI{{1, 1}}, {0}};
  ArrayRef r{MatI{{1, 1}}, {-1}};
  DepResult res = uniform_dependence(w, r);
  EXPECT_FALSE(res.uniform);
  EXPECT_NE(res.reason.find("not injective"), std::string::npos);
}

TEST(Extract, NeverAliasingRejected) {
  // Overdetermined inconsistent system: write A[j, j]... write coef is
  // 2x1 (array 2-D, loop 1-D), read offset inconsistent between rows.
  ArrayRef w{MatI{{1}, {1}}, {0, 0}};
  ArrayRef r{MatI{{1}, {1}}, {-1, -2}};
  DepResult res = uniform_dependence(w, r);
  EXPECT_FALSE(res.uniform);
  EXPECT_NE(res.reason.find("never alias"), std::string::npos);
}

TEST(Extract, LexNegativeDistanceRejected) {
  // read A[t+1, i]: reads the future.
  ArrayRef w = ArrayRef::identity_with_offset({0, 0});
  std::vector<ArrayRef> reads = {ArrayRef::identity_with_offset({1, 0})};
  EXPECT_THROW(extract_dependencies(w, reads), LegalityError);
}

TEST(Extract, EvalMatchesDefinition) {
  ArrayRef r{MatI{{2, 0}, {1, 1}}, {5, -3}};
  EXPECT_EQ(r.eval({3, 4}), (VecI{11, 4}));
}

TEST(Extract, RoundTripThroughPipeline) {
  // References -> dependence matrix -> nest -> legal tiling: the full
  // front-to-back path.
  ArrayRef w = ArrayRef::identity_with_offset({0, 0, 0});
  std::vector<ArrayRef> reads = {
      ArrayRef::identity_with_offset({-1, 0, 0}),
      ArrayRef::identity_with_offset({-1, -1, 0}),
      ArrayRef::identity_with_offset({-1, 0, -1}),
  };
  MatI deps = extract_dependencies(w, reads);
  LoopNest nest = make_rectangular_nest("fromrefs", {1, 1, 1}, {6, 6, 6},
                                        deps);
  TiledNest tiled(nest, TilingTransform(adi_nr3_h(2, 2, 2)));
  EXPECT_GT(tiled.nonempty_tiles().size(), 0u);
}

}  // namespace
}  // namespace ctile
