// Stress and ordering tests for the message-passing substrate under
// concurrency: many ranks, many tags, interleaved traffic, randomized
// receive orders — the guarantees the tiled runtime depends on must hold
// under load, not just in two-rank ping-pong.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "support/rng.hpp"

namespace ctile::mpisim {
namespace {

TEST(MpisimStress, AllToAllManyTags) {
  const int n = 8;
  const int msgs_per_pair = 25;
  run_ranks(n, [&](int rank, Comm& comm) {
    // Everyone sends msgs_per_pair messages to everyone (self excluded),
    // tag = sequence number, payload identifies (src, seq).
    for (int dst = 0; dst < n; ++dst) {
      if (dst == rank) continue;
      for (int s = 0; s < msgs_per_pair; ++s) {
        comm.send(rank, dst, s,
                  {static_cast<double>(rank) * 1000.0 + s});
      }
    }
    // Receive in a rank-dependent scrambled order.
    Rng rng(static_cast<u64>(rank) + 1);
    std::vector<std::pair<int, int>> wanted;
    for (int src = 0; src < n; ++src) {
      if (src == rank) continue;
      for (int s = 0; s < msgs_per_pair; ++s) wanted.push_back({src, s});
    }
    for (std::size_t i = wanted.size(); i > 1; --i) {
      std::swap(wanted[i - 1],
                wanted[static_cast<std::size_t>(rng.uniform(0, static_cast<i64>(i) - 1))]);
    }
    for (auto [src, s] : wanted) {
      std::vector<double> msg = comm.recv(rank, src, s);
      ASSERT_EQ(msg.size(), 1u);
      EXPECT_EQ(msg[0], static_cast<double>(src) * 1000.0 + s);
    }
  });
}

TEST(MpisimStress, FifoHoldsUnderConcurrentSameTagTraffic) {
  const int n = 6;
  const int burst = 200;
  run_ranks(n, [&](int rank, Comm& comm) {
    const int dst = (rank + 1) % n;
    const int src = (rank + n - 1) % n;
    for (int i = 0; i < burst; ++i) {
      comm.send(rank, dst, /*tag=*/7, {static_cast<double>(i)});
    }
    for (int i = 0; i < burst; ++i) {
      std::vector<double> m = comm.recv(rank, src, 7);
      EXPECT_EQ(m[0], static_cast<double>(i)) << "FIFO violated at " << i;
    }
  });
}

TEST(MpisimStress, LargePayloadsSurviveIntact) {
  run_ranks(2, [](int rank, Comm& comm) {
    const std::size_t big = 1 << 18;  // 256K doubles = 2 MB
    if (rank == 0) {
      std::vector<double> payload(big);
      for (std::size_t i = 0; i < big; ++i) {
        payload[i] = static_cast<double>(i) * 0.5;
      }
      comm.send(0, 1, 0, std::move(payload));
    } else {
      std::vector<double> got = comm.recv(1, 0, 0);
      ASSERT_EQ(got.size(), big);
      double sum = std::accumulate(got.begin(), got.end(), 0.0);
      EXPECT_DOUBLE_EQ(sum, 0.5 * (static_cast<double>(big - 1) *
                                   static_cast<double>(big)) /
                                2.0);
    }
  });
}

TEST(MpisimStress, RepeatedBarriersUnderTraffic) {
  const int n = 5;
  run_ranks(n, [&](int rank, Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      const int dst = (rank + round) % n;
      if (dst != rank) {
        comm.send(rank, dst, round, {static_cast<double>(round)});
      }
      comm.barrier(rank);
      const int src = (rank + n - (round % n)) % n;
      if (src != rank) {
        EXPECT_EQ(comm.recv(rank, src, round)[0],
                  static_cast<double>(round));
      }
      comm.barrier(rank);
    }
  });
}

TEST(MpisimStress, BufferPoolRecyclesUnderRingTraffic) {
  // Steady-state ring traffic with acquire/release: after the first few
  // rounds the pools must serve every acquisition without allocating.
  const int n = 6;
  const int rounds = 100;
  const std::size_t payload = 256;
  run_ranks(n, [&](int rank, Comm& comm) {
    const int dst = (rank + 1) % n;
    const int src = (rank + n - 1) % n;
    for (int round = 0; round < rounds; ++round) {
      std::vector<double> buf = comm.acquire_buffer(rank, payload);
      ASSERT_EQ(buf.size(), payload);
      for (std::size_t i = 0; i < payload; ++i) {
        buf[i] = static_cast<double>(round) + static_cast<double>(rank);
      }
      comm.send(rank, dst, round, std::move(buf));
      std::vector<double> got = comm.recv(rank, src, round);
      ASSERT_EQ(got.size(), payload);
      EXPECT_EQ(got[0], static_cast<double>(round) + static_cast<double>(src));
      comm.release_buffer(rank, std::move(got));
    }
    comm.barrier(rank);
    if (rank == 0) {
      // Every rank allocates at most a handful of buffers up front; the
      // rest of the n * rounds acquisitions are pool hits.
      EXPECT_GE(comm.pool_reuses(), static_cast<i64>(n) * (rounds - 2));
    }
  });
}

TEST(MpisimStress, BufferPoolConcurrentAcquireReleaseManyRanks) {
  // Cross-rank churn: every rank releases into *other* ranks' pools
  // while those ranks draw from them — the pool locks must keep this
  // clean (run under TSan in CI).
  const int n = 8;
  run_ranks(n, [&](int rank, Comm& comm) {
    Rng rng(static_cast<u64>(rank) * 77 + 1);
    for (int i = 0; i < 200; ++i) {
      const int other = static_cast<int>(rng.uniform(0, n - 1));
      std::vector<double> buf =
          comm.acquire_buffer(rank, static_cast<std::size_t>(
                                        rng.uniform(1, 64)));
      comm.release_buffer(other, std::move(buf));
    }
  });
}

TEST(MpisimStress, IsendRingRecyclesAndBoundsThePool) {
  // Same steady-state ring as above but through the non-blocking path:
  // isend stages into the destination pool and recycles the sender's
  // buffer at initiation, so pools stay warm on BOTH sides and the
  // high-water mark stays within the hard bound (64 buffers per rank).
  const int n = 6;
  const int rounds = 100;
  const std::size_t payload = 256;
  run_ranks(n, [&](int rank, Comm& comm) {
    const int dst = (rank + 1) % n;
    const int src = (rank + n - 1) % n;
    std::vector<Request> in_flight;
    for (int round = 0; round < rounds; ++round) {
      std::vector<double> buf = comm.acquire_buffer(rank, payload);
      ASSERT_EQ(buf.size(), payload);
      for (std::size_t i = 0; i < payload; ++i) {
        buf[i] = static_cast<double>(round) + static_cast<double>(rank);
      }
      in_flight.push_back(comm.isend(rank, dst, round, std::move(buf)));
      std::vector<double> got = comm.recv(rank, src, round);
      ASSERT_EQ(got.size(), payload);
      EXPECT_EQ(got[0], static_cast<double>(round) + static_cast<double>(src));
      comm.release_buffer(rank, std::move(got));
      // Lockstep rounds: each round feeds every pool exactly as much as
      // the next round drains it, which makes the reuse bound below
      // deterministic instead of racing on inter-rank drift.
      comm.barrier(rank);
    }
    comm.wait_all(in_flight);
    comm.barrier(rank);
    if (rank == 0) {
      // Two pooled transfers per message (sender-side recycle at isend
      // initiation + receiver-side release after unpack) minus a few
      // cold-start allocations.
      EXPECT_GE(comm.pool_reuses(), 2 * static_cast<i64>(n) * (rounds - 2));
      // The high-water mark proves pooling engaged AND stayed bounded
      // (release_buffer frees anything beyond 64 buffers per rank).
      EXPECT_GE(comm.pool_high_water(), 1);
      EXPECT_LE(comm.pool_high_water(), 64);
    }
  });
}

TEST(MpisimStress, SendOnlyRanksStillGetPoolHits) {
  // Regression test for the pool bug the eager isend protocol fixes: a
  // pure producer rank never receives, so before the fix its pool never
  // got a buffer back and every send allocated.  With isend the buffer
  // returns to the sender's own pool at initiation.
  run_ranks(2, [](int rank, Comm& comm) {
    const int sends = 50;
    if (rank == 0) {
      for (int i = 0; i < sends; ++i) {
        std::vector<double> buf = comm.acquire_buffer(0, 128);
        buf.assign(128, static_cast<double>(i));
        comm.isend(0, 1, i, std::move(buf));
      }
    } else {
      for (int i = 0; i < sends; ++i) {
        std::vector<double> got = comm.recv(1, 0, i);
        EXPECT_EQ(got[0], static_cast<double>(i));
        comm.release_buffer(1, std::move(got));
      }
    }
    comm.barrier(rank);
    if (rank == 0) {
      // All but the first acquisition on the sender are pool hits (the
      // receiver side contributes its own on top).
      EXPECT_GE(comm.pool_reuses(), sends - 1);
    }
  });
}

TEST(MpisimStress, AbortRacingSendRecvBarrier) {
  // One rank dies mid-run while the others keep pumping send/recv and
  // entering barriers; every survivor must get Error (no deadlock, no
  // silent enqueue into a dead communicator) and run_ranks rethrows the
  // original failure.
  const int n = 6;
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        run_ranks(n,
                  [&](int rank, Comm& comm) {
                    if (rank == 0) {
                      throw Error("rank 0 died");
                    }
                    const int dst = 1 + (rank % (n - 1));
                    for (int i = 0;; ++i) {
                      comm.send(rank, dst, /*tag=*/i % 3,
                                {static_cast<double>(i)});
                      if (comm.probe(rank, dst, i % 3)) {
                        comm.recv(rank, dst, i % 3);
                      }
                      if (i % 16 == 15) comm.barrier(rank);
                    }
                  }),
        Error);
  }
}

TEST(MpisimStress, StatsAreConsistentAfterStorm) {
  const int n = 4;
  run_ranks(n, [&](int rank, Comm& comm) {
    for (int dst = 0; dst < n; ++dst) {
      if (dst == rank) continue;
      comm.send(rank, dst, 0, {1.0, 2.0, 3.0});
    }
    for (int src = 0; src < n; ++src) {
      if (src == rank) continue;
      comm.recv(rank, src, 0);
    }
    comm.barrier(rank);
    EXPECT_EQ(comm.messages_sent(), n * (n - 1));
    EXPECT_EQ(comm.doubles_sent(), n * (n - 1) * 3);
  });
}

}  // namespace
}  // namespace ctile::mpisim
