// Randomized end-to-end property test: random loop nests (random depth,
// bounds, lexicographically-positive dependence sets), random legal
// tilings with integral P, random kernels — the parallel execution must
// equal the sequential one exactly, every time.
//
// This sweeps corners no hand-written case covers: ragged tile/space
// alignments, dependence sets that skip dimensions, meshes with extent 1,
// tile spaces with many empty shadow tiles.
#include <gtest/gtest.h>

#include <optional>

#include "deps/skew.hpp"
#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/parallel_executor.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

// A random affine kernel: out = sum w_l * dep_l + f(j); ICs random affine.
class RandomKernel final : public Kernel {
 public:
  RandomKernel(Rng& rng, int n, int q) {
    weights_.reserve(static_cast<std::size_t>(q));
    for (int l = 0; l < q; ++l) {
      weights_.push_back(0.1 + 0.8 / (1.0 + static_cast<double>(l)) *
                                   rng.uniform01());
    }
    for (int k = 0; k < n; ++k) {
      point_coeffs_.push_back(0.001 * static_cast<double>(rng.uniform(-5, 5)));
      ic_coeffs_.push_back(0.01 * static_cast<double>(rng.uniform(-9, 9)));
    }
  }

  int arity() const override { return 1; }

  void compute(const VecI& j, const double* dv, double* out) const override {
    double acc = 0.0;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      acc += weights_[l] * dv[l];
    }
    // Normalize so values stay bounded, then add a point-dependent term
    // making every iteration's result unique.
    acc /= static_cast<double>(weights_.size());
    for (std::size_t k = 0; k < point_coeffs_.size(); ++k) {
      acc += point_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

  void initial(const VecI& j, double* out) const override {
    double acc = 1.0;
    for (std::size_t k = 0; k < ic_coeffs_.size(); ++k) {
      acc += ic_coeffs_[k] * static_cast<double>(j[k]);
    }
    out[0] = acc;
  }

 private:
  std::vector<double> weights_;
  std::vector<double> point_coeffs_;
  std::vector<double> ic_coeffs_;
};

// Random lex-positive dependence with small components, first nonzero
// positive.
VecI random_dep(Rng& rng, int n) {
  for (;;) {
    VecI d(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) d[static_cast<std::size_t>(k)] = rng.uniform(-1, 2);
    if (lex_positive(d)) return d;
  }
}

// Random integral-P tiling legal for deps; tile extents kept small but
// >= the transformed dependence lengths (the LDS requirement).
std::optional<TilingTransform> random_tiling(Rng& rng, int n,
                                             const MatI& deps) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    MatI p(n, n);
    // Lower-triangular-ish P with positive diagonal keeps tiles sane.
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c) {
          p(r, c) = rng.uniform(3, 6);
        } else if (rng.chance(0.3)) {
          p(r, c) = rng.uniform(-2, 2);
        }
      }
    }
    if (det(p) == 0) continue;
    MatQ h = inverse(to_rat(p));
    if (!tiling_legal(h, deps)) continue;
    TilingTransform t(h);
    // LDS constraints: c_k | v_k and d'_max <= v_k.
    if (!t.strides_compatible()) continue;
    MatI dprime = mul(t.Hp(), deps);
    bool fits = true;
    for (int k = 0; k < n && fits; ++k) {
      for (int l = 0; l < dprime.cols(); ++l) {
        if (dprime(k, l) > t.v(k)) fits = false;
      }
    }
    if (!fits) continue;
    return t;
  }
  return std::nullopt;
}

TEST(RandomE2E, ParallelEqualsSequentialAcrossRandomInstances) {
  Rng rng(20260706);
  int executed = 0;
  int attempts = 0;
  while (executed < 25 && attempts < 400) {
    ++attempts;
    const int n = static_cast<int>(rng.uniform(2, 3));
    const int q = static_cast<int>(rng.uniform(1, 4));
    MatI deps(n, q);
    for (int c = 0; c < q; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) deps(r, c) = d[static_cast<std::size_t>(r)];
    }
    LoopNest nest;
    try {
      VecI lo(static_cast<std::size_t>(n)), hi(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        lo[static_cast<std::size_t>(k)] = rng.uniform(-3, 3);
        hi[static_cast<std::size_t>(k)] =
            lo[static_cast<std::size_t>(k)] + rng.uniform(4, 14);
      }
      nest = make_rectangular_nest("rand", lo, hi, deps);
    } catch (const LegalityError&) {
      continue;  // duplicate-column degeneracies etc.
    }
    std::optional<TilingTransform> tiling = random_tiling(rng, n, nest.deps);
    if (!tiling) continue;
    RandomKernel kernel(rng, n, q);
    TiledNest tiled(nest, std::move(*tiling));
    DataSpace seq = run_sequential(nest.space, nest.deps, kernel);
    ParallelExecutor exec(tiled, kernel);
    ParallelRunStats stats;
    DataSpace par = exec.run(&stats);
    EXPECT_EQ(stats.points_computed, nest.space.count_points());
    double diff = DataSpace::max_abs_diff(seq, par, nest.space);
    EXPECT_EQ(diff, 0.0) << "instance " << executed << "\nH =\n"
                         << tiled.transform().H().to_string() << "\nD =\n"
                         << nest.deps.to_string();
    // Property: the precomputed slot-table pack/unpack path is
    // bit-exactly interchangeable with the lattice-enumeration path —
    // same data space, same traffic — on every random tiling.
    exec.set_use_slot_tables(false);
    ParallelRunStats ref_stats;
    DataSpace ref = exec.run(&ref_stats);
    EXPECT_EQ(ref_stats.messages, stats.messages);
    EXPECT_EQ(ref_stats.doubles, stats.doubles);
    EXPECT_EQ(DataSpace::max_abs_diff(par, ref, nest.space), 0.0)
        << "slot-table path diverged from lattice enumeration, instance "
        << executed << "\nH =\n"
        << tiled.transform().H().to_string() << "\nD =\n"
        << nest.deps.to_string();
    ++executed;
  }
  EXPECT_GE(executed, 25) << "random generator starved (" << attempts
                          << " attempts)";
}

TEST(RandomE2E, SkewedRandomInstances) {
  // Same property after a random unimodular skew of the nest.
  Rng rng(424242);
  int executed = 0;
  int attempts = 0;
  while (executed < 10 && attempts < 300) {
    ++attempts;
    const int n = 2;
    MatI deps(n, 2);
    for (int c = 0; c < 2; ++c) {
      VecI d = random_dep(rng, n);
      for (int r = 0; r < n; ++r) deps(r, c) = d[static_cast<std::size_t>(r)];
    }
    LoopNest nest;
    try {
      nest = make_rectangular_nest("rs", {0, 0},
                                   {rng.uniform(5, 10), rng.uniform(5, 10)},
                                   deps);
    } catch (const LegalityError&) {
      continue;
    }
    // Random skew: identity plus one shear.
    MatI t = MatI::identity(n);
    t(1, 0) = rng.uniform(0, 2);
    LoopNest skewed;
    try {
      skewed = skew(nest, t);
    } catch (const LegalityError&) {
      continue;
    }
    std::optional<TilingTransform> tiling =
        random_tiling(rng, n, skewed.deps);
    if (!tiling) continue;
    RandomKernel kernel(rng, n, 2);
    TiledNest tiled(skewed, std::move(*tiling));
    DataSpace seq = run_sequential(skewed.space, skewed.deps, kernel);
    ParallelExecutor exec(tiled, kernel);
    DataSpace par = exec.run();
    EXPECT_EQ(DataSpace::max_abs_diff(seq, par, skewed.space), 0.0);
    ++executed;
  }
  EXPECT_GE(executed, 10);
}

}  // namespace
}  // namespace ctile
