// End-to-end coverage of the dimension-generic paths: the 2-deep heat
// nest (1-D processor mesh) and the 4-deep synthetic nest (3-D mesh),
// both through skewing, tiling, the parallel executor, and the cluster
// simulator.
#include <gtest/gtest.h>

#include <set>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"
#include "deps/skew.hpp"
#include "deps/tiling_cone.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

void expect_parallel_equals_sequential(const AppInstance& app, MatQ h,
                                       int force_m = -1) {
  TiledNest tiled(app.nest, TilingTransform(std::move(h)));
  DataSpace seq = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  ParallelExecutor exec(tiled, *app.kernel, force_m);
  DataSpace par = exec.run();
  EXPECT_EQ(DataSpace::max_abs_diff(seq, par, app.nest.space), 0.0);
}

TEST(Heat, SkewMakesDepsNonNegative) {
  AppInstance app = make_heat(6, 20);
  EXPECT_TRUE(all_deps_nonnegative(app.nest.deps));
  EXPECT_EQ(app.nest.space.count_points(), 6 * 20);
}

TEST(Heat, NonRectRowOnCone) {
  AppInstance app = make_heat(6, 20);
  ConeRays cone = tiling_cone(app.nest.deps);
  std::set<VecI> rays(cone.rays.begin(), cone.rays.end());
  EXPECT_TRUE(rays.count({2, -1}));
  EXPECT_TRUE(rays.count({0, 1}));
  EXPECT_TRUE(tiling_legal(heat_nonrect_h(2, 4), app.nest.deps));
  EXPECT_TRUE(tiling_legal(heat_rect_h(2, 4), app.nest.deps));
}

TEST(Heat, ParallelMatchesSequentialRect) {
  expect_parallel_equals_sequential(make_heat(6, 20), heat_rect_h(2, 4));
}

TEST(Heat, ParallelMatchesSequentialNonRect) {
  expect_parallel_equals_sequential(make_heat(6, 20), heat_nonrect_h(2, 4));
  expect_parallel_equals_sequential(make_heat(7, 23), heat_nonrect_h(3, 5),
                                    1);
}

TEST(Heat, SkewedEqualsOriginal) {
  AppInstance orig = make_heat_original(5, 12);
  AppInstance skewed = make_heat(5, 12);
  DataSpace a = run_sequential(orig.nest.space, orig.nest.deps, *orig.kernel);
  DataSpace b =
      run_sequential(skewed.nest.space, skewed.nest.deps, *skewed.kernel);
  MatI t = heat_skew_matrix();
  orig.nest.space.scan([&](const VecI& j) {
    VecI js{j[0], j[0] + j[1]};
    EXPECT_EQ(a.at(j)[0], b.at(js)[0]);
    (void)t;
  });
}

TEST(Heat, NonRectBeatsRectOnCluster) {
  // 2-D: mesh is 1-D along dim 0 (4 processors), chain along dim 1.
  // Compute is scaled up so tiles dominate per-message overheads (the
  // 2-D spaces are small); the cone-derived shape must still win.
  AppInstance app = make_heat(64, 1024);
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  machine.sec_per_iter = 3e-6;
  TiledNest rect(app.nest, TilingTransform(heat_rect_h(16, 64)));
  TiledNest nonrect(app.nest, TilingTransform(heat_nonrect_h(16, 64)));
  SimResult r = simulate_tiled_program(rect, machine, 1, 1);
  SimResult nr = simulate_tiled_program(nonrect, machine, 1, 1);
  EXPECT_GT(nr.speedup, r.speedup);
  EXPECT_GT(nr.speedup, 1.0);
}

TEST(Syn4d, LegalityAndConeMembership) {
  AppInstance app = make_syn4d(3, 4, 4, 4);
  EXPECT_TRUE(tiling_legal(syn4d_rect_h(2, 2, 2, 2), app.nest.deps));
  EXPECT_TRUE(tiling_legal(syn4d_nonrect_h(2, 2, 2, 2), app.nest.deps));
  // (1,-1,0,0) lies inside the cone (it is H_nr's first row direction)
  // but on a 2-face, not an extreme ray; verify membership and that all
  // returned rays satisfy the defining inequalities.
  ConeRays cone = tiling_cone(app.nest.deps);
  EXPECT_TRUE(in_cone(app.nest.deps.transposed(), {1, -1, 0, 0}));
  EXPECT_FALSE(cone.rays.empty());
  for (const VecI& ray : cone.rays) {
    EXPECT_TRUE(in_cone(app.nest.deps.transposed(), ray));
  }
}

TEST(Syn4d, ParallelMatchesSequentialRect) {
  expect_parallel_equals_sequential(make_syn4d(4, 4, 4, 4),
                                    syn4d_rect_h(2, 2, 2, 2), 0);
}

TEST(Syn4d, ParallelMatchesSequentialNonRect) {
  expect_parallel_equals_sequential(make_syn4d(4, 4, 4, 4),
                                    syn4d_nonrect_h(2, 2, 2, 2), 0);
}

TEST(Syn4d, NonDividingSizes) {
  expect_parallel_equals_sequential(make_syn4d(5, 3, 4, 5),
                                    syn4d_nonrect_h(2, 2, 3, 2), 0);
}

TEST(Syn4d, ThreeDimensionalMesh) {
  AppInstance app = make_syn4d(6, 4, 4, 4);
  TiledNest tiled(app.nest, TilingTransform(syn4d_rect_h(2, 2, 2, 2)));
  Mapping mapping(tiled, 0);
  EXPECT_EQ(static_cast<int>(mapping.grid().size()), 3);
  EXPECT_GT(mapping.num_procs(), 1);
}

TEST(Syn4d, ClusterSimRuns) {
  AppInstance app = make_syn4d(6, 6, 6, 6);
  TiledNest tiled(app.nest, TilingTransform(syn4d_nonrect_h(2, 2, 2, 2)));
  SimResult r = simulate_tiled_program(
      tiled, MachineModel::fast_ethernet_cluster(), 1, 0);
  EXPECT_GT(r.speedup, 0.0);
  EXPECT_EQ(r.total_points, app.nest.space.count_points());
}

}  // namespace
}  // namespace ctile
