#include "runtime/lds.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "apps/kernels.hpp"

namespace ctile {
namespace {

// Skewed SOR with the paper's non-rectangular tiling.
TiledNest sor_tiled(i64 m, i64 n, i64 x, i64 y, i64 z) {
  AppInstance app = make_sor(m, n);
  return TiledNest(app.nest, TilingTransform(sor_nonrect_h(x, y, z)));
}

// Skewed Jacobi (non-unit strides in the LDS).
TiledNest jacobi_tiled(i64 t, i64 ij, i64 x, i64 y, i64 z) {
  AppInstance app = make_jacobi(t, ij, ij);
  return TiledNest(app.nest, TilingTransform(jacobi_nonrect_h(x, y, z)));
}

TEST(Lds, GeometrySorNonRect) {
  TiledNest tiled = sor_tiled(8, 12, 4, 5, 6);
  Mapping mapping(tiled);
  LdsLayout lds(tiled, mapping);
  const int m = mapping.m();
  // Strides are all 1 (H' unimodular): condensation is dense.
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(lds.tile_slots(k), tiled.transform().v(k));
    EXPECT_EQ(lds.cc(k), tiled.transform().v(k) - lds.dep_max(k));
    if (k == m) {
      EXPECT_EQ(lds.off(k), tiled.transform().v(k));
      EXPECT_EQ(lds.extent(k),
                lds.off(k) + mapping.chain_length() * lds.tile_slots(k));
    } else {
      EXPECT_EQ(lds.off(k), lds.dep_max(k));
      EXPECT_EQ(lds.extent(k), lds.off(k) + lds.tile_slots(k));
    }
  }
  i64 expected = 1;
  for (int k = 0; k < 3; ++k) expected *= lds.extent(k);
  EXPECT_EQ(lds.size(), expected);
}

TEST(Lds, GeometryJacobiStrided) {
  TiledNest tiled = jacobi_tiled(6, 10, 2, 4, 3);
  Mapping mapping(tiled, 0);
  LdsLayout lds(tiled, mapping);
  // v = (4, 4, 3), c = (1, 2, 1): dimension 1 condenses 2:1.
  EXPECT_EQ(lds.tile_slots(0), 4);
  EXPECT_EQ(lds.tile_slots(1), 2);
  EXPECT_EQ(lds.tile_slots(2), 3);
}

TEST(Lds, RejectsIncompatibleStride) {
  // y = 5 odd: c_2 = 2 does not divide v_2 = 5.
  AppInstance app = make_jacobi(6, 10, 10);
  TiledNest tiled(app.nest, TilingTransform(jacobi_nonrect_h(2, 5, 3)));
  Mapping mapping(tiled, 0);
  EXPECT_THROW(LdsLayout(tiled, mapping), LegalityError);
}

TEST(Lds, RejectsTooSmallTile) {
  // SOR transformed deps reach 2 in dimension 2 (H' row3 . (1,0,2) = 1,
  // . (1,1,2) = 1 ...), and dim 0 deps reach 1; v_0 = 1 < would fail if a
  // dependence exceeds the extent.  Use z = 1 so v_2 = 1 < d'_2 max = 1?
  // d' max in dim 2 for SOR-nonrect is 1, so z = 1 is still legal; build
  // an artificial nest with a long dependence instead.
  LoopNest nest = make_rectangular_nest("long", {0, 0}, {15, 15},
                                        MatI{{3, 0}, {0, 1}});
  TiledNest tiled(nest, TilingTransform(MatQ{{Rat(1, 2), Rat(0)},
                                             {Rat(0), Rat(1, 4)}}));
  Mapping mapping(tiled, 1);
  EXPECT_THROW(LdsLayout(tiled, mapping), LegalityError);
}

TEST(Lds, MapInverseRoundTripSor) {
  TiledNest tiled = sor_tiled(6, 8, 3, 4, 5);
  Mapping mapping(tiled);
  LdsLayout lds(tiled, mapping);
  std::set<i64> used;
  for (i64 t = 0; t < mapping.chain_length(); ++t) {
    for_each_lattice_point(
        tiled.transform(), full_ttis_region(tiled.transform()),
        [&](const VecI& jp) {
          VecI jpp = lds.map(jp, t);
          EXPECT_TRUE(lds.is_compute_slot(jpp));
          i64 linear = lds.linear(jpp);
          EXPECT_TRUE(used.insert(linear).second) << "slot collision";
          auto [jp2, t2] = lds.map_inv(jpp);
          EXPECT_EQ(jp2, jp);
          EXPECT_EQ(t2, t);
          EXPECT_EQ(lds.delinearize(linear), jpp);
        });
  }
  // Exactly chain * tile_size compute slots are used.
  EXPECT_EQ(static_cast<i64>(used.size()),
            mapping.chain_length() * tiled.transform().tile_size());
}

TEST(Lds, MapInverseRoundTripJacobiStrided) {
  TiledNest tiled = jacobi_tiled(6, 10, 2, 4, 3);
  Mapping mapping(tiled, 0);
  LdsLayout lds(tiled, mapping);
  std::set<i64> used;
  for (i64 t = 0; t < mapping.chain_length(); ++t) {
    for_each_lattice_point(
        tiled.transform(), full_ttis_region(tiled.transform()),
        [&](const VecI& jp) {
          VecI jpp = lds.map(jp, t);
          EXPECT_TRUE(lds.is_compute_slot(jpp));
          EXPECT_TRUE(used.insert(lds.linear(jpp)).second);
          auto [jp2, t2] = lds.map_inv(jpp);
          EXPECT_EQ(jp2, jp);
          EXPECT_EQ(t2, t);
        });
  }
  EXPECT_EQ(static_cast<i64>(used.size()),
            mapping.chain_length() * tiled.transform().tile_size());
  // Compute slots are *all* recovered: every compute slot of the LDS is
  // hit exactly once (the condensation is bijective).
  i64 compute_slots = 0;
  for (i64 s = 0; s < lds.size(); ++s) {
    if (lds.is_compute_slot(lds.delinearize(s))) ++compute_slots;
  }
  EXPECT_EQ(compute_slots, static_cast<i64>(used.size()));
}

TEST(Lds, HaloAndComputeRegionsDisjoint) {
  TiledNest tiled = sor_tiled(6, 8, 3, 4, 5);
  Mapping mapping(tiled);
  LdsLayout lds(tiled, mapping);
  // Slots reached by map() with negative (halo) TTIS coordinates fall
  // outside the compute region.
  VecI jp(3, 0);
  jp[0] = -1;  // one left of the tile in dimension 0
  if (mapping.m() != 0) {
    VecI jpp = lds.map(jp, 0);
    EXPECT_FALSE(lds.is_compute_slot(jpp));
  }
}

TEST(Lds, SlotAtFastPathArithmetic) {
  // slot_at is the fast paths' base + precomputed-delta arithmetic.  In
  // release it is a plain add — transiently out-of-window sums are legal
  // for a base the caller then offsets back in range — while under
  // CTILE_CHECKED_LDS the sum is overflow-checked and bounds-asserted
  // (satellite of DESIGN.md §8 / ctile-verify rule V2).
  TiledNest tiled = sor_tiled(6, 8, 3, 4, 5);
  Mapping mapping(tiled);
  LdsLayout lds(tiled, mapping);
  ASSERT_GT(lds.size(), 2);
  EXPECT_EQ(lds.slot_at(0, 1), 1);
  EXPECT_EQ(lds.slot_at(1, -1), 0);
  EXPECT_EQ(lds.slot_at(lds.size() - 2, 1), lds.size() - 1);
#if defined(CTILE_CHECKED_LDS)
  // Overflow in the sum throws before the bounds assert can misfire on
  // a wrapped value.
  EXPECT_THROW(lds.slot_at(std::numeric_limits<i64>::max(), 1),
               OverflowError);
  // Out-of-window sums abort (CTILE_ASSERT_MSG), which gtest observes
  // as death.
  EXPECT_DEATH(lds.slot_at(3, -5), "LDS slot outside the window array");
  EXPECT_DEATH(lds.slot_at(lds.size() - 1, 1),
               "LDS slot outside the window array");
#else
  // Release: the raw add, including transiently negative results.
  EXPECT_EQ(lds.slot_at(3, -5), -2);
  EXPECT_EQ(lds.slot_at(lds.size() - 1, 2), lds.size() + 1);
#endif
}

TEST(Lds, ChainContiguityInM) {
  // Reading jp with negative m-coordinate from chain position t lands in
  // the slots of chain position t-1: the paper's "contiguous chain"
  // property that makes intra-processor dependencies message-free.
  TiledNest tiled = sor_tiled(6, 8, 3, 4, 5);
  Mapping mapping(tiled);
  LdsLayout lds(tiled, mapping);
  const int m = mapping.m();
  const TilingTransform& tf = tiled.transform();
  for_each_lattice_point(tf, full_ttis_region(tf), [&](const VecI& jp) {
    VecI shifted = jp;
    shifted[static_cast<std::size_t>(m)] -= tf.v(m);
    EXPECT_EQ(lds.map(shifted, 2), lds.map(jp, 1));
  });
}

}  // namespace
}  // namespace ctile
