// Static const-audit of the shared-plan surface (satellite of the
// V6-V8 verifier work): N executors on N threads hold one plan through
// shared_ptr<const CompiledPlan>, so thread safety of the warm path
// rests on everything reachable from a const plan being read-only.
// These static_asserts pin that contract at compile time: every
// accessor is const-qualified and returns a const reference (or a
// value), the plan is neither copyable nor movable once built, and the
// ONLY mutable island is the verify-gate memo — a mutex-guarded
// verdict cache whose const methods are the documented exception
// (compiled_plan.hpp, "Memoized verify-before-run verdict").
#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <utility>

#include "apps/kernels.hpp"
#include "mpisim/mpisim.hpp"
#include "runtime/compiled_plan.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

using ConstPlan = const CompiledPlan&;

// ---- Plan-level accessors: const-invocable, const-ref or value returns.
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().tiled()),
                             const TiledNest&>);
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().knobs()),
                             const LoweringKnobs&>);
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().census()),
                             const TileCensus&>);
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().mapping()),
                             const Mapping&>);
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().lds()),
                             const LdsLayout&>);
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().comm_plan()),
                             const CommPlan&>);
static_assert(
    std::is_same_v<decltype(std::declval<ConstPlan>().pack_regions()),
                   const std::vector<TtisRegion>&>);
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().band()),
                             const BandSplit&>);
static_assert(std::is_same_v<decltype(std::declval<ConstPlan>().classifier()),
                             const TileClassifier&>);
static_assert(
    std::is_same_v<decltype(std::declval<ConstPlan>().local_for(i64{1})),
                   const CompiledPlan::RankLocal&>);
static_assert(
    std::is_same_v<decltype(std::declval<ConstPlan>().plane_parallel()),
                   bool>);
static_assert(
    std::is_same_v<decltype(std::declval<ConstPlan>().phase_times()),
                   const PlanPhaseTimes&>);
// window_layouts hands out const layout pointers only.
static_assert(
    std::is_same_v<decltype(std::declval<ConstPlan>().window_layouts()),
                   std::vector<std::pair<i64, const LdsLayout*>>>);

// ---- The plan itself can be neither copied nor moved: a shared
// lowering ages as one object at one address.
static_assert(!std::is_copy_constructible_v<CompiledPlan>);
static_assert(!std::is_copy_assignable_v<CompiledPlan>);
static_assert(!std::is_move_constructible_v<CompiledPlan>);
static_assert(!std::is_move_assignable_v<CompiledPlan>);

// ---- The gate memo is the one intentional mutable island: const-
// invocable by design, internally serialized by its own mutex.
static_assert(
    std::is_invocable_v<decltype(&CompiledPlan::run_gate_memoized),
                        ConstPlan, const std::function<void()>&>);
static_assert(
    std::is_invocable_v<decltype(&CompiledPlan::invalidate_gate_memo),
                        ConstPlan>);

// ---- The per-window RankLocal reached through local_for: all further
// hops are values or const-qualified.
// (Double parens: decltype of the parenthesized member access sees the
// const lvalue the executor actually reads through, not the member's
// declared type.)
using ConstLocal = const CompiledPlan::RankLocal&;
static_assert(std::is_same_v<decltype((std::declval<ConstLocal>().layout)),
                             const LdsLayout&>);
static_assert(std::is_same_v<decltype((std::declval<ConstLocal>().slots)),
                             const CommSlotTable&>);
static_assert(
    std::is_same_v<decltype((std::declval<ConstLocal>().rows)),
                   const std::vector<CompiledPlan::SweepRow>&>);
static_assert(std::is_same_v<decltype((std::declval<ConstLocal>().deltas)),
                             const std::vector<i64>&>);
static_assert(std::is_same_v<decltype((std::declval<ConstLocal>().alias)),
                             const std::vector<i64>&>);

// ---- LdsLayout: the addressing surface the sweeps hammer is fully
// const (row_slot / slot_at / check_slot are read-only arithmetic).
using ConstLds = const LdsLayout&;
static_assert(std::is_same_v<
              decltype(std::declval<ConstLds>().row_slot(0, 0, 0, 1)), i64>);
static_assert(
    std::is_same_v<decltype(std::declval<ConstLds>().slot_at(0, 0)), i64>);
static_assert(std::is_same_v<decltype(std::declval<ConstLds>().stride(0)),
                             i64>);
static_assert(
    std::is_same_v<decltype(std::declval<ConstLds>().chain_step()), i64>);

// ---- mpisim's pool discipline is a compile-time constant: the V7
// facts the verifier snapshots cannot drift at runtime.
static_assert(
    std::is_same_v<decltype(mpisim::kPoolDiscipline),
                   const mpisim::PoolDiscipline>);

// The asserts above are the test; one runtime case keeps the binary a
// real gtest target and exercises the audited surface end to end.
TEST(PlanConstAudit, SharedConstPlanServesTwoExecutors) {
  AppInstance app = make_sor(6, 9);
  LoweringKnobs knobs;
  knobs.force_m = 2;
  std::shared_ptr<const CompiledPlan> plan = CompiledPlan::compile_parallel(
      TiledNest(app.nest, TilingTransform(sor_rect_h(2, 3, 4))), knobs);
  ParallelExecutor a(plan, *app.kernel);
  ParallelExecutor b(plan, *app.kernel);
  const DataSpace da = a.run();
  const DataSpace db = b.run();
  EXPECT_EQ(plan.use_count(), 3);  // cache-free: two executors + local
  (void)da;
  (void)db;
}

}  // namespace
}  // namespace ctile
