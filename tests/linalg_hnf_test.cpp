#include "linalg/hnf.hpp"

#include <gtest/gtest.h>

#include "linalg/int_matops.hpp"
#include "support/rng.hpp"

namespace ctile {
namespace {

void check_hnf(const MatI& a) {
  HnfResult r = hermite_normal_form(a);
  EXPECT_TRUE(is_hnf(r.h)) << r.h;
  EXPECT_TRUE(is_unimodular(r.u)) << r.u;
  EXPECT_EQ(mul(a, r.u), r.h);
  // |det| is preserved by unimodular column operations.
  EXPECT_EQ(abs_ck(det(a)), det(r.h));
}

TEST(Hnf, Identity) {
  HnfResult r = hermite_normal_form(MatI::identity(3));
  EXPECT_EQ(r.h, MatI::identity(3));
  EXPECT_EQ(r.u, MatI::identity(3));
}

TEST(Hnf, AlreadyLowerTriangular) {
  MatI a{{2, 0}, {1, 3}};
  HnfResult r = hermite_normal_form(a);
  EXPECT_EQ(r.h, a);
}

TEST(Hnf, PaperJacobiExample) {
  // H' for the Jacobi non-rectangular tiling with x=1: rows (2,-1,0),
  // (0,1,0), (0,0,1).  Expected HNF diag (1,2,1) with h~(1,0) = 1 —
  // exactly the strides c=(1,2,1) and offset a_21=1 discussed in the
  // paper's Figure 2 setting.
  MatI hp{{2, -1, 0}, {0, 1, 0}, {0, 0, 1}};
  HnfResult r = hermite_normal_form(hp);
  EXPECT_EQ(r.h(0, 0), 1);
  EXPECT_EQ(r.h(1, 1), 2);
  EXPECT_EQ(r.h(2, 2), 1);
  EXPECT_EQ(r.h(1, 0), 1);
  check_hnf(hp);
}

TEST(Hnf, SorNonRectExample) {
  // H' for the SOR non-rectangular tiling: unimodular, HNF is identity.
  MatI hp{{1, 0, 0}, {0, 1, 0}, {-1, 0, 1}};
  HnfResult r = hermite_normal_form(hp);
  EXPECT_EQ(r.h, MatI::identity(3));
  check_hnf(hp);
}

TEST(Hnf, NegativeDiagonalGetsFlipped) {
  MatI a{{-2, 0}, {0, -3}};
  HnfResult r = hermite_normal_form(a);
  EXPECT_EQ(r.h, (MatI{{2, 0}, {0, 3}}));
}

TEST(Hnf, SingularThrows) {
  EXPECT_THROW(hermite_normal_form(MatI{{1, 2}, {2, 4}}), LegalityError);
}

TEST(Hnf, OffDiagonalReduction) {
  // The left-of-diagonal entries must be reduced into [0, diag).
  MatI a{{3, 0}, {7, 5}};
  HnfResult r = hermite_normal_form(a);
  EXPECT_EQ(r.h(0, 0), 3);
  EXPECT_GE(r.h(1, 0), 0);
  EXPECT_LT(r.h(1, 0), r.h(1, 1));
  check_hnf(a);
}

TEST(Hnf, RandomizedProperties) {
  Rng rng(2024);
  int nonsingular = 0;
  for (int trial = 0; trial < 400; ++trial) {
    int n = static_cast<int>(rng.uniform(1, 5));
    MatI m(n, n);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c) m(r, c) = rng.uniform(-8, 8);
    if (det(m) == 0) continue;
    ++nonsingular;
    check_hnf(m);
  }
  EXPECT_GT(nonsingular, 250);
}

TEST(Hnf, UniquenessUnderUnimodularColumnOps) {
  // A and A*W (W unimodular) generate the same column lattice, so they
  // must have the same HNF.
  Rng rng(31337);
  for (int trial = 0; trial < 100; ++trial) {
    int n = static_cast<int>(rng.uniform(2, 4));
    MatI m(n, n);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c) m(r, c) = rng.uniform(-5, 5);
    if (det(m) == 0) continue;
    // Random unimodular W: product of elementary column operations.
    MatI w = MatI::identity(n);
    for (int k = 0; k < 6; ++k) {
      int i = static_cast<int>(rng.uniform(0, n - 1));
      int j = static_cast<int>(rng.uniform(0, n - 1));
      if (i == j) continue;
      i64 f = rng.uniform(-3, 3);
      for (int r = 0; r < n; ++r)
        w(r, j) = add_ck(w(r, j), mul_ck(f, w(r, i)));
    }
    EXPECT_EQ(hermite_normal_form(m).h, hermite_normal_form(mul(m, w)).h);
  }
}

TEST(Hnf, IsHnfPredicate) {
  EXPECT_TRUE(is_hnf(MatI::identity(2)));
  EXPECT_TRUE(is_hnf(MatI{{2, 0}, {1, 3}}));
  EXPECT_FALSE(is_hnf(MatI{{2, 1}, {0, 3}}));    // upper entry nonzero
  EXPECT_FALSE(is_hnf(MatI{{2, 0}, {3, 3}}));    // not reduced
  EXPECT_FALSE(is_hnf(MatI{{-2, 0}, {0, 3}}));   // negative diagonal
  EXPECT_FALSE(is_hnf(MatI{{2, 0}, {-1, 3}}));   // negative sub-diagonal
  EXPECT_FALSE(is_hnf(MatI{{1, 2, 3}}));         // not square
}

}  // namespace
}  // namespace ctile
