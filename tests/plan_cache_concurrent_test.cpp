// Concurrency tests for the PlanCache and the shared-CompiledPlan
// execution model: N threads hammering one cache must lower each
// distinct key exactly once, every executor adopting a cached plan must
// produce data spaces bitwise identical to a cold-built executor (across
// exec policies and both mpisim backends), the ctile-verify pre-run gate
// must run once per plan (with set_reverify as the escape hatch), and
// autotune queries must hit the cache on repeats.
//
// This binary runs under TSan in CI (minus *EventBackend* — ucontext
// fibers and TSan don't mix), so it doubles as the data-race proof for
// the single-flight lowering and the gate memo.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "apps/kernels.hpp"
#include "cluster/autotune.hpp"
#include "runtime/parallel_executor.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/sequential_tiled.hpp"

namespace ctile {
namespace {

struct Config {
  std::string name;
  AppInstance app;
  MatQ h;
  int force_m;
};

std::vector<Config> paper_configs() {
  std::vector<Config> configs;
  configs.push_back({"sor-rect", make_sor(24, 48), sor_rect_h(6, 18, 8), 2});
  configs.push_back(
      {"sor-nonrect", make_sor(24, 48), sor_nonrect_h(6, 18, 8), 2});
  configs.push_back({"jacobi-nonrect", make_jacobi(12, 16, 12),
                     jacobi_nonrect_h(3, 4, 4), -1});
  configs.push_back({"adi-nr1", make_adi(16, 16), adi_nr1_h(4, 4, 4), -1});
  configs.push_back({"adi-nr3", make_adi(16, 16), adi_nr3_h(4, 4, 4), -1});
  return configs;
}

LoweringKnobs knobs_for(int force_m) {
  LoweringKnobs knobs;
  knobs.force_m = force_m;
  return knobs;
}

TEST(PlanCacheConcurrent, SameKeyLowersExactlyOnce) {
  const AppInstance app = make_sor(24, 48);
  const PlanKey key = make_plan_key(app.nest, sor_rect_h(6, 18, 8),
                                    CompiledPlan::Kind::kParallel,
                                    knobs_for(2));
  PlanCache cache;
  std::atomic<int> lowerings{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CompiledPlan>> plans(kThreads);
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      plans[static_cast<std::size_t>(w)] = cache.get_or_lower(key, [&] {
        lowerings.fetch_add(1);
        return CompiledPlan::compile_parallel(app.nest, sor_rect_h(6, 18, 8),
                                              knobs_for(2));
      });
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(lowerings.load(), 1);
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(plans[static_cast<std::size_t>(w)], plans[0])
        << "thread " << w << " got a different plan object";
  }
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheConcurrent, MixedWorkloadSharedCacheBitwiseClean) {
  const std::vector<Config> configs = paper_configs();
  // Cold-built references, one per config, lowered outside the cache.
  std::vector<DataSpace> reference;
  for (const Config& cfg : configs) {
    TiledNest tiled(cfg.app.nest, TilingTransform(cfg.h));
    ParallelExecutor exec(tiled, *cfg.app.kernel, cfg.force_m);
    exec.set_exec_policy(exec::Policy::kSequential);
    reference.push_back(exec.run());
  }

  PlanCache cache;
  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Stagger the order so threads collide on different keys.
        const std::size_t i =
            (static_cast<std::size_t>(w) + static_cast<std::size_t>(round)) %
            configs.size();
        const Config& cfg = configs[i];
        auto plan = cache.parallel_plan(cfg.app.nest, cfg.h,
                                        knobs_for(cfg.force_m));
        ParallelExecutor exec(plan, *cfg.app.kernel);
        exec.set_exec_policy(round % 2 == 0 ? exec::Policy::kSimd
                                            : exec::Policy::kSequential);
        const DataSpace out = exec.run();
        if (DataSpace::max_abs_diff(out, reference[i],
                                    cfg.app.nest.space) != 0.0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<i64>(configs.size()));
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRoundsPerThread);
  EXPECT_EQ(cache.size(), configs.size());
}

TEST(PlanCacheConcurrent, ThreadPoolPolicyOnCachedPlanBitwiseClean) {
  // The plane fan-out policy on a shared plan: per-run state must be
  // fully executor-local for this to be clean.
  const Config cfg = paper_configs()[0];
  PlanCache cache;
  auto plan = cache.parallel_plan(cfg.app.nest, cfg.h,
                                  knobs_for(cfg.force_m));
  TiledNest tiled(cfg.app.nest, TilingTransform(cfg.h));
  ParallelExecutor cold(tiled, *cfg.app.kernel, cfg.force_m);
  const DataSpace ref = cold.run();
  ParallelExecutor warm(plan, *cfg.app.kernel);
  warm.set_exec_policy(exec::Policy::kThreadPool);
  EXPECT_EQ(DataSpace::max_abs_diff(warm.run(), ref, cfg.app.nest.space),
            0.0);
}

// Named *EventBackend* so the TSan CI job can exclude it (ucontext
// fibers are invisible to TSan's shadow stack).
TEST(PlanCacheEventBackend, CachedPlanBitwiseCleanOnEventBackend) {
  for (const Config& cfg : paper_configs()) {
    PlanCache cache;
    auto plan = cache.parallel_plan(cfg.app.nest, cfg.h,
                                    knobs_for(cfg.force_m));
    TiledNest tiled(cfg.app.nest, TilingTransform(cfg.h));
    ParallelExecutor cold(tiled, *cfg.app.kernel, cfg.force_m);
    cold.set_comm_backend(mpisim::Backend::kThread);
    const DataSpace ref = cold.run();
    ParallelExecutor warm(plan, *cfg.app.kernel);
    warm.set_comm_backend(mpisim::Backend::kEvent, 7);
    EXPECT_EQ(DataSpace::max_abs_diff(warm.run(), ref, cfg.app.nest.space),
              0.0)
        << cfg.name << ": event-backend run on cached plan diverged";
  }
}

TEST(PlanCacheConcurrent, SequentialPlanSharedAcrossExecutors) {
  const AppInstance app = make_sor(16, 24);
  const MatQ h = sor_nonrect_h(4, 10, 6);
  PlanCache cache;
  bool was_hit = false;
  auto plan = cache.sequential_plan(app.nest, h, &was_hit);
  EXPECT_FALSE(was_hit);
  auto plan2 = cache.sequential_plan(app.nest, h, &was_hit);
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(plan, plan2);
  TiledNest tiled(app.nest, TilingTransform(h));
  SequentialTiledExecutor cold(tiled, *app.kernel);
  SequentialTiledExecutor warm(plan, *app.kernel);
  EXPECT_EQ(DataSpace::max_abs_diff(warm.run(), cold.run(), app.nest.space),
            0.0);
}

TEST(PlanCacheConcurrent, FailedLoweringIsNotCachedAndRethrows) {
  const AppInstance app = make_sor(16, 24);
  const PlanKey key = make_plan_key(app.nest, sor_rect_h(4, 6, 4),
                                    CompiledPlan::Kind::kParallel,
                                    knobs_for(2));
  PlanCache cache;
  std::atomic<int> attempts{0};
  auto failing = [&]() -> std::shared_ptr<const CompiledPlan> {
    attempts.fetch_add(1);
    throw LegalityError("synthetic lowering failure");
  };
  EXPECT_THROW(cache.get_or_lower(key, failing), LegalityError);
  EXPECT_THROW(cache.get_or_lower(key, failing), LegalityError);
  // Each failure re-ran the lowering: nothing poisonous was cached.
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().failures, 2);
  // A later legal lowering of the same key starts clean.
  auto plan = cache.get_or_lower(key, [&] {
    return CompiledPlan::compile_parallel(app.nest, sor_rect_h(4, 6, 4),
                                          knobs_for(2));
  });
  EXPECT_NE(plan, nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheConcurrent, GateRunsOncePerPlanAndReverifyEscapes) {
  const AppInstance app = make_sor(16, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 10, 6)));
  ParallelExecutor exec(tiled, *app.kernel);
  std::atomic<int> gate_runs{0};
  exec.set_pre_run_gate([&] { gate_runs.fetch_add(1); });
  exec.run();
  exec.run();
  // The verdict is memoized in the immutable plan: one proof, many runs.
  EXPECT_EQ(gate_runs.load(), 1);

  // Installing a gate on a sibling executor sharing the plan drops the
  // memoized verdict (a new gate is a new proof obligation), so the
  // sibling's gate runs exactly once and is memoized in turn.
  ParallelExecutor sibling(exec.compiled(), *app.kernel);
  std::atomic<int> sibling_runs{0};
  sibling.set_pre_run_gate([&] { sibling_runs.fetch_add(1); });
  sibling.run();
  sibling.run();
  EXPECT_EQ(sibling_runs.load(), 1);

  // set_reverify(true) bypasses the memo on every run.
  sibling.set_reverify(true);
  sibling.run();
  sibling.run();
  EXPECT_EQ(sibling_runs.load(), 3);
}

TEST(PlanCacheConcurrent, ThrowingGateMemoizesTheFailure) {
  const AppInstance app = make_sor(16, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 10, 6)));
  ParallelExecutor exec(tiled, *app.kernel);
  std::atomic<int> gate_runs{0};
  exec.set_pre_run_gate([&] {
    gate_runs.fetch_add(1);
    throw LegalityError("synthetic gate failure");
  });
  EXPECT_THROW(exec.run(), LegalityError);
  // The failure verdict replays without re-running the gate.
  EXPECT_THROW(exec.run(), LegalityError);
  EXPECT_EQ(gate_runs.load(), 1);
  // Installing a new gate drops the memoized verdict.
  exec.set_pre_run_gate([&] { gate_runs.fetch_add(1); });
  exec.run();
  EXPECT_EQ(gate_runs.load(), 2);
}

TEST(PlanCacheConcurrent, AutotuneHitsCacheOnRepeatedQueries) {
  const AppInstance app = make_sor(24, 48);
  AutotuneRequest req;
  req.tiling_for = [](i64 z) { return sor_nonrect_h(6, 18, z); };
  req.candidates = {4, 6, 8};
  req.chain_extent = 2 * 24 + 48;
  req.force_m = 2;
  req.arity = 1;
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {24, 48, 48};
  req.skew = sor_skew_matrix();
  PlanCache cache;
  req.cache = &cache;
  const MachineModel machine = MachineModel::fast_ethernet_cluster();
  const AutotuneResult first = autotune_tile_size(app.nest, req, machine);
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(first.cache_misses, 3);
  const AutotuneResult second = autotune_tile_size(app.nest, req, machine);
  EXPECT_EQ(second.cache_hits, 3);
  EXPECT_EQ(second.cache_misses, 0);
  EXPECT_EQ(second.best_factor, first.best_factor);
  EXPECT_EQ(second.best.makespan, first.best.makespan);
  EXPECT_GT(cache.stats().hit_rate(), 0.0);
}

TEST(PlanCacheConcurrent, CapacityEvictsFifoAndClearResets) {
  const std::vector<Config> configs = paper_configs();
  PlanCache cache;
  cache.set_capacity(2);
  for (const Config& cfg : configs) {
    cache.parallel_plan(cfg.app.nest, cfg.h, knobs_for(cfg.force_m));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions,
            static_cast<i64>(configs.size()) - 2);
  // The newest entry is resident; the oldest was evicted and re-lowers.
  const Config& newest = configs.back();
  const PlanKey newest_key =
      make_plan_key(newest.app.nest, newest.h, CompiledPlan::Kind::kParallel,
                    knobs_for(newest.force_m));
  EXPECT_NE(cache.lookup(newest_key), nullptr);
  const Config& oldest = configs.front();
  const PlanKey oldest_key =
      make_plan_key(oldest.app.nest, oldest.h, CompiledPlan::Kind::kParallel,
                    knobs_for(oldest.force_m));
  EXPECT_EQ(cache.lookup(oldest_key), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
}

}  // namespace
}  // namespace ctile
