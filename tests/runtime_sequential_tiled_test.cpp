// The reordering theorem in executable form: sequential tiled execution
// ([7], \S2.3) equals plain lexicographic execution bit-for-bit for every
// legal tiling of every app.
#include "runtime/sequential_tiled.hpp"

#include <gtest/gtest.h>

#include "apps/kernels.hpp"

namespace ctile {
namespace {

void expect_reordering_invariant(const AppInstance& app, MatQ h) {
  TiledNest tiled(app.nest, TilingTransform(std::move(h)));
  DataSpace plain = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  DataSpace tiled_order = run_sequential_tiled(tiled, *app.kernel);
  EXPECT_EQ(DataSpace::max_abs_diff(plain, tiled_order, app.nest.space), 0.0)
      << app.nest.name;
}

TEST(SequentialTiled, Sor) {
  expect_reordering_invariant(make_sor(5, 7), sor_rect_h(2, 3, 4));
  expect_reordering_invariant(make_sor(5, 7), sor_nonrect_h(2, 3, 4));
  expect_reordering_invariant(make_sor(6, 9), sor_nonrect_h(3, 4, 5));
}

TEST(SequentialTiled, JacobiStrided) {
  expect_reordering_invariant(make_jacobi(4, 8, 6), jacobi_nonrect_h(2, 4, 3));
}

TEST(SequentialTiled, AdiAllVariants) {
  for (MatQ h : {adi_rect_h(2, 2, 2), adi_nr1_h(2, 2, 2), adi_nr2_h(2, 2, 2),
                 adi_nr3_h(2, 3, 3)}) {
    expect_reordering_invariant(make_adi(4, 6), std::move(h));
  }
}

TEST(SequentialTiled, HeatAndSyn4d) {
  expect_reordering_invariant(make_heat(6, 20), heat_nonrect_h(2, 4));
  expect_reordering_invariant(make_syn4d(4, 4, 4, 4),
                              syn4d_nonrect_h(2, 2, 2, 2));
}

TEST(SequentialTiled, NonIntegralPAlsoWorks) {
  // The sequential tiled executor has no LDS, so it handles tilings the
  // parallel runtime rejects (non-integral P): the reordering is still
  // exact.
  MatI deps{{1, 0}, {0, 1}};
  AppInstance app;
  app.nest = make_rectangular_nest("nonintp", {0, 0}, {9, 9}, deps);
  struct K final : Kernel {
    int arity() const override { return 1; }
    void compute(const VecI& j, const double* dv,
                 double* out) const override {
      out[0] = 0.5 * dv[0] + 0.3 * dv[1] + 0.01 * static_cast<double>(j[0]);
    }
    void initial(const VecI& j, double* out) const override {
      out[0] = static_cast<double>(j[1]);
    }
  };
  app.kernel = std::make_shared<K>();
  // P = [[2, 0], [-1, 3/2]] (non-integral), legal for unit deps.
  MatQ h{{Rat(1, 2), Rat(0)}, {Rat(1, 3), Rat(2, 3)}};
  TilingTransform t(h);
  ASSERT_FALSE(t.p_integral());
  expect_reordering_invariant(app, h);
}

}  // namespace
}  // namespace ctile
