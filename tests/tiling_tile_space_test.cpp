#include "tiling/tile_space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "deps/skew.hpp"
#include "linalg/int_matops.hpp"

namespace ctile {
namespace {

MatQ rect_h(i64 x, i64 y) {
  return MatQ{{Rat(1, x), Rat(0)}, {Rat(0), Rat(1, y)}};
}

// Small skewed-SOR instance for 3-D tests.
LoopNest small_sor() {
  MatI deps{{0, 0, 1, 1, 1}, {1, 0, -1, 0, 0}, {0, 1, 0, -1, 0}};
  LoopNest orig = make_rectangular_nest("sor", {1, 1, 1}, {4, 6, 6}, deps);
  return skew(orig, MatI{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}});
}

MatQ sor_hnr(i64 x, i64 y, i64 z) {
  return MatQ{{Rat(1, x), Rat(0), Rat(0)},
              {Rat(0), Rat(1, y), Rat(0)},
              {Rat(-1, z), Rat(0), Rat(1, z)}};
}

TEST(TileSpace, RectangularCoversAllPoints) {
  LoopNest nest = make_rectangular_nest("r", {0, 0}, {9, 7},
                                        MatI{{1, 0}, {0, 1}});
  TiledNest tiled(nest, TilingTransform(rect_h(4, 3)));
  // Tile space: j1 in [0, 2], j2 in [0, 2].
  auto box = tiled.tile_space_box();
  EXPECT_EQ(box[0].lo, 0);
  EXPECT_EQ(box[0].hi, 2);
  EXPECT_EQ(box[1].lo, 0);
  EXPECT_EQ(box[1].hi, 2);
  // Sum of per-tile point counts equals the space size.
  i64 total = 0;
  tiled.tile_space().scan(
      [&](const VecI& js) { total += tiled.tile_point_count(js); });
  EXPECT_EQ(total, 80);
  EXPECT_EQ(tiled.total_points(), 80);
}

TEST(TileSpace, EveryPointFallsInScannedTile) {
  LoopNest nest = small_sor();
  TiledNest tiled(nest, TilingTransform(sor_hnr(2, 3, 4)));
  std::set<VecI> tiles;
  tiled.tile_space().scan([&](const VecI& js) { tiles.insert(js); });
  nest.space.scan([&](const VecI& j) {
    VecI js = tiled.transform().tile_of(j);
    EXPECT_TRUE(tiles.count(js))
        << "tile (" << js[0] << "," << js[1] << "," << js[2]
        << ") missing from tile space";
  });
}

TEST(TileSpace, PartitionOfIterationPoints) {
  LoopNest nest = small_sor();
  TiledNest tiled(nest, TilingTransform(sor_hnr(2, 3, 4)));
  std::set<VecI> covered;
  tiled.tile_space().scan([&](const VecI& js) {
    tiled.for_each_tile_point(js, [&](const VecI&, const VecI& j) {
      EXPECT_TRUE(covered.insert(j).second) << "duplicate point";
      EXPECT_EQ(tiled.transform().tile_of(j), js);
    });
  });
  EXPECT_EQ(static_cast<i64>(covered.size()), nest.space.count_points());
}

TEST(TileSpace, NonemptyDetectsBoundaryGhosts) {
  LoopNest nest = small_sor();
  TiledNest tiled(nest, TilingTransform(sor_hnr(2, 3, 4)));
  i64 nonempty = 0, empty = 0;
  tiled.tile_space().scan([&](const VecI& js) {
    if (tiled.tile_nonempty(js)) {
      ++nonempty;
      EXPECT_GT(tiled.tile_point_count(js), 0);
    } else {
      ++empty;
      EXPECT_EQ(tiled.tile_point_count(js), 0);
    }
  });
  EXPECT_GT(nonempty, 0);
  EXPECT_EQ(static_cast<i64>(tiled.nonempty_tiles().size()), nonempty);
  // The rational shadow may or may not include ghost tiles; both are
  // acceptable, but counts must be consistent.
  EXPECT_GE(empty, 0);
}

TEST(TileSpace, IllegalTilingRejected) {
  MatI deps{{0, 1}, {1, -1}};  // (0,1) and (1,-1)
  LoopNest nest = make_rectangular_nest("neg", {0, 0}, {7, 7}, deps);
  // Rectangular tiling is illegal: H d has a negative component.
  EXPECT_THROW(TiledNest(nest, TilingTransform(rect_h(2, 2))),
               LegalityError);
}

TEST(TileSpace, TileDepsRectangularUnitStencil) {
  // 2-D nest, deps (1,0) and (0,1), 2x2 tiles on an 8x8 space: tile
  // dependencies must be exactly {(1,0),(0,1)}.
  LoopNest nest = make_rectangular_nest("st", {0, 0}, {7, 7},
                                        MatI{{1, 0}, {0, 1}});
  TiledNest tiled(nest, TilingTransform(rect_h(2, 2)));
  const MatI& ds = tiled.tile_deps();
  std::set<VecI> cols;
  for (int c = 0; c < ds.cols(); ++c) cols.insert(ds.col(c));
  EXPECT_EQ(cols, (std::set<VecI>{{1, 0}, {0, 1}}));
}

TEST(TileSpace, TileDepsDiagonalDependence) {
  // Dependence (1,1) with 2x2 tiles: from interior points it stays in
  // tile or crosses one boundary; from the corner it reaches (1,1).
  LoopNest nest = make_rectangular_nest("diag", {0, 0}, {7, 7},
                                        MatI{{1, 1, 0}, {1, 0, 1}});
  TiledNest tiled(nest, TilingTransform(rect_h(2, 2)));
  const MatI& ds = tiled.tile_deps();
  std::set<VecI> cols;
  for (int c = 0; c < ds.cols(); ++c) cols.insert(ds.col(c));
  EXPECT_EQ(cols, (std::set<VecI>{{1, 0}, {0, 1}, {1, 1}}));
}

TEST(TileSpace, TileDepsMatchBruteForce) {
  LoopNest nest = small_sor();
  TiledNest tiled(nest, TilingTransform(sor_hnr(2, 3, 4)));
  // Brute force over the TIS: d^S = tile_of(j + d) for j in origin tile.
  const TilingTransform& t = tiled.transform();
  std::set<VecI> brute;
  for (const VecI& j : tis_points(t)) {
    for (int d = 0; d < nest.deps.cols(); ++d) {
      VecI js = t.tile_of(vec_add(j, nest.deps.col(d)));
      bool zero = std::all_of(js.begin(), js.end(),
                              [](i64 v) { return v == 0; });
      if (!zero) brute.insert(js);
    }
  }
  std::set<VecI> got;
  const MatI& ds = tiled.tile_deps();
  for (int c = 0; c < ds.cols(); ++c) got.insert(ds.col(c));
  EXPECT_EQ(got, brute);
}

TEST(TileSpace, TtisDepsNonNegative) {
  LoopNest nest = small_sor();
  TiledNest tiled(nest, TilingTransform(sor_hnr(2, 3, 4)));
  MatI dp = tiled.ttis_deps();
  for (int r = 0; r < dp.rows(); ++r) {
    for (int c = 0; c < dp.cols(); ++c) {
      EXPECT_GE(dp(r, c), 0);
    }
  }
  EXPECT_EQ(dp, mul(tiled.transform().Hp(), nest.deps));
}

TEST(TileSpace, LinkPolyhedronDimensions) {
  LoopNest nest = make_rectangular_nest("r", {0, 0}, {5, 5},
                                        MatI{{1, 0}, {0, 1}});
  TilingTransform t(rect_h(2, 3));
  Polyhedron link = tile_link_polyhedron(nest, t);
  EXPECT_EQ(link.dim(), 4);
  // (jS, j) = ((1, 0), (2, 1)) is consistent: j in tile (1, 0).
  EXPECT_TRUE(link.contains({1, 0, 2, 1}));
  EXPECT_FALSE(link.contains({0, 0, 2, 1}));  // wrong tile index
}

}  // namespace
}  // namespace ctile
