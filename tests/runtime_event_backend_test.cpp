// Cross-backend equivalence of the full tiled runtime (ISSUE 6
// acceptance): ParallelExecutor::run must produce bitwise-identical
// DataSpaces, identical message/double counts, and identical
// per-channel message traces whether the ranks are OS threads or event
// fibers — on every paper configuration — and the event backend's
// interleaving seed must not be able to change any of it.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

// Thread backend (the race-detection oracle) vs event backend under two
// different interleaving seeds: everything observable must match.
void check_cross_backend(const TiledNest& tiled, const Kernel& kernel,
                         int force_m = -1) {
  const LoopNest& nest = tiled.nest();
  ParallelExecutor exec(tiled, kernel, force_m);
  exec.set_trace_messages(true);

  exec.set_comm_backend(mpisim::Backend::kThread);
  ParallelRunStats thread_stats;
  DataSpace thread_ds = exec.run(&thread_stats);

  exec.set_comm_backend(mpisim::Backend::kEvent, /*seed=*/1);
  ParallelRunStats event_stats;
  DataSpace event_ds = exec.run(&event_stats);

  EXPECT_EQ(DataSpace::max_abs_diff(thread_ds, event_ds, nest.space), 0.0)
      << "event backend diverged from the thread oracle\nH =\n"
      << tiled.transform().H().to_string();
  EXPECT_EQ(thread_stats.messages, event_stats.messages);
  EXPECT_EQ(thread_stats.doubles, event_stats.doubles);
  EXPECT_EQ(thread_stats.points_computed, event_stats.points_computed);
  EXPECT_FALSE(thread_stats.traces.empty())
      << "paper configs communicate; an empty trace means tracing broke";
  EXPECT_EQ(thread_stats.traces, event_stats.traces)
      << "same messages, same channels, same per-channel order — "
         "violated across backends";

  // A different seed permutes the fiber interleaving; numerics and
  // traces must be untouched (the runtime's tag discipline makes the
  // program schedule-oblivious).
  exec.set_comm_backend(mpisim::Backend::kEvent, /*seed=*/1337);
  ParallelRunStats reseeded_stats;
  DataSpace reseeded_ds = exec.run(&reseeded_stats);
  EXPECT_EQ(DataSpace::max_abs_diff(event_ds, reseeded_ds, nest.space), 0.0)
      << "interleaving seed changed the numerics";
  EXPECT_EQ(event_stats.traces, reseeded_stats.traces);

  // The blocking reference schedule must agree across backends too.
  exec.set_use_overlap(false);
  exec.set_comm_backend(mpisim::Backend::kEvent, /*seed=*/1);
  DataSpace blocking_event = exec.run();
  EXPECT_EQ(DataSpace::max_abs_diff(thread_ds, blocking_event, nest.space),
            0.0);
}

TEST(EventBackend, SorRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  check_cross_backend(tiled, *app.kernel, /*force_m=*/2);
}

TEST(EventBackend, SorNonRect) {
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(4, 9, 6)));
  check_cross_backend(tiled, *app.kernel, /*force_m=*/2);
}

TEST(EventBackend, JacobiRectAndNonRect) {
  for (const MatQ& h : {jacobi_rect_h(2, 4, 3), jacobi_nonrect_h(2, 4, 3)}) {
    AppInstance app = make_jacobi(8, 16, 12);
    TiledNest tiled(app.nest, TilingTransform(h));
    check_cross_backend(tiled, *app.kernel);
  }
}

TEST(EventBackend, AdiAllFlavours) {
  for (const MatQ& h :
       {adi_rect_h(2, 4, 4), adi_nr1_h(2, 4, 4), adi_nr3_h(2, 4, 4)}) {
    AppInstance app = make_adi(8, 8);
    TiledNest tiled(app.nest, TilingTransform(h));
    check_cross_backend(tiled, *app.kernel);
  }
}

TEST(EventBackend, LatencyModelStaysBitwiseEquivalent) {
  // With a transfer-latency model the event backend pays the cost in
  // virtual time (the thread backend in real sleeps); the numerics and
  // traces must still match bitwise.
  AppInstance app = make_sor(12, 24);
  TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
  ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
  exec.set_trace_messages(true);
  mpisim::LatencyModel model;
  model.per_message_s = 50e-6;
  model.per_double_s = 1e-7;
  exec.set_latency_model(model);

  exec.set_comm_backend(mpisim::Backend::kThread);
  ParallelRunStats thread_stats;
  DataSpace thread_ds = exec.run(&thread_stats);
  exec.set_comm_backend(mpisim::Backend::kEvent, /*seed=*/5);
  ParallelRunStats event_stats;
  DataSpace event_ds = exec.run(&event_stats);
  EXPECT_EQ(DataSpace::max_abs_diff(thread_ds, event_ds, app.nest.space),
            0.0);
  EXPECT_EQ(thread_stats.traces, event_stats.traces);
}

}  // namespace
}  // namespace ctile
