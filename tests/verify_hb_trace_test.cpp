// Dynamic cross-validation of the static happens-before graph (V6):
// the event backend's totally-ordered communication log must be a
// LINEARIZATION of the HB graph built from the PlanModel alone — no log
// entry may precede an event that happens-before it.  A static graph
// that disagreed with what the scheduler actually does would prove the
// wrong schedule safe; this test pins the two together on every paper
// configuration.
#include <gtest/gtest.h>

#include <vector>

#include "apps/kernels.hpp"
#include "linalg/int_matops.hpp"
#include "runtime/parallel_executor.hpp"
#include "verify/hb_graph.hpp"
#include "verify/plan_model.hpp"

namespace ctile {
namespace {

using mpisim::Comm;
using verify::HbGraph;
using verify::HbPhase;
using verify::PlanModel;

/// Decode each (src, dst, tag) log entry into its HB-graph event: sends
/// map to the sender tile's kPackSend, receives to the receiver tile's
/// kUnpack of the matching dependence.
std::vector<int> decode_log(const std::vector<Comm::TraceEvent>& log,
                            const PlanModel& pm, const Mapping& mapping,
                            const HbGraph& graph) {
  std::vector<int> ids;
  ids.reserve(log.size());
  for (const Comm::TraceEvent& ev : log) {
    const int dir = static_cast<int>(ev.tag / pm.chain_length);
    const i64 t = ev.tag % pm.chain_length;
    const VecI sender = mapping.tile_at(mapping.pid_of(ev.src), t);
    if (ev.kind == Comm::TraceEvent::Kind::kSend) {
      ids.push_back(graph.find(sender, HbPhase::kPackSend, dir));
      continue;
    }
    // Receive: the consumer is the lexicographically minimum valid
    // successor of the sender in this direction (the executor's receive
    // predicate), unpacking through the dependence that generated it.
    int id = -1;
    VecI recv;
    if (pm.minsucc(sender, dir, &recv)) {
      for (std::size_t di = 0; di < pm.tile_deps.size() && id < 0; ++di) {
        const verify::TileDepModel& dep = pm.tile_deps[di];
        if (dep.dir != dir) continue;
        if (vec_sub(recv, dep.ds) != sender) continue;
        id = graph.find(recv, HbPhase::kUnpack, static_cast<int>(di));
      }
    }
    ids.push_back(id);
  }
  return ids;
}

void expect_linearization(const AppInstance& app, const MatQ& h, int force_m,
                          const char* what) {
  const TiledNest tiled(app.nest, TilingTransform(h));
  ParallelExecutor exec(tiled, *app.kernel, force_m);
  exec.set_comm_backend(mpisim::Backend::kEvent, /*seed=*/7);
  exec.set_trace_messages(true);
  ParallelRunStats stats;
  exec.run(&stats);
  ASSERT_FALSE(stats.events.empty()) << what << ": no messages traced";

  PlanModel pm = verify::snapshot_compiled(*exec.compiled());
  pm.pipelined = exec.use_overlap();
  const HbGraph graph = verify::build_hb_graph(pm);
  const std::vector<int> ids =
      decode_log(stats.events, pm, exec.mapping(), graph);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_GE(ids[i], 0)
        << what << ": log entry " << i << " (src=" << stats.events[i].src
        << " dst=" << stats.events[i].dst << " tag=" << stats.events[i].tag
        << ") has no HB-graph event — the static model misses a "
           "communication the scheduler performed";
  }
  // Linearization: no entry may appear before an entry that
  // happens-before it.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (ids[i] == ids[j]) continue;
      EXPECT_FALSE(graph.reaches(ids[j], ids[i]))
          << what << ": log order violates happens-before: entry " << j
          << " (" << graph.event(ids[j]).to_string() << ") precedes entry "
          << i << " (" << graph.event(ids[i]).to_string()
          << ") in the HB graph but follows it in the scheduler's log";
    }
  }
}

TEST(VerifyHbTrace, SorRect) {
  const AppInstance app = make_sor(6, 9);
  expect_linearization(app, sor_rect_h(2, 3, 4), 2, "SOR rect");
}

TEST(VerifyHbTrace, SorNonrect) {
  const AppInstance app = make_sor(6, 9);
  expect_linearization(app, sor_nonrect_h(2, 3, 4), 2, "SOR nonrect");
}

TEST(VerifyHbTrace, JacobiRect) {
  const AppInstance app = make_jacobi(4, 8, 8);
  expect_linearization(app, jacobi_rect_h(2, 4, 3), 0, "Jacobi rect");
}

TEST(VerifyHbTrace, AdiNr2) {
  const AppInstance app = make_adi(4, 6);
  expect_linearization(app, adi_nr2_h(2, 3, 3), 0, "ADI nr2");
}

TEST(VerifyHbTrace, HeatRect) {
  const AppInstance app = make_heat(8, 12);
  expect_linearization(app, heat_rect_h(2, 3), 0, "heat rect");
}

// The blocking schedule's log must linearize the blocking HB graph too
// (same obligations, different edge set).
TEST(VerifyHbTrace, SorRectBlocking) {
  const AppInstance app = make_sor(6, 9);
  const TiledNest tiled(app.nest, TilingTransform(sor_rect_h(2, 3, 4)));
  ParallelExecutor exec(tiled, *app.kernel, 2);
  exec.set_use_overlap(false);
  exec.set_comm_backend(mpisim::Backend::kEvent, /*seed=*/7);
  exec.set_trace_messages(true);
  ParallelRunStats stats;
  exec.run(&stats);
  ASSERT_FALSE(stats.events.empty());
  PlanModel pm = verify::snapshot_compiled(*exec.compiled());
  pm.pipelined = false;
  const verify::HbGraph graph = verify::build_hb_graph(pm);
  const std::vector<int> ids =
      decode_log(stats.events, pm, exec.mapping(), graph);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_GE(ids[i], 0) << "blocking log entry " << i << " unmapped";
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (ids[i] == ids[j]) continue;
      EXPECT_FALSE(graph.reaches(ids[j], ids[i]));
    }
  }
}

}  // namespace
}  // namespace ctile
