// Tests of the overlapping computation/communication schedule (the
// paper's \S5 future work, from Goumas-Sotiropoulos-Koziris IPDPS'01).
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"

namespace ctile {
namespace {

TiledNest tile_app(const AppInstance& app, MatQ h) {
  return TiledNest(app.nest, TilingTransform(std::move(h)));
}

TEST(Overlap, NeverSlowerThanBlocking) {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  for (auto& [app, h, m] :
       std::vector<std::tuple<AppInstance, MatQ, int>>{
           {make_sor(24, 48), sor_nonrect_h(6, 18, 8), 2},
           {make_adi(16, 16), adi_nr3_h(4, 4, 4), 0},
           {make_jacobi(12, 16, 16), jacobi_nonrect_h(3, 8, 7), 0}}) {
    TiledNest tiled = tile_app(app, h);
    SimResult blocking = simulate_tiled_program(tiled, machine, 1, m,
                                                CommSchedule::kBlocking);
    SimResult overlapped = simulate_tiled_program(tiled, machine, 1, m,
                                                  CommSchedule::kOverlapped);
    EXPECT_LE(overlapped.makespan, blocking.makespan + 1e-12)
        << app.nest.name;
    EXPECT_EQ(overlapped.messages, blocking.messages);
    EXPECT_EQ(overlapped.bytes, blocking.bytes);
  }
}

TEST(Overlap, HelpsMoreWhenBandwidthBound) {
  // When transfers are long (low bandwidth), hiding them behind compute
  // should shave a bigger fraction of the makespan.
  AppInstance app = make_sor(24, 48);
  TiledNest tiled = tile_app(app, sor_nonrect_h(6, 18, 8));
  MachineModel fast = MachineModel::fast_ethernet_cluster();
  MachineModel slow = fast;
  slow.bandwidth /= 8;
  auto gain = [&](const MachineModel& m) {
    SimResult b =
        simulate_tiled_program(tiled, m, 1, 2, CommSchedule::kBlocking);
    SimResult o =
        simulate_tiled_program(tiled, m, 1, 2, CommSchedule::kOverlapped);
    return (b.makespan - o.makespan) / b.makespan;
  };
  EXPECT_GT(gain(slow), gain(fast));
}

TEST(Overlap, NoEffectWithZeroCommCost) {
  AppInstance app = make_adi(8, 8);
  TiledNest tiled = tile_app(app, adi_rect_h(2, 2, 2));
  MachineModel m = MachineModel::zero_comm();
  SimResult b = simulate_tiled_program(tiled, m, 2, 0,
                                       CommSchedule::kBlocking);
  SimResult o = simulate_tiled_program(tiled, m, 2, 0,
                                       CommSchedule::kOverlapped);
  EXPECT_DOUBLE_EQ(b.makespan, o.makespan);
}

TEST(Overlap, PreservesDependenceOrdering) {
  // Overlap cannot deliver a message before the sender finished its
  // initiation: makespan must still exceed the plain critical path of
  // the compute work on the busiest processor.
  AppInstance app = make_sor(16, 24);
  TiledNest tiled = tile_app(app, sor_nonrect_h(4, 10, 8));
  Mapping mapping(tiled, 2);
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  SimResult o = simulate_tiled_program(tiled, machine, 1, 2,
                                       CommSchedule::kOverlapped);
  // Lower bound: total compute / processors.
  double bound = o.sequential / mapping.num_procs();
  EXPECT_GE(o.makespan, bound - 1e-12);
}

TEST(Overlap, NonRectStillWins) {
  // The tile-shape conclusion survives the better schedule: the paper's
  // \S5 asks exactly this question.
  AppInstance app = make_sor(24, 48);
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  SimResult rect = simulate_tiled_program(
      tile_app(app, sor_rect_h(6, 18, 8)), machine, 1, 2,
      CommSchedule::kOverlapped);
  SimResult nonrect = simulate_tiled_program(
      tile_app(app, sor_nonrect_h(6, 18, 8)), machine, 1, 2,
      CommSchedule::kOverlapped);
  EXPECT_GT(nonrect.speedup, rect.speedup);
}

}  // namespace
}  // namespace ctile
