#include "support/strings.hpp"

#include <gtest/gtest.h>

#include "support/checked_int.hpp"

namespace ctile {
namespace {

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(Strings, IndentLines) {
  EXPECT_EQ(indent_lines("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent_lines("", 2), "");
  EXPECT_EQ(indent_lines("x\n", 4), "    x\n");
  // Blank lines stay blank (no trailing spaces).
  EXPECT_EQ(indent_lines("a\n\nb", 2), "  a\n\n  b");
}

TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 1), "2.0");
  EXPECT_EQ(fixed(-0.5, 3), "-0.500");
}

TEST(Strings, ToStringI128) {
  EXPECT_EQ(to_string_i128(0), "0");
  EXPECT_EQ(to_string_i128(12345), "12345");
  EXPECT_EQ(to_string_i128(-987), "-987");
  i128 big = static_cast<i128>(1) << 100;
  EXPECT_EQ(to_string_i128(big), "1267650600228229401496703205376");
  EXPECT_EQ(to_string_i128(-big), "-1267650600228229401496703205376");
}

TEST(Strings, StrOfStreamsValues) {
  EXPECT_EQ(str_of(42), "42");
  EXPECT_EQ(str_of("abc"), "abc");
}

}  // namespace
}  // namespace ctile
