# Empty compiler generated dependencies file for ctile_runtime.
# This may be replaced when dependencies are built.
