file(REMOVE_RECURSE
  "libctile_runtime.a"
)
