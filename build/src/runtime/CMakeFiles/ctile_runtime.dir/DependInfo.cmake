
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/comm_plan.cpp" "src/runtime/CMakeFiles/ctile_runtime.dir/comm_plan.cpp.o" "gcc" "src/runtime/CMakeFiles/ctile_runtime.dir/comm_plan.cpp.o.d"
  "/root/repo/src/runtime/data_space.cpp" "src/runtime/CMakeFiles/ctile_runtime.dir/data_space.cpp.o" "gcc" "src/runtime/CMakeFiles/ctile_runtime.dir/data_space.cpp.o.d"
  "/root/repo/src/runtime/lds.cpp" "src/runtime/CMakeFiles/ctile_runtime.dir/lds.cpp.o" "gcc" "src/runtime/CMakeFiles/ctile_runtime.dir/lds.cpp.o.d"
  "/root/repo/src/runtime/locate.cpp" "src/runtime/CMakeFiles/ctile_runtime.dir/locate.cpp.o" "gcc" "src/runtime/CMakeFiles/ctile_runtime.dir/locate.cpp.o.d"
  "/root/repo/src/runtime/mapping.cpp" "src/runtime/CMakeFiles/ctile_runtime.dir/mapping.cpp.o" "gcc" "src/runtime/CMakeFiles/ctile_runtime.dir/mapping.cpp.o.d"
  "/root/repo/src/runtime/parallel_executor.cpp" "src/runtime/CMakeFiles/ctile_runtime.dir/parallel_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/ctile_runtime.dir/parallel_executor.cpp.o.d"
  "/root/repo/src/runtime/sequential_tiled.cpp" "src/runtime/CMakeFiles/ctile_runtime.dir/sequential_tiled.cpp.o" "gcc" "src/runtime/CMakeFiles/ctile_runtime.dir/sequential_tiled.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tiling/CMakeFiles/ctile_tiling.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/ctile_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/ctile_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/ctile_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ctile_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
