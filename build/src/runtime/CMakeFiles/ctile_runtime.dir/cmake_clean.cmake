file(REMOVE_RECURSE
  "CMakeFiles/ctile_runtime.dir/comm_plan.cpp.o"
  "CMakeFiles/ctile_runtime.dir/comm_plan.cpp.o.d"
  "CMakeFiles/ctile_runtime.dir/data_space.cpp.o"
  "CMakeFiles/ctile_runtime.dir/data_space.cpp.o.d"
  "CMakeFiles/ctile_runtime.dir/lds.cpp.o"
  "CMakeFiles/ctile_runtime.dir/lds.cpp.o.d"
  "CMakeFiles/ctile_runtime.dir/locate.cpp.o"
  "CMakeFiles/ctile_runtime.dir/locate.cpp.o.d"
  "CMakeFiles/ctile_runtime.dir/mapping.cpp.o"
  "CMakeFiles/ctile_runtime.dir/mapping.cpp.o.d"
  "CMakeFiles/ctile_runtime.dir/parallel_executor.cpp.o"
  "CMakeFiles/ctile_runtime.dir/parallel_executor.cpp.o.d"
  "CMakeFiles/ctile_runtime.dir/sequential_tiled.cpp.o"
  "CMakeFiles/ctile_runtime.dir/sequential_tiled.cpp.o.d"
  "libctile_runtime.a"
  "libctile_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
