# Empty dependencies file for ctile_mpisim.
# This may be replaced when dependencies are built.
