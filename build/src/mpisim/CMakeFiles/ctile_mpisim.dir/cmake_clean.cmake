file(REMOVE_RECURSE
  "CMakeFiles/ctile_mpisim.dir/mpisim.cpp.o"
  "CMakeFiles/ctile_mpisim.dir/mpisim.cpp.o.d"
  "libctile_mpisim.a"
  "libctile_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
