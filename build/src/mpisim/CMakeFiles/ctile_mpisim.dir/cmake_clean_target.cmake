file(REMOVE_RECURSE
  "libctile_mpisim.a"
)
