file(REMOVE_RECURSE
  "libctile_deps.a"
)
