# Empty dependencies file for ctile_deps.
# This may be replaced when dependencies are built.
