file(REMOVE_RECURSE
  "CMakeFiles/ctile_deps.dir/extract.cpp.o"
  "CMakeFiles/ctile_deps.dir/extract.cpp.o.d"
  "CMakeFiles/ctile_deps.dir/loop_nest.cpp.o"
  "CMakeFiles/ctile_deps.dir/loop_nest.cpp.o.d"
  "CMakeFiles/ctile_deps.dir/skew.cpp.o"
  "CMakeFiles/ctile_deps.dir/skew.cpp.o.d"
  "CMakeFiles/ctile_deps.dir/tiling_cone.cpp.o"
  "CMakeFiles/ctile_deps.dir/tiling_cone.cpp.o.d"
  "libctile_deps.a"
  "libctile_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
