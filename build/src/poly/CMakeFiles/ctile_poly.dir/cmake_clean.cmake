file(REMOVE_RECURSE
  "CMakeFiles/ctile_poly.dir/cone.cpp.o"
  "CMakeFiles/ctile_poly.dir/cone.cpp.o.d"
  "CMakeFiles/ctile_poly.dir/constraint.cpp.o"
  "CMakeFiles/ctile_poly.dir/constraint.cpp.o.d"
  "CMakeFiles/ctile_poly.dir/polyhedron.cpp.o"
  "CMakeFiles/ctile_poly.dir/polyhedron.cpp.o.d"
  "libctile_poly.a"
  "libctile_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
