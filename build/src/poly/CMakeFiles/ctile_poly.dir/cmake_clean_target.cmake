file(REMOVE_RECURSE
  "libctile_poly.a"
)
