# Empty dependencies file for ctile_poly.
# This may be replaced when dependencies are built.
