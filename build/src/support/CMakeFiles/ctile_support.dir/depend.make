# Empty dependencies file for ctile_support.
# This may be replaced when dependencies are built.
