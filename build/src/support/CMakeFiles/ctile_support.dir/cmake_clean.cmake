file(REMOVE_RECURSE
  "CMakeFiles/ctile_support.dir/error.cpp.o"
  "CMakeFiles/ctile_support.dir/error.cpp.o.d"
  "CMakeFiles/ctile_support.dir/strings.cpp.o"
  "CMakeFiles/ctile_support.dir/strings.cpp.o.d"
  "libctile_support.a"
  "libctile_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
