file(REMOVE_RECURSE
  "libctile_support.a"
)
