file(REMOVE_RECURSE
  "CMakeFiles/ctile_linalg.dir/hnf.cpp.o"
  "CMakeFiles/ctile_linalg.dir/hnf.cpp.o.d"
  "CMakeFiles/ctile_linalg.dir/int_matops.cpp.o"
  "CMakeFiles/ctile_linalg.dir/int_matops.cpp.o.d"
  "CMakeFiles/ctile_linalg.dir/rat_matops.cpp.o"
  "CMakeFiles/ctile_linalg.dir/rat_matops.cpp.o.d"
  "CMakeFiles/ctile_linalg.dir/rational.cpp.o"
  "CMakeFiles/ctile_linalg.dir/rational.cpp.o.d"
  "libctile_linalg.a"
  "libctile_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
