# Empty compiler generated dependencies file for ctile_linalg.
# This may be replaced when dependencies are built.
