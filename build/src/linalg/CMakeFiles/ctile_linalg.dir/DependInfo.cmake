
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/hnf.cpp" "src/linalg/CMakeFiles/ctile_linalg.dir/hnf.cpp.o" "gcc" "src/linalg/CMakeFiles/ctile_linalg.dir/hnf.cpp.o.d"
  "/root/repo/src/linalg/int_matops.cpp" "src/linalg/CMakeFiles/ctile_linalg.dir/int_matops.cpp.o" "gcc" "src/linalg/CMakeFiles/ctile_linalg.dir/int_matops.cpp.o.d"
  "/root/repo/src/linalg/rat_matops.cpp" "src/linalg/CMakeFiles/ctile_linalg.dir/rat_matops.cpp.o" "gcc" "src/linalg/CMakeFiles/ctile_linalg.dir/rat_matops.cpp.o.d"
  "/root/repo/src/linalg/rational.cpp" "src/linalg/CMakeFiles/ctile_linalg.dir/rational.cpp.o" "gcc" "src/linalg/CMakeFiles/ctile_linalg.dir/rational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ctile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
