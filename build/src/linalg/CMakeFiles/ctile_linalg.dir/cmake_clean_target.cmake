file(REMOVE_RECURSE
  "libctile_linalg.a"
)
