file(REMOVE_RECURSE
  "libctile_codegen.a"
)
