file(REMOVE_RECURSE
  "CMakeFiles/ctile_codegen.dir/gen_common.cpp.o"
  "CMakeFiles/ctile_codegen.dir/gen_common.cpp.o.d"
  "CMakeFiles/ctile_codegen.dir/parallel_gen.cpp.o"
  "CMakeFiles/ctile_codegen.dir/parallel_gen.cpp.o.d"
  "CMakeFiles/ctile_codegen.dir/sequential_gen.cpp.o"
  "CMakeFiles/ctile_codegen.dir/sequential_gen.cpp.o.d"
  "CMakeFiles/ctile_codegen.dir/stencil_spec.cpp.o"
  "CMakeFiles/ctile_codegen.dir/stencil_spec.cpp.o.d"
  "CMakeFiles/ctile_codegen.dir/writer.cpp.o"
  "CMakeFiles/ctile_codegen.dir/writer.cpp.o.d"
  "libctile_codegen.a"
  "libctile_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
