# Empty compiler generated dependencies file for ctile_codegen.
# This may be replaced when dependencies are built.
