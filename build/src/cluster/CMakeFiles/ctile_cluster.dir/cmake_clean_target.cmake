file(REMOVE_RECURSE
  "libctile_cluster.a"
)
