file(REMOVE_RECURSE
  "CMakeFiles/ctile_cluster.dir/autotune.cpp.o"
  "CMakeFiles/ctile_cluster.dir/autotune.cpp.o.d"
  "CMakeFiles/ctile_cluster.dir/simulator.cpp.o"
  "CMakeFiles/ctile_cluster.dir/simulator.cpp.o.d"
  "libctile_cluster.a"
  "libctile_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
