# Empty dependencies file for ctile_cluster.
# This may be replaced when dependencies are built.
