file(REMOVE_RECURSE
  "libctile_apps.a"
)
