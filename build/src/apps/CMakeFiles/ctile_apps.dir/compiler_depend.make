# Empty compiler generated dependencies file for ctile_apps.
# This may be replaced when dependencies are built.
