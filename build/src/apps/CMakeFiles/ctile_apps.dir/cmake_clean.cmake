file(REMOVE_RECURSE
  "CMakeFiles/ctile_apps.dir/kernels.cpp.o"
  "CMakeFiles/ctile_apps.dir/kernels.cpp.o.d"
  "libctile_apps.a"
  "libctile_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
