file(REMOVE_RECURSE
  "libctile_tiling.a"
)
