# Empty compiler generated dependencies file for ctile_tiling.
# This may be replaced when dependencies are built.
