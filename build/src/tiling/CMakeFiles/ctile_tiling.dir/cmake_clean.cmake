file(REMOVE_RECURSE
  "CMakeFiles/ctile_tiling.dir/census.cpp.o"
  "CMakeFiles/ctile_tiling.dir/census.cpp.o.d"
  "CMakeFiles/ctile_tiling.dir/tile_space.cpp.o"
  "CMakeFiles/ctile_tiling.dir/tile_space.cpp.o.d"
  "CMakeFiles/ctile_tiling.dir/transform.cpp.o"
  "CMakeFiles/ctile_tiling.dir/transform.cpp.o.d"
  "CMakeFiles/ctile_tiling.dir/ttis.cpp.o"
  "CMakeFiles/ctile_tiling.dir/ttis.cpp.o.d"
  "libctile_tiling.a"
  "libctile_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
