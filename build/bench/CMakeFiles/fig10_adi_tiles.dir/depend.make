# Empty dependencies file for fig10_adi_tiles.
# This may be replaced when dependencies are built.
