file(REMOVE_RECURSE
  "CMakeFiles/fig06_sor_tiles.dir/fig06_sor_tiles.cpp.o"
  "CMakeFiles/fig06_sor_tiles.dir/fig06_sor_tiles.cpp.o.d"
  "fig06_sor_tiles"
  "fig06_sor_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sor_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
