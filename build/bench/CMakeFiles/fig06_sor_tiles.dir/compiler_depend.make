# Empty compiler generated dependencies file for fig06_sor_tiles.
# This may be replaced when dependencies are built.
