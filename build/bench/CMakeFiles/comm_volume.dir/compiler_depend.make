# Empty compiler generated dependencies file for comm_volume.
# This may be replaced when dependencies are built.
