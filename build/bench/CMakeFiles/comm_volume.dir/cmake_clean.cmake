file(REMOVE_RECURSE
  "CMakeFiles/comm_volume.dir/comm_volume.cpp.o"
  "CMakeFiles/comm_volume.dir/comm_volume.cpp.o.d"
  "comm_volume"
  "comm_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
