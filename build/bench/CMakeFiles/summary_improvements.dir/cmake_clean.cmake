file(REMOVE_RECURSE
  "CMakeFiles/summary_improvements.dir/summary_improvements.cpp.o"
  "CMakeFiles/summary_improvements.dir/summary_improvements.cpp.o.d"
  "summary_improvements"
  "summary_improvements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_improvements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
