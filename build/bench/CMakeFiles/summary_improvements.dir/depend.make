# Empty dependencies file for summary_improvements.
# This may be replaced when dependencies are built.
