file(REMOVE_RECURSE
  "CMakeFiles/memory_footprint.dir/memory_footprint.cpp.o"
  "CMakeFiles/memory_footprint.dir/memory_footprint.cpp.o.d"
  "memory_footprint"
  "memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
