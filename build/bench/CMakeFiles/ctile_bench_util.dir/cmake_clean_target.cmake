file(REMOVE_RECURSE
  "libctile_bench_util.a"
)
