file(REMOVE_RECURSE
  "CMakeFiles/ctile_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ctile_bench_util.dir/bench_util.cpp.o.d"
  "libctile_bench_util.a"
  "libctile_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctile_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
