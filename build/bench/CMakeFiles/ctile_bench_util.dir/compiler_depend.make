# Empty compiler generated dependencies file for ctile_bench_util.
# This may be replaced when dependencies are built.
