file(REMOVE_RECURSE
  "CMakeFiles/fig09_adi_spaces.dir/fig09_adi_spaces.cpp.o"
  "CMakeFiles/fig09_adi_spaces.dir/fig09_adi_spaces.cpp.o.d"
  "fig09_adi_spaces"
  "fig09_adi_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_adi_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
