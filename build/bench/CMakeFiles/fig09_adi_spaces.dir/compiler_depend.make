# Empty compiler generated dependencies file for fig09_adi_spaces.
# This may be replaced when dependencies are built.
