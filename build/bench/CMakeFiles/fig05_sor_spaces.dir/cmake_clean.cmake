file(REMOVE_RECURSE
  "CMakeFiles/fig05_sor_spaces.dir/fig05_sor_spaces.cpp.o"
  "CMakeFiles/fig05_sor_spaces.dir/fig05_sor_spaces.cpp.o.d"
  "fig05_sor_spaces"
  "fig05_sor_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sor_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
