# Empty dependencies file for fig05_sor_spaces.
# This may be replaced when dependencies are built.
