# Empty compiler generated dependencies file for fig08_jacobi_tiles.
# This may be replaced when dependencies are built.
