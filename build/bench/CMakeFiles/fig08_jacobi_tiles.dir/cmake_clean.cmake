file(REMOVE_RECURSE
  "CMakeFiles/fig08_jacobi_tiles.dir/fig08_jacobi_tiles.cpp.o"
  "CMakeFiles/fig08_jacobi_tiles.dir/fig08_jacobi_tiles.cpp.o.d"
  "fig08_jacobi_tiles"
  "fig08_jacobi_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_jacobi_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
