# Empty dependencies file for fig07_jacobi_spaces.
# This may be replaced when dependencies are built.
