file(REMOVE_RECURSE
  "CMakeFiles/fig07_jacobi_spaces.dir/fig07_jacobi_spaces.cpp.o"
  "CMakeFiles/fig07_jacobi_spaces.dir/fig07_jacobi_spaces.cpp.o.d"
  "fig07_jacobi_spaces"
  "fig07_jacobi_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_jacobi_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
