file(REMOVE_RECURSE
  "CMakeFiles/sor_cluster_study.dir/sor_cluster_study.cpp.o"
  "CMakeFiles/sor_cluster_study.dir/sor_cluster_study.cpp.o.d"
  "sor_cluster_study"
  "sor_cluster_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sor_cluster_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
