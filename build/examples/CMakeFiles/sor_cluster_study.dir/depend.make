# Empty dependencies file for sor_cluster_study.
# This may be replaced when dependencies are built.
