
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cone_explorer.cpp" "examples/CMakeFiles/cone_explorer.dir/cone_explorer.cpp.o" "gcc" "examples/CMakeFiles/cone_explorer.dir/cone_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ctile_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ctile_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tiling/CMakeFiles/ctile_tiling.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/ctile_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/ctile_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ctile_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/ctile_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
