file(REMOVE_RECURSE
  "CMakeFiles/cone_explorer.dir/cone_explorer.cpp.o"
  "CMakeFiles/cone_explorer.dir/cone_explorer.cpp.o.d"
  "cone_explorer"
  "cone_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cone_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
