# Empty compiler generated dependencies file for cone_explorer.
# This may be replaced when dependencies are built.
