# Empty compiler generated dependencies file for codegen_tool.
# This may be replaced when dependencies are built.
