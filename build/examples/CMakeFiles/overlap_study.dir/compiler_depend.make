# Empty compiler generated dependencies file for overlap_study.
# This may be replaced when dependencies are built.
