file(REMOVE_RECURSE
  "CMakeFiles/overlap_study.dir/overlap_study.cpp.o"
  "CMakeFiles/overlap_study.dir/overlap_study.cpp.o.d"
  "overlap_study"
  "overlap_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
