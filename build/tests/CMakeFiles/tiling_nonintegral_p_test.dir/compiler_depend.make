# Empty compiler generated dependencies file for tiling_nonintegral_p_test.
# This may be replaced when dependencies are built.
