file(REMOVE_RECURSE
  "CMakeFiles/tiling_nonintegral_p_test.dir/tiling_nonintegral_p_test.cpp.o"
  "CMakeFiles/tiling_nonintegral_p_test.dir/tiling_nonintegral_p_test.cpp.o.d"
  "tiling_nonintegral_p_test"
  "tiling_nonintegral_p_test.pdb"
  "tiling_nonintegral_p_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_nonintegral_p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
