# Empty compiler generated dependencies file for tiling_ttis_test.
# This may be replaced when dependencies are built.
