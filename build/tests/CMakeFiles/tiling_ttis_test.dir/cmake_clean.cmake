file(REMOVE_RECURSE
  "CMakeFiles/tiling_ttis_test.dir/tiling_ttis_test.cpp.o"
  "CMakeFiles/tiling_ttis_test.dir/tiling_ttis_test.cpp.o.d"
  "tiling_ttis_test"
  "tiling_ttis_test.pdb"
  "tiling_ttis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_ttis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
