# Empty dependencies file for runtime_data_space_test.
# This may be replaced when dependencies are built.
