file(REMOVE_RECURSE
  "CMakeFiles/runtime_data_space_test.dir/runtime_data_space_test.cpp.o"
  "CMakeFiles/runtime_data_space_test.dir/runtime_data_space_test.cpp.o.d"
  "runtime_data_space_test"
  "runtime_data_space_test.pdb"
  "runtime_data_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_data_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
