file(REMOVE_RECURSE
  "CMakeFiles/runtime_mapping_test.dir/runtime_mapping_test.cpp.o"
  "CMakeFiles/runtime_mapping_test.dir/runtime_mapping_test.cpp.o.d"
  "runtime_mapping_test"
  "runtime_mapping_test.pdb"
  "runtime_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
