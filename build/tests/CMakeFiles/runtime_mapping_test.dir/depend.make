# Empty dependencies file for runtime_mapping_test.
# This may be replaced when dependencies are built.
