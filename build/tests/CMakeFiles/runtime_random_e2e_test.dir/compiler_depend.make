# Empty compiler generated dependencies file for runtime_random_e2e_test.
# This may be replaced when dependencies are built.
