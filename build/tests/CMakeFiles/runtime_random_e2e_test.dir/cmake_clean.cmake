file(REMOVE_RECURSE
  "CMakeFiles/runtime_random_e2e_test.dir/runtime_random_e2e_test.cpp.o"
  "CMakeFiles/runtime_random_e2e_test.dir/runtime_random_e2e_test.cpp.o.d"
  "runtime_random_e2e_test"
  "runtime_random_e2e_test.pdb"
  "runtime_random_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_random_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
