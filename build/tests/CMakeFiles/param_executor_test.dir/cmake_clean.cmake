file(REMOVE_RECURSE
  "CMakeFiles/param_executor_test.dir/param_executor_test.cpp.o"
  "CMakeFiles/param_executor_test.dir/param_executor_test.cpp.o.d"
  "param_executor_test"
  "param_executor_test.pdb"
  "param_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
