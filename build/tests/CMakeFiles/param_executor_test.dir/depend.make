# Empty dependencies file for param_executor_test.
# This may be replaced when dependencies are built.
