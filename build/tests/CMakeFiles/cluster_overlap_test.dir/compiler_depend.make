# Empty compiler generated dependencies file for cluster_overlap_test.
# This may be replaced when dependencies are built.
