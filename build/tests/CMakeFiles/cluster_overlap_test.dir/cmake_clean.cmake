file(REMOVE_RECURSE
  "CMakeFiles/cluster_overlap_test.dir/cluster_overlap_test.cpp.o"
  "CMakeFiles/cluster_overlap_test.dir/cluster_overlap_test.cpp.o.d"
  "cluster_overlap_test"
  "cluster_overlap_test.pdb"
  "cluster_overlap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_overlap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
