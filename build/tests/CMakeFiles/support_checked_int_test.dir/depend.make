# Empty dependencies file for support_checked_int_test.
# This may be replaced when dependencies are built.
