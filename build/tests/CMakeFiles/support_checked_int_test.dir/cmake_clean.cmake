file(REMOVE_RECURSE
  "CMakeFiles/support_checked_int_test.dir/support_checked_int_test.cpp.o"
  "CMakeFiles/support_checked_int_test.dir/support_checked_int_test.cpp.o.d"
  "support_checked_int_test"
  "support_checked_int_test.pdb"
  "support_checked_int_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_checked_int_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
