file(REMOVE_RECURSE
  "CMakeFiles/poly_cone_test.dir/poly_cone_test.cpp.o"
  "CMakeFiles/poly_cone_test.dir/poly_cone_test.cpp.o.d"
  "poly_cone_test"
  "poly_cone_test.pdb"
  "poly_cone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_cone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
