# Empty dependencies file for poly_cone_test.
# This may be replaced when dependencies are built.
