file(REMOVE_RECURSE
  "CMakeFiles/runtime_sequential_tiled_test.dir/runtime_sequential_tiled_test.cpp.o"
  "CMakeFiles/runtime_sequential_tiled_test.dir/runtime_sequential_tiled_test.cpp.o.d"
  "runtime_sequential_tiled_test"
  "runtime_sequential_tiled_test.pdb"
  "runtime_sequential_tiled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_sequential_tiled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
