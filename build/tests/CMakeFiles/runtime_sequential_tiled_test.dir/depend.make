# Empty dependencies file for runtime_sequential_tiled_test.
# This may be replaced when dependencies are built.
