# Empty dependencies file for linalg_smith_test.
# This may be replaced when dependencies are built.
