file(REMOVE_RECURSE
  "CMakeFiles/linalg_smith_test.dir/linalg_smith_test.cpp.o"
  "CMakeFiles/linalg_smith_test.dir/linalg_smith_test.cpp.o.d"
  "linalg_smith_test"
  "linalg_smith_test.pdb"
  "linalg_smith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_smith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
