# Empty compiler generated dependencies file for runtime_lds_test.
# This may be replaced when dependencies are built.
