file(REMOVE_RECURSE
  "CMakeFiles/runtime_lds_test.dir/runtime_lds_test.cpp.o"
  "CMakeFiles/runtime_lds_test.dir/runtime_lds_test.cpp.o.d"
  "runtime_lds_test"
  "runtime_lds_test.pdb"
  "runtime_lds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_lds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
