# Empty compiler generated dependencies file for codegen_fuzz_test.
# This may be replaced when dependencies are built.
