file(REMOVE_RECURSE
  "CMakeFiles/codegen_fuzz_test.dir/codegen_fuzz_test.cpp.o"
  "CMakeFiles/codegen_fuzz_test.dir/codegen_fuzz_test.cpp.o.d"
  "codegen_fuzz_test"
  "codegen_fuzz_test.pdb"
  "codegen_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
