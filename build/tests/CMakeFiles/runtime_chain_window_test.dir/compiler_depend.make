# Empty compiler generated dependencies file for runtime_chain_window_test.
# This may be replaced when dependencies are built.
