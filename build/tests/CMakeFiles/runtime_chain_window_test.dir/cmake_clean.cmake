file(REMOVE_RECURSE
  "CMakeFiles/runtime_chain_window_test.dir/runtime_chain_window_test.cpp.o"
  "CMakeFiles/runtime_chain_window_test.dir/runtime_chain_window_test.cpp.o.d"
  "runtime_chain_window_test"
  "runtime_chain_window_test.pdb"
  "runtime_chain_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_chain_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
