# Empty compiler generated dependencies file for linalg_hnf_test.
# This may be replaced when dependencies are built.
