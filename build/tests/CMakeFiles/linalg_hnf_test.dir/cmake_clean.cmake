file(REMOVE_RECURSE
  "CMakeFiles/linalg_hnf_test.dir/linalg_hnf_test.cpp.o"
  "CMakeFiles/linalg_hnf_test.dir/linalg_hnf_test.cpp.o.d"
  "linalg_hnf_test"
  "linalg_hnf_test.pdb"
  "linalg_hnf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_hnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
