file(REMOVE_RECURSE
  "CMakeFiles/tiling_tile_space_test.dir/tiling_tile_space_test.cpp.o"
  "CMakeFiles/tiling_tile_space_test.dir/tiling_tile_space_test.cpp.o.d"
  "tiling_tile_space_test"
  "tiling_tile_space_test.pdb"
  "tiling_tile_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_tile_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
