# Empty compiler generated dependencies file for tiling_tile_space_test.
# This may be replaced when dependencies are built.
