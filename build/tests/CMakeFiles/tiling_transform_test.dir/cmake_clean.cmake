file(REMOVE_RECURSE
  "CMakeFiles/tiling_transform_test.dir/tiling_transform_test.cpp.o"
  "CMakeFiles/tiling_transform_test.dir/tiling_transform_test.cpp.o.d"
  "tiling_transform_test"
  "tiling_transform_test.pdb"
  "tiling_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
