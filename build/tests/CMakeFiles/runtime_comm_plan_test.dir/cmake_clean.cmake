file(REMOVE_RECURSE
  "CMakeFiles/runtime_comm_plan_test.dir/runtime_comm_plan_test.cpp.o"
  "CMakeFiles/runtime_comm_plan_test.dir/runtime_comm_plan_test.cpp.o.d"
  "runtime_comm_plan_test"
  "runtime_comm_plan_test.pdb"
  "runtime_comm_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_comm_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
