# Empty compiler generated dependencies file for runtime_comm_plan_test.
# This may be replaced when dependencies are built.
