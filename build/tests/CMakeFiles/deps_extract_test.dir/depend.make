# Empty dependencies file for deps_extract_test.
# This may be replaced when dependencies are built.
