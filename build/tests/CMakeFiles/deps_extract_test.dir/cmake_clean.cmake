file(REMOVE_RECURSE
  "CMakeFiles/deps_extract_test.dir/deps_extract_test.cpp.o"
  "CMakeFiles/deps_extract_test.dir/deps_extract_test.cpp.o.d"
  "deps_extract_test"
  "deps_extract_test.pdb"
  "deps_extract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deps_extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
