file(REMOVE_RECURSE
  "CMakeFiles/runtime_locate_test.dir/runtime_locate_test.cpp.o"
  "CMakeFiles/runtime_locate_test.dir/runtime_locate_test.cpp.o.d"
  "runtime_locate_test"
  "runtime_locate_test.pdb"
  "runtime_locate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_locate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
