# Empty dependencies file for runtime_locate_test.
# This may be replaced when dependencies are built.
