file(REMOVE_RECURSE
  "CMakeFiles/param_tiling_test.dir/param_tiling_test.cpp.o"
  "CMakeFiles/param_tiling_test.dir/param_tiling_test.cpp.o.d"
  "param_tiling_test"
  "param_tiling_test.pdb"
  "param_tiling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_tiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
