# Empty dependencies file for param_tiling_test.
# This may be replaced when dependencies are built.
