file(REMOVE_RECURSE
  "CMakeFiles/cluster_autotune_test.dir/cluster_autotune_test.cpp.o"
  "CMakeFiles/cluster_autotune_test.dir/cluster_autotune_test.cpp.o.d"
  "cluster_autotune_test"
  "cluster_autotune_test.pdb"
  "cluster_autotune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_autotune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
