file(REMOVE_RECURSE
  "CMakeFiles/mpisim_stress_test.dir/mpisim_stress_test.cpp.o"
  "CMakeFiles/mpisim_stress_test.dir/mpisim_stress_test.cpp.o.d"
  "mpisim_stress_test"
  "mpisim_stress_test.pdb"
  "mpisim_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
