# Empty compiler generated dependencies file for mpisim_stress_test.
# This may be replaced when dependencies are built.
