file(REMOVE_RECURSE
  "CMakeFiles/poly_constraint_test.dir/poly_constraint_test.cpp.o"
  "CMakeFiles/poly_constraint_test.dir/poly_constraint_test.cpp.o.d"
  "poly_constraint_test"
  "poly_constraint_test.pdb"
  "poly_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
