# Empty dependencies file for poly_constraint_test.
# This may be replaced when dependencies are built.
