# Empty dependencies file for linalg_rational_test.
# This may be replaced when dependencies are built.
