file(REMOVE_RECURSE
  "CMakeFiles/linalg_rational_test.dir/linalg_rational_test.cpp.o"
  "CMakeFiles/linalg_rational_test.dir/linalg_rational_test.cpp.o.d"
  "linalg_rational_test"
  "linalg_rational_test.pdb"
  "linalg_rational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_rational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
