file(REMOVE_RECURSE
  "CMakeFiles/codegen_compile_test.dir/codegen_compile_test.cpp.o"
  "CMakeFiles/codegen_compile_test.dir/codegen_compile_test.cpp.o.d"
  "codegen_compile_test"
  "codegen_compile_test.pdb"
  "codegen_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
