add_test([=[CodegenFuzz.RandomInstancesMatchReference]=]  /root/repo/build/tests/codegen_fuzz_test [==[--gtest_filter=CodegenFuzz.RandomInstancesMatchReference]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CodegenFuzz.RandomInstancesMatchReference]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  codegen_fuzz_test_TESTS CodegenFuzz.RandomInstancesMatchReference)
