// Tile-shape study on the modelled cluster: a compact version of the
// paper's SOR experiment (\S4.1) that you can re-run with your own
// machine parameters.
//
//   $ ./sor_cluster_study [M] [N] [z]
//
// Compares the rectangular tiling H_r = diag(1/x,1/y,1/z) against the
// cone-derived H_nr (row 3 = (-1/z, 0, 1/z)) at equal tile size,
// communication volume and processor count, and prints the step-count
// analysis (t_r vs t_nr = t_r - M/z) next to the simulated speedups.
#include <cstdio>
#include <cstdlib>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"

using namespace ctile;

namespace {

i64 fit4(i64 lo, i64 hi) {
  for (i64 s = 1; s <= hi - lo + 1; ++s) {
    if (floor_div(hi, s) - floor_div(lo, s) + 1 == 4) return s;
  }
  return (hi - lo + 1 + 3) / 4;
}

}  // namespace

int main(int argc, char** argv) {
  const i64 m = argc > 1 ? std::atoll(argv[1]) : 40;
  const i64 n = argc > 2 ? std::atoll(argv[2]) : 80;
  const i64 z = argc > 3 ? std::atoll(argv[3]) : 12;
  const i64 x = fit4(1, m);
  const i64 y = fit4(2, m + n);

  std::printf("SOR M=%lld N=%lld, tiles x=%lld y=%lld z=%lld (4x4 mesh, "
              "chain along dim 3)\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(x), static_cast<long long>(y),
              static_cast<long long>(z));

  // The paper's closed-form last-step analysis (\S4.1): j_max of the
  // skewed space is (M, M+N, 2M+N).
  const double tr = static_cast<double>(m) / x +
                    static_cast<double>(m + n) / y +
                    static_cast<double>(2 * m + n) / z;
  const double tnr = tr - static_cast<double>(m) / z;
  std::printf("linear-schedule steps: t_r ~ %.1f, t_nr ~ %.1f "
              "(saving M/z = %.1f)\n",
              tr, tnr, static_cast<double>(m) / z);

  MachineModel machine = MachineModel::fast_ethernet_cluster();
  AppInstance app = make_sor(m, n);
  for (bool nonrect : {false, true}) {
    TiledNest tiled(app.nest,
                    TilingTransform(nonrect ? sor_nonrect_h(x, y, z)
                                            : sor_rect_h(x, y, z)));
    TileCensus census =
        TileCensus::from_box(tiled, {1, 1, 1}, {m, n, n}, sor_skew_matrix());
    Mapping mapping(tiled, 2, &census);
    LdsLayout lds(tiled, mapping);
    CommPlan plan(tiled, mapping, lds);
    SimResult sim =
        simulate_cluster(tiled, mapping, lds, plan, census, machine, 1);
    std::printf("%-8s: %2d procs, makespan %8.1f ms, speedup %5.2f, "
                "%lld msgs, %.1f KB\n",
                nonrect ? "nonrect" : "rect", mapping.num_procs(),
                sim.makespan * 1e3, sim.speedup,
                static_cast<long long>(sim.messages),
                static_cast<double>(sim.bytes) / 1024.0);
  }
  std::printf("expected: nonrect speedup > rect speedup (the pipeline "
              "drains M/z steps earlier)\n");
  return 0;
}
