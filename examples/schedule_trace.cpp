// Wavefront visualization: dump the simulated tile schedule as CSV (for
// plotting) and render a coarse ASCII Gantt chart of the pipeline,
// showing how the cone-derived tile shape drains the wavefront earlier
// than the rectangular one.
//
//   $ ./schedule_trace [csv]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"

using namespace ctile;

namespace {

i64 fit4(i64 lo, i64 hi) {
  for (i64 s = 1; s <= hi - lo + 1; ++s) {
    if (floor_div(hi, s) - floor_div(lo, s) + 1 == 4) return s;
  }
  return (hi - lo + 1 + 3) / 4;
}

SimResult run(bool nonrect) {
  const i64 m = 40, n = 80, z = 10;
  const i64 x = fit4(1, m), y = fit4(2, m + n);
  AppInstance app = make_sor(m, n);
  TiledNest tiled(app.nest,
                  TilingTransform(nonrect ? sor_nonrect_h(x, y, z)
                                          : sor_rect_h(x, y, z)));
  TileCensus census =
      TileCensus::from_box(tiled, {1, 1, 1}, {m, n, n}, sor_skew_matrix());
  Mapping mapping(tiled, 2, &census);
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  return simulate_cluster(tiled, mapping, lds, plan, census,
                          MachineModel::fast_ethernet_cluster(), 1);
}

void ascii_gantt(const char* title, const SimResult& r, double t_max) {
  constexpr int kCols = 72;
  std::printf("%s (makespan %.1f ms)\n", title, r.makespan * 1e3);
  int nprocs = 0;
  for (const TileTrace& ev : r.trace) nprocs = std::max(nprocs, ev.rank + 1);
  for (int rank = 0; rank < nprocs; ++rank) {
    std::string row(kCols, '.');
    for (const TileTrace& ev : r.trace) {
      if (ev.rank != rank) continue;
      int a = static_cast<int>(ev.start / t_max * kCols);
      int b = static_cast<int>(ev.end / t_max * kCols);
      for (int c = a; c <= b && c < kCols; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
    }
    std::printf("  p%02d |%s|\n", rank, row.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "csv") == 0;
  SimResult rect = run(false);
  SimResult nonrect = run(true);
  if (csv) {
    std::printf("tiling,rank,chain_t,start_s,end_s\n");
    for (const SimResult* r : {&rect, &nonrect}) {
      const char* label = r == &rect ? "rect" : "nonrect";
      for (const TileTrace& ev : r->trace) {
        std::printf("%s,%d,%lld,%.9f,%.9f\n", label, ev.rank,
                    static_cast<long long>(ev.t), ev.start, ev.end);
      }
    }
    return 0;
  }
  const double t_max = std::max(rect.makespan, nonrect.makespan);
  std::printf("SOR wavefront on 16 modelled nodes ('#' = processor busy, "
              "common time axis):\n\n");
  ascii_gantt("rectangular tiling", rect, t_max);
  std::printf("\n");
  ascii_gantt("cone-derived tiling", nonrect, t_max);
  std::printf("\nspeedups: rect %.2f, nonrect %.2f -- the non-rectangular "
              "rows end earlier:\nthe skewed tile shape removes M/z "
              "schedule steps from the pipeline drain.\n",
              rect.speedup, nonrect.speedup);
  return 0;
}
