// Quickstart: tile a loop nest with a general (non-rectangular)
// parallelepiped tiling, inspect everything the framework derives, run
// the data-parallel executor over the in-process message-passing
// substrate, and verify against the plain sequential loop.
//
//   $ ./quickstart
//
// This walks the full pipeline of the paper:
//   loop nest -> skew -> tiling transform (H, H', HNF strides) ->
//   tile space -> computation/data distribution (mesh, LDS) ->
//   communication sets (D^S, D^m, CC) -> parallel execution -> verify.
#include <cstdio>

#include "apps/kernels.hpp"
#include "deps/tiling_cone.hpp"
#include "runtime/parallel_executor.hpp"

using namespace ctile;

int main() {
  // 1. The algorithm: Gauss SOR on a 10 x 16 x 16 space, skewed so all
  //    dependencies are non-negative (\S4.1).
  AppInstance app = make_sor(/*m=*/10, /*n=*/16);
  std::printf("loop nest '%s': depth %d, %d dependencies, %lld points\n",
              app.nest.name.c_str(), app.nest.depth, app.nest.num_deps(),
              static_cast<long long>(app.nest.space.count_points()));

  // 2. The tiling cone: legal tile-facet normals for these dependencies.
  ConeRays cone = tiling_cone(app.nest.deps);
  std::printf("tiling cone extreme rays:\n");
  for (const VecI& ray : cone.rays) {
    std::printf("  (%lld, %lld, %lld)\n", static_cast<long long>(ray[0]),
                static_cast<long long>(ray[1]),
                static_cast<long long>(ray[2]));
  }

  // 3. A non-rectangular tiling with rows from the cone (the paper's
  //    H_nr with x=3, y=5, z=4).
  TilingTransform tf(sor_nonrect_h(3, 5, 4));
  std::printf("\n%s\n\n", tf.describe().c_str());

  // 4. Tile the nest and distribute: chains along the longest tile-space
  //    dimension, an (n-1)-dimensional processor mesh for the rest.
  TiledNest tiled(app.nest, std::move(tf));
  ParallelExecutor exec(tiled, *app.kernel);
  const Mapping& mapping = exec.mapping();
  std::printf("mapping dimension m = %d, mesh =", mapping.m());
  for (i64 g : mapping.grid()) std::printf(" %lld", static_cast<long long>(g));
  std::printf(" (%d processors), chain length %lld\n", mapping.num_procs(),
              static_cast<long long>(mapping.chain_length()));
  std::printf("LDS slots per processor: %lld  (halo offsets:",
              static_cast<long long>(exec.lds().size()));
  for (int k = 0; k < 3; ++k) {
    std::printf(" %lld", static_cast<long long>(exec.lds().off(k)));
  }
  std::printf(")\n");
  std::printf("communication directions: %zu, tile dependencies: %zu\n",
              exec.plan().directions().size(),
              exec.plan().tile_deps().size());

  // 5. Run all ranks (threads standing in for cluster nodes) and verify
  //    against the sequential loop.
  ParallelRunStats stats;
  DataSpace par = exec.run(&stats);
  DataSpace seq = run_sequential(app.nest.space, app.nest.deps, *app.kernel);
  double diff = DataSpace::max_abs_diff(seq, par, app.nest.space);
  std::printf("\nparallel run: %lld points computed, %lld messages, %lld "
              "doubles exchanged\n",
              static_cast<long long>(stats.points_computed),
              static_cast<long long>(stats.messages),
              static_cast<long long>(stats.doubles));
  std::printf("phase times (all ranks): compute %.3f ms, pack %.3f ms, "
              "unpack %.3f ms, recv-wait %.3f ms, send-wait %.3f ms\n",
              stats.phase_total.compute_s * 1e3,
              stats.phase_total.pack_s * 1e3,
              stats.phase_total.unpack_s * 1e3,
              stats.phase_total.recv_wait_s * 1e3,
              stats.phase_total.send_wait_s * 1e3);
  std::printf("max |parallel - sequential| = %g  ->  %s\n", diff,
              diff == 0.0 ? "EXACT MATCH" : "MISMATCH");
  return diff == 0.0 ? 0 : 1;
}
