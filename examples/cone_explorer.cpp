// Tiling-cone explorer: derive the legal tiling cone of each benchmark's
// dependence matrix, print its extreme rays, and check the paper's
// tiling matrices against it (\S4: "selecting a tiling transformation
// from the sides of the tiling cone leads to optimal scheduling").
//
//   $ ./cone_explorer
#include <cstdio>

#include "apps/kernels.hpp"
#include "deps/tiling_cone.hpp"

using namespace ctile;

namespace {

void show(const std::string& name, const MatI& deps,
          const std::vector<std::pair<std::string, MatQ>>& tilings) {
  std::printf("---- %s ----\n", name.c_str());
  std::printf("dependence columns:\n");
  for (int c = 0; c < deps.cols(); ++c) {
    VecI d = deps.col(c);
    std::printf("  d%d = (%lld, %lld, %lld)\n", c,
                static_cast<long long>(d[0]), static_cast<long long>(d[1]),
                static_cast<long long>(d[2]));
  }
  ConeRays cone = tiling_cone(deps);
  std::printf("tiling cone extreme rays:%s\n",
              cone.has_lineality ? " (cone has lineality!)" : "");
  for (const VecI& r : cone.rays) {
    std::printf("  (%lld, %lld, %lld)\n", static_cast<long long>(r[0]),
                static_cast<long long>(r[1]), static_cast<long long>(r[2]));
  }
  for (const auto& [label, h] : tilings) {
    std::printf("  %-8s: %s\n", label.c_str(),
                tiling_legal(h, deps) ? "legal" : "ILLEGAL");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  show("skewed SOR", make_sor(4, 6).nest.deps,
       {{"rect", sor_rect_h(2, 3, 4)}, {"nonrect", sor_nonrect_h(2, 3, 4)}});
  show("skewed Jacobi", make_jacobi(4, 6, 6).nest.deps,
       {{"rect", jacobi_rect_h(2, 4, 3)},
        {"nonrect", jacobi_nonrect_h(2, 4, 3)}});
  show("ADI integration", make_adi(4, 6).nest.deps,
       {{"rect", adi_rect_h(2, 2, 2)},
        {"nr1", adi_nr1_h(2, 2, 2)},
        {"nr2", adi_nr2_h(2, 2, 2)},
        {"nr3", adi_nr3_h(2, 2, 2)}});
  // A deliberately illegal case for contrast: un-skewed SOR cannot be
  // rectangularly tiled.
  AppInstance orig = make_sor_original(4, 6);
  std::printf("---- original (unskewed) SOR ----\n");
  std::printf("rectangular tiling legal? %s (the paper skews first)\n",
              tiling_legal(sor_rect_h(2, 3, 4), orig.nest.deps) ? "yes"
                                                                : "NO");
  return 0;
}
