// Overlapping computation with communication (\S5 future work, [8]):
// side-by-side makespans of the blocking and overlapped schedules for a
// chosen benchmark, across tile sizes.
//
//   $ ./overlap_study [sor|jacobi|adi]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"

using namespace ctile;

namespace {

i64 fit4(i64 lo, i64 hi) {
  for (i64 s = 1; s <= hi - lo + 1; ++s) {
    if (floor_div(hi, s) - floor_div(lo, s) + 1 == 4) return s;
  }
  return (hi - lo + 1 + 3) / 4;
}

struct Setup {
  AppInstance app;
  MatQ h;
  int force_m;
  int arity;
  VecI lo, hi;
  MatI skew_m;
};

Setup build(const std::string& which, i64 size_factor) {
  if (which == "jacobi") {
    const i64 t = 50, ij = 100;
    i64 y = fit4(2, t + ij);
    if (y % 2 != 0) ++y;
    return {make_jacobi(t, ij, ij),
            jacobi_nonrect_h(size_factor, y, fit4(2, t + ij)),
            0,
            1,
            {1, 1, 1},
            {t, ij, ij},
            jacobi_skew_matrix()};
  }
  if (which == "adi") {
    const i64 t = 100, n = 256;
    const i64 y = fit4(1, n);
    return {make_adi(t, n), adi_nr3_h(size_factor, y, y), 0, 2,
            {1, 1, 1},      {t, n, n},                    MatI::identity(3)};
  }
  const i64 m = 100, n = 200;
  return {make_sor(m, n),
          sor_nonrect_h(fit4(1, m), fit4(2, m + n), size_factor),
          2,
          1,
          {1, 1, 1},
          {m, n, n},
          sor_skew_matrix()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "sor";
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  std::printf("overlap study for %s (cone-derived tiling, 16 modelled "
              "nodes)\n",
              which.c_str());
  std::printf("%-8s %-12s %-12s %-12s %-10s\n", "factor", "blocking",
              "overlapped", "hidden ms", "gain%");
  for (i64 f : std::vector<i64>{2, 4, 8, 16, 32}) {
    Setup s = build(which, f);
    TiledNest tiled(s.app.nest, TilingTransform(s.h));
    TileCensus census = TileCensus::from_box(tiled, s.lo, s.hi, s.skew_m);
    Mapping mapping(tiled, s.force_m, &census);
    LdsLayout lds(tiled, mapping);
    CommPlan plan(tiled, mapping, lds);
    SimResult blocking = simulate_cluster(
        tiled, mapping, lds, plan, census, machine, s.arity,
        CommSchedule::kBlocking);
    SimResult overlapped = simulate_cluster(
        tiled, mapping, lds, plan, census, machine, s.arity,
        CommSchedule::kOverlapped);
    std::printf("%-8lld %-12.2f %-12.2f %-12.2f %-10.1f\n",
                static_cast<long long>(f), blocking.speedup,
                overlapped.speedup,
                (blocking.makespan - overlapped.makespan) * 1e3,
                (blocking.makespan - overlapped.makespan) /
                    blocking.makespan * 100.0);
  }
  std::printf("gain%% = makespan reduction from hiding transfers behind "
              "compute\n");
  return 0;
}
