// Tile-size autotuning demo: automates the paper's manual tile-size
// sweeps (the x-axes of Figures 6/8/10) for both schedules.
//
//   $ ./autotune_demo
#include <cstdio>

#include "apps/kernels.hpp"
#include "cluster/autotune.hpp"

using namespace ctile;

namespace {

i64 fit4(i64 lo, i64 hi) {
  for (i64 s = 1; s <= hi - lo + 1; ++s) {
    if (floor_div(hi, s) - floor_div(lo, s) + 1 == 4) return s;
  }
  return (hi - lo + 1 + 3) / 4;
}

}  // namespace

int main() {
  const i64 m = 100, n = 200;
  const i64 x = fit4(1, m), y = fit4(2, m + n);
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  AppInstance app = make_sor(m, n);

  AutotuneRequest req;
  req.tiling_for = [x, y](i64 z) { return sor_nonrect_h(x, y, z); };
  req.chain_extent = 2 * m + n;
  req.force_m = 2;
  req.arity = 1;
  req.orig_lo = {1, 1, 1};
  req.orig_hi = {m, n, n};
  req.skew = sor_skew_matrix();

  std::printf("autotuning SOR (M=%lld N=%lld) non-rectangular tile "
              "thickness z on the modelled cluster\n\n",
              static_cast<long long>(m), static_cast<long long>(n));
  for (CommSchedule schedule :
       {CommSchedule::kBlocking, CommSchedule::kOverlapped}) {
    req.schedule = schedule;
    AutotuneResult r = autotune_tile_size(app.nest, req, machine);
    std::printf("%s schedule:\n",
                schedule == CommSchedule::kBlocking ? "blocking"
                                                    : "overlapped");
    for (const auto& [factor, sim] : r.evaluated) {
      std::printf("  z=%-4lld speedup %5.2f  makespan %7.1f ms%s\n",
                  static_cast<long long>(factor), sim.speedup,
                  sim.makespan * 1e3,
                  factor == r.best_factor ? "   <-- best" : "");
    }
    std::printf("\n");
  }
  return 0;
}
