// The "tool" of \S4: automatic generation of data-parallel
// message-passing C++ from a loop nest + tiling matrix.
//
//   $ ./codegen_tool sor|jacobi|adi rect|nonrect [sizes...] > generated.cpp
//
// Arguments after the tiling flavour are the space sizes and the tile
// factors x, y, z.  Defaults are small so the emitted code is easy to
// read.  The emitted program runs against the in-process mpisim
// substrate (MPI-equivalent call sites are commented at each send/recv)
// and prints a checksum of the computed data space; `--sequential` emits
// the sequential tiled code of \S2.3 instead.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/kernels.hpp"
#include "codegen/parallel_gen.hpp"
#include "codegen/sequential_gen.hpp"

using namespace ctile;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: codegen_tool [--sequential] [--mpi] sor|jacobi|adi "
               "rect|nonrect|nr1|nr2|nr3 [S1 S2 x y z]\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool sequential = false;
  bool real_mpi = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--sequential") == 0) {
      sequential = true;
    } else if (std::strcmp(argv[arg], "--mpi") == 0) {
      real_mpi = true;
    } else {
      usage();
      return 2;
    }
    ++arg;
  }
  if (argc - arg < 2) {
    usage();
    return 2;
  }
  const std::string name = argv[arg++];
  const std::string flavour = argv[arg++];
  auto next = [&](i64 def) {
    return arg < argc ? std::atoll(argv[arg++]) : def;
  };

  try {
    AppInstance app;
    MatQ h;
    codegen::StencilSpec spec;
    int force_m = -1;
    if (name == "sor") {
      const i64 m = next(6), n = next(9), x = next(2), y = next(3),
                z = next(4);
      app = make_sor(m, n);
      spec = codegen::sor_spec();
      h = flavour == "rect" ? sor_rect_h(x, y, z) : sor_nonrect_h(x, y, z);
      force_m = 2;
    } else if (name == "jacobi") {
      const i64 t = next(4), ij = next(8), x = next(2), y = next(4),
                z = next(3);
      app = make_jacobi(t, ij, ij);
      spec = codegen::jacobi_spec();
      h = flavour == "rect" ? jacobi_rect_h(x, y, z)
                            : jacobi_nonrect_h(x, y, z);
      force_m = 0;
    } else if (name == "adi") {
      const i64 t = next(4), n = next(6), x = next(2), y = next(3),
                z = next(3);
      app = make_adi(t, n);
      spec = codegen::adi_spec();
      if (flavour == "rect") {
        h = adi_rect_h(x, y, z);
      } else if (flavour == "nr1") {
        h = adi_nr1_h(x, y, z);
      } else if (flavour == "nr2") {
        h = adi_nr2_h(x, y, z);
      } else {
        h = adi_nr3_h(x, y, z);
      }
      force_m = 0;
    } else {
      usage();
      return 2;
    }
    TiledNest tiled(app.nest, TilingTransform(std::move(h)));
    std::string code;
    if (sequential) {
      code = codegen::generate_sequential_tiled(tiled, spec);
    } else {
      codegen::ParallelGenOptions opt;
      opt.force_m = force_m;
      opt.flavor = real_mpi ? codegen::CommFlavor::kMpi
                            : codegen::CommFlavor::kMpisim;
      code = codegen::generate_parallel_mpi(tiled, spec, opt);
    }
    std::fputs(code.c_str(), stdout);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "codegen_tool: %s\n", e.what());
    return 1;
  }
}
