// Micro-benchmark for the precomputed communication slot tables: on the
// paper's Figure 6/8/10 tile configurations (SOR, Jacobi, ADI at their
// 16-processor tilings), time one full pack + unpack slot sweep through
//
//   (a) the legacy path: for_each_lattice_point over the pack/unpack
//       regions with LdsLayout::map + linear per point, and
//   (b) the slot-table path: precomputed base slots + t_loc * chain_step.
//
// Both paths visit identical slots in identical order (asserted here via
// checksums and exhaustively in runtime_comm_slots_test); the table path
// must be strictly faster on every configuration, and the process exits
// nonzero if it is not — so this bench doubles as a perf regression
// check.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "runtime/comm_plan.hpp"

namespace ctile {
namespace {

struct Config {
  std::string name;
  AppInstance app;
  MatQ h;
  int force_m;
};

// One full sweep over every direction's pack table and every messaging
// dependence's unpack table at chain position t_loc, via the tables.
i64 sweep_tables(const CommPlan& plan, const CommSlotTable& table,
                 i64 t_loc) {
  i64 checksum = 0;
  const i64 off = t_loc * table.chain_step();
  for (std::size_t d = 0; d < plan.directions().size(); ++d) {
    for (i64 base : table.pack_slots(static_cast<int>(d))) {
      checksum += base + off;
    }
  }
  const auto& deps = plan.tile_deps();
  for (std::size_t i = 0; i < deps.size(); ++i) {
    if (deps[i].dir < 0) continue;
    for (i64 base : table.unpack_slots(i)) checksum += base + off;
  }
  return checksum;
}

// The same sweep through the lattice-enumeration path the executor used
// before the tables existed.
i64 sweep_lattice(const TilingTransform& tf, const CommPlan& plan,
                  const LdsLayout& local, i64 t_loc) {
  i64 checksum = 0;
  const int n = local.n();
  for (const ProcDir& dir : plan.directions()) {
    for_each_lattice_point(tf, dir.pack, [&](const VecI& jp) {
      checksum += local.slot(jp, t_loc);
    });
  }
  for (const TileDep& dep : plan.tile_deps()) {
    if (dep.dir < 0) continue;
    const TtisRegion region = plan.unpack_region(dep);
    const VecI shift = plan.unpack_shift(dep);
    for_each_lattice_point(tf, region, [&](const VecI& jp) {
      VecI jpp = local.map(jp, t_loc);
      for (int k = 0; k < n; ++k) {
        jpp[static_cast<std::size_t>(k)] -= shift[static_cast<std::size_t>(k)];
      }
      checksum += local.linear_unchecked(jpp);
    });
  }
  return checksum;
}

}  // namespace
}  // namespace ctile

int main() {
  using namespace ctile;

  // The figures' tile shapes at reduced problem sizes (same tilings and
  // processor meshes; smaller spaces keep the bench fast).
  std::vector<Config> configs;
  configs.push_back({"fig06-sor-rect", make_sor(24, 48),
                     sor_rect_h(6, 18, 8), 2});
  configs.push_back({"fig06-sor-nonrect", make_sor(24, 48),
                     sor_nonrect_h(6, 18, 8), 2});
  configs.push_back({"fig08-jacobi-nonrect", make_jacobi(12, 16, 12),
                     jacobi_nonrect_h(3, 4, 4), -1});
  configs.push_back({"fig10-adi-nr1", make_adi(16, 16),
                     adi_nr1_h(4, 4, 4), -1});
  configs.push_back({"fig10-adi-nr3", make_adi(16, 16),
                     adi_nr3_h(4, 4, 4), -1});

  std::printf("%-22s %14s %14s %9s\n", "config", "lattice (us)",
              "table (us)", "speedup");
  bool all_faster = true;
  for (Config& cfg : configs) {
    TiledNest tiled(cfg.app.nest, TilingTransform(cfg.h));
    Mapping mapping(tiled, cfg.force_m);
    LdsLayout lds(tiled, mapping);
    CommPlan plan(tiled, mapping, lds);
    CommSlotTable table(plan, tiled.transform(), lds);

    // Equal checksums: both paths touch the same slots.
    const i64 a = sweep_lattice(tiled.transform(), plan, lds, 1);
    const i64 b = sweep_tables(plan, table, 1);
    if (a != b) {
      std::printf("%s: checksum mismatch (%lld vs %lld)\n", cfg.name.c_str(),
                  static_cast<long long>(a), static_cast<long long>(b));
      return 1;
    }

    volatile i64 sink = 0;
    const double lattice_s = bench::time_best_of(5, 200, [&] {
      sink = sink + sweep_lattice(tiled.transform(), plan, lds, 1);
    });
    const double table_s = bench::time_best_of(5, 200, [&] {
      sink = sink + sweep_tables(plan, table, 1);
    });
    const double speedup = lattice_s / table_s;
    std::printf("%-22s %14.3f %14.3f %8.1fx\n", cfg.name.c_str(),
                lattice_s * 1e6, table_s * 1e6, speedup);
    if (table_s >= lattice_s) all_faster = false;
  }
  if (!all_faster) {
    std::printf("FAIL: slot-table path not strictly faster everywhere\n");
    return 1;
  }
  std::printf("OK: slot-table path strictly faster on every config\n");
  return 0;
}
