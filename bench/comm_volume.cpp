// Setup-claim verification (\S4.1-\S4.3): with common x/y/z factors, the
// rectangular and non-rectangular tilings are a *controlled comparison* —
// equal tile size, equal per-message volume on the mesh directions, and
// equal processor count — so any execution-time difference is purely the
// scheduling effect of the tile shape.  This bench prints the actual
// numbers side by side for each algorithm.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "runtime/comm_plan.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

struct Row {
  std::string label;
  i64 tile_size;
  int nprocs;
  i64 messages;
  i64 bytes;
  double speedup;
};

Row inspect(const std::string& label, const AppInstance& app, MatQ h,
            int force_m, int arity, const VecI& lo, const VecI& hi,
            const MatI& skew, const MachineModel& machine) {
  TiledNest tiled(app.nest, TilingTransform(std::move(h)));
  TileCensus census = TileCensus::from_box(tiled, lo, hi, skew);
  Mapping mapping(tiled, force_m, &census);
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  SimResult sim = simulate_cluster(tiled, mapping, lds, plan, census,
                                   machine, arity);
  return Row{label,       tiled.transform().tile_size(),
             mapping.num_procs(), sim.messages,
             sim.bytes,   sim.speedup};
}

void print(const Row& r) {
  std::printf("  %-10s tile=%-8lld procs=%-4d msgs=%-6lld KB=%-10.1f "
              "speedup=%.2f\n",
              r.label.c_str(), static_cast<long long>(r.tile_size), r.nprocs,
              static_cast<long long>(r.messages),
              static_cast<double>(r.bytes) / 1024.0, r.speedup);
}

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header("Controlled-comparison check: equal tile size / volume / "
               "processors",
               machine);

  {
    const i64 m = 100, n = 200;
    const i64 x = fit_parts(1, m, 4), y = fit_parts(2, m + n, 4), z = 8;
    std::printf("SOR (M=%lld, N=%lld, x=%lld y=%lld z=%lld):\n",
                (long long)m, (long long)n, (long long)x, (long long)y,
                (long long)z);
    AppInstance app = make_sor(m, n);
    print(inspect("rect", app, sor_rect_h(x, y, z), 2, 1, {1, 1, 1},
                  {m, n, n}, sor_skew_matrix(), machine));
    print(inspect("nonrect", app, sor_nonrect_h(x, y, z), 2, 1, {1, 1, 1},
                  {m, n, n}, sor_skew_matrix(), machine));
  }
  {
    const i64 t = 50, ij = 100;
    i64 y = fit_parts(2, t + ij, 4);
    if (y % 2 != 0) ++y;
    const i64 z = fit_parts(2, t + ij, 4), x = 4;
    std::printf("Jacobi (T=%lld, I=J=%lld, x=%lld y=%lld z=%lld):\n",
                (long long)t, (long long)ij, (long long)x, (long long)y,
                (long long)z);
    AppInstance app = make_jacobi(t, ij, ij);
    print(inspect("rect", app, jacobi_rect_h(x, y, z), 0, 1, {1, 1, 1},
                  {t, ij, ij}, jacobi_skew_matrix(), machine));
    print(inspect("nonrect", app, jacobi_nonrect_h(x, y, z), 0, 1,
                  {1, 1, 1}, {t, ij, ij}, jacobi_skew_matrix(), machine));
  }
  {
    const i64 t = 100, n = 256;
    const i64 y = fit_parts(1, n, 4), x = 7;
    std::printf("ADI (T=%lld, N=%lld, x=%lld y=z=%lld):\n", (long long)t,
                (long long)n, (long long)x, (long long)y);
    AppInstance app = make_adi(t, n);
    for (auto& [label, h] :
         std::vector<std::pair<std::string, MatQ>>{
             {"rect", adi_rect_h(x, y, y)},
             {"nr1", adi_nr1_h(x, y, y)},
             {"nr2", adi_nr2_h(x, y, y)},
             {"nr3", adi_nr3_h(x, y, y)}}) {
      print(inspect(label, app, h, 0, 2, {1, 1, 1}, {t, n, n},
                    MatI::identity(3), machine));
    }
  }
  std::printf("expected: within each block, tile size and processor count "
              "identical;\n"
              "per-message volume identical on mesh directions (total "
              "bytes differ only\n"
              "through boundary-tile message *counts*); speedups differ -- "
              "that's the result.\n");
  return 0;
}
