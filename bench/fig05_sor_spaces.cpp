// Figure 5 reproduction: SOR maximum speedups for different iteration
// spaces (rectangular vs non-rectangular tiling, 16 processors).
//
// As in \S4.1: x and y are fixed so the processor mesh is 4x4 = 16 (the
// paper runs one MPI process per node); z is varied and the best speedup
// per tiling is reported.  The paper prints no numeric table for this
// figure; the checkable claims are (a) non-rectangular wins in every
// space and (b) the average improvement across the SOR experiments is
// ~17.3% (\S4.4).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

struct SpaceResult {
  i64 m, n;
  double best_rect = 0.0, best_nonrect = 0.0;
  i64 best_rect_z = 0, best_nonrect_z = 0;
};

SpaceResult run_space(i64 m, i64 n, const MachineModel& machine) {
  SpaceResult res;
  res.m = m;
  res.n = n;
  // Mesh: dims 1 and 2 of the skewed space (the paper maps tiles along
  // the third dimension to the same processor).
  const i64 x = fit_parts(1, m, 4);
  const i64 y = fit_parts(2, m + n, 4);
  const i64 span_z = 2 * m + n;
  for (i64 z : std::vector<i64>{4, 8, 12, 20, 32, 48, 64}) {
    if (z > span_z) continue;
    for (bool nonrect : {false, true}) {
      RunConfig cfg;
      cfg.label = nonrect ? "nonrect" : "rect";
      cfg.app = make_sor(m, n);
      cfg.h = nonrect ? sor_nonrect_h(x, y, z) : sor_rect_h(x, y, z);
      cfg.force_m = 2;
      cfg.arity = 1;
      cfg.orig_lo = {1, 1, 1};
      cfg.orig_hi = {m, n, n};
      cfg.skew = sor_skew_matrix();
      RunOutcome out = run_config(cfg, machine);
      if (out.nprocs != 16) continue;  // mesh drifted: skip this z
      if (nonrect && out.sim.speedup > res.best_nonrect) {
        res.best_nonrect = out.sim.speedup;
        res.best_nonrect_z = z;
      }
      if (!nonrect && out.sim.speedup > res.best_rect) {
        res.best_rect = out.sim.speedup;
        res.best_rect_z = z;
      }
    }
  }
  return res;
}

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header("Figure 5: SOR max speedups for different iteration spaces",
               machine);
  const std::vector<int> widths{16, 12, 14, 14, 14};
  print_row({"space (M,N)", "best z r/nr", "rect", "nonrect", "improve%"},
            widths);
  double sum_impr = 0.0;
  int count = 0;
  for (auto [m, n] : std::vector<std::pair<i64, i64>>{
           {50, 100}, {80, 160}, {100, 200}, {150, 300}}) {
    SpaceResult r = run_space(m, n, machine);
    double impr = improvement_pct(r.best_rect, r.best_nonrect);
    sum_impr += impr;
    ++count;
    print_row({"(" + std::to_string(r.m) + "," + std::to_string(r.n) + ")",
               std::to_string(r.best_rect_z) + "/" +
                   std::to_string(r.best_nonrect_z),
               fixed(r.best_rect, 2), fixed(r.best_nonrect, 2),
               fixed(impr, 1)},
              widths);
  }
  std::printf("average improvement: %.1f%%  (paper \\S4.4: 17.3%% across "
              "the SOR experiments)\n",
              sum_impr / count);
  return 0;
}
