// \S3.1 memory claim: "direct allocation of a processor's share in the
// original DS would lead to a waste of memory space, since this generally
// non-rectangular share would lead to the allocation of the minimum
// enclosing rectangular memory space.  Our method forces the local data
// space of each processor to be rectangular, allowing more efficient
// memory management."
//
// This bench quantifies it: for each benchmark/tiling it compares, per
// processor, the LDS allocation (computation + halo slots) against the
// minimum enclosing box of the processor's share of the original data
// space, and prints the worst and average waste ratios.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/locate.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

struct Footprint {
  // Per-tile: enclosing box of the tile's DS footprint vs its dense LDS
  // storage (tile point count) — the paper's \S3.1 comparison.
  double tile_avg = 0.0;
  double tile_worst = 0.0;
  // Per-processor whole chain: share's enclosing box vs the processor's
  // chain-window LDS (halos included).
  double chain_avg = 0.0;
  double chain_worst = 0.0;
  i64 lds_slots = 0;
};

Footprint measure(const AppInstance& app, MatQ h, int force_m,
                  const VecI& lo, const VecI& hi, const MatI& skew) {
  TiledNest tiled(app.nest, TilingTransform(std::move(h)));
  TileCensus census = TileCensus::from_box(tiled, lo, hi, skew);
  Mapping mapping(tiled, force_m, &census);
  const int n = app.nest.depth;

  // Per-processor min/max of owned points in original coordinates.
  struct Box {
    VecI lo, hi;
    bool any = false;
  };
  std::vector<Box> boxes(static_cast<std::size_t>(mapping.num_procs()));
  std::map<VecI, Box> tile_boxes;
  std::map<VecI, i64> tile_points;
  const TilingTransform& tf = tiled.transform();
  // The DS is the *original* array A[f_w(j_orig)]: unskew before boxing
  // (the share is measured where the data actually lives).
  const MatI unskew = to_int(inverse(to_rat(skew)));
  auto widen = [n](Box& b, const VecI& o) {
    if (!b.any) {
      b.lo = o;
      b.hi = o;
      b.any = true;
      return;
    }
    for (int k = 0; k < n; ++k) {
      b.lo[static_cast<std::size_t>(k)] =
          std::min(b.lo[static_cast<std::size_t>(k)], o[static_cast<std::size_t>(k)]);
      b.hi[static_cast<std::size_t>(k)] =
          std::max(b.hi[static_cast<std::size_t>(k)], o[static_cast<std::size_t>(k)]);
    }
  };
  app.nest.space.scan([&](const VecI& j) {
    const VecI js = tf.tile_of(j);
    auto [pid, t] = mapping.owner_of(js);
    (void)t;
    const VecI o = mul(unskew, j);
    widen(boxes[static_cast<std::size_t>(mapping.rank_of(pid))], o);
    widen(tile_boxes[js], o);
    ++tile_points[js];
  });

  Footprint fp;
  // Per-tile ratios (interior full tiles dominate; clipped boundary
  // tiles are included as-is).
  int tiles = 0;
  for (const auto& [js, b] : tile_boxes) {
    double cells = 1.0;
    for (int k = 0; k < n; ++k) {
      cells *= static_cast<double>(b.hi[static_cast<std::size_t>(k)] -
                                   b.lo[static_cast<std::size_t>(k)] + 1);
    }
    double ratio = cells / static_cast<double>(tile_points[js]);
    fp.tile_avg += ratio;
    fp.tile_worst = std::max(fp.tile_worst, ratio);
    ++tiles;
  }
  if (tiles > 0) fp.tile_avg /= tiles;

  int counted = 0;
  for (int rank = 0; rank < mapping.num_procs(); ++rank) {
    const Box& b = boxes[static_cast<std::size_t>(rank)];
    if (!b.any) continue;
    // The processor's actual allocation: its own chain-window LDS.
    const IntRange window = mapping.chain_window(mapping.pid_of(rank));
    if (window.empty()) continue;
    const LdsLayout local(tiled, mapping, window.count());
    fp.lds_slots = std::max(fp.lds_slots, local.size());
    double cells = 1.0;
    for (int k = 0; k < n; ++k) {
      cells *= static_cast<double>(b.hi[static_cast<std::size_t>(k)] -
                                   b.lo[static_cast<std::size_t>(k)] + 1);
    }
    double ratio = cells / static_cast<double>(local.size());
    fp.chain_avg += ratio;
    fp.chain_worst = std::max(fp.chain_worst, ratio);
    ++counted;
  }
  if (counted > 0) fp.chain_avg /= counted;
  return fp;
}

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header("\\S3.1 memory footprint: enclosing-box / LDS ratio per "
               "processor",
               machine);
  const std::vector<int> widths{18, 10, 10, 12, 11, 12};
  print_row({"configuration", "max LDS", "tile avg", "tile worst", "chain avg", "chain worst"},
            widths);

  {
    AppInstance app = make_sor(50, 100);
    const i64 x = fit_parts(1, 50, 4), y = fit_parts(2, 150, 4);
    Footprint fp = measure(app, sor_nonrect_h(x, y, 8), 2, {1, 1, 1},
                           {50, 100, 100}, sor_skew_matrix());
    print_row({"SOR nonrect", std::to_string(fp.lds_slots), fixed(fp.tile_avg, 2),
               fixed(fp.tile_worst, 2), fixed(fp.chain_avg, 2),
               fixed(fp.chain_worst, 2)},
              widths);
  }
  {
    AppInstance app = make_jacobi(30, 60, 60);
    i64 y = fit_parts(2, 90, 4);
    if (y % 2 != 0) ++y;
    Footprint fp = measure(app, jacobi_nonrect_h(4, y, fit_parts(2, 90, 4)),
                           0, {1, 1, 1}, {30, 60, 60},
                           jacobi_skew_matrix());
    print_row({"Jacobi nonrect", std::to_string(fp.lds_slots), fixed(fp.tile_avg, 2),
               fixed(fp.tile_worst, 2), fixed(fp.chain_avg, 2),
               fixed(fp.chain_worst, 2)},
              widths);
  }
  {
    AppInstance app = make_adi(40, 64);
    const i64 y = fit_parts(1, 64, 4);
    Footprint fp = measure(app, adi_nr3_h(5, y, y), 0, {1, 1, 1},
                           {40, 64, 64}, MatI::identity(3));
    print_row({"ADI nr3", std::to_string(fp.lds_slots), fixed(fp.tile_avg, 2),
               fixed(fp.tile_worst, 2), fixed(fp.chain_avg, 2),
               fixed(fp.chain_worst, 2)},
              widths);
  }
  std::printf(
      "tile ratios: enclosing DS box of one tile's footprint / its dense "
      "LDS storage\n(the paper's \\S3.1 claim -- non-rectangular tiles "
      "waste that factor if stored boxed);\nchain ratios: whole "
      "processor share box / its chain-window LDS (halos included).\n");
  return 0;
}
