// Micro-benchmark for the overlapped (pipelined) executor schedule: run
// the paper's SOR / Jacobi / ADI configurations through the real
// ParallelExecutor under a synthetic wire-latency model (mpisim
// LatencyModel) and compare wall time of
//
//   (a) the blocking RECEIVE/COMPUTE/SEND schedule (\S3.2): every send
//       occupies the sender until the wire drains, and
//   (b) the overlapped schedule (IPDPS'01 follow-up): pre-posted
//       irecvs, remainder-first/band-last sweep, pack + isend the moment
//       the boundary band exists.
//
// Both schedules must produce bitwise-identical data spaces (asserted
// here; exhaustively in runtime_overlap_test).  Under the high-latency
// model the overlapped schedule must be at least 1.3x faster on every
// configuration — the process exits nonzero otherwise, so this bench
// doubles as a perf regression check for the pipelined runtime.  A
// zero-latency row is reported ungated (there is nothing to hide; the
// two schedules should be within noise of each other).
//
// The measured ratio is cross-checked against the analytic
// cluster/simulator prediction (kBlocking vs kOverlapped makespans under
// the equivalent MachineModel): the model must at least agree on the
// *direction* — it predicted this optimization before the runtime could
// run it (bench/ablation_overlap) — and the bench reports both numbers
// side by side.  Also reported: the BandSplit decomposition (boundary
// band points vs interior remainder points per tile), i.e. how much
// compute each tile has available to hide its communication behind.
//
// Results are written as JSON (BENCH_overlap.json, or --json <path>).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "cluster/simulator.hpp"
#include "runtime/parallel_executor.hpp"

namespace ctile {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::string name;
  AppInstance app;
  MatQ h;
  int force_m;
};

double time_run(const ParallelExecutor& exec, int reps,
                ParallelRunStats* stats = nullptr) {
  // One run per timed iteration (stats must reflect a single run), so
  // delegate the warm-up + min-of-reps discipline to bench::time_best_of.
  return bench::time_best_of(reps, 1, [&] { exec.run(stats); });
}

// The analytic counterpart of the measured ratio: simulate the same plan
// under MachineModels equivalent to the injected LatencyModel.  The
// mpisim wire time T = per_message_s + doubles * per_double_s occupies a
// blocking sender entirely and an isend not at all, and transfers never
// serialize against each other (every channel drains concurrently).
// Mapping onto the simulator's knobs:
//   - blocking:   T becomes an *effective bandwidth* bytes/T over the
//     plan's mean message size, so the CPU is occupied T per send and
//     the message arrives when the occupation ends — exactly mpisim's
//     sleeping send.
//   - overlapped: T becomes pure propagation `latency` with a free wire
//     (huge bandwidth), so initiation is instant and delivery lands T
//     later with no NIC queueing — exactly mpisim's isend.
// per_message_overhead stays 0 in both: the simulator charges it to the
// CPU under either schedule (MPI software cost, not modelled by mpisim).
// sec_per_iter is calibrated from a latency-free measured run so compute
// and wire are in the same units.
double predicted_ratio(const ParallelExecutor& exec,
                       const mpisim::LatencyModel& lat, double sec_per_iter) {
  double mean_doubles = 0.0;
  const auto& dirs = exec.plan().directions();
  for (std::size_t d = 0; d < dirs.size(); ++d) {
    mean_doubles += static_cast<double>(
        exec.plan().message_points(static_cast<int>(d)));
  }
  if (!dirs.empty()) mean_doubles /= static_cast<double>(dirs.size());
  const double mean_bytes = 8.0 * mean_doubles;
  const double wire_s = lat.per_message_s + mean_doubles * lat.per_double_s;

  MachineModel blocking_m;
  blocking_m.sec_per_iter = sec_per_iter;
  blocking_m.latency = 0.0;
  blocking_m.bandwidth = mean_bytes > 0.0 ? mean_bytes / wire_s : 1e30;
  blocking_m.per_byte_overhead = 0.0;
  blocking_m.per_message_overhead = 0.0;
  blocking_m.bytes_per_value = 8;

  MachineModel overlapped_m = blocking_m;
  overlapped_m.latency = wire_s;
  overlapped_m.bandwidth = 1e30;

  const SimResult blocking = simulate_cluster(
      exec.tiled(), exec.mapping(), exec.lds(), exec.plan(), exec.census(),
      blocking_m, /*arity=*/1, CommSchedule::kBlocking);
  const SimResult overlapped = simulate_cluster(
      exec.tiled(), exec.mapping(), exec.lds(), exec.plan(), exec.census(),
      overlapped_m, /*arity=*/1, CommSchedule::kOverlapped);
  return overlapped.makespan > 0.0 ? blocking.makespan / overlapped.makespan
                                   : 0.0;
}

}  // namespace
}  // namespace ctile

int main(int argc, char** argv) {
  using namespace ctile;

  const std::string json_path =
      bench::json_path_from_args(argc, argv, "BENCH_overlap.json");

  // The paper's tile shapes at reduced problem sizes: long enough chains
  // for the pipeline to reach steady state, small enough that the wire
  // model below dominates compute — the bench may run on a single-core
  // box, where the OS already interleaves a sleeping blocking sender
  // with other ranks' compute, so the overlap win must come from the
  // latency-dominated critical path (where blocking serializes its
  // per-tile sends and the pipelined schedule pays one delivery).
  std::vector<Config> configs;
  configs.push_back({"sor-rect", make_sor(12, 24), sor_rect_h(4, 9, 6), 2});
  configs.push_back(
      {"jacobi-nonrect", make_jacobi(8, 16, 12), jacobi_nonrect_h(2, 4, 3), -1});
  configs.push_back({"adi-nr1", make_adi(8, 8), adi_nr1_h(2, 4, 4), -1});

  // High enough that the wire dominates compute (the regime the
  // overlapped schedule exists for), low enough that a bench run stays
  // in milliseconds.
  mpisim::LatencyModel high;
  high.per_message_s = 1e-3;
  high.per_double_s = 20e-9;

  bench::JsonReport report("micro_overlap");
  std::printf(
      "%-18s %9s %9s %12s %12s %9s %10s %9s %9s\n", "config", "band",
      "remain", "block (ms)", "overlap (ms)", "speedup", "predicted",
      "eff_blk", "eff_ovl");
  bool all_pass = true;
  const double kGate = 1.3;
  for (Config& cfg : configs) {
    TiledNest tiled(cfg.app.nest, TilingTransform(cfg.h));
    ParallelExecutor exec(tiled, *cfg.app.kernel, cfg.force_m);

    // Bitwise equivalence of the two schedules under the latency model
    // (gate before timing: a fast wrong answer is no answer).
    exec.set_latency_model(high);
    DataSpace overlapped_out = exec.run();
    exec.set_use_overlap(false);
    DataSpace blocking_out = exec.run();
    if (DataSpace::max_abs_diff(overlapped_out, blocking_out,
                                cfg.app.nest.space) != 0.0) {
      std::printf("%s: overlapped output diverges from blocking\n",
                  cfg.name.c_str());
      return 1;
    }

    // Calibrate compute speed from a latency-free overlapped run, for
    // the simulator cross-check.
    exec.set_use_overlap(true);
    exec.set_latency_model(mpisim::LatencyModel{});
    ParallelRunStats calib;
    const double zero_overlap_ms = time_run(exec, 3, &calib) * 1e3;
    exec.set_use_overlap(false);
    const double zero_block_ms = time_run(exec, 3) * 1e3;
    const double sec_per_iter =
        calib.points_computed > 0
            ? calib.phase_total.compute_s /
                  static_cast<double>(calib.points_computed)
            : 0.0;

    // The measured quantity: wall time under the high-latency wire.
    exec.set_latency_model(high);
    ParallelRunStats block_stats;
    const double block_s = time_run(exec, 3, &block_stats);
    exec.set_use_overlap(true);
    ParallelRunStats overlap_stats;
    const double overlap_s = time_run(exec, 3, &overlap_stats);
    const double speedup = block_s / overlap_s;
    const double predicted = predicted_ratio(exec, high, sec_per_iter);

    const i64 band = exec.band().band_points();
    const i64 remain = exec.band().remainder_points();
    std::printf("%-18s %9lld %9lld %12.2f %12.2f %8.2fx %9.2fx %9.3f %9.3f\n",
                cfg.name.c_str(), static_cast<long long>(band),
                static_cast<long long>(remain), block_s * 1e3, overlap_s * 1e3,
                speedup, predicted, block_stats.overlap_efficiency(),
                overlap_stats.overlap_efficiency());

    report.begin_row();
    report.field("config", cfg.name);
    report.field("band_points", band);
    report.field("remainder_points", remain);
    report.field("messages", block_stats.messages);
    report.field("blocking_ms", block_s * 1e3);
    report.field("overlapped_ms", overlap_s * 1e3);
    report.field("speedup", speedup);
    report.field("predicted_speedup", predicted);
    report.field("blocking_send_wait_s", block_stats.phase_total.send_wait_s);
    report.field("overlapped_send_wait_s",
                 overlap_stats.phase_total.send_wait_s);
    report.field("blocking_overlap_efficiency",
                 block_stats.overlap_efficiency());
    report.field("overlapped_overlap_efficiency",
                 overlap_stats.overlap_efficiency());
    report.field("zero_latency_blocking_ms", zero_block_ms);
    report.field("zero_latency_overlapped_ms", zero_overlap_ms);
    report.field("sec_per_iter", sec_per_iter);

    if (speedup < kGate) {
      std::printf("FAIL: %s overlapped speedup %.2fx below the %.1fx floor\n",
                  cfg.name.c_str(), speedup, kGate);
      all_pass = false;
    }
    if (predicted <= 1.0) {
      std::printf(
          "FAIL: %s simulator cross-check predicts no overlap win (%.2fx)\n",
          cfg.name.c_str(), predicted);
      all_pass = false;
    }
  }
  if (!report.write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  if (!all_pass) {
    std::printf("FAIL: overlap gates missed on some config\n");
    return 1;
  }
  std::printf("OK: overlapped schedule >= %.1fx under the high-latency wire "
              "on every config, direction confirmed by the cluster model\n",
              kGate);
  return 0;
}
