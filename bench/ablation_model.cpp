// Ablation: sensitivity of the paper's conclusion to the machine-model
// calibration.
//
// The absolute 2002 constants are uncertain, so this bench sweeps each
// model parameter over a wide range and reports the non-rect-vs-rect
// improvement for the Figure-6 configuration (SOR, M=100 N=200, z=8).
// The claim that should survive every row: improvement stays positive.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

double improvement(const MachineModel& machine) {
  const i64 m = 100, n = 200;
  const i64 x = fit_parts(1, m, 4), y = fit_parts(2, m + n, 4), z = 8;
  double sp[2];
  for (bool nonrect : {false, true}) {
    RunConfig cfg;
    cfg.label = nonrect ? "nr" : "r";
    cfg.app = make_sor(m, n);
    cfg.h = nonrect ? sor_nonrect_h(x, y, z) : sor_rect_h(x, y, z);
    cfg.force_m = 2;
    cfg.arity = 1;
    cfg.orig_lo = {1, 1, 1};
    cfg.orig_hi = {m, n, n};
    cfg.skew = sor_skew_matrix();
    sp[nonrect ? 1 : 0] = run_config(cfg, machine).sim.speedup;
  }
  return improvement_pct(sp[0], sp[1]);
}

}  // namespace

int main() {
  MachineModel base = MachineModel::fast_ethernet_cluster();
  print_header(
      "Ablation: model sensitivity (SOR Fig.6 config, improvement %)", base);
  const std::vector<int> widths{26, 12, 12, 12, 12, 12};
  print_row({"parameter", "x1/8", "x1/2", "x1", "x2", "x8"}, widths);

  auto sweep = [&](const std::string& name, auto setter) {
    std::vector<std::string> cells{name};
    for (double f : {0.125, 0.5, 1.0, 2.0, 8.0}) {
      MachineModel m = base;
      setter(m, f);
      cells.push_back(fixed(improvement(m), 1));
    }
    print_row(cells, widths);
  };

  sweep("sec_per_iter",
        [](MachineModel& m, double f) { m.sec_per_iter *= f; });
  sweep("latency", [](MachineModel& m, double f) { m.latency *= f; });
  sweep("bandwidth", [](MachineModel& m, double f) { m.bandwidth *= f; });
  sweep("per_message_overhead",
        [](MachineModel& m, double f) { m.per_message_overhead *= f; });
  std::printf("expected: every cell positive (the tile-shape win is not a "
              "calibration artifact)\n");
  return 0;
}
