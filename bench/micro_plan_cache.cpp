// Micro-benchmark for the content-addressed PlanCache: on the paper's
// Figure 6/8/10 tile configurations, time
//
//   (a) the cold path: a full CompiledPlan::compile_parallel lowering
//       (census, mapping, LDS layouts, comm plan, slot tables,
//       classifier, band split, hoisted row plans), and
//   (b) the warm path: key construction + PlanCache hit returning the
//       shared immutable plan.
//
// The warm hit must be at least 10x faster than the cold lowering on
// every configuration — that is the amortization the plan-compiler-as-
// a-service story rests on — and the process exits nonzero if it is
// not, so this bench doubles as a perf regression check in CI.
//
// It also proves the cache is semantically free: an executor adopting
// the cached plan must produce a data space bitwise identical to one
// lowered cold from the same (nest, H, knobs).
//
// Emits BENCH_plan_cache.json (override with --json PATH).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/parallel_executor.hpp"
#include "runtime/plan_cache.hpp"
#include "sweep_setup.hpp"

int main(int argc, char** argv) {
  using namespace ctile;

  const std::string json_path =
      bench::json_path_from_args(argc, argv, "BENCH_plan_cache.json");
  bench::JsonReport report("plan_cache");

  std::printf("%-22s %12s %12s %9s %9s\n", "config", "cold (us)",
              "warm (us)", "speedup", "max|diff|");
  bool all_ok = true;
  for (const bench::SweepConfig& cfg : bench::paper_sweep_configs()) {
    LoweringKnobs knobs;
    knobs.force_m = cfg.force_m;

    // (a) Cold: the full lowering, timed end to end (key construction
    // included — the service pays it on misses too).
    std::shared_ptr<const CompiledPlan> cold_plan;
    const double cold_s = bench::time_best_of(3, 1, [&] {
      const PlanKey key = make_plan_key(cfg.app.nest, cfg.h,
                                        CompiledPlan::Kind::kParallel, knobs);
      (void)key;
      cold_plan = CompiledPlan::compile_parallel(cfg.app.nest, cfg.h, knobs);
    });

    // (b) Warm: the same request answered by the cache.
    PlanCache cache;
    bool was_hit = false;
    std::shared_ptr<const CompiledPlan> warm_plan =
        cache.parallel_plan(cfg.app.nest, cfg.h, knobs, &was_hit);
    CTILE_ASSERT_MSG(!was_hit, "first request must be a miss");
    const double warm_s = bench::time_best_of(5, 100, [&] {
      warm_plan = cache.parallel_plan(cfg.app.nest, cfg.h, knobs, &was_hit);
    });
    CTILE_ASSERT_MSG(was_hit, "repeat request must be a hit");

    // Bitwise equivalence: cached plan vs cold-built lowering.
    ParallelExecutor cold_exec(cold_plan, *cfg.app.kernel);
    ParallelExecutor warm_exec(warm_plan, *cfg.app.kernel);
    const DataSpace a = cold_exec.run();
    const DataSpace b = warm_exec.run();
    const double diff =
        DataSpace::max_abs_diff(a, b, cfg.app.nest.space);

    const double speedup = cold_s / warm_s;
    std::printf("%-22s %12.3f %12.3f %8.1fx %9.2g\n", cfg.name.c_str(),
                cold_s * 1e6, warm_s * 1e6, speedup, diff);
    report.begin_row();
    report.field("config", cfg.name);
    report.field("cold_us", cold_s * 1e6);
    report.field("warm_us", warm_s * 1e6);
    report.field("speedup", speedup);
    report.field("max_abs_diff", diff);
    if (speedup < 10.0) {
      std::printf("FAIL: %s warm hit only %.1fx faster (need >= 10x)\n",
                  cfg.name.c_str(), speedup);
      all_ok = false;
    }
    if (diff != 0.0) {
      std::printf("FAIL: %s cached plan not bitwise-equal to cold build\n",
                  cfg.name.c_str());
      all_ok = false;
    }
  }

  if (!report.write(json_path)) return 1;
  if (!all_ok) return 1;
  std::printf("OK: warm hits >= 10x faster and bitwise-clean everywhere\n");
  return 0;
}
