// Figure 6 reproduction: SOR speedups for various tile sizes at
// M = 100, N = 200 (the caption's space), rectangular vs non-rectangular
// tiling on the modelled 16-node cluster.
//
// x and y are fixed (4x4 mesh), z sweeps the tile size — the figure's
// x-axis.  Expected shape: both curves rise to a plateau (small tiles are
// latency-bound), the non-rectangular curve sits above the rectangular
// one everywhere, and very large tiles decay again (pipeline fill/drain
// dominates: fewer, longer chain steps).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

int main() {
  const i64 m = 100, n = 200;
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header(
      "Figure 6: SOR speedups vs tile size (M=100, N=200, 16 procs)",
      machine);
  const i64 x = fit_parts(1, m, 4);
  const i64 y = fit_parts(2, m + n, 4);
  std::printf("mesh tiles: x=%lld, y=%lld (4x4 processors)\n",
              static_cast<long long>(x), static_cast<long long>(y));
  const std::vector<int> widths{8, 12, 12, 12, 12};
  print_row({"z", "tile size", "rect", "nonrect", "improve%"}, widths);
  double sum_impr = 0.0;
  int count = 0;
  for (i64 z : std::vector<i64>{2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}) {
    double sp[2] = {0.0, 0.0};
    bool ok = true;
    for (bool nonrect : {false, true}) {
      RunConfig cfg;
      cfg.label = nonrect ? "nonrect" : "rect";
      cfg.app = make_sor(m, n);
      cfg.h = nonrect ? sor_nonrect_h(x, y, z) : sor_rect_h(x, y, z);
      cfg.force_m = 2;
      cfg.arity = 1;
      cfg.orig_lo = {1, 1, 1};
      cfg.orig_hi = {m, n, n};
      cfg.skew = sor_skew_matrix();
      RunOutcome out = run_config(cfg, machine);
      if (out.nprocs != 16) {
        ok = false;
        break;
      }
      sp[nonrect ? 1 : 0] = out.sim.speedup;
    }
    if (!ok) continue;
    double impr = improvement_pct(sp[0], sp[1]);
    sum_impr += impr;
    ++count;
    print_row({std::to_string(z),
               std::to_string(x * y * z),
               fixed(sp[0], 2), fixed(sp[1], 2), fixed(impr, 1)},
              widths);
  }
  if (count > 0) {
    std::printf("average improvement over the sweep: %.1f%%\n",
                sum_impr / count);
  }
  return 0;
}
