// Micro-benchmark for the strength-reduced compute sweep: on the paper's
// Figure 6/8/10 tile configurations (SOR, Jacobi, ADI at their
// 16-processor tilings), pick an interior tile and time one full compute
// sweep of it through
//
//   (a) the legacy path: for_each_tile_point with a space.contains()
//       test and an LdsLayout::slot (map + linear) per dependence per
//       point, and
//   (b) the fast path: TtisRowWalker rows with per-row slot bases and
//       constant dependence slot deltas — flat pointer arithmetic per
//       point (DESIGN.md \S8).
//
// Both paths execute the same kernel over the same points and must leave
// bitwise-identical local data spaces (asserted here; exhaustively in
// runtime_fast_sweep_test).  The fast path must be at least 10x faster
// on every configuration — the process exits nonzero otherwise, so this
// bench doubles as a perf regression check.  Results are also written as
// JSON (BENCH_compute_sweep.json, or the --json <path> argument).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sweep_setup.hpp"

int main(int argc, char** argv) {
  using namespace ctile;

  const std::string json_path =
      bench::json_path_from_args(argc, argv, "BENCH_compute_sweep.json");

  const std::vector<bench::SweepConfig> configs = bench::paper_sweep_configs();

  bench::JsonReport report("micro_compute_sweep");
  std::printf("%-22s %12s %14s %14s %9s\n", "config", "points",
              "legacy (us)", "fast (us)", "speedup");
  bool all_pass = true;
  for (const bench::SweepConfig& cfg : configs) {
    bench::SweepSetup s(cfg);
    const Kernel& kernel = *cfg.app.kernel;
    const int arity = kernel.arity();
    const LdsLayout local = s.make_layout();
    const bench::RowPlan plan(s, local);

    // Equivalence: identical initial arrays, one sweep each, then the
    // visited point counts and the whole arrays must match bitwise.
    std::vector<double> la_legacy = bench::SweepSetup::filled(local, arity);
    std::vector<double> la_fast = la_legacy;
    const i64 pts_legacy = bench::sweep_legacy(s, local, kernel, la_legacy);
    const i64 pts_fast = bench::sweep_fast(s, local, kernel, la_fast, plan);
    if (pts_legacy != pts_fast || la_legacy != la_fast) {
      std::printf("%s: fast sweep diverges from legacy (%lld vs %lld pts)\n",
                  cfg.name.c_str(), static_cast<long long>(pts_legacy),
                  static_cast<long long>(pts_fast));
      return 1;
    }

    std::vector<double> la = la_legacy;
    const double legacy_s = bench::time_best_of(
        5, 20, [&] { bench::sweep_legacy(s, local, kernel, la); });
    const double fast_s = bench::time_best_of(
        5, 20, [&] { bench::sweep_fast(s, local, kernel, la, plan); });
    const double speedup = legacy_s / fast_s;
    std::printf("%-22s %12lld %14.3f %14.3f %8.1fx\n", cfg.name.c_str(),
                static_cast<long long>(pts_fast), legacy_s * 1e6,
                fast_s * 1e6, speedup);

    report.begin_row();
    report.field("config", cfg.name);
    report.field("points", pts_fast);
    report.field("legacy_us", legacy_s * 1e6);
    report.field("fast_us", fast_s * 1e6);
    report.field("legacy_points_per_sec",
                 static_cast<double>(pts_fast) / legacy_s);
    report.field("fast_points_per_sec",
                 static_cast<double>(pts_fast) / fast_s);
    report.field("speedup", speedup);

    if (speedup < 10.0) all_pass = false;
  }
  if (!report.write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  if (!all_pass) {
    std::printf("FAIL: fast sweep below the 10x floor on some config\n");
    return 1;
  }
  std::printf("OK: fast sweep >= 10x on every config\n");
  return 0;
}
