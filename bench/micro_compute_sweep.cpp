// Micro-benchmark for the strength-reduced compute sweep: on the paper's
// Figure 6/8/10 tile configurations (SOR, Jacobi, ADI at their
// 16-processor tilings), pick an interior tile and time one full compute
// sweep of it through
//
//   (a) the legacy path: for_each_tile_point with a space.contains()
//       test and an LdsLayout::slot (map + linear) per dependence per
//       point, and
//   (b) the fast path: TtisRowWalker rows with per-row slot bases and
//       constant dependence slot deltas — flat pointer arithmetic per
//       point (DESIGN.md \S8).
//
// Both paths execute the same kernel over the same points and must leave
// bitwise-identical local data spaces (asserted here; exhaustively in
// runtime_fast_sweep_test).  The fast path must be at least 10x faster
// on every configuration — the process exits nonzero otherwise, so this
// bench doubles as a perf regression check.  Results are also written as
// JSON (BENCH_compute_sweep.json, or the --json <path> argument).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "linalg/int_matops.hpp"
#include "runtime/lds.hpp"
#include "tiling/interior.hpp"

namespace ctile {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::string name;
  AppInstance app;
  MatQ h;
  int force_m;
};

// Everything one sweep needs: the tile, its owner's LDS geometry, and a
// deterministically-filled local array to sweep over.
struct SweepSetup {
  TiledNest tiled;
  TileCensus census;
  Mapping mapping;
  TileClassifier classifier;
  VecI js;        // the interior tile being swept
  i64 t_loc = 0;  // its chain position within the owner's window

  SweepSetup(const Config& cfg)
      : tiled(cfg.app.nest, TilingTransform(cfg.h)),
        census(tiled),
        mapping(tiled, cfg.force_m, &census),
        classifier(tiled, &census) {
    bool found = false;
    tiled.tile_space().scan([&](const VecI& cand) {
      if (found || !classifier.interior(cand)) return;
      js = cand;
      found = true;
    });
    if (!found) throw Error(cfg.name + ": no interior tile to sweep");
    const auto [pid, t] = mapping.owner_of(js);
    t_loc = t - mapping.chain_window(pid).lo;
  }

  LdsLayout make_layout() const {
    const auto [pid, t] = mapping.owner_of(js);
    return LdsLayout(tiled, mapping, mapping.chain_window(pid).count());
  }

  static std::vector<double> filled(const LdsLayout& local, int arity) {
    std::vector<double> la(static_cast<std::size_t>(local.size() * arity));
    for (std::size_t i = 0; i < la.size(); ++i) {
      la[i] = 0.25 + 0.001 * static_cast<double>(i % 977);
    }
    return la;
  }
};

// The executor's legacy compute loop, verbatim mechanics.
i64 sweep_legacy(const SweepSetup& s, const LdsLayout& local, const Kernel& k,
                 std::vector<double>& la) {
  const Polyhedron& space = s.tiled.nest().space;
  const MatI& deps = s.tiled.nest().deps;
  const MatI dprime = s.tiled.ttis_deps();
  const int q = deps.cols();
  const int arity = k.arity();
  std::vector<double> dep_vals(static_cast<std::size_t>(q * arity));
  std::vector<double> out(static_cast<std::size_t>(arity));
  i64 points = 0;
  s.tiled.for_each_tile_point(s.js, [&](const VecI& jp, const VecI& j) {
    for (int l = 0; l < q; ++l) {
      double* dst = &dep_vals[static_cast<std::size_t>(l * arity)];
      const VecI pred_j = vec_sub(j, deps.col(l));
      if (space.contains(pred_j)) {
        const VecI pred_jp = vec_sub(jp, dprime.col(l));
        const i64 slot = local.slot(pred_jp, s.t_loc);
        for (int v = 0; v < arity; ++v) {
          dst[v] = la[static_cast<std::size_t>(slot * arity + v)];
        }
      } else {
        k.initial(pred_j, dst);
      }
    }
    k.compute(j, dep_vals.data(), out.data());
    const i64 slot = local.slot(jp, s.t_loc);
    for (int v = 0; v < arity; ++v) {
      la[static_cast<std::size_t>(slot * arity + v)] = out[v];
    }
    ++points;
  });
  return points;
}

// The executor's interior fast path, verbatim mechanics.
i64 sweep_fast(const SweepSetup& s, const LdsLayout& local, const Kernel& k,
               std::vector<double>& la) {
  const TilingTransform& tf = s.tiled.transform();
  const MatI dprime = s.tiled.ttis_deps();
  const int q = dprime.cols();
  const int arity = k.arity();
  const int n = s.tiled.nest().depth;
  std::vector<double> dep_vals(static_cast<std::size_t>(q * arity));
  std::vector<double> out(static_cast<std::size_t>(arity));
  const TtisRegion full_region = full_ttis_region(tf);
  const VecI jstep = row_point_step(tf);
  const i64 sstep = local.stride(n - 1);
  std::vector<VecI> dpcols;
  for (int l = 0; l < q; ++l) dpcols.push_back(dprime.col(l));
  std::vector<i64> delta(static_cast<std::size_t>(q));
  i64 points = 0;
  for (TtisRowWalker row(tf, full_region); row.valid(); row.next()) {
    const VecI& jp0 = row.row_start();
    i64 slot = local.row_base(jp0, s.t_loc);
    for (int l = 0; l < q; ++l) {
      delta[static_cast<std::size_t>(l)] =
          local.dep_delta(jp0, dpcols[static_cast<std::size_t>(l)]);
    }
    VecI j = tf.point_of(s.js, jp0);
    const i64 cnt = row.row_points();
    for (i64 i = 0; i < cnt; ++i) {
      for (int l = 0; l < q; ++l) {
        const double* src = &la[static_cast<std::size_t>(
            (slot + delta[static_cast<std::size_t>(l)]) * arity)];
        double* dst = &dep_vals[static_cast<std::size_t>(l * arity)];
        for (int v = 0; v < arity; ++v) dst[v] = src[v];
      }
      k.compute(j, dep_vals.data(), out.data());
      double* dst = &la[static_cast<std::size_t>(slot * arity)];
      for (int v = 0; v < arity; ++v) dst[v] = out[v];
      slot += sstep;
      for (int kk = 0; kk < n; ++kk) {
        j[static_cast<std::size_t>(kk)] += jstep[static_cast<std::size_t>(kk)];
      }
    }
    points += cnt;
  }
  return points;
}

template <typename F>
double time_best_of(int reps, int iters, const F& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) f();
    const double sec =
        std::chrono::duration<double>(Clock::now() - start).count() / iters;
    if (sec < best) best = sec;
  }
  return best;
}

}  // namespace
}  // namespace ctile

int main(int argc, char** argv) {
  using namespace ctile;

  const std::string json_path =
      bench::json_path_from_args(argc, argv, "BENCH_compute_sweep.json");

  // The figures' tile shapes at reduced problem sizes (same tilings and
  // processor meshes; smaller spaces keep the bench fast).
  std::vector<Config> configs;
  configs.push_back({"fig06-sor-rect", make_sor(24, 48),
                     sor_rect_h(6, 18, 8), 2});
  configs.push_back({"fig06-sor-nonrect", make_sor(24, 48),
                     sor_nonrect_h(6, 18, 8), 2});
  configs.push_back({"fig08-jacobi-nonrect", make_jacobi(12, 16, 48),
                     jacobi_nonrect_h(3, 4, 16), -1});
  configs.push_back({"fig10-adi-nr1", make_adi(16, 48),
                     adi_nr1_h(4, 4, 16), -1});
  configs.push_back({"fig10-adi-nr3", make_adi(32, 48),
                     adi_nr3_h(4, 4, 16), -1});

  bench::JsonReport report("micro_compute_sweep");
  std::printf("%-22s %12s %14s %14s %9s\n", "config", "points",
              "legacy (us)", "fast (us)", "speedup");
  bool all_pass = true;
  for (const Config& cfg : configs) {
    SweepSetup s(cfg);
    const Kernel& kernel = *cfg.app.kernel;
    const int arity = kernel.arity();
    const LdsLayout local = s.make_layout();

    // Equivalence: identical initial arrays, one sweep each, then the
    // visited point counts and the whole arrays must match bitwise.
    std::vector<double> la_legacy = SweepSetup::filled(local, arity);
    std::vector<double> la_fast = la_legacy;
    const i64 pts_legacy = sweep_legacy(s, local, kernel, la_legacy);
    const i64 pts_fast = sweep_fast(s, local, kernel, la_fast);
    if (pts_legacy != pts_fast || la_legacy != la_fast) {
      std::printf("%s: fast sweep diverges from legacy (%lld vs %lld pts)\n",
                  cfg.name.c_str(), static_cast<long long>(pts_legacy),
                  static_cast<long long>(pts_fast));
      return 1;
    }

    std::vector<double> la = la_legacy;
    const double legacy_s =
        time_best_of(5, 20, [&] { sweep_legacy(s, local, kernel, la); });
    const double fast_s =
        time_best_of(5, 20, [&] { sweep_fast(s, local, kernel, la); });
    const double speedup = legacy_s / fast_s;
    std::printf("%-22s %12lld %14.3f %14.3f %8.1fx\n", cfg.name.c_str(),
                static_cast<long long>(pts_fast), legacy_s * 1e6,
                fast_s * 1e6, speedup);

    report.begin_row();
    report.field("config", cfg.name);
    report.field("points", pts_fast);
    report.field("legacy_us", legacy_s * 1e6);
    report.field("fast_us", fast_s * 1e6);
    report.field("legacy_points_per_sec",
                 static_cast<double>(pts_fast) / legacy_s);
    report.field("fast_points_per_sec",
                 static_cast<double>(pts_fast) / fast_s);
    report.field("speedup", speedup);

    if (speedup < 10.0) all_pass = false;
  }
  if (!report.write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  if (!all_pass) {
    std::printf("FAIL: fast sweep below the 10x floor on some config\n");
    return 1;
  }
  std::printf("OK: fast sweep >= 10x on every config\n");
  return 0;
}
