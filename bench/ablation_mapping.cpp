// Ablation: choice of the mapping (chain) dimension m.
//
// \S3.1 (citing the authors' UET-UCT work [3]) maps tiles along the
// dimension with the maximum trip count.  This bench executes the same
// tiled program with every possible m and reports the resulting speedup;
// the paper's heuristic should pick the best (or near-best) dimension.
// Tile factors are rebalanced per m so the processor mesh stays 16 nodes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

double run_sor(i64 m_sz, i64 n_sz, int chain_dim,
               const MachineModel& machine, int* nprocs) {
  // Skewed SOR bounds: dim0 [1,M], dim1 [2,M+N], dim2 [3,2M+N].
  const i64 spans_lo[3] = {1, 2, 3};
  const i64 spans_hi[3] = {m_sz, m_sz + n_sz, 2 * m_sz + n_sz};
  // Mesh: the two non-chain dims get 4 tiles each; the chain dim gets a
  // fixed tile thickness of 8.
  i64 f[3];
  for (int k = 0; k < 3; ++k) {
    f[k] = (k == chain_dim) ? 8 : fit_parts(spans_lo[k], spans_hi[k], 4);
  }
  RunConfig cfg;
  cfg.label = "sor";
  cfg.app = make_sor(m_sz, n_sz);
  cfg.h = sor_nonrect_h(f[0], f[1], f[2]);
  cfg.force_m = chain_dim;
  cfg.arity = 1;
  cfg.orig_lo = {1, 1, 1};
  cfg.orig_hi = {m_sz, n_sz, n_sz};
  cfg.skew = sor_skew_matrix();
  RunOutcome out = run_config(cfg, machine);
  *nprocs = out.nprocs;
  return out.sim.speedup;
}

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header("Ablation: mapping-dimension choice (\\S3.1 heuristic)",
               machine);
  const std::vector<int> widths{16, 13, 13, 13, 18};
  print_row({"space (M,N)", "m=1", "m=2", "m=3", "heuristic picks"},
            widths);
  for (auto [m_sz, n_sz] : std::vector<std::pair<i64, i64>>{
           {50, 100}, {100, 200}, {150, 300}}) {
    double sp[3];
    int np[3];
    for (int chain = 0; chain < 3; ++chain) {
      sp[chain] = run_sor(m_sz, n_sz, chain, machine, &np[chain]);
    }
    // What does the auto heuristic choose?  (Longest tile-space dim with
    // the balanced-mesh factors of the m=2 configuration.)
    const i64 x = fit_parts(1, m_sz, 4);
    const i64 y = fit_parts(2, m_sz + n_sz, 4);
    AppInstance app = make_sor(m_sz, n_sz);
    TiledNest tiled(app.nest, TilingTransform(sor_nonrect_h(x, y, 8)));
    Mapping mapping(tiled);
    print_row({"(" + std::to_string(m_sz) + "," + std::to_string(n_sz) + ")",
               fixed(sp[0], 2) + "/" + std::to_string(np[0]) + "p",
               fixed(sp[1], 2) + "/" + std::to_string(np[1]) + "p",
               fixed(sp[2], 2) + "/" + std::to_string(np[2]) + "p",
               "m=" + std::to_string(mapping.m() + 1)},
              widths);
  }
  std::printf("(cells are speedup/processor-count; non-chain dims hold ~4 "
              "tiles each, the skew distorts exact mesh sizes)\n");
  std::printf("expected: the heuristic's dimension (the paper uses m=3 for "
              "SOR) achieves the best speedup\n");
  return 0;
}
