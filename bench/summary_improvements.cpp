// \S4.4 aggregate reproduction: average speedup improvement of the
// cone-derived non-rectangular tiling over the rectangular one, per
// algorithm, across a spread of spaces and tile sizes — the paper's
// headline numbers (SOR 17.3%, Jacobi 9.1%, ADI 10.1%) — plus the two
// qualitative claims: non-rect wins in EVERY configuration, and the ADI
// ordering nr3 > nr1 = nr2 > rect.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

double speedup_for(const AppInstance& app, const MatQ& h, int force_m,
                   int arity, const VecI& lo, const VecI& hi,
                   const MatI& skew, const MachineModel& machine,
                   int* nprocs = nullptr) {
  RunConfig cfg;
  cfg.label = "s";
  cfg.app = app;
  cfg.h = h;
  cfg.force_m = force_m;
  cfg.arity = arity;
  cfg.orig_lo = lo;
  cfg.orig_hi = hi;
  cfg.skew = skew;
  RunOutcome out = run_config(cfg, machine);
  if (nprocs != nullptr) *nprocs = out.nprocs;
  return out.sim.speedup;
}

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header("Summary (\\S4.4): average non-rect improvement per "
               "algorithm",
               machine);

  int rect_wins = 0;

  // ---- SOR.
  double sor_sum = 0.0;
  int sor_n = 0;
  for (auto [m, n] :
       std::vector<std::pair<i64, i64>>{{50, 100}, {100, 100}, {100, 200}}) {
    const i64 x = fit_parts(1, m, 4);
    const i64 y = fit_parts(2, m + n, 4);
    for (i64 z : std::vector<i64>{8, 16, 32}) {
      double r = speedup_for(make_sor(m, n), sor_rect_h(x, y, z), 2, 1,
                             {1, 1, 1}, {m, n, n}, sor_skew_matrix(),
                             machine);
      double nr = speedup_for(make_sor(m, n), sor_nonrect_h(x, y, z), 2, 1,
                              {1, 1, 1}, {m, n, n}, sor_skew_matrix(),
                              machine);
      if (nr <= r) ++rect_wins;
      sor_sum += improvement_pct(r, nr);
      ++sor_n;
    }
  }
  std::printf("SOR    : %5.1f%% average improvement over %d configs "
              "(paper: 17.3%%)\n",
              sor_sum / sor_n, sor_n);

  // ---- Jacobi.
  double jac_sum = 0.0;
  int jac_n = 0;
  for (auto [t, ij] :
       std::vector<std::pair<i64, i64>>{{50, 50}, {50, 100}, {100, 100}}) {
    i64 y = fit_parts(2, t + ij, 4);
    if (y % 2 != 0) ++y;
    const i64 z = fit_parts(2, t + ij, 4);
    for (i64 x : std::vector<i64>{2, 4, 8}) {
      if (x > t) continue;
      double r = speedup_for(make_jacobi(t, ij, ij), jacobi_rect_h(x, y, z),
                             0, 1, {1, 1, 1}, {t, ij, ij},
                             jacobi_skew_matrix(), machine);
      double nr = speedup_for(make_jacobi(t, ij, ij),
                              jacobi_nonrect_h(x, y, z), 0, 1, {1, 1, 1},
                              {t, ij, ij}, jacobi_skew_matrix(), machine);
      if (nr <= r) ++rect_wins;
      jac_sum += improvement_pct(r, nr);
      ++jac_n;
    }
  }
  std::printf("Jacobi : %5.1f%% average improvement over %d configs "
              "(paper:  9.1%%)\n",
              jac_sum / jac_n, jac_n);

  // ---- ADI: nr3 vs rect, plus the full ordering.
  double adi_sum = 0.0;
  int adi_n = 0;
  int ordering_violations = 0;
  for (auto [t, n] :
       std::vector<std::pair<i64, i64>>{{50, 128}, {100, 128}, {100, 256}}) {
    const i64 y = fit_parts(1, n, 4);
    for (i64 x : std::vector<i64>{4, 7, 12}) {
      if (x > t) continue;
      double r = speedup_for(make_adi(t, n), adi_rect_h(x, y, y), 0, 2,
                             {1, 1, 1}, {t, n, n}, MatI::identity(3),
                             machine);
      double n1 = speedup_for(make_adi(t, n), adi_nr1_h(x, y, y), 0, 2,
                              {1, 1, 1}, {t, n, n}, MatI::identity(3),
                              machine);
      double n2 = speedup_for(make_adi(t, n), adi_nr2_h(x, y, y), 0, 2,
                              {1, 1, 1}, {t, n, n}, MatI::identity(3),
                              machine);
      double n3 = speedup_for(make_adi(t, n), adi_nr3_h(x, y, y), 0, 2,
                              {1, 1, 1}, {t, n, n}, MatI::identity(3),
                              machine);
      if (n3 <= r) ++rect_wins;
      if (!(n3 >= n1 && n3 >= n2 && n1 > r && n2 > r)) {
        ++ordering_violations;
      }
      adi_sum += improvement_pct(r, n3);
      ++adi_n;
    }
  }
  std::printf("ADI    : %5.1f%% average improvement over %d configs "
              "(paper: 10.1%%)\n",
              adi_sum / adi_n, adi_n);
  std::printf("configurations where rectangular won: %d (paper: 0)\n",
              rect_wins);
  std::printf("ADI ordering nr3 >= nr1,nr2 > rect violated in %d configs "
              "(paper: 0)\n",
              ordering_violations);

  // ---- Runtime overlap: the executor's pipelined schedule vs the
  // blocking reference, measured (not modelled) on a small SOR under a
  // synthetic wire.  send_wait_s is the time ranks spent blocked on the
  // wire; overlap_efficiency the fraction of rank time spent computing.
  {
    std::printf("\nRuntime overlapped schedule (SOR 12x24, 1 ms wire):\n");
    AppInstance app = make_sor(12, 24);
    TiledNest tiled(app.nest, TilingTransform(sor_rect_h(4, 9, 6)));
    ParallelExecutor exec(tiled, *app.kernel, /*force_m=*/2);
    mpisim::LatencyModel wire;
    wire.per_message_s = 1e-3;
    exec.set_latency_model(wire);
    exec.set_use_overlap(false);
    ParallelRunStats blocking;
    exec.run(&blocking);
    exec.set_use_overlap(true);
    ParallelRunStats overlapped;
    exec.run(&overlapped);
    std::printf("  blocking  : send_wait %7.2f ms  overlap_efficiency %.3f\n",
                blocking.phase_total.send_wait_s * 1e3,
                blocking.overlap_efficiency());
    std::printf("  overlapped: send_wait %7.2f ms  overlap_efficiency %.3f\n",
                overlapped.phase_total.send_wait_s * 1e3,
                overlapped.overlap_efficiency());
  }
  return 0;
}
