// Figure 9 reproduction: ADI integration maximum speedups for different
// iteration spaces — rectangular vs the three non-rectangular tilings
// H_nr1, H_nr2 and H_nr3 of \S4.3 (H_nr3 is parallel to the tiling cone).
//
// All four transformations share tile size, communication volume and
// processor count; tiles are mapped along the first dimension; y = z fix
// the 4x4 mesh; x sweeps.  Expected ordering per the paper's step
// analysis: nr3 > nr1 = nr2 > rect (speedups).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

struct Best {
  double speedup = 0.0;
  i64 x = 0;
};

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header(
      "Figure 9: ADI max speedups for different iteration spaces", machine);
  const std::vector<int> widths{14, 10, 10, 10, 10, 14};
  print_row({"space (T,N)", "rect", "nr1", "nr2", "nr3", "nr3 improve%"},
            widths);
  double sum_impr = 0.0;
  int count = 0;
  for (auto [t, n] : std::vector<std::pair<i64, i64>>{
           {50, 128}, {100, 128}, {100, 256}, {200, 256}}) {
    const i64 y = fit_parts(1, n, 4);
    const i64 z = y;
    Best best[4];
    for (i64 x : std::vector<i64>{2, 3, 4, 6, 8, 12, 16, 25}) {
      if (x > t) continue;
      MatQ hs[4] = {adi_rect_h(x, y, z), adi_nr1_h(x, y, z),
                    adi_nr2_h(x, y, z), adi_nr3_h(x, y, z)};
      for (int v = 0; v < 4; ++v) {
        RunConfig cfg;
        cfg.label = "adi";
        cfg.app = make_adi(t, n);
        cfg.h = hs[v];
        cfg.force_m = 0;
        cfg.arity = 2;
        cfg.orig_lo = {1, 1, 1};
        cfg.orig_hi = {t, n, n};
        cfg.skew = MatI::identity(3);
        RunOutcome out = run_config(cfg, machine);
        if (out.nprocs != 16) continue;
        if (out.sim.speedup > best[v].speedup) {
          best[v].speedup = out.sim.speedup;
          best[v].x = x;
        }
      }
    }
    double impr = improvement_pct(best[0].speedup, best[3].speedup);
    sum_impr += impr;
    ++count;
    print_row({"(" + std::to_string(t) + "," + std::to_string(n) + ")",
               fixed(best[0].speedup, 2), fixed(best[1].speedup, 2),
               fixed(best[2].speedup, 2), fixed(best[3].speedup, 2),
               fixed(impr, 1)},
              widths);
  }
  std::printf("average nr3-vs-rect improvement: %.1f%%  (paper \\S4.4: "
              "10.1%% across the ADI experiments)\n",
              sum_impr / count);
  std::printf("expected ordering: nr3 > nr1 = nr2 > rect "
              "(t_nr3 < t_nr1,t_nr2 < t_r, \\S4.3)\n");
  return 0;
}
