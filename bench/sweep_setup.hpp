// Shared scaffolding for the compute-sweep micro-benches
// (micro_compute_sweep, micro_simd_sweep): a paper tile configuration,
// the interior tile one sweep runs over, its owner's LDS geometry, and
// verbatim replicas of the executor's legacy and strength-reduced
// per-point sweeps to benchmark the production paths against.
#pragma once

#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "linalg/int_matops.hpp"
#include "runtime/lds.hpp"
#include "tiling/interior.hpp"

namespace ctile::bench {

struct SweepConfig {
  std::string name;
  AppInstance app;
  MatQ h;
  int force_m;
};

/// The figures' tile shapes at reduced problem sizes (same tilings and
/// processor meshes; smaller spaces keep the benches fast).
inline std::vector<SweepConfig> paper_sweep_configs() {
  std::vector<SweepConfig> configs;
  configs.push_back({"fig06-sor-rect", make_sor(24, 48),
                     sor_rect_h(6, 18, 8), 2});
  configs.push_back({"fig06-sor-nonrect", make_sor(24, 48),
                     sor_nonrect_h(6, 18, 8), 2});
  configs.push_back({"fig08-jacobi-nonrect", make_jacobi(12, 16, 48),
                     jacobi_nonrect_h(3, 4, 16), -1});
  configs.push_back({"fig10-adi-nr1", make_adi(16, 48),
                     adi_nr1_h(4, 4, 16), -1});
  configs.push_back({"fig10-adi-nr3", make_adi(32, 48),
                     adi_nr3_h(4, 4, 16), -1});
  return configs;
}

// Everything one sweep needs: the tile, its owner's LDS geometry, and a
// deterministically-filled local array to sweep over.
struct SweepSetup {
  TiledNest tiled;
  TileCensus census;
  Mapping mapping;
  TileClassifier classifier;
  VecI js;        // the interior tile being swept
  i64 t_loc = 0;  // its chain position within the owner's window

  explicit SweepSetup(const SweepConfig& cfg)
      : tiled(cfg.app.nest, TilingTransform(cfg.h)),
        census(tiled),
        mapping(tiled, cfg.force_m, &census),
        classifier(tiled, &census) {
    bool found = false;
    tiled.tile_space().scan([&](const VecI& cand) {
      if (found || !classifier.interior(cand)) return;
      js = cand;
      found = true;
    });
    if (!found) throw Error(cfg.name + ": no interior tile to sweep");
    const auto [pid, t] = mapping.owner_of(js);
    t_loc = t - mapping.chain_window(pid).lo;
  }

  LdsLayout make_layout() const {
    const auto [pid, t] = mapping.owner_of(js);
    return LdsLayout(tiled, mapping, mapping.chain_window(pid).count());
  }

  static std::vector<double> filled(const LdsLayout& local, int arity) {
    std::vector<double> la(static_cast<std::size_t>(local.size() * arity));
    fill_deterministic(la.data(), la.size(), 0x5eed5eed);
    return la;
  }
};

// The executor's legacy compute loop, verbatim mechanics.
inline i64 sweep_legacy(const SweepSetup& s, const LdsLayout& local,
                        const Kernel& k, std::vector<double>& la) {
  const Polyhedron& space = s.tiled.nest().space;
  const MatI& deps = s.tiled.nest().deps;
  const MatI dprime = s.tiled.ttis_deps();
  const int q = deps.cols();
  const int arity = k.arity();
  std::vector<double> dep_vals(static_cast<std::size_t>(q * arity));
  std::vector<double> out(static_cast<std::size_t>(arity));
  i64 points = 0;
  s.tiled.for_each_tile_point(s.js, [&](const VecI& jp, const VecI& j) {
    for (int l = 0; l < q; ++l) {
      double* dst = &dep_vals[static_cast<std::size_t>(l * arity)];
      const VecI pred_j = vec_sub(j, deps.col(l));
      if (space.contains(pred_j)) {
        const VecI pred_jp = vec_sub(jp, dprime.col(l));
        const i64 slot = local.slot(pred_jp, s.t_loc);
        for (int v = 0; v < arity; ++v) {
          dst[v] = la[static_cast<std::size_t>(slot * arity + v)];
        }
      } else {
        k.initial(pred_j, dst);
      }
    }
    k.compute(j, dep_vals.data(), out.data());
    const i64 slot = local.slot(jp, s.t_loc);
    for (int v = 0; v < arity; ++v) {
      la[static_cast<std::size_t>(slot * arity + v)] = out[v];
    }
    ++points;
  });
  return points;
}

// The executor's hoisted row plan (ParallelExecutor::RankLocal),
// mirrored for the bench replicas: per row of the full TTIS region, the
// base slot at chain position 0, the per-dependence slot deltas, and
// the J^n start relative to the first row's.  The executor builds this
// once at construction; the replicas build it once per setup, so timed
// sweeps carry the same per-row work as the production paths.
struct RowPlan {
  struct Row {
    i64 plane;   // j'_0 of the row
    i64 count;   // points in the row
    i64 base0;   // linear base slot at chain position 0
    VecI j_rel;  // J^n start relative to the first row's start
  };
  std::vector<Row> rows;
  std::vector<i64> deltas;  // rows.size() * q
  VecI jp0_front;           // first row's TTIS start
  i64 points = 0;

  RowPlan(const SweepSetup& s, const LdsLayout& local) {
    const TilingTransform& tf = s.tiled.transform();
    const MatI dprime = s.tiled.ttis_deps();
    const int q = dprime.cols();
    const int n = s.tiled.nest().depth;
    VecI j_front;
    for (TtisRowWalker row(tf, full_ttis_region(tf)); row.valid();
         row.next()) {
      const VecI& jp0 = row.row_start();
      VecI j_rel = tf.point_of(s.js, jp0);
      if (rows.empty()) {
        jp0_front = jp0;
        j_front = j_rel;
      }
      for (int k = 0; k < n; ++k) {
        j_rel[static_cast<std::size_t>(k)] -=
            j_front[static_cast<std::size_t>(k)];
      }
      rows.push_back(Row{jp0[0], row.row_points(), local.row_base(jp0, 0),
                         std::move(j_rel)});
      for (int l = 0; l < q; ++l) {
        deltas.push_back(local.dep_delta(jp0, dprime.col(l)));
      }
      points += row.row_points();
    }
  }
};

// The executor's interior strength-reduced per-point path (the
// kSequential policy), verbatim mechanics: one point_of per sweep, then
// flat affine slot/point arithmetic off the hoisted plan.
inline i64 sweep_fast(const SweepSetup& s, const LdsLayout& local,
                      const Kernel& k, std::vector<double>& la,
                      const RowPlan& plan) {
  const TilingTransform& tf = s.tiled.transform();
  const int q = s.tiled.ttis_deps().cols();
  const int arity = k.arity();
  const int n = s.tiled.nest().depth;
  std::vector<double> dep_vals(static_cast<std::size_t>(q * arity));
  std::vector<double> out(static_cast<std::size_t>(arity));
  const VecI jstep = row_point_step(tf);
  const i64 sstep = local.stride(n - 1);
  const i64 chain_step = local.chain_step();
  const VecI j_anchor = tf.point_of(s.js, plan.jp0_front);
  i64 points = 0;
  for (std::size_t r = 0; r < plan.rows.size(); ++r) {
    const RowPlan::Row& row = plan.rows[r];
    i64 slot = row.base0 + s.t_loc * chain_step;
    const i64* delta = &plan.deltas[r * static_cast<std::size_t>(q)];
    VecI j = j_anchor;
    for (int kk = 0; kk < n; ++kk) {
      j[static_cast<std::size_t>(kk)] += row.j_rel[static_cast<std::size_t>(kk)];
    }
    for (i64 i = 0; i < row.count; ++i) {
      for (int l = 0; l < q; ++l) {
        const double* src =
            &la[static_cast<std::size_t>((slot + delta[l]) * arity)];
        double* dst = &dep_vals[static_cast<std::size_t>(l * arity)];
        for (int v = 0; v < arity; ++v) dst[v] = src[v];
      }
      k.compute(j, dep_vals.data(), out.data());
      double* dst = &la[static_cast<std::size_t>(slot * arity)];
      for (int v = 0; v < arity; ++v) dst[v] = out[v];
      slot += sstep;
      for (int kk = 0; kk < n; ++kk) {
        j[static_cast<std::size_t>(kk)] += jstep[static_cast<std::size_t>(kk)];
      }
    }
    points += row.count;
  }
  return points;
}

}  // namespace ctile::bench
