// 4096-rank wavefront-drain and overlap-efficiency study — the
// production-scale experiment the 2002 paper's 16-node testbed could
// never run (ROADMAP item 2), made possible by the event-driven mpisim
// backend: 64x64 ranks as fibers on ONE OS thread, with the latency
// model advancing a virtual clock instead of sleeping.
//
// The program is the communication skeleton of the paper's tiled
// skewed-stencil codes mapped onto a 2D processor mesh: per chain step
// every rank receives its north and west halos, computes (modelled via
// Comm::advance — pure virtual time), and sends its south and east
// halos.  Two schedules, exactly the executor's pair:
//
//   blocking   — \S3.2 RECEIVE/COMPUTE/SEND: each send occupies the
//                sender until the wire drains,
//   overlapped — IPDPS'01 pipelining: isend at band completion, one
//                wait_all drain at the end of the chain.
//
// Reported per schedule, all in VIRTUAL seconds: makespan, the
// fill/steady/drain wavefront phases (cluster/simulator's DrainProfile
// over the per-rank busy intervals), and overlap efficiency
// (total modelled compute / (makespan * ranks)).  Wall time is reported
// too — it is the "4096 ranks in one OS thread" demonstration, ~10^4x
// below the virtual makespan.
//
// Self-checking (exit 1 on violation): both schedules produce
// bitwise-identical numerics, the drain profile partitions the
// makespan, the overlapped schedule beats blocking by >= 1.3x virtual
// makespan, and the whole run stays on one OS thread.
//
// A weak-scaling sweep over mesh sides {16, 32, 64} rides along: work
// per rank is constant (kSteps tiles of kComputeS), so the ideal
// makespan is flat and any growth is wavefront fill/drain — the
// steady-state fraction shrinks as the diagonal lengthens.  The
// self-check gates stay pinned to the 64x64 flagship; the smaller
// sides are reported for the scaling table in EXPERIMENTS.md.
//
// Results are written as JSON (BENCH_wavefront_drain.json, or
// --json <path>).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"
#include "mpisim/mpisim.hpp"

namespace ctile {
namespace {

using WallClock = std::chrono::steady_clock;

constexpr int kSide = 64;               // flagship: 64 x 64 = 4096 ranks
constexpr int kSweepSides[] = {16, 32, 64};  // weak-scaling sweep
constexpr int kSteps = 8;               // chain length per rank
constexpr std::size_t kHalo = 64;       // doubles per halo message
constexpr double kComputeS = 200e-6;    // modelled compute per tile

struct ScheduleResult {
  int ranks = 0;                // side * side fibers in this run
  double wall_s = 0.0;          // real time for the whole run
  double makespan_s = 0.0;      // virtual completion time
  double compute_total_s = 0.0; // sum of modelled compute over ranks
  DrainProfile profile;         // virtual-time wavefront phases
  i64 messages = 0;
  std::vector<double> checksum; // per-rank final value (bitwise witness)
  bool single_thread = true;
};

i64 tag_of(int step, int dir) { return static_cast<i64>(step) * 2 + dir; }

ScheduleResult run_schedule(int side, bool overlapped, u64 seed) {
  const int ranks = side * side;
  ScheduleResult out;
  out.ranks = ranks;
  out.checksum.assign(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> start_s(static_cast<std::size_t>(ranks), 0.0);
  std::vector<double> end_s(static_cast<std::size_t>(ranks), 0.0);

  mpisim::CommConfig config;
  config.backend = mpisim::Backend::kEvent;
  config.seed = seed;
  config.latency.per_message_s = 100e-6;
  config.latency.per_double_s = 4e-6;  // 64-double halo -> 356us wire

  const std::thread::id host = std::this_thread::get_id();
  const auto wall_start = WallClock::now();
  mpisim::run_ranks(
      ranks,
      [&](int rank, mpisim::Comm& comm) {
        if (std::this_thread::get_id() != host) out.single_thread = false;
        const int row = rank / side;
        const int col = rank % side;
        mpisim::Comm::Clock::time_point t_first{};
        bool started = false;
        double acc = 1.0 + 1e-3 * static_cast<double>(rank);
        std::vector<mpisim::Request> in_flight;
        for (int step = 0; step < kSteps; ++step) {
          double north = 0.25, west = 0.25;
          if (row > 0) {
            std::vector<double> halo =
                comm.recv(rank, rank - side, tag_of(step, 0));
            north = halo[0];
            comm.release_buffer(rank, std::move(halo));
          }
          if (col > 0) {
            std::vector<double> halo =
                comm.recv(rank, rank - 1, tag_of(step, 1));
            west = halo[0];
            comm.release_buffer(rank, std::move(halo));
          }
          if (!started) {  // first tile compute = TileTrace.start
            t_first = comm.now();
            started = true;
          }
          comm.advance(rank, kComputeS);  // the tile's modelled compute
          acc = acc * 0.5 + north * 0.25 + west * 0.25;
          if (row + 1 < side) {
            std::vector<double> halo = comm.acquire_buffer(rank, kHalo);
            halo.assign(kHalo, acc);
            if (overlapped) {
              in_flight.push_back(
                  comm.isend(rank, rank + side, tag_of(step, 0),
                             std::move(halo)));
            } else {
              comm.send(rank, rank + side, tag_of(step, 0),
                        std::move(halo));
            }
          }
          if (col + 1 < side) {
            std::vector<double> halo = comm.acquire_buffer(rank, kHalo);
            halo.assign(kHalo, acc);
            if (overlapped) {
              in_flight.push_back(comm.isend(rank, rank + 1,
                                             tag_of(step, 1),
                                             std::move(halo)));
            } else {
              comm.send(rank, rank + 1, tag_of(step, 1), std::move(halo));
            }
          }
        }
        comm.wait_all(in_flight);  // overlapped: drain the pipeline once
        out.checksum[static_cast<std::size_t>(rank)] = acc;
        start_s[static_cast<std::size_t>(rank)] =
            std::chrono::duration<double>(t_first.time_since_epoch()).count();
        end_s[static_cast<std::size_t>(rank)] =
            std::chrono::duration<double>(comm.now().time_since_epoch())
                .count();
        comm.barrier(rank);
        if (rank == 0) out.messages = comm.messages_sent();
      },
      config);
  out.wall_s =
      std::chrono::duration<double>(WallClock::now() - wall_start).count();

  // Rebase virtual times to the run's start and pour the per-rank busy
  // intervals into a SimResult so cluster/simulator's drain_profile
  // carves the phases with the same definition the DES studies use.
  double t_min = start_s[0];
  for (double s : start_s) t_min = std::min(t_min, s);
  SimResult sim;
  for (int rank = 0; rank < ranks; ++rank) {
    const double s = start_s[static_cast<std::size_t>(rank)] - t_min;
    const double e = end_s[static_cast<std::size_t>(rank)] - t_min;
    sim.trace.push_back(TileTrace{rank, 0, s, e});
    sim.makespan = std::max(sim.makespan, e);
  }
  out.makespan_s = sim.makespan;
  out.profile = drain_profile(sim);
  out.compute_total_s =
      static_cast<double>(ranks) * static_cast<double>(kSteps) * kComputeS;
  return out;
}

double efficiency(const ScheduleResult& r) {
  return r.makespan_s > 0.0
             ? r.compute_total_s /
                   (r.makespan_s * static_cast<double>(r.ranks))
             : 0.0;
}

}  // namespace
}  // namespace ctile

int main(int argc, char** argv) {
  using namespace ctile;

  const std::string json_path = bench::json_path_from_args(
      argc, argv, "BENCH_wavefront_drain.json");

  std::printf("wavefront drain: sides {16, 32, 64}, %d steps, halo %zu "
              "doubles, compute %.0fus/tile\n",
              kSteps, kHalo, kComputeS * 1e6);

  bool ok = true;
  bench::JsonReport report("wavefront_drain");
  const double kGate = 1.3;
  std::printf("%5s %-11s %10s %12s %10s %10s %10s %8s %9s\n", "side",
              "schedule", "wall (s)", "virt (s)", "fill (s)", "steady",
              "drain", "eff", "messages");

  for (int side : kSweepSides) {
    const bool flagship = side == kSide;
    const ScheduleResult blocking =
        run_schedule(side, /*overlapped=*/false, /*seed=*/1);
    const ScheduleResult overlapped =
        run_schedule(side, /*overlapped=*/true, /*seed=*/1);

    if (!blocking.single_thread || !overlapped.single_thread) {
      std::printf("FAIL: %dx%d ranks escaped the scheduler's OS thread\n",
                  side, side);
      ok = false;
    }
    // Both schedules move the same values: bitwise-identical checksums.
    for (int r = 0; r < blocking.ranks; ++r) {
      if (blocking.checksum[static_cast<std::size_t>(r)] !=
          overlapped.checksum[static_cast<std::size_t>(r)]) {
        std::printf("FAIL: %dx%d schedules diverged at rank %d\n", side,
                    side, r);
        ok = false;
        break;
      }
    }
    // A different seed must not change the numerics either (flagship
    // only — one reseeded 4096-rank run covers the property).
    if (flagship) {
      const ScheduleResult reseeded =
          run_schedule(side, /*overlapped=*/true, /*seed=*/77);
      if (reseeded.checksum != overlapped.checksum) {
        std::printf("FAIL: interleaving seed changed the numerics\n");
        ok = false;
      }
    }

    const ScheduleResult* rows[2] = {&blocking, &overlapped};
    const char* names[2] = {"blocking", "overlapped"};
    for (int i = 0; i < 2; ++i) {
      const ScheduleResult& r = *rows[i];
      std::printf(
          "%5d %-11s %10.3f %12.4f %10.4f %10.4f %10.4f %7.1f%% %9lld\n",
          side, names[i], r.wall_s, r.makespan_s, r.profile.fill,
          r.profile.steady, r.profile.drain, 100.0 * efficiency(r),
          static_cast<long long>(r.messages));
      report.begin_row();
      report.field("schedule", names[i]);
      report.field("side", static_cast<i64>(side));
      report.field("ranks", static_cast<i64>(r.ranks));
      report.field("steps", static_cast<i64>(kSteps));
      report.field("wall_s", r.wall_s);
      report.field("virtual_makespan_s", r.makespan_s);
      report.field("fill_s", r.profile.fill);
      report.field("steady_s", r.profile.steady);
      report.field("drain_s", r.profile.drain);
      report.field("overlap_efficiency", efficiency(r));
      report.field("messages", r.messages);

      const double parts =
          r.profile.fill + r.profile.steady + r.profile.drain;
      if (std::abs(parts - r.makespan_s) > 1e-9 * r.makespan_s) {
        std::printf("FAIL: %dx%d %s drain profile does not partition "
                    "makespan\n", side, side, names[i]);
        ok = false;
      }
    }

    const double speedup = overlapped.makespan_s > 0.0
                               ? blocking.makespan_s / overlapped.makespan_s
                               : 0.0;
    std::printf("%5d overlapped vs blocking virtual speedup: %.2fx\n",
                side, speedup);
    report.begin_row();
    report.field("schedule", "speedup");
    report.field("side", static_cast<i64>(side));
    report.field("virtual_speedup", speedup);
    // The perf gates stay pinned to the 64x64 flagship; smaller sides
    // are weak-scaling observations.
    if (flagship) {
      if (speedup < kGate) {
        std::printf("FAIL: overlapped virtual speedup %.2fx below %.1fx "
                    "floor\n", speedup, kGate);
        ok = false;
      }
      if (efficiency(overlapped) <= efficiency(blocking)) {
        std::printf("FAIL: overlap did not improve efficiency\n");
        ok = false;
      }
    }
  }

  if (!report.write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  if (!ok) return 1;
  std::printf("OK: 4096 fibers on one OS thread; overlap >= %.1fx in "
              "virtual time\n", kGate);
  return 0;
}
