// Figure 8 reproduction: Jacobi speedups for various tile sizes at
// T = 50, I = J = 100 (the caption's space), 16 processors.  y and z fix
// the 4x4 mesh; x sweeps the tile size.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

int main() {
  const i64 t = 50, ij = 100;
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header(
      "Figure 8: Jacobi speedups vs tile size (T=50, I=J=100, 16 procs)",
      machine);
  i64 y = fit_parts(2, t + ij, 4);
  if (y % 2 != 0) ++y;  // stride-compatibility: c_2 = 2 divides v_2
  const i64 z = fit_parts(2, t + ij, 4);
  std::printf("mesh tiles: y=%lld, z=%lld (4x4 processors)\n",
              static_cast<long long>(y), static_cast<long long>(z));
  const std::vector<int> widths{8, 12, 12, 12, 12};
  print_row({"x", "tile size", "rect", "nonrect", "improve%"}, widths);
  double sum_impr = 0.0;
  int count = 0;
  for (i64 x : std::vector<i64>{2, 3, 4, 5, 6, 8, 10, 13, 17, 25}) {
    double sp[2] = {0.0, 0.0};
    bool ok = true;
    for (bool nonrect : {false, true}) {
      RunConfig cfg;
      cfg.label = nonrect ? "nonrect" : "rect";
      cfg.app = make_jacobi(t, ij, ij);
      cfg.h = nonrect ? jacobi_nonrect_h(x, y, z) : jacobi_rect_h(x, y, z);
      cfg.force_m = 0;
      cfg.arity = 1;
      cfg.orig_lo = {1, 1, 1};
      cfg.orig_hi = {t, ij, ij};
      cfg.skew = jacobi_skew_matrix();
      RunOutcome out = run_config(cfg, machine);
      if (out.nprocs != 16) {
        ok = false;
        break;
      }
      sp[nonrect ? 1 : 0] = out.sim.speedup;
    }
    if (!ok) continue;
    double impr = improvement_pct(sp[0], sp[1]);
    sum_impr += impr;
    ++count;
    print_row({std::to_string(x), std::to_string(x * y * z), fixed(sp[0], 2),
               fixed(sp[1], 2), fixed(impr, 1)},
              widths);
  }
  if (count > 0) {
    std::printf("average improvement over the sweep: %.1f%%\n",
                sum_impr / count);
  }
  return 0;
}
