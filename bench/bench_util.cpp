#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace ctile::bench {

double time_best_of(int reps, int iters, const std::function<void()>& fn) {
  CTILE_ASSERT(reps >= 1 && iters >= 1);
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up: first-touch faults, caches, lazy singletons
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double s =
        std::chrono::duration<double>(Clock::now() - start).count() / iters;
    if (r == 0 || s < best) best = s;
  }
  return best;
}

void fill_deterministic(double* data, std::size_t n, u64 seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = 1.0 + rng.uniform01();  // [1, 2): safely away from 0
  }
}

i64 fit_parts(i64 lo, i64 hi, i64 parts) {
  CTILE_ASSERT(hi >= lo && parts >= 1);
  for (i64 s = 1; s <= hi - lo + 1; ++s) {
    i64 count = floor_div(hi, s) - floor_div(lo, s) + 1;
    if (count == parts) return s;
    if (count < parts) break;  // counts only shrink as s grows
  }
  throw Error("fit_parts: no tile size spans [" + std::to_string(lo) + "," +
              std::to_string(hi) + "] with " + std::to_string(parts) +
              " parts");
}

RunOutcome run_config(const RunConfig& config, const MachineModel& machine) {
  TiledNest tiled(config.app.nest, TilingTransform(config.h));
  TileCensus census =
      TileCensus::from_box(tiled, config.orig_lo, config.orig_hi, config.skew);
  Mapping mapping(tiled, config.force_m, &census);
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  RunOutcome out;
  out.label = config.label;
  out.nprocs = mapping.num_procs();
  out.tile_size = tiled.transform().tile_size();
  out.sim = simulate_cluster(tiled, mapping, lds, plan, census, machine,
                             config.arity);
  return out;
}

void print_header(const std::string& title, const MachineModel& machine) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "model: 16x PIII-500 / FastEthernet -- %.0f ns/iter, %.0f us "
      "latency, %.1f MB/s\n",
      machine.sec_per_iter * 1e9, machine.latency * 1e6,
      machine.bandwidth / 1e6);
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 12;
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-*s", w, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

double improvement_pct(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a * 100.0;
}

namespace {

// Percentile of an already-sorted sample (linear interpolation between
// closest ranks).
double percentile_sorted(const std::vector<double>& xs, double p) {
  CTILE_ASSERT_MSG(!xs.empty(), "percentile of an empty sample");
  CTILE_ASSERT(p >= 0.0 && p <= 100.0);
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

}  // namespace

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

Percentiles percentiles_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  Percentiles out;
  out.p50 = percentile_sorted(xs, 50.0);
  out.p95 = percentile_sorted(xs, 95.0);
  out.p99 = percentile_sorted(xs, 99.0);
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonReport::begin_row() { rows_.emplace_back(); }

void JsonReport::field(const std::string& key, const std::string& value) {
  CTILE_ASSERT_MSG(!rows_.empty(), "JsonReport::field before begin_row");
  rows_.back().emplace_back(key, "\"" + json_escape(value) + "\"");
}

void JsonReport::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonReport::field(const std::string& key, double value) {
  CTILE_ASSERT_MSG(!rows_.empty(), "JsonReport::field before begin_row");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  rows_.back().emplace_back(key, buf);
}

void JsonReport::field(const std::string& key, i64 value) {
  CTILE_ASSERT_MSG(!rows_.empty(), "JsonReport::field before begin_row");
  rows_.back().emplace_back(key, std::to_string(value));
}

std::string JsonReport::to_string() const {
  std::string out = "{\"name\": \"" + json_escape(name_) + "\", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "\n" : ",\n";
    out += "  {";
    for (std::size_t f = 0; f < rows_[r].size(); ++f) {
      if (f > 0) out += ", ";
      out += "\"" + json_escape(rows_[r][f].first) +
             "\": " + rows_[r][f].second;
    }
    out += "}";
  }
  out += rows_.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool JsonReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string body = to_string();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "JsonReport: short write to %s\n", path.c_str());
  }
  return ok;
}

namespace {

// Shared row renderer for JsonReport rows and JsonArray items.
std::string render_object(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "{";
  for (std::size_t f = 0; f < fields.size(); ++f) {
    if (f > 0) out += ", ";
    out += "\"" + json_escape(fields[f].first) + "\": " + fields[f].second;
  }
  out += "}";
  return out;
}

}  // namespace

void JsonArray::begin_item() { items_.emplace_back(); }

void JsonArray::field(const std::string& key, const std::string& value) {
  CTILE_ASSERT_MSG(!items_.empty(), "JsonArray::field before begin_item");
  items_.back().emplace_back(key, "\"" + json_escape(value) + "\"");
}

void JsonArray::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void JsonArray::field(const std::string& key, double value) {
  CTILE_ASSERT_MSG(!items_.empty(), "JsonArray::field before begin_item");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  items_.back().emplace_back(key, buf);
}

void JsonArray::field(const std::string& key, i64 value) {
  CTILE_ASSERT_MSG(!items_.empty(), "JsonArray::field before begin_item");
  items_.back().emplace_back(key, std::to_string(value));
}

void JsonArray::field(const std::string& key, bool value) {
  CTILE_ASSERT_MSG(!items_.empty(), "JsonArray::field before begin_item");
  items_.back().emplace_back(key, value ? "true" : "false");
}

std::string JsonArray::to_string() const {
  std::string out = "[";
  for (std::size_t r = 0; r < items_.size(); ++r) {
    out += r == 0 ? "\n  " : ",\n  ";
    out += render_object(items_[r]);
  }
  out += items_.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string JsonArray::item_to_string() const {
  CTILE_ASSERT_MSG(!items_.empty(), "JsonArray::item_to_string on empty");
  return render_object(items_.back());
}

bool JsonArray::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonArray: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string body = to_string();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "JsonArray: short write to %s\n", path.c_str());
  }
  return ok;
}

std::string json_path_from_args(int argc, char** argv,
                                const std::string& fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) throw Error("--json requires a path argument");
      return argv[i + 1];
    }
  }
  return fallback;
}

}  // namespace ctile::bench
