#include "bench_util.hpp"

#include <cstdio>

#include "support/strings.hpp"

namespace ctile::bench {

i64 fit_parts(i64 lo, i64 hi, i64 parts) {
  CTILE_ASSERT(hi >= lo && parts >= 1);
  for (i64 s = 1; s <= hi - lo + 1; ++s) {
    i64 count = floor_div(hi, s) - floor_div(lo, s) + 1;
    if (count == parts) return s;
    if (count < parts) break;  // counts only shrink as s grows
  }
  throw Error("fit_parts: no tile size spans [" + std::to_string(lo) + "," +
              std::to_string(hi) + "] with " + std::to_string(parts) +
              " parts");
}

RunOutcome run_config(const RunConfig& config, const MachineModel& machine) {
  TiledNest tiled(config.app.nest, TilingTransform(config.h));
  TileCensus census =
      TileCensus::from_box(tiled, config.orig_lo, config.orig_hi, config.skew);
  Mapping mapping(tiled, config.force_m, &census);
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  RunOutcome out;
  out.label = config.label;
  out.nprocs = mapping.num_procs();
  out.tile_size = tiled.transform().tile_size();
  out.sim = simulate_cluster(tiled, mapping, lds, plan, census, machine,
                             config.arity);
  return out;
}

void print_header(const std::string& title, const MachineModel& machine) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "model: 16x PIII-500 / FastEthernet -- %.0f ns/iter, %.0f us "
      "latency, %.1f MB/s\n",
      machine.sec_per_iter * 1e9, machine.latency * 1e6,
      machine.bandwidth / 1e6);
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 12;
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-*s", w, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

double improvement_pct(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a * 100.0;
}

}  // namespace ctile::bench
