// Micro-benchmarks backing the paper's \S3.1 claim that the LDS
// addressing scheme adds "negligible compile-time and run-time overhead":
// per-call costs of map/map^{-1}/loc/loc^{-1}, the TTIS walker, the
// compile-time machinery (HNF, Fourier-Motzkin tile-space bounds,
// communication-set derivation), and pack-region enumeration throughput.
#include <benchmark/benchmark.h>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"
#include "codegen/parallel_gen.hpp"
#include "linalg/hnf.hpp"
#include "runtime/comm_plan.hpp"

namespace ctile {
namespace {

const AppInstance& sor_app() {
  static AppInstance app = make_sor(24, 48);
  return app;
}

const TiledNest& sor_tiled() {
  static TiledNest tiled(sor_app().nest,
                         TilingTransform(sor_nonrect_h(6, 18, 8)));
  return tiled;
}

const Mapping& sor_mapping() {
  static Mapping mapping(sor_tiled(), 2);
  return mapping;
}

const LdsLayout& sor_lds() {
  static LdsLayout lds(sor_tiled(), sor_mapping());
  return lds;
}

void BM_LdsMap(benchmark::State& state) {
  const LdsLayout& lds = sor_lds();
  VecI jp{3, 7, 5};
  i64 t = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lds.slot(jp, t));
  }
}
BENCHMARK(BM_LdsMap);

void BM_LdsMapInverse(benchmark::State& state) {
  const LdsLayout& lds = sor_lds();
  VecI jpp = lds.map({3, 7, 5}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lds.map_inv(jpp));
  }
}
BENCHMARK(BM_LdsMapInverse);

void BM_LocTileOf(benchmark::State& state) {
  const TilingTransform& tf = sor_tiled().transform();
  VecI j{13, 27, 41};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tf.tile_of(j));
  }
}
BENCHMARK(BM_LocTileOf);

void BM_LocPointOf(benchmark::State& state) {
  const TilingTransform& tf = sor_tiled().transform();
  VecI js{1, 1, 2}, jp{3, 7, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tf.point_of(js, jp));
  }
}
BENCHMARK(BM_LocPointOf);

void BM_TtisWalkFullTile(benchmark::State& state) {
  const TilingTransform& tf = sor_tiled().transform();
  TtisRegion region = full_ttis_region(tf);
  for (auto _ : state) {
    i64 count = 0;
    for_each_lattice_point(tf, region, [&](const VecI&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          sor_tiled().transform().tile_size());
}
BENCHMARK(BM_TtisWalkFullTile);

void BM_CompileHnf(benchmark::State& state) {
  MatI hp{{2, -1, 0}, {0, 1, 0}, {-1, 0, 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hermite_normal_form(hp));
  }
}
BENCHMARK(BM_CompileHnf);

void BM_CompileTileSpaceBounds(benchmark::State& state) {
  for (auto _ : state) {
    TiledNest tiled(sor_app().nest,
                    TilingTransform(sor_nonrect_h(6, 18, 8)));
    benchmark::DoNotOptimize(tiled.tile_space().num_constraints());
  }
}
BENCHMARK(BM_CompileTileSpaceBounds);

void BM_CompileCommPlan(benchmark::State& state) {
  for (auto _ : state) {
    TiledNest tiled(sor_app().nest,
                    TilingTransform(sor_nonrect_h(6, 18, 8)));
    Mapping mapping(tiled, 2);
    LdsLayout lds(tiled, mapping);
    CommPlan plan(tiled, mapping, lds);
    benchmark::DoNotOptimize(plan.directions().size());
  }
}
BENCHMARK(BM_CompileCommPlan);

void BM_CompileFullCodegen(benchmark::State& state) {
  // The whole "tool" pass: tiling analysis + emitted MPI program.
  for (auto _ : state) {
    TiledNest tiled(sor_app().nest,
                    TilingTransform(sor_nonrect_h(6, 18, 8)));
    codegen::ParallelGenOptions opt;
    opt.force_m = 2;
    std::string code =
        codegen::generate_parallel_mpi(tiled, codegen::sor_spec(), opt);
    benchmark::DoNotOptimize(code.size());
  }
}
BENCHMARK(BM_CompileFullCodegen);

void BM_PackRegionEnumeration(benchmark::State& state) {
  const TiledNest& tiled = sor_tiled();
  Mapping mapping(tiled, 2);
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  const TilingTransform& tf = tiled.transform();
  for (auto _ : state) {
    i64 points = 0;
    for (std::size_t d = 0; d < plan.directions().size(); ++d) {
      for_each_lattice_point(tf, plan.directions()[d].pack,
                             [&](const VecI&) { ++points; });
    }
    benchmark::DoNotOptimize(points);
  }
}
BENCHMARK(BM_PackRegionEnumeration);

void BM_CensusFromBox(benchmark::State& state) {
  const TiledNest& tiled = sor_tiled();
  for (auto _ : state) {
    TileCensus census = TileCensus::from_box(tiled, {1, 1, 1}, {24, 48, 48},
                                             sor_skew_matrix());
    benchmark::DoNotOptimize(census.total());
  }
  state.SetItemsProcessed(state.iterations() * 24 * 48 * 48);
}
BENCHMARK(BM_CensusFromBox);

}  // namespace
}  // namespace ctile

BENCHMARK_MAIN();
