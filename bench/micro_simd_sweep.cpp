// Micro-benchmark for the execution-policy compute backends: on the
// paper's Figure 6/8/10 tile configurations (SOR, Jacobi, ADI at their
// 16-processor tilings), pick an interior tile and time one full compute
// sweep of it through
//
//   (a) the kSequential reference: the strength-reduced per-point row
//       walk (one virtual Kernel::compute call per point), and
//   (b) the kSimd path: whole rows handed to the batched
//       Kernel::compute_row (hand-vectorized SOR/Jacobi/ADI bodies), and
//   (c) the kThreadPool path: (b) plus the rows of each j'_0-plane
//       fanned across the shared compute pool (where the tiling's TTIS
//       dependencies permit; SOR's in-plane dependencies make it degrade
//       to the kSimd path, which is reported as pooled=0).
//
// All paths execute the same kernel over the same points and must leave
// bitwise-identical local arrays (asserted here; exhaustively in
// runtime_exec_policy_test).  The kSimd path is gated per configuration
// — the process exits nonzero below the floor, so this bench doubles as
// a perf regression check for the row kernels:
//
//   - vectorizable rows (no dependence along the row direction):
//     >= 4x over the per-point reference;
//   - recurrence-bound rows (a dependence lies exactly along the row —
//     SOR's in-row Gauss-Seidel term, ADI under the nr3 tiling): >= 2x.
//     Bitwise preservation forbids reassociating the serial chain, so
//     these rows are latency-bound on a ~2-op dependent chain per point
//     (Amdahl); the batched path still wins by vectorizing the
//     off-chain terms and deleting the per-point dispatch, but a 4x
//     floor is unreachable in principle, not merely unmet.
//
// Whether a configuration is recurrence-bound is detected from the row
// plan (a dependence slot delta that is a whole, in-row number of row
// steps), not hard-coded.  The pool path is reported ungated (its win
// depends on core count; on a 1-core box it can only lose) but is still
// held to bitwise equality.  A final end-to-end check runs the full
// ParallelExecutor under each policy and compares data spaces.  Results
// are written as JSON (BENCH_simd_sweep.json, or --json <path>).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "runtime/exec_policy.hpp"
#include "runtime/parallel_executor.hpp"
#include "sweep_setup.hpp"

namespace ctile {
namespace {

// The executors' batched row path, verbatim mechanics: per-row base slot
// and dependence pointers off the hoisted plan, whole row to
// Kernel::compute_row; with `pooled`, rows are grouped by j'_0-plane and
// fanned across the shared pool (callers must have checked
// plane-parallel legality).
i64 sweep_batched(const bench::SweepSetup& s, const LdsLayout& local,
                  const Kernel& k, std::vector<double>& la,
                  const bench::RowPlan& plan, bool pooled) {
  const TilingTransform& tf = s.tiled.transform();
  const int q = s.tiled.ttis_deps().cols();
  const int arity = k.arity();
  const int n = s.tiled.nest().depth;
  const VecI jstep = row_point_step(tf);
  const i64 sstep = local.stride(n - 1);
  const i64 chain_step = local.chain_step();
  const VecI j_anchor = tf.point_of(s.js, plan.jp0_front);

  // `depp` and `j` are caller-provided scratch (reused across rows, one
  // set per concurrent lane) so the hot loop performs no allocation.
  auto run_row = [&](std::size_t r, const double** depp, VecI& j) {
    const bench::RowPlan::Row& row = plan.rows[r];
    const i64 slot = row.base0 + s.t_loc * chain_step;
    const i64* delta = &plan.deltas[r * static_cast<std::size_t>(q)];
    for (int l = 0; l < q; ++l) {
      depp[l] = la.data() + (slot + delta[l]) * arity;
    }
    j = j_anchor;
    for (int kk = 0; kk < n; ++kk) {
      j[static_cast<std::size_t>(kk)] +=
          row.j_rel[static_cast<std::size_t>(kk)];
    }
    k.compute_row(j, jstep, row.count, depp, q, sstep * arity,
                  la.data() + slot * arity, sstep * arity);
  };

  if (!pooled) {
    std::vector<const double*> depp(static_cast<std::size_t>(q));
    VecI jrow;
    for (std::size_t r = 0; r < plan.rows.size(); ++r) {
      run_row(r, depp.data(), jrow);
    }
    return plan.points;
  }
  std::vector<const double*> scratch;
  std::vector<VecI> jscratch;
  std::size_t i = 0;
  while (i < plan.rows.size()) {
    std::size_t j = i;  // [i, j): one j'_0-plane of contiguous rows
    while (j < plan.rows.size() && plan.rows[j].plane == plan.rows[i].plane) {
      ++j;
    }
    scratch.resize((j - i) * static_cast<std::size_t>(q));
    if (jscratch.size() < j - i) jscratch.resize(j - i);
    exec::compute_pool().parallel_for(
        static_cast<i64>(j - i), [&](i64 r) {
          run_row(i + static_cast<std::size_t>(r),
                  scratch.data() +
                      static_cast<std::size_t>(r) * static_cast<std::size_t>(q),
                  jscratch[static_cast<std::size_t>(r)]);
        });
    i = j;
  }
  return plan.points;
}

// True when some dependence of some row lies a whole, in-row number of
// row steps behind (or ahead of) the output row — i.e. the row carries a
// genuine recurrence that bitwise preservation forces us to execute as a
// serial chain.  Mirrors Kernel::row_alias_distance, but over the whole
// plan: one recurrence-bound row makes the configuration
// recurrence-bound for gating purposes.
bool row_recurrence_of(const bench::RowPlan& plan, i64 sstep, int q) {
  if (sstep == 0) return false;
  for (std::size_t r = 0; r < plan.rows.size(); ++r) {
    const i64 count = plan.rows[r].count;
    for (int l = 0; l < q; ++l) {
      const i64 delta = plan.deltas[r * static_cast<std::size_t>(q) + l];
      if (delta == 0 || delta % sstep != 0) continue;
      const i64 m = delta / sstep;
      const i64 am = m < 0 ? -m : m;
      if (am < count) return true;
    }
  }
  return false;
}

bool plane_parallel_of(const TiledNest& tiled) {
  const MatI dprime = tiled.ttis_deps();
  for (int l = 0; l < dprime.cols(); ++l) {
    if (dprime(0, l) < 1) return false;
  }
  return true;
}

// End-to-end policy equivalence: the full ParallelExecutor under kSimd
// and kThreadPool must reproduce the kSequential data space bitwise.
bool e2e_policies_agree(const bench::SweepConfig& cfg) {
  TiledNest tiled(cfg.app.nest, TilingTransform(cfg.h));
  ParallelExecutor exec(tiled, *cfg.app.kernel, cfg.force_m);
  exec.set_exec_policy(exec::Policy::kSequential);
  const DataSpace ref = exec.run();
  for (exec::Policy p : {exec::Policy::kSimd, exec::Policy::kThreadPool}) {
    exec.set_exec_policy(p);
    const DataSpace got = exec.run();
    if (DataSpace::max_abs_diff(got, ref, cfg.app.nest.space) != 0.0) {
      std::printf("%s: policy %s diverges from sequential end-to-end\n",
                  cfg.name.c_str(), exec::policy_name(p));
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace ctile

int main(int argc, char** argv) {
  using namespace ctile;

  const std::string json_path =
      bench::json_path_from_args(argc, argv, "BENCH_simd_sweep.json");

  const std::vector<bench::SweepConfig> configs = bench::paper_sweep_configs();

  bench::JsonReport report("micro_simd_sweep");
  std::printf("%-22s %10s %12s %12s %12s %8s %8s %7s %6s %6s\n", "config",
              "points", "seq (us)", "simd (us)", "pool (us)", "simd-x",
              "pool-x", "pooled", "recur", "floor");
  bool all_pass = true;
  for (const bench::SweepConfig& cfg : configs) {
    bench::SweepSetup s(cfg);
    const Kernel& kernel = *cfg.app.kernel;
    const int arity = kernel.arity();
    const LdsLayout local = s.make_layout();
    const bench::RowPlan plan(s, local);
    const bool pooled = plane_parallel_of(s.tiled);
    const int n = s.tiled.nest().depth;
    const bool recur = row_recurrence_of(plan, local.stride(n - 1),
                                         s.tiled.ttis_deps().cols());
    const double floor = recur ? 2.0 : 4.0;

    // Equivalence: identical initial arrays, one sweep each, then all
    // three arrays must match bitwise (max_abs_diff over the raw arrays
    // via direct comparison).
    std::vector<double> la_seq = bench::SweepSetup::filled(local, arity);
    std::vector<double> la_simd = la_seq;
    std::vector<double> la_pool = la_seq;
    const i64 pts_seq = bench::sweep_fast(s, local, kernel, la_seq, plan);
    const i64 pts_simd = sweep_batched(s, local, kernel, la_simd, plan, false);
    const i64 pts_pool = sweep_batched(s, local, kernel, la_pool, plan, pooled);
    if (pts_seq != pts_simd || la_seq != la_simd) {
      std::printf("%s: simd sweep diverges from sequential\n",
                  cfg.name.c_str());
      return 1;
    }
    if (pts_seq != pts_pool || la_seq != la_pool) {
      std::printf("%s: pooled sweep diverges from sequential\n",
                  cfg.name.c_str());
      return 1;
    }

    if (!e2e_policies_agree(cfg)) return 1;

    std::vector<double> la = la_seq;
    const double seq_s = bench::time_best_of(
        5, 20, [&] { bench::sweep_fast(s, local, kernel, la, plan); });
    const double simd_s = bench::time_best_of(
        5, 20, [&] { sweep_batched(s, local, kernel, la, plan, false); });
    const double pool_s = bench::time_best_of(
        5, 20, [&] { sweep_batched(s, local, kernel, la, plan, pooled); });
    const double simd_x = seq_s / simd_s;
    const double pool_x = seq_s / pool_s;
    std::printf(
        "%-22s %10lld %12.3f %12.3f %12.3f %7.1fx %7.1fx %7d %6d %5.1fx\n",
        cfg.name.c_str(), static_cast<long long>(pts_seq), seq_s * 1e6,
        simd_s * 1e6, pool_s * 1e6, simd_x, pool_x, pooled ? 1 : 0,
        recur ? 1 : 0, floor);

    report.begin_row();
    report.field("config", cfg.name);
    report.field("points", pts_seq);
    report.field("seq_us", seq_s * 1e6);
    report.field("simd_us", simd_s * 1e6);
    report.field("pool_us", pool_s * 1e6);
    report.field("simd_speedup", simd_x);
    report.field("pool_speedup", pool_x);
    report.field("plane_parallel", static_cast<i64>(pooled ? 1 : 0));
    report.field("pool_workers",
                 static_cast<i64>(exec::compute_pool().workers()));
    report.field("row_recurrence", static_cast<i64>(recur ? 1 : 0));
    report.field("floor", floor);

    if (simd_x < floor) {
      std::printf("%s: simd %.1fx below the %.1fx floor (%s rows)\n",
                  cfg.name.c_str(), simd_x, floor,
                  recur ? "recurrence-bound" : "vectorizable");
      all_pass = false;
    }
  }
  if (!report.write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  if (!all_pass) {
    std::printf("FAIL: simd row path below its floor on some config\n");
    return 1;
  }
  std::printf(
      "OK: simd row path >= 4x (vectorizable) / >= 2x (recurrence) "
      "on every config\n");
  return 0;
}
