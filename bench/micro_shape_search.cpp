// Self-checking micro-benchmark for the communication-lower-bound-guided
// tile-shape autotuner (DESIGN.md §15, ROADMAP item 5).  Gates:
//
//   1. DETERMINISM OF THE PARALLEL SEARCH: a multi-threaded search over
//      a cold cache must return the same winner, bitwise the same score
//      list, as the serial search (pruning off, so every candidate is
//      scored in both).  On machines with >= 4 hardware threads the
//      parallel search must also be >= 3x faster end to end; on smaller
//      machines (the 1-core CI-class container) the speedup gate is
//      SKIPPED and only the equal-result gate applies.
//   2. SEED-INVARIANCE: the event-backend DES scorer's winner and score
//      are bitwise identical across scheduler interleaving seeds.
//   3. SHAPE QUALITY: on SOR the best cone-surface candidate strictly
//      beats the best rectangular baseline; on ADI the search
//      rediscovers the paper's nr3 family (chain row parallel to the
//      cone's oblique extreme ray (1,-1,-1)).
//   4. BOUND SOUNDNESS: for every evaluated candidate, the communication
//      lower bound is <= the measured comm volume, and the time bound is
//      <= the score — the property that makes pruning winner-invariant.
//   5. PRUNING: with pruning on, the winner (index, plan, score) is
//      identical to the exhaustive search's; the prune rate is reported.
//
// Emits BENCH_shape_search.json (override with --json PATH).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "cluster/shape_search.hpp"

using namespace ctile;

namespace {

struct BenchCase {
  std::string name;
  AppInstance app;
  ShapeSearchRequest req;  // cache/memo/threads filled per run
  VecI expect_chain_dir;   // empty = no expectation
  MachineModel machine = MachineModel::fast_ethernet_cluster();
};

BenchCase sor_case() {
  BenchCase c;
  const i64 m = 32, n = 64;
  c.name = "sor";
  c.app = make_sor(m, n);
  c.req.force_m = 2;
  c.req.arity = 1;
  c.req.mesh_extent = 4;  // the paper's 4x4 mesh, fitted per candidate
  c.req.chain_factors = {4, 8, 16};
  c.req.orig_lo = {1, 1, 1};
  c.req.orig_hi = {m, n, n};
  c.req.skew = sor_skew_matrix();
  // Rectangular baselines on the same 4x4 mesh: t spans 32/8 = 4,
  // skewed i spans 96/24 = 4.
  for (i64 z : c.req.chain_factors) c.req.extra.push_back(sor_rect_h(8, 24, z));
  // A degenerate 1x1-mesh baseline per chain factor (scales exceed the
  // extents, so each mesh dim is a single tile): all parallelism
  // squeezed out.  Its work bound alone (compute / 1 processor)
  // exceeds any reasonable incumbent, so the pruning pass must reject
  // it from the bound, without paying its lowering.
  for (i64 z : c.req.chain_factors) c.req.extra.push_back(sor_rect_h(64, 192, z));
  return c;
}

BenchCase adi_case() {
  BenchCase c;
  const i64 t = 32, n = 48;
  c.name = "adi";
  c.app = make_adi(t, n);
  c.req.force_m = 0;
  c.req.arity = 2;
  c.req.mesh_extent = 4;
  c.req.chain_factors = {2, 4, 8};
  c.req.orig_lo = {1, 1, 1};
  c.req.orig_hi = {t, n, n};
  c.req.skew = MatI::identity(3);
  for (i64 z : c.req.chain_factors) c.req.extra.push_back(adi_rect_h(z, 12, 12));
  c.expect_chain_dir = {1, -1, -1};
  return c;
}

std::string dir_str(const VecI& d) {
  std::string s = "(";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(d[i]);
  }
  return s + ")";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::json_path_from_args(argc, argv, "BENCH_shape_search.json");
  bench::JsonReport report("shape_search");
  bool all_ok = true;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("shape-search bench (hardware threads: %u)\n\n", hw);

  for (const BenchCase& c : {sor_case(), adi_case()}) {
    const MachineModel& machine = c.machine;
    // ---- Exhaustive serial reference (event scorer, pruning off).
    ShapeSearchRequest req = c.req;
    req.scorer = ShapeScorer::kEventDes;
    req.prune = false;
    req.threads = 1;
    req.seed = 1;
    PlanCache serial_cache;
    req.cache = &serial_cache;
    const auto t0 = std::chrono::steady_clock::now();
    const ShapeSearchResult serial =
        autotune_tile_shape(c.app.nest, req, machine);
    const double serial_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // ---- Parallel search, cold cache of its own.
    PlanCache parallel_cache;
    req.cache = &parallel_cache;
    req.threads = hw > 1 ? static_cast<int>(hw) : 2;
    const auto t1 = std::chrono::steady_clock::now();
    const ShapeSearchResult parallel =
        autotune_tile_shape(c.app.nest, req, machine);
    const double parallel_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();

    // Gate 1: identical winner and bitwise-identical score list.
    if (serial.best_index != parallel.best_index ||
        serial.best().plan_id != parallel.best().plan_id ||
        serial.best().score_s != parallel.best().score_s) {
      std::printf("FAIL: %s parallel winner differs from serial\n",
                  c.name.c_str());
      all_ok = false;
    }
    for (std::size_t i = 0; i < serial.scores.size(); ++i) {
      if (serial.scores[i].score_s != parallel.scores[i].score_s) {
        std::printf("FAIL: %s score[%zu] differs across thread counts\n",
                    c.name.c_str(), i);
        all_ok = false;
        break;
      }
    }
    const double speedup = parallel_wall > 0 ? serial_wall / parallel_wall : 0;
    if (hw >= 4) {
      if (speedup < 3.0) {
        std::printf("FAIL: %s parallel search only %.2fx faster "
                    "(need >= 3x on %u threads)\n",
                    c.name.c_str(), speedup, hw);
        all_ok = false;
      }
    } else {
      std::printf("SKIP: %s parallel speedup gate (only %u hardware "
                  "thread%s; equal-result gate still applied)\n",
                  c.name.c_str(), hw, hw == 1 ? "" : "s");
    }

    // Gate 2: event scorer is interleaving-seed invariant.
    req.threads = 1;
    req.seed = 77;
    PlanCache seed_cache;
    req.cache = &seed_cache;
    const ShapeSearchResult reseeded =
        autotune_tile_shape(c.app.nest, req, machine);
    if (reseeded.best().plan_id != serial.best().plan_id ||
        reseeded.best().score_s != serial.best().score_s) {
      std::printf("FAIL: %s winner not seed-invariant\n", c.name.c_str());
      all_ok = false;
    }

    // Gate 3: shape quality.
    const ShapeScore& best = serial.best();
    double best_rect = std::numeric_limits<double>::infinity();
    for (const ShapeScore& sc : serial.scores) {
      if (sc.status == ShapeStatus::kEvaluated && sc.origin == "extra") {
        best_rect = std::min(best_rect, sc.score_s);
      }
    }
    if (!(best.score_s < best_rect)) {
      std::printf("FAIL: %s best surface (%.6g s) does not beat best "
                  "rectangular (%.6g s)\n",
                  c.name.c_str(), best.score_s, best_rect);
      all_ok = false;
    }
    if (!c.expect_chain_dir.empty() &&
        best.chain_dir != c.expect_chain_dir) {
      std::printf("FAIL: %s winner chain dir %s != expected %s\n",
                  c.name.c_str(), dir_str(best.chain_dir).c_str(),
                  dir_str(c.expect_chain_dir).c_str());
      all_ok = false;
    }

    // Gate 4: bound soundness on every evaluated candidate.
    i64 bounded = 0;
    for (const ShapeScore& sc : serial.scores) {
      if (sc.status != ShapeStatus::kEvaluated) continue;
      // 1e-6 relative slack: the DES accumulates per-tile compute while
      // the bound multiplies points once, so on zero-comm plans the two
      // agree only up to summation order (~5e-8 relative observed).
      if (sc.bound.bytes_lb > sc.analytic.bytes ||
          sc.bound.time_lb_s > sc.score_s * (1.0 + 1e-6)) {
        std::printf("FAIL: %s bound exceeds measurement (plan %s)\n",
                    c.name.c_str(), sc.plan_id.c_str());
        all_ok = false;
      }
      if (sc.bound.bytes_lb > 0) ++bounded;
    }

    // Gate 5: pruning keeps the winner.
    ShapeSearchRequest preq = req;
    preq.seed = 1;
    preq.prune = true;
    PlanCache prune_cache;
    preq.cache = &prune_cache;
    const ShapeSearchResult pruned =
        autotune_tile_shape(c.app.nest, preq, machine);
    if (pruned.best().plan_id != serial.best().plan_id ||
        pruned.best().score_s != serial.best().score_s) {
      std::printf("FAIL: %s pruning changed the winner\n", c.name.c_str());
      all_ok = false;
    }
    if (c.name == "sor" && pruned.pruned == 0) {
      std::printf("FAIL: %s expected the bound to prune the degenerate "
                  "1x1-mesh baselines\n",
                  c.name.c_str());
      all_ok = false;
    }

    const double ratio =
        best.bound.bytes_lb > 0
            ? static_cast<double>(best.analytic.bytes) /
                  static_cast<double>(best.bound.bytes_lb)
            : 0.0;
    std::printf(
        "%-6s candidates %3lld (dup %lld, invalid %lld)  evaluated %lld\n"
        "       winner %s chain %s factor %lld  score %.6g s  procs %d\n"
        "       measured bytes %lld  bound %lld  ratio %.2f\n"
        "       serial %.2f s  parallel %.2f s  speedup %.2fx\n"
        "       pruned run: %lld pruned (rate %.2f), same winner\n\n",
        c.name.c_str(), static_cast<long long>(serial.candidates),
        static_cast<long long>(serial.duplicates),
        static_cast<long long>(serial.invalid),
        static_cast<long long>(serial.evaluated), best.plan_id.c_str(),
        dir_str(best.chain_dir).c_str(),
        static_cast<long long>(best.chain_factor), best.score_s,
        best.bound.num_procs, static_cast<long long>(best.analytic.bytes),
        static_cast<long long>(best.bound.bytes_lb), ratio, serial_wall,
        parallel_wall, speedup, static_cast<long long>(pruned.pruned),
        pruned.prune_rate());

    report.begin_row();
    report.field("config", c.name);
    report.field("candidates", serial.candidates);
    report.field("duplicates", serial.duplicates);
    report.field("invalid", serial.invalid);
    report.field("evaluated", serial.evaluated);
    report.field("bounded_candidates", bounded);
    report.field("best_plan", best.plan_id);
    report.field("best_chain_dir", dir_str(best.chain_dir));
    report.field("best_chain_factor", best.chain_factor);
    report.field("best_score_s", best.score_s);
    report.field("best_procs", static_cast<i64>(best.bound.num_procs));
    report.field("best_rect_score_s", best_rect);
    report.field("measured_bytes", best.analytic.bytes);
    report.field("bytes_lb", best.bound.bytes_lb);
    report.field("volume_ratio", ratio);
    report.field("serial_s", serial_wall);
    report.field("parallel_s", parallel_wall);
    report.field("parallel_speedup", speedup);
    report.field("speedup_gate", hw >= 4 ? "applied" : "skipped");
    report.field("pruned", pruned.pruned);
    report.field("prune_rate", pruned.prune_rate());
    report.field("gen_s", serial.gen_s);
    report.field("bound_s", serial.bound_s);
    report.field("eval_s", serial.eval_s);
  }

  if (!report.write(json_path)) return 1;
  std::printf(all_ok ? "OK: all shape-search gates passed\n"
                     : "FAILED: see messages above\n");
  return all_ok ? 0 : 1;
}
