// Ablation: blocking vs overlapping computation/communication schedule
// (the paper's \S5 future work, from the authors' IPDPS'01 paper [8]).
//
// For each benchmark we print blocking and overlapped speedups for the
// rectangular and cone-derived tilings.  Expected: overlap lifts both
// curves (more where transfers are long), and the paper's tile-shape
// conclusion — non-rectangular wins — survives the better schedule.
//
// The analytic kOverlapped model ablated here now has a real runtime
// counterpart: ParallelExecutor runs the pipelined schedule by default
// (set_use_overlap), and bench/micro_overlap measures the same
// blocking-vs-overlapped ratio in wall time and cross-checks it against
// this model's prediction.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

struct Variant {
  std::string name;
  AppInstance app;
  MatQ rect;
  MatQ nonrect;
  int force_m;
  int arity;
  VecI lo, hi;
  MatI skew_m;
};

double run(const Variant& v, bool nonrect, CommSchedule schedule,
           const MachineModel& machine) {
  TiledNest tiled(v.app.nest, TilingTransform(nonrect ? v.nonrect : v.rect));
  TileCensus census = TileCensus::from_box(tiled, v.lo, v.hi, v.skew_m);
  Mapping mapping(tiled, v.force_m, &census);
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  return simulate_cluster(tiled, mapping, lds, plan, census, machine,
                          v.arity, schedule)
      .speedup;
}

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header("Ablation: blocking vs overlapped schedule (\\S5 / [8])",
               machine);

  std::vector<Variant> variants;
  {
    const i64 m = 100, n = 200;
    const i64 x = fit_parts(1, m, 4), y = fit_parts(2, m + n, 4), z = 8;
    variants.push_back({"SOR", make_sor(m, n), sor_rect_h(x, y, z),
                        sor_nonrect_h(x, y, z), 2, 1, {1, 1, 1},
                        {m, n, n}, sor_skew_matrix()});
  }
  {
    const i64 t = 50, ij = 100;
    i64 y = fit_parts(2, t + ij, 4);
    if (y % 2 != 0) ++y;
    const i64 z = fit_parts(2, t + ij, 4), x = 4;
    variants.push_back({"Jacobi", make_jacobi(t, ij, ij),
                        jacobi_rect_h(x, y, z), jacobi_nonrect_h(x, y, z), 0,
                        1, {1, 1, 1}, {t, ij, ij}, jacobi_skew_matrix()});
  }
  {
    const i64 t = 100, n = 256;
    const i64 y = fit_parts(1, n, 4), x = 7;
    variants.push_back({"ADI", make_adi(t, n), adi_rect_h(x, y, y),
                        adi_nr3_h(x, y, y), 0, 2, {1, 1, 1}, {t, n, n},
                        MatI::identity(3)});
  }

  const std::vector<int> widths{10, 14, 14, 14, 14, 16};
  print_row({"app", "rect/block", "rect/ovl", "nr/block", "nr/ovl",
             "nr wins w/ ovl?"},
            widths);
  for (const Variant& v : variants) {
    double rb = run(v, false, CommSchedule::kBlocking, machine);
    double ro = run(v, false, CommSchedule::kOverlapped, machine);
    double nb = run(v, true, CommSchedule::kBlocking, machine);
    double no = run(v, true, CommSchedule::kOverlapped, machine);
    print_row({v.name, fixed(rb, 2), fixed(ro, 2), fixed(nb, 2),
               fixed(no, 2), no > ro ? "yes" : "NO"},
              widths);
  }
  std::printf("expected: overlapped >= blocking per column; non-rect still "
              "ahead under overlap\n");
  return 0;
}
