// Figure 7 reproduction: Jacobi maximum speedups for different iteration
// spaces (rectangular vs non-rectangular tiling, 16 processors).
//
// As in \S4.2: tiles are mapped along the FIRST dimension; y and z are
// fixed so the mesh over dimensions 2 and 3 is 4x4; x sweeps and the best
// speedup per tiling is reported.  Non-rectangular H has row 1 =
// (1/x, -1/(2x), 0), so equal x/y/z gives equal tile sizes and
// communication volume (paper's controlled comparison).  y must be even
// for the c_2 = 2 stride.  Checkable aggregate: ~9.1% average
// improvement (\S4.4).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

namespace {

i64 make_even(i64 v) { return v % 2 == 0 ? v : v + 1; }

struct SpaceResult {
  i64 t, ij;
  double best_rect = 0.0, best_nonrect = 0.0;
  i64 best_rect_x = 0, best_nonrect_x = 0;
};

SpaceResult run_space(i64 t, i64 ij, const MachineModel& machine) {
  SpaceResult res;
  res.t = t;
  res.ij = ij;
  // Skewed bounds: i' and j' span [2, t + ij].
  i64 y = make_even(fit_parts(2, t + ij, 4));
  i64 z = fit_parts(2, t + ij, 4);
  for (i64 x : std::vector<i64>{2, 3, 4, 6, 8, 12, 16, 25}) {
    if (x > t) continue;
    for (bool nonrect : {false, true}) {
      RunConfig cfg;
      cfg.label = nonrect ? "nonrect" : "rect";
      cfg.app = make_jacobi(t, ij, ij);
      cfg.h = nonrect ? jacobi_nonrect_h(x, y, z) : jacobi_rect_h(x, y, z);
      cfg.force_m = 0;
      cfg.arity = 1;
      cfg.orig_lo = {1, 1, 1};
      cfg.orig_hi = {t, ij, ij};
      cfg.skew = jacobi_skew_matrix();
      RunOutcome out = run_config(cfg, machine);
      if (out.nprocs != 16) continue;
      double s = out.sim.speedup;
      if (nonrect && s > res.best_nonrect) {
        res.best_nonrect = s;
        res.best_nonrect_x = x;
      }
      if (!nonrect && s > res.best_rect) {
        res.best_rect = s;
        res.best_rect_x = x;
      }
    }
  }
  return res;
}

}  // namespace

int main() {
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header(
      "Figure 7: Jacobi max speedups for different iteration spaces",
      machine);
  const std::vector<int> widths{16, 12, 14, 14, 14};
  print_row({"space (T,I=J)", "best x r/nr", "rect", "nonrect", "improve%"},
            widths);
  double sum_impr = 0.0;
  int count = 0;
  for (auto [t, ij] : std::vector<std::pair<i64, i64>>{
           {50, 50}, {50, 100}, {100, 100}, {100, 200}}) {
    SpaceResult r = run_space(t, ij, machine);
    double impr = improvement_pct(r.best_rect, r.best_nonrect);
    sum_impr += impr;
    ++count;
    print_row({"(" + std::to_string(r.t) + "," + std::to_string(r.ij) + ")",
               std::to_string(r.best_rect_x) + "/" +
                   std::to_string(r.best_nonrect_x),
               fixed(r.best_rect, 2), fixed(r.best_nonrect, 2),
               fixed(impr, 1)},
              widths);
  }
  std::printf("average improvement: %.1f%%  (paper \\S4.4: 9.1%% across "
              "the Jacobi experiments)\n",
              sum_impr / count);
  return 0;
}
