// Shared plumbing for the figure-reproduction benches: experiment
// configuration, tile-size fitting for a fixed processor mesh, and table
// printing.
//
// Every fig*_ binary prints (a) the modelled 16-node cluster's speedups
// for the paper's rectangular and non-rectangular tilings and (b) the
// derived comparison statistics the paper reports in \S4.4.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/kernels.hpp"
#include "cluster/simulator.hpp"
#include "support/strings.hpp"

namespace ctile::bench {

/// Hardened micro-timing: one untimed warm-up call (caches, branch
/// predictors, lazy pool/backend construction), then `reps` timed runs of
/// `iters` back-to-back calls each, returning the *minimum* per-call
/// seconds — the standard estimator for the noise-free cost on a shared
/// box, where every perturbation only ever adds time.
double time_best_of(int reps, int iters, const std::function<void()>& fn);

/// Deterministic buffer fill (SplitMix64 mapped into [1, 2)): benches
/// must not time over uninitialized or run-order-dependent data, and
/// reruns must see identical bits.
void fill_deterministic(double* data, std::size_t n, u64 seed);

/// Smallest tile size s such that the interval [lo, hi] spans exactly
/// `parts` tile indices under js = floor(j / s); used to pin the
/// processor mesh to 4x4 = 16 nodes like the paper's runs.
i64 fit_parts(i64 lo, i64 hi, i64 parts);

struct RunConfig {
  std::string label;       ///< e.g. "rect" or "nonrect"
  AppInstance app;
  MatQ h;
  int force_m;             ///< the paper's mapping dimension
  int arity;
  VecI orig_lo;            ///< original rectangular bounds (pre-skew)
  VecI orig_hi;
  MatI skew;               ///< skewing matrix T (identity if unskewed)
};

struct RunOutcome {
  std::string label;
  SimResult sim;
  int nprocs;
  i64 tile_size;
};

/// Tile, validate, census and simulate one configuration.
RunOutcome run_config(const RunConfig& config, const MachineModel& machine);

/// Print a header like "== Figure 5: ... ==".
void print_header(const std::string& title, const MachineModel& machine);

/// Print one table row: label, params, speedup columns.
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

/// Percentage improvement of b over a.
double improvement_pct(double a, double b);

/// The p-th percentile (p in [0, 100]) of `xs` by linear interpolation
/// between closest ranks (the numpy default).  Sorts a copy; throws on an
/// empty sample.
double percentile(std::vector<double> xs, double p);

/// The latency summary ctile_pland and the plan-cache bench report.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// p50/p95/p99 of `xs` with a single sort.  Throws on an empty sample.
Percentiles percentiles_of(std::vector<double> xs);

/// Minimal machine-readable bench output: a named report holding rows of
/// key/value fields, serialized as {"name": ..., "rows": [{...}, ...]}.
/// No external JSON dependency; values are rendered eagerly so rows can
/// be built incrementally while the bench runs.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Start a new row; subsequent field() calls append to it.
  void begin_row();
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, i64 value);

  std::string to_string() const;

  /// Serialize to `path`; returns false (after printing to stderr) on
  /// I/O failure so benches can exit nonzero.
  bool write(const std::string& path) const;

 private:
  std::string name_;
  // Each row is a list of (key, pre-rendered JSON value) pairs.
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// A bare JSON array of flat objects — the row emitter behind
/// ctile_pland's per-request response stream and ad-hoc result lists
/// where JsonReport's named envelope is unwanted.  Same no-dependency,
/// render-eagerly design as JsonReport.
class JsonArray {
 public:
  /// Start a new element; subsequent field() calls append to it.
  void begin_item();
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, i64 value);
  void field(const std::string& key, bool value);

  std::size_t size() const { return items_.size(); }

  /// The whole array, e.g. `[\n  {...},\n  {...}\n]\n`.
  std::string to_string() const;
  /// The most recently begun item alone, e.g. `{...}` (streaming use).
  std::string item_to_string() const;

  /// Serialize to `path`; returns false (after printing to stderr) on
  /// I/O failure.
  bool write(const std::string& path) const;

 private:
  std::vector<std::vector<std::pair<std::string, std::string>>> items_;
};

/// The value following a "--json" flag in argv, or `fallback` when the
/// flag is absent.  A trailing "--json" with no value is an error
/// (throws).  Benches use this so CI can redirect the report.
std::string json_path_from_args(int argc, char** argv,
                                const std::string& fallback);

}  // namespace ctile::bench
