// Figure 10 reproduction: ADI integration speedups for various tile
// sizes at T = 100, N = 256 (the caption's space), 16 processors, for the
// rectangular and all three non-rectangular tilings of \S4.3.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace ctile;
using namespace ctile::bench;

int main() {
  const i64 t = 100, n = 256;
  MachineModel machine = MachineModel::fast_ethernet_cluster();
  print_header(
      "Figure 10: ADI speedups vs tile size (T=100, N=256, 16 procs)",
      machine);
  const i64 y = fit_parts(1, n, 4);
  const i64 z = y;
  std::printf("mesh tiles: y=z=%lld (4x4 processors)\n",
              static_cast<long long>(y));
  const std::vector<int> widths{8, 12, 10, 10, 10, 10};
  print_row({"x", "tile size", "rect", "nr1", "nr2", "nr3"}, widths);
  for (i64 x : std::vector<i64>{2, 3, 4, 5, 7, 10, 13, 17, 25, 34, 50}) {
    MatQ hs[4] = {adi_rect_h(x, y, z), adi_nr1_h(x, y, z),
                  adi_nr2_h(x, y, z), adi_nr3_h(x, y, z)};
    double sp[4] = {0, 0, 0, 0};
    bool ok = true;
    for (int v = 0; v < 4 && ok; ++v) {
      RunConfig cfg;
      cfg.label = "adi";
      cfg.app = make_adi(t, n);
      cfg.h = hs[v];
      cfg.force_m = 0;
      cfg.arity = 2;
      cfg.orig_lo = {1, 1, 1};
      cfg.orig_hi = {t, n, n};
      cfg.skew = MatI::identity(3);
      RunOutcome out = run_config(cfg, machine);
      if (out.nprocs != 16) {
        ok = false;
        break;
      }
      sp[v] = out.sim.speedup;
    }
    if (!ok) continue;
    print_row({std::to_string(x), std::to_string(x * y * z), fixed(sp[0], 2),
               fixed(sp[1], 2), fixed(sp[2], 2), fixed(sp[3], 2)},
              widths);
  }
  std::printf("expected shape: all curves rise then flatten; nr3 on top, "
              "nr1 ~ nr2 between, rect lowest\n");
  return 0;
}
