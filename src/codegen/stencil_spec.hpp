// Textual stencil specifications for the code generator.
//
// The generator emits complete C++ programs; the loop *body* comes from
// the user as C++ expression text (the paper's model: the statement
// F(...) is the user's, everything around it is the compiler's).  The
// emitted body can refer to:
//   j0, j1, j2, ...   current-nest coordinates (long long)
//   o0, o1, o2, ...   original (unskewed) coordinates
//   DEP(l, v)         value component v at j - d_l
//   OUT(v)            output component v
// and the IC body to j0../o0.. and OUT(v).
#pragma once

#include <string>

#include "deps/loop_nest.hpp"

namespace ctile::codegen {

struct StencilSpec {
  std::string name;
  int arity = 1;
  /// Statement text computing OUT(*) from DEP(*, *).
  std::string body;
  /// Statement text computing OUT(*) for points outside the space.
  std::string initial;
  /// Unskew matrix T^{-1} mapping current coordinates to original ones
  /// (identity when the nest was not skewed).
  MatI unskew;
};

/// Specs matching the numeric kernels in apps/kernels.cpp exactly
/// (same dependence order, same formulas, same ICs), so generated
/// programs are comparable bit-for-bit with the library executors.
StencilSpec sor_spec(double w = 1.0);
StencilSpec jacobi_spec();
StencilSpec adi_spec();
StencilSpec heat_spec();    // 2-deep nest
StencilSpec syn4d_spec();   // 4-deep nest

}  // namespace ctile::codegen
