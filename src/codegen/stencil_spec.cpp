#include "codegen/stencil_spec.hpp"

#include "apps/kernels.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "support/strings.hpp"

namespace ctile::codegen {

StencilSpec sor_spec(double w) {
  StencilSpec s;
  s.name = "sor";
  s.arity = 1;
  const std::string ws = fixed(w, 17);
  // Mirrors SorKernel::compute()'s association exactly (DEP(1,0) — the
  // only possible in-row recurrence after skewing — isolated on its own
  // multiply-add chain) so generated code stays bitwise-identical to the
  // library's batched row path.
  s.body = "OUT(0) = " + ws + " / 4.0 * DEP(1,0) + (" + ws +
           " / 4.0 * ((DEP(0,0) + DEP(2,0)) + DEP(3,0)) + (1.0 - " + ws +
           ") * DEP(4,0));";
  s.initial =
      "OUT(0) = 1.0 + 0.01 * (double)o1 + 0.02 * (double)o2 + "
      "0.001 * (double)o0;";
  s.unskew = to_int(inverse(to_rat(sor_skew_matrix())));
  return s;
}

StencilSpec jacobi_spec() {
  StencilSpec s;
  s.name = "jacobi";
  s.arity = 1;
  s.body =
      "OUT(0) = (DEP(0,0) + DEP(1,0) + DEP(2,0) + DEP(3,0) + DEP(4,0)) "
      "/ 5.0;";
  s.initial =
      "OUT(0) = std::sin(0.05 * (double)o1) + std::cos(0.07 * (double)o2);";
  s.unskew = to_int(inverse(to_rat(jacobi_skew_matrix())));
  return s;
}

StencilSpec adi_spec() {
  StencilSpec s;
  s.name = "adi";
  s.arity = 2;
  // Mirrors AdiKernel::compute()'s association exactly (the DEP(2,*)
  // terms — the only possible in-row recurrence under the non-
  // rectangular tilings — trail on their own add/sub) so generated code
  // stays bitwise-identical to the library's batched row path.
  s.body =
      "const double a = 0.01 + 0.002 * std::sin(0.1 * (double)j1 + 0.2 * "
      "(double)j2);\n"
      "OUT(0) = (DEP(0,0) - DEP(1,0) * a / DEP(1,1)) + DEP(2,0) * a / "
      "DEP(2,1);\n"
      "OUT(1) = (DEP(0,1) - a * a / DEP(1,1)) - a * a / DEP(2,1);";
  s.initial =
      "OUT(0) = 1.0 + 0.05 * std::sin(0.3 * (double)j1) + 0.05 * "
      "std::cos(0.2 * (double)j2);\n"
      "OUT(1) = 2.0 + 0.1 * std::cos(0.1 * (double)(j1 + j2));";
  s.unskew = MatI::identity(3);
  return s;
}

StencilSpec heat_spec() {
  StencilSpec s;
  s.name = "heat";
  s.arity = 1;
  s.body = "OUT(0) = 0.25 * DEP(0,0) + 0.5 * DEP(1,0) + 0.25 * DEP(2,0);";
  s.initial =
      "OUT(0) = std::sin(0.1 * (double)o1) + 0.001 * (double)o0;";
  s.unskew = to_int(inverse(to_rat(heat_skew_matrix())));
  return s;
}

StencilSpec syn4d_spec() {
  StencilSpec s;
  s.name = "syn4d";
  s.arity = 1;
  s.body =
      "OUT(0) = 0.3 * DEP(0,0) + 0.2 * DEP(1,0) + 0.2 * DEP(2,0) + 0.2 * "
      "DEP(3,0) + 0.1 * DEP(4,0) + 0.001 * (double)(j0 + j1 - j2 + 2 * j3);";
  s.initial =
      "OUT(0) = 0.5 + 0.01 * (double)(j1 + 2 * j2 - j3) + 0.002 * "
      "(double)j0;";
  s.unskew = MatI::identity(4);
  return s;
}

}  // namespace ctile::codegen
