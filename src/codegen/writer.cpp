#include "codegen/writer.hpp"

#include "support/strings.hpp"

namespace ctile::codegen {

void CodeWriter::line(const std::string& text) {
  out_ += std::string(static_cast<std::size_t>(depth_) * 2, ' ');
  out_ += text;
  out_ += '\n';
}

void CodeWriter::blank() { out_ += '\n'; }

void CodeWriter::open(const std::string& head) {
  line(head + " {");
  ++depth_;
}

void CodeWriter::close(const std::string& trailer) {
  CTILE_ASSERT(depth_ > 0);
  --depth_;
  line("}" + trailer);
}

std::string affine_str(const VecI& coeffs,
                       const std::vector<std::string>& names, i64 constant) {
  CTILE_ASSERT(coeffs.size() <= names.size());
  std::vector<std::string> terms;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    if (coeffs[i] == 1) {
      terms.push_back(names[i]);
    } else if (coeffs[i] == -1) {
      terms.push_back("-" + names[i]);
    } else {
      terms.push_back(std::to_string(coeffs[i]) + "*" + names[i]);
    }
  }
  if (constant != 0 || terms.empty()) {
    terms.push_back(std::to_string(constant));
  }
  return join(terms, " + ");
}

BoundExprs bound_exprs(const Polyhedron& level, int var,
                       const std::vector<std::string>& names) {
  std::vector<std::string> lowers, uppers;
  for (const Constraint& c : level.constraints()) {
    for (int i = var + 1; i < level.dim(); ++i) {
      CTILE_ASSERT_MSG(c.coeffs[static_cast<std::size_t>(i)] == 0,
                       "bound_exprs requires a prefix-projected polyhedron");
    }
    const i64 a = c.coeffs[static_cast<std::size_t>(var)];
    if (a == 0) continue;
    // rest = constant + sum_{i<var} coeff_i * names_i.
    VecI rest_coeffs(c.coeffs.begin(), c.coeffs.begin() + var);
    std::string rest = affine_str(rest_coeffs, names, c.constant);
    if (a > 0) {
      // x >= ceil(-rest / a)
      if (a == 1) {
        lowers.push_back("-(" + rest + ")");
      } else {
        lowers.push_back("ct_ceildiv(-(" + rest + "), " +
                         std::to_string(a) + ")");
      }
    } else {
      // x <= floor(rest / -a)
      if (a == -1) {
        uppers.push_back("(" + rest + ")");
      } else {
        uppers.push_back("ct_floordiv((" + rest + "), " +
                         std::to_string(-a) + ")");
      }
    }
  }
  CTILE_ASSERT_MSG(!lowers.empty() && !uppers.empty(),
                   "unbounded loop variable in codegen");
  auto fold = [](const std::vector<std::string>& parts, const char* fn) {
    std::string acc = parts.front();
    for (std::size_t i = 1; i < parts.size(); ++i) {
      acc = std::string(fn) + "(" + acc + ", " + parts[i] + ")";
    }
    return acc;
  };
  return {fold(lowers, "ct_max"), fold(uppers, "ct_min")};
}

void emit_runtime_helpers(CodeWriter& w) {
  w.line("inline long long ct_floordiv(long long a, long long b) {");
  w.line("  long long q = a / b, r = a % b;");
  w.line("  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;");
  w.line("}");
  w.line("inline long long ct_ceildiv(long long a, long long b) {");
  w.line("  long long q = a / b, r = a % b;");
  w.line("  return (r != 0 && ((r < 0) == (b < 0))) ? q + 1 : q;");
  w.line("}");
  w.line("inline long long ct_max(long long a, long long b) "
         "{ return a > b ? a : b; }");
  w.line("inline long long ct_min(long long a, long long b) "
         "{ return a < b ? a : b; }");
  w.line("inline long long ct_modfloor(long long a, long long b) {");
  w.line("  long long r = a % b;");
  w.line("  return r < 0 ? r + b : r;");
  w.line("}");
}

std::string membership_expr(const Polyhedron& p,
                            const std::vector<std::string>& names) {
  std::vector<std::string> clauses;
  for (const Constraint& c : p.constraints()) {
    clauses.push_back("(" + affine_str(c.coeffs, names, c.constant) +
                      " >= 0)");
  }
  if (clauses.empty()) return "true";
  return join(clauses, " && ");
}

}  // namespace ctile::codegen
