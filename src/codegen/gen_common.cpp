#include "codegen/gen_common.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace ctile::codegen {

std::vector<std::string> var_names(int n, const std::string& stem) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) names.push_back(stem + std::to_string(i));
  return names;
}

namespace {

// Replaces every occurrence of `from` in `text` with `to`.
std::string replace_all(std::string text, const std::string& from,
                        const std::string& to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

void emit_body_lines(CodeWriter& w, const std::string& body) {
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    if (end > start) w.line(body.substr(start, end - start));
    if (end == body.size()) break;
    start = end + 1;
  }
}

}  // namespace

void emit_spec_functions(CodeWriter& w, const StencilSpec& spec,
                         const LoopNest& nest) {
  const int n = nest.depth;
  std::vector<std::string> jn = var_names(n, "j");

  // in_space
  w.open("inline bool in_space(const long long j[" + std::to_string(n) +
         "])");
  std::vector<std::string> idx;
  for (int i = 0; i < n; ++i) idx.push_back("j[" + std::to_string(i) + "]");
  w.line("return " + membership_expr(nest.space, idx) + ";");
  w.close();
  w.blank();

  // Unskew preamble shared by kernel/initial bodies.
  auto emit_coords = [&](CodeWriter& cw) {
    for (int i = 0; i < n; ++i) {
      cw.line("const long long j" + std::to_string(i) + " = j[" +
              std::to_string(i) + "]; (void)j" + std::to_string(i) + ";");
    }
    for (int i = 0; i < n; ++i) {
      std::string expr =
          affine_str(spec.unskew.row(i), jn, 0);
      cw.line("const long long o" + std::to_string(i) + " = " + expr +
              "; (void)o" + std::to_string(i) + ";");
    }
  };

  const std::string ar = std::to_string(spec.arity);
  w.open("inline void kernel(const long long j[" + std::to_string(n) +
         "], const double* dv, double* out)");
  emit_coords(w);
  std::string body = replace_all(spec.body, "DEP(", "CT_DEP(");
  body = replace_all(body, "OUT(", "CT_OUT(");
  w.line("#define CT_DEP(l, v) dv[(l) * " + ar + " + (v)]");
  w.line("#define CT_OUT(v) out[(v)]");
  emit_body_lines(w, body);
  w.line("#undef CT_DEP");
  w.line("#undef CT_OUT");
  w.close();
  w.blank();

  w.open("inline void initial(const long long j[" + std::to_string(n) +
         "], double* out)");
  emit_coords(w);
  std::string init = replace_all(spec.initial, "OUT(", "CT_OUT(");
  w.line("#define CT_OUT(v) out[(v)]");
  emit_body_lines(w, init);
  w.line("#undef CT_OUT");
  w.close();
  w.blank();
}

void emit_table(CodeWriter& w, const std::string& name, const MatI& m) {
  std::string decl = "const long long " + name + "[" +
                     std::to_string(m.rows() > 0 ? m.rows() : 1) + "][" +
                     std::to_string(m.cols() > 0 ? m.cols() : 1) + "] = {";
  std::vector<std::string> rows;
  if (m.rows() == 0 || m.cols() == 0) {
    rows.push_back("{0}");
  } else {
    for (int r = 0; r < m.rows(); ++r) {
      std::vector<std::string> vals;
      for (int c = 0; c < m.cols(); ++c) {
        vals.push_back(std::to_string(m(r, c)));
      }
      rows.push_back("{" + join(vals, ", ") + "}");
    }
  }
  w.line(decl + join(rows, ", ") + "};");
}

void emit_ttis_walk(CodeWriter& w, const TilingTransform& tf,
                    const std::vector<std::string>& lo_exprs,
                    const std::vector<std::string>& hi_exprs,
                    const std::function<void(CodeWriter&)>& body) {
  const int n = tf.n();
  const MatI& hnf = tf.Hnf();
  // Own scope: the walk declares base/lo/hi/y locals that would clash if
  // two walks were emitted in the same block.
  w.line("{");
  w.indent();
  for (int k = 0; k < n; ++k) {
    const std::string ks = std::to_string(k);
    const std::string ck = std::to_string(hnf(k, k));
    // Congruence base from outer lattice coordinates.
    VecI coeffs;
    for (int l = 0; l < k; ++l) coeffs.push_back(hnf(k, l));
    std::string base = affine_str(coeffs, var_names(k, "y"), 0);
    w.line("const long long base" + ks + " = " + base + ";");
    w.line("const long long lo" + ks + " = " + lo_exprs[static_cast<std::size_t>(k)] + ";");
    w.line("const long long hi" + ks + " = " + hi_exprs[static_cast<std::size_t>(k)] + ";");
    if (hnf(k, k) == 1) {
      w.open("for (long long jp" + ks + " = lo" + ks + "; jp" + ks +
             " <= hi" + ks + "; ++jp" + ks + ")");
      w.line("const long long y" + ks + " = jp" + ks + " - base" + ks +
             "; (void)y" + ks + ";");
    } else {
      w.open("for (long long jp" + ks + " = lo" + ks + " + ct_modfloor(base" +
             ks + " - lo" + ks + ", " + ck + "); jp" + ks + " <= hi" + ks +
             "; jp" + ks + " += " + ck + ")");
      w.line("const long long y" + ks + " = (jp" + ks + " - base" + ks +
             ") / " + ck + "; (void)y" + ks + ";");
    }
  }
  body(w);
  for (int k = 0; k < n; ++k) w.close();
  w.dedent();
  w.line("}");
}

void emit_point_of(CodeWriter& w, const TilingTransform& tf) {
  const int n = tf.n();
  // Scaled-integer P': den * P' is integral.
  i64 den = 1;
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) den = lcm_i64(den, tf.Pp()(r, c).den());
  MatI pps(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      pps(r, c) = (tf.Pp()(r, c) * Rat(den)).as_int();

  w.open("inline void point_of(const long long js[" + std::to_string(n) +
         "], const long long jp[" + std::to_string(n) + "], long long j[" +
         std::to_string(n) + "])");
  for (int k = 0; k < n; ++k) {
    w.line("const long long a" + std::to_string(k) + " = " +
           std::to_string(tf.v(k)) + " * js[" + std::to_string(k) +
           "] + jp[" + std::to_string(k) + "];");
  }
  for (int r = 0; r < n; ++r) {
    std::vector<std::string> terms;
    for (int c = 0; c < n; ++c) {
      if (pps(r, c) == 0) continue;
      terms.push_back(std::to_string(pps(r, c)) + " * a" +
                      std::to_string(c));
    }
    std::string sum = terms.empty() ? "0" : join(terms, " + ");
    if (den == 1) {
      w.line("j[" + std::to_string(r) + "] = " + sum + ";");
    } else {
      w.line("j[" + std::to_string(r) + "] = (" + sum + ") / " +
             std::to_string(den) + ";");
    }
  }
  w.close();
  w.blank();
}

void emit_space_scan(CodeWriter& w, const LoopNest& nest,
                     const std::function<void(CodeWriter&)>& body) {
  const int n = nest.depth;
  std::vector<Polyhedron> levels = nest.space.level_projections();
  std::vector<std::string> names = var_names(n, "j");
  for (int k = 0; k < n; ++k) {
    BoundExprs b =
        bound_exprs(levels[static_cast<std::size_t>(k)], k, names);
    const std::string ks = std::to_string(k);
    w.open("for (long long j" + ks + " = " + b.lower + ", ct_hi" + ks +
           " = " + b.upper + "; j" + ks + " <= ct_hi" + ks + "; ++j" + ks +
           ")");
  }
  body(w);
  for (int k = 0; k < n; ++k) w.close();
}

void emit_checksum_update(CodeWriter& w, int n, int arity,
                          const std::string& value_expr_prefix) {
  std::vector<std::string> terms;
  i64 mult = 73;
  for (int i = 0; i < n; ++i) {
    terms.push_back(std::to_string(mult) + " * j" + std::to_string(i));
    mult = mult / 2 + 11;
  }
  std::string key = join(terms, " + ");
  for (int v = 0; v < arity; ++v) {
    w.line("chk = chk * 1.0000000321 + " + value_expr_prefix +
           std::to_string(v) + "] * std::sin(0.001 * (double)(" + key +
           " + " + std::to_string(v) + "));");
  }
}

double reference_checksum(const LoopNest& nest,
                          const std::function<const double*(const VecI&)>& at,
                          int arity) {
  double chk = 0.0;
  const int n = nest.depth;
  nest.space.scan([&](const VecI& j) {
    double key = 0.0;
    i64 mult = 73;
    for (int i = 0; i < n; ++i) {
      key += static_cast<double>(mult) * static_cast<double>(j[static_cast<std::size_t>(i)]);
      mult = mult / 2 + 11;
    }
    const double* vals = at(j);
    for (int v = 0; v < arity; ++v) {
      chk = chk * 1.0000000321 +
            vals[v] * std::sin(0.001 * (key + static_cast<double>(v)));
    }
  });
  return chk;
}

}  // namespace ctile::codegen
