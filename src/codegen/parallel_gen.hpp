// Data-parallel (message-passing) code generation: the paper's \S3 tool
// output.
//
// The generated program is a complete C++ translation unit implementing
// the Foracross skeleton at the end of \S3.2 — per-rank LDS allocation,
// RECEIVE (recv + unpack into shifted halo slots), the clipped TTIS
// compute sweep, and SEND (pack + send per successor processor) — with
// every bound, stride, offset, table (D^S, D^m, CC, pack regions) baked
// in as compile-time constants derived from H.
//
// Communication targets the in-process mpisim substrate (an MPI-semantics
// library; see src/mpisim/).  The emitted calls are one-to-one with
// MPI_Send / MPI_Recv — a cluster build would swap the four call sites,
// and the emitted comments show the MPI equivalents.
#pragma once

#include <string>

#include "codegen/gen_common.hpp"
#include "runtime/comm_plan.hpp"

namespace ctile::codegen {

/// Which message-passing substrate the emitted program targets.
enum class CommFlavor {
  kMpisim,  ///< in-process substrate (compilable and runnable in-tree)
  kMpi,     ///< real MPI (<mpi.h>, MPI_Send/MPI_Recv, MPI_Init in main) —
            ///< what the paper's tool emitted; requires an MPI toolchain
};

struct ParallelGenOptions {
  int force_m = -1;  ///< override the mapping-dimension choice
  CommFlavor flavor = CommFlavor::kMpisim;
};

std::string generate_parallel_mpi(const TiledNest& tiled,
                                  const StencilSpec& spec,
                                  const ParallelGenOptions& options = {});

}  // namespace ctile::codegen
