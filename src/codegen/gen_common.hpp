// Emission pieces shared by the sequential and parallel generators.
#pragma once

#include <functional>

#include "codegen/stencil_spec.hpp"
#include "codegen/writer.hpp"
#include "tiling/tile_space.hpp"

namespace ctile::codegen {

/// Variable names j0..j(n-1).
std::vector<std::string> var_names(int n, const std::string& stem);

/// Emits in_space(), kernel() and initial() from the spec (kernel and
/// initial receive the current-nest point; initial computes the unskewed
/// o0.. itself).
void emit_spec_functions(CodeWriter& w, const StencilSpec& spec,
                         const LoopNest& nest);

/// Emits `const long long NAME[rows][cols] = {...};`.
void emit_table(CodeWriter& w, const std::string& name, const MatI& m);

/// Emits the TTIS lattice walk over an inclusive box whose per-dimension
/// bound expressions are given as C expressions (evaluated once each).
/// Inside the innermost body the variables jp0..jp(n-1) and the lattice
/// coordinates y0..y(n-1) are in scope.  `body` emits the loop body.
void emit_ttis_walk(CodeWriter& w, const TilingTransform& tf,
                    const std::vector<std::string>& lo_exprs,
                    const std::vector<std::string>& hi_exprs,
                    const std::function<void(CodeWriter&)>& body);

/// Emits a helper computing the original point from (tile, TTIS point):
///   void point_of(const long long js[N], const long long jp[N],
///                 long long j[N]);
/// using the exact scaled-integer form of P'(V js + jp).
void emit_point_of(CodeWriter& w, const TilingTransform& tf);

/// Emits the lexicographic scan over the iteration space (FM bounds per
/// level) with j0..j(n-1) in scope; used for reference loops and
/// checksums.
void emit_space_scan(CodeWriter& w, const LoopNest& nest,
                     const std::function<void(CodeWriter&)>& body);

/// Emits the checksum accumulation statement for point (j0..) reading
/// values val[0..arity): `chk = chk * 1.0000001 + val[v] * (...)`.
void emit_checksum_update(CodeWriter& w, int n, int arity,
                          const std::string& value_expr_prefix);

/// The matching library-side checksum (same order, same operations), so
/// tests can compare generated-program output against executor results.
double reference_checksum(const LoopNest& nest,
                          const std::function<const double*(const VecI&)>& at,
                          int arity);

}  // namespace ctile::codegen
