// Small code-writing utilities shared by the sequential and parallel
// generators: an indentation-aware line writer and affine-expression
// pretty printers (max(ceil(...)) / min(floor(...)) loop bounds in the
// Ancourt-Irigoin style).
#pragma once

#include <string>
#include <vector>

#include "poly/polyhedron.hpp"

namespace ctile::codegen {

class CodeWriter {
 public:
  /// Append one line at the current indentation.
  void line(const std::string& text);
  /// Append a blank line.
  void blank();
  /// Open a block: writes `head` followed by " {" and indents.
  void open(const std::string& head);
  /// Close a block: dedents and writes "}" (plus an optional trailer,
  /// e.g. ";" or " else {").
  void close(const std::string& trailer = "");
  void indent() { ++depth_; }
  void dedent() {
    CTILE_ASSERT(depth_ > 0);
    --depth_;
  }

  const std::string& str() const { return out_; }

 private:
  std::string out_;
  int depth_ = 0;
};

/// Renders sum_i coeffs[i]*names[i] + constant; "0" when empty.
std::string affine_str(const VecI& coeffs, const std::vector<std::string>& names,
                       i64 constant);

/// Loop bounds of variable `var` of a prefix-projected polyhedron, as C
/// expressions over the given variable names: lower is a max of ceil-divs,
/// upper a min of floor-divs.  Requires the generated program to provide
/// ct_floordiv / ct_ceildiv / ct_max / ct_min helpers (emitted by
/// emit_runtime_helpers).
struct BoundExprs {
  std::string lower;
  std::string upper;
};
BoundExprs bound_exprs(const Polyhedron& level, int var,
                       const std::vector<std::string>& names);

/// Emits the tiny arithmetic helper functions every generated program
/// uses (floor/ceil division, variadic max/min, mod_floor).
void emit_runtime_helpers(CodeWriter& w);

/// Renders a boolean C expression testing p's constraints at the named
/// variables ("(...) && (...)"); "true" for an unconstrained polyhedron.
std::string membership_expr(const Polyhedron& p,
                            const std::vector<std::string>& names);

}  // namespace ctile::codegen
