// Sequential tiled code generation: the method of the authors' SAC 2002
// paper summarized in \S2.3.
//
// The generated program is a complete, dependency-free C++ translation
// unit that (a) allocates a dense array over the iteration-space bounding
// box, (b) executes the 2n-deep tiled loop nest — n outer loops over the
// tile space with Fourier-Motzkin bounds, n inner loops over the TTIS
// with the HNF strides and congruence offsets — and (c) prints a
// checksum of the results, so tests can diff it against the library's
// reference executor.
#pragma once

#include <string>

#include "codegen/gen_common.hpp"

namespace ctile::codegen {

/// Emit the full program text.
std::string generate_sequential_tiled(const TiledNest& tiled,
                                      const StencilSpec& spec);

/// Emit just the 2n-deep loop skeleton (no main, no arrays) — the shape
/// shown in \S2.3 — for documentation and golden tests.
std::string generate_loop_skeleton(const TiledNest& tiled);

}  // namespace ctile::codegen
