#include "linalg/int_matops.hpp"

namespace ctile {

MatI mul(const MatI& a, const MatI& b) {
  CTILE_ASSERT(a.cols() == b.rows());
  MatI out(a.rows(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < b.cols(); ++c) {
      i128 acc = 0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += static_cast<i128>(a(r, k)) * b(k, c);
      }
      out(r, c) = narrow_i64(acc);
    }
  }
  return out;
}

VecI mul(const MatI& a, const VecI& v) {
  CTILE_ASSERT(a.cols() == static_cast<int>(v.size()));
  VecI out(static_cast<std::size_t>(a.rows()));
  for (int r = 0; r < a.rows(); ++r) {
    i128 acc = 0;
    for (int k = 0; k < a.cols(); ++k) {
      acc += static_cast<i128>(a(r, k)) * v[static_cast<std::size_t>(k)];
    }
    out[static_cast<std::size_t>(r)] = narrow_i64(acc);
  }
  return out;
}

MatI add(const MatI& a, const MatI& b) {
  CTILE_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
  MatI out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out(r, c) = add_ck(a(r, c), b(r, c));
  return out;
}

MatI sub(const MatI& a, const MatI& b) {
  CTILE_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
  MatI out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out(r, c) = sub_ck(a(r, c), b(r, c));
  return out;
}

VecI vec_add(const VecI& a, const VecI& b) {
  CTILE_ASSERT(a.size() == b.size());
  VecI out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = add_ck(a[i], b[i]);
  return out;
}

VecI vec_sub(const VecI& a, const VecI& b) {
  CTILE_ASSERT(a.size() == b.size());
  VecI out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = sub_ck(a[i], b[i]);
  return out;
}

VecI vec_neg(const VecI& a) {
  VecI out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = neg_ck(a[i]);
  return out;
}

i64 dot(const VecI& a, const VecI& b) {
  CTILE_ASSERT(a.size() == b.size());
  i128 acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<i128>(a[i]) * b[i];
  }
  return narrow_i64(acc);
}

i64 det(const MatI& m) {
  CTILE_ASSERT(m.is_square());
  const int n = m.rows();
  if (n == 0) return 1;
  // Bareiss: all intermediate entries are determinants of sub-matrices,
  // so divisions are exact.  Entries kept in __int128.
  std::vector<i128> a(static_cast<std::size_t>(n) * n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      a[static_cast<std::size_t>(r) * n + c] = m(r, c);
  auto at = [&](int r, int c) -> i128& {
    return a[static_cast<std::size_t>(r) * n + c];
  };
  i128 prev = 1;
  int sign = 1;
  for (int k = 0; k < n - 1; ++k) {
    if (at(k, k) == 0) {
      int piv = -1;
      for (int r = k + 1; r < n; ++r) {
        if (at(r, k) != 0) {
          piv = r;
          break;
        }
      }
      if (piv < 0) return 0;
      for (int c = 0; c < n; ++c) std::swap(at(k, c), at(piv, c));
      sign = -sign;
    }
    for (int r = k + 1; r < n; ++r) {
      for (int c = k + 1; c < n; ++c) {
        i128 num = at(r, c) * at(k, k) - at(r, k) * at(k, c);
        at(r, c) = num / prev;  // exact by Bareiss invariant
      }
      at(r, k) = 0;
    }
    prev = at(k, k);
  }
  return narrow_i64(sign * at(n - 1, n - 1));
}

bool is_unimodular(const MatI& m) {
  if (!m.is_square()) return false;
  i64 d = det(m);
  return d == 1 || d == -1;
}

int lex_compare(const VecI& a, const VecI& b) {
  CTILE_ASSERT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

bool lex_positive(const VecI& v) {
  for (i64 x : v) {
    if (x > 0) return true;
    if (x < 0) return false;
  }
  return false;
}

MatQ to_rat(const MatI& m) {
  MatQ out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c) out(r, c) = Rat(m(r, c));
  return out;
}

MatI to_int(const MatQ& m) {
  MatI out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      if (!m(r, c).is_integer()) {
        throw Error("to_int: non-integer entry " + m(r, c).to_string() +
                    " at (" + std::to_string(r) + "," + std::to_string(c) +
                    ")");
      }
      out(r, c) = m(r, c).as_int();
    }
  }
  return out;
}

}  // namespace ctile
