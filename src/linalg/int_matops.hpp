// Exact operations on integer matrices and vectors.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace ctile {

/// a * b with overflow-checked accumulation.
MatI mul(const MatI& a, const MatI& b);

/// Matrix-vector product a * v.
VecI mul(const MatI& a, const VecI& v);

/// a + b and a - b (element-wise, checked).
MatI add(const MatI& a, const MatI& b);
MatI sub(const MatI& a, const MatI& b);

/// Element-wise vector helpers.
VecI vec_add(const VecI& a, const VecI& b);
VecI vec_sub(const VecI& a, const VecI& b);
VecI vec_neg(const VecI& a);
i64 dot(const VecI& a, const VecI& b);

/// Determinant by fraction-free Bareiss elimination (exact, __int128
/// intermediates).  Requires a square matrix.
i64 det(const MatI& m);

/// True iff m is square with |det| == 1.
bool is_unimodular(const MatI& m);

/// Lexicographic comparison: negative / zero / positive like memcmp.
int lex_compare(const VecI& a, const VecI& b);

/// True iff v is lexicographically positive (first nonzero entry > 0).
bool lex_positive(const VecI& v);

/// Conversions between integer and rational matrices.
MatQ to_rat(const MatI& m);

/// Exact integer extraction; throws Error if any entry is non-integral.
MatI to_int(const MatQ& m);

}  // namespace ctile
