#include "linalg/rat_matops.hpp"

namespace ctile {

MatQ mul(const MatQ& a, const MatQ& b) {
  CTILE_ASSERT(a.cols() == b.rows());
  MatQ out(a.rows(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < b.cols(); ++c) {
      Rat acc;
      for (int k = 0; k < a.cols(); ++k) acc += a(r, k) * b(k, c);
      out(r, c) = acc;
    }
  }
  return out;
}

VecQ mul(const MatQ& a, const VecQ& v) {
  CTILE_ASSERT(a.cols() == static_cast<int>(v.size()));
  VecQ out(static_cast<std::size_t>(a.rows()));
  for (int r = 0; r < a.rows(); ++r) {
    Rat acc;
    for (int k = 0; k < a.cols(); ++k)
      acc += a(r, k) * v[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(r)] = acc;
  }
  return out;
}

VecQ mul(const MatQ& a, const VecI& v) { return mul(a, to_rat_vec(v)); }

MatQ add(const MatQ& a, const MatQ& b) {
  CTILE_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
  MatQ out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) + b(r, c);
  return out;
}

MatQ sub(const MatQ& a, const MatQ& b) {
  CTILE_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
  MatQ out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) - b(r, c);
  return out;
}

VecQ vec_add(const VecQ& a, const VecQ& b) {
  CTILE_ASSERT(a.size() == b.size());
  VecQ out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

VecQ vec_sub(const VecQ& a, const VecQ& b) {
  CTILE_ASSERT(a.size() == b.size());
  VecQ out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Rat dot(const VecQ& a, const VecQ& b) {
  CTILE_ASSERT(a.size() == b.size());
  Rat acc;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Rat det(const MatQ& m) {
  CTILE_ASSERT(m.is_square());
  const int n = m.rows();
  MatQ a = m;
  Rat result(1);
  for (int k = 0; k < n; ++k) {
    int piv = -1;
    for (int r = k; r < n; ++r) {
      if (!a(r, k).is_zero()) {
        piv = r;
        break;
      }
    }
    if (piv < 0) return Rat(0);
    if (piv != k) {
      a.swap_rows(piv, k);
      result = -result;
    }
    result *= a(k, k);
    Rat inv_piv = a(k, k).inv();
    for (int r = k + 1; r < n; ++r) {
      if (a(r, k).is_zero()) continue;
      Rat f = a(r, k) * inv_piv;
      for (int c = k; c < n; ++c) a(r, c) -= f * a(k, c);
    }
  }
  return result;
}

MatQ inverse(const MatQ& m) {
  CTILE_ASSERT(m.is_square());
  const int n = m.rows();
  MatQ a = m;
  MatQ inv = MatQ::identity(n);
  for (int k = 0; k < n; ++k) {
    int piv = -1;
    for (int r = k; r < n; ++r) {
      if (!a(r, k).is_zero()) {
        piv = r;
        break;
      }
    }
    if (piv < 0) throw Error("inverse: singular matrix");
    if (piv != k) {
      a.swap_rows(piv, k);
      inv.swap_rows(piv, k);
    }
    Rat f = a(k, k).inv();
    for (int c = 0; c < n; ++c) {
      a(k, c) *= f;
      inv(k, c) *= f;
    }
    for (int r = 0; r < n; ++r) {
      if (r == k || a(r, k).is_zero()) continue;
      Rat g = a(r, k);
      for (int c = 0; c < n; ++c) {
        a(r, c) -= g * a(k, c);
        inv(r, c) -= g * inv(k, c);
      }
    }
  }
  return inv;
}

VecQ solve(const MatQ& m, const VecQ& rhs) {
  CTILE_ASSERT(m.is_square() &&
               m.rows() == static_cast<int>(rhs.size()));
  return mul(inverse(m), rhs);
}

int rank(const MatQ& m) {
  MatQ a = m;
  const int rows = a.rows(), cols = a.cols();
  int rk = 0;
  for (int c = 0; c < cols && rk < rows; ++c) {
    int piv = -1;
    for (int r = rk; r < rows; ++r) {
      if (!a(r, c).is_zero()) {
        piv = r;
        break;
      }
    }
    if (piv < 0) continue;
    if (piv != rk) a.swap_rows(piv, rk);
    Rat f = a(rk, c).inv();
    for (int cc = c; cc < cols; ++cc) a(rk, cc) *= f;
    for (int r = 0; r < rows; ++r) {
      if (r == rk || a(r, c).is_zero()) continue;
      Rat g = a(r, c);
      for (int cc = c; cc < cols; ++cc) a(r, cc) -= g * a(rk, cc);
    }
    ++rk;
  }
  return rk;
}

MatQ null_space(const MatQ& m) {
  // Reduced row echelon form, then read off free-variable basis vectors.
  MatQ a = m;
  const int rows = a.rows(), cols = a.cols();
  std::vector<int> pivot_col;
  pivot_col.reserve(static_cast<std::size_t>(rows < cols ? rows : cols));
  int rk = 0;
  for (int c = 0; c < cols && rk < rows; ++c) {
    int piv = -1;
    for (int r = rk; r < rows; ++r) {
      if (!a(r, c).is_zero()) {
        piv = r;
        break;
      }
    }
    if (piv < 0) continue;
    if (piv != rk) a.swap_rows(piv, rk);
    Rat f = a(rk, c).inv();
    for (int cc = c; cc < cols; ++cc) a(rk, cc) *= f;
    for (int r = 0; r < rows; ++r) {
      if (r == rk || a(r, c).is_zero()) continue;
      Rat g = a(r, c);
      for (int cc = c; cc < cols; ++cc) a(r, cc) -= g * a(rk, cc);
    }
    pivot_col.push_back(c);
    ++rk;
  }
  std::vector<bool> is_pivot(static_cast<std::size_t>(cols), false);
  for (int c : pivot_col) is_pivot[static_cast<std::size_t>(c)] = true;
  int n_free = cols - rk;
  MatQ basis(cols, n_free);
  int bcol = 0;
  for (int fc = 0; fc < cols; ++fc) {
    if (is_pivot[static_cast<std::size_t>(fc)]) continue;
    basis(fc, bcol) = Rat(1);
    for (int pr = 0; pr < rk; ++pr) {
      basis(pivot_col[static_cast<std::size_t>(pr)], bcol) = -a(pr, fc);
    }
    ++bcol;
  }
  return basis;
}

bool all_integer(const MatQ& m) {
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      if (!m(r, c).is_integer()) return false;
  return true;
}

VecI to_int_vec(const VecQ& v) {
  VecI out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v[i].is_integer()) {
      throw Error("to_int_vec: non-integer entry " + v[i].to_string());
    }
    out[i] = v[i].as_int();
  }
  return out;
}

bool all_integer_vec(const VecQ& v) {
  for (const Rat& r : v)
    if (!r.is_integer()) return false;
  return true;
}

VecQ to_rat_vec(const VecI& v) {
  VecQ out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = Rat(v[i]);
  return out;
}

}  // namespace ctile
