// Exact rational arithmetic over 64-bit integers.
//
// Tiling matrices H have entries like 1/x and -1/(2x); their inverses P and
// the auxiliary matrices P' = (V*H)^{-1} must be computed exactly, since a
// single off-by-one in a tile origin corrupts the communication sets.  All
// operations normalize (gcd-reduced, positive denominator) and use __int128
// intermediates with overflow checks.
#pragma once

#include <iosfwd>
#include <string>

#include "support/checked_int.hpp"

namespace ctile {

class Rat {
 public:
  /// Zero.
  constexpr Rat() : num_(0), den_(1) {}
  /// Integer value n.
  constexpr Rat(i64 n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// n/d, normalized.  d must be nonzero.
  Rat(i64 n, i64 d);

  i64 num() const { return num_; }
  i64 den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }
  bool is_positive() const { return num_ > 0; }
  bool is_negative() const { return num_ < 0; }

  /// The integer value; requires is_integer().
  i64 as_int() const;
  /// Largest integer <= value.
  i64 floor() const { return floor_div(num_, den_); }
  /// Smallest integer >= value.
  i64 ceil() const { return ceil_div(num_, den_); }
  /// Value rounded toward zero.
  i64 trunc() const { return num_ / den_; }

  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  Rat operator-() const;
  Rat abs() const { return num_ < 0 ? -*this : *this; }
  /// Multiplicative inverse; requires nonzero.
  Rat inv() const;

  friend Rat operator+(const Rat& a, const Rat& b);
  friend Rat operator-(const Rat& a, const Rat& b);
  friend Rat operator*(const Rat& a, const Rat& b);
  friend Rat operator/(const Rat& a, const Rat& b);

  Rat& operator+=(const Rat& o) { return *this = *this + o; }
  Rat& operator-=(const Rat& o) { return *this = *this - o; }
  Rat& operator*=(const Rat& o) { return *this = *this * o; }
  Rat& operator/=(const Rat& o) { return *this = *this / o; }

  friend bool operator==(const Rat& a, const Rat& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rat& a, const Rat& b) { return !(a == b); }
  friend bool operator<(const Rat& a, const Rat& b);
  friend bool operator>(const Rat& a, const Rat& b) { return b < a; }
  friend bool operator<=(const Rat& a, const Rat& b) { return !(b < a); }
  friend bool operator>=(const Rat& a, const Rat& b) { return !(a < b); }

  /// "n" for integers, "n/d" otherwise.
  std::string to_string() const;

 private:
  // Builds from an unreduced __int128 fraction, reducing exactly.
  static Rat from_i128(i128 n, i128 d);

  i64 num_;  // reduced numerator, carries the sign
  i64 den_;  // reduced denominator, always > 0
};

std::ostream& operator<<(std::ostream& os, const Rat& r);

}  // namespace ctile
