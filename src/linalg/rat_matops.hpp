// Exact operations on rational matrices: arithmetic, inverse, determinant,
// and linear solves.  Used for P = H^{-1}, P' = H'^{-1} and the affine
// space conversions j = P*j^S + P'*j'.
#pragma once

#include "linalg/matrix.hpp"

namespace ctile {

MatQ mul(const MatQ& a, const MatQ& b);
VecQ mul(const MatQ& a, const VecQ& v);
VecQ mul(const MatQ& a, const VecI& v);
MatQ add(const MatQ& a, const MatQ& b);
MatQ sub(const MatQ& a, const MatQ& b);

VecQ vec_add(const VecQ& a, const VecQ& b);
VecQ vec_sub(const VecQ& a, const VecQ& b);
Rat dot(const VecQ& a, const VecQ& b);

/// Determinant by exact Gaussian elimination.
Rat det(const MatQ& m);

/// Inverse by Gauss-Jordan; throws Error on a singular matrix.
MatQ inverse(const MatQ& m);

/// Solve m * x = rhs for a square nonsingular m.
VecQ solve(const MatQ& m, const VecQ& rhs);

/// Rank via exact row reduction (works for rectangular matrices).
int rank(const MatQ& m);

/// Basis of the (right) null space {x : m*x = 0}; columns of the result.
MatQ null_space(const MatQ& m);

/// Exact integrality checks and conversions.
bool all_integer(const MatQ& m);
VecI to_int_vec(const VecQ& v);
bool all_integer_vec(const VecQ& v);
VecQ to_rat_vec(const VecI& v);

}  // namespace ctile
