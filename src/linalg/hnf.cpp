#include "linalg/hnf.hpp"

#include "linalg/int_matops.hpp"

namespace ctile {

namespace {

// col_dst = x*col_dst + y*col_src applied to both m and its multiplier.
// The caller is responsible for keeping the pair of updates unimodular.
void combine_cols(MatI& m, MatI& u, int dst, int src, i64 x, i64 y, i64 z,
                  i64 w) {
  // Simultaneously: (col_dst, col_src) <- (x*col_dst + y*col_src,
  //                                        z*col_dst + w*col_src).
  for (MatI* mat : {&m, &u}) {
    for (int r = 0; r < mat->rows(); ++r) {
      i64 a = (*mat)(r, dst);
      i64 b = (*mat)(r, src);
      (*mat)(r, dst) = add_ck(mul_ck(x, a), mul_ck(y, b));
      (*mat)(r, src) = add_ck(mul_ck(z, a), mul_ck(w, b));
    }
  }
}

// col_dst -= q * col_src on both matrices.
void reduce_col(MatI& m, MatI& u, int dst, int src, i64 q) {
  if (q == 0) return;
  for (MatI* mat : {&m, &u}) {
    for (int r = 0; r < mat->rows(); ++r) {
      (*mat)(r, dst) = sub_ck((*mat)(r, dst), mul_ck(q, (*mat)(r, src)));
    }
  }
}

}  // namespace

HnfResult hermite_normal_form(const MatI& a) {
  CTILE_ASSERT(a.is_square());
  const int n = a.rows();
  if (det(a) == 0) {
    throw LegalityError("hermite_normal_form: singular matrix\n" +
                        a.to_string());
  }
  MatI h = a;
  MatI u = MatI::identity(n);
  for (int i = 0; i < n; ++i) {
    // Zero out row i to the right of the diagonal with gcd column ops.
    for (int j = i + 1; j < n; ++j) {
      if (h(i, j) == 0) continue;
      ExtGcd e = ext_gcd(h(i, i), h(i, j));
      // (col_i, col_j) <- (x*col_i + y*col_j,
      //                    -(h_ij/g)*col_i + (h_ii/g)*col_j)
      // The 2x2 multiplier [x, -h_ij/g; y, h_ii/g] has determinant
      // (x*h_ii + y*h_ij)/g = 1, so the update is unimodular.
      i64 ai = h(i, i) / e.g;
      i64 aj = h(i, j) / e.g;
      combine_cols(h, u, i, j, e.x, e.y, neg_ck(aj), ai);
      CTILE_ASSERT(h(i, j) == 0);
    }
    if (h(i, i) == 0) {
      // Cannot happen for nonsingular input once the row is processed.
      throw LegalityError("hermite_normal_form: zero pivot");
    }
    if (h(i, i) < 0) {
      h.negate_col(i);
      u.negate_col(i);
    }
    // Reduce the entries left of the diagonal into [0, h_ii).
    for (int j = 0; j < i; ++j) {
      i64 q = floor_div(h(i, j), h(i, i));
      reduce_col(h, u, j, i, q);
    }
  }
  CTILE_ASSERT(is_hnf(h));
  CTILE_ASSERT(is_unimodular(u));
  CTILE_ASSERT(mul(a, u) == h);
  return {h, u};
}

bool is_hnf(const MatI& m) {
  if (!m.is_square()) return false;
  const int n = m.rows();
  for (int r = 0; r < n; ++r) {
    if (m(r, r) <= 0) return false;
    for (int c = r + 1; c < n; ++c) {
      if (m(r, c) != 0) return false;
    }
    for (int c = 0; c < r; ++c) {
      if (m(r, c) < 0 || m(r, c) >= m(r, r)) return false;
    }
  }
  return true;
}

SnfResult smith_normal_form(const MatI& a) {
  const int rows = a.rows(), cols = a.cols();
  MatI s = a;
  MatI u = MatI::identity(rows);
  MatI v = MatI::identity(cols);

  auto row_combine = [&](int dst, int src, i64 x, i64 y, i64 z, i64 w) {
    for (MatI* mat : {&s, &u}) {
      for (int c = 0; c < mat->cols(); ++c) {
        i64 p = (*mat)(dst, c);
        i64 q = (*mat)(src, c);
        (*mat)(dst, c) = add_ck(mul_ck(x, p), mul_ck(y, q));
        (*mat)(src, c) = add_ck(mul_ck(z, p), mul_ck(w, q));
      }
    }
  };
  auto col_combine = [&](int dst, int src, i64 x, i64 y, i64 z, i64 w) {
    for (MatI* mat : {&s, &v}) {
      for (int r = 0; r < mat->rows(); ++r) {
        i64 p = (*mat)(r, dst);
        i64 q = (*mat)(r, src);
        (*mat)(r, dst) = add_ck(mul_ck(x, p), mul_ck(y, q));
        (*mat)(r, src) = add_ck(mul_ck(z, p), mul_ck(w, q));
      }
    }
  };

  const int k = std::min(rows, cols);
  for (int t = 0; t < k; ++t) {
    // Find a nonzero pivot in the remaining sub-matrix.
    int pr = -1, pc = -1;
    for (int r = t; r < rows && pr < 0; ++r) {
      for (int c = t; c < cols; ++c) {
        if (s(r, c) != 0) {
          pr = r;
          pc = c;
          break;
        }
      }
    }
    if (pr < 0) break;  // rest of the matrix is zero
    if (pr != t) {
      s.swap_rows(pr, t);
      u.swap_rows(pr, t);
    }
    if (pc != t) {
      s.swap_cols(pc, t);
      v.swap_cols(pc, t);
    }
    // Alternate row/column elimination until the cross is clean.  When
    // the pivot already divides the entry, plain elimination leaves the
    // pivot row/column untouched (no refill of already-cleaned entries);
    // otherwise the gcd combine strictly shrinks |pivot|, so the loop
    // terminates.
    bool dirty = true;
    while (dirty) {
      dirty = false;
      for (int r = t + 1; r < rows; ++r) {
        if (s(r, t) == 0) continue;
        if (s(r, t) % s(t, t) == 0) {
          row_combine(t, r, 1, 0, neg_ck(s(r, t) / s(t, t)), 1);
        } else {
          ExtGcd e = ext_gcd(s(t, t), s(r, t));
          i64 at = s(t, t) / e.g;
          i64 ar = s(r, t) / e.g;
          row_combine(t, r, e.x, e.y, neg_ck(ar), at);
          dirty = true;
        }
      }
      for (int c = t + 1; c < cols; ++c) {
        if (s(t, c) == 0) continue;
        if (s(t, c) % s(t, t) == 0) {
          col_combine(t, c, 1, 0, neg_ck(s(t, c) / s(t, t)), 1);
        } else {
          ExtGcd e = ext_gcd(s(t, t), s(t, c));
          i64 at = s(t, t) / e.g;
          i64 ac = s(t, c) / e.g;
          col_combine(t, c, e.x, e.y, neg_ck(ac), at);
          dirty = true;
        }
      }
    }
    if (s(t, t) < 0) {
      s.negate_row(t);
      u.negate_row(t);
    }
  }
  // Fix up divisibility on adjacent pairs until the chain holds:
  // diag(a, b) with a not dividing b becomes diag(gcd, lcm) via three
  // elementary operations; fixing (t, t+1) can break (t-1, t), so sweep
  // to a fixed point.  Termination: each fix strictly decreases s_tt
  // (gcd is a proper divisor), which is bounded below by 1.
  bool settled = false;
  while (!settled) {
    settled = true;
    for (int t = 0; t + 1 < k; ++t) {
      const i64 a = s(t, t);
      const i64 b = s(t + 1, t + 1);
      if (a == 0) continue;  // zeros trail: chain trivially holds
      if (b % a == 0) continue;
      settled = false;
      const int r = t + 1;
      // col_t += col_r: submatrix becomes [[a, 0], [b, b]].
      col_combine(t, r, 1, 1, 0, 1);
      // Row gcd step: rows (t, r) -> [[g, y*b], [0, lcm]].
      ExtGcd e = ext_gcd(a, b);
      row_combine(t, r, e.x, e.y, neg_ck(b / e.g), a / e.g);
      // Clear the (t, r) fill-in (exactly divisible: g | b | y*b).
      const i64 q = s(t, r) / s(t, t);
      for (MatI* mat : {&s, &v}) {
        for (int rr = 0; rr < mat->rows(); ++rr) {
          (*mat)(rr, r) = sub_ck((*mat)(rr, r), mul_ck(q, (*mat)(rr, t)));
        }
      }
      CTILE_ASSERT(s(t, r) == 0 && s(r, t) == 0);
      if (s(t, t) < 0) {
        s.negate_row(t);
        u.negate_row(t);
      }
      if (s(r, r) < 0) {
        s.negate_row(r);
        u.negate_row(r);
      }
    }
  }
  CTILE_ASSERT(is_unimodular(u));
  CTILE_ASSERT(is_unimodular(v));
  CTILE_ASSERT(mul(mul(u, a), v) == s);
  return {s, u, v};
}

}  // namespace ctile
