// Dense row-major matrices over exact scalar types.
//
// ctile uses two instantiations: MatI (int64, with overflow-checked
// arithmetic routed through checked helpers by the operations in
// int_matops/rat_matops) and MatQ (exact rationals).  Matrices here are
// small (n x n for loop depth n, or n x q for q dependence vectors), so a
// simple contiguous vector is the right representation.
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/rational.hpp"
#include "support/checked_int.hpp"

namespace ctile {

template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix of value-initialized (zero) entries.
  Matrix(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    CTILE_ASSERT(rows >= 0 && cols >= 0);
  }

  /// Brace construction from rows: Matrix<i64>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = static_cast<int>(rows.size());
    cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
    data_.reserve(static_cast<std::size_t>(rows_) *
                  static_cast<std::size_t>(cols_));
    for (const auto& r : rows) {
      CTILE_ASSERT(static_cast<int>(r.size()) == cols_);
      for (const auto& v : r) data_.push_back(v);
    }
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(int r, int c) {
    CTILE_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    CTILE_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  std::vector<T> row(int r) const {
    CTILE_ASSERT(r >= 0 && r < rows_);
    return {data_.begin() + static_cast<std::ptrdiff_t>(r) * cols_,
            data_.begin() + static_cast<std::ptrdiff_t>(r + 1) * cols_};
  }

  std::vector<T> col(int c) const {
    CTILE_ASSERT(c >= 0 && c < cols_);
    std::vector<T> out(static_cast<std::size_t>(rows_));
    for (int r = 0; r < rows_; ++r) out[static_cast<std::size_t>(r)] = (*this)(r, c);
    return out;
  }

  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (int r = 0; r < rows_; ++r)
      for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }
  friend bool operator!=(const Matrix& a, const Matrix& b) {
    return !(a == b);
  }

  /// Multi-line rendering for diagnostics: "[ 1 0 ]\n[ 2 3 ]".
  std::string to_string() const {
    std::ostringstream os;
    for (int r = 0; r < rows_; ++r) {
      os << "[";
      for (int c = 0; c < cols_; ++c) os << ' ' << (*this)(r, c);
      os << " ]";
      if (r + 1 < rows_) os << '\n';
    }
    return os.str();
  }

  // Elementary column operations, used by the normal-form algorithms.

  void swap_cols(int a, int b) {
    for (int r = 0; r < rows_; ++r) std::swap((*this)(r, a), (*this)(r, b));
  }
  void swap_rows(int a, int b) {
    for (int c = 0; c < cols_; ++c) std::swap((*this)(a, c), (*this)(b, c));
  }
  void negate_col(int c) {
    for (int r = 0; r < rows_; ++r) (*this)(r, c) = T(0) - (*this)(r, c);
  }
  void negate_row(int r) {
    for (int c = 0; c < cols_; ++c) (*this)(r, c) = T(0) - (*this)(r, c);
  }

 private:
  int rows_;
  int cols_;
  std::vector<T> data_;
};

using MatI = Matrix<i64>;
using MatQ = Matrix<Rat>;
using VecI = std::vector<i64>;
using VecQ = std::vector<Rat>;

template <typename T>
std::ostream& operator<<(std::ostream& os, const Matrix<T>& m) {
  return os << m.to_string();
}

}  // namespace ctile
