#include "linalg/rational.hpp"

#include <ostream>

namespace ctile {

namespace {

// gcd over __int128 magnitudes.
i128 gcd_i128(i128 a, i128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rat::Rat(i64 n, i64 d) {
  if (d == 0) throw Error("Rat: zero denominator");
  *this = from_i128(n, d);
}

Rat Rat::from_i128(i128 n, i128 d) {
  CTILE_ASSERT(d != 0);
  if (d < 0) {
    n = -n;
    d = -d;
  }
  if (n == 0) {
    Rat r;
    return r;
  }
  i128 g = gcd_i128(n, d);
  n /= g;
  d /= g;
  Rat r;
  r.num_ = narrow_i64(n);
  r.den_ = narrow_i64(d);
  return r;
}

i64 Rat::as_int() const {
  if (den_ != 1) {
    throw Error("Rat::as_int on non-integer " + to_string());
  }
  return num_;
}

Rat Rat::operator-() const {
  Rat r;
  r.num_ = neg_ck(num_);
  r.den_ = den_;
  return r;
}

Rat Rat::inv() const {
  if (num_ == 0) throw Error("Rat::inv of zero");
  return from_i128(den_, num_);
}

Rat operator+(const Rat& a, const Rat& b) {
  return Rat::from_i128(
      static_cast<i128>(a.num_) * b.den_ + static_cast<i128>(b.num_) * a.den_,
      static_cast<i128>(a.den_) * b.den_);
}

Rat operator-(const Rat& a, const Rat& b) {
  return Rat::from_i128(
      static_cast<i128>(a.num_) * b.den_ - static_cast<i128>(b.num_) * a.den_,
      static_cast<i128>(a.den_) * b.den_);
}

Rat operator*(const Rat& a, const Rat& b) {
  return Rat::from_i128(static_cast<i128>(a.num_) * b.num_,
                        static_cast<i128>(a.den_) * b.den_);
}

Rat operator/(const Rat& a, const Rat& b) {
  if (b.num_ == 0) throw Error("Rat: division by zero");
  return Rat::from_i128(static_cast<i128>(a.num_) * b.den_,
                        static_cast<i128>(a.den_) * b.num_);
}

bool operator<(const Rat& a, const Rat& b) {
  return static_cast<i128>(a.num_) * b.den_ <
         static_cast<i128>(b.num_) * a.den_;
}

std::string Rat::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rat& r) {
  return os << r.to_string();
}

}  // namespace ctile
