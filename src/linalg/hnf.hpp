// Column-style Hermite Normal Form.
//
// For a nonsingular integer matrix A, computes the unique lower-triangular
// H with positive diagonal and 0 <= h_kl < h_kk for l < k, together with a
// unimodular U such that A * U = H.  This is the H~' of the paper (\S2.3):
// its diagonal gives the TTIS traversal strides c_k = h_kk and its
// sub-diagonal entries the incremental offsets a_kl = h_kl.
#pragma once

#include "linalg/matrix.hpp"

namespace ctile {

struct HnfResult {
  MatI h;  ///< the Hermite Normal Form (lower triangular)
  MatI u;  ///< unimodular multiplier with a * u == h
};

/// Column HNF of a square nonsingular matrix; throws LegalityError if the
/// matrix is singular.
HnfResult hermite_normal_form(const MatI& a);

/// True iff m is lower triangular with positive diagonal and reduced
/// sub-diagonal entries (0 <= m(k,l) < m(k,k) for l < k).
bool is_hnf(const MatI& m);

struct SnfResult {
  MatI s;  ///< diagonal, s_ii >= 0, s_ii | s_(i+1)(i+1)
  MatI u;  ///< unimodular row multiplier
  MatI v;  ///< unimodular column multiplier, u * a * v == s
};

/// Smith Normal Form of any integer matrix (used for lattice diagnostics:
/// the product of the invariant factors is the lattice index |det|).
SnfResult smith_normal_form(const MatI& a);

}  // namespace ctile
