// Dependence extraction from array references.
//
// The paper's algorithm model (\S2.1) is
//     A[f_w(j)] := F(A[f_w(j - d_1)], ..., A[f_w(j - d_q)])
// with affine references and *uniform* dependencies.  This front end
// derives the dependence matrix D from the references themselves: given
// the write reference f_w(j) = W j + w0 and a read reference
// f_r(j) = R j + r0 (both affine), the flow dependence from the write at
// iteration p to the read at iteration j requires f_w(p) = f_r(j).  The
// dependence is *uniform* — d = j - p constant over the space — exactly
// when W = R and W is injective on Z^n; then W d = r0 ... precisely:
// W(j - d) + w0 = R j + r0  for all j  =>  W = R and W d = w0' with
// w0' = w0 - r0 ... solving W d = w0 - r0 for the unique integer d.
//
// Non-uniform pairs (W != R, or no integer solution) are reported as
// such, since the paper's framework requires uniformity.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace ctile {

/// An affine array reference  f(j) = coef * j + offset.
struct ArrayRef {
  MatI coef;    ///< dims(array) x n
  VecI offset;  ///< dims(array)

  /// The common case: identity subscripts with a constant offset,
  /// A[j_1 + o_1]...[j_n + o_n].
  static ArrayRef identity_with_offset(const VecI& offset);

  /// f(j).
  VecI eval(const VecI& j) const;
};

/// Result of analyzing one (write, read) reference pair.
struct DepResult {
  bool uniform = false;       ///< a constant dependence vector exists
  VecI distance;              ///< d with read(j) == write(j - d), if uniform
  std::string reason;         ///< diagnostic when not uniform
};

/// Analyze the pair: does reading `read` at iteration j always consume the
/// value written by `write` at iteration j - d for a constant d?
DepResult uniform_dependence(const ArrayRef& write, const ArrayRef& read);

/// Build the dependence matrix for a statement with write reference
/// `write` and the given reads (columns ordered as the reads are).
/// Throws LegalityError naming the offending read when any pair is
/// non-uniform or the resulting dependence is not lexicographically
/// positive (reads of values the statement has not produced yet).
MatI extract_dependencies(const ArrayRef& write,
                          const std::vector<ArrayRef>& reads);

}  // namespace ctile
