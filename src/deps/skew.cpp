#include "deps/skew.hpp"

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"

namespace ctile {

LoopNest skew(const LoopNest& nest, const MatI& t) {
  if (!is_unimodular(t)) {
    throw LegalityError(nest.name + ": skewing matrix is not unimodular\n" +
                        t.to_string());
  }
  if (t.rows() != nest.depth) {
    throw LegalityError(nest.name + ": skewing matrix dimension mismatch");
  }
  LoopNest out;
  out.name = nest.name + "_skewed";
  out.depth = nest.depth;
  // {j' : T^{-1} j' in J^n}: substitute j = T^{-1} j' in the constraints.
  MatQ t_inv = inverse(to_rat(t));
  out.space = substitute(nest.space, t_inv,
                         VecQ(static_cast<std::size_t>(nest.depth), Rat(0)));
  out.deps = mul(t, nest.deps);
  out.validate();
  return out;
}

bool all_deps_nonnegative(const MatI& deps) {
  for (int r = 0; r < deps.rows(); ++r) {
    for (int c = 0; c < deps.cols(); ++c) {
      if (deps(r, c) < 0) return false;
    }
  }
  return true;
}

}  // namespace ctile
