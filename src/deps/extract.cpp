#include "deps/extract.hpp"

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"

namespace ctile {

ArrayRef ArrayRef::identity_with_offset(const VecI& offset) {
  ArrayRef ref;
  ref.coef = MatI::identity(static_cast<int>(offset.size()));
  ref.offset = offset;
  return ref;
}

VecI ArrayRef::eval(const VecI& j) const {
  return vec_add(mul(coef, j), offset);
}

namespace {

// Solve coef * d = rhs exactly over the rationals; returns the unique
// solution if the system is consistent and coef has full column rank,
// nullopt otherwise (reason set accordingly).
std::optional<VecQ> solve_full_column_rank(const MatI& coef, const VecI& rhs,
                                           std::string* reason) {
  const int rows = coef.rows();
  const int cols = coef.cols();
  if (rank(to_rat(coef)) < cols) {
    *reason = "write reference is not injective (multiple iterations write "
              "each element)";
    return std::nullopt;
  }
  // Gaussian elimination on the augmented system [coef | rhs].
  MatQ a(rows, cols + 1);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) a(r, c) = Rat(coef(r, c));
    a(r, cols) = Rat(rhs[static_cast<std::size_t>(r)]);
  }
  int rk = 0;
  std::vector<int> pivot_row(static_cast<std::size_t>(cols), -1);
  for (int c = 0; c < cols && rk < rows; ++c) {
    int piv = -1;
    for (int r = rk; r < rows; ++r) {
      if (!a(r, c).is_zero()) {
        piv = r;
        break;
      }
    }
    if (piv < 0) continue;
    if (piv != rk) a.swap_rows(piv, rk);
    Rat f = a(rk, c).inv();
    for (int cc = c; cc <= cols; ++cc) a(rk, cc) *= f;
    for (int r = 0; r < rows; ++r) {
      if (r == rk || a(r, c).is_zero()) continue;
      Rat g = a(r, c);
      for (int cc = c; cc <= cols; ++cc) a(r, cc) -= g * a(rk, cc);
    }
    pivot_row[static_cast<std::size_t>(c)] = rk;
    ++rk;
  }
  // Consistency: no row with zero coefficients and nonzero rhs.
  for (int r = rk; r < rows; ++r) {
    if (!a(r, cols).is_zero()) {
      *reason = "references never alias (no iteration writes the elements "
                "this read consumes)";
      return std::nullopt;
    }
  }
  VecQ d(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    CTILE_ASSERT(pivot_row[static_cast<std::size_t>(c)] >= 0);
    d[static_cast<std::size_t>(c)] =
        a(pivot_row[static_cast<std::size_t>(c)], cols);
  }
  return d;
}

}  // namespace

DepResult uniform_dependence(const ArrayRef& write, const ArrayRef& read) {
  DepResult result;
  if (write.coef.rows() != read.coef.rows() ||
      write.coef.cols() != read.coef.cols()) {
    result.reason = "write and read reference different array shapes";
    return result;
  }
  if (write.coef != read.coef) {
    result.reason = "subscript coefficient matrices differ: the dependence "
                    "distance varies across the space (non-uniform)";
    return result;
  }
  // W(j - d) + w0 = W j + r0  =>  W d = w0 - r0.
  VecI rhs = vec_sub(write.offset, read.offset);
  std::string reason;
  std::optional<VecQ> d = solve_full_column_rank(write.coef, rhs, &reason);
  if (!d) {
    result.reason = reason;
    return result;
  }
  if (!all_integer_vec(*d)) {
    result.reason = "dependence distance is fractional: the references "
                    "never alias on the integer lattice";
    return result;
  }
  result.uniform = true;
  result.distance = to_int_vec(*d);
  return result;
}

MatI extract_dependencies(const ArrayRef& write,
                          const std::vector<ArrayRef>& reads) {
  const int n = write.coef.cols();
  MatI deps(n, static_cast<int>(reads.size()));
  for (std::size_t l = 0; l < reads.size(); ++l) {
    DepResult r = uniform_dependence(write, reads[l]);
    if (!r.uniform) {
      throw LegalityError("extract_dependencies: read " + std::to_string(l) +
                          ": " + r.reason);
    }
    if (!lex_positive(r.distance)) {
      throw LegalityError(
          "extract_dependencies: read " + std::to_string(l) +
          " has non-lexicographically-positive distance (reads a value the "
          "program has not produced yet)");
    }
    for (int k = 0; k < n; ++k) {
      deps(k, static_cast<int>(l)) = r.distance[static_cast<std::size_t>(k)];
    }
  }
  return deps;
}

}  // namespace ctile
