#include "deps/loop_nest.hpp"

#include "linalg/int_matops.hpp"

namespace ctile {

void LoopNest::validate() const {
  if (depth <= 0) throw LegalityError(name + ": loop depth must be positive");
  if (space.dim() != depth) {
    throw LegalityError(name + ": space dimension " +
                        std::to_string(space.dim()) + " != depth " +
                        std::to_string(depth));
  }
  if (deps.rows() != depth) {
    throw LegalityError(name + ": dependence matrix has " +
                        std::to_string(deps.rows()) + " rows, expected " +
                        std::to_string(depth));
  }
  for (int d = 0; d < deps.cols(); ++d) {
    if (!lex_positive(deps.col(d))) {
      throw LegalityError(name + ": dependence column " + std::to_string(d) +
                          " is not lexicographically positive");
    }
  }
}

LoopNest make_rectangular_nest(std::string name, const VecI& lo,
                               const VecI& hi, MatI deps) {
  LoopNest nest;
  nest.name = std::move(name);
  nest.depth = static_cast<int>(lo.size());
  nest.space = Polyhedron::box(lo, hi);
  nest.deps = std::move(deps);
  nest.validate();
  return nest;
}

}  // namespace ctile
