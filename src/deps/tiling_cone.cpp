#include "deps/tiling_cone.hpp"

#include <algorithm>

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"

namespace ctile {

ConeRays tiling_cone(const MatI& deps) {
  // Constraint rows for h are the dependence vectors themselves:
  // h . d >= 0 for every column d.
  return extreme_rays(deps.transposed());
}

std::vector<VecI> cone_surface_directions(const MatI& deps) {
  const ConeRays cone = tiling_cone(deps);
  if (cone.has_lineality) return {};
  const MatI a = deps.transposed();  // constraint rows for h
  const auto on_surface = [&](const VecI& h) {
    for (int r = 0; r < a.rows(); ++r) {
      i64 acc = 0;
      for (int k = 0; k < a.cols(); ++k) {
        acc = add_ck(acc, mul_ck(a(r, k), h[static_cast<std::size_t>(k)]));
      }
      if (acc == 0) return true;
    }
    return false;
  };
  std::vector<VecI> dirs;
  for (const VecI& ray : cone.rays) dirs.push_back(ray);
  // Pairwise ray sums sample the relative interior of the 2-faces; a
  // sum that leaves every constraint slack has wandered into the cone
  // interior (the two rays span no common facet) and is dropped.
  for (std::size_t i = 0; i < cone.rays.size(); ++i) {
    for (std::size_t j = i + 1; j < cone.rays.size(); ++j) {
      const VecI sum = primitive(vec_add(cone.rays[i], cone.rays[j]));
      if (on_surface(sum)) dirs.push_back(sum);
    }
  }
  std::sort(dirs.begin(), dirs.end(),
            [](const VecI& x, const VecI& y) { return lex_compare(x, y) < 0; });
  dirs.erase(std::unique(dirs.begin(), dirs.end()), dirs.end());
  return dirs;
}

bool tiling_legal(const MatQ& h, const MatI& deps) {
  CTILE_ASSERT(h.cols() == deps.rows());
  for (int r = 0; r < h.rows(); ++r) {
    for (int c = 0; c < deps.cols(); ++c) {
      Rat acc;
      for (int k = 0; k < h.cols(); ++k) {
        acc += h(r, k) * Rat(deps(k, c));
      }
      if (acc.is_negative()) return false;
    }
  }
  return true;
}

void require_tiling_legal(const MatQ& h, const MatI& deps,
                          const std::string& context) {
  CTILE_ASSERT(h.cols() == deps.rows());
  for (int r = 0; r < h.rows(); ++r) {
    for (int c = 0; c < deps.cols(); ++c) {
      Rat acc;
      for (int k = 0; k < h.cols(); ++k) {
        acc += h(r, k) * Rat(deps(k, c));
      }
      if (acc.is_negative()) {
        throw LegalityError(context + ": illegal tiling, row " +
                            std::to_string(r) + " of H against dependence " +
                            std::to_string(c) + " gives " + acc.to_string() +
                            " < 0");
      }
    }
  }
}

}  // namespace ctile
