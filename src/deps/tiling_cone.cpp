#include "deps/tiling_cone.hpp"

#include "linalg/rat_matops.hpp"

namespace ctile {

ConeRays tiling_cone(const MatI& deps) {
  // Constraint rows for h are the dependence vectors themselves:
  // h . d >= 0 for every column d.
  return extreme_rays(deps.transposed());
}

bool tiling_legal(const MatQ& h, const MatI& deps) {
  CTILE_ASSERT(h.cols() == deps.rows());
  for (int r = 0; r < h.rows(); ++r) {
    for (int c = 0; c < deps.cols(); ++c) {
      Rat acc;
      for (int k = 0; k < h.cols(); ++k) {
        acc += h(r, k) * Rat(deps(k, c));
      }
      if (acc.is_negative()) return false;
    }
  }
  return true;
}

void require_tiling_legal(const MatQ& h, const MatI& deps,
                          const std::string& context) {
  CTILE_ASSERT(h.cols() == deps.rows());
  for (int r = 0; r < h.rows(); ++r) {
    for (int c = 0; c < deps.cols(); ++c) {
      Rat acc;
      for (int k = 0; k < h.cols(); ++k) {
        acc += h(r, k) * Rat(deps(k, c));
      }
      if (acc.is_negative()) {
        throw LegalityError(context + ": illegal tiling, row " +
                            std::to_string(r) + " of H against dependence " +
                            std::to_string(c) + " gives " + acc.to_string() +
                            " < 0");
      }
    }
  }
}

}  // namespace ctile
