// Unimodular skewing of loop nests.
//
// SOR and Jacobi carry dependencies with negative components, so they must
// be skewed (j' = T j, T unimodular) before any rectangular tiling is
// legal (\S4.1, \S4.2 of the paper).  Skewing maps the iteration space to
// {T j : j in J^n} and the dependencies to T D; it is a bijection on
// integer points, so the computation is unchanged.
#pragma once

#include "deps/loop_nest.hpp"

namespace ctile {

/// Apply the unimodular transformation j' = T j.  Throws LegalityError if
/// T is not unimodular or shapes disagree.
LoopNest skew(const LoopNest& nest, const MatI& t);

/// True iff every column of deps is non-negative (rectangular tiling of
/// any size is then legal).
bool all_deps_nonnegative(const MatI& deps);

}  // namespace ctile
