// The tiling cone of a dependence matrix and tiling legality tests.
//
// A tiling transformation H is legal iff H d >= 0 (componentwise) for
// every dependence vector d: then no tile depends on a lexicographically
// later tile (Ramanujam-Sadayappan / Xue / Boulet et al., cited in \S1).
// The set of legal row vectors {h : h . d >= 0 for all d} is the tiling
// cone; the paper selects non-rectangular H rows parallel to its extreme
// rays to obtain scheduling-optimal tile shapes.
#pragma once

#include "linalg/matrix.hpp"
#include "poly/cone.hpp"

namespace ctile {

/// Extreme rays of the tiling cone {h : h . d >= 0 for every column d of
/// deps}.
ConeRays tiling_cone(const MatI& deps);

/// True iff H d >= 0 componentwise for every dependence column (H given
/// as a rational matrix, the paper's H with rows 1/x etc.).
bool tiling_legal(const MatQ& h, const MatI& deps);

/// Throws LegalityError with a diagnostic naming the offending (row, dep)
/// pair when the tiling is illegal.
void require_tiling_legal(const MatQ& h, const MatI& deps,
                          const std::string& context);

}  // namespace ctile
