// The tiling cone of a dependence matrix and tiling legality tests.
//
// A tiling transformation H is legal iff H d >= 0 (componentwise) for
// every dependence vector d: then no tile depends on a lexicographically
// later tile (Ramanujam-Sadayappan / Xue / Boulet et al., cited in \S1).
// The set of legal row vectors {h : h . d >= 0 for all d} is the tiling
// cone; the paper selects non-rectangular H rows parallel to its extreme
// rays to obtain scheduling-optimal tile shapes.
#pragma once

#include "linalg/matrix.hpp"
#include "poly/cone.hpp"

namespace ctile {

/// Extreme rays of the tiling cone {h : h . d >= 0 for every column d of
/// deps}.
ConeRays tiling_cone(const MatI& deps);

/// Candidate H-row directions on the *surface* of the tiling cone: the
/// extreme rays plus every pairwise sum of distinct rays that still has
/// at least one dependence constraint tight (h . d == 0) — primitive
/// samples of the cone's 2-faces.  Per Hodzic-Shang (and the paper's
/// \S4) the scheduling-optimal tile shapes draw their rows from this
/// surface: a row strictly inside the cone pays h . d > 0 against every
/// dependence, while a surface row zeroes the transformed component of
/// the dependences on its tight facets — that is exactly how the
/// paper's nr families arise (ADI's nr1/nr2/nr3 chain rows are the ray
/// (1,-1,-1) and its facet sums (1,-1,0), (1,0,-1); SOR's rectangular
/// row (0,0,1) is itself a facet sum of two skewed-cone rays).
///
/// Deduplicated, lexicographically sorted (deterministic enumeration
/// order for the shape search).  Empty when the cone has lineality —
/// surface sampling is meaningless without a pointed cone.
std::vector<VecI> cone_surface_directions(const MatI& deps);

/// True iff H d >= 0 componentwise for every dependence column (H given
/// as a rational matrix, the paper's H with rows 1/x etc.).
bool tiling_legal(const MatQ& h, const MatI& deps);

/// Throws LegalityError with a diagnostic naming the offending (row, dep)
/// pair when the tiling is illegal.
void require_tiling_legal(const MatQ& h, const MatI& deps,
                          const std::string& context);

}  // namespace ctile
