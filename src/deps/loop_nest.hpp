// Loop nest model: the algorithm class of the paper's \S2.1.
//
// A LoopNest is a perfectly nested FOR loop of depth n over a convex
// integer iteration space J^n (affine bounds), with uniform constant
// dependencies given as the columns of an n x q dependence matrix D.
// Array subscripts are the identity write reference f_w(j) = j unless a
// kernel supplies its own mapping (the paper treats one single-assignment
// statement; multiple statements/arrays are a notational extension).
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "poly/polyhedron.hpp"

namespace ctile {

struct LoopNest {
  std::string name;    ///< identifier used in diagnostics and codegen
  int depth;           ///< n, the number of nested loops
  Polyhedron space;    ///< J^n as a polyhedron over (j_1 .. j_n)
  MatI deps;           ///< n x q dependence matrix (columns = vectors)

  int num_deps() const { return deps.cols(); }

  /// The d-th dependence vector (column of D).
  VecI dep(int d) const { return deps.col(d); }

  /// Throws LegalityError unless every dependence column is
  /// lexicographically positive (required for any valid reordering) and
  /// the space/dep dimensions agree.
  void validate() const;
};

/// Rectangular iteration space builder: lo_k <= j_k <= hi_k.
LoopNest make_rectangular_nest(std::string name, const VecI& lo,
                               const VecI& hi, MatI deps);

}  // namespace ctile
