// Content-addressed cache of CompiledPlans: the plan-compiler-as-a-
// service substrate (ROADMAP "heavy traffic" item).
//
// Keys are a canonical, platform-stable byte serialization of everything
// that determines what lowering produces: the iteration space (gcd-
// normalized constraints, sorted), the dependence matrix (column order
// preserved — kernels consume dependence values by column index), the
// tiling matrix H as exact normalized rationals, the lowering kind
// (sequential / parallel) and the LoweringKnobs (force_m, census mode,
// census box + skew, and — when a machine-derived consumer sets them —
// the machine-model fields, so scores cached under a plan id minted for
// one machine are never served for another).  The nest's *name* is
// deliberately excluded — two
// identically-shaped nests share a plan no matter what they are called.
// All integers are written little-endian at fixed width, so the bytes —
// and the FNV-1a digest over them — are identical across platforms,
// which is what makes cache keys shardable and persistable.
//
// Lookups are exact: the map is keyed by the full canonical bytes, with
// the 64-bit digest serving only as the hash-bucket index and the
// human-readable plan id.  A digest collision therefore cannot alias two
// different plans.
//
// Concurrency: one mutex guards the map; lowering happens OUTSIDE the
// lock behind a per-key shared_future, so (a) distinct keys lower
// genuinely in parallel, (b) concurrent requests for the same key lower
// it exactly once (later arrivals block on the in-flight future and are
// counted as hits), and (c) a lowering that throws (LegalityError for a
// structurally invalid tiling) is NOT cached — the entry is erased and
// every waiter sees the exception, so a later retry starts clean.
//
// Invalidation: content-addressed entries can never go stale — a plan is
// a pure function of its key — so the only eviction is capacity-based
// (set_capacity, FIFO over completed entries; 0 = unbounded, the
// default).
#pragma once

#include <functional>
#include <future>
#include <list>
#include <string>
#include <unordered_map>

#include "deps/loop_nest.hpp"
#include "runtime/compiled_plan.hpp"

namespace ctile {

/// A canonical cache key: exact identity bytes plus their 64-bit FNV-1a
/// digest (index / display only — equality is on the bytes).
struct PlanKey {
  std::string bytes;
  u64 digest = 0;

  /// 16-hex-digit rendering of the digest (the plan id in reports).
  std::string hex() const;

  friend bool operator==(const PlanKey& a, const PlanKey& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const PlanKey& a, const PlanKey& b) {
    return !(a == b);
  }
};

/// FNV-1a 64-bit over a byte string (the cache's digest function;
/// exposed for the request-level cache in tools/ctile_pland).
u64 fnv1a64(const std::string& bytes);

/// Build the canonical key for lowering (nest, H) at `kind` with
/// `knobs`.  Throws nothing; legality is decided at lowering time.
PlanKey make_plan_key(const LoopNest& nest, const MatQ& h,
                      CompiledPlan::Kind kind,
                      const LoweringKnobs& knobs = {});

/// Same, from an already-built TiledNest (H = tiled.transform().H()).
PlanKey make_plan_key(const TiledNest& tiled, CompiledPlan::Kind kind,
                      const LoweringKnobs& knobs = {});

class PlanCache {
 public:
  struct Stats {
    i64 hits = 0;    ///< served an existing (or in-flight) plan
    i64 waits = 0;   ///< subset of hits that blocked on in-flight lowering
    i64 misses = 0;  ///< lowered cold (exactly one per cached plan)
    i64 failures = 0;   ///< lowerings that threw (not cached)
    i64 evictions = 0;  ///< entries dropped by the capacity bound
    double lowering_s = 0.0;      ///< total cold-lowering wall seconds
    PlanPhaseTimes phase_total;   ///< per-phase compile-time breakdown

    double hit_rate() const {
      const i64 total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  /// Return the plan for `key`, lowering it via `lower` on a cold miss.
  /// `lower` runs outside the cache lock; concurrent callers with the
  /// same key share one lowering.  If `lower` throws, the entry is
  /// erased and the exception propagates to every waiter.  `was_hit`
  /// (optional) reports whether this call was served from cache.
  std::shared_ptr<const CompiledPlan> get_or_lower(
      const PlanKey& key,
      const std::function<std::shared_ptr<const CompiledPlan>()>& lower,
      bool* was_hit = nullptr);

  /// Convenience: the parallel plan for (nest, H, knobs), keyed
  /// canonically and lowered with CompiledPlan::compile_parallel on a
  /// miss.  Throws LegalityError for structurally invalid tilings.
  std::shared_ptr<const CompiledPlan> parallel_plan(
      const LoopNest& nest, const MatQ& h, const LoweringKnobs& knobs = {},
      bool* was_hit = nullptr);

  /// Convenience: the sequential-tiled plan for (nest, H).
  std::shared_ptr<const CompiledPlan> sequential_plan(
      const LoopNest& nest, const MatQ& h, bool* was_hit = nullptr);

  /// The plan for `key` if already cached and completed, else nullptr
  /// (never blocks, never lowers, does not count in the stats).
  std::shared_ptr<const CompiledPlan> lookup(const PlanKey& key) const;

  /// Completed + in-flight entries currently resident.
  std::size_t size() const;

  Stats stats() const;

  /// Drop every completed entry and zero the statistics.  In-flight
  /// lowerings finish and are handed to their waiters but are not
  /// re-inserted (their map entries are erased with everything else
  /// once complete — see get_or_lower's generation check).
  void clear();

  /// Bound the number of resident completed entries; 0 (default) means
  /// unbounded.  Eviction is FIFO over completed entries — content-
  /// addressed plans never go stale, so recency is only a memory knob.
  void set_capacity(std::size_t capacity);

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const CompiledPlan>> future;
    bool ready = false;   ///< set once the lowering completed OK
    u64 generation = 0;   ///< clear() fences stale completions
  };

  void evict_if_needed_locked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> fifo_;  ///< completed keys, insertion order
  std::size_t capacity_ = 0;
  u64 generation_ = 0;
  Stats stats_;
};

/// The process-wide cache the autotuner and the service driver share by
/// default.  Constructed on first use; never destroyed before exit.
PlanCache& global_plan_cache();

}  // namespace ctile
