// The Local Data Space (\S3.1, Figure 3) and the map/map^{-1} functions of
// Tables 1 and 2.
//
// Each processor stores the data its chain of tiles computes in a dense
// rectangular array: TTIS lattice points are condensed by the strides c_k
// (slot j'_k / c_k), halo ("communication storage") of off_k slots is
// prepended per non-chain dimension, and the chain dimension m is laid out
// contiguously at v_m / c_m slots per tile with one extra tile-sized halo
// at the front:
//
//    off_k = ceil(max_l d'_kl / c_k)   (k != m)
//    off_m = v_m / c_m
//    extent_k = off_k + v_k / c_k      (k != m)
//    extent_m = off_m + |t| * v_m / c_m
//
// map(j', t) is exactly the paper's Table 1 (with floor division, which is
// what makes the congruence-offset lattices condense without collisions).
// map^{-1} recovers (j', t) by forward substitution in H~' — the
// congruence bases are computed from the *lattice coordinates* y rather
// than Table 2's printed shorthand, which coincides with it on the paper's
// examples (see DESIGN.md, "Known deviations").
//
// Requirements validated on construction:
//   - c_k | v_k           (dense condensation, \S3.1)
//   - max_l d'_kl <= v_k  (dependencies reach at most one tile per
//                          dimension, the paper's implicit tile-size
//                          assumption)
#pragma once

#include "runtime/mapping.hpp"
#include "support/checked_int.hpp"
#include "tiling/tile_space.hpp"

namespace ctile {

class LdsLayout {
 public:
  /// chain_len < 0 uses the mapping's global chain length (the canonical
  /// layout); the executor instantiates one layout per processor with
  /// that processor's chain-window length (paper: "|t| denotes the
  /// number of tiles assigned to the particular processor").
  LdsLayout(const TiledNest& tiled, const Mapping& mapping,
            i64 chain_len = -1);

  int n() const { return n_; }
  int m() const { return m_; }
  i64 chain_length() const { return chain_len_; }

  /// Halo offset of dimension k (slots).
  i64 off(int k) const { return off_[static_cast<std::size_t>(k)]; }
  /// Total extent of dimension k (slots).
  i64 extent(int k) const { return ext_[static_cast<std::size_t>(k)]; }
  /// Condensed slots per tile in dimension k: v_k / c_k.
  i64 tile_slots(int k) const { return vk_ck_[static_cast<std::size_t>(k)]; }
  /// Communication vector component cc_k = v_k - max_l d'_kl.
  i64 cc(int k) const { return cc_[static_cast<std::size_t>(k)]; }
  /// max_l d'_kl (0 when there are no dependencies).
  i64 dep_max(int k) const { return dmax_[static_cast<std::size_t>(k)]; }

  /// Total number of slots (product of extents).
  i64 size() const { return size_; }

  /// Row-major linear stride of dimension k (product of the extents of
  /// the dimensions inner to k); linear(jpp) == sum_k jpp_k * stride(k).
  i64 stride(int k) const { return strides_[static_cast<std::size_t>(k)]; }

  /// Linear-slot increment of one chain step: advancing t by 1 moves
  /// every mapped slot by exactly tile_slots(m) * stride(m), because
  /// map(j', t)_m is affine in t (c_m | v_m) and the other coordinates
  /// do not depend on t.  This is what makes the communication slot
  /// tables (CommSlotTable) a base table plus a scalar offset.
  i64 chain_step() const { return chain_step_; }

  /// Table 1: LDS coordinates of TTIS point j' of chain element t.
  VecI map(const VecI& jp, i64 t) const;

  /// Row-major linear index of LDS coordinates.
  i64 linear(const VecI& jpp) const;

  /// linear() as a plain dot product with the strides, without the
  /// in-range assertions.  Used to precompute slot-table *bases* at
  /// t = 0, where individual coordinates may be transiently negative
  /// (an unpack shift larger than the chain offset) even though every
  /// base + t * chain_step() actually dereferenced is in range.
  i64 linear_unchecked(const VecI& jpp) const;

  /// map followed by linear.
  i64 slot(const VecI& jp, i64 t) const { return linear(map(jp, t)); }

  /// Debug-mode checked accessor for the fast paths (slot tables and the
  /// strength-reduced sweep), which index with precomputed bases and
  /// affine deltas instead of map/linear.  ctile-verify's rule V2 proves
  /// statically that every such slot lies in [0, size); building with
  /// -DCTILE_CHECKED_LDS=ON asserts that proof at each access.  A
  /// release no-op, so the hot loops stay flat.
  void check_slot(i64 s) const {
#if defined(CTILE_CHECKED_LDS)
    CTILE_ASSERT_MSG(s >= 0 && s < size_,
                     "LDS slot outside the window array (V2 violation)");
#else
    (void)s;
#endif
  }

  /// base + off slot arithmetic for the fast paths, which add precomputed
  /// dependence deltas (or chain offsets) to row/table bases instead of
  /// calling map/linear per point.  Release builds compile to the plain
  /// add — ctile-verify's V2 proves the result in range before anything
  /// dereferences it — while CTILE_CHECKED_LDS forms the sum overflow-
  /// checked (support/checked_int.hpp) and bounds-asserts it, so a
  /// transiently negative or wrapped sum aborts loudly instead of being
  /// cast to a huge std::size_t at the caller's multiply by arity.
  i64 slot_at(i64 base, i64 off) const {
#if defined(CTILE_CHECKED_LDS)
    const i64 s = add_ck(base, off);
    CTILE_ASSERT_MSG(s >= 0 && s < size_,
                     "LDS slot outside the window array (V2 violation)");
    return s;
#else
    return base + off;
#endif
  }

  /// Row-addressing API (strength-reduced sweep): linear slot of a TTIS
  /// row's first point.  Along the row j'_{n} advances by c_{n}, so the
  /// condensed coordinate floor(j'_n / c_n) advances by exactly 1 and the
  /// linear slot by stride(n-1) — successive row points are
  /// row_base + i * stride(n-1) with no further map/linear calls.
  i64 row_base(const VecI& jp, i64 t) const { return slot(jp, t); }

  /// The row-suffix address composition every row-walk consumer (band /
  /// remainder sweep, write-back) performs:
  ///   base0 + t_loc * chain_step() + i * sstep
  /// where base0 is the row's precomputed t = 0 slot, t_loc the window-
  /// local chain position and i the in-row point index.  Release builds
  /// compile to the plain affine form; CTILE_CHECKED_LDS forms every
  /// product and sum overflow-checked and bounds-asserts the result, the
  /// same hardening slot_at() gives the slot-table paths.
  i64 row_slot(i64 base0, i64 t_loc, i64 i, i64 sstep) const {
#if defined(CTILE_CHECKED_LDS)
    const i64 s = add_ck(add_ck(base0, mul_ck(t_loc, chain_step_)),
                         mul_ck(i, sstep));
    CTILE_ASSERT_MSG(s >= 0 && s < size_,
                     "LDS row slot outside the window array (V2 violation)");
    return s;
#else
    return base0 + t_loc * chain_step_ + i * sstep;
#endif
  }

  /// Constant linear-slot offset of transformed dependence dp for the
  /// row containing jp:  slot(jp - dp, t) - slot(jp, t).  Row-invariant
  /// because floor((j'_k - dp_k)/c_k) - floor(j'_k/c_k) depends only on
  /// j'_k mod c_k, which is fixed along a row (see DESIGN.md §8);
  /// t-invariant because c_m | v_m cancels the chain term.  Computed
  /// unchecked (like linear_unchecked): the offset may address halo
  /// slots, which are allocated, but never out of the array for reads
  /// the sweep actually performs.
  i64 dep_delta(const VecI& jp, const VecI& dp) const;

  /// Table 2: recover (j', t) from LDS coordinates of a computation slot.
  /// Asserts the slot lies in the computation region (not halo).
  std::pair<VecI, i64> map_inv(const VecI& jpp) const;

  /// Inverse of linear().
  VecI delinearize(i64 slot) const;

  /// True iff jpp lies in the computation region (every coordinate past
  /// its halo; chain dimension within tiles [0, chain_len)).
  bool is_compute_slot(const VecI& jpp) const;

 private:
  int n_;
  int m_;
  i64 chain_len_;
  MatI hnf_;
  VecI v_;
  VecI off_;
  VecI ext_;
  VecI vk_ck_;
  VecI cc_;
  VecI dmax_;
  VecI strides_;
  i64 chain_step_;
  i64 size_;
};

}  // namespace ctile
