// loc() and loc^{-1}() — the paper's Tables 1 and 2 as a first-class
// object.
//
//   loc:      j in J^n        ->  (pid, LDS coordinates j'')
//   loc^{-1}: (pid, j'' slot) ->  j in J^n
//
// loc is what the write-back phase and any owner-computes query need:
// it decomposes j into its tile (j^S = floor(H j)), the tile into its
// owner processor and chain position (the mapping of \S3.1), and the
// intra-tile coordinates into the condensed LDS slot (Table 1's map).
// loc^{-1} is the exact inverse on computation slots; halo slots have no
// preimage and are reported as such.
//
// Locator addresses the *canonical* layout (chain sized by the global
// chain length).  The executor physically allocates per-processor
// chain-window layouts — same geometry, chain origin shifted per rank —
// so canonical slots are the stable, rank-independent naming scheme.
#pragma once

#include <optional>

#include "runtime/lds.hpp"

namespace ctile {

struct Location {
  VecI pid;   ///< zero-based mesh coordinates (n-1 entries)
  int rank;   ///< linearized rank
  VecI jpp;   ///< LDS coordinates (n entries)
  i64 slot;   ///< linearized LDS slot
};

class Locator {
 public:
  Locator(const TiledNest& tiled, const Mapping& mapping,
          const LdsLayout& lds)
      : tiled_(&tiled), mapping_(&mapping), lds_(&lds) {}

  /// Table 1: where iteration point j lives.  j must be in J^n.
  Location loc(const VecI& j) const;

  /// Table 2: the iteration point stored at (rank, slot), or nullopt for
  /// halo slots, chain positions past the tile space, and clipped
  /// boundary cells (slots that no iteration of J^n writes).
  std::optional<VecI> loc_inv(int rank, i64 slot) const;

 private:
  const TiledNest* tiled_;
  const Mapping* mapping_;
  const LdsLayout* lds_;
};

}  // namespace ctile
