#include "runtime/locate.hpp"

namespace ctile {

Location Locator::loc(const VecI& j) const {
  CTILE_ASSERT_MSG(tiled_->nest().space.contains(j),
                   "loc() on a point outside the iteration space");
  const TilingTransform& tf = tiled_->transform();
  const VecI js = tf.tile_of(j);
  const VecI jp = tf.ttis_of(j, js);
  auto [pid, t] = mapping_->owner_of(js);
  Location out;
  out.pid = pid;
  out.rank = mapping_->rank_of(pid);
  out.jpp = lds_->map(jp, t);
  out.slot = lds_->linear(out.jpp);
  return out;
}

std::optional<VecI> Locator::loc_inv(int rank, i64 slot) const {
  const VecI jpp = lds_->delinearize(slot);
  if (!lds_->is_compute_slot(jpp)) return std::nullopt;
  auto [jp, t] = lds_->map_inv(jpp);
  if (t < 0 || t >= mapping_->chain_length()) return std::nullopt;
  const VecI js = mapping_->tile_at(mapping_->pid_of(rank), t);
  if (!mapping_->valid(js)) return std::nullopt;
  const VecI j = tiled_->transform().point_of(js, jp);
  if (!tiled_->nest().space.contains(j)) return std::nullopt;
  return j;
}

}  // namespace ctile
