// Numeric kernel interface: the loop body F of the paper's algorithm
// model, A[f_w(j)] := F(A[f_w(j - d_1)], ..., A[f_w(j - d_q)]).
//
// A kernel computes `arity` doubles per iteration point (arity 1 for SOR
// and Jacobi; 2 for ADI, whose body updates both X and B) from the values
// at its dependence predecessors.  Reads that fall outside the iteration
// space are supplied by `initial` (boundary/initial conditions); the
// paper's framework leaves boundary handling to the application.
//
// Kernels operating on skewed nests receive skewed coordinates; they can
// unskew internally (see apps/) so numeric results are comparable between
// the original and skewed executions.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace ctile {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Number of doubles stored per iteration point.
  virtual int arity() const = 0;

  /// Compute the point j.  dep_vals holds q * arity() doubles laid out
  /// per dependence (the value at j - d_l starts at dep_vals[l*arity()]);
  /// the result goes to out[0 .. arity()-1].
  virtual void compute(const VecI& j, const double* dep_vals,
                       double* out) const = 0;

  /// Value at a point outside the iteration space (initial condition).
  virtual void initial(const VecI& j, double* out) const = 0;

  /// Batched row evaluation for the executors' strength-reduced sweep
  /// (DESIGN.md §12): evaluate `count` consecutive row points, where
  /// point i sits at j0 + i*jstep, reads dependence l's arity() doubles
  /// at dep_base[l] + i*dep_stride, and writes its arity() results at
  /// out + i*out_stride (strides in doubles; q is the dependence count).
  ///
  /// Contract: bitwise-identical to calling compute() for i = 0..count-1
  /// in increasing order with those addresses — including when a
  /// dep_base[l] aliases earlier outputs of this very row (an in-row
  /// recurrence), which the default per-point implementation honours by
  /// construction.  Overrides that vectorize must detect aliasing (see
  /// row_alias_distance) and either handle it (e.g. SOR's recurrence
  /// split) or fall back to this default.
  virtual void compute_row(const VecI& j0, const VecI& jstep, i64 count,
                           const double* const* dep_base, int q,
                           i64 dep_stride, double* out, i64 out_stride) const;

  /// Signed in-row alias distance of a dependence pointer against the
  /// output row: m != 0 when dep reads this row's own output slots —
  /// dep + i*stride == out + (i - m)*stride — with m > 0 a backward
  /// alias (point i reads point i-m: a recurrence) and m < 0 a forward
  /// alias (point i reads the still-unwritten slot of point i-m, i.e.
  /// pristine pre-sweep values).  0 when the dep never lands on the
  /// row's output slots.  Both pointers must point into the same array
  /// (they do: LDS window or data space), `stride` in doubles.
  static i64 row_alias_distance(const double* dep, const double* out,
                                i64 stride, i64 count);

  /// The same alias analysis on plain offsets: diff = out - dep (in
  /// elements), stride the in-row element step.  This is the single
  /// implementation both the runtime pointer probe above and the
  /// CompiledPlan's static per-(row, dependence) alias claims (proven
  /// by ctile-verify rule V8) are answered from, so the two can never
  /// disagree with each other — only, detectably, with the geometry.
  static i64 row_alias_distance(i64 diff, i64 stride, i64 count);
};

}  // namespace ctile
