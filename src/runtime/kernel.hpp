// Numeric kernel interface: the loop body F of the paper's algorithm
// model, A[f_w(j)] := F(A[f_w(j - d_1)], ..., A[f_w(j - d_q)]).
//
// A kernel computes `arity` doubles per iteration point (arity 1 for SOR
// and Jacobi; 2 for ADI, whose body updates both X and B) from the values
// at its dependence predecessors.  Reads that fall outside the iteration
// space are supplied by `initial` (boundary/initial conditions); the
// paper's framework leaves boundary handling to the application.
//
// Kernels operating on skewed nests receive skewed coordinates; they can
// unskew internally (see apps/) so numeric results are comparable between
// the original and skewed executions.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace ctile {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Number of doubles stored per iteration point.
  virtual int arity() const = 0;

  /// Compute the point j.  dep_vals holds q * arity() doubles laid out
  /// per dependence (the value at j - d_l starts at dep_vals[l*arity()]);
  /// the result goes to out[0 .. arity()-1].
  virtual void compute(const VecI& j, const double* dep_vals,
                       double* out) const = 0;

  /// Value at a point outside the iteration space (initial condition).
  virtual void initial(const VecI& j, double* out) const = 0;
};

}  // namespace ctile
