// Sequential tiled execution: the reordering of [7] (\S2.3) without any
// parallelism — tiles in lexicographic tile-space order, each swept
// through the TTIS — writing directly to the global data space.
//
// Its purpose in the library is evidential: tiling must not change the
// computation, only its order, so this executor's output must equal the
// plain lexicographic executor's bit-for-bit for every legal tiling.
// (It is also the semantic reference for the generated sequential code.)
#pragma once

#include "runtime/data_space.hpp"
#include "tiling/tile_space.hpp"

namespace ctile {

/// Execute `tiled` in sequential tiled order; returns the data space.
DataSpace run_sequential_tiled(const TiledNest& tiled, const Kernel& kernel);

}  // namespace ctile
