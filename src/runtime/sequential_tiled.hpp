// Sequential tiled execution: the reordering of [7] (\S2.3) without any
// parallelism — tiles in lexicographic tile-space order, each swept
// through the TTIS — writing directly to the global data space.
//
// Its purpose in the library is evidential: tiling must not change the
// computation, only its order, so this executor's output must equal the
// plain lexicographic executor's bit-for-bit for every legal tiling.
// (It is also the semantic reference for the generated sequential code.)
//
// Like the parallel executor, it is a thin mutable shell over an
// immutable CompiledPlan (kind kSequential: classifier only, built
// census-free so non-integral P is served too).  Plans come from the
// PlanCache on the warm path; the legacy constructor lowers cold through
// the same CompiledPlan code path.
//
// Interior tiles (tiling/interior.hpp) are swept with flat affine row
// arithmetic directly over data-space offsets — no contains() tests, no
// initial-value branches, no per-point indexing — while boundary tiles
// keep the general clipped path.  The legacy path stays behind
// set_use_fast_sweep(false).
#pragma once

#include <functional>
#include <memory>

#include "runtime/compiled_plan.hpp"
#include "runtime/data_space.hpp"
#include "runtime/exec_policy.hpp"

namespace ctile {

class SequentialTiledExecutor {
 public:
  /// Cold path: classify every tile of `tiled` here via
  /// CompiledPlan::compile_sequential (no census: the sequential path
  /// must also serve non-integral P, where corner probes alone decide).
  SequentialTiledExecutor(const TiledNest& tiled, const Kernel& kernel);

  /// Warm path: adopt an already-lowered sequential plan (from the
  /// PlanCache or a sibling executor); shared read-only.
  SequentialTiledExecutor(std::shared_ptr<const CompiledPlan> plan,
                          const Kernel& kernel);

  const TiledNest& tiled() const { return plan_->tiled(); }
  const TileClassifier& classifier() const { return plan_->classifier(); }

  /// The immutable lowering this executor runs.
  const std::shared_ptr<const CompiledPlan>& compiled() const {
    return plan_;
  }

  /// Install a callback invoked at the top of every run(); the gate
  /// aborts the run by throwing (see verify::enable_verify_before_run).
  /// Pass nullptr to clear.  The verdict is memoized in the plan and
  /// replayed on later runs (see set_reverify); installing a gate drops
  /// any memoized verdict.
  void set_pre_run_gate(std::function<void()> gate) {
    pre_run_gate_ = std::move(gate);
    plan_->invalidate_gate_memo();
  }

  /// Force the pre-run gate to execute on every run() instead of
  /// replaying the plan's memoized verdict (mutation tests).
  void set_reverify(bool on) { reverify_ = on; }
  bool reverify() const { return reverify_; }

  /// Toggle the strength-reduced interior sweep (default on).  Both
  /// paths must produce bitwise-identical data spaces.
  void set_use_fast_sweep(bool on) { use_fast_sweep_ = on; }
  bool use_fast_sweep() const { return use_fast_sweep_; }

  /// Select how interior rows are driven (exec_policy.hpp): kSequential
  /// calls compute() per point, kSimd hands whole rows to the batched
  /// Kernel::compute_row, kThreadPool additionally fans each j'_0-plane's
  /// independent rows across the shared pool when every TTIS dependence
  /// advances j'_0 (degrading to the kSimd path otherwise).  Default:
  /// $CTILE_EXEC_POLICY, else kSimd.  Bitwise-identical by contract.
  void set_exec_policy(exec::Policy p) { policy_ = p; }
  exec::Policy exec_policy() const { return policy_; }

  /// True when the tiling admits the kThreadPool plane fan-out.
  bool plane_parallel() const { return plan_->plane_parallel(); }

  /// Execute in sequential tiled order; returns the data space.
  DataSpace run() const;

 private:
  std::shared_ptr<const CompiledPlan> plan_;
  const Kernel* kernel_;
  exec::Policy policy_ = exec::policy_from_env(exec::Policy::kSimd);
  bool use_fast_sweep_ = true;
  bool reverify_ = false;
  std::function<void()> pre_run_gate_;
};

/// Execute `tiled` in sequential tiled order; returns the data space.
DataSpace run_sequential_tiled(const TiledNest& tiled, const Kernel& kernel);

}  // namespace ctile
