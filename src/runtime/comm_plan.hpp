// Compile-time communication analysis (\S3.2).
//
// From the tile dependence matrix D^S and the communication vector CC
// (cc_k = v_k - max_l d'_kl), this builds everything the SEND/RECEIVE
// phases need:
//
//  - the processor dependencies D^m (distinct nonzero projections of D^S
//    with the chain dimension m collapsed),
//  - for each d^m the pack region: the TTIS sub-box with
//    j'_k >= d^m_k * cc_k for the mesh dimensions and the full extent in
//    the chain dimension (one message per successor processor aggregates
//    every tile dependence towards it),
//  - for each d^S the unpack region (same box shape, selected by the
//    mesh components of d^S) and the LDS shift
//    (d^S_1 v_1/c_1, ..., d^S_n v_n/c_n) that relocates received data
//    into the halo slots its consumers read,
//  - minsucc(s, d^m): the lexicographically minimum valid successor tile
//    of tile s in processor direction d^m, which decides the unique tile
//    at which a message is received.
#pragma once

#include "runtime/lds.hpp"
#include "tiling/ttis.hpp"

namespace ctile {

struct TileDep {
  VecI ds;      ///< tile dependence (n components)
  VecI dm;      ///< processor projection (n-1 components)
  int dir;      ///< index into CommPlan::directions, or -1 if dm == 0
};

struct ProcDir {
  VecI dm;            ///< processor dependence (n-1 components)
  TtisRegion pack;    ///< TTIS sub-box to pack for this direction
};

class CommPlan {
 public:
  CommPlan(const TiledNest& tiled, const Mapping& mapping,
           const LdsLayout& lds);

  /// Tile dependencies with nonzero processor projection first sorted
  /// lexicographically (the deterministic iteration order of RECEIVE).
  const std::vector<TileDep>& tile_deps() const { return deps_; }

  /// Distinct nonzero processor dependencies (SEND iterates these).
  const std::vector<ProcDir>& directions() const { return dirs_; }

  /// Unpack region for tile dependence d (same box for every d^S sharing
  /// a direction; kept per-dep for clarity).
  TtisRegion unpack_region(const TileDep& d) const;

  /// LDS coordinate shift for unpacking dependence d:
  /// (d^S_k * v_k / c_k) per dimension.
  VecI unpack_shift(const TileDep& d) const;

  /// Lexicographically minimum valid successor of tile s in direction
  /// dir; returns false if no successor tile is valid.
  bool minsucc(const VecI& s, int dir, VecI* out) const;

  /// Number of lattice points in direction dir's pack region (message
  /// size in points).
  i64 message_points(int dir) const;

 private:
  const TiledNest* tiled_;
  const Mapping* mapping_;
  const LdsLayout* lds_;
  std::vector<TileDep> deps_;
  std::vector<ProcDir> dirs_;
  std::vector<i64> msg_points_;
};

}  // namespace ctile
