// Compile-time communication analysis (\S3.2).
//
// From the tile dependence matrix D^S and the communication vector CC
// (cc_k = v_k - max_l d'_kl), this builds everything the SEND/RECEIVE
// phases need:
//
//  - the processor dependencies D^m (distinct nonzero projections of D^S
//    with the chain dimension m collapsed),
//  - for each d^m the pack region: the TTIS sub-box with
//    j'_k >= d^m_k * cc_k for the mesh dimensions and the full extent in
//    the chain dimension (one message per successor processor aggregates
//    every tile dependence towards it),
//  - for each d^S the unpack region (same box shape, selected by the
//    mesh components of d^S) and the LDS shift
//    (d^S_1 v_1/c_1, ..., d^S_n v_n/c_n) that relocates received data
//    into the halo slots its consumers read,
//  - minsucc(s, d^m): the lexicographically minimum valid successor tile
//    of tile s in processor direction d^m, which decides the unique tile
//    at which a message is received.
#pragma once

#include "runtime/lds.hpp"
#include "tiling/ttis.hpp"

namespace ctile {

struct TileDep {
  VecI ds;      ///< tile dependence (n components)
  VecI dm;      ///< processor projection (n-1 components)
  int dir;      ///< index into CommPlan::directions, or -1 if dm == 0
};

struct ProcDir {
  VecI dm;            ///< processor dependence (n-1 components)
  TtisRegion pack;    ///< TTIS sub-box to pack for this direction
};

class CommPlan {
 public:
  CommPlan(const TiledNest& tiled, const Mapping& mapping,
           const LdsLayout& lds);

  /// Tile dependencies with nonzero processor projection first sorted
  /// lexicographically (the deterministic iteration order of RECEIVE).
  const std::vector<TileDep>& tile_deps() const { return deps_; }

  /// Distinct nonzero processor dependencies (SEND iterates these).
  const std::vector<ProcDir>& directions() const { return dirs_; }

  /// Unpack region for tile dependence d (same box for every d^S sharing
  /// a direction; kept per-dep for clarity).
  TtisRegion unpack_region(const TileDep& d) const;

  /// LDS coordinate shift for unpacking dependence d:
  /// (d^S_k * v_k / c_k) per dimension.
  VecI unpack_shift(const TileDep& d) const;

  /// Lexicographically minimum valid successor of tile s in direction
  /// dir; returns false if no successor tile is valid.
  bool minsucc(const VecI& s, int dir, VecI* out) const;

  /// Number of lattice points in direction dir's pack region (message
  /// size in points).
  i64 message_points(int dir) const;

 private:
  const TiledNest* tiled_;
  const Mapping* mapping_;
  const LdsLayout* lds_;
  std::vector<TileDep> deps_;
  std::vector<ProcDir> dirs_;
  std::vector<i64> msg_points_;
};

/// Precomputed communication slot tables: the \S3.2 RECEIVE/SEND regions
/// made fully static.
///
/// The pack region of a direction and the unpack region of a tile
/// dependence are fixed for the whole run, and the LDS linearization is
/// affine in the chain position t (LdsLayout::chain_step).  So for a
/// given per-processor layout we enumerate each region's TTIS-lattice
/// points ONCE, in the canonical lexicographic order (the same order the
/// count-indexed message buffers use on both endpoints), and store the
/// linear base slot of every point at t = 0.  At run time
///
///     slot(point i, chain position t_loc) = table[i] + t_loc * chain_step
///
/// replaces the per-message for_each_lattice_point walk; the executor's
/// steady-state pack/unpack loops become flat array scans.
///
/// Unpack tables fold in the dependence's halo shift
/// (d^S_k v_k / c_k per dimension), so their bases may be negative at
/// t = 0; every slot actually dereferenced (at the t_loc of a real
/// receive) is in range, which the executor's legacy path asserts and
/// the slot-table tests cross-check.
class CommSlotTable {
 public:
  /// Build the tables for `local`, one entry per lattice point of each
  /// direction's pack region (pack_slots) and of each tile dependence's
  /// shifted unpack region (unpack_slots, indexed like plan.tile_deps();
  /// empty for chain-internal dependencies).
  CommSlotTable(const CommPlan& plan, const TilingTransform& tf,
                const LdsLayout& local);

  /// Base linear slots (t = 0) of direction dir's pack region, in
  /// lattice-enumeration order.
  const std::vector<i64>& pack_slots(int dir) const;

  /// Base linear slots (t = 0, halo shift applied) of tile dependence
  /// `dep_index` (index into CommPlan::tile_deps()).
  const std::vector<i64>& unpack_slots(std::size_t dep_index) const;

  /// Linear-slot increment per chain step (LdsLayout::chain_step()).
  i64 chain_step() const { return chain_step_; }

 private:
  std::vector<std::vector<i64>> pack_;
  std::vector<std::vector<i64>> unpack_;
  i64 chain_step_;
};

}  // namespace ctile
