// Computation distribution (\S3.1).
//
// Tiles along the tile-space dimension m with the maximum trip count are
// mapped to the same processor and executed as a chain, one after another
// (linear schedule Pi = [1,...,1]); the remaining n-1 tile coordinates
// (offset to zero) name the processor on an (n-1)-dimensional mesh.
//
// "Validity" of a tile: with a TileCensus supplied it is exact (tile owns
// at least one iteration point), the processor mesh is the tight bounding
// box of the nonempty tiles, and no ghost tile computes or communicates.
// Without a census, validity falls back to the rational tile-space
// shadow, which contains every nonempty tile plus possibly a few empty
// boundary "ghost" tiles — still correct (ghosts execute zero iterations
// and exchange zero-initialized halo data that no reader ever consumes),
// but it can inflate the mesh and the message count; see DESIGN.md.
#pragma once

#include "tiling/census.hpp"
#include "tiling/tile_space.hpp"

namespace ctile {

class Mapping {
 public:
  /// Chooses m automatically (the dimension with the largest trip count,
  /// ties broken toward the innermost) unless `force_m` is >= 0.
  /// `census` (optional, must outlive the Mapping) enables exact tile
  /// validity and the tight mesh.
  explicit Mapping(const TiledNest& tiled, int force_m = -1,
                   const TileCensus* census = nullptr);

  int n() const { return n_; }
  /// The mapping (chain) dimension m.
  int m() const { return m_; }
  /// Tile-space bounding box.
  const VecI& tile_lo() const { return lo_; }
  const VecI& tile_hi() const { return hi_; }

  /// Extents of the processor mesh (the n-1 non-m dimensions, in
  /// increasing dimension order).
  const VecI& grid() const { return grid_; }
  int num_procs() const { return nprocs_; }
  /// Number of tiles in every chain (the m-extent of the bounding box).
  i64 chain_length() const { return chain_len_; }

  /// Tile index of chain element t on processor pid (pid zero-based,
  /// size n-1).
  VecI tile_at(const VecI& pid, i64 t) const;

  /// Processor (zero-based) and chain position of a tile.
  std::pair<VecI, i64> owner_of(const VecI& js) const;

  /// Row-major linearization of pid (the MPI rank in the paper's code).
  int rank_of(const VecI& pid) const;
  VecI pid_of(int rank) const;

  /// pid + d (where d is an n-1 processor-dependence vector); returns
  /// false if the neighbour falls off the mesh.
  bool neighbor(const VecI& pid, const VecI& d, VecI* out) const;

  /// Tile validity (exact with a census, shadow-based otherwise; see
  /// header comment).
  bool valid(const VecI& js) const;

  /// The window of chain positions t whose tiles are valid on processor
  /// pid (the paper's per-processor |t|; empty range when the processor
  /// owns no tiles).  LDS allocation is sized by this window, not the
  /// global chain length — skewed tile spaces give different processors
  /// very different chain extents.
  IntRange chain_window(const VecI& pid) const;

 private:
  int n_;
  int m_;
  VecI lo_;
  VecI hi_;
  VecI grid_;
  int nprocs_;
  i64 chain_len_;
  const Polyhedron* tile_space_;  // owned by the TiledNest (must outlive)
  const TileCensus* census_;      // optional; exact validity when present
};

/// Projection of a tile dependence d^S onto processor coordinates: the
/// n-1 components excluding dimension m.
VecI project_dep(const VecI& ds, int m);

}  // namespace ctile
