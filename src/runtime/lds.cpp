#include "runtime/lds.hpp"

namespace ctile {

LdsLayout::LdsLayout(const TiledNest& tiled, const Mapping& mapping,
                     i64 chain_len)
    : n_(tiled.nest().depth),
      m_(mapping.m()),
      chain_len_(chain_len >= 0 ? chain_len : mapping.chain_length()),
      hnf_(tiled.transform().Hnf()) {
  const TilingTransform& tf = tiled.transform();
  const std::string& name = tiled.nest().name;
  if (!tf.p_integral()) {
    throw LegalityError(name +
                        ": P = H^-1 must be integral for the parallel "
                        "runtime (uniform full tiles)");
  }
  v_.resize(static_cast<std::size_t>(n_));
  vk_ck_.resize(static_cast<std::size_t>(n_));
  dmax_.resize(static_cast<std::size_t>(n_));
  cc_.resize(static_cast<std::size_t>(n_));
  off_.resize(static_cast<std::size_t>(n_));
  ext_.resize(static_cast<std::size_t>(n_));

  MatI dprime = tiled.ttis_deps();
  for (int k = 0; k < n_; ++k) {
    const i64 vk = tf.v(k);
    const i64 ck = tf.stride(k);
    if (vk % ck != 0) {
      throw LegalityError(name + ": stride c_" + std::to_string(k + 1) +
                          " = " + std::to_string(ck) +
                          " does not divide tile extent v_" +
                          std::to_string(k + 1) + " = " + std::to_string(vk) +
                          " (choose a stride-compatible tile size)");
    }
    v_[static_cast<std::size_t>(k)] = vk;
    vk_ck_[static_cast<std::size_t>(k)] = vk / ck;
    i64 dmax = 0;
    for (int l = 0; l < dprime.cols(); ++l) {
      dmax = std::max(dmax, dprime(k, l));
    }
    if (dmax > vk) {
      throw LegalityError(
          name + ": transformed dependence component " + std::to_string(dmax) +
          " exceeds tile extent v_" + std::to_string(k + 1) + " = " +
          std::to_string(vk) + " (tile too small: data would cross more "
          "than one tile boundary per dimension)");
    }
    dmax_[static_cast<std::size_t>(k)] = dmax;
    cc_[static_cast<std::size_t>(k)] = vk - dmax;
    if (k == m_) {
      off_[static_cast<std::size_t>(k)] = vk / ck;
      ext_[static_cast<std::size_t>(k)] =
          add_ck(vk / ck, mul_ck(chain_len_, vk / ck));
    } else {
      off_[static_cast<std::size_t>(k)] = ceil_div(dmax, ck);
      ext_[static_cast<std::size_t>(k)] =
          add_ck(off_[static_cast<std::size_t>(k)], vk / ck);
    }
  }
  size_ = 1;
  strides_.resize(static_cast<std::size_t>(n_));
  for (int k = n_; k-- > 0;) {
    strides_[static_cast<std::size_t>(k)] = size_;
    size_ = mul_ck(size_, ext_[static_cast<std::size_t>(k)]);
  }
  chain_step_ = mul_ck(vk_ck_[static_cast<std::size_t>(m_)],
                       strides_[static_cast<std::size_t>(m_)]);
}

VecI LdsLayout::map(const VecI& jp, i64 t) const {
  CTILE_ASSERT(static_cast<int>(jp.size()) == n_);
  VecI jpp(static_cast<std::size_t>(n_));
  for (int k = 0; k < n_; ++k) {
    const i64 ck = hnf_(k, k);
    if (k == m_) {
      jpp[static_cast<std::size_t>(k)] =
          add_ck(floor_div(add_ck(mul_ck(t, v_[static_cast<std::size_t>(k)]),
                                  jp[static_cast<std::size_t>(k)]),
                           ck),
                 off_[static_cast<std::size_t>(k)]);
    } else {
      jpp[static_cast<std::size_t>(k)] =
          add_ck(floor_div(jp[static_cast<std::size_t>(k)], ck),
                 off_[static_cast<std::size_t>(k)]);
    }
  }
  return jpp;
}

i64 LdsLayout::linear(const VecI& jpp) const {
  CTILE_ASSERT(static_cast<int>(jpp.size()) == n_);
  i64 idx = 0;
  for (int k = 0; k < n_; ++k) {
    const i64 c = jpp[static_cast<std::size_t>(k)];
    CTILE_ASSERT_MSG(c >= 0 && c < ext_[static_cast<std::size_t>(k)],
                     "LDS coordinate out of range");
    idx = add_ck(mul_ck(idx, ext_[static_cast<std::size_t>(k)]), c);
  }
  return idx;
}

i64 LdsLayout::dep_delta(const VecI& jp, const VecI& dp) const {
  CTILE_ASSERT(static_cast<int>(jp.size()) == n_ &&
               static_cast<int>(dp.size()) == n_);
  i64 delta = 0;
  for (int k = 0; k < n_; ++k) {
    const i64 ck = hnf_(k, k);
    const i64 move =
        sub_ck(floor_div(sub_ck(jp[static_cast<std::size_t>(k)],
                                dp[static_cast<std::size_t>(k)]),
                         ck),
               floor_div(jp[static_cast<std::size_t>(k)], ck));
    delta = add_ck(delta, mul_ck(move, strides_[static_cast<std::size_t>(k)]));
  }
  return delta;
}

i64 LdsLayout::linear_unchecked(const VecI& jpp) const {
  CTILE_ASSERT(static_cast<int>(jpp.size()) == n_);
  i64 idx = 0;
  for (int k = 0; k < n_; ++k) {
    idx = add_ck(idx, mul_ck(jpp[static_cast<std::size_t>(k)],
                             strides_[static_cast<std::size_t>(k)]));
  }
  return idx;
}

VecI LdsLayout::delinearize(i64 slot) const {
  VecI jpp(static_cast<std::size_t>(n_));
  for (int k = n_; k-- > 0;) {
    jpp[static_cast<std::size_t>(k)] = slot % ext_[static_cast<std::size_t>(k)];
    slot /= ext_[static_cast<std::size_t>(k)];
  }
  CTILE_ASSERT(slot == 0);
  return jpp;
}

bool LdsLayout::is_compute_slot(const VecI& jpp) const {
  CTILE_ASSERT(static_cast<int>(jpp.size()) == n_);
  for (int k = 0; k < n_; ++k) {
    i64 c = jpp[static_cast<std::size_t>(k)];
    if (c < off_[static_cast<std::size_t>(k)] ||
        c >= ext_[static_cast<std::size_t>(k)]) {
      return false;
    }
  }
  return true;
}

std::pair<VecI, i64> LdsLayout::map_inv(const VecI& jpp) const {
  CTILE_ASSERT_MSG(is_compute_slot(jpp), "map_inv on a halo slot");
  const i64 slots_m = vk_ck_[static_cast<std::size_t>(m_)];
  const i64 t = floor_div(
      sub_ck(jpp[static_cast<std::size_t>(m_)], off_[static_cast<std::size_t>(m_)]),
      slots_m);
  VecI jp(static_cast<std::size_t>(n_));
  VecI y(static_cast<std::size_t>(n_));
  for (int k = 0; k < n_; ++k) {
    const i64 ck = hnf_(k, k);
    i128 base128 = 0;
    for (int l = 0; l < k; ++l) {
      base128 += static_cast<i128>(hnf_(k, l)) * y[static_cast<std::size_t>(l)];
    }
    const i64 base = narrow_i64(base128);
    const i64 residue = mod_floor(base, ck);
    i64 q;  // condensed coordinate within the tile
    if (k == m_) {
      q = sub_ck(sub_ck(jpp[static_cast<std::size_t>(k)],
                        off_[static_cast<std::size_t>(k)]),
                 mul_ck(t, slots_m));
    } else {
      q = sub_ck(jpp[static_cast<std::size_t>(k)],
                 off_[static_cast<std::size_t>(k)]);
    }
    jp[static_cast<std::size_t>(k)] = add_ck(mul_ck(ck, q), residue);
    y[static_cast<std::size_t>(k)] =
        sub_ck(jp[static_cast<std::size_t>(k)], base) / ck;
  }
  return {jp, t};
}

}  // namespace ctile
