#include "runtime/kernel.hpp"

namespace ctile {

void Kernel::compute_row(const VecI& j0, const VecI& jstep, i64 count,
                         const double* const* dep_base, int q, i64 dep_stride,
                         double* out, i64 out_stride) const {
  const int a = arity();
  const int n = static_cast<int>(j0.size());
  // Stack scratch for the common shapes; the heap path only triggers on
  // exotic kernels (q * arity > 32), which no shipped app reaches.
  double stack_vals[32];
  std::vector<double> heap_vals;
  double* dep_vals = stack_vals;
  if (q * a > 32) {
    heap_vals.resize(static_cast<std::size_t>(q) * static_cast<std::size_t>(a));
    dep_vals = heap_vals.data();
  }
  VecI j = j0;
  for (i64 i = 0; i < count; ++i) {
    for (int l = 0; l < q; ++l) {
      const double* src = dep_base[l] + i * dep_stride;
      double* dst = dep_vals + static_cast<std::size_t>(l) * static_cast<std::size_t>(a);
      for (int v = 0; v < a; ++v) dst[v] = src[v];
    }
    compute(j, dep_vals, out + i * out_stride);
    for (int k = 0; k < n; ++k) {
      j[static_cast<std::size_t>(k)] += jstep[static_cast<std::size_t>(k)];
    }
  }
}

i64 Kernel::row_alias_distance(const double* dep, const double* out,
                               i64 stride, i64 count) {
  return row_alias_distance(static_cast<i64>(out - dep), stride, count);
}

i64 Kernel::row_alias_distance(i64 diff, i64 stride, i64 count) {
  // dep == out - m*stride
  if (stride == 0 || diff == 0) return 0;
  // Magnitude early-out before any division: a dependence row further
  // away than the row's span can't alias it.  This is the common case
  // (most dependences live in other planes), and kernels probe every
  // dependence per row, so the divisions below must stay off that path.
  const i64 as = stride < 0 ? -stride : stride;
  const i64 ad = diff < 0 ? -diff : diff;
  if (ad >= count * as) return 0;
  // |m| == 1 — the usual shape of a real in-row recurrence — needs no
  // division either.
  if (ad == as) return (diff < 0) == (stride < 0) ? 1 : -1;
  if (diff % stride != 0) return 0;
  return diff / stride;  // |m| < count and m != 0 by the guards above
}

}  // namespace ctile
