// The data-parallel executor: the runtime embodiment of the generated
// code skeleton at the end of \S3.2.
//
//   FORACROSS pid ... DO
//     FOR t = 0 .. chain_length-1 DO
//       RECEIVE(pid, t, D^S, CC)      // unpack halo data
//       FOR j' in TTIS (clipped)      // compute the tile
//         LA[map(j',t)] := F(LA[map(j'-d'_1,t)], ...)
//       SEND(pid, t, D^m, CC)         // pack + send boundary data
//
// Each FORACROSS instance is an mpisim rank (a thread standing in for a
// cluster node).  Message tags encode (direction index, sender chain
// position) so the receive of \S3.2 — "a tile receives from tiles, but
// sends to processors" — pairs deterministically even when one successor
// tile consumes messages from two predecessor tiles of the same
// neighbour processor.
//
// The executor is a thin mutable shell over an immutable CompiledPlan
// (compiled_plan.hpp): census, mapping, LDS layouts, comm plan, slot
// tables, classifier, band split and hoisted row plans all live in the
// plan, which is held through shared_ptr<const CompiledPlan> and can be
// shared read-only by any number of executors running concurrently.
// Plans come from the content-addressed PlanCache (plan_cache.hpp) on
// the warm path; the legacy constructor below lowers cold through the
// exact same CompiledPlan code path, so cached and cold-built executors
// are bitwise-identical by construction.
//
// The pack/unpack regions of \S3.2 are compile-time static, so the plan
// precomputes, once per distinct chain-window length, the LDS layout
// AND a CommSlotTable of linear base slots per region point; the
// steady-state RECEIVE/SEND loops are then flat array scans (base +
// t_loc * chain_step) with zero lattice enumeration and — thanks to the
// mpisim buffer pool — zero heap allocation.  The original
// lattice-enumeration path is kept behind set_use_slot_tables(false) as
// the reference for equivalence tests and benches.
//
// By default the executor runs the *overlapped* (pipelined) schedule of
// the authors' IPDPS'01 follow-up (paper \S5): receives for tile t are
// pre-posted while tile t-1's messages are still in flight, the tile
// sweep is split into the interior remainder and the communication
// boundary band (BandSplit; remainder first — the legal topological
// order, see tiling/interior.hpp), and the band's values are packed and
// handed to non-blocking isends the moment they exist, so the transfer
// drains while the next tile's remainder computes.  The blocking
// RECEIVE/COMPUTE/SEND reference is kept behind set_use_overlap(false)
// with a bitwise-equivalence guarantee: both schedules execute the same
// receive events and the same per-point data flow, only the waiting
// moves.
//
// Reads falling outside the iteration space J^n take the kernel's initial
// values; every other read is local by construction of the LDS (the
// computer-owns rule plus halo unpacking).
#pragma once

#include <functional>
#include <memory>

#include "mpisim/mpisim.hpp"
#include "runtime/compiled_plan.hpp"
#include "runtime/data_space.hpp"
#include "runtime/exec_policy.hpp"
#include "runtime/kernel.hpp"

namespace ctile {

/// Wall-clock seconds a rank spent in each phase of the \S3.2 skeleton.
struct PhaseTimes {
  double compute_s = 0.0;    ///< TTIS sweep (kernel evaluation)
  double pack_s = 0.0;       ///< SEND: gathering boundary data
  double unpack_s = 0.0;     ///< RECEIVE: scattering halo data
  double recv_wait_s = 0.0;  ///< RECEIVE: blocked waiting for a message
  double send_wait_s = 0.0;  ///< SEND: blocked while the wire drains
                             ///< (blocking sends, or retiring isends)
};

struct ParallelRunStats {
  i64 messages = 0;        ///< total messages sent
  i64 doubles = 0;         ///< total payload doubles sent
  i64 points_computed = 0; ///< total iterations executed across ranks
  PhaseTimes phase_total;  ///< phase times summed over all ranks
  std::vector<PhaseTimes> phase_by_rank;  ///< per-rank phase times
  /// Per-channel message digests (set_trace_messages): the cross-backend
  /// equivalence witness — equal traces prove the same payload bits
  /// flowed over every (src, dst, tag) channel in the same order under
  /// the thread and event backends.
  mpisim::Comm::ChannelTraces traces;
  /// Totally-ordered send/receive log of the run (set_trace_messages).
  /// Under the event backend this is a deterministic linearization of
  /// the schedule's happens-before graph; the verifier's V6 oracle test
  /// (tests/verify_hb_trace_test) checks exactly that.
  std::vector<mpisim::Comm::TraceEvent> events;

  /// Fraction of the ranks' phase time spent computing, i.e. how well
  /// communication was hidden: 1.0 means every message cost vanished
  /// behind compute, lower means packing/unpacking/waiting showed on
  /// the critical path.  0 when nothing was timed.
  double overlap_efficiency() const {
    const double total = phase_total.compute_s + phase_total.pack_s +
                         phase_total.unpack_s + phase_total.recv_wait_s +
                         phase_total.send_wait_s;
    return total > 0.0 ? phase_total.compute_s / total : 0.0;
  }
};

class ParallelExecutor {
 public:
  /// Cold path: lower the full plan here (tile census, mapping, LDS
  /// layout, communication plan, per-chain-window slot tables) via
  /// CompiledPlan::compile_parallel.  force_m overrides the
  /// mapping-dimension choice (tests/benches).  This is the cold-miss
  /// implementation the PlanCache funnels into — there is exactly one
  /// lowering code path.
  ParallelExecutor(const TiledNest& tiled, const Kernel& kernel,
                   int force_m = -1);

  /// Warm path: adopt an already-lowered plan (from the PlanCache or a
  /// sibling executor).  The plan must be parallel-lowered; it is shared
  /// read-only, so any number of executors over one plan may run
  /// concurrently.
  ParallelExecutor(std::shared_ptr<const CompiledPlan> plan,
                   const Kernel& kernel);

  const TiledNest& tiled() const { return plan_->tiled(); }
  const TileCensus& census() const { return plan_->census(); }
  const Mapping& mapping() const { return plan_->mapping(); }
  const LdsLayout& lds() const { return plan_->lds(); }
  const CommPlan& plan() const { return plan_->comm_plan(); }
  const TileClassifier& classifier() const { return plan_->classifier(); }
  const BandSplit& band() const { return plan_->band(); }

  /// The immutable lowering this executor runs (shareable with other
  /// executors and the PlanCache).
  const std::shared_ptr<const CompiledPlan>& compiled() const {
    return plan_;
  }

  /// The per-chain-window-length LDS layouts lowered at compile time
  /// (window length, layout), for plan inspection and verification.
  std::vector<std::pair<i64, const LdsLayout*>> window_layouts() const {
    return plan_->window_layouts();
  }

  /// Install a callback invoked at the top of every run().  Used to gate
  /// execution on external checks (verify::enable_verify_before_run
  /// installs the static plan verifier here); the gate aborts the run by
  /// throwing.  Pass nullptr to clear.  The gate proves the immutable
  /// plan, so its verdict is memoized in the plan and replayed on later
  /// runs (see set_reverify); installing a gate drops any memoized
  /// verdict.
  void set_pre_run_gate(std::function<void()> gate) {
    pre_run_gate_ = std::move(gate);
    plan_->invalidate_gate_memo();
  }

  /// Force the pre-run gate to execute on every run() instead of
  /// replaying the plan's memoized verdict (mutation tests that corrupt
  /// state between runs need the fresh check).
  void set_reverify(bool on) { reverify_ = on; }
  bool reverify() const { return reverify_; }

  /// Toggle the precomputed slot-table pack/unpack path (default on).
  /// The lattice-enumeration path is retained as the reference
  /// implementation; both must produce bitwise-identical data spaces.
  void set_use_slot_tables(bool on) { use_slot_tables_ = on; }
  bool use_slot_tables() const { return use_slot_tables_; }

  /// Toggle the strength-reduced compute sweep (default on): interior
  /// tiles are swept with flat affine row arithmetic (TtisRowWalker +
  /// LdsLayout row addressing), boundary tiles keep the general clipped
  /// path.  The legacy per-point path is retained as the reference
  /// implementation; both must produce bitwise-identical data spaces.
  void set_use_fast_sweep(bool on) { use_fast_sweep_ = on; }
  bool use_fast_sweep() const { return use_fast_sweep_; }

  /// Select how the hot loops are driven (exec_policy.hpp): kSequential
  /// is the per-point reference, kSimd routes interior rows through the
  /// batched Kernel::compute_row and vectorizes pack/unpack/write-back,
  /// kThreadPool additionally fans the independent rows of each
  /// j'_0-plane across the shared compute pool — legal only when every
  /// TTIS dependence advances j'_0 (precomputed at lowering; the
  /// sweep degrades to the kSimd path otherwise, so the setting is
  /// always safe).  Default: $CTILE_EXEC_POLICY, else kSimd.  All
  /// policies produce bitwise-identical data spaces.
  void set_exec_policy(exec::Policy p) { policy_ = p; }
  exec::Policy exec_policy() const { return policy_; }

  /// True when the tiling admits the kThreadPool plane fan-out (every
  /// TTIS dependence has d'_0 >= 1).
  bool plane_parallel() const { return plan_->plane_parallel(); }

  /// Allocate the per-rank LDS windows through `backend` (exec_policy.hpp
  /// registry; default: $CTILE_MEM_BACKEND, else the 64-byte-aligned
  /// backend).  The backend must outlive the executor's runs.
  void set_memory_backend(exec::MemoryBackend* backend) { mem_ = backend; }
  exec::MemoryBackend* memory_backend() const { return mem_; }

  /// Toggle the overlapped (pipelined) schedule (default on): pre-posted
  /// irecvs, remainder/band split sweep, pack + isend at band
  /// completion.  The blocking RECEIVE/COMPUTE/SEND path is retained as
  /// the reference implementation; both must produce bitwise-identical
  /// data spaces (the split sweep is a topological reordering of the
  /// same per-point dataflow — see tiling/interior.hpp).
  void set_use_overlap(bool on) { use_overlap_ = on; }
  bool use_overlap() const { return use_overlap_; }

  /// Install a synthetic transfer-latency model for run(): messages take
  /// per_message_s + size * per_double_s to deliver, and blocking sends
  /// occupy the sender for that long while isends do not — making the
  /// overlap measurable in-process (mirrors cluster/simulator's
  /// kBlocking vs kOverlapped schedules).  Disabled by default.
  void set_latency_model(const mpisim::LatencyModel& model) {
    latency_ = model;
  }
  const mpisim::LatencyModel& latency_model() const { return latency_; }

  /// Select the mpisim backend run() drives the ranks with: OS threads
  /// (default, the race-detection oracle) or the event-driven scheduler
  /// (one OS thread, virtual clock, deterministic seed-controlled
  /// interleaving — scales to thousands of ranks).  kAuto honours
  /// $CTILE_MPISIM_BACKEND, which is how CI runs the whole runtime suite
  /// on the event backend without touching the tests.  `seed` drives the
  /// event backend's interleaving; different seeds must not change the
  /// numerics.
  void set_comm_backend(mpisim::Backend backend, u64 seed = 1) {
    backend_ = backend;
    seed_ = seed;
  }
  mpisim::Backend comm_backend() const { return backend_; }

  /// Record per-channel message traces into ParallelRunStats::traces
  /// (off by default: hashing every payload is pure overhead outside
  /// cross-backend equivalence tests).
  void set_trace_messages(bool on) { trace_ = on; }

  /// Run all ranks (threads), gather every processor's computation slots
  /// through loc^{-1} into a fresh DataSpace, and return it with stats.
  DataSpace run(ParallelRunStats* stats = nullptr) const;

 private:
  std::shared_ptr<const CompiledPlan> plan_;
  const Kernel* kernel_;
  exec::Policy policy_ = exec::policy_from_env(exec::Policy::kSimd);
  exec::MemoryBackend* mem_ = &exec::default_memory_backend();
  bool use_slot_tables_ = true;
  bool use_fast_sweep_ = true;
  bool use_overlap_ = true;
  bool reverify_ = false;
  mpisim::LatencyModel latency_;
  mpisim::Backend backend_ = mpisim::Backend::kAuto;
  u64 seed_ = 1;
  bool trace_ = false;
  std::function<void()> pre_run_gate_;

  /// The per-rank program (RECEIVE / compute / SEND over the chain,
  /// blocking or pipelined according to use_overlap_).
  void run_rank(int rank, mpisim::Comm& comm, exec::DoubleBuffer& la,
                i64* points, PhaseTimes* phase) const;

  i64 tag_of(int dir, i64 sender_t) const;
};

}  // namespace ctile
