// The data-parallel executor: the runtime embodiment of the generated
// code skeleton at the end of \S3.2.
//
//   FORACROSS pid ... DO
//     FOR t = 0 .. chain_length-1 DO
//       RECEIVE(pid, t, D^S, CC)      // unpack halo data
//       FOR j' in TTIS (clipped)      // compute the tile
//         LA[map(j',t)] := F(LA[map(j'-d'_1,t)], ...)
//       SEND(pid, t, D^m, CC)         // pack + send boundary data
//
// Each FORACROSS instance is an mpisim rank (a thread standing in for a
// cluster node).  Message tags encode (direction index, sender chain
// position) so the receive of \S3.2 — "a tile receives from tiles, but
// sends to processors" — pairs deterministically even when one successor
// tile consumes messages from two predecessor tiles of the same
// neighbour processor.
//
// Reads falling outside the iteration space J^n take the kernel's initial
// values; every other read is local by construction of the LDS (the
// computer-owns rule plus halo unpacking).
#pragma once

#include "mpisim/mpisim.hpp"
#include "runtime/comm_plan.hpp"
#include "tiling/census.hpp"
#include "runtime/data_space.hpp"
#include "runtime/kernel.hpp"

namespace ctile {

struct ParallelRunStats {
  i64 messages = 0;        ///< total messages sent
  i64 doubles = 0;         ///< total payload doubles sent
  i64 points_computed = 0; ///< total iterations executed across ranks
};

class ParallelExecutor {
 public:
  /// Builds the tile census (exact occupancy), mapping, LDS layout and
  /// communication plan for `tiled`.  force_m overrides the
  /// mapping-dimension choice (tests/benches).
  ParallelExecutor(const TiledNest& tiled, const Kernel& kernel,
                   int force_m = -1);

  const TileCensus& census() const { return census_; }
  const Mapping& mapping() const { return mapping_; }
  const LdsLayout& lds() const { return lds_; }
  const CommPlan& plan() const { return plan_; }

  /// Run all ranks (threads), gather every processor's computation slots
  /// through loc^{-1} into a fresh DataSpace, and return it with stats.
  DataSpace run(ParallelRunStats* stats = nullptr) const;

 private:
  const TiledNest* tiled_;
  const Kernel* kernel_;
  TileCensus census_;
  Mapping mapping_;
  LdsLayout lds_;
  CommPlan plan_;

  /// The per-rank program (RECEIVE / compute / SEND over the chain).
  void run_rank(int rank, mpisim::Comm& comm, std::vector<double>& la,
                i64* points) const;

  i64 tag_of(int dir, i64 sender_t) const;
};

}  // namespace ctile
