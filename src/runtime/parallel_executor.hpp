// The data-parallel executor: the runtime embodiment of the generated
// code skeleton at the end of \S3.2.
//
//   FORACROSS pid ... DO
//     FOR t = 0 .. chain_length-1 DO
//       RECEIVE(pid, t, D^S, CC)      // unpack halo data
//       FOR j' in TTIS (clipped)      // compute the tile
//         LA[map(j',t)] := F(LA[map(j'-d'_1,t)], ...)
//       SEND(pid, t, D^m, CC)         // pack + send boundary data
//
// Each FORACROSS instance is an mpisim rank (a thread standing in for a
// cluster node).  Message tags encode (direction index, sender chain
// position) so the receive of \S3.2 — "a tile receives from tiles, but
// sends to processors" — pairs deterministically even when one successor
// tile consumes messages from two predecessor tiles of the same
// neighbour processor.
//
// The pack/unpack regions of \S3.2 are compile-time static, so the
// executor precomputes, once per distinct chain-window length, the LDS
// layout AND a CommSlotTable of linear base slots per region point; the
// steady-state RECEIVE/SEND loops are then flat array scans (base +
// t_loc * chain_step) with zero lattice enumeration and — thanks to the
// mpisim buffer pool — zero heap allocation.  The original
// lattice-enumeration path is kept behind set_use_slot_tables(false) as
// the reference for equivalence tests and benches.
//
// By default the executor runs the *overlapped* (pipelined) schedule of
// the authors' IPDPS'01 follow-up (paper \S5): receives for tile t are
// pre-posted while tile t-1's messages are still in flight, the tile
// sweep is split into the interior remainder and the communication
// boundary band (BandSplit; remainder first — the legal topological
// order, see tiling/interior.hpp), and the band's values are packed and
// handed to non-blocking isends the moment they exist, so the transfer
// drains while the next tile's remainder computes.  The blocking
// RECEIVE/COMPUTE/SEND reference is kept behind set_use_overlap(false)
// with a bitwise-equivalence guarantee: both schedules execute the same
// receive events and the same per-point data flow, only the waiting
// moves.
//
// Reads falling outside the iteration space J^n take the kernel's initial
// values; every other read is local by construction of the LDS (the
// computer-owns rule plus halo unpacking).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "mpisim/mpisim.hpp"
#include "runtime/comm_plan.hpp"
#include "tiling/census.hpp"
#include "tiling/interior.hpp"
#include "runtime/data_space.hpp"
#include "runtime/exec_policy.hpp"
#include "runtime/kernel.hpp"

namespace ctile {

/// Wall-clock seconds a rank spent in each phase of the \S3.2 skeleton.
struct PhaseTimes {
  double compute_s = 0.0;    ///< TTIS sweep (kernel evaluation)
  double pack_s = 0.0;       ///< SEND: gathering boundary data
  double unpack_s = 0.0;     ///< RECEIVE: scattering halo data
  double recv_wait_s = 0.0;  ///< RECEIVE: blocked waiting for a message
  double send_wait_s = 0.0;  ///< SEND: blocked while the wire drains
                             ///< (blocking sends, or retiring isends)
};

struct ParallelRunStats {
  i64 messages = 0;        ///< total messages sent
  i64 doubles = 0;         ///< total payload doubles sent
  i64 points_computed = 0; ///< total iterations executed across ranks
  PhaseTimes phase_total;  ///< phase times summed over all ranks
  std::vector<PhaseTimes> phase_by_rank;  ///< per-rank phase times
  /// Per-channel message digests (set_trace_messages): the cross-backend
  /// equivalence witness — equal traces prove the same payload bits
  /// flowed over every (src, dst, tag) channel in the same order under
  /// the thread and event backends.
  mpisim::Comm::ChannelTraces traces;

  /// Fraction of the ranks' phase time spent computing, i.e. how well
  /// communication was hidden: 1.0 means every message cost vanished
  /// behind compute, lower means packing/unpacking/waiting showed on
  /// the critical path.  0 when nothing was timed.
  double overlap_efficiency() const {
    const double total = phase_total.compute_s + phase_total.pack_s +
                         phase_total.unpack_s + phase_total.recv_wait_s +
                         phase_total.send_wait_s;
    return total > 0.0 ? phase_total.compute_s / total : 0.0;
  }
};

class ParallelExecutor {
 public:
  /// Builds the tile census (exact occupancy), mapping, LDS layout,
  /// communication plan and per-chain-window slot tables for `tiled`.
  /// force_m overrides the mapping-dimension choice (tests/benches).
  ParallelExecutor(const TiledNest& tiled, const Kernel& kernel,
                   int force_m = -1);

  const TiledNest& tiled() const { return *tiled_; }
  const TileCensus& census() const { return census_; }
  const Mapping& mapping() const { return mapping_; }
  const LdsLayout& lds() const { return lds_; }
  const CommPlan& plan() const { return plan_; }
  const TileClassifier& classifier() const { return classifier_; }
  const BandSplit& band() const { return band_; }

  /// The per-chain-window-length LDS layouts lowered at construction
  /// (window length, layout), for plan inspection and verification.
  std::vector<std::pair<i64, const LdsLayout*>> window_layouts() const;

  /// Install a callback invoked at the top of every run().  Used to gate
  /// execution on external checks (verify::enable_verify_before_run
  /// installs the static plan verifier here); the gate aborts the run by
  /// throwing.  Pass nullptr to clear.
  void set_pre_run_gate(std::function<void()> gate) {
    pre_run_gate_ = std::move(gate);
  }

  /// Toggle the precomputed slot-table pack/unpack path (default on).
  /// The lattice-enumeration path is retained as the reference
  /// implementation; both must produce bitwise-identical data spaces.
  void set_use_slot_tables(bool on) { use_slot_tables_ = on; }
  bool use_slot_tables() const { return use_slot_tables_; }

  /// Toggle the strength-reduced compute sweep (default on): interior
  /// tiles are swept with flat affine row arithmetic (TtisRowWalker +
  /// LdsLayout row addressing), boundary tiles keep the general clipped
  /// path.  The legacy per-point path is retained as the reference
  /// implementation; both must produce bitwise-identical data spaces.
  void set_use_fast_sweep(bool on) { use_fast_sweep_ = on; }
  bool use_fast_sweep() const { return use_fast_sweep_; }

  /// Select how the hot loops are driven (exec_policy.hpp): kSequential
  /// is the per-point reference, kSimd routes interior rows through the
  /// batched Kernel::compute_row and vectorizes pack/unpack/write-back,
  /// kThreadPool additionally fans the independent rows of each
  /// j'_0-plane across the shared compute pool — legal only when every
  /// TTIS dependence advances j'_0 (precomputed at construction; the
  /// sweep degrades to the kSimd path otherwise, so the setting is
  /// always safe).  Default: $CTILE_EXEC_POLICY, else kSimd.  All
  /// policies produce bitwise-identical data spaces.
  void set_exec_policy(exec::Policy p) { policy_ = p; }
  exec::Policy exec_policy() const { return policy_; }

  /// True when the tiling admits the kThreadPool plane fan-out (every
  /// TTIS dependence has d'_0 >= 1).
  bool plane_parallel() const { return plane_parallel_; }

  /// Allocate the per-rank LDS windows through `backend` (exec_policy.hpp
  /// registry; default: $CTILE_MEM_BACKEND, else the 64-byte-aligned
  /// backend).  The backend must outlive the executor's runs.
  void set_memory_backend(exec::MemoryBackend* backend) { mem_ = backend; }
  exec::MemoryBackend* memory_backend() const { return mem_; }

  /// Toggle the overlapped (pipelined) schedule (default on): pre-posted
  /// irecvs, remainder/band split sweep, pack + isend at band
  /// completion.  The blocking RECEIVE/COMPUTE/SEND path is retained as
  /// the reference implementation; both must produce bitwise-identical
  /// data spaces (the split sweep is a topological reordering of the
  /// same per-point dataflow — see tiling/interior.hpp).
  void set_use_overlap(bool on) { use_overlap_ = on; }
  bool use_overlap() const { return use_overlap_; }

  /// Install a synthetic transfer-latency model for run(): messages take
  /// per_message_s + size * per_double_s to deliver, and blocking sends
  /// occupy the sender for that long while isends do not — making the
  /// overlap measurable in-process (mirrors cluster/simulator's
  /// kBlocking vs kOverlapped schedules).  Disabled by default.
  void set_latency_model(const mpisim::LatencyModel& model) {
    latency_ = model;
  }
  const mpisim::LatencyModel& latency_model() const { return latency_; }

  /// Select the mpisim backend run() drives the ranks with: OS threads
  /// (default, the race-detection oracle) or the event-driven scheduler
  /// (one OS thread, virtual clock, deterministic seed-controlled
  /// interleaving — scales to thousands of ranks).  kAuto honours
  /// $CTILE_MPISIM_BACKEND, which is how CI runs the whole runtime suite
  /// on the event backend without touching the tests.  `seed` drives the
  /// event backend's interleaving; different seeds must not change the
  /// numerics.
  void set_comm_backend(mpisim::Backend backend, u64 seed = 1) {
    backend_ = backend;
    seed_ = seed;
  }
  mpisim::Backend comm_backend() const { return backend_; }

  /// Record per-channel message traces into ParallelRunStats::traces
  /// (off by default: hashing every payload is pure overhead outside
  /// cross-backend equivalence tests).
  void set_trace_messages(bool on) { trace_ = on; }

  /// Run all ranks (threads), gather every processor's computation slots
  /// through loc^{-1} into a fresh DataSpace, and return it with stats.
  DataSpace run(ParallelRunStats* stats = nullptr) const;

 private:
  /// One row of the hoisted interior-sweep plan (see RankLocal::rows).
  struct SweepRow {
    i64 plane;   ///< j'_0 of the row (kThreadPool plane grouping)
    i64 count;   ///< points in the row
    i64 base0;   ///< linear base slot at chain position 0
    VecI j_rel;  ///< J^n start relative to the first row's start
  };

  /// Everything that depends on a processor's chain-window length:
  /// the per-processor LDS layout (paper: "|t| is per processor"), the
  /// communication slot tables built against it, and the hoisted row
  /// plan of the strength-reduced interior sweep.  Computed once per
  /// distinct window length at construction and shared read-only by
  /// run_rank and the write-back, which previously rebuilt the
  /// HNF-derived layout from scratch per rank.
  ///
  /// The row plan caches, per row of full_ttis_region in TtisRowWalker
  /// order, everything the sweep used to recompute per (tile, row):
  /// the base slot at t_loc is base0 + t_loc * layout.chain_step()
  /// (map is affine in t), the per-dependence slot deltas
  /// deltas[r * q + l] are tile- and t-invariant (lds.hpp dep_delta),
  /// and the J^n row start is j_anchor + j_rel[r] where
  /// j_anchor = point_of(js, jp0_front) — point_of is affine in j', so
  /// one matrix-vector product per tile replaces one per row.
  struct RankLocal {
    LdsLayout layout;
    CommSlotTable slots;
    std::vector<SweepRow> rows;
    std::vector<i64> deltas;  ///< rows.size() * q slot deltas
    VecI jp0_front;           ///< first row's TTIS start
    RankLocal(const TiledNest& tiled, const Mapping& mapping,
              const CommPlan& plan, i64 chain_len);
  };

  const TiledNest* tiled_;
  const Kernel* kernel_;
  TileCensus census_;
  Mapping mapping_;
  LdsLayout lds_;
  CommPlan plan_;
  std::vector<TtisRegion> pack_regions_;  // per direction, for the band
  TileClassifier classifier_;
  BandSplit band_;
  std::map<i64, std::unique_ptr<RankLocal>> locals_;  // by window length
  exec::Policy policy_ = exec::policy_from_env(exec::Policy::kSimd);
  bool plane_parallel_ = false;
  exec::MemoryBackend* mem_ = &exec::default_memory_backend();
  bool use_slot_tables_ = true;
  bool use_fast_sweep_ = true;
  bool use_overlap_ = true;
  mpisim::LatencyModel latency_;
  mpisim::Backend backend_ = mpisim::Backend::kAuto;
  u64 seed_ = 1;
  bool trace_ = false;
  std::function<void()> pre_run_gate_;

  /// The cached layout + slot tables for a (non-empty) window length.
  const RankLocal& local_for(i64 chain_len) const;

  /// The per-rank program (RECEIVE / compute / SEND over the chain,
  /// blocking or pipelined according to use_overlap_).
  void run_rank(int rank, mpisim::Comm& comm, exec::DoubleBuffer& la,
                i64* points, PhaseTimes* phase) const;

  i64 tag_of(int dir, i64 sender_t) const;
};

}  // namespace ctile
