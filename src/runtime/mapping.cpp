#include "runtime/mapping.hpp"

namespace ctile {

Mapping::Mapping(const TiledNest& tiled, int force_m,
                 const TileCensus* census)
    : n_(tiled.nest().depth),
      tile_space_(&tiled.tile_space()),
      census_(census) {
  if (census_ != nullptr) {
    // Exact bounds: the tight box around nonempty tiles.
    lo_ = census_->nonempty_bounds().lo;
    hi_ = census_->nonempty_bounds().hi;
  } else {
    std::vector<IntRange> box = tiled.tile_space_box();
    lo_.resize(static_cast<std::size_t>(n_));
    hi_.resize(static_cast<std::size_t>(n_));
    for (int k = 0; k < n_; ++k) {
      const IntRange& r = box[static_cast<std::size_t>(k)];
      if (r.empty()) {
        throw LegalityError(tiled.nest().name + ": empty tile space");
      }
      lo_[static_cast<std::size_t>(k)] = r.lo;
      hi_[static_cast<std::size_t>(k)] = r.hi;
    }
  }
  if (force_m >= 0) {
    CTILE_ASSERT(force_m < n_);
    m_ = force_m;
  } else {
    // Maximum trip count wins; ties go to the innermost dimension so the
    // mesh dims stay as outer loops (matching the Foracross structure).
    m_ = 0;
    i64 best = 0;
    for (int k = 0; k < n_; ++k) {
      i64 trip = hi_[static_cast<std::size_t>(k)] -
                 lo_[static_cast<std::size_t>(k)] + 1;
      if (trip >= best) {
        best = trip;
        m_ = k;
      }
    }
  }
  chain_len_ = hi_[static_cast<std::size_t>(m_)] -
               lo_[static_cast<std::size_t>(m_)] + 1;
  grid_.clear();
  nprocs_ = 1;
  for (int k = 0; k < n_; ++k) {
    if (k == m_) continue;
    i64 extent = hi_[static_cast<std::size_t>(k)] -
                 lo_[static_cast<std::size_t>(k)] + 1;
    grid_.push_back(extent);
    nprocs_ = static_cast<int>(mul_ck(nprocs_, extent));
  }
}

VecI Mapping::tile_at(const VecI& pid, i64 t) const {
  CTILE_ASSERT(static_cast<int>(pid.size()) == n_ - 1);
  VecI js(static_cast<std::size_t>(n_));
  int g = 0;
  for (int k = 0; k < n_; ++k) {
    if (k == m_) {
      js[static_cast<std::size_t>(k)] =
          add_ck(lo_[static_cast<std::size_t>(k)], t);
    } else {
      js[static_cast<std::size_t>(k)] =
          add_ck(lo_[static_cast<std::size_t>(k)],
                 pid[static_cast<std::size_t>(g++)]);
    }
  }
  return js;
}

std::pair<VecI, i64> Mapping::owner_of(const VecI& js) const {
  CTILE_ASSERT(static_cast<int>(js.size()) == n_);
  VecI pid;
  pid.reserve(static_cast<std::size_t>(n_ - 1));
  i64 t = 0;
  for (int k = 0; k < n_; ++k) {
    i64 rel = sub_ck(js[static_cast<std::size_t>(k)],
                     lo_[static_cast<std::size_t>(k)]);
    if (k == m_) {
      t = rel;
    } else {
      pid.push_back(rel);
    }
  }
  return {pid, t};
}

int Mapping::rank_of(const VecI& pid) const {
  CTILE_ASSERT(pid.size() == grid_.size());
  i64 rank = 0;
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    CTILE_ASSERT(pid[i] >= 0 && pid[i] < grid_[i]);
    rank = add_ck(mul_ck(rank, grid_[i]), pid[i]);
  }
  return static_cast<int>(rank);
}

VecI Mapping::pid_of(int rank) const {
  VecI pid(grid_.size());
  i64 rem = rank;
  for (std::size_t i = grid_.size(); i-- > 0;) {
    pid[i] = rem % grid_[i];
    rem /= grid_[i];
  }
  CTILE_ASSERT(rem == 0);
  return pid;
}

bool Mapping::neighbor(const VecI& pid, const VecI& d, VecI* out) const {
  CTILE_ASSERT(pid.size() == grid_.size() && d.size() == grid_.size());
  out->resize(pid.size());
  for (std::size_t i = 0; i < pid.size(); ++i) {
    i64 v = add_ck(pid[i], d[i]);
    if (v < 0 || v >= grid_[i]) return false;
    (*out)[i] = v;
  }
  return true;
}

bool Mapping::valid(const VecI& js) const {
  for (int k = 0; k < n_; ++k) {
    if (js[static_cast<std::size_t>(k)] < lo_[static_cast<std::size_t>(k)] ||
        js[static_cast<std::size_t>(k)] > hi_[static_cast<std::size_t>(k)]) {
      return false;
    }
  }
  if (census_ != nullptr) return census_->count(js) > 0;
  return tile_space_->contains(js);
}

IntRange Mapping::chain_window(const VecI& pid) const {
  i64 lo = -1, hi = -2;
  for (i64 t = 0; t < chain_len_; ++t) {
    if (!valid(tile_at(pid, t))) continue;
    if (lo < 0) lo = t;
    hi = t;
  }
  if (lo < 0) return {1, 0};  // empty
  return {lo, hi};
}

VecI project_dep(const VecI& ds, int m) {
  VecI out;
  out.reserve(ds.size() - 1);
  for (std::size_t k = 0; k < ds.size(); ++k) {
    if (static_cast<int>(k) != m) out.push_back(ds[k]);
  }
  return out;
}

}  // namespace ctile
