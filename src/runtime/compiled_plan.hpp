// The immutable compiled-plan artifact: everything the executors used to
// lower inside their constructors — tile census, mapping, global LDS
// layout, communication plan, pack regions, interior classifier, band
// split, per-chain-window layouts + slot tables + hoisted row plans —
// detached from any executor so it can be built once, shared read-only
// across concurrent executions, and cached by content (PlanCache).
//
// A CompiledPlan OWNS its TiledNest: Mapping keeps a pointer to the tile
// space inside the TiledNest, CommPlan keeps pointers to the mapping and
// LDS, so the whole lowering must age as one object.  Executors hold the
// plan through shared_ptr<const CompiledPlan> and add only per-run
// mutable state (policy, backend, gates), which is why N executors over
// one plan are safe from N threads at once.
//
// Lowering is the same code path whether a plan is built cold by the
// legacy executor constructor or warm through the PlanCache — the legacy
// path IS the cold-miss implementation, so cached and cold plans are
// bitwise-identical by construction, not by luck.
//
// The plan also memoizes the verify-before-run verdict: the pre-run gate
// (verify::enable_verify_before_run) snapshots and proves the SAME
// immutable artifacts on every run, so the verdict is a property of the
// plan.  run_gate_memoized() executes a gate once and replays the cached
// outcome — success or the stored exception — on later runs; executors
// expose set_reverify() to force the gate every run (mutation tests),
// and installing a new gate invalidates the memo.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "runtime/comm_plan.hpp"
#include "tiling/census.hpp"
#include "tiling/interior.hpp"

namespace ctile {

/// Wall-clock seconds spent in each phase of one plan's lowering (the
/// compile-time breakdown ctile_pland and the PlanCache stats report).
struct PlanPhaseTimes {
  double tile_space_s = 0.0;  ///< TiledNest build (legality + tile space)
  double census_s = 0.0;      ///< exact / box tile census
  double mapping_s = 0.0;     ///< chain mapping + processor mesh
  double lds_s = 0.0;         ///< canonical LDS layout
  double comm_plan_s = 0.0;   ///< D^S, D^m, pack/unpack regions, minsucc
  double classifier_s = 0.0;  ///< interior-tile classification
  double band_s = 0.0;        ///< boundary-band/remainder row split
  double locals_s = 0.0;      ///< per-window layouts + slot tables + rows
  double total_s = 0.0;       ///< end-to-end lowering wall time

  void accumulate(const PlanPhaseTimes& o);
};

/// Machine-model fields mirrored into the cache key (plan_cache.hpp).
/// Lowering itself never reads them — the artifacts are machine-free —
/// but machine-derived consumers (autotune scores, shape-search
/// results) are cached under the plan id, so a plan id minted for one
/// machine must never be served for another.  Field order and meaning
/// mirror cluster/machine.hpp's MachineModel (kept as plain doubles
/// here so the runtime layer does not depend on cluster/).
struct MachineKeyFields {
  double sec_per_iter = 0.0;
  double latency = 0.0;
  double bandwidth = 0.0;
  double per_byte_overhead = 0.0;
  double per_message_overhead = 0.0;
  i64 bytes_per_value = 0;
};

/// Everything besides the tiling itself that changes what lowering
/// produces.  Part of the cache key (plan_cache.hpp): two requests with
/// different knobs never share a plan.
struct LoweringKnobs {
  int force_m = -1;  ///< mapping-dimension override (-1 = auto)

  /// Census source: the exact polyhedron scan (executor default), or the
  /// allocation-free box sweep TileCensus::from_box for nests that are a
  /// unimodular skew of a rectangular box (the autotune/bench path for
  /// multi-million-point spaces).  When true, orig_lo/orig_hi/skew must
  /// describe the pre-skew box.
  bool census_from_box = false;
  VecI orig_lo;
  VecI orig_hi;
  MatI skew;

  /// When set, the machine model is serialized into the plan key (the
  /// autotune / shape-search paths set this from their MachineModel).
  std::optional<MachineKeyFields> machine;
};

class CompiledPlan {
 public:
  /// What was lowered.  kSequential carries only the classifier the
  /// SequentialTiledExecutor needs (built census-free, exactly as that
  /// executor always did — it must also serve non-integral P);
  /// kParallel carries the full distributed-memory lowering.
  enum class Kind { kSequential, kParallel };

  /// Lower the full parallel plan for an already-built TiledNest.
  static std::shared_ptr<const CompiledPlan> compile_parallel(
      TiledNest tiled, const LoweringKnobs& knobs = {});

  /// Convenience: build the TiledNest from (nest, H) too, so the
  /// tile-space construction is timed into the phase breakdown.  Throws
  /// LegalityError exactly where the executor constructor path would.
  static std::shared_ptr<const CompiledPlan> compile_parallel(
      const LoopNest& nest, const MatQ& h, const LoweringKnobs& knobs = {});

  /// Lower the sequential-tiled plan (classifier only).
  static std::shared_ptr<const CompiledPlan> compile_sequential(
      TiledNest tiled);
  static std::shared_ptr<const CompiledPlan> compile_sequential(
      const LoopNest& nest, const MatQ& h);

  Kind kind() const { return kind_; }
  bool parallel_lowered() const { return kind_ == Kind::kParallel; }
  const TiledNest& tiled() const { return tiled_; }
  const LoweringKnobs& knobs() const { return knobs_; }
  const TileClassifier& classifier() const { return *classifier_; }
  /// True when the tiling admits the kThreadPool plane fan-out (every
  /// TTIS dependence has d'_0 >= 1).
  bool plane_parallel() const { return plane_parallel_; }
  const PlanPhaseTimes& phase_times() const { return phases_; }

  // ---- Parallel-only artifacts (assert parallel_lowered()).

  const TileCensus& census() const;
  const Mapping& mapping() const;
  const LdsLayout& lds() const;
  const CommPlan& comm_plan() const;
  /// Per-direction pack regions (band split input, shared with the
  /// classifier's boundary-band accounting).
  const std::vector<TtisRegion>& pack_regions() const;
  const BandSplit& band() const;

  /// One row of the hoisted interior-sweep plan (see RankLocal::rows).
  struct SweepRow {
    i64 plane;   ///< j'_0 of the row (kThreadPool plane grouping)
    i64 count;   ///< points in the row
    i64 base0;   ///< linear base slot at chain position 0
    VecI j_rel;  ///< J^n start relative to the first row's start
  };

  /// Everything that depends on a processor's chain-window length:
  /// the per-processor LDS layout (paper: "|t| is per processor"), the
  /// communication slot tables built against it, and the hoisted row
  /// plan of the strength-reduced interior sweep.  Computed once per
  /// distinct window length at lowering and shared read-only by every
  /// rank of every executor over this plan.
  ///
  /// The row plan caches, per row of full_ttis_region in TtisRowWalker
  /// order, everything the sweep used to recompute per (tile, row):
  /// the base slot at t_loc is base0 + t_loc * layout.chain_step()
  /// (map is affine in t), the per-dependence slot deltas
  /// deltas[r * q + l] are tile- and t-invariant (lds.hpp dep_delta),
  /// and the J^n row start is j_anchor + j_rel[r] where
  /// j_anchor = point_of(js, jp0_front) — point_of is affine in j', so
  /// one matrix-vector product per tile replaces one per row.
  struct RankLocal {
    LdsLayout layout;
    CommSlotTable slots;
    std::vector<SweepRow> rows;
    std::vector<i64> deltas;  ///< rows.size() * q slot deltas
    /// rows.size() * q signed in-row alias distances: the static answer
    /// to the pointer probe the SIMD kernels run per row
    /// (Kernel::row_alias_distance) — m > 0 names a backward in-row
    /// recurrence, m < 0 a forward alias, 0 no alias.  Exported so
    /// ctile-verify's rule V8 can re-derive each distance from the
    /// layout geometry and prove the claim (a wrong entry is exactly a
    /// mis-split recurrence).
    std::vector<i64> alias;
    VecI jp0_front;           ///< first row's TTIS start
    RankLocal(const TiledNest& tiled, const Mapping& mapping,
              const CommPlan& plan, i64 chain_len);
  };

  /// The cached layout + slot tables for a (non-empty) window length.
  const RankLocal& local_for(i64 chain_len) const;

  /// The per-chain-window-length LDS layouts lowered at compile time
  /// (window length, layout), for plan inspection and verification.
  std::vector<std::pair<i64, const LdsLayout*>> window_layouts() const;

  // ---- Memoized verify-before-run verdict.

  /// Run `gate` once per plan; later calls replay the cached outcome —
  /// return on memoized success, rethrow the memoized exception on
  /// memoized failure.  Thread-safe: concurrent first calls serialize
  /// and only one executes the gate.
  void run_gate_memoized(const std::function<void()>& gate) const;

  /// Drop the memoized verdict so the next gated run re-verifies
  /// (installing a new gate on an executor calls this).
  void invalidate_gate_memo() const;

 private:
  CompiledPlan(Kind kind, TiledNest tiled, LoweringKnobs knobs);

  struct ParallelArtifacts;

  Kind kind_;
  TiledNest tiled_;
  LoweringKnobs knobs_;
  // Declared after tiled_ so artifacts (which point into the nest) are
  // destroyed first.
  std::unique_ptr<ParallelArtifacts> par_;
  std::optional<TileClassifier> classifier_;
  bool plane_parallel_ = false;
  PlanPhaseTimes phases_;

  mutable std::mutex gate_mu_;
  mutable bool gate_ok_ = false;
  mutable std::exception_ptr gate_err_;
};

}  // namespace ctile
