#include "runtime/comm_plan.hpp"

#include <algorithm>

#include "linalg/int_matops.hpp"

namespace ctile {

CommPlan::CommPlan(const TiledNest& tiled, const Mapping& mapping,
                   const LdsLayout& lds)
    : tiled_(&tiled), mapping_(&mapping), lds_(&lds) {
  const int n = tiled.nest().depth;
  const int m = mapping.m();
  const MatI& ds_mat = tiled.tile_deps();

  // Collect tile dependencies, sorted for a deterministic RECEIVE order.
  std::vector<VecI> cols;
  for (int c = 0; c < ds_mat.cols(); ++c) cols.push_back(ds_mat.col(c));
  std::sort(cols.begin(), cols.end());

  // Distinct nonzero processor projections, in first-appearance order of
  // the sorted dependence list (the tag namespace of the generated code).
  for (const VecI& ds : cols) {
    TileDep dep;
    dep.ds = ds;
    dep.dm = project_dep(ds, m);
    bool zero = std::all_of(dep.dm.begin(), dep.dm.end(),
                            [](i64 v) { return v == 0; });
    if (zero) {
      // Chain-internal dependence: satisfied through the contiguous LDS
      // layout in dimension m, no message.
      dep.dir = -1;
    } else {
      int found = -1;
      for (std::size_t i = 0; i < dirs_.size(); ++i) {
        if (dirs_[i].dm == dep.dm) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found < 0) {
        ProcDir dir;
        dir.dm = dep.dm;
        dir.pack = full_ttis_region(tiled.transform());
        int g = 0;
        for (int k = 0; k < n; ++k) {
          if (k == m) continue;  // full extent in the chain dimension
          i64 dmk = dep.dm[static_cast<std::size_t>(g)];
          if (dmk > 0) {
            dir.pack.lo[static_cast<std::size_t>(k)] =
                std::max<i64>(0, mul_ck(dmk, lds.cc(k)));
          }
          ++g;
        }
        dirs_.push_back(std::move(dir));
        found = static_cast<int>(dirs_.size()) - 1;
      }
      dep.dir = found;
    }
    deps_.push_back(std::move(dep));
  }

  msg_points_.reserve(dirs_.size());
  for (const ProcDir& dir : dirs_) {
    msg_points_.push_back(
        count_lattice_points(tiled.transform(), dir.pack));
  }
}

TtisRegion CommPlan::unpack_region(const TileDep& d) const {
  CTILE_ASSERT(d.dir >= 0);
  // Identical box to the direction's pack region: the mesh components of
  // d^S equal d^m, and the chain dimension is packed in full.
  return dirs_[static_cast<std::size_t>(d.dir)].pack;
}

VecI CommPlan::unpack_shift(const TileDep& d) const {
  const int n = lds_->n();
  VecI shift(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    shift[static_cast<std::size_t>(k)] =
        mul_ck(d.ds[static_cast<std::size_t>(k)], lds_->tile_slots(k));
  }
  return shift;
}

bool CommPlan::minsucc(const VecI& s, int dir, VecI* out) const {
  CTILE_ASSERT(dir >= 0 && dir < static_cast<int>(dirs_.size()));
  bool found = false;
  VecI best;
  for (const TileDep& dep : deps_) {
    if (dep.dir != dir) continue;
    VecI succ = vec_add(s, dep.ds);
    if (!mapping_->valid(succ)) continue;
    if (!found || lex_compare(succ, best) < 0) {
      best = succ;
      found = true;
    }
  }
  if (found) *out = best;
  return found;
}

i64 CommPlan::message_points(int dir) const {
  CTILE_ASSERT(dir >= 0 && dir < static_cast<int>(msg_points_.size()));
  return msg_points_[static_cast<std::size_t>(dir)];
}

CommSlotTable::CommSlotTable(const CommPlan& plan, const TilingTransform& tf,
                             const LdsLayout& local)
    : chain_step_(local.chain_step()) {
  const int n = local.n();
  const auto& dirs = plan.directions();
  pack_.resize(dirs.size());
  for (std::size_t d = 0; d < dirs.size(); ++d) {
    std::vector<i64>& slots = pack_[d];
    slots.reserve(
        static_cast<std::size_t>(plan.message_points(static_cast<int>(d))));
    for_each_lattice_point(tf, dirs[d].pack, [&](const VecI& jp) {
      slots.push_back(local.linear_unchecked(local.map(jp, 0)));
    });
  }

  const auto& deps = plan.tile_deps();
  unpack_.resize(deps.size());
  for (std::size_t i = 0; i < deps.size(); ++i) {
    const TileDep& dep = deps[i];
    if (dep.dir < 0) continue;  // chain-internal: no message, no table
    const TtisRegion region = plan.unpack_region(dep);
    const VecI shift = plan.unpack_shift(dep);
    std::vector<i64>& slots = unpack_[i];
    slots.reserve(static_cast<std::size_t>(plan.message_points(dep.dir)));
    for_each_lattice_point(tf, region, [&](const VecI& jp) {
      VecI jpp = local.map(jp, 0);
      for (int k = 0; k < n; ++k) {
        jpp[static_cast<std::size_t>(k)] =
            sub_ck(jpp[static_cast<std::size_t>(k)],
                   shift[static_cast<std::size_t>(k)]);
      }
      slots.push_back(local.linear_unchecked(jpp));
    });
  }
}

const std::vector<i64>& CommSlotTable::pack_slots(int dir) const {
  CTILE_ASSERT(dir >= 0 && dir < static_cast<int>(pack_.size()));
  return pack_[static_cast<std::size_t>(dir)];
}

const std::vector<i64>& CommSlotTable::unpack_slots(
    std::size_t dep_index) const {
  CTILE_ASSERT(dep_index < unpack_.size());
  return unpack_[dep_index];
}

}  // namespace ctile
