#include "runtime/sequential_tiled.hpp"

#include "linalg/int_matops.hpp"

namespace ctile {

DataSpace run_sequential_tiled(const TiledNest& tiled, const Kernel& kernel) {
  const LoopNest& nest = tiled.nest();
  const MatI& deps = nest.deps;
  const int q = deps.cols();
  const int arity = kernel.arity();
  DataSpace ds(nest.space, arity);
  std::vector<double> dep_vals(static_cast<std::size_t>(q * arity));
  std::vector<double> out(static_cast<std::size_t>(arity));
  // Tiles in lexicographic tile-space order (legal: tile dependencies are
  // componentwise non-negative under a legal tiling), points in TTIS
  // order within each tile.
  tiled.tile_space().scan([&](const VecI& js) {
    tiled.for_each_tile_point(js, [&](const VecI&, const VecI& j) {
      for (int l = 0; l < q; ++l) {
        double* dst = &dep_vals[static_cast<std::size_t>(l * arity)];
        const VecI pred = vec_sub(j, deps.col(l));
        if (nest.space.contains(pred)) {
          const double* src = ds.at(pred);
          for (int v = 0; v < arity; ++v) dst[v] = src[v];
        } else {
          kernel.initial(pred, dst);
        }
      }
      kernel.compute(j, dep_vals.data(), out.data());
      double* dst = ds.at(j);
      for (int v = 0; v < arity; ++v) dst[v] = out[v];
    });
  });
  return ds;
}

}  // namespace ctile
