#include "runtime/sequential_tiled.hpp"

#include "linalg/int_matops.hpp"
#include "tiling/ttis.hpp"

namespace ctile {

SequentialTiledExecutor::SequentialTiledExecutor(const TiledNest& tiled,
                                                const Kernel& kernel)
    : tiled_(&tiled), kernel_(&kernel), classifier_(tiled) {}

DataSpace SequentialTiledExecutor::run() const {
  if (pre_run_gate_) pre_run_gate_();
  const LoopNest& nest = tiled_->nest();
  const TilingTransform& tf = tiled_->transform();
  const MatI& deps = nest.deps;
  const int q = deps.cols();
  const int arity = kernel_->arity();
  const int n = nest.depth;
  DataSpace ds(nest.space, arity);
  std::vector<double> dep_vals(static_cast<std::size_t>(q) * static_cast<std::size_t>(arity));
  std::vector<double> out(static_cast<std::size_t>(arity));

  // Row-sweep invariants: the constant J^n step along a TTIS row, its
  // data-space offset, and each dependence's (point-independent) offset
  // — the predecessor of the point at offset s sits at s - dep_off[l].
  const VecI origin(static_cast<std::size_t>(n), 0);
  const VecI jstep = row_point_step(tf);
  const i64 row_off = ds.offset_step(jstep);
  std::vector<i64> dep_off(static_cast<std::size_t>(q));
  for (int l = 0; l < q; ++l) dep_off[static_cast<std::size_t>(l)] =
      ds.offset_step(deps.col(l));

  // Tiles in lexicographic tile-space order (legal: tile dependencies are
  // componentwise non-negative under a legal tiling), points in TTIS
  // order within each tile.
  tiled_->tile_space().scan([&](const VecI& js) {
    if (use_fast_sweep_ && classifier_.interior(js)) {
      // Interior tile: every lattice point is a real iteration and every
      // predecessor is in-space — already computed, by legality of the
      // tile order — so the sweep is flat offset arithmetic over the DS.
      for (TtisRowWalker row(tf, tiled_->tile_region(js)); row.valid();
           row.next()) {
        VecI j = tf.point_of(origin, row.row_start());
        i64 s = ds.offset(j);
        const i64 cnt = row.row_points();
        for (i64 i = 0; i < cnt; ++i) {
          for (int l = 0; l < q; ++l) {
            const double* src =
                ds.at_offset(s - dep_off[static_cast<std::size_t>(l)]);
            double* dst = &dep_vals[static_cast<std::size_t>(l) * static_cast<std::size_t>(arity)];
            for (int v = 0; v < arity; ++v) dst[v] = src[v];
          }
          kernel_->compute(j, dep_vals.data(), out.data());
          double* dst = ds.at_offset(s);
          for (int v = 0; v < arity; ++v) dst[v] = out[v];
          s += row_off;
          for (int k = 0; k < n; ++k) {
            j[static_cast<std::size_t>(k)] +=
                jstep[static_cast<std::size_t>(k)];
          }
        }
      }
    } else {
      tiled_->for_each_tile_point(js, [&](const VecI&, const VecI& j) {
        for (int l = 0; l < q; ++l) {
          double* dst = &dep_vals[static_cast<std::size_t>(l) * static_cast<std::size_t>(arity)];
          const VecI pred = vec_sub(j, deps.col(l));
          if (nest.space.contains(pred)) {
            const double* src = ds.at(pred);
            for (int v = 0; v < arity; ++v) dst[v] = src[v];
          } else {
            kernel_->initial(pred, dst);
          }
        }
        kernel_->compute(j, dep_vals.data(), out.data());
        double* dst = ds.at(j);
        for (int v = 0; v < arity; ++v) dst[v] = out[v];
      });
    }
  });
  return ds;
}

DataSpace run_sequential_tiled(const TiledNest& tiled, const Kernel& kernel) {
  return SequentialTiledExecutor(tiled, kernel).run();
}

}  // namespace ctile
