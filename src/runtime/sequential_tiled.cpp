#include "runtime/sequential_tiled.hpp"

#include "linalg/int_matops.hpp"
#include "tiling/ttis.hpp"

namespace ctile {

SequentialTiledExecutor::SequentialTiledExecutor(const TiledNest& tiled,
                                                const Kernel& kernel)
    : plan_(CompiledPlan::compile_sequential(TiledNest(tiled))),
      kernel_(&kernel) {}

SequentialTiledExecutor::SequentialTiledExecutor(
    std::shared_ptr<const CompiledPlan> plan, const Kernel& kernel)
    : plan_(std::move(plan)), kernel_(&kernel) {
  CTILE_ASSERT_MSG(plan_ != nullptr, "executor needs a plan");
}

DataSpace SequentialTiledExecutor::run() const {
  if (pre_run_gate_) {
    if (reverify_) {
      pre_run_gate_();
    } else {
      plan_->run_gate_memoized(pre_run_gate_);
    }
  }
  const TiledNest& tiled = plan_->tiled();
  const TileClassifier& classifier = plan_->classifier();
  const LoopNest& nest = tiled.nest();
  const TilingTransform& tf = tiled.transform();
  const MatI& deps = nest.deps;
  const int q = deps.cols();
  const int arity = kernel_->arity();
  const int n = nest.depth;
  DataSpace ds(nest.space, arity);
  std::vector<double> dep_vals(static_cast<std::size_t>(q) * static_cast<std::size_t>(arity));
  std::vector<double> out(static_cast<std::size_t>(arity));

  // Row-sweep invariants: the constant J^n step along a TTIS row, its
  // data-space offset, and each dependence's (point-independent) offset
  // — the predecessor of the point at offset s sits at s - dep_off[l].
  const VecI origin(static_cast<std::size_t>(n), 0);
  const VecI jstep = row_point_step(tf);
  const i64 row_off = ds.offset_step(jstep);
  std::vector<i64> dep_off(static_cast<std::size_t>(q));
  for (int l = 0; l < q; ++l) dep_off[static_cast<std::size_t>(l)] =
      ds.offset_step(deps.col(l));

  // Per-row batched dispatch (kSimd / kThreadPool): dependence pointers
  // are at the constant offsets dep_off from the row base, strides are
  // the row's data-space step; both row endpoints are bounds-asserted
  // (at_offset), which covers the affine interior.  `depp` is caller
  // scratch so plane-parallel rows don't share it.
  auto sweep_row_batched = [&](const VecI& j0, i64 s, i64 cnt,
                               const double** depp) {
    ds.at_offset(s + (cnt - 1) * row_off);
    for (int l = 0; l < q; ++l) {
      const i64 off = dep_off[static_cast<std::size_t>(l)];
      depp[l] = ds.at_offset(s - off);
      ds.at_offset(s - off + (cnt - 1) * row_off);
    }
    kernel_->compute_row(j0, jstep, cnt, depp, q, row_off, ds.at_offset(s),
                         row_off);
  };

  struct RowSeg {
    VecI j0;
    i64 s;
    i64 cnt;
  };
  std::vector<const double*> dep_ptr_scratch(static_cast<std::size_t>(q));
  std::vector<RowSeg> plane;
  std::vector<const double*> plane_scratch;
  const bool pooled =
      policy_ == exec::Policy::kThreadPool && plan_->plane_parallel();

  // Tiles in lexicographic tile-space order (legal: tile dependencies are
  // componentwise non-negative under a legal tiling), points in TTIS
  // order within each tile.
  tiled.tile_space().scan([&](const VecI& js) {
    if (use_fast_sweep_ && classifier.interior(js)) {
      // Interior tile: every lattice point is a real iteration and every
      // predecessor is in-space — already computed, by legality of the
      // tile order — so the sweep is flat offset arithmetic over the DS.
      i64 plane_id = 0;
      plane.clear();
      auto flush_plane = [&] {
        if (plane.empty()) return;
        if (plane.size() == 1) {
          const RowSeg& seg = plane.front();
          sweep_row_batched(seg.j0, seg.s, seg.cnt, dep_ptr_scratch.data());
        } else {
          plane_scratch.resize(plane.size() * static_cast<std::size_t>(q));
          exec::compute_pool().parallel_for(
              static_cast<i64>(plane.size()), [&](i64 pr) {
                const RowSeg& seg = plane[static_cast<std::size_t>(pr)];
                sweep_row_batched(seg.j0, seg.s, seg.cnt,
                                  plane_scratch.data() +
                                      static_cast<std::size_t>(pr) *
                                          static_cast<std::size_t>(q));
              });
        }
        plane.clear();
      };
      for (TtisRowWalker row(tf, tiled.tile_region(js)); row.valid();
           row.next()) {
        VecI j = tf.point_of(origin, row.row_start());
        i64 s = ds.offset(j);
        const i64 cnt = row.row_points();
        if (policy_ != exec::Policy::kSequential) {
          if (!pooled) {
            sweep_row_batched(j, s, cnt, dep_ptr_scratch.data());
          } else {
            const i64 p0 = row.row_start()[0];
            if (!plane.empty() && p0 != plane_id) flush_plane();
            plane_id = p0;
            plane.push_back(RowSeg{std::move(j), s, cnt});
          }
          continue;
        }
        for (i64 i = 0; i < cnt; ++i) {
          for (int l = 0; l < q; ++l) {
            const double* src =
                ds.at_offset(s - dep_off[static_cast<std::size_t>(l)]);
            double* dst = &dep_vals[static_cast<std::size_t>(l) * static_cast<std::size_t>(arity)];
            for (int v = 0; v < arity; ++v) dst[v] = src[v];
          }
          kernel_->compute(j, dep_vals.data(), out.data());
          double* dst = ds.at_offset(s);
          for (int v = 0; v < arity; ++v) dst[v] = out[v];
          s += row_off;
          for (int k = 0; k < n; ++k) {
            j[static_cast<std::size_t>(k)] +=
                jstep[static_cast<std::size_t>(k)];
          }
        }
      }
      flush_plane();
    } else {
      tiled.for_each_tile_point(js, [&](const VecI&, const VecI& j) {
        for (int l = 0; l < q; ++l) {
          double* dst = &dep_vals[static_cast<std::size_t>(l) * static_cast<std::size_t>(arity)];
          const VecI pred = vec_sub(j, deps.col(l));
          if (nest.space.contains(pred)) {
            const double* src = ds.at(pred);
            for (int v = 0; v < arity; ++v) dst[v] = src[v];
          } else {
            kernel_->initial(pred, dst);
          }
        }
        kernel_->compute(j, dep_vals.data(), out.data());
        double* dst = ds.at(j);
        for (int v = 0; v < arity; ++v) dst[v] = out[v];
      });
    }
  });
  return ds;
}

DataSpace run_sequential_tiled(const TiledNest& tiled, const Kernel& kernel) {
  return SequentialTiledExecutor(tiled, kernel).run();
}

}  // namespace ctile
