#include "runtime/parallel_executor.hpp"

#include <algorithm>
#include <chrono>

#include "linalg/int_matops.hpp"
#include "runtime/locate.hpp"

namespace ctile {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

namespace {
LoweringKnobs knobs_for(int force_m) {
  LoweringKnobs knobs;
  knobs.force_m = force_m;
  return knobs;
}
}  // namespace

ParallelExecutor::ParallelExecutor(const TiledNest& tiled,
                                   const Kernel& kernel, int force_m)
    : plan_(CompiledPlan::compile_parallel(TiledNest(tiled),
                                           knobs_for(force_m))),
      kernel_(&kernel) {}

ParallelExecutor::ParallelExecutor(std::shared_ptr<const CompiledPlan> plan,
                                   const Kernel& kernel)
    : plan_(std::move(plan)), kernel_(&kernel) {
  CTILE_ASSERT_MSG(plan_ != nullptr, "executor needs a plan");
  CTILE_ASSERT_MSG(plan_->parallel_lowered(),
                   "ParallelExecutor needs a parallel-lowered plan");
}

i64 ParallelExecutor::tag_of(int dir, i64 sender_t) const {
  const Mapping& mapping = plan_->mapping();
  CTILE_ASSERT(sender_t >= 0 && sender_t < mapping.chain_length());
  return add_ck(mul_ck(static_cast<i64>(dir), mapping.chain_length()),
                sender_t);
}

void ParallelExecutor::run_rank(int rank, mpisim::Comm& comm,
                                exec::DoubleBuffer& la, i64* points,
                                PhaseTimes* phase) const {
  const TiledNest& tiled = plan_->tiled();
  const Mapping& mapping = plan_->mapping();
  const CommPlan& cplan = plan_->comm_plan();
  const TileClassifier& classifier = plan_->classifier();
  const BandSplit& band = plan_->band();
  const TilingTransform& tf = tiled.transform();
  const Polyhedron& space = tiled.nest().space;
  const MatI& deps = tiled.nest().deps;
  const MatI dprime = tiled.ttis_deps();
  const int q = deps.cols();
  const int arity = kernel_->arity();
  const int n = tiled.nest().depth;
  const int m = mapping.m();
  const VecI pid = mapping.pid_of(rank);

  // Per-processor LDS: sized by this processor's own chain window
  // (paper \S3.1: |t| is per processor).  Message tags keep using global
  // chain positions so both endpoints agree.
  const IntRange window = mapping.chain_window(pid);
  *points = 0;
  if (window.empty()) return;
  const CompiledPlan::RankLocal& rl = plan_->local_for(window.count());
  const LdsLayout& local = rl.layout;
  const CommSlotTable& table = rl.slots;
  const i64 chain_step = table.chain_step();
  la.assign(static_cast<std::size_t>(local.size() * arity), 0.0);

  std::vector<double> dep_vals(static_cast<std::size_t>(q) * static_cast<std::size_t>(arity));
  std::vector<double> out(static_cast<std::size_t>(arity));

  // Invariants for the strength-reduced interior sweep: the constant J^n
  // step along a row, the linear-slot steps along a row and along the
  // chain, and the hoisted row plan (bases, deltas, relative J^n starts
  // — see CompiledPlan::RankLocal).
  const VecI jstep = row_point_step(tf);
  const i64 sstep = local.stride(n - 1);
  const auto& rows = rl.rows;
  const std::vector<i64>& deltas = rl.deltas;

  // ---- RECEIVE enumeration (\S3.2): one message per (predecessor tile,
  // direction) for which this tile is the lexicographically minimum
  // successor.  fn(dep index, source rank, tag); shared by the blocking
  // receive loop and the overlapped pre-posting.
  const auto& tile_deps = cplan.tile_deps();
  auto for_each_receive = [&](const VecI& js, i64 t, auto&& fn) {
    for (std::size_t di = 0; di < tile_deps.size(); ++di) {
      const TileDep& dep = tile_deps[di];
      if (dep.dir < 0) continue;  // chain-internal: local through the LDS
      const VecI pred = vec_sub(js, dep.ds);
      if (!mapping.valid(pred)) continue;
      VecI ms;
      if (!cplan.minsucc(pred, dep.dir, &ms) || ms != js) continue;
      VecI src_pid;
      const bool on_mesh = mapping.neighbor(pid, vec_neg(dep.dm), &src_pid);
      CTILE_ASSERT_MSG(on_mesh, "valid predecessor off the processor mesh");
      const i64 sender_t = sub_ck(t, dep.ds[static_cast<std::size_t>(m)]);
      fn(di, mapping.rank_of(src_pid), tag_of(dep.dir, sender_t));
    }
  };

  // ---- SEND enumeration (\S3.2): one aggregated message per successor
  // processor that owns at least one valid successor tile.
  // fn(direction index, destination rank).
  const auto& dirs = cplan.directions();
  auto for_each_send = [&](const VecI& js, auto&& fn) {
    for (std::size_t d = 0; d < dirs.size(); ++d) {
      const int dir = static_cast<int>(d);
      bool any_valid_succ = false;
      for (const TileDep& dep : tile_deps) {
        if (dep.dir != dir) continue;
        if (mapping.valid(vec_add(js, dep.ds))) {
          any_valid_succ = true;
          break;
        }
      }
      if (!any_valid_succ) continue;
      VecI dst_pid;
      const bool on_mesh = mapping.neighbor(pid, dirs[d].dm, &dst_pid);
      CTILE_ASSERT_MSG(on_mesh, "valid successor off the processor mesh");
      fn(dir, mapping.rank_of(dst_pid));
    }
  };

  // Unpack a received message into the halo slots shifted by
  // (d^S_k v_k / c_k); releases the buffer back into the rank's pool.
  auto unpack_message = [&](std::size_t di, std::vector<double> buf,
                            i64 t_loc) {
    const auto unpack_start = Clock::now();
    if (use_slot_tables_) {
      // Precomputed path: base slots at t_loc = 0 plus the affine
      // chain offset — no lattice enumeration in steady state.
      const std::vector<i64>& slots = table.unpack_slots(di);
      const i64 off = mul_ck(t_loc, chain_step);
      CTILE_ASSERT_MSG(slots.size() * static_cast<std::size_t>(arity) ==
                           buf.size(),
                       "unpack table size mismatch with received message");
      exec::scatter_slots(policy_, la.data(), local.size(), slots, off, arity,
                          buf.data());
    } else {
      const TileDep& dep = tile_deps[di];
      const TtisRegion region = cplan.unpack_region(dep);
      const VecI shift = cplan.unpack_shift(dep);
      std::size_t count = 0;
      for_each_lattice_point(tf, region, [&](const VecI& jp) {
        VecI jpp = local.map(jp, t_loc);
        for (int k = 0; k < n; ++k) {
          jpp[static_cast<std::size_t>(k)] =
              sub_ck(jpp[static_cast<std::size_t>(k)],
                     shift[static_cast<std::size_t>(k)]);
        }
        const i64 slot = local.linear(jpp);
        for (int v = 0; v < arity; ++v) {
          la[static_cast<std::size_t>(slot * arity + v)] = buf[count++];
        }
      });
      CTILE_ASSERT_MSG(count == buf.size(),
                       "unpack region size mismatch with received message");
    }
    comm.release_buffer(rank, std::move(buf));
    phase->unpack_s += seconds_since(unpack_start);
  };

  // Gather the pack region of `dir` for chain position t_loc into a
  // pooled buffer.
  auto pack_message = [&](int dir, i64 t_loc) -> std::vector<double> {
    const auto pack_start = Clock::now();
    std::vector<double> buf;
    if (use_slot_tables_) {
      const std::vector<i64>& slots = table.pack_slots(dir);
      buf = comm.acquire_buffer(rank,
                                slots.size() * static_cast<std::size_t>(arity));
      const i64 off = mul_ck(t_loc, chain_step);
      exec::gather_slots(policy_, la.data(), local.size(), slots, off, arity,
                         buf.data());
    } else {
      buf.reserve(static_cast<std::size_t>(cplan.message_points(dir) * arity));
      for_each_lattice_point(
          tf, dirs[static_cast<std::size_t>(dir)].pack, [&](const VecI& jp) {
            const i64 slot = local.slot(jp, t_loc);
            for (int v = 0; v < arity; ++v) {
              buf.push_back(la[static_cast<std::size_t>(slot * arity + v)]);
            }
          });
    }
    phase->pack_s += seconds_since(pack_start);
    return buf;
  };

  // Strength-reduced interior sweep over part of the tile: flat affine
  // row arithmetic — per-row bases and dependence slot deltas, then
  // la[s + delta_l], s += sstep per point; no contains() tests, no
  // initial-value branches, no per-point map/linear (paper Fig. 2's flat
  // stride-c_k loops).  `part` selects the whole row (blocking
  // schedule), the interior remainder prefix, or the boundary band
  // suffix (overlapped schedule; remainder is swept first — the legal
  // topological order, see tiling/interior.hpp).
  enum class Part { kAll, kRemainder, kBand };

  // Per-row batched dispatch (kSimd / kThreadPool): resolve the row's
  // base slot and per-dependence pointers from the hoisted plan,
  // bounds-check both row endpoints — the slots are affine in the row
  // index, so in-range endpoints cover every point, and under
  // CTILE_CHECKED_LDS slot_at additionally forms the sums
  // overflow-checked — then hand the whole row to Kernel::compute_row.
  // `j_anchor` is the tile's point_of(js, jp0_front); `depp` and `j`
  // are caller-provided scratch (reused across rows, one set per
  // concurrent lane) so the hot loop performs no allocation.
  auto sweep_row_batched = [&](std::size_t r, i64 begin, i64 end, i64 t_loc,
                               const VecI& j_anchor, const double** depp,
                               VecI& j) {
    const CompiledPlan::SweepRow& row = rows[r];
    const i64 cnt = end - begin;
    const i64 s = local.row_slot(row.base0, t_loc, begin, sstep);
    local.row_slot(row.base0, t_loc, begin + cnt - 1, sstep);
    const i64* delta = &deltas[r * static_cast<std::size_t>(q)];
    for (int l = 0; l < q; ++l) {
      const i64 first = local.slot_at(s, delta[l]);
      local.slot_at(s + (cnt - 1) * sstep, delta[l]);
      depp[l] = la.data() + first * arity;
    }
    j = j_anchor;
    for (int k = 0; k < n; ++k) {
      j[static_cast<std::size_t>(k)] +=
          row.j_rel[static_cast<std::size_t>(k)] +
          begin * jstep[static_cast<std::size_t>(k)];
    }
    kernel_->compute_row(j, jstep, cnt, depp, q, sstep * arity,
                         la.data() + s * arity, sstep * arity);
  };

  // Row segments of the current j'_0-plane (kThreadPool): the walker
  // order is lexicographic, so a plane's rows are contiguous and can be
  // collected then fanned out together.
  struct RowSeg {
    std::size_t r;
    i64 begin;
    i64 end;
  };
  std::vector<const double*> dep_ptr_scratch(static_cast<std::size_t>(q));
  VecI j_scratch;
  std::vector<RowSeg> plane;
  std::vector<const double*> plane_scratch;
  std::vector<VecI> plane_j_scratch;

  auto sweep_fast = [&](const VecI& js, i64 t_loc, Part part) {
    // The plane fan-out needs every dependence to advance j'_0
    // (plane_parallel); otherwise kThreadPool degrades to the batched
    // single-lane path so the setting is always safe.
    const bool pooled =
        policy_ == exec::Policy::kThreadPool && plan_->plane_parallel();
    const VecI j_anchor = tf.point_of(js, rl.jp0_front);
    i64 plane_id = 0;
    plane.clear();
    auto flush_plane = [&] {
      if (plane.empty()) return;
      if (plane.size() == 1) {
        const RowSeg& seg = plane.front();
        sweep_row_batched(seg.r, seg.begin, seg.end, t_loc, j_anchor,
                          dep_ptr_scratch.data(), j_scratch);
      } else {
        plane_scratch.resize(plane.size() * static_cast<std::size_t>(q));
        if (plane_j_scratch.size() < plane.size()) {
          plane_j_scratch.resize(plane.size());
        }
        exec::compute_pool().parallel_for(
            static_cast<i64>(plane.size()), [&](i64 pr) {
              const RowSeg& seg = plane[static_cast<std::size_t>(pr)];
              sweep_row_batched(seg.r, seg.begin, seg.end, t_loc, j_anchor,
                                plane_scratch.data() +
                                    static_cast<std::size_t>(pr) *
                                        static_cast<std::size_t>(q),
                                plane_j_scratch[static_cast<std::size_t>(pr)]);
            });
      }
      plane.clear();
    };
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const CompiledPlan::SweepRow& row = rows[r];
      i64 begin = 0;
      i64 end = row.count;
      if (part == Part::kRemainder) {
        end = band.split(r);
      } else if (part == Part::kBand) {
        begin = band.split(r);
      }
      if (begin >= end) continue;
      *points += end - begin;
      if (policy_ != exec::Policy::kSequential) {
        if (!pooled) {
          sweep_row_batched(r, begin, end, t_loc, j_anchor,
                            dep_ptr_scratch.data(), j_scratch);
        } else {
          if (!plane.empty() && row.plane != plane_id) flush_plane();
          plane_id = row.plane;
          plane.push_back(RowSeg{r, begin, end});
        }
        continue;
      }
      // kSequential reference: per-point virtual compute() calls over the
      // strength-reduced row walk of DESIGN.md §8.
      i64 s = local.row_slot(row.base0, t_loc, begin, sstep);
      const i64* delta = &deltas[r * static_cast<std::size_t>(q)];
      VecI j = j_anchor;
      for (int k = 0; k < n; ++k) {
        j[static_cast<std::size_t>(k)] +=
            row.j_rel[static_cast<std::size_t>(k)] +
            begin * jstep[static_cast<std::size_t>(k)];
      }
      for (i64 i = begin; i < end; ++i) {
        for (int l = 0; l < q; ++l) {
          const i64 sl = local.slot_at(s, delta[l]);
          const double* src = &la[static_cast<std::size_t>(sl * arity)];
          double* dst = &dep_vals[static_cast<std::size_t>(l) * static_cast<std::size_t>(arity)];
          for (int v = 0; v < arity; ++v) dst[v] = src[v];
        }
        kernel_->compute(j, dep_vals.data(), out.data());
        local.check_slot(s);
        double* dst = &la[static_cast<std::size_t>(s * arity)];
        for (int v = 0; v < arity; ++v) dst[v] = out[v];
        s += sstep;
        for (int k = 0; k < n; ++k) {
          j[static_cast<std::size_t>(k)] +=
              jstep[static_cast<std::size_t>(k)];
        }
      }
    }
    flush_plane();
  };

  // General clipped sweep (boundary tiles, or the legacy reference).
  auto sweep_general = [&](const VecI& js, i64 t_loc) {
    tiled.for_each_tile_point(js, [&](const VecI& jp, const VecI& j) {
      for (int l = 0; l < q; ++l) {
        double* dst = &dep_vals[static_cast<std::size_t>(l) * static_cast<std::size_t>(arity)];
        const VecI pred_j = vec_sub(j, deps.col(l));
        if (space.contains(pred_j)) {
          const VecI pred_jp = vec_sub(jp, dprime.col(l));
          const i64 slot = local.slot(pred_jp, t_loc);
          for (int v = 0; v < arity; ++v) {
            dst[v] = la[static_cast<std::size_t>(slot * arity + v)];
          }
        } else {
          kernel_->initial(pred_j, dst);
        }
      }
      kernel_->compute(j, dep_vals.data(), out.data());
      const i64 slot = local.slot(jp, t_loc);
      for (int v = 0; v < arity; ++v) {
        la[static_cast<std::size_t>(slot * arity + v)] = out[v];
      }
      ++*points;
    });
  };

  if (!use_overlap_) {
    // ---- Blocking reference schedule: RECEIVE, COMPUTE, SEND, with the
    // sender occupied for the full transfer of every message.
    for (i64 t = window.lo; t <= window.hi; ++t) {
      const VecI js = mapping.tile_at(pid, t);
      if (!mapping.valid(js)) continue;
      const i64 t_loc = t - window.lo;  // chain position within this LDS

      for_each_receive(js, t, [&](std::size_t di, int src_rank, i64 tag) {
        const auto recv_start = Clock::now();
        std::vector<double> buf = comm.recv(rank, src_rank, tag);
        phase->recv_wait_s += seconds_since(recv_start);
        unpack_message(di, std::move(buf), t_loc);
      });

      const auto compute_start = Clock::now();
      if (use_fast_sweep_ && classifier.interior(js)) {
        sweep_fast(js, t_loc, Part::kAll);
      } else {
        sweep_general(js, t_loc);
      }
      phase->compute_s += seconds_since(compute_start);

      for_each_send(js, [&](int dir, int dst_rank) {
        std::vector<double> buf = pack_message(dir, t_loc);
        const auto send_start = Clock::now();
        comm.send(rank, dst_rank, tag_of(dir, t), std::move(buf));
        phase->send_wait_s += seconds_since(send_start);
      });
    }
    return;
  }

  // ---- Overlapped (pipelined) schedule.  Steady state for tile t:
  // drain the irecvs pre-posted at t-1, sweep the interior remainder,
  // sweep the boundary band (its values are the only ones neighbours
  // wait for), pack + isend immediately, pre-post irecvs for the next
  // tile — the isends' transfers then drain while the next tile's
  // remainder computes.  Same receive events, same per-point dataflow as
  // the blocking path; only the waiting moves off the critical path.
  std::vector<mpisim::Request> recv_reqs;
  std::vector<std::size_t> recv_dis;
  i64 posted_for = window.lo - 1;
  std::vector<mpisim::Request> send_reqs;

  auto post_recvs = [&](const VecI& js, i64 t) {
    recv_reqs.clear();
    recv_dis.clear();
    for_each_receive(js, t, [&](std::size_t di, int src_rank, i64 tag) {
      recv_reqs.push_back(comm.irecv(rank, src_rank, tag));
      recv_dis.push_back(di);
    });
    posted_for = t;
  };

  for (i64 t = window.lo; t <= window.hi; ++t) {
    const VecI js = mapping.tile_at(pid, t);
    if (!mapping.valid(js)) continue;
    const i64 t_loc = t - window.lo;
    if (posted_for != t) post_recvs(js, t);  // bootstrap the pipeline

    for (std::size_t i = 0; i < recv_reqs.size(); ++i) {
      const auto recv_start = Clock::now();
      std::vector<double> buf = comm.wait(recv_reqs[i]);
      phase->recv_wait_s += seconds_since(recv_start);
      unpack_message(recv_dis[i], std::move(buf), t_loc);
    }
    recv_reqs.clear();
    recv_dis.clear();

    const bool fast = use_fast_sweep_ && classifier.interior(js);
    const auto compute_start = Clock::now();
    if (fast) {
      sweep_fast(js, t_loc, Part::kRemainder);
      sweep_fast(js, t_loc, Part::kBand);
    } else {
      // Boundary tiles (and the legacy reference sweep) have no
      // precomputed band split; sweep whole and send at the end — still
      // overlapped with the next tile via isend.
      sweep_general(js, t_loc);
    }
    phase->compute_s += seconds_since(compute_start);

    for_each_send(js, [&](int dir, int dst_rank) {
      std::vector<double> buf = pack_message(dir, t_loc);
      send_reqs.push_back(
          comm.isend(rank, dst_rank, tag_of(dir, t), std::move(buf)));
    });

    for (i64 tn = t + 1; tn <= window.hi; ++tn) {
      const VecI jn = mapping.tile_at(pid, tn);
      if (!mapping.valid(jn)) continue;
      post_recvs(jn, tn);
      break;
    }
  }

  // Retire the outstanding isends: under the latency model this waits
  // for the last transfers to drain — time the blocking path charges per
  // message on the critical path.
  const auto send_wait_start = Clock::now();
  comm.wait_all(send_reqs);
  phase->send_wait_s += seconds_since(send_wait_start);
}

DataSpace ParallelExecutor::run(ParallelRunStats* stats) const {
  if (pre_run_gate_) {
    // The gate proves the immutable plan, so its verdict — success or
    // the thrown diagnosis — is memoized per plan and replayed on later
    // runs; set_reverify(true) forces the full check every run.
    if (reverify_) {
      pre_run_gate_();
    } else {
      plan_->run_gate_memoized(pre_run_gate_);
    }
  }
  const Mapping& mapping = plan_->mapping();
  const TileClassifier& classifier = plan_->classifier();
  const int nprocs = mapping.num_procs();
  const int arity = kernel_->arity();
  std::vector<exec::DoubleBuffer> arrays;
  arrays.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) arrays.emplace_back(mem_);
  std::vector<i64> points(static_cast<std::size_t>(nprocs), 0);
  std::vector<PhaseTimes> phases(static_cast<std::size_t>(nprocs));

  i64 messages = 0, doubles = 0;
  mpisim::Comm::ChannelTraces traces;
  std::vector<mpisim::Comm::TraceEvent> events;
  mpisim::CommConfig comm_config;
  comm_config.latency = latency_;
  comm_config.backend = backend_;
  comm_config.seed = seed_;
  comm_config.trace = trace_;
  mpisim::run_ranks(
      nprocs,
      [&](int rank, mpisim::Comm& comm) {
        auto& la = arrays[static_cast<std::size_t>(rank)];
        run_rank(rank, comm, la, &points[static_cast<std::size_t>(rank)],
                 &phases[static_cast<std::size_t>(rank)]);
        comm.barrier(rank);  // all sends settled before stats are read
        if (rank == 0) {
          messages = comm.messages_sent();
          doubles = comm.doubles_sent();
          if (trace_) {
            traces = comm.channel_traces();
            events = comm.event_log();
          }
        }
      },
      comm_config);

  // ---- Write-back (Figure 4): every computation slot travels
  // LDS --map^{-1}--> (j', t) --loc^{-1}--> j in J^n --f_w--> DS,
  // with each rank's own (cached) chain-window layout.  Instead of
  // scanning every LDS slot and inverting map per compute slot, walk
  // the computation rows forward: the row walker enumerates exactly
  // the tile's lattice points, the slot advances affinely along a row
  // (see DESIGN.md \S8), and j advances by the constant row step — so
  // halo slots are never touched and no delinearize/map_inv runs.
  DataSpace ds(plan_->tiled().nest().space, arity);
  const Polyhedron& space = plan_->tiled().nest().space;
  const TilingTransform& tf = plan_->tiled().transform();
  const VecI jstep = row_point_step(tf);
  const int n = plan_->tiled().nest().depth;
  const i64 dstep = ds.offset_step(jstep);
  auto write_rank = [&](int rank) {
    const VecI pid = mapping.pid_of(rank);
    const IntRange window = mapping.chain_window(pid);
    if (window.empty()) return;
    const CompiledPlan::RankLocal& rl = plan_->local_for(window.count());
    const LdsLayout& local = rl.layout;
    const i64 sstep = local.stride(n - 1);
    const auto& la = arrays[static_cast<std::size_t>(rank)];
    for (i64 t = window.lo; t <= window.hi; ++t) {
      const VecI js = mapping.tile_at(pid, t);
      if (!mapping.valid(js)) continue;
      // Interior tiles lie wholly inside J^n: skip the contains() test.
      const bool interior = classifier.interior(js);
      const VecI j_anchor = tf.point_of(js, rl.jp0_front);
      for (const CompiledPlan::SweepRow& row : rl.rows) {
        i64 s = local.row_slot(row.base0, t - window.lo, 0, sstep);
        VecI j = j_anchor;
        for (int k = 0; k < n; ++k) {
          j[static_cast<std::size_t>(k)] +=
              row.j_rel[static_cast<std::size_t>(k)];
        }
        const i64 cnt = row.count;
        if (interior && policy_ != exec::Policy::kSequential) {
          // Interior rows lie wholly inside J^n: one strided row copy
          // (vectorized under kSimd/kThreadPool) replaces the per-point
          // walk.  Both row endpoints bounds-checked as in the sweep.
          local.check_slot(s);
          local.check_slot(s + (cnt - 1) * sstep);
          exec::copy_row(policy_, la.data() + s * arity, sstep * arity,
                         ds.at(j), dstep, cnt, arity);
          continue;
        }
        for (i64 i = 0; i < cnt; ++i) {
          if (interior || space.contains(j)) {
            double* dst = ds.at(j);
            local.check_slot(s);
            const double* src = &la[static_cast<std::size_t>(s * arity)];
            for (int v = 0; v < arity; ++v) dst[v] = src[v];
          }
          s += sstep;
          for (int k = 0; k < n; ++k) {
            j[static_cast<std::size_t>(k)] +=
                jstep[static_cast<std::size_t>(k)];
          }
        }
      }
    }
  };
  if (policy_ == exec::Policy::kThreadPool && nprocs > 1) {
    // Ranks own disjoint tiles, and tiles partition J^n: the per-rank
    // write-backs touch disjoint DataSpace slots and can fan out.
    exec::compute_pool().parallel_for(
        nprocs, [&](i64 rank) { write_rank(static_cast<int>(rank)); });
  } else {
    for (int rank = 0; rank < nprocs; ++rank) write_rank(rank);
  }

  if (stats != nullptr) {
    stats->messages = messages;
    stats->doubles = doubles;
    stats->traces = std::move(traces);
    stats->events = std::move(events);
    stats->points_computed = 0;
    for (i64 p : points) stats->points_computed += p;
    stats->phase_by_rank = phases;
    stats->phase_total = PhaseTimes{};
    for (const PhaseTimes& p : phases) {
      stats->phase_total.compute_s += p.compute_s;
      stats->phase_total.pack_s += p.pack_s;
      stats->phase_total.unpack_s += p.unpack_s;
      stats->phase_total.recv_wait_s += p.recv_wait_s;
      stats->phase_total.send_wait_s += p.send_wait_s;
    }
  }
  return ds;
}

}  // namespace ctile
