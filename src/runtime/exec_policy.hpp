// Execution policies for the runtime's compute/pack/unpack/write-back
// loops, plus the memory backends their buffers are allocated through.
//
// A policy names *how* a loop nest the planner already proved legal is
// driven at runtime:
//
//   kSequential  the reference: per-point virtual Kernel::compute calls,
//                exactly the strength-reduced row walk of DESIGN.md §8.
//   kSimd        rows go through the batched Kernel::compute_row entry
//                point, whose hand-written bodies vectorize the unit-
//                stride LDS row (#pragma omp simd / AVX2); pack, unpack
//                and write-back copies use the vectorized helpers below.
//   kThreadPool  like kSimd, and additionally the independent rows of a
//                j'_0-plane fan out across a small persistent thread
//                pool (legal only when every TTIS dependence advances
//                the outermost coordinate — the executor checks and
//                degrades to the kSimd path otherwise).
//
// Every policy is bitwise-identical to kSequential by contract: the row
// kernels preserve per-lane IEEE evaluation order, the copies move bits,
// and the plane grouping is a topological reordering of independent
// rows.  The equivalence suite (tests/runtime_exec_policy_test) and the
// gated micro-bench (bench/micro_simd_sweep) enforce this.
//
// Memory backends make LDS allocation pluggable (the registry idea of
// zpc's memory_backend_registry): the default hands out 64-byte-aligned
// blocks so LDS rows start on cache-line/vector boundaries, the pooled
// backend recycles freed blocks for allocation-free steady state, and
// the registry is the doorway to NUMA-tagged or device (GPU/offload)
// backends later.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/checked_int.hpp"

// Vectorization hint for the batched row loops: `#pragma omp simd` needs
// only -fopenmp-simd (no OpenMP runtime), which the build adds whenever
// the compiler supports it.  Per-lane evaluation order is the scalar
// order, so vectorized rows stay bitwise-identical.
#if defined(__GNUC__) || defined(__clang__)
#define CTILE_PRAGMA_SIMD _Pragma("omp simd")
#else
#define CTILE_PRAGMA_SIMD
#endif

namespace ctile::exec {

enum class Policy {
  kSequential,
  kSimd,
  kThreadPool,
};

/// Canonical lowercase name ("sequential", "simd", "threadpool").
const char* policy_name(Policy p);

/// Parse a policy name; returns false on unknown input.
bool policy_from_name(const std::string& name, Policy* out);

/// `fallback` unless $CTILE_EXEC_POLICY is set; an unknown value throws
/// (loud beats silently running a different backend than asked for).
Policy policy_from_env(Policy fallback);

// ---------------------------------------------------------------------
// Memory backends

/// Alignment of every backend allocation: one cache line, and enough for
/// any current vector ISA's aligned loads.
inline constexpr std::size_t kLdsAlignment = 64;

/// Allocation strategy for runtime buffers (LDS windows today).  Brutally
/// small interface on purpose: a NUMA-tagged or device backend only needs
/// these three entry points.  Implementations must be thread-safe — ranks
/// allocate concurrently — and must return kLdsAlignment-aligned blocks.
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;
  virtual void* allocate(std::size_t bytes) = 0;
  virtual void deallocate(void* p, std::size_t bytes) = 0;
  virtual const char* name() const = 0;
};

/// 64-byte-aligned malloc/free (std::aligned_alloc).  The default.
MemoryBackend& aligned_backend();

/// Aligned allocation with a mutex-guarded free list per size class:
/// steady-state reallocation of equal-sized LDS windows is a pop.
MemoryBackend& pooled_backend();

/// Register a backend under its name() for find_memory_backend lookup.
/// The backend must outlive all lookups (typically a static).
void register_memory_backend(MemoryBackend* backend);

/// Built-ins ("aligned", "pooled") or anything registered; nullptr when
/// unknown.
MemoryBackend* find_memory_backend(const std::string& name);

/// aligned_backend() unless $CTILE_MEM_BACKEND names another registered
/// backend; an unknown value throws.
MemoryBackend& default_memory_backend();

/// RAII double buffer allocated through a MemoryBackend: the LDS window
/// storage of the parallel executor.  Grow-only like a vector, without
/// value-initializing ctor churn; assign() is the only filler the
/// executor needs (fresh windows start zeroed).
class DoubleBuffer {
 public:
  DoubleBuffer() : backend_(&default_memory_backend()) {}
  explicit DoubleBuffer(MemoryBackend* backend) : backend_(backend) {}
  DoubleBuffer(DoubleBuffer&& other) noexcept { steal(other); }
  DoubleBuffer& operator=(DoubleBuffer&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  DoubleBuffer(const DoubleBuffer&) = delete;
  DoubleBuffer& operator=(const DoubleBuffer&) = delete;
  ~DoubleBuffer() { release(); }

  /// Resize to n doubles, all set to `value` (reuses capacity).
  void assign(std::size_t n, double value);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double* data() { return data_; }
  const double* data() const { return data_; }
  double& operator[](std::size_t i) { return data_[i]; }
  const double& operator[](std::size_t i) const { return data_[i]; }
  MemoryBackend* backend() const { return backend_; }

 private:
  void release();
  void steal(DoubleBuffer& other) {
    backend_ = other.backend_;
    data_ = other.data_;
    size_ = other.size_;
    cap_ = other.cap_;
    other.data_ = nullptr;
    other.size_ = other.cap_ = 0;
  }

  MemoryBackend* backend_ = nullptr;
  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

// ---------------------------------------------------------------------
// Thread pool

/// Small persistent pool for the kThreadPool policy.  parallel_for fans
/// indices out in chunks over the workers with the *caller participating*
/// (so a pool of w workers gives w+1 lanes, and a zero-worker pool still
/// makes progress).  Multiple callers may submit concurrently — each
/// mpisim rank thread drives its own tiles through the shared pool.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Run fn(0..n-1), each index exactly once, returning when all are
  /// done.  The first exception thrown by fn is rethrown in the caller
  /// (remaining indices still execute).  fn must be safe to call from
  /// multiple threads at once.
  void parallel_for(i64 n, const std::function<void(i64)>& fn);

 private:
  struct Job {
    i64 n = 0;
    i64 chunk = 1;
    const std::function<void(i64)>* fn = nullptr;
    std::atomic<i64> next{0};
    std::atomic<i64> done{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void worker_loop();
  void run_chunks(Job& job);

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for jobs
  std::condition_variable done_cv_;  // submitters wait for completion
  std::vector<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// The process-wide compute pool, built lazily on first use with
/// $CTILE_POOL_THREADS workers (default: min(3, hw_concurrency - 1),
/// at least 1, so the policy is genuinely threaded even on small boxes).
ThreadPool& compute_pool();

// ---------------------------------------------------------------------
// Policy-lifted copy loops (pack / unpack / write-back)

/// Pack gather: for each point slot base in `slots`, copy the `arity`
/// doubles at la[(base + off) * arity] to dst, advancing dst densely —
/// the slot-table pack loop, vectorized under kSimd/kThreadPool.
/// `la_slots` is the LDS size in point slots for the CTILE_CHECKED_LDS
/// bounds assert (unused in release).
void gather_slots(Policy p, const double* la, i64 la_slots,
                  const std::vector<i64>& slots, i64 off, int arity,
                  double* dst);

/// Unpack scatter: the inverse of gather_slots (dense src into slots).
void scatter_slots(Policy p, double* la, i64 la_slots,
                   const std::vector<i64>& slots, i64 off, int arity,
                   const double* src);

/// Strided row copy for the write-back: count points of `arity` doubles,
/// source advancing src_step doubles per point, destination dst_step.
void copy_row(Policy p, const double* src, i64 src_step, double* dst,
              i64 dst_step, i64 count, int arity);

}  // namespace ctile::exec
