#include "runtime/data_space.hpp"

#include <cmath>

#include "linalg/int_matops.hpp"

namespace ctile {

DataSpace::DataSpace(const Polyhedron& space, int arity) : arity_(arity) {
  CTILE_ASSERT(arity > 0);
  std::vector<IntRange> box = space.bounding_box();
  lo_.resize(box.size());
  ext_.resize(box.size());
  i64 total = 1;
  for (std::size_t k = 0; k < box.size(); ++k) {
    CTILE_ASSERT(!box[k].empty());
    lo_[k] = box[k].lo;
    ext_[k] = box[k].count();
    total = mul_ck(total, ext_[k]);
  }
  data_.assign(static_cast<std::size_t>(mul_ck(total, arity)), 0.0);
}

bool DataSpace::in_box(const VecI& j) const {
  CTILE_ASSERT(j.size() == lo_.size());
  for (std::size_t k = 0; k < j.size(); ++k) {
    i64 rel = j[k] - lo_[k];
    if (rel < 0 || rel >= ext_[k]) return false;
  }
  return true;
}

i64 DataSpace::index(const VecI& j) const {
  CTILE_ASSERT(j.size() == lo_.size());
  i64 idx = 0;
  for (std::size_t k = 0; k < j.size(); ++k) {
    i64 rel = j[k] - lo_[k];
    CTILE_ASSERT_MSG(rel >= 0 && rel < ext_[k], "DataSpace point out of box");
    idx = add_ck(mul_ck(idx, ext_[k]), rel);
  }
  return mul_ck(idx, arity_);
}

i64 DataSpace::offset_step(const VecI& dj) const {
  CTILE_ASSERT(dj.size() == lo_.size());
  i64 step = 0;
  for (std::size_t k = 0; k < dj.size(); ++k) {
    step = add_ck(mul_ck(step, ext_[k]), dj[k]);
  }
  return mul_ck(step, arity_);
}

double* DataSpace::at(const VecI& j) {
  return &data_[static_cast<std::size_t>(index(j))];
}

const double* DataSpace::at(const VecI& j) const {
  return &data_[static_cast<std::size_t>(index(j))];
}

double DataSpace::max_abs_diff(const DataSpace& a, const DataSpace& b,
                               const Polyhedron& space) {
  CTILE_ASSERT(a.arity_ == b.arity_);
  double worst = 0.0;
  space.scan([&](const VecI& j) {
    const double* pa = a.at(j);
    const double* pb = b.at(j);
    for (int v = 0; v < a.arity_; ++v) {
      worst = std::max(worst, std::fabs(pa[v] - pb[v]));
    }
  });
  return worst;
}

DataSpace run_sequential(const Polyhedron& space, const MatI& deps,
                         const Kernel& kernel) {
  DataSpace ds(space, kernel.arity());
  const int q = deps.cols();
  const int arity = kernel.arity();
  std::vector<double> dep_vals(static_cast<std::size_t>(q) * static_cast<std::size_t>(arity));
  std::vector<double> out(static_cast<std::size_t>(arity));
  space.scan([&](const VecI& j) {
    for (int l = 0; l < q; ++l) {
      VecI pred = vec_sub(j, deps.col(l));
      double* dst = &dep_vals[static_cast<std::size_t>(l) * static_cast<std::size_t>(arity)];
      if (space.contains(pred)) {
        const double* src = ds.at(pred);
        for (int v = 0; v < arity; ++v) dst[v] = src[v];
      } else {
        kernel.initial(pred, dst);
      }
    }
    kernel.compute(j, dep_vals.data(), out.data());
    double* dst = ds.at(j);
    for (int v = 0; v < arity; ++v) dst[v] = out[v];
  });
  return ds;
}

}  // namespace ctile
