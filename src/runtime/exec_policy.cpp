#include "runtime/exec_policy.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "support/error.hpp"

namespace ctile::exec {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kSequential: return "sequential";
    case Policy::kSimd: return "simd";
    case Policy::kThreadPool: return "threadpool";
  }
  return "?";
}

bool policy_from_name(const std::string& name, Policy* out) {
  if (name == "sequential") {
    *out = Policy::kSequential;
  } else if (name == "simd") {
    *out = Policy::kSimd;
  } else if (name == "threadpool") {
    *out = Policy::kThreadPool;
  } else {
    return false;
  }
  return true;
}

Policy policy_from_env(Policy fallback) {
  // Read-only env probe; nothing in this process calls setenv().
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("CTILE_EXEC_POLICY");
  if (env == nullptr || *env == '\0') return fallback;
  Policy p;
  if (!policy_from_name(env, &p)) {
    throw Error("unknown CTILE_EXEC_POLICY value '" + std::string(env) +
                "' (expected 'sequential', 'simd' or 'threadpool')");
  }
  return p;
}

// ---------------------------------------------------------------------
// Memory backends

namespace {

std::size_t round_up(std::size_t bytes, std::size_t align) {
  return (bytes + align - 1) / align * align;
}

void* aligned_allocate(std::size_t bytes) {
  // aligned_alloc requires a size that is a multiple of the alignment;
  // zero-byte requests still get a real (freeable) block.
  const std::size_t padded = round_up(std::max<std::size_t>(bytes, 1),
                                      kLdsAlignment);
  void* p = std::aligned_alloc(kLdsAlignment, padded);
  if (p == nullptr) throw Error("aligned memory backend: allocation failed");
  return p;
}

class AlignedBackend final : public MemoryBackend {
 public:
  void* allocate(std::size_t bytes) override { return aligned_allocate(bytes); }
  void deallocate(void* p, std::size_t) override { std::free(p); }
  const char* name() const override { return "aligned"; }
};

class PooledBackend final : public MemoryBackend {
 public:
  void* allocate(std::size_t bytes) override {
    const std::size_t cls = size_class(bytes);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = free_.find(cls);
      if (it != free_.end() && !it->second.empty()) {
        void* p = it->second.back();
        it->second.pop_back();
        return p;
      }
    }
    return aligned_allocate(cls);
  }

  void deallocate(void* p, std::size_t bytes) override {
    const std::size_t cls = size_class(bytes);
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<void*>& list = free_[cls];
    if (list.size() >= kMaxPerClass) {
      std::free(p);  // bound the cache; overflow goes back to the OS
      return;
    }
    list.push_back(p);
  }

  const char* name() const override { return "pooled"; }

 private:
  // Size classes are alignment-rounded byte counts: LDS windows of equal
  // geometry recycle exactly, which is the steady state the pool serves.
  static std::size_t size_class(std::size_t bytes) {
    return round_up(std::max<std::size_t>(bytes, 1), kLdsAlignment);
  }

  static constexpr std::size_t kMaxPerClass = 64;
  std::mutex mutex_;
  std::map<std::size_t, std::vector<void*>> free_;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<MemoryBackend*>& registry() {
  static std::vector<MemoryBackend*> backends;
  return backends;
}

}  // namespace

MemoryBackend& aligned_backend() {
  static AlignedBackend backend;
  return backend;
}

MemoryBackend& pooled_backend() {
  static PooledBackend backend;
  return backend;
}

void register_memory_backend(MemoryBackend* backend) {
  CTILE_ASSERT(backend != nullptr);
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().push_back(backend);
}

MemoryBackend* find_memory_backend(const std::string& name) {
  if (name == "aligned") return &aligned_backend();
  if (name == "pooled") return &pooled_backend();
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (MemoryBackend* b : registry()) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

MemoryBackend& default_memory_backend() {
  // Resolved once: the default must be stable for the life of the
  // process (buffers deallocate through the backend that made them).
  // Read-only env probe under the magic-static guard; no setenv() here.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  static MemoryBackend& chosen = [ge = std::getenv("CTILE_MEM_BACKEND")]()
      -> MemoryBackend& {
    if (ge == nullptr || *ge == '\0') return aligned_backend();
    MemoryBackend* b = find_memory_backend(ge);
    if (b == nullptr) {
      throw Error("unknown CTILE_MEM_BACKEND value '" + std::string(ge) +
                  "' (expected 'aligned', 'pooled' or a registered name)");
    }
    return *b;
  }();
  return chosen;
}

void DoubleBuffer::assign(std::size_t n, double value) {
  if (n > cap_) {
    release();
    data_ = static_cast<double*>(backend_->allocate(n * sizeof(double)));
    cap_ = n;
  }
  size_ = n;
  std::fill(data_, data_ + n, value);
}

void DoubleBuffer::release() {
  if (data_ != nullptr) {
    backend_->deallocate(data_, cap_ * sizeof(double));
    data_ = nullptr;
  }
  size_ = cap_ = 0;
}

// ---------------------------------------------------------------------
// Thread pool

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(static_cast<std::size_t>(std::max(workers, 0)));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        if (stop_) return true;
        for (const auto& j : jobs_) {
          if (j->next.load(std::memory_order_relaxed) < j->n) return true;
        }
        return false;
      });
      for (const auto& j : jobs_) {
        if (j->next.load(std::memory_order_relaxed) < j->n) {
          job = j;
          break;
        }
      }
      if (job == nullptr) {
        if (stop_) return;
        continue;
      }
    }
    run_chunks(*job);
  }
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const i64 begin = job.next.fetch_add(job.chunk);
    if (begin >= job.n) return;
    const i64 end = std::min(begin + job.chunk, job.n);
    for (i64 i = begin; i < end; ++i) {
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
    }
    const i64 completed =
        job.done.fetch_add(end - begin) + (end - begin);
    if (completed == job.n) {
      // Lock pairs with the submitter's predicated wait: no lost wakeup.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(i64 n, const std::function<void(i64)>& fn) {
  if (n <= 0) return;
  if (threads_.empty() || n == 1) {
    for (i64 i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  // ~4 chunks per lane balances steal overhead against imbalance.
  job->chunk = std::max<i64>(1, n / ((workers() + 1) * 4));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();
  run_chunks(*job);  // the caller is a lane too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->done.load() == job->n; });
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& compute_pool() {
  static ThreadPool pool([] {
    // Read-only env probe under the magic-static guard; no setenv() here.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("CTILE_POOL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v < 0 || v > 256) {
        throw Error("CTILE_POOL_THREADS out of range (0..256)");
      }
      return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const int spare = hw > 1 ? static_cast<int>(hw) - 1 : 1;
    return std::min(3, spare);
  }());
  return pool;
}

// ---------------------------------------------------------------------
// Policy-lifted copy loops

namespace {

inline i64 checked_slot(i64 base, i64 off, i64 la_slots) {
#if defined(CTILE_CHECKED_LDS)
  const i64 s = add_ck(base, off);
  CTILE_ASSERT_MSG(s >= 0 && s < la_slots,
                   "LDS slot outside the window array (V2 violation)");
  return s;
#else
  (void)la_slots;
  return base + off;
#endif
}

// The copies are bitwise moves under every policy; the simd variants
// exist to keep the pack/unpack phases off the critical path when the
// compute sweep itself is vectorized.  kThreadPool copies take the simd
// path too: message-sized memcpys are far below threading granularity.
template <bool kSimdHint>
void gather_impl(const double* la, i64 la_slots, const std::vector<i64>& slots,
                 i64 off, int arity, double* dst) {
  if (arity == 1) {
    const i64* s = slots.data();
    const i64 count = static_cast<i64>(slots.size());
    if (kSimdHint) {
      CTILE_PRAGMA_SIMD
      for (i64 i = 0; i < count; ++i) {
        dst[i] = la[checked_slot(s[i], off, la_slots)];
      }
    } else {
      for (i64 i = 0; i < count; ++i) {
        dst[i] = la[checked_slot(s[i], off, la_slots)];
      }
    }
    return;
  }
  for (const i64 base : slots) {
    const double* src = la + checked_slot(base, off, la_slots) * arity;
    for (int v = 0; v < arity; ++v) *dst++ = src[v];
  }
}

template <bool kSimdHint>
void scatter_impl(double* la, i64 la_slots, const std::vector<i64>& slots,
                  i64 off, int arity, const double* src) {
  if (arity == 1) {
    const i64* s = slots.data();
    const i64 count = static_cast<i64>(slots.size());
    if (kSimdHint) {
      CTILE_PRAGMA_SIMD
      for (i64 i = 0; i < count; ++i) {
        la[checked_slot(s[i], off, la_slots)] = src[i];
      }
    } else {
      for (i64 i = 0; i < count; ++i) {
        la[checked_slot(s[i], off, la_slots)] = src[i];
      }
    }
    return;
  }
  for (const i64 base : slots) {
    double* dst = la + checked_slot(base, off, la_slots) * arity;
    for (int v = 0; v < arity; ++v) dst[v] = *src++;
  }
}

}  // namespace

void gather_slots(Policy p, const double* la, i64 la_slots,
                  const std::vector<i64>& slots, i64 off, int arity,
                  double* dst) {
  if (p == Policy::kSequential) {
    gather_impl<false>(la, la_slots, slots, off, arity, dst);
  } else {
    gather_impl<true>(la, la_slots, slots, off, arity, dst);
  }
}

void scatter_slots(Policy p, double* la, i64 la_slots,
                   const std::vector<i64>& slots, i64 off, int arity,
                   const double* src) {
  if (p == Policy::kSequential) {
    scatter_impl<false>(la, la_slots, slots, off, arity, src);
  } else {
    scatter_impl<true>(la, la_slots, slots, off, arity, src);
  }
}

void copy_row(Policy p, const double* src, i64 src_step, double* dst,
              i64 dst_step, i64 count, int arity) {
  if (p != Policy::kSequential && arity == 1) {
    CTILE_PRAGMA_SIMD
    for (i64 i = 0; i < count; ++i) dst[i * dst_step] = src[i * src_step];
    return;
  }
  for (i64 i = 0; i < count; ++i) {
    const double* s = src + i * src_step;
    double* d = dst + i * dst_step;
    for (int v = 0; v < arity; ++v) d[v] = s[v];
  }
}

}  // namespace ctile::exec
