#include "runtime/compiled_plan.hpp"

#include <chrono>

#include "linalg/int_matops.hpp"
#include "runtime/kernel.hpp"

namespace ctile {

namespace {

using Clock = std::chrono::steady_clock;

/// Tiny phase stopwatch: seconds since construction.
struct Timer {
  Clock::time_point start = Clock::now();
  double operator()() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

std::vector<TtisRegion> pack_regions_of(const CommPlan& plan) {
  std::vector<TtisRegion> regions;
  regions.reserve(plan.directions().size());
  for (const auto& dir : plan.directions()) regions.push_back(dir.pack);
  return regions;
}

// Any valid tile index.  point_of is only guaranteed integral at real
// tiles, so the row plan's j_rel differences are probed through one.
VecI first_valid_tile(const Mapping& mapping) {
  for (int rank = 0; rank < mapping.num_procs(); ++rank) {
    const VecI pid = mapping.pid_of(rank);
    const IntRange window = mapping.chain_window(pid);
    for (i64 t = window.lo; t <= window.hi; ++t) {
      const VecI js = mapping.tile_at(pid, t);
      if (mapping.valid(js)) return js;
    }
  }
  CTILE_ASSERT_MSG(false, "mapping holds no valid tile");
  return VecI{};
}

}  // namespace

void PlanPhaseTimes::accumulate(const PlanPhaseTimes& o) {
  tile_space_s += o.tile_space_s;
  census_s += o.census_s;
  mapping_s += o.mapping_s;
  lds_s += o.lds_s;
  comm_plan_s += o.comm_plan_s;
  classifier_s += o.classifier_s;
  band_s += o.band_s;
  locals_s += o.locals_s;
  total_s += o.total_s;
}

/// The parallel lowering, grouped so sequential plans pay nothing for
/// it.  Members are optionals emplaced one phase at a time (they have no
/// default constructors and each phase is timed); the struct lives on
/// the heap so every cross-pointer (census inside mapping, mapping/LDS
/// inside the comm plan) stays stable for the plan's lifetime.
struct CompiledPlan::ParallelArtifacts {
  std::optional<TileCensus> census;
  std::optional<Mapping> mapping;
  std::optional<LdsLayout> lds;
  std::optional<CommPlan> plan;
  std::vector<TtisRegion> pack_regions;
  std::optional<BandSplit> band;
  std::map<i64, std::unique_ptr<RankLocal>> locals;  // by window length
};

CompiledPlan::RankLocal::RankLocal(const TiledNest& tiled,
                                   const Mapping& mapping,
                                   const CommPlan& plan, i64 chain_len)
    : layout(tiled, mapping, chain_len),
      slots(plan, tiled.transform(), layout) {
  const TilingTransform& tf = tiled.transform();
  const MatI dprime = tiled.ttis_deps();
  const int q = dprime.cols();
  const int n = tiled.nest().depth;
  // j_rel is tile-invariant (point_of(js, a) - point_of(js, b) =
  // P'(a - b) for any js), so probe through one valid tile.
  const VecI js = first_valid_tile(mapping);
  VecI j_front;
  for (TtisRowWalker row(tf, full_ttis_region(tf)); row.valid(); row.next()) {
    const VecI& jp0 = row.row_start();
    VecI j_rel = tf.point_of(js, jp0);
    if (rows.empty()) {
      jp0_front = jp0;
      j_front = j_rel;
    }
    for (int k = 0; k < n; ++k) {
      j_rel[static_cast<std::size_t>(k)] -= j_front[static_cast<std::size_t>(k)];
    }
    rows.push_back(SweepRow{jp0[0], row.row_points(), layout.row_base(jp0, 0),
                            std::move(j_rel)});
    // The slot deltas and, from them, the static in-row alias claims:
    // dep slot = out slot + delta, so diff = out - dep = -delta, and the
    // in-row step is stride(n-1).  Same alias analysis the kernels'
    // runtime pointer probe answers (arity scales diff and stride
    // equally, so it cancels).
    const i64 sstep = layout.stride(n - 1);
    for (int l = 0; l < q; ++l) {
      const i64 delta = layout.dep_delta(jp0, dprime.col(l));
      deltas.push_back(delta);
      alias.push_back(
          Kernel::row_alias_distance(-delta, sstep, row.row_points()));
    }
  }
}

CompiledPlan::CompiledPlan(Kind kind, TiledNest tiled, LoweringKnobs knobs)
    : kind_(kind), tiled_(std::move(tiled)), knobs_(std::move(knobs)) {
  const Timer total;
  // kThreadPool legality: the rows of a fixed-j'_0 plane are mutually
  // independent iff every TTIS dependence advances the outermost
  // coordinate (d'_0 >= 1) — then any point's predecessors live in
  // strictly earlier planes, and planes are swept in order.
  const MatI dprime = tiled_.ttis_deps();
  plane_parallel_ = true;
  for (int l = 0; l < dprime.cols(); ++l) {
    if (dprime(0, l) < 1) plane_parallel_ = false;
  }

  if (kind_ == Kind::kSequential) {
    // The census-free classification the sequential executor always
    // used: corner probes alone decide, so non-integral P is served too.
    const Timer t;
    classifier_.emplace(tiled_);
    phases_.classifier_s = t();
    phases_.total_s = total();
    return;
  }

  par_ = std::make_unique<ParallelArtifacts>();
  {
    const Timer t;
    par_->census.emplace(knobs_.census_from_box
                             ? TileCensus::from_box(tiled_, knobs_.orig_lo,
                                                    knobs_.orig_hi, knobs_.skew)
                             : TileCensus(tiled_));
    phases_.census_s = t();
  }
  {
    const Timer t;
    par_->mapping.emplace(tiled_, knobs_.force_m, &*par_->census);
    phases_.mapping_s = t();
  }
  {
    const Timer t;
    par_->lds.emplace(tiled_, *par_->mapping);
    phases_.lds_s = t();
  }
  {
    const Timer t;
    par_->plan.emplace(tiled_, *par_->mapping, *par_->lds);
    par_->pack_regions = pack_regions_of(*par_->plan);
    phases_.comm_plan_s = t();
  }
  {
    const Timer t;
    classifier_.emplace(tiled_, &*par_->census, &par_->pack_regions);
    phases_.classifier_s = t();
  }
  {
    const Timer t;
    par_->band.emplace(tiled_.transform(), par_->pack_regions);
    phases_.band_s = t();
  }
  {
    // One layout + slot-table bundle per distinct chain-window length:
    // processors with equally long chains share byte-identical tables,
    // so the setup cost is O(#distinct lengths), not O(#processors).
    const Timer t;
    const Mapping& mapping = *par_->mapping;
    for (int rank = 0; rank < mapping.num_procs(); ++rank) {
      const IntRange window = mapping.chain_window(mapping.pid_of(rank));
      if (window.empty()) continue;
      const i64 len = window.count();
      if (par_->locals.find(len) == par_->locals.end()) {
        par_->locals.emplace(len, std::make_unique<RankLocal>(
                                      tiled_, mapping, *par_->plan, len));
      }
    }
    phases_.locals_s = t();
  }
  phases_.total_s = total();
}

std::shared_ptr<const CompiledPlan> CompiledPlan::compile_parallel(
    TiledNest tiled, const LoweringKnobs& knobs) {
  return std::shared_ptr<const CompiledPlan>(
      new CompiledPlan(Kind::kParallel, std::move(tiled), knobs));
}

std::shared_ptr<const CompiledPlan> CompiledPlan::compile_parallel(
    const LoopNest& nest, const MatQ& h, const LoweringKnobs& knobs) {
  const Timer t;
  TiledNest tiled(nest, TilingTransform(h));
  const double tile_space_s = t();
  auto plan = std::shared_ptr<CompiledPlan>(
      new CompiledPlan(Kind::kParallel, std::move(tiled), knobs));
  plan->phases_.tile_space_s = tile_space_s;
  plan->phases_.total_s += tile_space_s;
  return plan;
}

std::shared_ptr<const CompiledPlan> CompiledPlan::compile_sequential(
    TiledNest tiled) {
  return std::shared_ptr<const CompiledPlan>(
      new CompiledPlan(Kind::kSequential, std::move(tiled), LoweringKnobs{}));
}

std::shared_ptr<const CompiledPlan> CompiledPlan::compile_sequential(
    const LoopNest& nest, const MatQ& h) {
  const Timer t;
  TiledNest tiled(nest, TilingTransform(h));
  const double tile_space_s = t();
  auto plan = std::shared_ptr<CompiledPlan>(new CompiledPlan(
      Kind::kSequential, std::move(tiled), LoweringKnobs{}));
  plan->phases_.tile_space_s = tile_space_s;
  plan->phases_.total_s += tile_space_s;
  return plan;
}

const TileCensus& CompiledPlan::census() const {
  CTILE_ASSERT_MSG(par_ != nullptr, "census(): plan not parallel-lowered");
  return *par_->census;
}

const Mapping& CompiledPlan::mapping() const {
  CTILE_ASSERT_MSG(par_ != nullptr, "mapping(): plan not parallel-lowered");
  return *par_->mapping;
}

const LdsLayout& CompiledPlan::lds() const {
  CTILE_ASSERT_MSG(par_ != nullptr, "lds(): plan not parallel-lowered");
  return *par_->lds;
}

const CommPlan& CompiledPlan::comm_plan() const {
  CTILE_ASSERT_MSG(par_ != nullptr, "comm_plan(): plan not parallel-lowered");
  return *par_->plan;
}

const std::vector<TtisRegion>& CompiledPlan::pack_regions() const {
  CTILE_ASSERT_MSG(par_ != nullptr,
                   "pack_regions(): plan not parallel-lowered");
  return par_->pack_regions;
}

const BandSplit& CompiledPlan::band() const {
  CTILE_ASSERT_MSG(par_ != nullptr, "band(): plan not parallel-lowered");
  return *par_->band;
}

const CompiledPlan::RankLocal& CompiledPlan::local_for(i64 chain_len) const {
  CTILE_ASSERT_MSG(par_ != nullptr, "local_for(): plan not parallel-lowered");
  auto it = par_->locals.find(chain_len);
  CTILE_ASSERT_MSG(it != par_->locals.end(),
                   "no cached layout for this chain-window length");
  return *it->second;
}

std::vector<std::pair<i64, const LdsLayout*>> CompiledPlan::window_layouts()
    const {
  CTILE_ASSERT_MSG(par_ != nullptr,
                   "window_layouts(): plan not parallel-lowered");
  std::vector<std::pair<i64, const LdsLayout*>> out;
  out.reserve(par_->locals.size());
  for (const auto& [len, local] : par_->locals) {
    out.emplace_back(len, &local->layout);
  }
  return out;
}

void CompiledPlan::run_gate_memoized(
    const std::function<void()>& gate) const {
  std::lock_guard<std::mutex> lock(gate_mu_);
  if (gate_err_) std::rethrow_exception(gate_err_);
  if (gate_ok_) return;
  try {
    gate();
    gate_ok_ = true;
  } catch (...) {
    gate_err_ = std::current_exception();
    throw;
  }
}

void CompiledPlan::invalidate_gate_memo() const {
  std::lock_guard<std::mutex> lock(gate_mu_);
  gate_ok_ = false;
  gate_err_ = nullptr;
}

}  // namespace ctile
