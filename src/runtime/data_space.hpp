// Dense global Data Space (DS) over the bounding box of an iteration
// space: the reference storage for the sequential executor and the target
// of the parallel write-back (Figure 4: LDS -> J^n -> DS via f_w; the
// write reference here is the identity, the paper's notational default).
#pragma once

#include <vector>

#include "poly/polyhedron.hpp"
#include "runtime/kernel.hpp"

namespace ctile {

class DataSpace {
 public:
  /// Storage covering the bounding box of `space`, `arity` doubles per
  /// point, zero-initialized.
  DataSpace(const Polyhedron& space, int arity);

  int arity() const { return arity_; }

  /// True iff j lies inside the allocated box.
  bool in_box(const VecI& j) const;

  /// Pointer to the `arity` doubles of point j (must be in the box).
  double* at(const VecI& j);
  const double* at(const VecI& j) const;

  i64 points() const { return static_cast<i64>(data_.size()) / arity_; }

  /// Linear double-offset of point j: at(j) == at_offset(offset(j)).
  /// Exposed for strength-reduced sweeps, where the offset advances
  /// affinely (see offset_step) instead of being recomputed per point.
  i64 offset(const VecI& j) const { return index(j); }

  /// Offset increment of moving by dj: offset(j + dj) - offset(j) for
  /// every j (row-major layout; dj may be negative, no range check).
  i64 offset_step(const VecI& dj) const;

  /// Direct storage access by offset (must be in range).
  double* at_offset(i64 off) {
    CTILE_ASSERT(off >= 0 && off < static_cast<i64>(data_.size()));
    return &data_[static_cast<std::size_t>(off)];
  }
  const double* at_offset(i64 off) const {
    CTILE_ASSERT(off >= 0 && off < static_cast<i64>(data_.size()));
    return &data_[static_cast<std::size_t>(off)];
  }

  /// Max absolute difference over all points of `space` between two data
  /// spaces (for test comparisons).
  static double max_abs_diff(const DataSpace& a, const DataSpace& b,
                             const Polyhedron& space);

 private:
  int arity_;
  VecI lo_;
  VecI ext_;
  std::vector<double> data_;

  i64 index(const VecI& j) const;
};

/// Reference semantics: execute the nest sequentially in lexicographic
/// order (the original loop order; legal because dependencies are
/// lexicographically positive), reading outside-space values from
/// kernel.initial.  Returns the filled data space.
DataSpace run_sequential(const Polyhedron& space, const MatI& deps,
                         const Kernel& kernel);

}  // namespace ctile
