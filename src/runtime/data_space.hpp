// Dense global Data Space (DS) over the bounding box of an iteration
// space: the reference storage for the sequential executor and the target
// of the parallel write-back (Figure 4: LDS -> J^n -> DS via f_w; the
// write reference here is the identity, the paper's notational default).
#pragma once

#include <vector>

#include "poly/polyhedron.hpp"
#include "runtime/kernel.hpp"

namespace ctile {

class DataSpace {
 public:
  /// Storage covering the bounding box of `space`, `arity` doubles per
  /// point, zero-initialized.
  DataSpace(const Polyhedron& space, int arity);

  int arity() const { return arity_; }

  /// True iff j lies inside the allocated box.
  bool in_box(const VecI& j) const;

  /// Pointer to the `arity` doubles of point j (must be in the box).
  double* at(const VecI& j);
  const double* at(const VecI& j) const;

  i64 points() const { return static_cast<i64>(data_.size()) / arity_; }

  /// Max absolute difference over all points of `space` between two data
  /// spaces (for test comparisons).
  static double max_abs_diff(const DataSpace& a, const DataSpace& b,
                             const Polyhedron& space);

 private:
  int arity_;
  VecI lo_;
  VecI ext_;
  std::vector<double> data_;

  i64 index(const VecI& j) const;
};

/// Reference semantics: execute the nest sequentially in lexicographic
/// order (the original loop order; legal because dependencies are
/// lexicographically positive), reading outside-space values from
/// kernel.initial.  Returns the filled data space.
DataSpace run_sequential(const Polyhedron& space, const MatI& deps,
                         const Kernel& kernel);

}  // namespace ctile
