#include "runtime/plan_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace ctile {

namespace {

using Clock = std::chrono::steady_clock;

// ---- Canonical byte serialization.
//
// Fixed-width little-endian integers regardless of host endianness and
// of what i64 aliases, so the bytes (and the digest) are platform- and
// refactor-stable.  Each composite is preceded by its element count —
// the encoding is prefix-free, so no two distinct inputs can serialize
// to the same bytes.

void put_i64(std::string& out, i64 v) {
  u64 u = static_cast<u64>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(u & 0xffu));
    u >>= 8;
  }
}

void put_u8(std::string& out, unsigned char v) {
  out.push_back(static_cast<char>(v));
}

// Doubles enter the key by their IEEE-754 bit pattern, little-endian:
// the machine-model fields are configuration constants (never results
// of arithmetic), so bit equality is exactly the identity we want and
// the bytes stay platform-stable.
void put_f64(std::string& out, double v) {
  static_assert(sizeof(double) == sizeof(u64));
  u64 u = 0;
  std::memcpy(&u, &v, sizeof u);
  put_i64(out, static_cast<i64>(u));
}

void put_veci(std::string& out, const VecI& v) {
  put_i64(out, static_cast<i64>(v.size()));
  for (i64 x : v) put_i64(out, x);
}

void put_mati(std::string& out, const MatI& m) {
  put_i64(out, m.rows());
  put_i64(out, m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) put_i64(out, m(r, c));
  }
}

void put_matq(std::string& out, const MatQ& m) {
  put_i64(out, m.rows());
  put_i64(out, m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      // Rats are kept reduced with positive denominator, so (num, den)
      // is already the canonical form of the rational.
      put_i64(out, m(r, c).num());
      put_i64(out, m(r, c).den());
    }
  }
}

// Constraints are gcd-normalized on insertion (constraint.hpp), so
// sorting is all that is needed to erase insertion-order differences
// between two descriptions of the same polyhedron.
void put_space(std::string& out, const Polyhedron& space) {
  put_i64(out, space.dim());
  std::vector<Constraint> cons = space.constraints();
  std::sort(cons.begin(), cons.end());
  put_i64(out, static_cast<i64>(cons.size()));
  for (const Constraint& c : cons) {
    put_veci(out, c.coeffs);
    put_i64(out, c.constant);
  }
}

}  // namespace

u64 fnv1a64(const std::string& bytes) {
  u64 h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<u64>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string PlanKey::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, 16);
}

PlanKey make_plan_key(const LoopNest& nest, const MatQ& h,
                      CompiledPlan::Kind kind, const LoweringKnobs& knobs) {
  PlanKey key;
  std::string& out = key.bytes;
  out.reserve(256);
  // Format magic + version.  v2 appended the optional machine-model
  // fields; every format revision must bump the version digit so old
  // and new keys can never collide byte-for-byte.
  out.append("CTPK2");
  put_u8(out, kind == CompiledPlan::Kind::kParallel ? 1 : 0);
  // The nest's name is deliberately NOT serialized: lowering depends
  // only on the space and the dependence matrix.  Dependence column
  // order IS identity — kernels index dependence values by column.
  put_i64(out, nest.depth);
  put_space(out, nest.space);
  put_mati(out, nest.deps);
  put_matq(out, h);
  put_i64(out, knobs.force_m);
  put_u8(out, knobs.census_from_box ? 1 : 0);
  if (knobs.census_from_box) {
    put_veci(out, knobs.orig_lo);
    put_veci(out, knobs.orig_hi);
    put_mati(out, knobs.skew);
  }
  put_u8(out, knobs.machine.has_value() ? 1 : 0);
  if (knobs.machine.has_value()) {
    const MachineKeyFields& m = *knobs.machine;
    put_f64(out, m.sec_per_iter);
    put_f64(out, m.latency);
    put_f64(out, m.bandwidth);
    put_f64(out, m.per_byte_overhead);
    put_f64(out, m.per_message_overhead);
    put_i64(out, m.bytes_per_value);
  }
  key.digest = fnv1a64(out);
  return key;
}

PlanKey make_plan_key(const TiledNest& tiled, CompiledPlan::Kind kind,
                      const LoweringKnobs& knobs) {
  return make_plan_key(tiled.nest(), tiled.transform().H(), kind, knobs);
}

std::shared_ptr<const CompiledPlan> PlanCache::get_or_lower(
    const PlanKey& key,
    const std::function<std::shared_ptr<const CompiledPlan>()>& lower,
    bool* was_hit) {
  std::shared_future<std::shared_ptr<const CompiledPlan>> future;
  std::promise<std::shared_ptr<const CompiledPlan>> promise;
  bool owner = false;
  u64 generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key.bytes);
    if (it != map_.end()) {
      stats_.hits += 1;
      if (!it->second.ready) stats_.waits += 1;
      future = it->second.future;
    } else {
      stats_.misses += 1;
      owner = true;
      generation = generation_;
      Entry entry;
      entry.future = promise.get_future().share();
      entry.generation = generation;
      future = entry.future;
      map_.emplace(key.bytes, std::move(entry));
    }
  }
  if (was_hit != nullptr) *was_hit = !owner;

  if (owner) {
    std::shared_ptr<const CompiledPlan> plan;
    const Clock::time_point start = Clock::now();
    try {
      plan = lower();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.failures += 1;
        auto it = map_.find(key.bytes);
        // Only erase our own entry: clear() may have removed it, and a
        // retry may have raced a fresh one into the same slot.
        if (it != map_.end() && it->second.generation == generation &&
            !it->second.ready) {
          map_.erase(it);
        }
      }
      promise.set_exception(std::current_exception());
      throw;
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.lowering_s += elapsed;
      if (plan != nullptr) stats_.phase_total.accumulate(plan->phase_times());
      auto it = map_.find(key.bytes);
      if (it != map_.end() && it->second.generation == generation) {
        it->second.ready = true;
        fifo_.push_back(key.bytes);
        evict_if_needed_locked();
      }
    }
    promise.set_value(plan);
    return plan;
  }

  return future.get();  // rethrows the owner's exception for waiters
}

std::shared_ptr<const CompiledPlan> PlanCache::parallel_plan(
    const LoopNest& nest, const MatQ& h, const LoweringKnobs& knobs,
    bool* was_hit) {
  const PlanKey key = make_plan_key(nest, h, CompiledPlan::Kind::kParallel,
                                    knobs);
  return get_or_lower(
      key, [&] { return CompiledPlan::compile_parallel(nest, h, knobs); },
      was_hit);
}

std::shared_ptr<const CompiledPlan> PlanCache::sequential_plan(
    const LoopNest& nest, const MatQ& h, bool* was_hit) {
  const PlanKey key =
      make_plan_key(nest, h, CompiledPlan::Kind::kSequential);
  return get_or_lower(
      key, [&] { return CompiledPlan::compile_sequential(nest, h); },
      was_hit);
}

std::shared_ptr<const CompiledPlan> PlanCache::lookup(
    const PlanKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key.bytes);
  if (it == map_.end() || !it->second.ready) return nullptr;
  return it->second.future.get();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  generation_ += 1;  // fences in-flight completions out of re-insertion
  map_.clear();
  fifo_.clear();
  stats_ = Stats{};
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  evict_if_needed_locked();
}

void PlanCache::evict_if_needed_locked() {
  if (capacity_ == 0) return;
  while (fifo_.size() > capacity_) {
    const std::string victim = std::move(fifo_.front());
    fifo_.pop_front();
    auto it = map_.find(victim);
    if (it != map_.end() && it->second.ready) {
      map_.erase(it);
      stats_.evictions += 1;
    }
  }
}

PlanCache& global_plan_cache() {
  static PlanCache* cache = new PlanCache();  // intentionally leaked
  return *cache;
}

}  // namespace ctile
