#include "verify/diagnostic.hpp"

#include <sstream>

namespace ctile::verify {

const char* rule_id(Rule rule) {
  switch (rule) {
    case Rule::kV1TilingLegality: return "V1";
    case Rule::kV2HaloSufficiency: return "V2";
    case Rule::kV3CommCompleteness: return "V3";
    case Rule::kV4ScheduleSoundness: return "V4";
    case Rule::kV5InteriorSoundness: return "V5";
    case Rule::kV6RaceFreedom: return "V6";
    case Rule::kV7BufferLifetime: return "V7";
    case Rule::kV8PolicySoundness: return "V8";
  }
  return "V?";
}

const char* rule_summary(Rule rule) {
  switch (rule) {
    case Rule::kV1TilingLegality:
      return "tiling legality: H D >= 0 and tile dependencies "
             "lexicographically non-negative";
    case Rule::kV2HaloSufficiency:
      return "halo sufficiency: every LDS, slot-table and dep_delta "
             "access provably in-bounds";
    case Rule::kV3CommCompleteness:
      return "communication completeness: every cross-rank dependence "
             "edge covered by exactly one packed message";
    case Rule::kV4ScheduleSoundness:
      return "schedule soundness: Pi strictly orders every dependence "
             "and the send/recv order is deadlock-free";
    case Rule::kV5InteriorSoundness:
      return "interior-classifier soundness: no interior tile has a "
             "dependence predecessor outside the iteration space";
    case Rule::kV6RaceFreedom:
      return "race freedom: every conflicting pair of LDS-slot accesses "
             "in the pipelined schedule is happens-before ordered";
    case Rule::kV7BufferLifetime:
      return "buffer lifetime: no pack region is rewritten while a "
             "message is in flight and pool recycling never aliases one";
    case Rule::kV8PolicySoundness:
      return "parallel-policy soundness: plane-parallel fan-out and SIMD "
             "recurrence-split alias claims proven against the TTIS deps";
  }
  return "";
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string format_vec(const VecI& v) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ',';
    os << v[i];
  }
  os << ')';
  return os.str();
}

std::string Witness::to_string() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&]() {
    if (!first) os << ' ';
    first = false;
  };
  if (tile) {
    sep();
    os << "tile=" << format_vec(*tile);
  }
  if (point) {
    sep();
    os << "point=" << format_vec(*point);
  }
  if (dep) {
    sep();
    os << "dep=" << format_vec(*dep);
  }
  if (lds_slot) {
    sep();
    os << "lds_slot=" << *lds_slot;
  }
  if (dim) {
    sep();
    os << "dim=" << *dim;
  }
  return os.str();
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << '[' << rule_id(rule) << "]: " << message;
  if (!witness.empty()) os << " | witness: " << witness.to_string();
  if (!fix_hint.empty()) os << " | fix: " << fix_hint;
  return os.str();
}

bool VerifyReport::ok() const {
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

i64 VerifyReport::count(Severity severity) const {
  i64 n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

i64 VerifyReport::count(Rule rule) const {
  i64 n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) ++n;
  }
  return n;
}

const Diagnostic* VerifyReport::first(Rule rule) const {
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.to_string() << '\n';
  if (diags_.empty()) {
    os << "ctile-verify: 0 findings (plan proven safe under V1-V8)\n";
  } else {
    os << "ctile-verify: " << diags_.size() << " finding"
       << (diags_.size() == 1 ? "" : "s") << " (" << count(Severity::kError)
       << " error" << (count(Severity::kError) == 1 ? "" : "s") << ")\n";
  }
  return os.str();
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << ch;
    }
  }
  os << '"';
}

void json_vec(std::ostream& os, const VecI& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ',';
    os << v[i];
  }
  os << ']';
}

}  // namespace

std::string VerifyReport::to_json() const {
  std::ostringstream os;
  os << "{\"ok\":" << (ok() ? "true" : "false") << ",\"findings\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i != 0) os << ',';
    os << "{\"rule\":\"" << rule_id(d.rule) << "\",\"severity\":\""
       << severity_name(d.severity) << "\",\"message\":";
    json_escape(os, d.message);
    os << ",\"witness\":{";
    bool first = true;
    auto field = [&](const char* name) -> std::ostream& {
      if (!first) os << ',';
      first = false;
      os << '"' << name << "\":";
      return os;
    };
    if (d.witness.tile) json_vec(field("tile"), *d.witness.tile);
    if (d.witness.point) json_vec(field("point"), *d.witness.point);
    if (d.witness.dep) json_vec(field("dep"), *d.witness.dep);
    if (d.witness.lds_slot) field("lds_slot") << *d.witness.lds_slot;
    if (d.witness.dim) field("dim") << *d.witness.dim;
    os << "},\"fix_hint\":";
    json_escape(os, d.fix_hint);
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace ctile::verify
