#include "verify/gate.hpp"

#include "support/error.hpp"

namespace ctile::verify {

VerifyReport verify_executor(const ParallelExecutor& exec,
                             const VerifyOptions& options) {
  // Snapshot the executor's CompiledPlan so the gate proves V6-V8's
  // concurrency facts too, against the schedule the executor will run.
  PlanModel model = snapshot_compiled(*exec.compiled());
  model.pipelined = exec.use_overlap();
  return verify_plan(model, options);
}

namespace {

void throw_on_findings(const VerifyReport& report) {
  if (report.ok()) return;
  throw LegalityError("verify-before-run gate rejected the plan:\n" +
                      report.to_string());
}

}  // namespace

void enable_verify_before_run(ParallelExecutor& exec,
                              const VerifyOptions& options) {
  exec.set_pre_run_gate(
      [&exec, options]() { throw_on_findings(verify_executor(exec, options)); });
}

void enable_verify_before_run(SequentialTiledExecutor& exec,
                              const VerifyOptions& options) {
  exec.set_pre_run_gate([&exec, options]() {
    throw_on_findings(verify_tiling(exec.tiled(), -1, options));
  });
}

}  // namespace ctile::verify
