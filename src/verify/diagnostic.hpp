// Structured diagnostics for the static plan verifier (ctile-verify).
//
// Every finding names the rule that fired (V1..V8), a severity, a
// human-readable message, a *witness* — the concrete tile / point / LDS
// slot / dependence that violates the rule, so a failing plan is
// debuggable without re-running anything — and a fix hint.  A report is
// the ordered list of findings of one verification run; `ok()` is the
// gate predicate (no errors).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace ctile::verify {

/// The legality / schedule rules of the verifier.
enum class Rule {
  kV1TilingLegality,      ///< H D >= 0 and tile deps lex-nonnegative
  kV2HaloSufficiency,     ///< every LDS / slot-table access in-bounds
  kV3CommCompleteness,    ///< every cross-rank dep edge covered once
  kV4ScheduleSoundness,   ///< Pi orders every dep; send/recv acyclic
  kV5InteriorSoundness,   ///< interior tiles have no out-of-space preds
  kV6RaceFreedom,         ///< conflicting LDS accesses HB-ordered
  kV7BufferLifetime,      ///< no in-flight message buffer rewritten/aliased
  kV8PolicySoundness,     ///< plane fan-out + SIMD alias claims proven
};

enum class Severity { kError, kWarning, kNote };

/// Short stable identifier ("V1".."V8") used in output and tests.
const char* rule_id(Rule rule);
/// One-line statement of what the rule proves.
const char* rule_summary(Rule rule);
const char* severity_name(Severity severity);

/// The concrete object a finding points at.  All fields optional; a
/// rule fills in whichever coordinates make the violation reproducible.
struct Witness {
  std::optional<VecI> tile;      ///< tile-space coordinates j^S
  std::optional<VecI> point;     ///< iteration point j or TTIS point j'
  std::optional<VecI> dep;       ///< dependence column involved
  std::optional<i64> lds_slot;   ///< concrete out-of-bounds linear slot
  std::optional<int> dim;        ///< dimension index k (0-based)

  bool empty() const {
    return !tile && !point && !dep && !lds_slot && !dim;
  }
  std::string to_string() const;
};

struct Diagnostic {
  Rule rule;
  Severity severity = Severity::kError;
  std::string message;
  Witness witness;
  std::string fix_hint;

  /// "error[V2]: halo too small ... | witness: tile=(1,0,2) ... | fix: ..."
  std::string to_string() const;
};

class VerifyReport {
 public:
  void add(Diagnostic diag) { diags_.push_back(std::move(diag)); }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }

  /// True iff no error-severity finding exists (the run/gate predicate).
  bool ok() const;

  i64 count(Severity severity) const;
  i64 count(Rule rule) const;

  /// First finding of `rule`, or nullptr (used by the mutation tests to
  /// assert which rule fired and with which witness).
  const Diagnostic* first(Rule rule) const;

  /// Multi-line human-readable rendering plus a one-line summary.
  std::string to_string() const;

  /// Machine-readable rendering (one JSON object, diagnostics array).
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Renders a vector as "(a,b,c)".
std::string format_vec(const VecI& v);

}  // namespace ctile::verify
