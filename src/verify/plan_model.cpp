#include "verify/plan_model.hpp"

#include <algorithm>

#include "linalg/int_matops.hpp"
#include "mpisim/mpisim.hpp"
#include "runtime/compiled_plan.hpp"
#include "runtime/mapping.hpp"
#include "tiling/ttis.hpp"

namespace ctile::verify {

bool PlanModel::is_valid_tile(const VecI& js) const {
  return std::binary_search(valid_tiles.begin(), valid_tiles.end(), js);
}

std::pair<VecI, i64> PlanModel::owner_of(const VecI& js) const {
  CTILE_ASSERT(static_cast<int>(js.size()) == n);
  VecI pid;
  pid.reserve(static_cast<std::size_t>(n - 1));
  i64 t = 0;
  for (int k = 0; k < n; ++k) {
    const i64 rel = sub_ck(js[static_cast<std::size_t>(k)],
                           mesh_lo[static_cast<std::size_t>(k)]);
    if (k == m) {
      t = rel;
    } else {
      pid.push_back(rel);
    }
  }
  return {pid, t};
}

bool PlanModel::on_mesh(const VecI& pid) const {
  if (pid.size() != grid.size()) return false;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (pid[i] < 0 || pid[i] >= grid[i]) return false;
  }
  return true;
}

IntRange PlanModel::window_of(const VecI& pid) const {
  auto it = windows.find(pid);
  if (it == windows.end()) return {1, 0};  // empty
  return it->second;
}

bool PlanModel::minsucc(const VecI& s, int dir, VecI* out) const {
  bool found = false;
  VecI best;
  for (const TileDepModel& dep : tile_deps) {
    if (dep.dir != dir) continue;
    VecI succ = vec_add(s, dep.ds);
    if (!is_valid_tile(succ)) continue;
    if (!found || lex_compare(succ, best) < 0) {
      best = std::move(succ);
      found = true;
    }
  }
  if (found) *out = best;
  return found;
}

namespace {

LdsModel snapshot_lds(const LdsLayout& layout, i64 window_len) {
  LdsModel out;
  out.window_len = window_len;
  const int n = layout.n();
  for (int k = 0; k < n; ++k) {
    out.off.push_back(layout.off(k));
    out.ext.push_back(layout.extent(k));
    out.tile_slots.push_back(layout.tile_slots(k));
    out.strides.push_back(layout.stride(k));
  }
  out.chain_step = layout.chain_step();
  out.size = layout.size();
  return out;
}

}  // namespace

PlanModel snapshot_plan(
    const TiledNest& tiled, const Mapping& mapping, const CommPlan& plan,
    const std::vector<std::pair<i64, const LdsLayout*>>& window_layouts,
    const TileClassifier* classifier) {
  PlanModel model;
  model.tiled = &tiled;
  const TilingTransform& tf = tiled.transform();
  model.n = tf.n();
  model.m = mapping.m();
  model.H = tf.H();
  model.D = tiled.nest().deps;
  model.Hp = tf.Hp();
  for (int k = 0; k < model.n; ++k) {
    model.v.push_back(tf.v(k));
    model.c.push_back(tf.stride(k));
  }
  model.Dp = tiled.ttis_deps();

  // The paper's linear schedule Pi = [1,...,1].
  model.pi.assign(static_cast<std::size_t>(model.n), 1);

  model.chain_length = mapping.chain_length();

  for (int k = 0; k < model.n; ++k) {
    i64 dmax = 0;
    for (int l = 0; l < model.Dp.cols(); ++l) {
      dmax = std::max(dmax, model.Dp(k, l));
    }
    model.dep_max.push_back(dmax);
    model.cc.push_back(sub_ck(tf.v(k), dmax));
  }

  model.mesh_lo = mapping.tile_lo();
  model.mesh_hi = mapping.tile_hi();
  model.grid = mapping.grid();

  // Valid tiles in lexicographic order (the bounding box scan visits
  // them lex-ordered already).
  VecI js = model.mesh_lo;
  for (;;) {
    if (mapping.valid(js)) model.valid_tiles.push_back(js);
    int k = model.n;
    while (k-- > 0) {
      if (++js[static_cast<std::size_t>(k)] <=
          model.mesh_hi[static_cast<std::size_t>(k)]) {
        break;
      }
      js[static_cast<std::size_t>(k)] = model.mesh_lo[static_cast<std::size_t>(k)];
    }
    if (k < 0) break;
  }

  for (int rank = 0; rank < mapping.num_procs(); ++rank) {
    const VecI pid = mapping.pid_of(rank);
    const IntRange window = mapping.chain_window(pid);
    if (!window.empty()) model.windows.emplace(pid, window);
  }

  for (const ProcDir& dir : plan.directions()) {
    model.directions.push_back({dir.dm, dir.pack});
  }
  for (const TileDep& dep : plan.tile_deps()) {
    model.tile_deps.push_back({dep.ds, dep.dm, dep.dir});
  }

  for (const auto& [len, layout] : window_layouts) {
    if (layout == nullptr) continue;
    model.lds.emplace(len, snapshot_lds(*layout, len));
  }

  if (classifier != nullptr) {
    for (const VecI& tile : model.valid_tiles) {
      if (classifier->interior(tile)) model.interior_tiles.push_back(tile);
    }
  }
  return model;
}

PlanModel snapshot_compiled(const CompiledPlan& plan) {
  PlanModel model =
      snapshot_plan(plan.tiled(), plan.mapping(), plan.comm_plan(),
                    plan.window_layouts(), &plan.classifier());

  // ---- Concurrency facts (V6-V8). ----
  model.has_concurrency_facts = true;

  // Row geometry of the full tile, in the exact order the runtime's
  // hoisted row plans and the BandSplit index it.
  const TilingTransform& tf = plan.tiled().transform();
  for (TtisRowWalker row(tf, full_ttis_region(tf)); row.valid();
       row.next()) {
    RowModel rm;
    rm.plane = row.row_start()[0];
    rm.count = row.row_points();
    rm.start = row.row_start();
    model.rows.push_back(std::move(rm));
  }

  const BandSplit& band = plan.band();
  CTILE_ASSERT(band.rows() == model.rows.size());
  for (std::size_t r = 0; r < band.rows(); ++r) {
    model.band_split.push_back(band.split(r));
  }

  // Per-window row-plan claims (bases, deltas, alias distances).
  for (auto& [len, lm] : model.lds) {
    const CompiledPlan::RankLocal& rl = plan.local_for(len);
    CTILE_ASSERT(rl.rows.size() == model.rows.size());
    for (const CompiledPlan::SweepRow& row : rl.rows) {
      lm.row_bases.push_back(row.base0);
    }
    lm.deltas = rl.deltas;
    lm.alias = rl.alias;
  }

  // The executors' phase ordering (ScheduleModel defaults describe the
  // shipped schedule) and mpisim's pool discipline.
  model.schedule = ScheduleModel{};
  model.pool.eager_transit_copy = mpisim::kPoolDiscipline.eager_transit_copy;
  model.pool.sender_buffer_recycled_at_initiation =
      mpisim::kPoolDiscipline.sender_buffer_recycled_at_initiation;
  model.pool.transit_released_after_unpack =
      mpisim::kPoolDiscipline.transit_released_after_unpack;
  model.pool.max_pooled_buffers =
      static_cast<i64>(mpisim::kPoolDiscipline.max_pooled_buffers);

  model.plane_parallel_claim = plan.plane_parallel();
  return model;
}

PlanModel lower_and_snapshot(const TiledNest& tiled, int force_m) {
  // The executors' own lowering (CompiledPlan::compile_parallel), so the
  // snapshot carries every concurrency fact V6-V8 prove.  The plan is
  // released on return; repoint the spec reference at the caller's
  // (equivalent) nest so the model never dangles.
  LoweringKnobs knobs;
  knobs.force_m = force_m;
  const std::shared_ptr<const CompiledPlan> plan =
      CompiledPlan::compile_parallel(TiledNest(tiled), knobs);
  PlanModel model = snapshot_compiled(*plan);
  model.tiled = &tiled;
  return model;
}

void for_each_receive_event(
    const PlanModel& pm,
    const std::function<void(const VecI&, std::size_t, const VecI&)>& fn) {
  for (const VecI& js : pm.valid_tiles) {
    for (std::size_t di = 0; di < pm.tile_deps.size(); ++di) {
      const TileDepModel& dep = pm.tile_deps[di];
      if (dep.dir < 0) continue;
      const VecI pred = vec_sub(js, dep.ds);
      if (!pm.is_valid_tile(pred)) continue;
      VecI ms;
      if (!pm.minsucc(pred, dep.dir, &ms) || ms != js) continue;
      fn(pred, di, js);
    }
  }
}

}  // namespace ctile::verify
