#include "verify/hb_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>

#include "linalg/int_matops.hpp"
#include "verify/diagnostic.hpp"

namespace ctile::verify {

const char* hb_phase_name(HbPhase phase) {
  switch (phase) {
    case HbPhase::kRecvPost: return "recv-post";
    case HbPhase::kUnpack: return "unpack";
    case HbPhase::kRemainder: return "remainder-compute";
    case HbPhase::kBand: return "band-compute";
    case HbPhase::kCompute: return "compute";
    case HbPhase::kPackSend: return "pack+isend";
    case HbPhase::kWriteBack: return "write-back";
  }
  return "?";
}

std::string HbEvent::to_string() const {
  std::ostringstream os;
  os << "rank " << rank;
  if (!tile.empty()) os << " tile " << format_vec(tile);
  os << ' ' << hb_phase_name(phase);
  if (aux >= 0) {
    os << (phase == HbPhase::kPackSend ? " dir " : " dep ") << aux;
  }
  return os.str();
}

// Events are append-only and few per tile, so find() is a linear scan;
// an index map would have to be kept coherent across mutation hooks for
// no measurable gain at these sizes.
int HbGraph::find(const VecI& tile, HbPhase phase, int aux) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const HbEvent& e = events_[i];
    if (e.phase == phase && e.aux == aux && e.tile == tile) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int HbGraph::find_writeback(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(writebacks_.size())) return -1;
  return writebacks_[static_cast<std::size_t>(rank)];
}

int HbGraph::add_event(HbEvent event) {
  const int id = static_cast<int>(events_.size());
  if (event.phase == HbPhase::kWriteBack) {
    if (event.rank >= static_cast<int>(writebacks_.size())) {
      writebacks_.resize(static_cast<std::size_t>(event.rank) + 1, -1);
    }
    writebacks_[static_cast<std::size_t>(event.rank)] = id;
  }
  events_.push_back(std::move(event));
  succs_.emplace_back();
  return id;
}

void HbGraph::add_edge(int u, int v) {
  CTILE_ASSERT(u >= 0 && u < static_cast<int>(events_.size()) && v >= 0 &&
               v < static_cast<int>(events_.size()));
  succs_[static_cast<std::size_t>(u)].push_back(v);
}

bool HbGraph::drop_edge(int u, int v) {
  if (u < 0 || u >= static_cast<int>(succs_.size())) return false;
  auto& out = succs_[static_cast<std::size_t>(u)];
  auto it = std::find(out.begin(), out.end(), v);
  if (it == out.end()) return false;
  out.erase(it);
  return true;
}

std::size_t HbGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : succs_) n += out.size();
  return n;
}

bool HbGraph::reaches(int u, int v) const {
  if (u < 0 || v < 0) return false;
  if (u == v) return true;
  std::vector<char> seen(events_.size(), 0);
  std::deque<int> frontier{u};
  seen[static_cast<std::size_t>(u)] = 1;
  while (!frontier.empty()) {
    const int cur = frontier.front();
    frontier.pop_front();
    for (int next : succs_[static_cast<std::size_t>(cur)]) {
      if (next == v) return true;
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = 1;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

namespace {

/// Tile coordinates of (pid, t) under the model's mapping (the inverse
/// of PlanModel::owner_of).
VecI tile_of(const PlanModel& pm, const VecI& pid, i64 t) {
  VecI js(static_cast<std::size_t>(pm.n));
  std::size_t pi = 0;
  for (int k = 0; k < pm.n; ++k) {
    const std::size_t uk = static_cast<std::size_t>(k);
    js[uk] = pm.mesh_lo[uk] + (k == pm.m ? t : pid[pi++]);
  }
  return js;
}

/// The executor's send predicate: direction `dir` fires at `js` iff some
/// tile dependence of that direction has a valid successor.
bool sends_in_direction(const PlanModel& pm, const VecI& js, int dir) {
  for (const TileDepModel& dep : pm.tile_deps) {
    if (dep.dir != dir) continue;
    if (pm.is_valid_tile(vec_add(js, dep.ds))) return true;
  }
  return false;
}

}  // namespace

HbGraph build_hb_graph(const PlanModel& pm) {
  CTILE_ASSERT_MSG(pm.has_concurrency_facts,
                   "HB graph needs a CompiledPlan snapshot");
  HbGraph g;

  // Receive events per receiver tile (the executor's receive predicate).
  std::map<VecI, std::vector<std::pair<VecI, std::size_t>>> receives;
  for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                 const VecI& recv) {
    receives[recv].emplace_back(pred, di);
  });

  int rank = 0;
  for (const auto& [pid, window] : pm.windows) {
    std::vector<int> prev_sinks;
    auto stitch = [&](const std::vector<int>& ids,
                      const std::vector<std::pair<int, int>>& intra) {
      // Heads (no intra-tile predecessor) hang off the previous tile's
      // sinks; sinks (no intra-tile successor) feed the next tile.
      std::map<int, int> indeg, outdeg;
      for (int id : ids) indeg[id] = outdeg[id] = 0;
      for (const auto& [u, v] : intra) {
        g.add_edge(u, v);
        ++outdeg[u];
        ++indeg[v];
      }
      for (int id : ids) {
        if (indeg[id] == 0) {
          for (int s : prev_sinks) g.add_edge(s, id);
        }
      }
      prev_sinks.clear();
      for (int id : ids) {
        if (outdeg[id] == 0) prev_sinks.push_back(id);
      }
    };

    for (i64 t = window.lo; t <= window.hi; ++t) {
      const VecI js = tile_of(pm, pid, t);
      if (!pm.is_valid_tile(js)) continue;

      std::vector<int> ids;
      std::vector<std::pair<int, int>> intra;
      auto emit = [&](HbPhase phase, int aux) {
        const int id = g.add_event(HbEvent{rank, pid, js, t, phase, aux});
        ids.push_back(id);
        return id;
      };

      // Pre-phase: posted receives (pipelined only), then the unpacks
      // in receive order, sequentially chained.
      std::vector<int> pre;
      auto rit = receives.find(js);
      if (pm.pipelined && rit != receives.end()) {
        for (const auto& [pred, di] : rit->second) {
          (void)pred;
          pre.push_back(emit(HbPhase::kRecvPost, static_cast<int>(di)));
        }
      }
      if (rit != receives.end()) {
        for (const auto& [pred, di] : rit->second) {
          (void)pred;
          pre.push_back(emit(HbPhase::kUnpack, static_cast<int>(di)));
        }
      }
      for (std::size_t i = 1; i < pre.size(); ++i) {
        intra.emplace_back(pre[i - 1], pre[i]);
      }
      const int pre_tail = pre.empty() ? -1 : pre.back();

      int send_anchor = -1;  // event the first pack+isend hangs off
      if (pm.pipelined) {
        const int remainder = emit(HbPhase::kRemainder, -1);
        const int bandc = emit(HbPhase::kBand, -1);
        if (pre_tail >= 0) intra.emplace_back(pre_tail, remainder);
        if (pm.schedule.remainder_before_band) {
          intra.emplace_back(remainder, bandc);
        } else if (pre_tail >= 0) {
          // The dropped edge: remainder and band run unordered.
          intra.emplace_back(pre_tail, bandc);
        }
        send_anchor = pm.schedule.band_before_send ? bandc : remainder;
      } else {
        const int compute = emit(HbPhase::kCompute, -1);
        if (pre_tail >= 0) intra.emplace_back(pre_tail, compute);
        send_anchor = compute;
      }

      int prev_pack = -1;
      for (std::size_t dir = 0; dir < pm.directions.size(); ++dir) {
        if (!sends_in_direction(pm, js, static_cast<int>(dir))) continue;
        const int pack = emit(HbPhase::kPackSend, static_cast<int>(dir));
        intra.emplace_back(prev_pack >= 0 ? prev_pack : send_anchor, pack);
        prev_pack = pack;
      }

      stitch(ids, intra);
    }

    // Post-barrier write-back: after everything this rank did.
    const int wb =
        g.add_event(HbEvent{rank, pid, VecI{}, 0, HbPhase::kWriteBack, -1});
    for (int s : prev_sinks) g.add_edge(s, wb);
    ++rank;
  }

  // Message edges: the wait that precedes each unpack synchronizes with
  // the matching pack+isend.  Unpacking at post time has no completed
  // receive to synchronize with — no edge, and V6 finds the race.
  if (pm.schedule.unpack_at_wait) {
    for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                   const VecI& recv) {
      const int dir = pm.tile_deps[di].dir;
      const int send = g.find(pred, HbPhase::kPackSend, dir);
      const int unpack = g.find(recv, HbPhase::kUnpack, static_cast<int>(di));
      if (send >= 0 && unpack >= 0) g.add_edge(send, unpack);
    });
  }
  return g;
}

namespace {

/// Linear slot of LDS coordinates (strides dot product), plus the chain
/// offset of window-local position t_loc.
i64 linear_slot(const LdsModel& lds, const VecI& coords, i64 t_loc) {
  i64 slot = mul_ck(t_loc, lds.chain_step);
  for (std::size_t k = 0; k < coords.size(); ++k) {
    slot = add_ck(slot, mul_ck(coords[k], lds.strides[k]));
  }
  return slot;
}

/// LDS coordinates the unpack of (dep di, receiver window) writes first:
/// the pack region's low corner, condensed, halo-shifted by ds.
VecI unpack_lo_coords(const PlanModel& pm, std::size_t di) {
  const TileDepModel& dep = pm.tile_deps[di];
  const TtisRegion& pack = pm.directions[static_cast<std::size_t>(dep.dir)].pack;
  const LdsModel& lds = pm.lds.begin()->second;
  VecI coords(static_cast<std::size_t>(pm.n));
  for (int k = 0; k < pm.n; ++k) {
    const std::size_t uk = static_cast<std::size_t>(k);
    coords[uk] = add_ck(
        sub_ck(add_ck(lds.off[uk], floor_div(pack.lo[uk], pm.c[uk])),
               mul_ck(dep.ds[uk], lds.tile_slots[uk])),
        0);
  }
  return coords;
}

/// True iff TTIS point p lies in some direction's pack region (the band).
bool in_band(const PlanModel& pm, const VecI& p) {
  for (const DirectionModel& dir : pm.directions) {
    bool inside = true;
    for (std::size_t k = 0; k < p.size(); ++k) {
      if (p[k] < dir.pack.lo[k] || p[k] > dir.pack.hi[k]) {
        inside = false;
        break;
      }
    }
    if (inside) return true;
  }
  return false;
}

}  // namespace

std::vector<HbRace> hb_race_check(const HbGraph& graph, const PlanModel& pm,
                                  std::size_t max_findings) {
  std::vector<HbRace> races;
  auto full = [&]() { return races.size() >= max_findings; };
  auto report = [&](int writer, int reader, i64 slot, int dim,
                    std::string what) {
    if (!full()) {
      races.push_back(HbRace{writer, reader, slot, dim, std::move(what)});
    }
  };

  // ---- Model consistency the phase obligations build on: the band
  // split must be exactly the per-row suffix of the pack-region union
  // (remainder-first legality requires the band to be a suffix).
  const int last = pm.n - 1;
  for (std::size_t r = 0; r < pm.rows.size() && !full(); ++r) {
    const RowModel& row = pm.rows[r];
    i64 derived = row.count;
    bool suffix = true;
    VecI p = row.start;
    for (i64 i = 0; i < row.count; ++i) {
      const bool band = in_band(pm, p);
      if (band && derived == row.count) derived = i;
      if (!band && derived != row.count && i > derived) suffix = false;
      p[static_cast<std::size_t>(last)] =
          add_ck(p[static_cast<std::size_t>(last)],
                 pm.c[static_cast<std::size_t>(last)]);
    }
    if (!suffix) {
      report(-1, -1, -1, last,
             "band of row " + format_vec(row.start) +
                 " is not a suffix: remainder-first sweep would compute a "
                 "band point before its in-row predecessor");
    } else if (r < pm.band_split.size() && pm.band_split[r] != derived) {
      report(-1, -1, -1, last,
             "band split of row " + format_vec(row.start) + " claims index " +
                 std::to_string(pm.band_split[r]) +
                 " but the pack regions start the band at index " +
                 std::to_string(derived));
    }
  }

  // ---- Message obligations: every executor receive must be HB-after
  // the matching pack+isend, and the unpacked halo must cover every
  // cross-rank read it feeds.
  for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                 const VecI& recv) {
    if (full()) return;
    const TileDepModel& dep = pm.tile_deps[di];
    const int send = graph.find(pred, HbPhase::kPackSend, dep.dir);
    const int unpack = graph.find(recv, HbPhase::kUnpack, static_cast<int>(di));
    const int reader =
        pm.pipelined ? graph.find(recv, HbPhase::kRemainder, -1)
                     : graph.find(recv, HbPhase::kCompute, -1);
    const auto [pid, t] = pm.owner_of(recv);
    const IntRange window = pm.window_of(pid);
    const i64 t_loc = t - window.lo;
    const auto lit = pm.lds.find(window.count());
    const LdsModel* lds = lit == pm.lds.end() ? nullptr : &lit->second;
    const i64 slot0 =
        lds == nullptr ? -1
                       : linear_slot(*lds, unpack_lo_coords(pm, di), t_loc);

    if (send < 0 || unpack < 0 || !graph.reaches(send, unpack)) {
      report(send, unpack, slot0, -1,
             "halo payload of tile " + format_vec(recv) + " (dep " +
                 std::to_string(di) + " from tile " + format_vec(pred) +
                 ") is unpacked without happening-after the pack+isend "
                 "that produced it");
      return;
    }
    // The unpack's writes must precede the tile's first reader.
    if (reader >= 0 && !graph.reaches(unpack, reader)) {
      report(unpack, reader, slot0, -1,
             "halo of tile " + format_vec(recv) +
                 " is read before its unpack completes");
    }
    // Slot-level read coverage: reads through every active dependence
    // column crossing this tile boundary must land inside the slots the
    // unpack wrote (check_v3 proves the same in TTIS coordinates; here
    // it closes the writer-exists side of the race proof).
    const TtisRegion& pack =
        pm.directions[static_cast<std::size_t>(dep.dir)].pack;
    for (int l = 0; l < pm.Dp.cols() && !full(); ++l) {
      bool active = true;
      for (int k = 0; k < pm.n; ++k) {
        const i64 dsk = dep.ds[static_cast<std::size_t>(k)];
        if (dsk == 0) continue;
        if (dsk < 0 ||
            pm.Dp(k, l) <
                add_ck(mul_ck(dsk - 1, pm.v[static_cast<std::size_t>(k)]), 1)) {
          active = false;
          break;
        }
      }
      if (!active) continue;
      for (int k = 0; k < pm.n && !full(); ++k) {
        const std::size_t uk = static_cast<std::size_t>(k);
        const i64 dsk = dep.ds[uk];
        if (dsk == 0) continue;
        const i64 need_lo =
            std::max<i64>(0, sub_ck(mul_ck(pm.v[uk], dsk), pm.Dp(k, l)));
        if (pack.lo[uk] <= need_lo && pack.hi[uk] >= pm.v[uk] - 1) continue;
        i64 slot = lds == nullptr ? -1 : 0;
        if (lds != nullptr) {
          VecI coords(static_cast<std::size_t>(pm.n));
          for (int kk = 0; kk < pm.n; ++kk) {
            const std::size_t ukk = static_cast<std::size_t>(kk);
            coords[ukk] = static_cast<int>(ukk) == k
                              ? sub_ck(add_ck(lds->off[ukk],
                                              floor_div(need_lo, pm.c[ukk])),
                                       mul_ck(dsk, lds->tile_slots[ukk]))
                              : lds->off[ukk];
          }
          slot = linear_slot(*lds, coords, t_loc);
        }
        report(unpack, reader, slot, k,
               "tile " + format_vec(recv) + " reads halo slots through "
                   "dependence column " + std::to_string(l) +
                   " that no happens-before-ordered unpack writes "
                   "(pack region too small in dim " + std::to_string(k) + ")");
      }
    }
  });
  if (full()) return races;

  // ---- Intra-tile phase obligations, per rank and tile.
  // Remainder-vs-band conflict slots are window-length-invariant up to
  // the chain offset; compute the conflict witness once per length.
  struct PhaseConflict {
    bool exists = false;
    i64 slot0 = -1;  ///< first conflicting slot at t_loc = 0
  };
  std::map<i64, PhaseConflict> rem_band;  // by window length
  const int q = pm.Dp.cols();
  for (const auto& [len, lds] : pm.lds) {
    PhaseConflict pc;
    const i64 sstep = lds.strides[static_cast<std::size_t>(pm.n - 1)];
    const std::size_t rows = pm.rows.size();
    if (lds.row_bases.size() == rows && lds.deltas.size() == rows * q &&
        pm.band_split.size() == rows) {
      for (std::size_t rb = 0; rb < rows && !pc.exists; ++rb) {
        const i64 split_b = pm.band_split[rb];
        const i64 nband = pm.rows[rb].count - split_b;
        if (nband <= 0) continue;
        for (int l = 0; l < q && !pc.exists; ++l) {
          // Band reads of row rb through dependence l: an arithmetic
          // progression of stride sstep.
          const i64 read0 =
              add_ck(add_ck(lds.row_bases[rb], mul_ck(split_b, sstep)),
                     lds.deltas[rb * static_cast<std::size_t>(q) +
                                static_cast<std::size_t>(l)]);
          for (std::size_t rw = 0; rw < rows && !pc.exists; ++rw) {
            const i64 nrem = pm.band_split[rw];
            if (nrem <= 0) continue;
            const i64 w0 = lds.row_bases[rw];  // remainder writes
            if ((read0 - w0) % sstep != 0) continue;
            const i64 lo = std::max(read0, w0);
            const i64 hi = std::min(add_ck(read0, mul_ck(nband - 1, sstep)),
                                    add_ck(w0, mul_ck(nrem - 1, sstep)));
            if (lo <= hi) {
              pc.exists = true;
              pc.slot0 = lo;
            }
          }
        }
      }
    }
    rem_band.emplace(len, pc);
  }

  int rank = 0;
  for (const auto& [pid, window] : pm.windows) {
    if (full()) break;
    const auto lit = pm.lds.find(window.count());
    const LdsModel* lds = lit == pm.lds.end() ? nullptr : &lit->second;
    const PhaseConflict& pc = rem_band[window.count()];
    for (i64 t = window.lo; t <= window.hi && !full(); ++t) {
      VecI js(static_cast<std::size_t>(pm.n));
      std::size_t pi = 0;
      for (int k = 0; k < pm.n; ++k) {
        const std::size_t uk = static_cast<std::size_t>(k);
        js[uk] = pm.mesh_lo[uk] + (k == pm.m ? t : pid[pi++]);
      }
      if (!pm.is_valid_tile(js)) continue;
      const i64 t_loc = t - window.lo;

      if (pm.pipelined) {
        const int remainder = graph.find(js, HbPhase::kRemainder, -1);
        const int bandc = graph.find(js, HbPhase::kBand, -1);
        // (a) band reads remainder-written slots of the same tile.
        if (pc.exists && !graph.reaches(remainder, bandc)) {
          const i64 slot =
              lds == nullptr
                  ? pc.slot0
                  : add_ck(pc.slot0, mul_ck(t_loc, lds->chain_step));
          report(remainder, bandc, slot, -1,
                 "band sweep of tile " + format_vec(js) +
                     " reads a slot the remainder sweep writes, with no "
                     "happens-before order between the two");
        }
        // (b) pack+isend reads band-written slots.
        for (std::size_t dir = 0; dir < pm.directions.size() && !full();
             ++dir) {
          const int pack =
              graph.find(js, HbPhase::kPackSend, static_cast<int>(dir));
          if (pack < 0) continue;
          if (!graph.reaches(bandc, pack)) {
            i64 slot = -1;
            if (lds != nullptr) {
              VecI coords(static_cast<std::size_t>(pm.n));
              for (int k = 0; k < pm.n; ++k) {
                const std::size_t uk = static_cast<std::size_t>(k);
                coords[uk] =
                    add_ck(lds->off[uk],
                           floor_div(pm.directions[dir].pack.lo[uk],
                                     pm.c[uk]));
              }
              slot = linear_slot(*lds, coords, t_loc);
            }
            report(bandc, pack, slot, -1,
                   "pack+isend of tile " + format_vec(js) + " direction " +
                       std::to_string(dir) +
                       " reads band slots with no happens-before order "
                       "after the band sweep that writes them");
          }
        }
      }
      // (c) every compute write is read by the final write-back.
      const int wb = graph.find_writeback(rank);
      const int last_compute =
          pm.pipelined ? graph.find(js, HbPhase::kBand, -1)
                       : graph.find(js, HbPhase::kCompute, -1);
      if (wb >= 0 && last_compute >= 0 && !graph.reaches(last_compute, wb)) {
        report(last_compute, wb, -1, -1,
               "write-back reads compute slots of tile " + format_vec(js) +
                   " with no happens-before order after the sweep");
      }
    }
    ++rank;
  }
  return races;
}

}  // namespace ctile::verify
