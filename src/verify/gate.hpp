// Opt-in verify-before-run gating for the executors.
//
// The executors expose a generic pre-run callback (set_pre_run_gate) so
// the runtime library never links against the verifier; these helpers
// close the loop from the verify side.  With the gate installed, every
// run() first lowers nothing new — it snapshots the executor's OWN
// CompiledPlan, concurrency facts included — and runs rules V1..V8 over
// it, throwing LegalityError with the full diagnostic text if any rule
// finds an error.
#pragma once

#include "runtime/parallel_executor.hpp"
#include "runtime/sequential_tiled.hpp"
#include "verify/verifier.hpp"

namespace ctile::verify {

/// Verify the executor's lowered plan (its mapping, comm plan, window
/// layouts and classifier — not a re-lowering) and return the report.
VerifyReport verify_executor(const ParallelExecutor& exec,
                             const VerifyOptions& options = {});

/// Install a pre-run gate on `exec`: every run() re-verifies the plan
/// and throws LegalityError listing the findings if verification fails.
void enable_verify_before_run(ParallelExecutor& exec,
                              const VerifyOptions& options = {});

/// Same for the sequential tiled executor.  Only V1 (legality) and V5
/// (interior soundness) have teeth here — the sequential path has no
/// LDS or messages — but the full lowering is still proven consistent.
void enable_verify_before_run(SequentialTiledExecutor& exec,
                              const VerifyOptions& options = {});

}  // namespace ctile::verify
