// Static happens-before graph of the runtime's communication schedule.
//
// The verifier's rule V6 (race freedom) does not watch an execution: it
// reconstructs, from the PlanModel alone, every event the executors
// perform per (rank, tile, phase) — pre-posted irecv, halo unpack,
// remainder compute, band compute, pack + isend, final write-back — and
// the happens-before edges the running schedule establishes between
// them:
//
//  - program-order edges: each rank executes its tiles in chain order
//    and each tile's phases in the order ScheduleModel declares (the
//    Pi = [1,...,1] linear schedule is what makes the chain order a
//    legal total order per rank — see THEORY.md);
//  - message edges: PackSend(pred, dir) -> Unpack(receiver, dep) for
//    every RECEIVE the executor performs (the minsucc predicate of
//    plan_model.hpp), present only while ScheduleModel::unpack_at_wait
//    holds — unpacking at post time has no completed receive to
//    synchronize with, which is exactly the race.
//
// hb_race_check() then enumerates the proof obligations — every
// conflicting pair of LDS-slot accesses (writer/reader across phases,
// or across ranks via the pack/unpack regions of the CommSlotTable) —
// and demands HB-reachability for each, returning an unordered-pair
// witness (slot coordinates + both events) per violation.  The graph is
// exposed, with a drop_edge mutation hook, so tests can knock out one
// edge and assert the race is caught.
//
// The same graph is the spec for the dynamic cross-validation oracle:
// the event backend's totally-ordered communication log
// (mpisim::Comm::event_log) must be a linearization of this graph
// (tests/verify_hb_trace_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "verify/plan_model.hpp"

namespace ctile::verify {

/// The event vocabulary (DESIGN.md §14).  kCompute is the blocking
/// schedule's whole-tile sweep; the pipelined schedule splits it into
/// kRemainder + kBand.
enum class HbPhase {
  kRecvPost,   ///< irecv pre-posted (no LDS footprint)
  kUnpack,     ///< halo scatter of one received message (writes halo)
  kRemainder,  ///< remainder sweep (writes non-band compute slots)
  kBand,       ///< band sweep (writes band compute slots)
  kCompute,    ///< blocking whole-tile sweep
  kPackSend,   ///< pack region gather + isend (reads band slots)
  kWriteBack,  ///< post-barrier LDS -> DataSpace copy (reads everything)
};

const char* hb_phase_name(HbPhase phase);

struct HbEvent {
  int rank = -1;  ///< dense rank id (PlanModel::windows order)
  VecI pid;       ///< processor mesh coordinates
  VecI tile;      ///< tile-space coordinates j^S (empty for kWriteBack)
  i64 t = 0;      ///< global chain coordinate of the tile
  HbPhase phase = HbPhase::kCompute;
  /// kUnpack / kRecvPost: index into PlanModel::tile_deps;
  /// kPackSend: index into PlanModel::directions; else -1.
  int aux = -1;

  /// "rank 2 tile (1,0,3) band-compute" — for witnesses and logs.
  std::string to_string() const;
};

class HbGraph {
 public:
  int add_event(HbEvent event);
  void add_edge(int u, int v);
  /// Mutation hook: remove edge u -> v.  True iff it existed.
  bool drop_edge(int u, int v);

  const std::vector<HbEvent>& events() const { return events_; }
  const HbEvent& event(int i) const {
    return events_[static_cast<std::size_t>(i)];
  }
  std::size_t edge_count() const;

  /// u reaches v along HB edges (u == v counts as reached).
  bool reaches(int u, int v) const;

  /// Event index of (tile, phase, aux), -1 if absent.
  int find(const VecI& tile, HbPhase phase, int aux = -1) const;
  /// The rank's final write-back event, -1 if absent.
  int find_writeback(int rank) const;

 private:
  std::vector<HbEvent> events_;
  std::vector<std::vector<int>> succs_;
  std::vector<int> writebacks_;  ///< per rank
};

/// Reconstruct the schedule's events and HB edges from the model.
/// Requires pm.has_concurrency_facts.
HbGraph build_hb_graph(const PlanModel& pm);

/// One failed proof obligation: a conflicting LDS-slot access pair (or
/// a read with no covering writer) that the HB graph does not order.
struct HbRace {
  int writer = -1;  ///< event index; -1 when the required writer is absent
  int reader = -1;  ///< event index; -1 when the required reader is absent
  i64 slot = -1;    ///< concrete conflicting linear LDS slot
  int dim = -1;     ///< dimension of the slot witness, -1 if whole-slot
  std::string what;
};

/// Enumerate every conflicting-access proof obligation of the schedule
/// and return the violated ones (at most max_findings).
std::vector<HbRace> hb_race_check(const HbGraph& graph, const PlanModel& pm,
                                  std::size_t max_findings);

}  // namespace ctile::verify
