#include "verify/verifier.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "tiling/ttis.hpp"
#include "verify/hb_graph.hpp"

namespace ctile::verify {

namespace {

/// Shared state of one verification run: the model, the options, and
/// per-rule finding caps.
struct Ctx {
  const PlanModel& pm;
  const VerifyOptions& opts;
  VerifyReport& report;
  std::map<Rule, i64> emitted;

  bool capped(Rule rule) {
    return emitted[rule] >= opts.max_findings_per_rule;
  }

  void add(Rule rule, Severity severity, std::string message,
           Witness witness, std::string hint) {
    if (capped(rule)) return;
    ++emitted[rule];
    report.add(Diagnostic{rule, severity, std::move(message),
                          std::move(witness), std::move(hint)});
  }
};

VecI zeros(int n) { return VecI(static_cast<std::size_t>(n), 0); }

/// max_l d'_kl per dimension, recomputed from the model's D' = H' D.
VecI recompute_dep_max(const PlanModel& pm) {
  VecI dmax = zeros(pm.n);
  for (int k = 0; k < pm.n; ++k) {
    for (int l = 0; l < pm.Dp.cols(); ++l) {
      dmax[static_cast<std::size_t>(k)] =
          std::max(dmax[static_cast<std::size_t>(k)], pm.Dp(k, l));
    }
  }
  return dmax;
}

/// A concrete linear LDS slot for a witness: the violating coordinate in
/// dimension `dim`, a representative in-range coordinate (the halo
/// offset) everywhere else.
i64 witness_slot(const LdsModel& lds, int dim, i64 bad_coord) {
  i64 slot = 0;
  for (std::size_t k = 0; k < lds.strides.size(); ++k) {
    const i64 coord =
        static_cast<int>(k) == dim ? bad_coord : lds.off[k];
    slot = add_ck(slot, mul_ck(coord, lds.strides[k]));
  }
  return slot;
}

/// True iff original dependence column l can generate tile dependence ds:
/// crossing ds_k tile boundaries in dimension k requires
/// d'_kl >= (ds_k - 1) v_k + 1 (and ds_k >= 0).
bool dep_column_active(const PlanModel& pm, const VecI& ds, int l) {
  for (int k = 0; k < pm.n; ++k) {
    const i64 dsk = ds[static_cast<std::size_t>(k)];
    if (dsk == 0) continue;
    if (dsk < 0) return false;
    const i64 need =
        add_ck(mul_ck(dsk - 1, pm.v[static_cast<std::size_t>(k)]), 1);
    if (pm.Dp(k, l) < need) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// V1: tiling legality.  H must lie in the tiling cone of D — every
// (row k, dependence l) product (H D)_kl non-negative — and every tile
// dependence must be lexicographically non-negative in tile space.
// ---------------------------------------------------------------------
void check_v1(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV1TilingLegality;

  // Fix hint: name the extreme rays of the tiling cone, the legal row
  // directions the paper draws H from.
  std::string cone_hint;
  {
    const ConeRays rays = tiling_cone(pm.D);
    std::ostringstream os;
    os << "choose rows of H from the tiling cone of D";
    if (!rays.rays.empty()) {
      os << " (extreme rays:";
      for (std::size_t i = 0; i < rays.rays.size() && i < 4; ++i) {
        os << ' ' << format_vec(rays.rays[i]);
      }
      os << ')';
    }
    cone_hint = os.str();
  }

  for (int l = 0; l < pm.D.cols(); ++l) {
    for (int k = 0; k < pm.n; ++k) {
      Rat hd;
      for (int i = 0; i < pm.n; ++i) {
        hd += pm.H(k, i) * Rat(pm.D(i, l));
      }
      if (hd.is_negative()) {
        Witness w;
        w.dep = pm.D.col(l);
        w.dim = k;
        ctx.add(rule, Severity::kError,
                "illegal tiling: (H D)_" + std::to_string(k + 1) + "," +
                    std::to_string(l + 1) + " = " + hd.to_string() +
                    " < 0 — a tile would depend on a lexicographically "
                    "later tile",
                std::move(w), cone_hint);
      }
    }
  }

  // Same condition one layer down: D' = H' D must be componentwise
  // non-negative (V has a positive diagonal, so the sign pattern must
  // survive the scaling; a mismatch means H'/D' were derived wrongly).
  for (int l = 0; l < pm.Dp.cols(); ++l) {
    for (int k = 0; k < pm.n; ++k) {
      if (pm.Dp(k, l) < 0) {
        Witness w;
        w.dep = pm.Dp.col(l);
        w.dim = k;
        ctx.add(rule, Severity::kError,
                "transformed dependence d'_" + std::to_string(l + 1) +
                    " has negative component in dimension " +
                    std::to_string(k + 1) +
                    " (D' = H' D inconsistent with a legal H)",
                std::move(w), "re-derive H' = V H from a legal H");
      }
    }
  }

  // Tile-space layer: every tile dependence lexicographically >= 0.
  for (const TileDepModel& dep : pm.tile_deps) {
    if (lex_compare(dep.ds, zeros(pm.n)) < 0) {
      Witness w;
      w.dep = dep.ds;
      ctx.add(rule, Severity::kError,
              "tile dependence " + format_vec(dep.ds) +
                  " is lexicographically negative: the tile execution "
                  "order would violate it",
              std::move(w), cone_hint);
    }
  }
}

// ---------------------------------------------------------------------
// V2: halo sufficiency and access safety.  Every per-window LDS layout
// must provide off_k >= ceil(max_l d'_kl / c_k) slots of halo, and the
// executors' compute (dep_delta) and slot-table (pack/unpack) accesses
// must be provably in-bounds — per dimension, over the extreme TTIS
// coordinates, no enumeration.
// ---------------------------------------------------------------------
void check_v2(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV2HaloSufficiency;
  const VecI dmax = recompute_dep_max(pm);

  for (int k = 0; k < pm.n; ++k) {
    const i64 vk = pm.v[static_cast<std::size_t>(k)];
    if (dmax[static_cast<std::size_t>(k)] > vk) {
      Witness w;
      w.dim = k;
      ctx.add(rule, Severity::kError,
              "transformed dependence component " +
                  std::to_string(dmax[static_cast<std::size_t>(k)]) +
                  " exceeds tile extent v_" + std::to_string(k + 1) + " = " +
                  std::to_string(vk) +
                  ": data would cross more than one tile per dimension",
              std::move(w), "enlarge the tile in this dimension");
    }
  }

  for (const auto& [len, lds] : pm.lds) {
    for (int k = 0; k < pm.n; ++k) {
      const std::size_t uk = static_cast<std::size_t>(k);
      const i64 vk = pm.v[uk];
      const i64 ck = pm.c[uk];
      if (ck <= 0 || vk % ck != 0) {
        Witness w;
        w.dim = k;
        ctx.add(rule, Severity::kError,
                "stride c_" + std::to_string(k + 1) +
                    " does not divide tile extent v_" + std::to_string(k + 1) +
                    ": the dense LDS condensation is invalid",
                std::move(w), "choose a stride-compatible tile size");
        continue;
      }
      const i64 ts = vk / ck;
      if (lds.tile_slots[uk] != ts) {
        Witness w;
        w.dim = k;
        ctx.add(rule, Severity::kError,
                "LDS tile_slots_" + std::to_string(k + 1) + " = " +
                    std::to_string(lds.tile_slots[uk]) + " != v_k/c_k = " +
                    std::to_string(ts),
                std::move(w), "rebuild the LDS layout");
      }
      // Halo sufficiency (the paper's off_k >= ceil(max_l d'_kl / c_k),
      // plus one predecessor tile of halo in the chain dimension).
      const i64 need = k == pm.m
                           ? std::max(ts, ceil_div(dmax[uk], ck))
                           : ceil_div(dmax[uk], ck);
      if (lds.off[uk] < need) {
        Witness w;
        w.dim = k;
        w.lds_slot = witness_slot(lds, k, sub_ck(lds.off[uk], need));
        ctx.add(
            rule, Severity::kError,
            "halo too small in dimension " + std::to_string(k + 1) +
                ": off = " + std::to_string(lds.off[uk]) + " slots but " +
                std::to_string(need) +
                " are required to hold predecessor data (max d' = " +
                std::to_string(dmax[uk]) + ", c = " + std::to_string(ck) +
                "); a dependence read would address a slot before the array",
            std::move(w),
            "set off_" + std::to_string(k + 1) + " = " +
                std::to_string(need) + " (ceil(max_l d'_kl / c_k))");
      }
      const i64 need_ext =
          k == pm.m ? add_ck(lds.off[uk], mul_ck(len, ts))
                    : add_ck(lds.off[uk], ts);
      if (lds.ext[uk] < need_ext) {
        Witness w;
        w.dim = k;
        w.lds_slot = witness_slot(lds, k, sub_ck(need_ext, 1));
        ctx.add(rule, Severity::kError,
                "LDS extent too small in dimension " + std::to_string(k + 1) +
                    ": ext = " + std::to_string(lds.ext[uk]) +
                    " < off + computation slots = " + std::to_string(need_ext),
                std::move(w), "enlarge the LDS extent");
      }
    }
    // Strides / size / chain-step consistency (what linear() and the
    // slot tables actually multiply by).
    i64 size = 1;
    bool strides_ok = true;
    for (int k = pm.n; k-- > 0;) {
      const std::size_t uk = static_cast<std::size_t>(k);
      if (lds.strides[uk] != size) strides_ok = false;
      size = mul_ck(size, lds.ext[uk]);
    }
    if (!strides_ok || lds.size != size) {
      ctx.add(rule, Severity::kError,
              "LDS strides/size inconsistent with the extents (linear "
              "addressing would alias slots)",
              Witness{}, "recompute row-major strides from the extents");
    }
    const i64 want_step = mul_ck(lds.tile_slots[static_cast<std::size_t>(pm.m)],
                                 lds.strides[static_cast<std::size_t>(pm.m)]);
    if (lds.chain_step != want_step) {
      Witness w;
      w.dim = pm.m;
      ctx.add(rule, Severity::kError,
              "chain_step = " + std::to_string(lds.chain_step) +
                  " != tile_slots_m * stride_m = " + std::to_string(want_step) +
                  ": slot-table bases would drift off the received data",
              std::move(w), "rebuild the slot tables");
    }

    // Compute-access proof: for every dependence column and dimension,
    // the predecessor LDS coordinate off_k + floor((j'_k - d'_kl)/c_k)
    // (plus the chain term for k = m) stays within [0, ext_k).  floor is
    // monotone, so the extremes of j'_k bound every access — including
    // every dep_delta the strength-reduced sweep adds to a row base.
    for (int l = 0; l < pm.Dp.cols() && !ctx.capped(rule); ++l) {
      for (int k = 0; k < pm.n; ++k) {
        const std::size_t uk = static_cast<std::size_t>(k);
        const i64 ck = pm.c[uk];
        if (ck <= 0) continue;  // already reported above
        const i64 lo_coord =
            add_ck(lds.off[uk], floor_div(neg_ck(pm.Dp(k, l)), ck));
        const i64 hi_base = add_ck(lds.off[uk], floor_div(pm.v[uk] - 1, ck));
        const i64 hi_coord =
            k == pm.m
                ? add_ck(hi_base, mul_ck(len - 1, lds.tile_slots[uk]))
                : hi_base;
        if (lo_coord < 0 || hi_coord >= lds.ext[uk]) {
          const i64 bad = lo_coord < 0 ? lo_coord : hi_coord;
          Witness w;
          w.dep = pm.Dp.col(l);
          w.dim = k;
          w.lds_slot = witness_slot(lds, k, bad);
          VecI jp = zeros(pm.n);
          if (lo_coord >= 0) jp[uk] = pm.v[uk] - 1;
          w.point = std::move(jp);
          ctx.add(rule, Severity::kError,
                  "compute access out of bounds: dependence " +
                      std::to_string(l + 1) + " addresses LDS coordinate " +
                      std::to_string(bad) + " in dimension " +
                      std::to_string(k + 1) + " (valid range [0, " +
                      std::to_string(lds.ext[uk]) + "))",
                  std::move(w), "enlarge the halo offset in this dimension");
        }
      }
    }
  }

  // Slot-table access proof: replay every RECEIVE of the schedule and
  // bound its unpack coordinates per dimension (table bases fold in the
  // halo shift -d^S_k v_k/c_k; the chain term is t_loc * chain_step).
  std::set<std::size_t> reported_deps;
  for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                 const VecI& js) {
    (void)pred;
    if (ctx.capped(rule)) return;
    if (reported_deps.count(di) != 0) return;
    const TileDepModel& dep = pm.tile_deps[di];
    if (dep.dir < 0 ||
        dep.dir >= static_cast<int>(pm.directions.size())) {
      return;  // V3 reports schedule-structure problems
    }
    const TtisRegion& pack =
        pm.directions[static_cast<std::size_t>(dep.dir)].pack;
    const auto [pid, t] = pm.owner_of(js);
    const IntRange window = pm.window_of(pid);
    if (window.empty()) return;
    const auto lds_it = pm.lds.find(window.count());
    if (lds_it == pm.lds.end()) {
      Witness w;
      w.tile = js;
      ctx.add(rule, Severity::kError,
              "no LDS layout lowered for chain-window length " +
                  std::to_string(window.count()),
              std::move(w), "lower one layout per distinct window length");
      reported_deps.insert(di);
      return;
    }
    const LdsModel& lds = lds_it->second;
    const i64 t_loc = sub_ck(t, window.lo);
    for (int k = 0; k < pm.n; ++k) {
      const std::size_t uk = static_cast<std::size_t>(k);
      const i64 ck = pm.c[uk];
      if (ck <= 0) continue;
      const i64 shift = mul_ck(dep.ds[uk], lds.tile_slots[uk]);
      const i64 chain = k == pm.m ? mul_ck(t_loc, lds.tile_slots[uk]) : 0;
      const i64 lo_coord = add_ck(
          add_ck(lds.off[uk], floor_div(pack.lo[uk], ck)),
          sub_ck(chain, shift));
      const i64 hi_coord = add_ck(
          add_ck(lds.off[uk], floor_div(pack.hi[uk], ck)),
          sub_ck(chain, shift));
      if (lo_coord < 0 || hi_coord >= lds.ext[uk]) {
        const i64 bad = lo_coord < 0 ? lo_coord : hi_coord;
        Witness w;
        w.tile = js;
        w.dep = dep.ds;
        w.dim = k;
        w.lds_slot = witness_slot(lds, k, bad);
        ctx.add(rule, Severity::kError,
                "unpack slot-table access out of bounds at the receive of "
                "tile dependence " + format_vec(dep.ds) +
                    " (chain position " + std::to_string(t_loc) +
                    "): LDS coordinate " + std::to_string(bad) +
                    " in dimension " + std::to_string(k + 1) +
                    " outside [0, " + std::to_string(lds.ext[uk]) + ")",
                std::move(w),
                "enlarge the halo or fix the unpack shift for this "
                "dependence");
        reported_deps.insert(di);
        return;
      }
    }
  });
}

// ---------------------------------------------------------------------
// V3: communication completeness.  Every cross-processor tile
// dependence edge must be covered by exactly one packed message: a
// direction exists for the dependence, its pack region contains every
// TTIS point the consumer reads (checked per dimension), a unique valid
// receiving tile exists on the destination processor, and the receive
// happens no later than the consuming tile's chain position.
//
// Under the pipelined delivery discipline (pm.pipelined), receives are
// pre-posted and matched by (source rank, tag) alone — tag = direction
// * chain_length + sender chain position — so V3 additionally proves
// that no receiver processor ever has two receive events with the same
// (source processor, direction, sender chain position): crossed wires
// would unpack one tile's halo into another tile's slots.
// ---------------------------------------------------------------------
void check_v3(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV3CommCompleteness;
  const MatI& ground = pm.tiled->tile_deps();

  // Ground-truth cross-processor dependencies, and their model entries.
  std::vector<VecI> cross;
  std::map<VecI, const TileDepModel*> model_of;
  for (const TileDepModel& dep : pm.tile_deps) {
    model_of.emplace(dep.ds, &dep);
  }
  for (int cidx = 0; cidx < ground.cols(); ++cidx) {
    const VecI ds = ground.col(cidx);
    const VecI dm = project_dep(ds, pm.m);
    if (std::all_of(dm.begin(), dm.end(), [](i64 x) { return x == 0; })) {
      continue;  // chain-internal: satisfied through the LDS
    }
    cross.push_back(ds);
    auto it = model_of.find(ds);
    if (it == model_of.end() || it->second->dir < 0) {
      Witness w;
      w.dep = ds;
      ctx.add(rule, Severity::kError,
              "cross-processor tile dependence " + format_vec(ds) +
                  " is not covered by any packed message: the consumer "
                  "would read stale halo data",
              std::move(w),
              "add the dependence to the communication schedule "
              "(regenerate the CommPlan)");
      continue;
    }
    const TileDepModel& dep = *it->second;
    if (dep.dir >= static_cast<int>(pm.directions.size())) {
      Witness w;
      w.dep = ds;
      ctx.add(rule, Severity::kError,
              "tile dependence " + format_vec(ds) +
                  " references direction " + std::to_string(dep.dir) +
                  " which does not exist",
              std::move(w), "rebuild the direction table");
      continue;
    }
    const DirectionModel& dir =
        pm.directions[static_cast<std::size_t>(dep.dir)];
    if (dir.dm != dm || dep.dm != dm) {
      Witness w;
      w.dep = ds;
      ctx.add(rule, Severity::kError,
              "tile dependence " + format_vec(ds) +
                  " is routed to processor direction " + format_vec(dir.dm) +
                  " but its projection is " + format_vec(dm) +
                  ": the message would go to the wrong rank",
              std::move(w), "recompute the processor projection");
      continue;
    }
    // Pack-region coverage, symbolically per dimension: the consumer
    // reads sender TTIS points j' with j'_k >= v_k ds_k - d'_kl, so the
    // pack box must start at or below that line and span to the top.
    for (int k = 0; k < pm.n; ++k) {
      const std::size_t uk = static_cast<std::size_t>(k);
      if (k == pm.m) continue;  // chain dim checked for full extent below
      if (dir.pack.hi[uk] < pm.v[uk] - 1) {
        Witness w;
        w.dep = ds;
        w.dim = k;
        VecI jp = zeros(pm.n);
        jp[uk] = pm.v[uk] - 1;
        w.point = std::move(jp);
        ctx.add(rule, Severity::kError,
                "pack region of direction " + format_vec(dir.dm) +
                    " stops at " + std::to_string(dir.pack.hi[uk]) +
                    " in dimension " + std::to_string(k + 1) +
                    " but consumers need data up to " +
                    std::to_string(pm.v[uk] - 1),
                std::move(w), "extend the pack region to the tile boundary");
      }
    }
    for (int l = 0; l < pm.Dp.cols(); ++l) {
      if (!dep_column_active(pm, ds, l)) continue;
      for (int k = 0; k < pm.n; ++k) {
        const std::size_t uk = static_cast<std::size_t>(k);
        if (k == pm.m) continue;  // chain dim checked for full extent
        const i64 need_lo = std::max<i64>(
            0, sub_ck(mul_ck(pm.v[uk], ds[uk]), pm.Dp(k, l)));
        if (dir.pack.lo[uk] > need_lo) {
          Witness w;
          w.dep = ds;
          w.dim = k;
          VecI jp = zeros(pm.n);
          jp[uk] = need_lo;
          w.point = std::move(jp);
          ctx.add(
              rule, Severity::kError,
              "pack region of direction " + format_vec(dir.dm) +
                  " starts at " + std::to_string(dir.pack.lo[uk]) +
                  " in dimension " + std::to_string(k + 1) +
                  " but dependence column " + std::to_string(l + 1) +
                  " needs sender data from " + std::to_string(need_lo) +
                  ": part of the halo would never be transmitted",
              std::move(w),
              "lower the pack bound to max(0, v_k d^S_k - d'_kl) — i.e. "
              "d^m_k * cc_k with cc_k = v_k - max_l d'_kl");
        }
      }
    }
    // Chain dimension must be packed in full (one aggregated message
    // serves every chain position of the successor processor).
    const std::size_t um = static_cast<std::size_t>(pm.m);
    if (dir.pack.lo[um] > 0 || dir.pack.hi[um] < pm.v[um] - 1) {
      Witness w;
      w.dep = ds;
      w.dim = pm.m;
      ctx.add(rule, Severity::kError,
              "pack region of direction " + format_vec(dir.dm) +
                  " does not span the full chain dimension",
              std::move(w), "pack the chain dimension in full");
    }
  }

  // Spurious entries: a message schedule slot with no tile dependence
  // behind it wastes bandwidth (and points at a stale schedule).
  std::set<VecI> ground_set;
  for (int cidx = 0; cidx < ground.cols(); ++cidx) {
    ground_set.insert(ground.col(cidx));
  }
  for (const TileDepModel& dep : pm.tile_deps) {
    if (ground_set.count(dep.ds) == 0) {
      Witness w;
      w.dep = dep.ds;
      ctx.add(rule, Severity::kWarning,
              "schedule contains tile dependence " + format_vec(dep.ds) +
                  " which no actual dependence generates (spurious message)",
              std::move(w), "regenerate the schedule from D^S");
    }
  }

  // Per-edge delivery: replay every cross-processor dependence edge of
  // the tile space and prove a unique, timely receive for it.
  for (const VecI& js : pm.valid_tiles) {
    if (ctx.capped(rule)) break;
    for (const VecI& ds : cross) {
      const VecI pred = vec_sub(js, ds);
      if (!pm.is_valid_tile(pred)) continue;
      auto it = model_of.find(ds);
      if (it == model_of.end() || it->second->dir < 0) continue;  // reported
      const TileDepModel& dep = *it->second;
      VecI ms;
      if (!pm.minsucc(pred, dep.dir, &ms)) {
        Witness w;
        w.tile = pred;
        w.dep = ds;
        ctx.add(rule, Severity::kError,
                "message sent by tile " + format_vec(pred) +
                    " in direction " + format_vec(dep.dm) +
                    " has no receiving tile: the edge to " + format_vec(js) +
                    " is never delivered",
                std::move(w), "restore the dropped dependence in the "
                              "receive schedule");
        continue;
      }
      const auto [ppid, pt] = pm.owner_of(pred);
      const auto [rpid, rt] = pm.owner_of(ms);
      VecI expect_pid(ppid.size());
      bool on_mesh = true;
      for (std::size_t i = 0; i < ppid.size(); ++i) {
        expect_pid[i] = add_ck(ppid[i], dep.dm[i]);
        if (expect_pid[i] < 0 || expect_pid[i] >= pm.grid[i]) on_mesh = false;
      }
      if (!on_mesh || rpid != expect_pid) {
        Witness w;
        w.tile = ms;
        w.dep = ds;
        ctx.add(rule, Severity::kError,
                "receiving tile " + format_vec(ms) +
                    " is not on the destination processor of direction " +
                    format_vec(dep.dm),
                std::move(w), "recompute minsucc over valid tiles");
        continue;
      }
      const auto [jpid, jt] = pm.owner_of(js);
      (void)jpid;
      (void)pt;
      if (rt > jt) {
        Witness w;
        w.tile = js;
        w.dep = ds;
        ctx.add(rule, Severity::kError,
                "data for tile " + format_vec(js) + " (chain position " +
                    std::to_string(jt) + ") is only received at tile " +
                    format_vec(ms) + " (chain position " + std::to_string(rt) +
                    "): the consumer reads uninitialized halo",
                std::move(w),
                "the receiving tile must be the lexicographic minimum "
                "valid successor");
      }
    }
  }

  // Pipelined delivery: per-receiver tag uniqueness.  The message tag
  // is dir * chain_length + sender_t, and the sender rank is determined
  // by the source processor, so the match key of every pre-posted
  // receive is (source processor, direction, sender chain position).
  // Prove it injective over each receiver processor's whole chain —
  // that is exactly what makes posting a receive early (before the
  // previous tile's messages have drained) unable to capture the wrong
  // message.
  if (pm.pipelined) {
    std::map<std::tuple<VecI, VecI, int, i64>, VecI> first_consumer;
    for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                   const VecI& receiver) {
      if (ctx.capped(rule)) return;
      const TileDepModel& dep = pm.tile_deps[di];
      const auto [rpid, rt] = pm.owner_of(receiver);
      (void)rt;
      const auto [spid, st] = pm.owner_of(pred);
      const auto key = std::make_tuple(rpid, spid, dep.dir, st);
      const auto [it, inserted] = first_consumer.emplace(key, receiver);
      if (!inserted) {
        Witness w;
        w.tile = receiver;
        w.dep = dep.ds;
        ctx.add(rule, Severity::kError,
                "pipelined delivery: the processor of tile " +
                    format_vec(receiver) +
                    " posts two receives matching tag (direction " +
                    std::to_string(dep.dir) + ", sender chain position " +
                    std::to_string(st) +
                    ") from the same source processor (first consumer: "
                    "tile " + format_vec(it->second) +
                    ") — pre-posted matching would cross the messages",
                std::move(w),
                "one receive event per (source, direction, sender chain "
                "position): deduplicate the tile-dependence schedule");
      }
    });
  }
}

// ---------------------------------------------------------------------
// V4: schedule soundness and deadlock freedom.  Pi = [1,...,1] must
// strictly order every tile dependence (Pi . d^S >= 1), and the
// wait-for relation of the generated program — chains executed in t
// order, receives matched to buffered sends — must be acyclic.
//
// The wait-for graph covers both delivery disciplines.  Sends never
// block in either schedule (buffered send / eager isend: completion is
// a local timer, not a peer action), so the only wait edges are
// chain-predecessor order and receive-before-compute — and the
// pipelined schedule drains its pre-posted receives at the top of the
// consuming tile, the same program point where the blocking schedule
// receives.  Pre-posting earlier only *records* a match key; by the
// per-receiver tag uniqueness proven in V3 it cannot capture a
// different message, so the dataflow edges are identical.  For the
// pipelined schedule V4 additionally proves each message's isend is
// scheduled (under Pi) strictly before the step that waits on it.
// ---------------------------------------------------------------------
void check_v4(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV4ScheduleSoundness;

  std::set<VecI> seen;
  auto check_dep = [&](const VecI& ds) {
    if (!seen.insert(ds).second) return;
    if (std::all_of(ds.begin(), ds.end(), [](i64 x) { return x == 0; })) {
      return;
    }
    if (dot(pm.pi, ds) < 1) {
      Witness w;
      w.dep = ds;
      ctx.add(rule, Severity::kError,
              "linear schedule Pi = " + format_vec(pm.pi) +
                  " does not strictly order tile dependence " +
                  format_vec(ds) + " (Pi . d^S = " +
                  std::to_string(dot(pm.pi, ds)) +
                  " < 1): producer and consumer tiles share a time step",
              std::move(w),
              "every tile dependence must advance the schedule; re-tile "
              "or re-skew so that Pi . d^S >= 1");
    }
  };
  for (const TileDepModel& dep : pm.tile_deps) check_dep(dep.ds);
  const MatI& ground = pm.tiled->tile_deps();
  for (int cidx = 0; cidx < ground.cols(); ++cidx) check_dep(ground.col(cidx));

  // Pipelined issuance order: the overlapped executor fires isend at
  // the end of the sender tile and waits for the message at the top of
  // the consuming tile, so every linear extension of Pi must place the
  // sender strictly before the receiver — otherwise some execution
  // would wait on a message whose isend has not been issued.
  if (pm.pipelined) {
    for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                   const VecI& receiver) {
      (void)di;
      if (ctx.capped(rule)) return;
      if (dot(pm.pi, pred) >= dot(pm.pi, receiver)) {
        Witness w;
        w.tile = receiver;
        w.dep = vec_sub(receiver, pred);
        ctx.add(rule, Severity::kError,
                "pipelined schedule: tile " + format_vec(receiver) +
                    " waits on a message from tile " + format_vec(pred) +
                    " that Pi does not schedule strictly earlier — the "
                    "wait could precede the isend",
                std::move(w),
                "every communicated dependence must advance Pi by at "
                "least one step");
      }
    });
  }

  if (!ctx.opts.check_deadlock_graph) return;

  // Explicit wait-for graph over valid tiles: each tile waits for its
  // chain predecessor on the same processor, and each receiving tile
  // waits for the sender tile of the message it blocks on.
  std::map<VecI, std::size_t> index;
  for (const VecI& js : pm.valid_tiles) {
    index.emplace(js, index.size());
  }
  const std::size_t nodes = index.size();
  std::vector<std::vector<std::size_t>> succs(nodes);
  std::vector<i64> indeg(nodes, 0);
  auto add_edge = [&](const VecI& before, const VecI& after) {
    succs[index.at(before)].push_back(index.at(after));
    ++indeg[index.at(after)];
  };

  std::map<VecI, VecI> prev_on_pid;  // pid -> previous valid tile
  for (const VecI& js : pm.valid_tiles) {  // lex order: t ascends per pid
    const auto [pid, t] = pm.owner_of(js);
    (void)t;
    auto it = prev_on_pid.find(pid);
    if (it != prev_on_pid.end()) add_edge(it->second, js);
    prev_on_pid[pid] = js;
  }
  for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                 const VecI& receiver) {
    (void)di;
    add_edge(pred, receiver);
  });

  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::size_t done = 0;
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    ++done;
    for (std::size_t s : succs[u]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (done != nodes) {
    // A cycle remains; witness the lexicographically first tile in it.
    for (const VecI& js : pm.valid_tiles) {
      if (indeg[index.at(js)] > 0) {
        Witness w;
        w.tile = js;
        ctx.add(rule, Severity::kError,
                "the send/recv wait-for relation is cyclic: tile " +
                    format_vec(js) +
                    " transitively waits for itself — the program deadlocks",
                std::move(w),
                "a dependence with Pi . d^S <= 0 entered the schedule; "
                "remove it or fix the tiling");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------
// V5: interior-classifier soundness.  A tile flagged interior is swept
// with no contains() tests and no initial-value branches, so it must
// (a) own every lattice point of its TTIS box and (b) have every
// dependence predecessor of every point inside J^n.  Accept via the
// convexity (corner) proof when it holds; otherwise verify exactly and
// report the violating point.
// ---------------------------------------------------------------------
void check_v5(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV5InteriorSoundness;
  const TiledNest& tiled = *pm.tiled;
  const TilingTransform& tf = tiled.transform();
  const Polyhedron& space = tiled.nest().space;
  const MatI& deps = pm.D;
  const int n = pm.n;
  const int q = deps.cols();
  const VecI origin = zeros(n);

  // Corner probes: the tile's points lie in the closed parallelepiped
  // with corners P j^S + P' x_c; by convexity, corner membership proves
  // membership of every point (and of every point shifted by -d_l).
  std::vector<VecQ> corners;
  for (int mask = 0; mask < (1 << n); ++mask) {
    VecI xc = zeros(n);
    for (int k = 0; k < n; ++k) {
      if ((mask >> k) & 1) xc[static_cast<std::size_t>(k)] = tf.v(k) - 1;
    }
    corners.push_back(mul(tf.Pp(), xc));
  }

  for (const VecI& js : pm.interior_tiles) {
    if (ctx.capped(rule)) break;
    const TtisRegion region = tiled.tile_region(js);
    const i64 lattice = count_lattice_points(tf, region);

    // (a) fullness: every lattice point must be a real iteration point.
    if (tiled.tile_point_count(js) != lattice) {
      Witness w;
      w.tile = js;
      for_each_lattice_point_until(tf, region, [&](const VecI& x) {
        const VecI j = tf.point_of(origin, x);
        if (!space.contains(j)) {
          w.point = j;
          return false;
        }
        return true;
      });
      ctx.add(rule, Severity::kError,
              "tile " + format_vec(js) +
                  " is marked interior but contains lattice points outside "
                  "the iteration space: the fast sweep would compute and "
                  "write phantom iterations",
              std::move(w), "classify this tile as boundary");
      continue;
    }

    // (b) predecessors in-space, per dependence column: corner proof
    // first, exact walk only for unproven columns.
    const VecQ base = mul(tf.P(), js);
    for (int l = 0; l < q; ++l) {
      bool proven = true;
      for (const VecQ& corner : corners) {
        VecQ probe = vec_add(base, corner);
        for (int k = 0; k < n; ++k) {
          probe[static_cast<std::size_t>(k)] =
              probe[static_cast<std::size_t>(k)] - Rat(deps(k, l));
        }
        if (!space.contains_rational(probe)) {
          proven = false;
          break;
        }
      }
      if (proven) continue;
      if (lattice > ctx.opts.max_exact_points_per_tile) {
        Witness w;
        w.tile = js;
        w.dep = deps.col(l);
        ctx.add(rule, Severity::kWarning,
                "tile " + format_vec(js) +
                    " is marked interior but its safety could not be proven "
                    "(corner proof failed, tile too large for exact check)",
                std::move(w), "raise max_exact_points_per_tile or classify "
                              "this tile as boundary");
        continue;
      }
      Witness w;
      bool violated = false;
      tiled.for_each_tile_point(js, [&](const VecI&, const VecI& j) {
        if (violated) return;
        if (!space.contains(vec_sub(j, deps.col(l)))) {
          violated = true;
          w.point = j;
        }
      });
      if (violated) {
        w.tile = js;
        w.dep = deps.col(l);
        ctx.add(rule, Severity::kError,
                "tile " + format_vec(js) +
                    " is marked interior but point " +
                    format_vec(*w.point) +
                    " has dependence predecessor outside the iteration "
                    "space: the fast sweep would read an uninitialized "
                    "slot instead of the initial value",
                std::move(w), "classify this tile as boundary");
      }
    }
  }
}

// ---------------------------------------------------------------------
// V6: race freedom of the pipelined schedule.  Reconstruct the
// happens-before graph of every (rank, tile, phase) event the executors
// perform (hb_graph.hpp) and demand HB order for every conflicting pair
// of LDS-slot accesses — remainder/band/pack within a tile, pack/unpack
// across ranks, compute/write-back across the barrier — plus slot-level
// coverage of every cross-rank read.  Vacuous on models without
// concurrency facts (bare snapshot_plan): there is no schedule to prove.
// ---------------------------------------------------------------------
void check_v6(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV6RaceFreedom;
  if (!pm.has_concurrency_facts) return;

  const HbGraph graph = build_hb_graph(pm);
  const std::vector<HbRace> races = hb_race_check(
      graph, pm, static_cast<std::size_t>(ctx.opts.max_findings_per_rule));
  for (const HbRace& race : races) {
    Witness w;
    if (race.slot >= 0) w.lds_slot = race.slot;
    if (race.dim >= 0) w.dim = race.dim;
    std::string message = "data race: " + race.what;
    if (race.writer >= 0) {
      const HbEvent& e = graph.event(race.writer);
      if (!e.tile.empty()) w.tile = e.tile;
      message += "; writer: " + e.to_string();
    }
    if (race.reader >= 0) {
      const HbEvent& e = graph.event(race.reader);
      if (!w.tile && !e.tile.empty()) w.tile = e.tile;
      message += "; reader: " + e.to_string();
    }
    ctx.add(rule, Severity::kError, std::move(message), std::move(w),
            "restore the executor phase ordering (ScheduleModel) or "
            "enlarge the pack region so every conflicting access pair is "
            "happens-before ordered");
  }
}

// ---------------------------------------------------------------------
// V7: buffer-lifetime safety.  The mpisim pool discipline (PoolModel)
// must guarantee (a) no pack scratch region is rewritten between isend
// initiation and the transit copy — which requires the transit copy to
// be eager whenever the sender recycles its buffer at initiation — and
// (b) pool recycling never hands out a buffer an in-flight message (a
// received-but-not-yet-unpacked payload) still owns.
// ---------------------------------------------------------------------
void check_v7(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV7BufferLifetime;
  if (!pm.has_concurrency_facts) return;

  auto tile_sends = [&](const VecI& js) {
    for (const TileDepModel& dep : pm.tile_deps) {
      if (dep.dir < 0) continue;
      if (pm.is_valid_tile(vec_add(js, dep.ds))) return true;
    }
    return false;
  };

  // (a) pack region rewritten while the message is in flight.  Only the
  // pipelined schedule keeps sends in flight past the pack; the witness
  // is the first tile whose pack rewrites a buffer its own rank still
  // has in transit (the second sending tile of some chain window).
  if (pm.pipelined && !pm.pool.eager_transit_copy &&
      pm.pool.sender_buffer_recycled_at_initiation) {
    for (const auto& [pid, window] : pm.windows) {
      if (ctx.capped(rule)) break;
      VecI first_sender;
      bool seen_send = false;
      for (i64 t = window.lo; t <= window.hi; ++t) {
        VecI js(static_cast<std::size_t>(pm.n));
        std::size_t pi = 0;
        for (int k = 0; k < pm.n; ++k) {
          const std::size_t uk = static_cast<std::size_t>(k);
          js[uk] = pm.mesh_lo[uk] + (k == pm.m ? t : pid[pi++]);
        }
        if (!pm.is_valid_tile(js) || !tile_sends(js)) continue;
        if (!seen_send) {
          seen_send = true;
          first_sender = js;
          continue;
        }
        Witness w;
        w.tile = js;
        ctx.add(rule, Severity::kError,
                "pack region rewritten between isend initiation and the "
                "transit copy: tile " + format_vec(js) +
                    " repacks while the isend of tile " +
                    format_vec(first_sender) +
                    " may still read the buffer (transit copy is not "
                    "eager but the sender recycles at initiation)",
                std::move(w),
                "copy the payload into the transit buffer at isend "
                "initiation (PoolDiscipline::eager_transit_copy) or hold "
                "the sender buffer until completion");
        break;
      }
    }
  }

  // (b) pool recycling aliasing an in-flight message: releasing the
  // transit buffer before the unpack completes lets the pool hand the
  // same storage to a concurrent message while the unpack still reads.
  if (!pm.pool.transit_released_after_unpack && !ctx.capped(rule)) {
    bool reported = false;
    for_each_receive_event(pm, [&](const VecI& pred, std::size_t di,
                                   const VecI& recv) {
      if (reported || ctx.capped(rule)) return;
      reported = true;
      Witness w;
      w.tile = recv;
      w.dep = pm.tile_deps[di].ds;
      ctx.add(rule, Severity::kError,
              "pool recycling aliases an in-flight message: the transit "
              "buffer of the payload from tile " + format_vec(pred) +
                  " is released before tile " + format_vec(recv) +
                  " finishes unpacking it, so the pool can recycle the "
                  "storage into a concurrent message",
              std::move(w),
              "release the transit buffer only after the unpack "
              "(PoolDiscipline::transit_released_after_unpack)");
    });
  }
}

// ---------------------------------------------------------------------
// V8: parallel-policy soundness.  (a) The plan's plane-parallel claim —
// distinct rows of one j'_0-plane may be swept concurrently by the
// thread pool — is legal iff no dependence with d'_0 = 0 connects
// distinct rows of a plane, i.e. every column has d'_0 >= 1 or zeros in
// every middle dimension.  (b) The per-(row, dependence) slot deltas and
// SIMD alias distances the compiled row plan claims must equal the
// values the LDS layout implies; the vectorized sweep trusts them to
// decide recurrence splits, so a wrong claim reads a slot before it is
// written.  Both re-derived from model scalars, never from runtime code.
// ---------------------------------------------------------------------
void check_v8(Ctx& ctx) {
  const PlanModel& pm = ctx.pm;
  const Rule rule = Rule::kV8PolicySoundness;
  if (!pm.has_concurrency_facts) return;
  const int n = pm.n;
  const int q = pm.Dp.cols();

  // (a) plane-parallel fan-out legality.
  bool sound = true;
  int bad_l = -1, bad_k = -1;
  for (int l = 0; l < q && sound; ++l) {
    if (pm.Dp(0, l) >= 1) continue;
    for (int k = 1; k < n - 1; ++k) {
      if (pm.Dp(k, l) != 0) {
        sound = false;
        bad_l = l;
        bad_k = k;
        break;
      }
    }
  }
  if (pm.plane_parallel_claim && !sound) {
    Witness w;
    w.dep = pm.Dp.col(bad_l);
    w.dim = bad_k;
    ctx.add(rule, Severity::kError,
            "plane-parallel claim unsound: TTIS dependence " +
                format_vec(pm.Dp.col(bad_l)) +
                " has d'_0 = 0 but connects distinct rows of one "
                "j'_0-plane (d'_" + std::to_string(bad_k) +
                " != 0) — the thread-pool fan-out would compute a row "
                "before its intra-plane predecessor",
            std::move(w),
            "clear the plane-parallel flag (fall back to the sequential "
            "row order) or retile so every dependence advances j'_0");
  } else if (!pm.plane_parallel_claim && sound) {
    bool all_advance = true;
    for (int l = 0; l < q; ++l) {
      if (pm.Dp(0, l) < 1) {
        all_advance = false;
        break;
      }
    }
    if (all_advance && n > 2) {
      ctx.add(rule, Severity::kWarning,
              "plane-parallel fan-out is legal for this plan (every "
              "dependence advances j'_0) but the plan does not claim it",
              Witness{},
              "enable the plane-parallel flag to let kThreadPool fan "
              "rows out");
    }
  }

  // (b) slot-delta and alias-distance claims, per window length.
  const std::size_t rows = pm.rows.size();
  const std::size_t uq = static_cast<std::size_t>(q);
  for (const auto& [len, lds] : pm.lds) {
    if (ctx.capped(rule)) break;
    if (lds.row_bases.size() != rows || lds.deltas.size() != rows * uq ||
        lds.alias.size() != rows * uq) {
      ctx.add(rule, Severity::kError,
              "row-plan claim tables of window length " +
                  std::to_string(len) + " are missing or mis-sized (" +
                  std::to_string(lds.deltas.size()) + " deltas, " +
                  std::to_string(lds.alias.size()) + " alias entries for " +
                  std::to_string(rows * uq) + " (row, dep) pairs)",
              Witness{}, "re-lower the plan; the row plan is corrupt");
      continue;
    }
    const i64 sstep = lds.strides[static_cast<std::size_t>(n - 1)];
    for (std::size_t r = 0; r < rows && !ctx.capped(rule); ++r) {
      const RowModel& row = pm.rows[r];
      for (int l = 0; l < q && !ctx.capped(rule); ++l) {
        // dep_delta re-derived from scalars: the condensed-coordinate
        // displacement of reading through D' column l from this row.
        i64 delta = 0;
        for (int k = 0; k < n; ++k) {
          const std::size_t uk = static_cast<std::size_t>(k);
          const i64 jp = row.start[uk];
          delta = add_ck(
              delta,
              mul_ck(sub_ck(floor_div(sub_ck(jp, pm.Dp(k, l)), pm.c[uk]),
                            floor_div(jp, pm.c[uk])),
                     lds.strides[uk]));
        }
        const std::size_t idx = r * uq + static_cast<std::size_t>(l);
        if (lds.deltas[idx] != delta) {
          Witness w;
          w.point = row.start;
          w.dep = pm.Dp.col(l);
          w.lds_slot = add_ck(lds.row_bases[r], lds.deltas[idx]);
          w.dim = n - 1;
          ctx.add(rule, Severity::kError,
                  "row-plan slot delta unsound: row " +
                      format_vec(row.start) + " dependence " +
                      format_vec(pm.Dp.col(l)) + " claims delta " +
                      std::to_string(lds.deltas[idx]) +
                      " but the LDS layout implies " + std::to_string(delta) +
                      " — the sweep would read the wrong slot",
                  std::move(w), "re-derive the row plan from the layout");
          continue;
        }
        // Alias distance the claimed delta implies, by the same division
        // rules the SIMD kernel applies to decide recurrence splits.
        const i64 diff = -delta;
        i64 expect = 0;
        if (sstep != 0 && diff != 0 && diff % sstep == 0) {
          const i64 m_full = diff / sstep;
          const i64 mag = m_full < 0 ? -m_full : m_full;
          expect = mag >= row.count ? 0 : m_full;
        }
        if (lds.alias[idx] != expect) {
          Witness w;
          w.point = row.start;
          w.dep = pm.Dp.col(l);
          w.lds_slot = add_ck(lds.row_bases[r], delta);
          w.dim = n - 1;
          ctx.add(rule, Severity::kError,
                  "SIMD alias-distance claim unsound: row " +
                      format_vec(row.start) + " dependence " +
                      format_vec(pm.Dp.col(l)) + " claims distance " +
                      std::to_string(lds.alias[idx]) +
                      " but delta/stride imply " + std::to_string(expect) +
                      " — the vectorized sweep would mis-split the "
                      "recurrence and read a lane before it is written",
                  std::move(w),
                  "derive alias distances from the row plan's deltas "
                  "(Kernel::row_alias_distance)");
        }
      }
    }
  }
}

}  // namespace

VerifyReport verify_plan(const PlanModel& model, const VerifyOptions& options) {
  CTILE_ASSERT_MSG(model.tiled != nullptr,
                   "PlanModel must reference its TiledNest");
  VerifyReport report;
  Ctx ctx{model, options, report, {}};
  check_v1(ctx);
  check_v2(ctx);
  check_v3(ctx);
  check_v4(ctx);
  check_v5(ctx);
  check_v6(ctx);
  check_v7(ctx);
  check_v8(ctx);
  return report;
}

VerifyReport verify_tiling(const TiledNest& tiled, int force_m,
                           const VerifyOptions& options) {
  const PlanModel model = lower_and_snapshot(tiled, force_m);
  return verify_plan(model, options);
}

}  // namespace ctile::verify
