// ctile-verify: the static legality & schedule analyzer.
//
// Proves, over a fully-lowered PlanModel, the safety conditions the
// runtime's fast paths assume but (since the slot-table and
// strength-reduced-sweep optimizations) no longer check per point:
//
//   V1  tiling legality: every dependence column of H D is componentwise
//       non-negative (H lies in the tiling cone of D, deps/tiling_cone),
//       hence every tile dependence is lexicographically non-negative.
//   V2  halo sufficiency: for every per-window LDS layout,
//       off_k >= ceil(max_l d'_kl / c_k) with D' = H' D, and every
//       compute (dep_delta) and slot-table (pack/unpack) access of the
//       executors is provably in-bounds; a violation is reported with
//       the concrete out-of-range LDS slot.
//   V3  communication completeness: every cross-tile dependence edge
//       between distinct processors is covered by exactly one packed
//       message of the CC-derived schedule — the pack region contains
//       the needed data (checked symbolically per dimension, no lattice
//       enumeration), a unique receiving tile exists, and the data
//       arrives no later than its consumer tile executes.
//   V4  schedule soundness & deadlock freedom: the linear schedule
//       Pi = [1,...,1] strictly orders every tile dependence, and the
//       per-step wait-for relation of the mpisim send/recv program
//       (blocking receives, buffered sends, chains executed in t order)
//       is acyclic.
//   V5  interior-classifier soundness: no tile marked interior has a
//       lattice point outside the iteration space or a dependence
//       predecessor outside it (the two facts that let the fast sweep
//       drop contains() tests and initial-value branches).
//   V6  race freedom: the happens-before graph of the pipelined
//       schedule's per-(rank, tile, phase) events (hb_graph.hpp) orders
//       every conflicting pair of LDS-slot accesses — remainder/band/
//       pack within a tile, pack/unpack across ranks, compute vs
//       write-back — and every cross-rank read has an HB-ordered
//       covering writer.  Unordered pairs are reported with the slot
//       and both events.
//   V7  buffer-lifetime safety: under mpisim's pool discipline no pack
//       region is rewritten between isend initiation and the transit
//       copy, and pool recycling never aliases an in-flight message.
//   V8  parallel-policy soundness: the plane-parallel (kThreadPool)
//       fan-out claim holds against D' (no d'_0 = 0 dependence connects
//       distinct rows of a plane), and every per-(row, dependence) slot
//       delta and SIMD alias distance the compiled row plan claims
//       matches the value the LDS layout implies.
//
// V6-V8 need the concurrency facts of a CompiledPlan snapshot
// (snapshot_compiled / lower_and_snapshot) and pass vacuously on a bare
// snapshot_plan.
//
// Rules re-derive each layer of the plan from the layers beneath it, so
// a mutation anywhere in the lowering pipeline is caught by the rule
// owning that layer, with a concrete witness.
#pragma once

#include "verify/diagnostic.hpp"
#include "verify/plan_model.hpp"

namespace ctile::verify {

struct VerifyOptions {
  /// Run the explicit wait-for-graph acyclicity check of V4 (the graph
  /// is |valid tiles| nodes; disable only for huge tile spaces, where
  /// the Pi-orders-every-dependence check still proves acyclicity).
  bool check_deadlock_graph = true;

  /// V5 verifies interior tiles exactly (point walk) only when the tile
  /// has at most this many points and the cheap convexity (corner)
  /// proof failed; larger unprovable tiles get a warning instead.
  i64 max_exact_points_per_tile = 1 << 20;

  /// Cap on diagnostics emitted per rule (a broken plan violates the
  /// same rule at many sites; the first witnesses are the useful ones).
  i64 max_findings_per_rule = 16;
};

/// Run rules V1..V8 over the model and return every finding.
VerifyReport verify_plan(const PlanModel& model,
                         const VerifyOptions& options = {});

/// Convenience for callers holding only a TiledNest: lowers the full
/// plan (census, mapping, LDS, comm plan, classifier) and verifies it.
VerifyReport verify_tiling(const TiledNest& tiled, int force_m = -1,
                           const VerifyOptions& options = {});

}  // namespace ctile::verify
