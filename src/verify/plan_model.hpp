// A pure-data snapshot of a fully-lowered tiling plan, the input of the
// static verifier.
//
// The verifier does not inspect live runtime objects: it checks a
// PlanModel — every derived artifact of the lowering pipeline (transform
// matrices, tile dependencies, mesh/chain mapping, per-window LDS
// layouts, communication directions, interior flags) copied into plain
// fields.  Rules re-derive each layer from the layers below it and
// compare, so an inconsistency introduced at ANY stage of lowering — or
// by a mutation test perturbing one field — surfaces in the rule that
// owns that layer.  The only live reference kept is the TiledNest, used
// for exact iteration-space geometry (it is the specification the plan
// is verified against, not part of the plan).
#pragma once

#include <map>

#include "runtime/comm_plan.hpp"
#include "tiling/interior.hpp"

namespace ctile::verify {

/// Per-processor LDS layout facts for one chain-window length.
struct LdsModel {
  i64 window_len = 0;  ///< |t|: tiles in this window
  VecI off;            ///< halo offset per dimension (slots)
  VecI ext;            ///< total extent per dimension (slots)
  VecI tile_slots;     ///< v_k / c_k per dimension
  VecI strides;        ///< row-major linear strides
  i64 chain_step = 0;  ///< linear-slot increment per chain step
  i64 size = 0;        ///< total slots
};

/// One SEND direction: processor dependence and its pack region.
struct DirectionModel {
  VecI dm;          ///< processor dependence (n-1 components)
  TtisRegion pack;  ///< TTIS sub-box packed for this direction
};

/// One tile dependence and its communication classification.
struct TileDepModel {
  VecI ds;       ///< tile-space dependence (n components)
  VecI dm;       ///< processor projection (n-1 components)
  int dir = -1;  ///< index into PlanModel::directions, -1 chain-internal
};

struct PlanModel {
  /// Exact iteration-space geometry (the spec; never mutated by tests).
  const TiledNest* tiled = nullptr;

  int n = 0;  ///< loop depth
  int m = 0;  ///< chain (mapping) dimension

  MatQ H;   ///< tiling matrix
  MatI D;   ///< dependence matrix (columns)
  MatI Hp;  ///< H' = V H
  VecI v;   ///< TTIS extents v_k (diagonal of V)
  VecI c;   ///< TTIS strides c_k (diagonal of HNF(H'))
  MatI Dp;  ///< transformed dependencies D' = H' D

  VecI pi;       ///< linear schedule Pi (the paper's [1,...,1])
  VecI dep_max;  ///< max_l d'_kl per dimension
  VecI cc;       ///< communication vector cc_k = v_k - dep_max_k

  /// Delivery discipline the executor runs.  Pipelined (the default
  /// overlapped schedule) means receives are pre-posted and sends are
  /// non-blocking isends matched by (source rank, tag) alone — channel
  /// FIFO order no longer disambiguates two in-flight messages, so V3
  /// additionally proves per-receiver tag uniqueness and V4 covers the
  /// relaxed wait-for discipline.  Set false to verify only the
  /// strictly-blocking reference schedule.
  bool pipelined = true;
  i64 chain_length = 0;  ///< global chain length (the message tag stride)

  VecI mesh_lo;  ///< tile-space bounding box used by the mapping
  VecI mesh_hi;
  VecI grid;     ///< processor-mesh extents (n-1 components)

  std::vector<VecI> valid_tiles;  ///< lex-sorted valid (nonempty) tiles
  std::map<VecI, IntRange> windows;  ///< chain window per mesh pid

  std::vector<DirectionModel> directions;
  std::vector<TileDepModel> tile_deps;

  std::map<i64, LdsModel> lds;  ///< per distinct chain-window length

  std::vector<VecI> interior_tiles;  ///< valid tiles flagged interior

  // -- Pure helpers over the snapshot (no live runtime objects). --

  bool is_valid_tile(const VecI& js) const;
  /// Mesh pid (n-1 comps) and chain coordinate t of a tile.
  std::pair<VecI, i64> owner_of(const VecI& js) const;
  bool on_mesh(const VecI& pid) const;
  /// Chain window of pid; empty range if pid owns no valid tile.
  IntRange window_of(const VecI& pid) const;
  /// Lexicographically minimum valid successor of s in direction `dir`
  /// under THIS model's tile-dep set; false if none.
  bool minsucc(const VecI& s, int dir, VecI* out) const;
};

/// Snapshot an already-lowered plan.  `window_layouts` supplies the
/// per-chain-window-length LDS layouts (the parallel executor's
/// RankLocal cache); `classifier` may be null (no V5 facts).
PlanModel snapshot_plan(
    const TiledNest& tiled, const Mapping& mapping, const CommPlan& plan,
    const std::vector<std::pair<i64, const LdsLayout*>>& window_layouts,
    const TileClassifier* classifier);

/// One-stop lowering for the CLI and tests: builds census, mapping,
/// canonical + per-window LDS layouts, comm plan and classifier exactly
/// as ParallelExecutor does, then snapshots.  The returned model only
/// references `tiled`, which must outlive it.
PlanModel lower_and_snapshot(const TiledNest& tiled, int force_m = -1);

}  // namespace ctile::verify
