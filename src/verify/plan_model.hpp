// A pure-data snapshot of a fully-lowered tiling plan, the input of the
// static verifier.
//
// The verifier does not inspect live runtime objects: it checks a
// PlanModel — every derived artifact of the lowering pipeline (transform
// matrices, tile dependencies, mesh/chain mapping, per-window LDS
// layouts, communication directions, interior flags) copied into plain
// fields.  Rules re-derive each layer from the layers below it and
// compare, so an inconsistency introduced at ANY stage of lowering — or
// by a mutation test perturbing one field — surfaces in the rule that
// owns that layer.  The only live reference kept is the TiledNest, used
// for exact iteration-space geometry (it is the specification the plan
// is verified against, not part of the plan).
#pragma once

#include <functional>
#include <map>

#include "runtime/comm_plan.hpp"
#include "tiling/interior.hpp"

namespace ctile {
class CompiledPlan;
}  // namespace ctile

namespace ctile::verify {

/// Per-processor LDS layout facts for one chain-window length.
struct LdsModel {
  i64 window_len = 0;  ///< |t|: tiles in this window
  VecI off;            ///< halo offset per dimension (slots)
  VecI ext;            ///< total extent per dimension (slots)
  VecI tile_slots;     ///< v_k / c_k per dimension
  VecI strides;        ///< row-major linear strides
  i64 chain_step = 0;  ///< linear-slot increment per chain step
  i64 size = 0;        ///< total slots

  // Row-plan claims of this window's RankLocal (present only with
  // concurrency facts, i.e. when snapshotted from a CompiledPlan).
  // Indexed like the runtime tables: per PlanModel::rows entry r and
  // dependence column l, entry r * q + l.
  std::vector<i64> row_bases;  ///< per-row linear base slot at t = 0
  std::vector<i64> deltas;     ///< claimed per-(row, dep) slot deltas
  std::vector<i64> alias;      ///< claimed in-row alias distances (V8)
};

/// One SEND direction: processor dependence and its pack region.
struct DirectionModel {
  VecI dm;          ///< processor dependence (n-1 components)
  TtisRegion pack;  ///< TTIS sub-box packed for this direction
};

/// One tile dependence and its communication classification.
struct TileDepModel {
  VecI ds;       ///< tile-space dependence (n components)
  VecI dm;       ///< processor projection (n-1 components)
  int dir = -1;  ///< index into PlanModel::directions, -1 chain-internal
};

/// One TTIS row of the full tile (TtisRowWalker order): the unit of the
/// strength-reduced sweep, the band/remainder split and the kThreadPool
/// plane fan-out.  Row geometry is tile-invariant, so one global list
/// describes every tile of the plan.
struct RowModel {
  i64 plane = 0;  ///< j'_0 of the row (plane grouping)
  i64 count = 0;  ///< lattice points in the row
  VecI start;     ///< TTIS coordinates of the row's first point
};

/// The intra-tile phase-ordering facts the executors export — which
/// program-order happens-before edges the running schedule actually
/// establishes.  The HB graph (hb_graph.hpp) draws its edges from these
/// flags; V6 proves the edges suffice.  All true for the shipped
/// executors; mutation tests flip one to drop the corresponding edge.
struct ScheduleModel {
  /// A pre-posted irecv's payload is unpacked only after the matching
  /// wait completes (never at post time) — the message HB edge lands
  /// before the unpack's LDS writes.
  bool unpack_at_wait = true;
  /// The remainder (boundary) sweep of a tile completes before its band
  /// sweep starts (remainder-first split legality).
  bool remainder_before_band = true;
  /// pack + isend of a tile fires only after its band sweep completes —
  /// the pack reads slots the band wrote.
  bool band_before_send = true;
};

/// The mpisim buffer-pool discipline (mpisim::PoolDiscipline snapshot);
/// V7's model of message-buffer lifetimes.
struct PoolModel {
  bool eager_transit_copy = true;
  bool sender_buffer_recycled_at_initiation = true;
  bool transit_released_after_unpack = true;
  i64 max_pooled_buffers = 0;
};

struct PlanModel {
  /// Exact iteration-space geometry (the spec; never mutated by tests).
  const TiledNest* tiled = nullptr;

  int n = 0;  ///< loop depth
  int m = 0;  ///< chain (mapping) dimension

  MatQ H;   ///< tiling matrix
  MatI D;   ///< dependence matrix (columns)
  MatI Hp;  ///< H' = V H
  VecI v;   ///< TTIS extents v_k (diagonal of V)
  VecI c;   ///< TTIS strides c_k (diagonal of HNF(H'))
  MatI Dp;  ///< transformed dependencies D' = H' D

  VecI pi;       ///< linear schedule Pi (the paper's [1,...,1])
  VecI dep_max;  ///< max_l d'_kl per dimension
  VecI cc;       ///< communication vector cc_k = v_k - dep_max_k

  /// Delivery discipline the executor runs.  Pipelined (the default
  /// overlapped schedule) means receives are pre-posted and sends are
  /// non-blocking isends matched by (source rank, tag) alone — channel
  /// FIFO order no longer disambiguates two in-flight messages, so V3
  /// additionally proves per-receiver tag uniqueness and V4 covers the
  /// relaxed wait-for discipline.  Set false to verify only the
  /// strictly-blocking reference schedule.
  bool pipelined = true;
  i64 chain_length = 0;  ///< global chain length (the message tag stride)

  VecI mesh_lo;  ///< tile-space bounding box used by the mapping
  VecI mesh_hi;
  VecI grid;     ///< processor-mesh extents (n-1 components)

  std::vector<VecI> valid_tiles;  ///< lex-sorted valid (nonempty) tiles
  std::map<VecI, IntRange> windows;  ///< chain window per mesh pid

  std::vector<DirectionModel> directions;
  std::vector<TileDepModel> tile_deps;

  std::map<i64, LdsModel> lds;  ///< per distinct chain-window length

  std::vector<VecI> interior_tiles;  ///< valid tiles flagged interior

  // -- Concurrency facts (V6-V8), present when snapshotted from a
  // CompiledPlan (snapshot_compiled / lower_and_snapshot); absent on a
  // bare snapshot_plan, in which case V6-V8 have nothing to prove and
  // pass vacuously. --

  bool has_concurrency_facts = false;
  std::vector<RowModel> rows;  ///< TTIS rows of the full tile, walker order
  /// Per-row band split index from the plan's BandSplit: in-row indices
  /// >= band_split[r] belong to the boundary band (packed + sent),
  /// < band_split[r] to the remainder swept first.
  std::vector<i64> band_split;
  ScheduleModel schedule;
  PoolModel pool;
  /// The plan's claim that distinct rows of one j'_0-plane carry no
  /// dependence between them (kThreadPool fan-out legality); V8 proves
  /// or refutes it against D'.
  bool plane_parallel_claim = false;

  // -- Pure helpers over the snapshot (no live runtime objects). --

  bool is_valid_tile(const VecI& js) const;
  /// Mesh pid (n-1 comps) and chain coordinate t of a tile.
  std::pair<VecI, i64> owner_of(const VecI& js) const;
  bool on_mesh(const VecI& pid) const;
  /// Chain window of pid; empty range if pid owns no valid tile.
  IntRange window_of(const VecI& pid) const;
  /// Lexicographically minimum valid successor of s in direction `dir`
  /// under THIS model's tile-dep set; false if none.
  bool minsucc(const VecI& s, int dir, VecI* out) const;
};

/// Snapshot an already-lowered plan.  `window_layouts` supplies the
/// per-chain-window-length LDS layouts (the parallel executor's
/// RankLocal cache); `classifier` may be null (no V5 facts).
PlanModel snapshot_plan(
    const TiledNest& tiled, const Mapping& mapping, const CommPlan& plan,
    const std::vector<std::pair<i64, const LdsLayout*>>& window_layouts,
    const TileClassifier* classifier);

/// Snapshot a CompiledPlan, including the concurrency facts V6-V8 prove
/// (band split, row plan + alias claims, schedule ordering, pool
/// discipline, plane-parallel claim).  The returned model references
/// the plan's TiledNest; callers that outlive the plan must repoint
/// `tiled` at an equivalent nest of their own (lower_and_snapshot
/// does).
PlanModel snapshot_compiled(const CompiledPlan& plan);

/// One-stop lowering for the CLI and tests: compiles the plan exactly
/// as ParallelExecutor does (CompiledPlan::compile_parallel) and
/// snapshots it with full concurrency facts.  The returned model only
/// references `tiled`, which must outlive it.
PlanModel lower_and_snapshot(const TiledNest& tiled, int force_m = -1);

/// Invoke fn(pred, dep_index, receiver) for every RECEIVE the parallel
/// executor performs: receiver is the lexicographically minimum valid
/// successor of pred in the dependence's direction.  This is the
/// executor's receive predicate replayed over the model; shared by the
/// verifier rules and the HB-graph builder.
void for_each_receive_event(
    const PlanModel& pm,
    const std::function<void(const VecI&, std::size_t, const VecI&)>& fn);

}  // namespace ctile::verify
