#include "cluster/simulator.hpp"

#include <algorithm>
#include <tuple>

#include "linalg/int_matops.hpp"

namespace ctile {

SimResult simulate_cluster(const TiledNest& tiled, const Mapping& mapping,
                           const LdsLayout& lds, const CommPlan& plan,
                           const TileCensus& census,
                           const MachineModel& machine, int arity,
                           CommSchedule schedule) {
  (void)tiled;  // kept for interface symmetry; census carries the counts
  (void)lds;    // geometry is already baked into the plan's regions
  const int nprocs = mapping.num_procs();
  const int m = mapping.m();
  const i64 chain = mapping.chain_length();
  const bool overlapped = schedule == CommSchedule::kOverlapped;

  SimResult result;
  result.total_points = census.total();
  result.sequential =
      static_cast<double>(census.total()) * machine.sec_per_iter;

  // Per-processor CPU clock, per-NIC (DMA engine) availability for the
  // overlapped schedule, and arrival times of messages keyed by
  // (receiver rank, direction, sender chain position).
  std::vector<double> clock(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<double> nic_free(static_cast<std::size_t>(nprocs), 0.0);
  std::map<std::tuple<int, int, i64>, double> arrival;

  // Enumerate pids in lexicographic order once.
  std::vector<VecI> pids;
  pids.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) pids.push_back(mapping.pid_of(r));

  const auto& dirs = plan.directions();
  for (i64 t = 0; t < chain; ++t) {
    for (int rank = 0; rank < nprocs; ++rank) {
      const VecI& pid = pids[static_cast<std::size_t>(rank)];
      const VecI js = mapping.tile_at(pid, t);
      if (!mapping.valid(js)) continue;
      double start = clock[static_cast<std::size_t>(rank)];

      // RECEIVE: wait for every inbound message; pay unpack cost.
      for (const TileDep& dep : plan.tile_deps()) {
        if (dep.dir < 0) continue;
        const VecI pred = vec_sub(js, dep.ds);
        if (!mapping.valid(pred)) continue;
        VecI ms;
        if (!plan.minsucc(pred, dep.dir, &ms) || ms != js) continue;
        const i64 sender_t = t - dep.ds[static_cast<std::size_t>(m)];
        auto key = std::make_tuple(rank, dep.dir, sender_t);
        auto it = arrival.find(key);
        CTILE_ASSERT_MSG(it != arrival.end(),
                         "simulator: message consumed before being sent — "
                         "event order violated");
        start = std::max(start, it->second);
        const double bytes =
            static_cast<double>(plan.message_points(dep.dir)) * arity *
            machine.bytes_per_value;
        // MPI_Recv software overhead + unpack copy.
        start += machine.per_message_overhead +
                 bytes * machine.per_byte_overhead;
      }

      // COMPUTE.
      const double work =
          static_cast<double>(census.count(js)) * machine.sec_per_iter;
      double now = start + work;
      result.compute_busy += work;
      ++result.tiles_executed;
      const std::size_t trace_idx = result.trace.size();
      result.trace.push_back(TileTrace{rank, t, start, now});

      // SEND: serialize outbound messages on the NIC.
      for (std::size_t d = 0; d < dirs.size(); ++d) {
        const int dir = static_cast<int>(d);
        bool any_valid_succ = false;
        VecI succ_owner_pid;
        for (const TileDep& dep : plan.tile_deps()) {
          if (dep.dir != dir) continue;
          if (mapping.valid(vec_add(js, dep.ds))) {
            any_valid_succ = true;
            break;
          }
        }
        if (!any_valid_succ) continue;
        if (!mapping.neighbor(pid, dirs[d].dm, &succ_owner_pid)) continue;
        const double bytes =
            static_cast<double>(plan.message_points(dir)) * arity *
            machine.bytes_per_value;
        const int dst = mapping.rank_of(succ_owner_pid);
        if (overlapped) {
          // Non-blocking send: the CPU pays initiation + pack only; the
          // NIC serializes transfers asynchronously.
          now += machine.per_message_overhead;
          now += bytes * machine.per_byte_overhead;
          double start_xfer =
              std::max(now, nic_free[static_cast<std::size_t>(rank)]);
          double end_xfer = start_xfer + bytes / machine.bandwidth;
          nic_free[static_cast<std::size_t>(rank)] = end_xfer;
          arrival[std::make_tuple(dst, dir, t)] = end_xfer + machine.latency;
        } else {
          // MPI_Send software overhead + pack copy + wire occupation,
          // all on the CPU's critical path.
          now += machine.per_message_overhead;
          now += bytes * machine.per_byte_overhead;
          now += bytes / machine.bandwidth;
          arrival[std::make_tuple(dst, dir, t)] = now + machine.latency;
        }
        ++result.messages;
        result.bytes += static_cast<i64>(bytes);
      }
      result.trace[trace_idx].end = now;  // include send time on the CPU
      clock[static_cast<std::size_t>(rank)] = now;
    }
  }
  result.makespan = *std::max_element(clock.begin(), clock.end());
  if (result.makespan > 0.0) {
    result.speedup = result.sequential / result.makespan;
  }
  return result;
}

DrainProfile drain_profile(const SimResult& result) {
  DrainProfile profile;
  if (result.trace.empty()) return profile;
  // Per-rank first compute start and last retire time.
  std::map<int, double> first_start;
  std::map<int, double> last_end;
  for (const TileTrace& tt : result.trace) {
    auto [fs, inserted] = first_start.try_emplace(tt.rank, tt.start);
    if (!inserted) fs->second = std::min(fs->second, tt.start);
    auto [le, fresh] = last_end.try_emplace(tt.rank, tt.end);
    if (!fresh) le->second = std::max(le->second, tt.end);
  }
  double all_started = 0.0;
  for (const auto& [rank, start] : first_start) {
    all_started = std::max(all_started, start);
  }
  double first_finished = result.makespan;
  for (const auto& [rank, end] : last_end) {
    first_finished = std::min(first_finished, end);
  }
  // Exact partition of [0, makespan]: fill ends when everyone has
  // started; steady ends when the first rank retires (clamped to the
  // fill boundary — with more ranks than pipeline parallelism the mesh
  // is never fully busy at once and steady collapses to zero).
  const double steady_end = std::max(first_finished, all_started);
  profile.fill = all_started;
  profile.steady = steady_end - all_started;
  profile.drain = result.makespan - steady_end;
  return profile;
}

SimResult simulate_tiled_program(const TiledNest& tiled,
                                 const MachineModel& machine, int arity,
                                 int force_m, CommSchedule schedule) {
  TileCensus census(tiled);
  Mapping mapping(tiled, force_m, &census);
  LdsLayout lds(tiled, mapping);
  CommPlan plan(tiled, mapping, lds);
  return simulate_cluster(tiled, mapping, lds, plan, census, machine, arity,
                          schedule);
}

}  // namespace ctile
