// Per-kernel communication lower bound for a candidate tiling — the
// pruning oracle of the shape search (DESIGN.md §15).
//
// Dinh-Demmel ("Communication-Optimal Tilings for Projective Nested
// Loops", arXiv 2003.00119) bound communication by a surface-to-volume
// argument: whatever a processor computes, the values read across its
// boundary must cross the network.  This module instantiates that
// argument *exactly* for the uniform-dependence execution model this
// runtime implements (owner-computes, no recomputation, one owner per
// tile, chain dimension resident on its processor):
//
//   For a tile T and a dimension k of the processor mesh, every point j
//   of T whose TTIS coordinate satisfies j'_k >= v_k - d'_kl for some
//   dependence l is read by j + d_l, which lies in a tile with a
//   different mesh coordinate k — a different processor.  Its value
//   therefore crosses the network at least once.  Taking s_k =
//   max_l d'_kl, the union over mesh dimensions of these boundary slabs
//   is a set of points whose values MUST be communicated; counting each
//   point once (the runtime may send it to several successors — we
//   don't) gives a lower bound on the distinct-value traffic.
//
// The union is bounded from below without enumerating lattice points:
//   |union| = tile_size - |complement|,  and the complement lives in
//   the sub-box prod_k [0, v_k - s_k) whose TTIS-lattice population is
//   at most prod_k ceil((v_k - s_k) / c_k) (per-dimension marginal
//   counts of the lower-triangular HNF lattice multiply upward).
//
// Only tiles whose whole dependence neighborhood provably exists are
// counted: a tile is *deep interior* when its own parallelepiped and
// every {0,1}^n-neighbor's parallelepiped have all 2^n corners inside
// the iteration space — by convexity the closed cells are then inside,
// so every boundary-slab read target is a real iteration point (the
// same corner certificate TileClassifier uses).  Everything else is
// conservatively assumed free, which keeps the bound sound on arbitrary
// (non-rectangular) spaces.
//
// The time bound is the work bound: nprocs * makespan >= total compute
// + the CPU cost both schedules must pay per communicated byte (pack on
// the sender, unpack on the receiver).  Wire time and per-message costs
// are deliberately excluded so one bound is valid for both kBlocking
// and kOverlapped.
#pragma once

#include "cluster/machine.hpp"
#include "deps/loop_nest.hpp"
#include "linalg/matrix.hpp"
#include "tiling/tile_space.hpp"

namespace ctile {

struct CommBoundResult {
  /// Distinct values that must cross processors, counted once each.
  i64 points_lb = 0;
  /// points_lb * arity * bytes_per_value.
  i64 bytes_lb = 0;
  /// Work-bound makespan floor: (compute + 2*per_byte_overhead*bytes_lb)
  /// / num_procs.  Valid for both comm schedules.
  double time_lb_s = 0.0;
  /// Deep-interior tiles the bound counted (certificate statistics).
  i64 full_tiles = 0;
  /// Tiles in the tile-space bounding box.
  i64 tiles_in_box = 0;
  i64 total_points = 0;  ///< |J^n| = volume of the pre-skew box
  i64 tile_size = 0;     ///< points per full tile
  int num_procs = 0;
  i64 chain_length = 0;
};

/// Compute the bound for tiling `h` of `nest` under `machine`.
/// `orig_lo`/`orig_hi` is the pre-skew rectangular box of the nest (the
/// same box LoweringKnobs::census_from_box consumes); its volume is
/// |J^n| exactly because the skew is unimodular.  Throws LegalityError
/// when the tiling is structurally invalid (illegal against the
/// dependences or singular) — the same rejection lowering would issue,
/// surfaced before any lowering cost is paid.
CommBoundResult comm_lower_bound(const LoopNest& nest, const MatQ& h,
                                 int force_m, int arity,
                                 const MachineModel& machine,
                                 const VecI& orig_lo, const VecI& orig_hi);

/// Same bound for an already-built TiledNest: the shape search builds
/// the (expensive) tile space once per candidate and shares it between
/// the bound and — when the candidate survives pruning — the lowering.
CommBoundResult comm_lower_bound(const TiledNest& tiled, int force_m,
                                 int arity, const MachineModel& machine,
                                 const VecI& orig_lo, const VecI& orig_hi);

}  // namespace ctile
