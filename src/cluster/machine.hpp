// Cost model of the paper's testbed: 16 identical Pentium III 500MHz
// nodes, 128MB RAM, Linux 2.2, FastEthernet, MPICH-era MPI, gcc -O2.
//
// Absolute 2002 numbers are unknowable to the last percent; what matters
// for reproducing Figures 5-10 is the *ratio* of per-iteration compute
// cost to per-message cost, which controls both the achievable speedup
// plateau and the tile-size sweet spot (small tiles: latency-bound
// pipeline; large tiles: long pipeline fill/drain).  The defaults below
// are conservative public figures for that hardware class:
//   - ~10 ns/cycle, a 3-array stencil iteration ~ 40-80 cycles with
//     memory traffic  =>  ~120 ns per iteration
//   - TCP/MPI round latency on FastEthernet  =>  ~120 us one-way
//   - sustained FastEthernet throughput  =>  ~11.5 MB/s
#pragma once

#include "support/checked_int.hpp"

namespace ctile {

struct MachineModel {
  double sec_per_iter;       ///< compute seconds per iteration point
  double latency;            ///< one-way message latency (seconds)
  double bandwidth;          ///< link bandwidth (bytes/second)
  double per_byte_overhead;  ///< sender+receiver CPU cost per payload byte
                             ///< (pack + unpack memcpy)
  double per_message_overhead;  ///< fixed CPU cost per MPI_Send and per
                                ///< MPI_Recv (syscall + TCP stack on
                                ///< Linux 2.2 era hardware)
  int bytes_per_value;       ///< payload bytes per stored double

  /// The paper's testbed (see header comment).
  static MachineModel fast_ethernet_cluster() {
    MachineModel m;
    m.sec_per_iter = 300e-9;
    m.latency = 120e-6;
    m.bandwidth = 11.5e6;
    m.per_byte_overhead = 4e-9;  // ~two memcpy passes at ~250 MB/s
    m.per_message_overhead = 60e-6;
    m.bytes_per_value = 8;
    return m;
  }

  /// An idealized machine: zero communication cost (for model sanity
  /// tests: speedup must then approach the processor count).
  static MachineModel zero_comm(double sec_per_iter = 100e-9) {
    MachineModel m;
    m.sec_per_iter = sec_per_iter;
    m.latency = 0.0;
    m.bandwidth = 1e30;
    m.per_byte_overhead = 0.0;
    m.per_message_overhead = 0.0;
    m.bytes_per_value = 8;
    return m;
  }
};

}  // namespace ctile
