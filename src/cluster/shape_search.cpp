#include "cluster/shape_search.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <optional>
#include <thread>

#include "deps/tiling_cone.hpp"
#include "linalg/int_matops.hpp"
#include "mpisim/mpisim.hpp"
#include "runtime/exec_policy.hpp"

namespace ctile {

namespace {

using Clock = std::chrono::steady_clock;

double secs_since_epoch(mpisim::Comm::Clock::time_point tp) {
  return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

int env_int(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  const int v = std::atoi(s);
  return v > 0 ? v : fallback;
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const int env = env_int("CTILE_SHAPE_THREADS", 0);
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolve_budget(int requested) {
  if (requested > 0) return requested;
  return env_int("CTILE_SHAPE_BUDGET", 512);
}

i64 floor_div_i64(i64 a, i64 b) {
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Smallest scale s such that the tile count along `dir` — over the
/// original box, through the skew — is <= target: the benches' mesh
/// fitting (floor(hi/s) - floor(lo/s) + 1 tiles for the transformed
/// interval [lo, hi] of dir . (T j0)).
i64 fit_scale(const VecI& dir, const MatI& skew, const VecI& lo,
              const VecI& hi, i64 target) {
  const int n = static_cast<int>(lo.size());
  // g = dir^T T (row vector through the skew; identity when unset).
  VecI g(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < n; ++c) {
    if (skew.rows() == n && skew.cols() == n) {
      i64 acc = 0;
      for (int r = 0; r < n; ++r) {
        acc = add_ck(acc, mul_ck(dir[static_cast<std::size_t>(r)], skew(r, c)));
      }
      g[static_cast<std::size_t>(c)] = acc;
    } else {
      g[static_cast<std::size_t>(c)] = dir[static_cast<std::size_t>(c)];
    }
  }
  i64 lo_d = 0;
  i64 hi_d = 0;
  for (int k = 0; k < n; ++k) {
    const i64 a = mul_ck(g[static_cast<std::size_t>(k)],
                         lo[static_cast<std::size_t>(k)]);
    const i64 b = mul_ck(g[static_cast<std::size_t>(k)],
                         hi[static_cast<std::size_t>(k)]);
    lo_d = add_ck(lo_d, std::min(a, b));
    hi_d = add_ck(hi_d, std::max(a, b));
  }
  const i64 span = hi_d - lo_d + 1;
  for (i64 s = 1; s <= span; ++s) {
    if (floor_div_i64(hi_d, s) - floor_div_i64(lo_d, s) + 1 <= target) {
      return s;
    }
  }
  return span > 0 ? span : 1;
}

MachineKeyFields machine_key_fields(const MachineModel& machine) {
  MachineKeyFields f;
  f.sec_per_iter = machine.sec_per_iter;
  f.latency = machine.latency;
  f.bandwidth = machine.bandwidth;
  f.per_byte_overhead = machine.per_byte_overhead;
  f.per_message_overhead = machine.per_message_overhead;
  f.bytes_per_value = machine.bytes_per_value;
  return f;
}

}  // namespace

std::vector<SurfaceCandidate> surface_candidates(
    const MatI& deps, const ShapeSearchRequest& request) {
  const int n = deps.rows();
  CTILE_ASSERT_MSG(request.force_m >= 0 && request.force_m < n,
                   "surface_candidates: force_m out of range");
  const bool fit = request.mesh_extent > 0;
  CTILE_ASSERT_MSG(
      fit || static_cast<int>(request.mesh_scales.size()) == n - 1,
      "surface_candidates: need n-1 mesh scales (or mesh_extent)");
  CTILE_ASSERT_MSG(!fit || (static_cast<int>(request.orig_lo.size()) == n &&
                            static_cast<int>(request.orig_hi.size()) == n),
                   "surface_candidates: mesh_extent needs the orig box");
  CTILE_ASSERT_MSG(!request.chain_factors.empty(),
                   "surface_candidates: need chain factors");

  std::vector<SurfaceCandidate> out;
  const std::vector<VecI> dirs = cone_surface_directions(deps);
  const int ndirs = static_cast<int>(dirs.size());
  if (ndirs < n) return out;

  // Every n-combination of surface directions, in lexicographic index
  // order (dirs is sorted, so the whole enumeration is deterministic).
  std::vector<int> comb(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) comb[static_cast<std::size_t>(i)] = i;
  const auto next_comb = [&]() {
    int i = n - 1;
    while (i >= 0 &&
           comb[static_cast<std::size_t>(i)] == ndirs - n + i) {
      --i;
    }
    if (i < 0) return false;
    comb[static_cast<std::size_t>(i)] += 1;
    for (int j = i + 1; j < n; ++j) {
      comb[static_cast<std::size_t>(j)] =
          comb[static_cast<std::size_t>(j - 1)] + 1;
    }
    return true;
  };

  do {
    // Independence is a property of the subset (row order flips only
    // the determinant's sign): check it once.
    MatI span(n, n);
    for (int r = 0; r < n; ++r) {
      const VecI& d = dirs[static_cast<std::size_t>(
          comb[static_cast<std::size_t>(r)])];
      for (int c = 0; c < n; ++c) span(r, c) = d[static_cast<std::size_t>(c)];
    }
    if (det(span) == 0) continue;

    // Each subset member takes a turn as the chain row; the remaining
    // members fill the mesh rows in ascending order.
    for (int chain_pos = 0; chain_pos < n; ++chain_pos) {
      const VecI& chain_dir = dirs[static_cast<std::size_t>(
          comb[static_cast<std::size_t>(chain_pos)])];
      std::vector<const VecI*> mesh;
      for (int i = 0; i < n; ++i) {
        if (i != chain_pos) {
          mesh.push_back(&dirs[static_cast<std::size_t>(
              comb[static_cast<std::size_t>(i)])]);
        }
      }
      // Mesh scales: fixed from the request, or fitted per direction so
      // every candidate spans (at most) the same mesh extent.
      std::vector<i64> scales;
      for (std::size_t i = 0; i < mesh.size(); ++i) {
        scales.push_back(fit ? fit_scale(*mesh[i], request.skew,
                                         request.orig_lo, request.orig_hi,
                                         request.mesh_extent)
                             : request.mesh_scales[i]);
      }
      for (i64 factor : request.chain_factors) {
        CTILE_ASSERT(factor >= 1);
        MatQ h(n, n);
        std::size_t mesh_row = 0;
        for (int r = 0; r < n; ++r) {
          const bool is_chain = r == request.force_m;
          const VecI& dir = is_chain ? chain_dir : *mesh[mesh_row];
          const i64 scale = is_chain ? factor : scales[mesh_row];
          CTILE_ASSERT(scale >= 1);
          for (int c = 0; c < n; ++c) {
            h(r, c) = Rat(dir[static_cast<std::size_t>(c)], scale);
          }
          if (!is_chain) ++mesh_row;
        }
        out.push_back(SurfaceCandidate{std::move(h), chain_dir, factor});
      }
    }
  } while (next_comb());
  return out;
}

double event_des_makespan(const CompiledPlan& plan,
                          const MachineModel& machine, int arity,
                          CommSchedule schedule, u64 seed) {
  const Mapping& mapping = plan.mapping();
  const CommPlan& cp = plan.comm_plan();
  const TileCensus& census = plan.census();
  const int nprocs = mapping.num_procs();
  const int m = mapping.m();
  const i64 chain = mapping.chain_length();
  const auto& dirs = cp.directions();
  const i64 ndirs = static_cast<i64>(dirs.size());
  const bool overlapped = schedule == CommSchedule::kOverlapped;

  mpisim::CommConfig config;
  config.backend = mpisim::Backend::kEvent;
  config.seed = seed;
  config.latency.per_message_s = machine.latency;
  config.latency.per_double_s =
      static_cast<double>(machine.bytes_per_value) / machine.bandwidth;

  std::vector<double> entry_s(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<double> end_s(static_cast<std::size_t>(nprocs), 0.0);

  mpisim::run_ranks(
      nprocs,
      [&](int rank, mpisim::Comm& comm) {
        entry_s[static_cast<std::size_t>(rank)] =
            secs_since_epoch(comm.now());
        const VecI pid = mapping.pid_of(rank);
        std::vector<mpisim::Request> in_flight;
        for (i64 t = 0; t < chain; ++t) {
          const VecI js = mapping.tile_at(pid, t);
          if (!mapping.valid(js)) continue;

          // RECEIVE: one message per inbound (pred, dir) whose minsucc
          // is this tile — the same matching rule the executor and the
          // analytic DES use.  Tag (sender_t, dir) is unique per
          // channel because distinct deps have distinct predecessors.
          for (const TileDep& dep : cp.tile_deps()) {
            if (dep.dir < 0) continue;
            const VecI pred = vec_sub(js, dep.ds);
            if (!mapping.valid(pred)) continue;
            VecI ms;
            if (!cp.minsucc(pred, dep.dir, &ms) || ms != js) continue;
            const i64 sender_t = t - dep.ds[static_cast<std::size_t>(m)];
            const int src = mapping.rank_of(mapping.owner_of(pred).first);
            std::vector<double> halo =
                comm.recv(rank, src, sender_t * ndirs + dep.dir);
            const double bytes = static_cast<double>(halo.size()) *
                                 machine.bytes_per_value;
            comm.release_buffer(rank, std::move(halo));
            // MPI_Recv software overhead + unpack copy (CPU).
            comm.advance(rank, machine.per_message_overhead +
                                   bytes * machine.per_byte_overhead);
          }

          // COMPUTE (virtual time; exact per-tile census count).
          comm.advance(rank, static_cast<double>(census.count(js)) *
                                 machine.sec_per_iter);

          // SEND: one aggregated message per successor direction with
          // any valid successor tile.
          for (std::size_t d = 0; d < dirs.size(); ++d) {
            const int dir = static_cast<int>(d);
            bool any_valid_succ = false;
            for (const TileDep& dep : cp.tile_deps()) {
              if (dep.dir != dir) continue;
              if (mapping.valid(vec_add(js, dep.ds))) {
                any_valid_succ = true;
                break;
              }
            }
            if (!any_valid_succ) continue;
            VecI succ_pid;
            if (!mapping.neighbor(pid, dirs[d].dm, &succ_pid)) continue;
            const std::size_t doubles = static_cast<std::size_t>(
                mul_ck(cp.message_points(dir), static_cast<i64>(arity)));
            const double bytes = static_cast<double>(doubles) *
                                 machine.bytes_per_value;
            // Pack copy + send software overhead (CPU), then the wire:
            // a blocking send occupies the rank for the transfer (the
            // latency model's per-double cost), isend hands it to the
            // NIC and returns.
            comm.advance(rank, machine.per_message_overhead +
                                   bytes * machine.per_byte_overhead);
            std::vector<double> halo = comm.acquire_buffer(rank, doubles);
            halo.assign(doubles, 1.0);
            const int dst = mapping.rank_of(succ_pid);
            const i64 tag = t * ndirs + dir;
            if (overlapped) {
              in_flight.push_back(comm.isend(rank, dst, tag,
                                             std::move(halo)));
            } else {
              comm.send(rank, dst, tag, std::move(halo));
            }
          }
        }
        comm.wait_all(in_flight);
        end_s[static_cast<std::size_t>(rank)] =
            secs_since_epoch(comm.now());
        comm.barrier(rank);
      },
      config);

  double lo = entry_s[0];
  double hi = end_s[0];
  for (double s : entry_s) lo = std::min(lo, s);
  for (double s : end_s) hi = std::max(hi, s);
  return hi - lo;
}

ShapeSearchResult autotune_tile_shape(const LoopNest& nest,
                                      const ShapeSearchRequest& request,
                                      const MachineModel& machine) {
  const Clock::time_point t_total = Clock::now();
  ShapeSearchResult result;

  PlanCache& cache =
      request.cache != nullptr ? *request.cache : global_plan_cache();
  LoweringKnobs knobs;
  knobs.force_m = request.force_m;
  knobs.census_from_box = true;
  knobs.orig_lo = request.orig_lo;
  knobs.orig_hi = request.orig_hi;
  knobs.skew = request.skew;
  knobs.machine = machine_key_fields(machine);

  // ---- Phase 1 (serial): enumerate, key, dedup, truncate.
  const Clock::time_point t_gen = Clock::now();
  struct Slot {
    ShapeScore score;
    PlanKey key;
  };
  std::vector<Slot> slots;
  std::unordered_map<std::string, std::size_t> seen;
  const int budget = resolve_budget(request.budget);
  const auto admit = [&](MatQ h, VecI chain_dir, i64 chain_factor,
                         const char* origin) {
    result.candidates += 1;
    PlanKey key =
        make_plan_key(nest, h, CompiledPlan::Kind::kParallel, knobs);
    if (seen.count(key.bytes) != 0) {
      result.duplicates += 1;
      return;
    }
    if (static_cast<int>(slots.size()) >= budget) {
      result.truncated += 1;
      return;
    }
    seen.emplace(key.bytes, slots.size());
    Slot slot;
    slot.score.h = std::move(h);
    slot.score.chain_dir = std::move(chain_dir);
    slot.score.chain_factor = chain_factor;
    slot.score.origin = origin;
    slot.score.plan_id = key.hex();
    slot.key = std::move(key);
    slots.push_back(std::move(slot));
  };
  if (request.surface) {
    for (SurfaceCandidate& c : surface_candidates(nest.deps, request)) {
      admit(std::move(c.h), std::move(c.chain_dir), c.chain_factor,
            "surface");
    }
  }
  for (const MatQ& h : request.extra) {
    VecI chain_dir;
    if (request.force_m < h.rows()) {
      VecI row(static_cast<std::size_t>(h.cols()), 0);
      // The primitive integer direction of the chain row (for reports;
      // rational rows scale out).
      i64 den = 1;
      for (int c = 0; c < h.cols(); ++c) {
        den = lcm_i64(den, h(request.force_m, c).den());
      }
      for (int c = 0; c < h.cols(); ++c) {
        const Rat& e = h(request.force_m, c);
        row[static_cast<std::size_t>(c)] = e.num() * (den / e.den());
      }
      chain_dir = primitive(row);
    }
    admit(h, std::move(chain_dir), 0, "extra");
  }
  result.gen_s = std::chrono::duration<double>(Clock::now() - t_gen).count();

  // ---- Phase 2 (parallel): bound, prune, lower, score.
  struct Shared {
    std::mutex mu;
    double incumbent = std::numeric_limits<double>::infinity();
    double bound_s = 0.0;
    double eval_s = 0.0;
    i64 cache_hits = 0;
    i64 cache_misses = 0;
    i64 memo_hits = 0;
  } shared;

  const auto worker = [&](i64 i) {
    Slot& slot = slots[static_cast<std::size_t>(i)];
    ShapeScore& sc = slot.score;

    if (request.memo != nullptr) {
      std::lock_guard<std::mutex> lock(request.memo->mu);
      auto it = request.memo->map.find(slot.key.bytes);
      if (it != request.memo->map.end()) {
        const ShapeScore& cached = it->second;
        sc.status = cached.status;
        sc.detail = cached.detail;
        sc.bound = cached.bound;
        sc.analytic = cached.analytic;
        sc.des_makespan_s = cached.des_makespan_s;
        sc.score_s = cached.score_s;
        std::lock_guard<std::mutex> stats(shared.mu);
        shared.memo_hits += 1;
        if (sc.status == ShapeStatus::kEvaluated) {
          shared.incumbent = std::min(shared.incumbent, sc.score_s);
        }
        return;
      }
    }

    // Build the tile space ONCE per candidate: the bound reads it here,
    // and when the candidate survives pruning the lowering below adopts
    // it instead of rebuilding (tile-space construction dominates both).
    const Clock::time_point t0 = Clock::now();
    std::optional<TiledNest> tiled;
    try {
      tiled.emplace(nest, TilingTransform(sc.h));
      sc.bound = comm_lower_bound(*tiled, request.force_m, request.arity,
                                  machine, request.orig_lo, request.orig_hi);
    } catch (const Error& e) {
      sc.status = ShapeStatus::kInvalid;
      sc.detail = e.what();
      std::lock_guard<std::mutex> stats(shared.mu);
      shared.bound_s +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      return;
    }
    {
      std::lock_guard<std::mutex> stats(shared.mu);
      shared.bound_s +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      // The 1e-6 slack absorbs accumulation-order noise: the DES sums
      // per-tile compute while the bound multiplies once, so a candidate
      // whose score ties the incumbent exactly can carry a bound a few
      // ULPs above it.  Pruning must stay winner-invariant under that.
      if (request.prune &&
          sc.bound.time_lb_s > shared.incumbent * (1.0 + 1e-6)) {
        sc.status = ShapeStatus::kPruned;
        sc.detail = "comm lower bound exceeds incumbent makespan";
        return;
      }
    }

    const Clock::time_point t1 = Clock::now();
    std::shared_ptr<const CompiledPlan> plan;
    bool was_hit = false;
    try {
      plan = cache.get_or_lower(
          slot.key,
          [&] {
            return CompiledPlan::compile_parallel(std::move(*tiled), knobs);
          },
          &was_hit);
    } catch (const Error& e) {
      sc.status = ShapeStatus::kInvalid;
      sc.detail = e.what();
      std::lock_guard<std::mutex> stats(shared.mu);
      shared.eval_s +=
          std::chrono::duration<double>(Clock::now() - t1).count();
      if (was_hit) {
        shared.cache_hits += 1;
      } else {
        shared.cache_misses += 1;
      }
      return;
    }
    sc.analytic = simulate_cluster(plan->tiled(), plan->mapping(),
                                   plan->lds(), plan->comm_plan(),
                                   plan->census(), machine, request.arity,
                                   request.schedule);
    if (request.scorer == ShapeScorer::kEventDes) {
      sc.des_makespan_s = event_des_makespan(*plan, machine, request.arity,
                                             request.schedule, request.seed);
      sc.score_s = sc.des_makespan_s;
    } else {
      sc.score_s = sc.analytic.makespan;
    }
    sc.status = ShapeStatus::kEvaluated;
    {
      std::lock_guard<std::mutex> stats(shared.mu);
      shared.eval_s +=
          std::chrono::duration<double>(Clock::now() - t1).count();
      if (was_hit) {
        shared.cache_hits += 1;
      } else {
        shared.cache_misses += 1;
      }
      shared.incumbent = std::min(shared.incumbent, sc.score_s);
    }
    if (request.memo != nullptr) {
      std::lock_guard<std::mutex> lock(request.memo->mu);
      request.memo->map.emplace(slot.key.bytes, sc);
    }
  };

  const int threads =
      std::min<int>(resolve_threads(request.threads),
                    std::max<int>(1, static_cast<int>(slots.size())));
  if (threads <= 1) {
    for (i64 i = 0; i < static_cast<i64>(slots.size()); ++i) worker(i);
  } else {
    exec::ThreadPool pool(threads - 1);  // caller participates
    pool.parallel_for(static_cast<i64>(slots.size()), worker);
  }

  // ---- Phase 3 (serial): deterministic reduction.  Smallest score,
  // ties to the smallest enumeration index — independent of thread
  // count, prune timing and scheduler seed.
  result.scores.reserve(slots.size());
  for (Slot& slot : slots) result.scores.push_back(std::move(slot.score));
  bool found = false;
  for (std::size_t i = 0; i < result.scores.size(); ++i) {
    const ShapeScore& sc = result.scores[i];
    switch (sc.status) {
      case ShapeStatus::kEvaluated:
        result.evaluated += 1;
        if (!found || sc.score_s < result.scores[result.best_index].score_s) {
          result.best_index = i;
          found = true;
        }
        break;
      case ShapeStatus::kPruned:
        result.pruned += 1;
        break;
      case ShapeStatus::kInvalid:
        result.invalid += 1;
        break;
    }
  }
  result.cache_hits = shared.cache_hits;
  result.cache_misses = shared.cache_misses;
  result.memo_hits = shared.memo_hits;
  result.bound_s = shared.bound_s;
  result.eval_s = shared.eval_s;
  result.total_s =
      std::chrono::duration<double>(Clock::now() - t_total).count();
  if (!found) {
    throw Error("autotune_tile_shape: no candidate survived evaluation for " +
                nest.name);
  }
  return result;
}

}  // namespace ctile
