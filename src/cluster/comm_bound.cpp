#include "cluster/comm_bound.hpp"

#include <algorithm>

#include "linalg/int_matops.hpp"
#include "linalg/rat_matops.hpp"
#include "runtime/mapping.hpp"
#include "tiling/tile_space.hpp"

namespace ctile {

namespace {

/// Corner certificate: all 2^n parallelepiped corners of tile js inside
/// the space implies (convexity) the whole closed cell is, hence every
/// lattice point of the tile and of its dependence reads that land in
/// the cell (TileClassifier's argument, fullness half only).
bool corner_full(const TilingTransform& tf, const Polyhedron& space,
                 const std::vector<VecQ>& corners, const VecI& js) {
  const VecQ base = mul(tf.P(), js);
  for (const VecQ& corner : corners) {
    if (!space.contains_rational(vec_add(base, corner))) return false;
  }
  return true;
}

}  // namespace

CommBoundResult comm_lower_bound(const LoopNest& nest, const MatQ& h,
                                 int force_m, int arity,
                                 const MachineModel& machine,
                                 const VecI& orig_lo, const VecI& orig_hi) {
  // The same structural validation lowering performs, at a fraction of
  // its cost: TilingTransform rejects singular H, TiledNest rejects
  // cone-illegal H.  The pruning path relies on this ordering — an
  // invalid candidate dies here, before any plan is lowered.
  TilingTransform tf(h);
  TiledNest tiled(nest, std::move(tf));
  return comm_lower_bound(tiled, force_m, arity, machine, orig_lo, orig_hi);
}

CommBoundResult comm_lower_bound(const TiledNest& tiled, int force_m,
                                 int arity, const MachineModel& machine,
                                 const VecI& orig_lo, const VecI& orig_hi) {
  const LoopNest& nest = tiled.nest();
  const TilingTransform& t = tiled.transform();
  Mapping mapping(tiled, force_m);  // census-free: rational-shadow validity

  CommBoundResult r;
  r.tile_size = t.tile_size();
  r.num_procs = mapping.num_procs();
  r.chain_length = mapping.chain_length();

  CTILE_ASSERT(orig_lo.size() == orig_hi.size());
  CTILE_ASSERT(static_cast<int>(orig_lo.size()) == nest.depth);
  r.total_points = 1;
  for (std::size_t k = 0; k < orig_lo.size(); ++k) {
    r.total_points = mul_ck(r.total_points,
                            std::max<i64>(0, orig_hi[k] - orig_lo[k] + 1));
  }

  const int n = t.n();
  const int m = mapping.m();

  // s_k = max_l d'_kl over the TTIS images of the dependences, clamped
  // to the tile extent (a dependence longer than the tile makes the
  // whole tile a boundary slab).
  VecI s(static_cast<std::size_t>(n), 0);
  bool oversized = false;  // some d' exceeds its tile extent: tile deps
                           // leave {0,1}^n and the {0,1}^n-neighborhood
                           // certificate below no longer covers every
                           // reader.  Fall back to the trivial bound
                           // (such tilings are rejected at lowering).
  for (int l = 0; l < nest.deps.cols(); ++l) {
    VecI d(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) d[static_cast<std::size_t>(k)] = nest.deps(k, l);
    const VecI dp = t.transform_dep(d);
    for (int k = 0; k < n; ++k) {
      if (dp[static_cast<std::size_t>(k)] > t.v(k)) oversized = true;
      s[static_cast<std::size_t>(k)] = std::max(
          s[static_cast<std::size_t>(k)],
          std::min(dp[static_cast<std::size_t>(k)], t.v(k)));
    }
  }

  // Per-tile lower bound on the boundary-slab union (header comment):
  // tile_size - prod_k ceil((v_k - s_k) / c_k) over mesh dimensions
  // with s_k > 0 (chain-dimension crossings stay on-processor).
  i64 complement_ub = 1;
  bool any_mesh_comm = false;
  for (int k = 0; k < n; ++k) {
    const i64 vk = t.v(k);
    const i64 ck = t.stride(k);
    i64 extent = vk;
    if (k != m && s[static_cast<std::size_t>(k)] > 0) {
      any_mesh_comm = true;
      extent = vk - s[static_cast<std::size_t>(k)];
    }
    complement_ub = mul_ck(complement_ub, ceil_div(extent, ck));
  }
  const i64 per_tile_lb =
      (any_mesh_comm && !oversized)
          ? std::max<i64>(0, r.tile_size - complement_ub)
          : 0;

  // Corner-full flags over the tile-space bounding box, then count the
  // deep-interior tiles: a tile whose {0,1}^n neighborhood is entirely
  // corner-full (readers one tile over in any combination of dimensions
  // provably exist).  Neighbors outside the box count as not full —
  // conservative, never unsound.
  const std::vector<IntRange> box = tiled.tile_space_box();
  std::vector<i64> lo;
  std::vector<i64> ext;
  i64 cells = 1;
  for (const IntRange& range : box) {
    CTILE_ASSERT(!range.empty());
    lo.push_back(range.lo);
    ext.push_back(range.count());
    cells = mul_ck(cells, range.count());
  }
  r.tiles_in_box = cells;

  std::vector<VecQ> corners;
  corners.reserve(static_cast<std::size_t>(1) << n);
  for (int mask = 0; mask < (1 << n); ++mask) {
    VecI xc(static_cast<std::size_t>(n), 0);
    for (int k = 0; k < n; ++k) {
      if ((mask >> k) & 1) xc[static_cast<std::size_t>(k)] = t.v(k) - 1;
    }
    corners.push_back(mul(t.Pp(), xc));
  }

  std::vector<unsigned char> full(static_cast<std::size_t>(cells), 0);
  const auto cell_index = [&](const VecI& js) {
    i64 idx = 0;
    for (std::size_t k = 0; k < lo.size(); ++k) {
      idx = idx * ext[k] + (js[k] - lo[k]);
    }
    return static_cast<std::size_t>(idx);
  };

  VecI js(lo.begin(), lo.end());
  for (i64 cell = 0; cell < cells; ++cell) {
    full[static_cast<std::size_t>(cell)] =
        corner_full(t, nest.space, corners, js) ? 1 : 0;
    for (int k = n; k-- > 0;) {
      if (++js[static_cast<std::size_t>(k)] <
          lo[static_cast<std::size_t>(k)] + ext[static_cast<std::size_t>(k)]) {
        break;
      }
      js[static_cast<std::size_t>(k)] = lo[static_cast<std::size_t>(k)];
    }
  }

  if (per_tile_lb > 0) {
    js.assign(lo.begin(), lo.end());
    for (i64 cell = 0; cell < cells; ++cell) {
      bool deep = full[static_cast<std::size_t>(cell)] != 0;
      for (int mask = 1; deep && mask < (1 << n); ++mask) {
        VecI nb = js;
        bool inside = true;
        for (int k = 0; k < n; ++k) {
          if (!((mask >> k) & 1)) continue;
          nb[static_cast<std::size_t>(k)] += 1;
          if (nb[static_cast<std::size_t>(k)] >=
              lo[static_cast<std::size_t>(k)] +
                  ext[static_cast<std::size_t>(k)]) {
            inside = false;
            break;
          }
        }
        deep = inside && full[cell_index(nb)] != 0;
      }
      if (deep) {
        r.full_tiles += 1;
        r.points_lb = add_ck(r.points_lb, per_tile_lb);
      }
      for (int k = n; k-- > 0;) {
        if (++js[static_cast<std::size_t>(k)] <
            lo[static_cast<std::size_t>(k)] +
                ext[static_cast<std::size_t>(k)]) {
          break;
        }
        js[static_cast<std::size_t>(k)] = lo[static_cast<std::size_t>(k)];
      }
    }
  }

  r.bytes_lb = mul_ck(mul_ck(r.points_lb, static_cast<i64>(arity)),
                      static_cast<i64>(machine.bytes_per_value));
  const double compute_s =
      static_cast<double>(r.total_points) * machine.sec_per_iter;
  const double unpack_pack_s =
      2.0 * machine.per_byte_overhead * static_cast<double>(r.bytes_lb);
  r.time_lb_s =
      (compute_s + unpack_pack_s) / static_cast<double>(r.num_procs);
  return r;
}

}  // namespace ctile
