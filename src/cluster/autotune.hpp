// Tile-size auto-tuning over the cluster model.
//
// The paper selects tile factors by hand (fixing the mesh to 16 nodes and
// sweeping the chain-dimension factor).  This utility automates that
// search: given a nest, a family of tiling matrices parameterized by the
// chain-dimension factor, and a machine model, it evaluates the DES over
// a candidate set and returns the best configuration.  It is the
// programmatic counterpart of Figures 6/8/10's x-axes.
#pragma once

#include <functional>
#include <vector>

#include "cluster/simulator.hpp"
#include "runtime/plan_cache.hpp"

namespace ctile {

struct AutotuneRequest {
  /// Builds the tiling matrix for a candidate chain factor.
  std::function<MatQ(i64)> tiling_for;
  /// Candidate chain factors to evaluate (empty = geometric default
  /// sweep {2,3,4,6,8,12,16,24,32,48,64} clipped to chain_extent).
  std::vector<i64> candidates;
  /// Extent of the chain dimension in the (transformed) space; bounds
  /// the default sweep.
  i64 chain_extent = 0;
  int force_m = -1;
  int arity = 1;
  CommSchedule schedule = CommSchedule::kBlocking;
  /// Original rectangular bounds + skew for the fast census.
  VecI orig_lo;
  VecI orig_hi;
  MatI skew;
  /// PlanCache candidate lowerings go through (nullptr = the process-wide
  /// global_plan_cache()), so repeated queries — and candidates shared
  /// between queries — reuse the census/mapping/LDS/comm-plan lowering
  /// instead of rebuilding it.
  PlanCache* cache = nullptr;
};

struct AutotuneResult {
  i64 best_factor = 0;
  SimResult best;
  /// Every evaluated (factor, result) pair, in evaluation order.
  std::vector<std::pair<i64, SimResult>> evaluated;
  /// Structurally invalid candidates, with the lowering diagnostic that
  /// rejected each (previously these vanished without trace).
  std::vector<std::pair<i64, std::string>> skipped;
  /// Duplicate factors removed before evaluation (first occurrence
  /// kept; previously duplicates were silently re-scored as cache
  /// hits).
  i64 duplicates_removed = 0;
  /// PlanCache traffic of this query's candidate lowerings: misses are
  /// candidates lowered cold here, hits were served from prior queries.
  i64 cache_hits = 0;
  i64 cache_misses = 0;
};

/// Evaluate all candidates for `nest`; candidates whose tiling is
/// structurally invalid (illegal, stride-incompatible, oversized deps)
/// are skipped and reported in AutotuneResult::skipped; duplicate
/// factors are removed up front.  The machine model is mirrored into
/// the plan keys (LoweringKnobs::machine), so cached artifacts keyed by
/// one machine are never served for another.  Throws Error if no
/// candidate survives.
AutotuneResult autotune_tile_size(const LoopNest& nest,
                                  const AutotuneRequest& request,
                                  const MachineModel& machine);

}  // namespace ctile
